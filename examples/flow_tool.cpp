// wavemig flow tool: a complete command-line front end for the library —
// read or generate a netlist, optionally optimize it, run the wave-pipelining
// flow, verify, report metrics, and export the result.
//
// Usage:
//   flow_tool (--in FILE | --gen BENCHMARK) [options]
//
// Input:
//   --in FILE             read netlist (.mig or .blif, by extension)
//   --gen NAME            build a suite benchmark (see --list)
//   --list                print the 37 benchmark names and exit
//
// Optimization:
//   --optimize            MIG depth rewriting before the flow
//   --wave-aware          wave-aware (balance) rewriting before the flow
//   --reduce              cut-based functional reduction before the flow
//
// Wave-pipelining flow:
//   --fanout-limit K      fan-out restriction to K (default 3; 0 = skip)
//   --no-buffers          skip the balancing pass
//   --schedule P          asap | alap | mid  (default asap)
//   --tolerance T         coherence tolerance (default 0; needs T+2 phases)
//   --phases P            clock phases for reports/simulation (default 3)
//
// Outputs:
//   --out FILE            write result (.mig, .blif, .v, .dot by extension)
//   --report              print metrics for SWD/QCA/NML
//   --phase-report        print the clock-phase assignment
//   --simulate N          stream N random waves and check them
//   --quiet               suppress the summary

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "wavemig/balance_rewriting.hpp"
#include "wavemig/depth_rewriting.hpp"
#include "wavemig/functional_reduction.hpp"
#include "wavemig/gen/suite.hpp"
#include "wavemig/io/blif.hpp"
#include "wavemig/io/dot.hpp"
#include "wavemig/io/mig_format.hpp"
#include "wavemig/io/verilog.hpp"
#include "wavemig/metrics.hpp"
#include "wavemig/phase_assignment.hpp"
#include "wavemig/pipeline.hpp"
#include "wavemig/simulation.hpp"
#include "wavemig/wave_schedule.hpp"
#include "wavemig/wave_simulator.hpp"

#include <iostream>

using namespace wavemig;

namespace {

[[noreturn]] void fail(const std::string& message) {
  std::fprintf(stderr, "flow_tool: %s (try --help)\n", message.c_str());
  std::exit(1);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

struct arguments {
  std::string in_file;
  std::string gen_name;
  bool list{false};
  bool optimize{false};
  bool wave_aware{false};
  bool reduce{false};
  unsigned fanout_limit{3};
  bool buffers{true};
  schedule_policy schedule{schedule_policy::asap};
  unsigned tolerance{0};
  unsigned phases{3};
  std::string out_file;
  bool report{false};
  bool phase_report{false};
  unsigned simulate{0};
  bool quiet{false};
};

arguments parse(int argc, char** argv) {
  arguments args;
  auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      fail(std::string{"missing value after "} + argv[i]);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--in") {
      args.in_file = next_value(i);
    } else if (flag == "--gen") {
      args.gen_name = next_value(i);
    } else if (flag == "--list") {
      args.list = true;
    } else if (flag == "--optimize") {
      args.optimize = true;
    } else if (flag == "--wave-aware") {
      args.wave_aware = true;
    } else if (flag == "--reduce") {
      args.reduce = true;
    } else if (flag == "--fanout-limit") {
      args.fanout_limit = static_cast<unsigned>(std::stoul(next_value(i)));
    } else if (flag == "--no-buffers") {
      args.buffers = false;
    } else if (flag == "--schedule") {
      const std::string v = next_value(i);
      if (v == "asap") {
        args.schedule = schedule_policy::asap;
      } else if (v == "alap") {
        args.schedule = schedule_policy::alap;
      } else if (v == "mid") {
        args.schedule = schedule_policy::mid_slack;
      } else {
        fail("unknown schedule '" + v + "'");
      }
    } else if (flag == "--tolerance") {
      args.tolerance = static_cast<unsigned>(std::stoul(next_value(i)));
    } else if (flag == "--phases") {
      args.phases = static_cast<unsigned>(std::stoul(next_value(i)));
    } else if (flag == "--out") {
      args.out_file = next_value(i);
    } else if (flag == "--report") {
      args.report = true;
    } else if (flag == "--phase-report") {
      args.phase_report = true;
    } else if (flag == "--simulate") {
      args.simulate = static_cast<unsigned>(std::stoul(next_value(i)));
    } else if (flag == "--quiet") {
      args.quiet = true;
    } else if (flag == "--help") {
      std::printf("see the header comment of examples/flow_tool.cpp for usage\n");
      std::exit(0);
    } else {
      fail("unknown flag '" + flag + "'");
    }
  }
  return args;
}

mig_network load_input(const arguments& args) {
  if (!args.in_file.empty()) {
    if (ends_with(args.in_file, ".blif")) {
      return io::read_blif_file(args.in_file);
    }
    return io::read_mig_file(args.in_file);
  }
  if (!args.gen_name.empty()) {
    return gen::build_benchmark(args.gen_name);
  }
  fail("no input: use --in FILE or --gen NAME");
}

void write_output(const mig_network& net, const std::string& path) {
  if (ends_with(path, ".blif")) {
    io::write_blif_file(net, path);
  } else if (ends_with(path, ".v")) {
    io::write_verilog_file(net, path);
  } else if (ends_with(path, ".dot")) {
    io::write_dot_file(net, path);
  } else {
    io::write_mig_file(net, path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const arguments args = parse(argc, argv);
  if (args.list) {
    for (const auto& name : gen::benchmark_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (args.tolerance + 2 > args.phases) {
    fail("tolerance " + std::to_string(args.tolerance) + " needs at least " +
         std::to_string(args.tolerance + 2) + " clock phases");
  }

  mig_network net = load_input(args);
  const auto original = net;  // for equivalence checking and gain reports

  if (args.reduce) {
    net = reduce_functionally(net).net;
  }
  if (args.optimize) {
    net = depth_rewrite(net);
  }
  if (args.wave_aware) {
    net = balance_rewrite(net);
  }

  pipeline_options opts;
  if (args.fanout_limit == 0) {
    opts.fanout_limit.reset();
  } else {
    opts.fanout_limit = args.fanout_limit;
  }
  opts.insert_buffers = false;  // run restriction via the pipeline, buffers manually
  auto piped = wave_pipeline(net, opts);

  buffer_insertion_result balanced;
  if (args.buffers) {
    buffer_insertion_options bi;
    bi.schedule = args.schedule;
    bi.tolerance = args.tolerance;
    if (opts.fanout_limit) {
      bi.strategy = buffer_strategy::tree;
      bi.fanout_limit = *opts.fanout_limit;
    }
    balanced = insert_buffers(piped.net, bi);
  } else {
    balanced.net = piped.net;
    balanced.schedule = compute_levels(piped.net);
  }
  const mig_network& result = balanced.net;

  const bool equivalent = functionally_equivalent(original, result);
  const auto readiness = check_wave_readiness(result, balanced.schedule, args.tolerance);

  if (!args.quiet) {
    const auto stats = compute_stats(result);
    std::printf("components: %zu (MAJ %zu, BUF %zu, FOG %zu), depth %u\n", stats.components,
                stats.majorities, stats.buffers, stats.fanout_gates, stats.depth);
    std::printf("wave-ready (tolerance %u): %s\n", args.tolerance, readiness.ready ? "yes" : "NO");
    std::printf("functionally equivalent to input: %s\n", equivalent ? "yes" : "NO");
  }

  if (args.report) {
    for (const auto& tech : {technology::swd(), technology::qca(), technology::nml()}) {
      const auto cmp = compare_metrics(original, result, tech, args.phases);
      std::printf("[%s] T %.2f MOPS -> %.2f MOPS | area %.4f -> %.4f um^2 | "
                  "T/A %.2fx T/P %.2fx\n",
                  tech.name.c_str(), cmp.original.throughput_mops, cmp.pipelined.throughput_mops,
                  cmp.original.area_um2, cmp.pipelined.area_um2, cmp.ta_gain, cmp.tp_gain);
    }
  }

  if (args.phase_report) {
    const auto assignment = assign_phases(result, balanced.schedule, args.phases);
    write_phase_report(result, balanced.schedule, assignment, std::cout);
  }

  if (args.simulate > 0) {
    std::mt19937_64 rng{12345};
    std::vector<std::vector<bool>> waves(args.simulate, std::vector<bool>(result.num_pis()));
    for (auto& wave : waves) {
      for (std::size_t i = 0; i < wave.size(); ++i) {
        wave[i] = (rng() & 1u) != 0;
      }
    }
    const auto run = run_waves(result, waves, args.phases, balanced.schedule);
    std::size_t correct = 0;
    for (std::size_t w = 0; w < waves.size(); ++w) {
      if (run.outputs[w] == simulate_pattern(result, waves[w])) {
        ++correct;
      }
    }
    std::printf("simulated %u waves at %u phases: %zu/%u correct, %llu ticks, %u in flight\n",
                args.simulate, args.phases, correct, args.simulate,
                static_cast<unsigned long long>(run.ticks), run.waves_in_flight);
  }

  if (!args.out_file.empty()) {
    write_output(result, args.out_file);
    if (!args.quiet) {
      std::printf("wrote %s\n", args.out_file.c_str());
    }
  }

  return equivalent && (readiness.ready || !args.buffers) ? 0 : 2;
}
