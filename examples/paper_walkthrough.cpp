// Paper walkthrough: recreates the illustrative figures of Zografos et al.
// (DATE 2017) as running code — Fig. 1 (MIG optimization), Fig. 6 (fan-out
// restriction of a 6-consumer node at limit 3) and Fig. 4 (the three-phase
// data-wave clock) — with the actual numbers printed at each step.
//
//   $ ./examples/paper_walkthrough

#include <cstdio>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/depth_rewriting.hpp"
#include "wavemig/fanout_restriction.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/phase_assignment.hpp"
#include "wavemig/simulation.hpp"
#include "wavemig/wave_simulator.hpp"

using namespace wavemig;

namespace {

void fig1_mig_optimization() {
  std::printf("== Fig. 1: MIG depth optimization =====================================\n");
  // f = x0*x1*x3 + x2*x3, deliberately built with the unbalanced AOIG
  // association of the figure's left side.
  mig_network net;
  const signal x0 = net.create_pi("x0");
  const signal x1 = net.create_pi("x1");
  const signal x2 = net.create_pi("x2");
  const signal x3 = net.create_pi("x3");
  const signal chain = net.create_and(net.create_and(x0, x1), x3);
  net.create_po(net.create_or(chain, net.create_and(x2, x3)), "f");

  const auto optimized = depth_rewrite(net);
  std::printf("  before: %zu majority gates, depth %u\n", net.num_majorities(),
              compute_levels(net).depth);
  std::printf("  after:  %zu majority gates, depth %u   (MIGopt of Fig. 1)\n",
              optimized.num_majorities(), compute_levels(optimized).depth);
  std::printf("  equivalent: %s\n\n", functionally_equivalent(net, optimized) ? "yes" : "NO");
}

void fig6_fanout_restriction() {
  std::printf("== Fig. 6: fan-out restriction, m = 6 consumers at limit 3 ============\n");
  // Node N drives six consumers at mixed base distances, like the figure:
  // two critical ones right above N and four with slack (level 3), which
  // can absorb the FOG-tree depth for free.
  mig_network net;
  const signal n = net.create_pi("N");
  auto tower = [&](unsigned height) {
    signal s = net.create_maj(net.create_pi(), net.create_pi(), net.create_pi());
    for (unsigned i = 1; i < height; ++i) {
      s = net.create_maj(s, net.create_pi(), net.create_pi());
    }
    return s;
  };
  for (int i = 0; i < 2; ++i) {  // critical consumers at level 1
    net.create_po(net.create_maj(n, net.create_pi(), net.create_pi()), "a" + std::to_string(i));
  }
  for (int i = 0; i < 4; ++i) {  // slack-rich consumers at level 3
    net.create_po(net.create_maj(n, tower(2), net.create_pi()), "d" + std::to_string(i));
  }
  const auto result = restrict_fanout(net, {3, true});
  std::printf("  fan-out gates added: %zu   (paper: three FOGs, Fig. 6b)\n", result.fogs_added);
  std::printf("  delayed edges:       %zu   (paper: two nodes delayed)\n", result.delayed_edges);
  std::printf("  buffers added:       %zu   (the figure shows one residual BUF;\n"
              "                            our tree shape absorbs the slack instead)\n",
              result.buffers_added);
  std::printf("  minimum-FOG formula ceil((m-1)/(k-1)) = ceil(5/2) = 3\n\n");
}

void fig4_wave_clock() {
  std::printf("== Fig. 4: three-phase clock streaming an all-buffer chain ============\n");
  // The figure's chain A-B-C-D-E: five stages, one wave every three ticks.
  mig_network net;
  signal s = net.create_pi("in");
  for (int i = 0; i < 5; ++i) {
    s = net.create_buffer(s);
  }
  net.create_po(s, "out");

  std::vector<std::vector<bool>> waves;
  for (int w = 0; w < 5; ++w) {
    waves.push_back({w % 2 == 1});
  }
  const auto run = run_waves(net, waves, 3);
  std::printf("  depth %u chain, %zu waves: %llu ticks, %u waves in flight\n",
              compute_levels(net).depth, waves.size(),
              static_cast<unsigned long long>(run.ticks), run.waves_in_flight);
  for (std::size_t w = 0; w < waves.size(); ++w) {
    std::printf("  wave %zu: in=%d out=%d\n", w, waves[w][0] ? 1 : 0,
                run.outputs[w][0] ? 1 : 0);
  }

  const auto assignment = assign_phases(net, 3);
  std::printf("  phase loads: ");
  for (unsigned p = 0; p < 3; ++p) {
    std::printf("phi%u=%zu ", p + 1, assignment.load[p]);
  }
  std::printf(" (cells cycle phi1,phi2,phi3 along the chain)\n\n");
}

}  // namespace

int main() {
  fig1_mig_optimization();
  fig6_fanout_restriction();
  fig4_wave_clock();
  std::printf("See bench/ for the quantitative artifacts (Tables I-II, Figs. 5-9).\n");
  return 0;
}
