// Technology explorer: sweeps the fan-out restriction limit for each of the
// paper's technologies — and one user-defined hypothetical technology — on a
// benchmark circuit, reporting which limit maximizes throughput per area and
// per power. Shows how to plug custom Table-I-style cost models into the
// metrics engine.
//
//   $ ./examples/technology_explorer [benchmark-name]

#include <cstdio>
#include <string>

#include "wavemig/gen/suite.hpp"
#include "wavemig/metrics.hpp"
#include "wavemig/pipeline.hpp"

using namespace wavemig;

namespace {

/// A hypothetical aggressive spin-wave node: faster clock, cheaper
/// inverters, but fan-out gates twice as expensive as majorities.
technology hypothetical() {
  technology t;
  t.name = "HYP";
  t.cell_area_um2 = 0.001;
  t.cell_delay_ns = 0.1;
  t.cell_energy_fj = 1e-6;
  t.inv = {1.0, 1.0, 1.0};
  t.maj = {4.0, 1.0, 3.0};
  t.buf = {2.0, 1.0, 1.0};
  t.fog = {8.0, 1.0, 6.0};
  t.phase_delay_ns = 0.1;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "mul16";
  const auto net = gen::build_benchmark(name);
  std::printf("benchmark '%s': %zu components, depth %u\n\n", name.c_str(), net.num_components(),
              compute_stats(net).depth);

  for (const auto& tech :
       {technology::swd(), technology::qca(), technology::nml(), hypothetical()}) {
    std::printf("[%s]  limit |  components  depth |    T/A gain    T/P gain\n",
                tech.name.c_str());
    double best_ta = 0.0;
    double best_tp = 0.0;
    unsigned best_ta_limit = 0;
    unsigned best_tp_limit = 0;
    for (unsigned limit = 2; limit <= 5; ++limit) {
      pipeline_options opts;
      opts.fanout_limit = limit;
      const auto piped = wave_pipeline(net, opts);
      const auto cmp = compare_metrics(net, piped.net, tech);
      std::printf("         FO%u  | %11zu  %5u | %11.2f %11.2f\n", limit,
                  piped.final_stats.components, piped.depth_after, cmp.ta_gain, cmp.tp_gain);
      if (cmp.ta_gain > best_ta) {
        best_ta = cmp.ta_gain;
        best_ta_limit = limit;
      }
      if (cmp.tp_gain > best_tp) {
        best_tp = cmp.tp_gain;
        best_tp_limit = limit;
      }
    }
    std::printf("  best T/A at FO%u (%.2fx), best T/P at FO%u (%.2fx)\n\n", best_ta_limit,
                best_ta, best_tp_limit, best_tp);
  }
  return 0;
}
