// Wave streaming: demonstrates WHY path balancing is required. Streams data
// waves through an 8x8 multiplier under the three-phase regeneration clock
// (Fig. 4 of the paper):
//   - the raw netlist corrupts results (adjacent waves interfere),
//   - the balanced netlist streams every wave correctly at one wave per
//     three ticks, processing depth/3 multiplications simultaneously.
//
//   $ ./examples/wave_streaming

#include <cstdio>
#include <random>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/gen/arith.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/simulation.hpp"
#include "wavemig/wave_simulator.hpp"

using namespace wavemig;

namespace {

std::uint64_t product_of(const std::vector<bool>& out) {
  std::uint64_t p = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    p |= static_cast<std::uint64_t>(out[i]) << i;
  }
  return p;
}

void stream(const mig_network& net, const char* label,
            const std::vector<std::vector<bool>>& waves,
            const std::vector<std::uint64_t>& expected) {
  const auto run = run_waves(net, waves, 3);
  std::size_t correct = 0;
  for (std::size_t w = 0; w < waves.size(); ++w) {
    if (product_of(run.outputs[w]) == expected[w]) {
      ++correct;
    }
  }
  std::printf("%-9s depth %3u | %2zu/%zu waves correct | %llu ticks for %zu multiplications "
              "(%u in flight)\n",
              label, compute_levels(net).depth, correct, waves.size(),
              static_cast<unsigned long long>(run.ticks), waves.size(), run.waves_in_flight);
}

}  // namespace

int main() {
  const unsigned width = 8;
  const auto raw = gen::multiplier_circuit(width);
  const auto balanced = insert_buffers(raw).net;

  // 16 random multiplication jobs.
  std::mt19937_64 rng{2017};
  std::vector<std::vector<bool>> waves;
  std::vector<std::uint64_t> expected;
  for (int job = 0; job < 16; ++job) {
    const std::uint64_t a = rng() & 0xFFu;
    const std::uint64_t b = rng() & 0xFFu;
    std::vector<bool> wave;
    for (unsigned i = 0; i < width; ++i) {
      wave.push_back((a >> i) & 1u);
    }
    for (unsigned i = 0; i < width; ++i) {
      wave.push_back((b >> i) & 1u);
    }
    waves.push_back(std::move(wave));
    expected.push_back(a * b);
  }

  std::printf("streaming 16 multiplications through an %ux%u array multiplier\n", width, width);
  std::printf("(three-phase wave clock; a new operand pair enters every 3 ticks)\n\n");
  stream(raw, "raw", waves, expected);
  stream(balanced, "balanced", waves, expected);

  const auto sequential_ticks =
      static_cast<unsigned long long>(compute_levels(balanced).depth) * waves.size();
  std::printf("\nnon-pipelined execution would need %llu ticks for the same work\n",
              sequential_ticks);
  return 0;
}
