// Wave streaming: demonstrates WHY path balancing is required and HOW the
// compiled engine serves streaming traffic. Streams data waves through an
// 8x8 multiplier under the three-phase regeneration clock (Fig. 4 of the
// paper):
//   - the raw netlist corrupts results (adjacent waves interfere),
//   - the balanced netlist streams every wave correctly at one wave per
//     three ticks, processing depth/3 multiplications simultaneously,
//   - the engine's wave_stream then pushes a much larger job stream through
//     the same balanced netlist, 64 waves per machine word, with constant
//     memory.
//
//   $ ./examples/wave_streaming

#include <chrono>
#include <cstdio>
#include <random>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/engine/compiled_netlist.hpp"
#include "wavemig/engine/wave_engine.hpp"
#include "wavemig/gen/arith.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/simulation.hpp"
#include "wavemig/wave_simulator.hpp"

using namespace wavemig;

namespace {

std::uint64_t product_of(const std::vector<bool>& out) {
  std::uint64_t p = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    p |= static_cast<std::uint64_t>(out[i]) << i;
  }
  return p;
}

void stream(const mig_network& net, const char* label,
            const std::vector<std::vector<bool>>& waves,
            const std::vector<std::uint64_t>& expected) {
  const auto run = run_waves(net, waves, 3);
  std::size_t correct = 0;
  for (std::size_t w = 0; w < waves.size(); ++w) {
    if (product_of(run.outputs[w]) == expected[w]) {
      ++correct;
    }
  }
  std::printf("%-9s depth %3u | %2zu/%zu waves correct | %llu ticks for %zu multiplications "
              "(%u in flight)\n",
              label, compute_levels(net).depth, correct, waves.size(),
              static_cast<unsigned long long>(run.ticks), waves.size(), run.waves_in_flight);
}

std::vector<bool> operand_wave(unsigned width, std::uint64_t a, std::uint64_t b) {
  std::vector<bool> wave;
  wave.reserve(2 * width);
  for (unsigned i = 0; i < width; ++i) {
    wave.push_back((a >> i) & 1u);
  }
  for (unsigned i = 0; i < width; ++i) {
    wave.push_back((b >> i) & 1u);
  }
  return wave;
}

}  // namespace

int main() {
  const unsigned width = 8;
  const auto raw = gen::multiplier_circuit(width);
  const auto balanced = insert_buffers(raw).net;

  // 16 random multiplication jobs through the cycle-accurate simulator.
  std::mt19937_64 rng{2017};
  std::vector<std::vector<bool>> waves;
  std::vector<std::uint64_t> expected;
  for (int job = 0; job < 16; ++job) {
    const std::uint64_t a = rng() & 0xFFu;
    const std::uint64_t b = rng() & 0xFFu;
    waves.push_back(operand_wave(width, a, b));
    expected.push_back(a * b);
  }

  std::printf("streaming 16 multiplications through an %ux%u array multiplier\n", width, width);
  std::printf("(three-phase wave clock; a new operand pair enters every 3 ticks)\n\n");
  stream(raw, "raw", waves, expected);
  stream(balanced, "balanced", waves, expected);

  const auto sequential_ticks =
      static_cast<unsigned long long>(compute_levels(balanced).depth) * waves.size();
  std::printf("\nnon-pipelined execution would need %llu ticks for the same work\n",
              sequential_ticks);

  // Now the engine path: compile the balanced netlist once (optimizer on —
  // outputs are bit-identical at every level) and stream a far larger job
  // mix through wave_stream — 64 waves per 64-bit word, multi-chunk blocks
  // evaluated as they fill, memory constant in the stream length. The job
  // count is known here, so the stream gets it as a reservation hint.
  const std::size_t jobs = 100000;
  const engine::compiled_netlist compiled{balanced, {.opt_level = 2}};
  engine::wave_stream stream{compiled, 3, jobs};

  std::mt19937_64 job_rng{42};
  std::vector<std::uint64_t> expect;
  expect.reserve(jobs);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t job = 0; job < jobs; ++job) {
    const std::uint64_t a = job_rng() & 0xFFu;
    const std::uint64_t b = job_rng() & 0xFFu;
    stream.push(operand_wave(width, a, b));
    expect.push_back(a * b);
  }
  const auto result = stream.finish();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::size_t correct = 0;
  for (std::size_t w = 0; w < jobs; ++w) {
    std::uint64_t p = 0;
    for (std::size_t bit = 0; bit < result.num_pos; ++bit) {
      p |= static_cast<std::uint64_t>(result.output(w, bit)) << bit;
    }
    correct += p == expect[w];
  }

  std::printf("\nengine wave_stream: %zu/%zu multiplications correct in %.3f s "
              "(%.2f M waves/s, %u waves in flight per clock)\n",
              correct, jobs, elapsed, static_cast<double>(jobs) / elapsed / 1e6,
              result.waves_in_flight);
  return correct == jobs ? 0 : 1;
}
