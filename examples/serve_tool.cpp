// serve_tool: the network serving front-end as a command-line tool. Starts
// a wire server (net/server.hpp) over a serving session and either
//
//   * default: exercises it end to end — a wire client registers a ripple
//     adder, streams packed run requests over the loopback socket, and every
//     response is checked against the expected arithmetic — then drains and
//     shuts down gracefully; or
//   * --listen: keeps serving external wire-protocol clients until stdin
//     reaches EOF (pipe or Ctrl-D) or a SIGINT/SIGTERM arrives, then
//     drains in-flight requests and shuts down gracefully — Ctrl-C never
//     drops an accepted request on the floor.
//
//   $ ./examples/serve_tool [--port P] [--requests N] [--waves N] [--listen]
//
// Port 0 (the default) binds an ephemeral port; the bound port is printed
// either way. All numeric arguments go through io::parse_count, so a typo'd
// or hostile argv value fails with a named error instead of wrapping.

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "wavemig/engine/parallel_executor.hpp"
#include "wavemig/engine/serving.hpp"
#include "wavemig/gen/arith.hpp"
#include "wavemig/io/text_util.hpp"
#include "wavemig/net/client.hpp"
#include "wavemig/net/server.hpp"

using namespace wavemig;

namespace {

struct tool_options {
  std::uint16_t port{0};
  std::size_t requests{32};
  std::size_t waves{128};
  bool listen{false};
};

tool_options parse_args(int argc, char** argv) {
  tool_options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg{argv[i]};
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument{arg + " needs a value"};
      }
      return argv[++i];
    };
    if (arg == "--port") {
      opts.port = static_cast<std::uint16_t>(io::parse_count(value(), 65535, "--port"));
    } else if (arg == "--requests") {
      opts.requests = io::parse_count(value(), std::size_t{1} << 20, "--requests");
    } else if (arg == "--waves") {
      opts.waves = io::parse_count(value(), std::size_t{1} << 20, "--waves");
    } else if (arg == "--listen") {
      opts.listen = true;
    } else {
      throw std::invalid_argument{"unknown argument: " + arg};
    }
  }
  return opts;
}

/// Packs `waves` (a, b) operand pairs into the plane-major payload the wire
/// protocol carries: PI p's chunk words are contiguous, wave w sits at bit
/// w % 64 of word w / 64.
std::vector<std::uint64_t> pack_operands(unsigned width, const std::vector<std::uint64_t>& a,
                                         const std::vector<std::uint64_t>& b) {
  const std::size_t waves = a.size();
  const std::size_t chunks = (waves + 63) / 64;
  std::vector<std::uint64_t> words(2 * width * chunks, 0);
  for (std::size_t w = 0; w < waves; ++w) {
    for (unsigned bit = 0; bit < width; ++bit) {
      words[bit * chunks + w / 64] |= ((a[w] >> bit) & 1u) << (w % 64);
      words[(width + bit) * chunks + w / 64] |= ((b[w] >> bit) & 1u) << (w % 64);
    }
  }
  return words;
}

std::uint64_t sum_of(const engine::packed_wave_result& result, std::size_t wave) {
  std::uint64_t v = 0;
  for (std::size_t bit = 0; bit < result.num_pos; ++bit) {
    v |= static_cast<std::uint64_t>(result.output(wave, bit)) << bit;
  }
  return v;
}

void print_stats(const net::wire_server& server) {
  const auto stats = server.stats();
  std::printf("server: %llu connections, %llu ok, %llu refused, %llu programs\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.requests_ok),
              static_cast<unsigned long long>(stats.requests_refused),
              static_cast<unsigned long long>(stats.programs_registered));
}

int run_demo_client(net::wire_server& server, const tool_options& opts) {
  constexpr unsigned width = 16;
  auto client = net::wire_client::connect(server.port());
  const std::uint64_t fp = client.register_program(gen::ripple_adder_circuit(width));
  std::printf("registered %u-bit adder, fingerprint %016llx\n", width,
              static_cast<unsigned long long>(fp));

  std::mt19937_64 rng{2026};
  std::size_t verified = 0;
  double total_ms = 0.0;
  for (std::size_t r = 0; r < opts.requests; ++r) {
    std::vector<std::uint64_t> a(opts.waves);
    std::vector<std::uint64_t> b(opts.waves);
    for (std::size_t w = 0; w < opts.waves; ++w) {
      a[w] = rng() & ((1u << width) - 1);
      b[w] = rng() & ((1u << width) - 1);
    }
    net::run_request req;
    req.fingerprint = fp;
    req.num_pis = 2 * width;
    req.num_waves = opts.waves;
    req.phases = 3;
    req.payload = pack_operands(width, a, b);

    const auto start = std::chrono::steady_clock::now();
    const auto resp = client.run(std::move(req));
    total_ms += std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                          start)
                    .count();
    if (resp.status != net::wire_status::ok) {
      std::fprintf(stderr, "request %zu refused: %s\n", r, resp.message.c_str());
      return 1;
    }
    for (std::size_t w = 0; w < opts.waves; ++w) {
      if (sum_of(resp.result, w) != a[w] + b[w]) {
        std::fprintf(stderr, "request %zu wave %zu: wrong sum\n", r, w);
        return 1;
      }
      ++verified;
    }
  }
  std::printf("verified %zu sums across %zu requests (mean e2e %.3f ms)\n", verified,
              opts.requests, total_ms / static_cast<double>(opts.requests));
  return 0;
}

volatile std::sig_atomic_t g_stop = 0;

extern "C" void handle_stop_signal(int) { g_stop = 1; }

/// Installs SIGINT/SIGTERM handlers WITHOUT SA_RESTART: the blocking
/// getchar() in the listen loop must come back with EINTR so the loop can
/// notice g_stop and begin the graceful drain instead of dying mid-request.
void install_stop_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  tool_options opts;
  try {
    opts = parse_args(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_tool: %s\n", e.what());
    std::fprintf(stderr,
                 "usage: serve_tool [--port P] [--requests N] [--waves N] [--listen]\n");
    return 2;
  }

  engine::parallel_executor executor;
  engine::serving_session serving{executor};
  net::wire_server server{serving, {.port = opts.port}};
  std::printf("serving on 127.0.0.1:%u\n", server.port());

  int rc = 0;
  if (opts.listen) {
    install_stop_handlers();
    std::printf("listening; EOF on stdin or SIGINT/SIGTERM shuts down\n");
    std::fflush(stdout);
    // Block until the controlling pipe/terminal closes or a stop signal
    // lands. A signal interrupts getchar() with EINTR; anything else that
    // looks like EOF without g_stop set (for instance stdin closed) ends
    // the loop the same way it always has.
    for (;;) {
      const int c = std::getchar();
      if (c != EOF) {
        continue;
      }
      if (g_stop) {
        std::printf("\nstop signal received; draining\n");
        std::fflush(stdout);
        break;
      }
      if (errno == EINTR) {
        clearerr(stdin);
        continue;
      }
      break;  // genuine EOF
    }
    // Refuse new work but let every accepted request finish and flush
    // before the sockets come down.
    server.begin_drain();
    serving.drain();
  } else {
    rc = run_demo_client(server, opts);
  }

  server.shutdown();
  serving.close();
  print_stats(server);
  return rc;
}
