// Serving demo: the async front-end of the engine as a miniature inference
// server. A mixed stream of requests against three different circuits is
// submitted from two producer threads — futures for the adder/multiplier
// traffic, completion callbacks for the parity checks — while a bounded
// compiled-netlist cache (too small for all three programs at once) evicts
// and recompiles underneath. Every result is verified against the expected
// arithmetic, and the final session_stats show the cache doing its job.
//
//   $ ./examples/serving_demo

#include <atomic>
#include <cstdio>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "wavemig/engine/parallel_executor.hpp"
#include "wavemig/engine/serving.hpp"
#include "wavemig/engine/wave_engine.hpp"
#include "wavemig/gen/arith.hpp"

using namespace wavemig;

namespace {

std::vector<bool> operand_wave(unsigned width, std::uint64_t a, std::uint64_t b) {
  std::vector<bool> wave;
  wave.reserve(2 * width);
  for (unsigned i = 0; i < width; ++i) {
    wave.push_back((a >> i) & 1u);
  }
  for (unsigned i = 0; i < width; ++i) {
    wave.push_back((b >> i) & 1u);
  }
  return wave;
}

std::uint64_t word_of(const engine::packed_wave_result& result, std::size_t wave) {
  std::uint64_t v = 0;
  for (std::size_t bit = 0; bit < result.num_pos; ++bit) {
    v |= static_cast<std::uint64_t>(result.output(wave, bit)) << bit;
  }
  return v;
}

}  // namespace

int main() {
  const unsigned width = 8;
  const auto adder = gen::ripple_adder_circuit(width);
  const auto multiplier = gen::multiplier_circuit(width);
  const auto parity = gen::parity_circuit(2 * width);

  engine::parallel_executor executor;  // hardware-concurrency workers
  // Cache bound: deliberately too small for all three programs, so the mix
  // below keeps evicting and recompiling — exactly the long-lived-session
  // regime the bounds exist for.
  engine::serving_session serving{executor, {}, {.max_entries = 2}};

  const std::size_t requests = 12;
  const std::size_t waves_per_request = 500;
  std::atomic<std::size_t> parity_correct{0};
  std::atomic<std::size_t> parity_total{0};

  // Producer 1: adder and multiplier jobs as futures.
  std::vector<std::uint64_t> job_a(requests), job_b(requests);
  std::vector<std::future<engine::packed_wave_result>> sums, products;
  std::thread arithmetic_producer{[&] {
    std::mt19937_64 rng{7};
    for (std::size_t r = 0; r < requests; ++r) {
      job_a[r] = rng() & 0xFFu;
      job_b[r] = rng() & 0xFFu;
      engine::wave_batch batch{adder.num_pis()};
      for (std::size_t w = 0; w < waves_per_request; ++w) {
        batch.append(operand_wave(width, job_a[r], job_b[r]));
      }
      sums.push_back(serving.submit(adder, batch, 3));
      products.push_back(serving.submit(multiplier, std::move(batch), 3));
    }
  }};

  // Producer 2: parity checks through the callback API.
  std::thread parity_producer{[&] {
    std::mt19937_64 rng{13};
    for (std::size_t r = 0; r < requests; ++r) {
      engine::wave_batch batch{parity.num_pis()};
      std::vector<bool> expected;
      for (std::size_t w = 0; w < waves_per_request; ++w) {
        bool odd = false;
        std::vector<bool> wave(parity.num_pis());
        for (std::size_t i = 0; i < wave.size(); ++i) {
          wave[i] = (rng() & 1u) != 0;
          odd ^= wave[i];
        }
        expected.push_back(odd);
        batch.append(wave);
      }
      serving.submit(parity, std::move(batch), 3,
                     [&parity_correct, &parity_total, expected](
                         engine::packed_wave_result result, std::exception_ptr error) {
                       if (error) {
                         return;  // counted as incorrect via parity_total
                       }
                       for (std::size_t w = 0; w < result.num_waves; ++w) {
                         parity_correct.fetch_add(result.output(w, 0) == expected[w]);
                       }
                       parity_total.fetch_add(result.num_waves);
                     });
    }
  }};

  arithmetic_producer.join();
  parity_producer.join();
  serving.drain();  // all callbacks fired, all futures ready

  std::size_t sum_correct = 0, product_correct = 0;
  for (std::size_t r = 0; r < requests; ++r) {
    auto sum = sums[r].get();
    auto product = products[r].get();
    for (std::size_t w = 0; w < waves_per_request; ++w) {
      sum_correct += word_of(sum, w) == job_a[r] + job_b[r];
      product_correct += word_of(product, w) == job_a[r] * job_b[r];
    }
  }

  const std::size_t per_circuit = requests * waves_per_request;
  std::printf("served %zu waves across 3 circuits from 2 producer threads\n",
              3 * per_circuit);
  std::printf("  adder:      %zu/%zu correct\n", sum_correct, per_circuit);
  std::printf("  multiplier: %zu/%zu correct\n", product_correct, per_circuit);
  std::printf("  parity:     %zu/%zu correct\n", parity_correct.load(), per_circuit);

  const auto stats = serving.stats();
  std::printf("\ncache (bound: 2 entries for 3 circuits): %llu hits, %llu misses, "
              "%llu evictions, %zu resident\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.evictions), stats.entries);

  const bool all_correct = sum_correct == per_circuit && product_correct == per_circuit &&
                           parity_correct.load() == per_circuit &&
                           parity_total.load() == per_circuit;
  std::printf("%s\n", all_correct ? "OK" : "FAILED");
  return all_correct ? 0 : 1;
}
