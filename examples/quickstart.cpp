// Quickstart: build a small majority netlist, enable wave pipelining, and
// inspect the result — the 60-second tour of the library.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "wavemig/metrics.hpp"
#include "wavemig/mig.hpp"
#include "wavemig/pipeline.hpp"
#include "wavemig/wave_schedule.hpp"

using namespace wavemig;

int main() {
  // 1. Build a full adder followed by a comparator stage: a tiny circuit
  //    with skewed paths (the PIs also feed the second stage directly).
  mig_network net;
  const signal a = net.create_pi("a");
  const signal b = net.create_pi("b");
  const signal cin = net.create_pi("cin");
  const auto [sum, carry] = net.create_full_adder(a, b, cin);
  net.create_po(sum, "sum");
  net.create_po(carry, "carry");
  net.create_po(net.create_and(sum, !carry), "sum_only");

  std::printf("original: %zu majority gates, depth %u\n", net.num_majorities(),
              compute_stats(net).depth);
  std::printf("wave-ready? %s\n", check_wave_readiness(net).ready ? "yes" : "no");

  // 2. Run the paper's flow: fan-out restriction to 3, then buffer insertion.
  const pipeline_result piped = wave_pipeline(net);  // defaults: FO3 + BUF
  std::printf("\nafter FO3+BUF: %zu components (+%zu FOGs, +%zu buffers), depth %u\n",
              piped.final_stats.components, piped.fogs_added,
              piped.restriction_buffers_added + piped.balance_buffers_added, piped.depth_after);
  std::printf("wave-ready? %s\n", piped.wave_ready ? "yes" : "no");

  // 3. Evaluate on the three beyond-CMOS technologies of the paper.
  for (const auto& tech : {technology::swd(), technology::qca(), technology::nml()}) {
    const auto cmp = compare_metrics(net, piped.net, tech);
    std::printf("\n[%s]\n", tech.name.c_str());
    std::printf("  throughput: %10.2f -> %10.2f MOPS (%u waves in flight)\n",
                cmp.original.throughput_mops, cmp.pipelined.throughput_mops,
                cmp.pipelined.waves_in_flight);
    std::printf("  area:       %10.4f -> %10.4f um^2\n", cmp.original.area_um2,
                cmp.pipelined.area_um2);
    std::printf("  T/A gain: %.2fx   T/P gain: %.2fx\n", cmp.ta_gain, cmp.tp_gain);
  }
  return 0;
}
