// End-to-end CAD flow with files: generate a circuit, write it to the native
// .mig format, reload it, wave-pipeline it, verify equivalence, and export
// the physical netlist as BLIF, structural Verilog and Graphviz dot.
//
//   $ ./examples/netlist_io_flow [output-directory]

#include <cstdio>
#include <string>

#include "wavemig/gen/crypto.hpp"
#include "wavemig/io/blif.hpp"
#include "wavemig/io/dot.hpp"
#include "wavemig/io/mig_format.hpp"
#include "wavemig/io/verilog.hpp"
#include "wavemig/pipeline.hpp"
#include "wavemig/simulation.hpp"
#include "wavemig/wave_schedule.hpp"

using namespace wavemig;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp";

  // 1. Generate a CRC-32 step and persist the logical netlist.
  const auto logical = gen::crc32_circuit(8);
  const std::string mig_path = dir + "/crc32.mig";
  io::write_mig_file(logical, mig_path, "crc32_step");
  std::printf("wrote logical netlist:   %s (%zu gates)\n", mig_path.c_str(),
              logical.num_majorities());

  // 2. Reload and confirm the round trip is exact.
  const auto reloaded = io::read_mig_file(mig_path);
  std::printf("reload round trip OK:    %s\n",
              functionally_equivalent(logical, reloaded) ? "yes" : "NO");

  // 3. Enable wave pipelining on the reloaded netlist.
  const auto piped = wave_pipeline(reloaded);
  const auto readiness = check_wave_readiness(piped.net);
  std::printf("pipelined: %zu components (depth %u -> %u), wave-ready: %s\n",
              piped.final_stats.components, piped.depth_before, piped.depth_after,
              readiness.ready ? "yes" : "NO");
  std::printf("function preserved:      %s\n",
              functionally_equivalent(logical, piped.net) ? "yes" : "NO");

  // 4. Export the physical netlist for downstream tools.
  const std::string blif_path = dir + "/crc32_wp.blif";
  const std::string verilog_path = dir + "/crc32_wp.v";
  const std::string dot_path = dir + "/crc32_wp.dot";
  io::write_blif_file(piped.net, blif_path, "crc32_wp");
  io::write_verilog_file(piped.net, verilog_path, "crc32_wp");
  io::write_dot_file(piped.net, dot_path);
  std::printf("wrote physical netlist:  %s, %s, %s\n", blif_path.c_str(), verilog_path.c_str(),
              dot_path.c_str());

  // 5. BLIF round trip of the physical netlist.
  const auto back = io::read_blif_file(blif_path);
  std::printf("BLIF round trip OK:      %s\n",
              functionally_equivalent(piped.net, back) ? "yes" : "NO");
  return 0;
}
