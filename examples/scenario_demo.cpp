// scenario_demo: one netlist, every built-in technology scenario.
//
// Runs a single arithmetic netlist through the full wave-pipelining flow
// once per scenario (SWD, QCA, NML, FDM-SWD) and prints a Table II-style
// comparison. Each scenario parameterizes the flow differently:
//
//   * the fan-out restriction limit derives from the scenario (SWD 3,
//     QCA 4, NML 2, FDM-SWD 2), so the FOG-tree structure — and with it
//     depth, buffer count, and area — differs per target;
//   * FDM-SWD carries an attenuation budget, so the loss-budget pass
//     inserts regenerating repeaters, costed at the scenario's repeater
//     premium in the metrics;
//   * FDM-SWD's 4 frequency lanes multiply the logical wave-pipelined
//     throughput (computed outputs are lane-independent — the demo checks
//     functional equivalence for every scenario).
//
// Usage: scenario_demo [adder-width]   (default 16)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "wavemig/gen/arith.hpp"
#include "wavemig/metrics.hpp"
#include "wavemig/pipeline.hpp"
#include "wavemig/simulation.hpp"
#include "wavemig/tech_scenario.hpp"
#include "wavemig/timing.hpp"

using namespace wavemig;

int main(int argc, char** argv) {
  const unsigned width = argc > 1 ? static_cast<unsigned>(std::stoul(argv[1])) : 16;
  const mig_network net = gen::ripple_adder_circuit(width);
  const auto original = compute_stats(net);

  std::printf("%u-bit ripple adder: %zu components, depth %u, %u PIs, %u POs\n\n", width,
              original.components, original.depth, net.num_pis(), net.num_pos());

  std::printf("%-8s | %5s %5s %5s | %5s %4s | %9s %10s | %8s %8s | %6s\n", "scenario", "MAJ",
              "BUF", "FOG", "depth", "reps", "area um^2", "T (MOPS)", "in-flt", "T/A", "equiv");
  std::printf("---------+-------------------+------------+----------------------+---------"
              "----------+-------\n");

  bool all_equivalent = true;
  for (const auto& name : tech_scenario::names()) {
    const auto scenario = tech_scenario::by_name(name);

    pipeline_options opts;
    opts.scenario = scenario;  // fan-out limit + loss budget derive from here
    const auto piped = wave_pipeline(net, opts);

    const bool equivalent = functionally_equivalent(net, piped.net);
    all_equivalent = all_equivalent && equivalent;

    const auto sm = compute_scenario_metrics(piped.net, scenario, /*wave_pipelined=*/true,
                                             piped.repeater_buffers_added);
    const auto& m = sm.metrics;

    std::printf("%-8s | %5zu %5zu %5zu | %5u %4zu | %9.3f %10.2f | %8u %8.3f | %6s\n",
                scenario.name.c_str(), m.components.majorities, m.components.buffers,
                m.components.fanout_gates, m.depth, sm.repeaters, m.area_um2, m.throughput_mops,
                m.waves_in_flight, m.throughput_per_area(), equivalent ? "yes" : "NO");
  }

  // Stage-timing view: the clock each scenario actually sustains, and the
  // logical throughput once FDM lanes are counted.
  std::printf("\n%-8s | %12s %12s %7s | %14s\n", "scenario", "req phase ns", "assumed ns", "slack",
              "eff. T (MOPS)");
  for (const auto& name : tech_scenario::names()) {
    const auto scenario = tech_scenario::by_name(name);
    pipeline_options opts;
    opts.scenario = scenario;
    const auto piped = wave_pipeline(net, opts);
    const auto timing = analyze_stage_timing(piped.net, scenario);
    std::printf("%-8s | %12.4f %12.4f %6.2fx | %14.2f\n", scenario.name.c_str(),
                timing.required_phase_delay_ns, timing.assumed_phase_delay_ns, timing.slack_ratio,
                timing.effective_wp_throughput_mops);
  }

  if (!all_equivalent) {
    std::fprintf(stderr, "scenario_demo: functional mismatch\n");
    return 1;
  }
  return 0;
}
