// Ablation A2 (DESIGN.md): fan-out restriction policies.
//   - residual stretching on/off (the paper's "do not leave residual paths");
//   - buffer-tree capacity awareness on/off in the combined flow.
// Shows that (1) stretching moves buffers into the FO pass without changing
// the final total much, (2) FOG counts never change (Fig. 8 observation b),
// (3) capacity-aware balancing keeps every degree within the limit.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "wavemig/gen/suite.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/pipeline.hpp"
#include "wavemig/stats.hpp"

using namespace wavemig;

namespace {

const std::vector<const char*>& sample() {
  static const std::vector<const char*> names{"sasc",  "i2c",     "mul8",    "mul16",
                                              "adder32", "crc32_8", "barrel64", "revx",
                                              "hamming", "max32x4"};
  return names;
}

}  // namespace

int main() {
  bench::print_title("Ablation A2 - Fan-out restriction policies (FO3 flows)");

  std::printf("%-12s | %8s %8s %8s | %8s %8s %8s | %8s %8s\n", "benchmark", "FOGs",
              "FO-bufs", "delayed", "FOGs'", "FO-bufs'", "delayed'", "total", "total'");
  std::printf("%-12s | %26s | %26s |\n", "", "stretching ON", "stretching OFF");
  bench::print_rule();

  for (const auto* name : sample()) {
    const auto net = gen::build_benchmark(name);

    pipeline_options on;
    on.fanout_limit = 3;
    on.fill_residual = true;
    const auto with = wave_pipeline(net, on);

    pipeline_options off = on;
    off.fill_residual = false;
    const auto without = wave_pipeline(net, off);

    std::printf("%-12s | %8zu %8zu %8zu | %8zu %8zu %8zu | %8zu %8zu\n", name, with.fogs_added,
                with.restriction_buffers_added, with.delayed_edges, without.fogs_added,
                without.restriction_buffers_added, without.delayed_edges,
                with.final_stats.components, without.final_stats.components);
  }
  bench::print_rule();

  std::printf(
      "\nCapacity-aware balancing (respect_limit_in_buffers) at FO2 with residual\n"
      "stretching disabled, so the balancing pass sees real slack. Observed\n"
      "result: identical netlists — after restriction every driver has at most\n"
      "k consumers, so a shared chain vertex carries at most k-1 same-depth taps\n"
      "plus one continuation and can never exceed the limit. Capacity awareness\n"
      "is a free safety net (it only matters on unrestricted inputs):\n");
  std::printf("%-12s %14s %14s %16s %16s\n", "benchmark", "max-degree ON", "max-degree OFF",
              "components ON", "components OFF");
  for (const auto* name : sample()) {
    const auto net = gen::build_benchmark(name);
    pipeline_options strict;
    strict.fanout_limit = 2;
    strict.fill_residual = false;
    strict.respect_limit_in_buffers = true;
    pipeline_options loose = strict;
    loose.respect_limit_in_buffers = false;
    const auto a = wave_pipeline(net, strict);
    const auto b = wave_pipeline(net, loose);
    std::printf("%-12s %14zu %14zu %16zu %16zu\n", name, max_fanout_degree(a.net),
                max_fanout_degree(b.net), a.final_stats.components, b.final_stats.components);
  }
  return 0;
}
