// Reproduces Fig. 8: impact on the number of components, normalized to the
// original netlist size and averaged over all benchmarks, for nine flows:
// BUF alone, FO2..FO5 alone, and FO2..FO5 followed by BUF.
//
// Paper values: BUF 3.81; FO2..5 = 2.48(.55), 1.61(.26), 1.35(.17),
// 1.25(.13); FOx+BUF = 9.74, 6.21, 5.30, 4.91 — the parenthesized share is
// the fan-out-gate fraction, which is independent of buffer insertion
// (observation (b) of §IV).

#include <cstdio>
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "wavemig/gen/suite.hpp"
#include "wavemig/pipeline.hpp"
#include "wavemig/stats.hpp"

using namespace wavemig;

namespace {

struct flow_spec {
  const char* label;
  std::optional<unsigned> limit;
  bool buffers;
  double paper_total;   // paper's normalized average (0 = original baseline)
  double paper_fog;     // paper's FOG share (parenthesized), -1 if n/a
};

}  // namespace

int main() {
  bench::print_title(
      "Fig. 8 - Normalized component count per flow (averaged over all 37 benchmarks)");

  const std::vector<flow_spec> flows{
      {"original", std::nullopt, false, 1.00, -1.0},
      {"BUF", std::nullopt, true, 3.81, -1.0},
      {"FO2", 2u, false, 2.48, 0.55},
      {"FO3", 3u, false, 1.61, 0.26},
      {"FO4", 4u, false, 1.35, 0.17},
      {"FO5", 5u, false, 1.25, 0.13},
      {"FO2+BUF", 2u, true, 9.74, 0.55},
      {"FO3+BUF", 3u, true, 6.21, 0.26},
      {"FO4+BUF", 4u, true, 5.30, 0.17},
      {"FO5+BUF", 5u, true, 4.91, 0.13},
  };

  const auto suite = gen::build_suite();

  std::printf("%-10s %12s %10s %12s | %10s %10s\n", "flow", "normalized", "stddev", "FOG share",
              "paper", "paper FOG");
  bench::print_rule();

  for (const auto& flow : flows) {
    std::vector<double> totals;
    std::vector<double> fog_shares;
    for (const auto& benchmk : suite) {
      if (!flow.limit && !flow.buffers) {
        totals.push_back(1.0);
        fog_shares.push_back(0.0);
        continue;
      }
      pipeline_options opts;
      opts.fanout_limit = flow.limit;
      opts.insert_buffers = flow.buffers;
      const auto result = wave_pipeline(benchmk.net, opts);
      const auto original = static_cast<double>(result.original_stats.components);
      totals.push_back(static_cast<double>(result.final_stats.components) / original);
      fog_shares.push_back(static_cast<double>(result.fogs_added) / original);
    }
    const double fog_avg = mean(fog_shares);
    std::printf("%-10s %12.2f %10.2f %12.2f | %10.2f %10s\n", flow.label, mean(totals),
                sample_stddev(totals), fog_avg, flow.paper_total,
                flow.paper_fog < 0 ? "-" : bench::fmt(flow.paper_fog).c_str());
  }
  bench::print_rule();
  std::printf(
      "Observations reproduced: (a) FOx+BUF exceeds BUF and FOx individually,\n"
      "(b) the FOG share of FOx equals that of FOx+BUF, (c) tighter limits\n"
      "cost more components.\n");
  return 0;
}
