// Ablation A7 (DESIGN.md): clock-phase count sweep. More phases lower the
// throughput (one wave per P phases) but widen the per-edge hold window,
// letting tolerance P-2 balancing drop buffers. This bench maps that
// trade-off: throughput, buffer bill, and SWD area per phase count, with
// coherence verified by the cycle-accurate simulator.

#include <cstdio>
#include <random>

#include "bench_util.hpp"
#include "wavemig/buffer_insertion.hpp"
#include "wavemig/gen/suite.hpp"
#include "wavemig/metrics.hpp"
#include "wavemig/simulation.hpp"
#include "wavemig/wave_simulator.hpp"

using namespace wavemig;

namespace {

bool verify_streaming(const mig_network& net, const level_map& schedule, unsigned phases) {
  std::mt19937_64 rng{99};
  std::vector<std::vector<bool>> waves(6, std::vector<bool>(net.num_pis()));
  for (auto& wave : waves) {
    for (std::size_t i = 0; i < wave.size(); ++i) {
      wave[i] = (rng() & 1u) != 0;
    }
  }
  const auto run = run_waves(net, waves, phases, schedule);
  for (std::size_t w = 0; w < waves.size(); ++w) {
    if (run.outputs[w] != simulate_pattern(net, waves[w])) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::print_title("Ablation A7 - Phase-count sweep with matched tolerance (tol = P-2)");

  std::printf("%-12s | %6s | %10s %12s %12s %14s | %s\n", "benchmark", "phases", "buffers",
              "SWD area", "T (MOPS)", "waves in flt", "coherent");
  bench::print_rule('-', 110);

  const auto swd = technology::swd();
  for (const auto& name : {"mul8", "sasc", "crc32_8", "hamming"}) {
    const auto net = gen::build_benchmark(name);
    for (unsigned phases = 3; phases <= 6; ++phases) {
      buffer_insertion_options opts;
      opts.tolerance = phases - 2;
      const auto result = insert_buffers(net, opts);
      const auto metrics = compute_metrics(result.net, swd, true, phases);
      const bool ok = verify_streaming(result.net, result.schedule, phases);
      std::printf("%-12s | %6u | %10zu %12.4f %12.2f %14u | %s\n", name, phases,
                  result.buffers_added, metrics.area_um2, metrics.throughput_mops,
                  metrics.waves_in_flight, ok ? "yes" : "NO");
    }
  }
  bench::print_rule('-', 110);
  std::printf(
      "Throughput falls as 1/P while the buffer bill falls with the widened\n"
      "hold window: a Pareto knob the paper's fixed three-phase scheme fixes\n"
      "at one point.\n");
  return 0;
}
