// Reproduces Fig. 9: normalized throughput-per-area and throughput-per-power
// gains of wave pipelining (FO3+BUF) for SWD, QCA and NML, averaged over all
// 37 benchmarks (paper: T/A 5x / 8x / 3x and T/P 23x / 13x / 5x).

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "wavemig/gen/suite.hpp"
#include "wavemig/metrics.hpp"
#include "wavemig/pipeline.hpp"
#include "wavemig/stats.hpp"

using namespace wavemig;

int main() {
  bench::print_title("Fig. 9 - Normalized T/A and T/P gains per technology (FO3+BUF)");

  const std::array<technology, 3> techs{technology::swd(), technology::qca(), technology::nml()};
  static const double paper_ta[3] = {5.0, 8.0, 3.0};
  static const double paper_tp[3] = {23.0, 13.0, 5.0};

  std::printf("%-16s", "benchmark");
  for (const auto& t : techs) {
    std::printf(" | %8s T/A %8s T/P", t.name.c_str(), t.name.c_str());
  }
  std::printf("\n");
  bench::print_rule('-', 110);

  std::array<std::vector<double>, 3> ta_gains;
  std::array<std::vector<double>, 3> tp_gains;
  for (const auto& benchmk : gen::build_suite()) {
    const auto piped = wave_pipeline(benchmk.net);  // FO3 + BUF
    std::printf("%-16s", benchmk.name.c_str());
    for (std::size_t t = 0; t < techs.size(); ++t) {
      const auto cmp = compare_metrics(benchmk.net, piped.net, techs[t]);
      ta_gains[t].push_back(cmp.ta_gain);
      tp_gains[t].push_back(cmp.tp_gain);
      std::printf(" | %12.2f %12.2f", cmp.ta_gain, cmp.tp_gain);
    }
    std::printf("\n");
  }
  bench::print_rule('-', 110);

  std::printf("%-16s", "average");
  for (std::size_t t = 0; t < techs.size(); ++t) {
    std::printf(" | %12.2f %12.2f", mean(ta_gains[t]), mean(tp_gains[t]));
  }
  std::printf("\n%-16s", "paper average");
  for (std::size_t t = 0; t < techs.size(); ++t) {
    std::printf(" | %12.2f %12.2f", paper_ta[t], paper_tp[t]);
  }
  std::printf("\n");
  return 0;
}
