// Reproduces Table II: per-benchmark Original vs Wave-Pipelined metrics for
// the seven selected circuits on SWD, QCA and NML (FO3 + BUF flow, §V).
//
// Paper reference values are printed alongside for comparison; absolute
// numbers differ because the benchmark netlists are regenerated (see
// DESIGN.md "Substitutions"), the shape — who wins and by roughly what
// factor — is the reproduction target.

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.hpp"
#include "wavemig/gen/suite.hpp"
#include "wavemig/metrics.hpp"
#include "wavemig/pipeline.hpp"

using namespace wavemig;

namespace {

struct paper_row {
  double ta_gain;
  double tp_gain;
};

// Paper Table II T/A and T/P columns (SWD, QCA, NML) for the 7 circuits.
const std::map<std::string, std::array<paper_row, 3>> paper_reference{
    {"sasc", {{{1.36, 3.00}, {1.59, 2.38}, {0.76, 1.13}}}},
    {"des_area", {{{3.75, 12.67}, {5.33, 9.21}, {2.46, 4.25}}}},
    {"mul32", {{{8.38, 19.33}, {10.52, 16.95}, {6.36, 10.25}}}},
    {"hamming", {{{8.02, 32.00}, {13.93, 21.92}, {4.65, 7.32}}}},
    {"mul64", {{{14.98, 45.00}, {25.40, 31.46}, {8.59, 10.64}}}},
    {"revx", {{{20.13, 75.00}, {32.81, 51.62}, {12.16, 19.14}}}},
    {"diffeq1", {{{12.74, 94.00}, {29.73, 38.28}, {5.82, 7.49}}}},
};

void print_tech_block(const technology& tech, unsigned tech_index,
                      const std::vector<gen::benchmark_case>& circuits,
                      const std::vector<pipeline_result>& piped) {
  std::printf("%s\n", tech.name.c_str());
  std::printf("%-10s %5s %5s %8s %8s | %10s %10s | %9s %9s | %10s %10s | %6s %6s | %6s %6s\n",
              "bench", "d", "d_wp", "size", "size_wp", "area", "area_wp", "P(uW)", "P_wp",
              "T(MOPS)", "T_wp", "T/A", "ref", "T/P", "ref");
  bench::print_rule('-', 150);
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    const auto cmp = compare_metrics(circuits[i].net, piped[i].net, tech);
    const auto& ref = paper_reference.at(circuits[i].name)[tech_index];
    std::printf(
        "%-10s %5u %5u %8zu %8zu | %10s %10s | %9s %9s | %10s %10s | %6.2f %6.2f | %6.2f %6.2f\n",
        circuits[i].name.c_str(), cmp.original.depth, cmp.pipelined.depth,
        cmp.original.components.total(), cmp.pipelined.components.total(),
        bench::fmt(cmp.original.area_um2).c_str(), bench::fmt(cmp.pipelined.area_um2).c_str(),
        bench::fmt(cmp.original.power_uw).c_str(), bench::fmt(cmp.pipelined.power_uw).c_str(),
        bench::fmt(cmp.original.throughput_mops).c_str(),
        bench::fmt(cmp.pipelined.throughput_mops).c_str(), cmp.ta_gain, ref.ta_gain, cmp.tp_gain,
        ref.tp_gain);
  }
  bench::print_rule('-', 150);
}

}  // namespace

int main() {
  bench::print_title(
      "Table II - Summary of benchmarking results (Original vs Wave-Pipelined, FO3+BUF)");

  std::vector<gen::benchmark_case> circuits;
  std::vector<pipeline_result> piped;
  for (const auto& name : gen::table2_names()) {
    circuits.push_back({name, gen::build_benchmark(name)});
    piped.push_back(wave_pipeline(circuits.back().net));  // default: FO3 + BUF
  }

  const std::array<technology, 3> techs{technology::swd(), technology::qca(), technology::nml()};
  for (unsigned t = 0; t < techs.size(); ++t) {
    print_tech_block(techs[t], t, circuits, piped);
  }
  std::printf(
      "\n'ref' columns are the paper's Table II gains. Sizes include majority\n"
      "gates, inverters, buffers and fan-out gates after polarity optimization.\n");
  return 0;
}
