// Throughput comparison of the three wave-simulation paths on a balanced
// 64-bit ripple-carry adder netlist (the acceptance benchmark of the engine
// refactor):
//
//   seed scalar — the interpreter the repo shipped with: per tick, walk
//                 every component of the mig_network, chase fan-ins through
//                 the node table, snapshot a vector<bool> of the full state.
//   engine scalar — the compiled tick program: per-clock-phase firing
//                 lists, flat fan-in refs, in-place byte state.
//   engine packed — run_waves_packed: 64 independent waves per 64-bit word
//                 streamed through the folded majority-only program.
//   engine parallel — run_waves_parallel: the packed chunks sharded across
//                 a persistent worker pool (thread-scaling sweep at 1, 2, 4
//                 and hardware-concurrency threads).
//   serving async — serving_session: the async submission front-end
//                 (futures over a multi-producer queue, compiled-netlist
//                 cache), measured at steady state, plus a cache-churn
//                 sweep that hammers a byte-bounded cache with a rotating
//                 circuit mix and verifies the bound is never exceeded.
//
//   $ ./bench/perf_wave_engine [--json] [num_waves]

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <future>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "wavemig/buffer_insertion.hpp"
#include "wavemig/engine/compiled_netlist.hpp"
#include "wavemig/engine/parallel_executor.hpp"
#include "wavemig/engine/serving.hpp"
#include "wavemig/engine/wave_engine.hpp"
#include "wavemig/gen/arith.hpp"
#include "wavemig/gen/misc.hpp"
#include "wavemig/gen/random_mig.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/pipeline.hpp"
#include "wavemig/tech_scenario.hpp"
#include "wavemig/wave_simulator.hpp"

using namespace wavemig;

namespace {

/// Verbatim port of the seed's run_waves interpreter (pre-engine), kept here
/// as the baseline the acceptance criterion is measured against.
wave_run_result seed_scalar_run_waves(const mig_network& net,
                                      const std::vector<std::vector<bool>>& waves,
                                      unsigned phases, const level_map& levels) {
  const std::uint32_t depth = levels.depth;

  wave_run_result result;
  result.initiation_interval = phases;
  result.latency_ticks = depth > 0 ? depth : 1;
  result.waves_in_flight = (depth + phases - 1) / phases;
  result.outputs.assign(waves.size(), {});
  if (waves.empty()) {
    return result;
  }

  auto sample_tick = [&](std::uint64_t w, std::uint32_t level) -> std::uint64_t {
    return w * phases + (level > 0 ? level - 1 : 0);
  };

  std::uint64_t last_tick = 0;
  const std::uint64_t last_wave = waves.size() - 1;
  for (const auto& po : net.pos()) {
    if (net.is_constant(po.driver.index())) {
      continue;
    }
    last_tick = std::max(last_tick, sample_tick(last_wave, levels[po.driver.index()]));
  }

  std::vector<bool> value(net.num_nodes(), false);
  std::vector<bool> snapshot;

  auto read = [&](const std::vector<bool>& state, signal s) {
    const bool v = state[s.index()];
    return s.is_complemented() ? !v : v;
  };

  for (std::uint64_t t = 0; t <= last_tick; ++t) {
    const std::uint64_t wave = t / phases;
    if (t % phases == 0 && wave < waves.size()) {
      for (std::size_t i = 0; i < net.num_pis(); ++i) {
        value[net.pis()[i]] = waves[wave][i];
      }
    }

    snapshot = value;
    const std::uint32_t fired = static_cast<std::uint32_t>(t % phases);
    net.foreach_component([&](node_index n) {
      const std::uint32_t lvl = levels[n];
      if (lvl == 0 || (lvl - 1) % phases != fired) {
        return;
      }
      const auto fis = net.fanins(n);
      if (net.is_majority(n)) {
        const bool a = read(snapshot, fis[0]);
        const bool b = read(snapshot, fis[1]);
        const bool c = read(snapshot, fis[2]);
        value[n] = (a && b) || (b && c) || (a && c);
      } else {
        value[n] = read(snapshot, fis[0]);
      }
    });

    for (std::size_t p = 0; p < net.num_pos(); ++p) {
      const signal driver = net.po_signal(p);
      if (net.is_constant(driver.index())) {
        continue;
      }
      const std::uint32_t lvl = levels[driver.index()];
      if (t < (lvl > 0 ? lvl - 1 : 0)) {
        continue;
      }
      const std::uint64_t w = (t - (lvl > 0 ? lvl - 1 : 0)) / phases;
      if (w < waves.size() && t == sample_tick(w, lvl)) {
        auto& out = result.outputs[w];
        if (out.empty()) {
          out.assign(net.num_pos(), false);
        }
        out[p] = read(value, driver);
      }
    }
  }

  result.ticks = last_tick + 1;
  return result;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Repeats `fn` (one pass over `waves_per_pass` waves) until enough wall
/// time accumulated for a stable rate, and returns waves per second.
template <typename Fn>
double measure_wps(std::size_t waves_per_pass, Fn&& fn) {
  fn();  // warm-up: scratch allocation, cache residency
  std::size_t passes = 0;
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++passes;
    elapsed = seconds_since(start);
  } while (elapsed < 0.2);
  return static_cast<double>(passes * waves_per_pass) / elapsed;
}

/// Steady-state kernel comparison on one netlist: the single-word (W = 1)
/// kernel driven chunk by chunk — the engine's original hot path — against
/// the chunk-major blocked kernel (the PR-4 hot path, now the legacy
/// adapter: it pays a per-PI gather and per-PO scatter at every block) and
/// the native plane-major kernel (unit-stride word I/O, the gather
/// eliminated), at optimizer levels 0 and 2. All variants are verified
/// bit-identical before anything is reported.
struct kernel_sweep_result {
  double w1_wps{0.0};
  double block_wps{0.0};        // chunk-major adapter, opt 0
  double block_opt2_wps{0.0};   // chunk-major adapter, opt 2 (the PR-4 snapshot path)
  double plane_wps{0.0};        // plane-major native, opt 0
  double plane_opt2_wps{0.0};   // plane-major native, opt 2
  std::size_t ops[3]{};    // comb ops at opt level 0/1/2
  std::size_t slots[3]{};  // comb slots at opt level 0/1/2
};

kernel_sweep_result kernel_sweep(const mig_network& balanced_net, const level_map& schedule,
                                 const engine::wave_batch& batch) {
  kernel_sweep_result r;
  const engine::compiled_netlist programs[3] = {
      engine::compiled_netlist{balanced_net, schedule, {.opt_level = 0}},
      engine::compiled_netlist{balanced_net, schedule, {.opt_level = 1}},
      engine::compiled_netlist{balanced_net, schedule, {.opt_level = 2}}};
  for (int level = 0; level < 3; ++level) {
    r.ops[level] = programs[level].num_comb_ops();
    r.slots[level] = programs[level].comb_slot_count();
  }
  const auto& opt0 = programs[0];
  const auto& opt2 = programs[2];
  const std::size_t num_chunks = batch.num_chunks();
  const std::size_t num_pos = opt0.num_pos();

  const auto chunk_major = batch.chunk_major_words();
  std::vector<std::uint64_t> out(num_chunks * num_pos);
  std::vector<std::uint64_t> plane_out(num_chunks * num_pos);
  std::vector<std::uint64_t> scratch;

  const auto single_word_pass = [&](const engine::compiled_netlist& net) {
    for (std::size_t c = 0; c < num_chunks; ++c) {
      engine::eval_packed_chunk(net, chunk_major.data() + c * net.num_pis(),
                                out.data() + c * num_pos, scratch);
    }
  };
  const auto block_pass = [&](const engine::compiled_netlist& net) {
    engine::eval_packed_block(net, chunk_major.data(), out.data(), num_chunks, scratch);
  };
  const auto plane_pass = [&](const engine::compiled_netlist& net) {
    engine::eval_packed_planes(net, batch.view(),
                               {plane_out.data(), num_chunks, num_pos, num_chunks},
                               scratch);
  };

  single_word_pass(opt0);
  const auto reference = out;
  for (const auto& net : programs) {
    std::fill(out.begin(), out.end(), 0);
    block_pass(net);
    if (out != reference) {
      std::fprintf(stderr, "FATAL: kernel variants disagree — bench is meaningless\n");
      std::exit(2);
    }
    std::fill(plane_out.begin(), plane_out.end(), 0);
    plane_pass(net);
    for (std::size_t c = 0; c < num_chunks; ++c) {
      for (std::size_t p = 0; p < num_pos; ++p) {
        if (plane_out[p * num_chunks + c] != reference[c * num_pos + p]) {
          std::fprintf(stderr,
                       "FATAL: plane-major kernel disagrees — bench is meaningless\n");
          std::exit(2);
        }
      }
    }
  }

  r.w1_wps = measure_wps(batch.num_waves(), [&] { single_word_pass(opt0); });
  r.block_wps = measure_wps(batch.num_waves(), [&] { block_pass(opt0); });
  r.plane_wps = measure_wps(batch.num_waves(), [&] { plane_pass(opt0); });
  // The opt-2 pair feeds the plane-holds-PR4 acceptance gate; best-of-two
  // windows per path so a single noisy window on a shared runner cannot
  // fail the ratio.
  r.block_opt2_wps = std::max(measure_wps(batch.num_waves(), [&] { block_pass(opt2); }),
                              measure_wps(batch.num_waves(), [&] { block_pass(opt2); }));
  r.plane_opt2_wps = std::max(measure_wps(batch.num_waves(), [&] { plane_pass(opt2); }),
                              measure_wps(batch.num_waves(), [&] { plane_pass(opt2); }));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::json_mode(argc, argv);
  std::size_t num_waves = 1024;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') {
      char* end = nullptr;
      num_waves = static_cast<std::size_t>(std::strtoull(argv[i], &end, 10));
      if (end == argv[i] || *end != '\0' || num_waves == 0) {
        std::fprintf(stderr, "perf_wave_engine: invalid wave count '%s'\n", argv[i]);
        return 2;
      }
    }
  }
  const unsigned phases = 3;

  const auto raw = gen::ripple_adder_circuit(64);
  const auto balanced = insert_buffers(raw);
  const auto& net = balanced.net;
  const auto levels = compute_levels(net);

  std::mt19937_64 rng{2017};
  std::vector<std::vector<bool>> waves(num_waves, std::vector<bool>(net.num_pis()));
  for (auto& wave : waves) {
    for (std::size_t i = 0; i < wave.size(); ++i) {
      wave[i] = (rng() & 1u) != 0;
    }
  }

  if (!json) {
    bench::print_title("wave engine throughput — 64-bit ripple-carry adder, " +
                       std::to_string(num_waves) + " waves, " + std::to_string(phases) +
                       "-phase clock");
    std::printf("netlist: %zu majority gates, %zu buffers, depth %u\n\n",
                net.num_majorities(), net.num_buffers(), levels.depth);
  }

  // --- seed scalar baseline -------------------------------------------------
  auto start = std::chrono::steady_clock::now();
  const auto seed_run = seed_scalar_run_waves(net, waves, phases, levels);
  const double seed_s = seconds_since(start);

  // --- engine scalar (compiled tick program) --------------------------------
  start = std::chrono::steady_clock::now();
  const auto scalar_run = run_waves(net, waves, phases);
  const double scalar_s = seconds_since(start);

  // --- engine packed (64 waves per word) ------------------------------------
  start = std::chrono::steady_clock::now();
  const auto packed_run = run_waves_packed(net, waves, phases);
  const double packed_s = seconds_since(start);

  // --- engine packed, steady state (compile + pack amortized) ---------------
  const engine::compiled_netlist compiled{net, levels};
  const auto batch = engine::wave_batch::from_waves(waves, net.num_pis());
  start = std::chrono::steady_clock::now();
  const auto steady_run = engine::run_waves_packed(compiled, batch, phases);
  const double steady_s = seconds_since(start);

  if (seed_run.outputs != scalar_run.outputs || seed_run.outputs != packed_run.outputs ||
      seed_run.outputs != steady_run.unpack()) {
    std::fprintf(stderr, "FATAL: paths disagree — benchmark results are meaningless\n");
    return 2;
  }

  // --- kernel width x optimizer steady-state sweep --------------------------
  // The acceptance benchmark of the multi-word kernel + optimizer PR: on
  // each netlist, the single-word (W = 1) kernel — the engine's former hot
  // path — against the blocked multi-word kernel (AVX2-dispatched where
  // built) at optimizer levels 0 and 2. Two shapes: the balanced adder
  // (deep, few POs) and a large random MIG (wide, optimizer-friendly).
  const std::size_t kernel_waves = std::max<std::size_t>(num_waves, 8192);
  const auto kernel_batch = [&](const mig_network& circuit, std::uint64_t seed) {
    std::mt19937_64 batch_rng{seed};
    engine::wave_batch b{circuit.num_pis()};
    b.reserve(kernel_waves);
    std::vector<bool> wave(circuit.num_pis());
    for (std::size_t w = 0; w < kernel_waves; ++w) {
      for (std::size_t i = 0; i < wave.size(); ++i) {
        wave[i] = (batch_rng() & 1u) != 0;
      }
      b.append(wave);
    }
    return b;
  };

  const auto mig_balanced = insert_buffers(gen::random_mig({64, 4000, 0.5, 32, 777}));
  struct kernel_case {
    const char* name;
    const mig_network& net;
    const level_map& schedule;
    kernel_sweep_result sweep;
  };
  kernel_case kernel_cases[] = {
      {"adder64", net, balanced.schedule, {}},
      {"mig4k", mig_balanced.net, mig_balanced.schedule, {}},
  };
  double best_kernel_speedup = 0.0;
  // PR-5 acceptance: on every circuit, the native plane-major path must hold
  // the steady-state throughput of the PR-4 snapshot path (the chunk-major
  // blocked kernel measured in the same run — the honest cross-machine form
  // of "≥ BENCH_pr4.json"), modulo timer noise.
  bool plane_holds_pr4 = true;
  for (auto& k : kernel_cases) {
    k.sweep = kernel_sweep(k.net, k.schedule, kernel_batch(k.net, 4242));
    best_kernel_speedup =
        std::max(best_kernel_speedup, k.sweep.plane_opt2_wps / k.sweep.w1_wps);
    plane_holds_pr4 =
        plane_holds_pr4 && k.sweep.plane_opt2_wps >= 0.95 * k.sweep.block_opt2_wps;
  }

  // --- parallel sharded execution (thread-scaling sweep) --------------------
  // A larger batch so every worker sees plenty of 64-wave chunks; the sweep
  // measures steady-state serving throughput (compile + pack amortized, like
  // the steady packed row).
  const std::size_t sweep_waves = std::max<std::size_t>(num_waves, 8192);
  const auto sweep_batch = [&] {
    std::mt19937_64 sweep_rng{2103};
    engine::wave_batch b{net.num_pis()};
    std::vector<bool> wave(net.num_pis());
    for (std::size_t w = 0; w < sweep_waves; ++w) {
      for (std::size_t i = 0; i < wave.size(); ++i) {
        wave[i] = (sweep_rng() & 1u) != 0;
      }
      b.append(wave);
    }
    return b;
  }();
  const auto sweep_reference = engine::run_waves_packed(compiled, sweep_batch, phases);

  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> thread_counts{1, 2, 4};
  if (std::find(thread_counts.begin(), thread_counts.end(), hw_threads) ==
      thread_counts.end()) {
    thread_counts.push_back(hw_threads);
  }
  std::vector<double> parallel_wps(thread_counts.size(), 0.0);
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    engine::parallel_executor executor{thread_counts[i]};
    // Warm-up run: spin up workers' scratch before timing.
    (void)engine::run_waves_parallel(compiled, sweep_batch, phases, executor);
    start = std::chrono::steady_clock::now();
    const auto run = engine::run_waves_parallel(compiled, sweep_batch, phases, executor);
    parallel_wps[i] = static_cast<double>(sweep_waves) / seconds_since(start);
    if (run.words != sweep_reference.words) {
      std::fprintf(stderr, "FATAL: parallel path diverges at %u threads\n",
                   thread_counts[i]);
      return 2;
    }
  }

  // --- async serving throughput ---------------------------------------------
  // The serving front-end against the same adder: submit a burst of
  // batch-sized requests as futures and wait them all. Steady state — the
  // warm-up request pays the one compile (cache miss); every timed request
  // is a cache hit sharded across the pool.
  engine::parallel_executor serve_executor{hw_threads};
  const auto shared_raw = std::make_shared<const mig_network>(raw);
  double serving_wps = 0.0;
  constexpr std::size_t serving_requests = 16;
  {
    engine::serving_session serving{serve_executor};
    // Warm-up: compile + pack. The timed loop submits through the
    // shared_ptr hot path — no per-request network copy, fingerprint
    // memoized after this first submission.
    (void)serving.submit(shared_raw, sweep_batch, phases).get();
    std::vector<std::future<engine::packed_wave_result>> futures;
    futures.reserve(serving_requests);
    start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < serving_requests; ++r) {
      futures.push_back(serving.submit(shared_raw, sweep_batch, phases));
    }
    for (auto& future : futures) {
      if (future.get().words != sweep_reference.words) {
        std::fprintf(stderr, "FATAL: async serving path diverges from packed\n");
        return 2;
      }
    }
    serving_wps =
        static_cast<double>(serving_requests * sweep_waves) / seconds_since(start);
  }

  // --- cache-churn sweep ----------------------------------------------------
  // A serving-shaped circuit mix through a byte-bounded cache: a hot set of
  // four circuits interleaved with a long cold tail, so the hot programs
  // stay resident while the cold ones evict each other on a steady diet —
  // all while requests are in flight. The byte bound is a hard ceiling —
  // exceeding it at any sample point fails the bench.
  constexpr std::size_t churn_circuits = 24;
  constexpr std::size_t churn_rounds = 4;
  std::vector<mig_network> circuits;
  circuits.reserve(churn_circuits);
  for (std::size_t i = 0; i < churn_circuits; ++i) {
    circuits.push_back(
        gen::random_mig({16, 150, 0.5, 8, static_cast<std::uint64_t>(9000 + i)}));
  }
  // Budget: the four hot programs exactly, plus the five largest cold
  // programs — hot entries survive their reuse distance no matter which
  // cold programs happen to be resident, while the cold tail (20 circuits
  // into 5 slots) evicts itself on a steady diet.
  const auto program_bytes = [](const mig_network& circuit) {
    const auto balanced = insert_buffers(circuit);
    return engine::compiled_netlist{balanced.net, balanced.schedule}.memory_bytes();
  };
  std::size_t byte_bound = 0;
  std::vector<std::size_t> cold_bytes;
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    const std::size_t bytes = program_bytes(circuits[i]);
    if (i < 4) {
      byte_bound += bytes;
    } else {
      cold_bytes.push_back(bytes);
    }
  }
  std::sort(cold_bytes.begin(), cold_bytes.end(), std::greater<>{});
  for (std::size_t i = 0; i < 5; ++i) {
    byte_bound += cold_bytes[i];
  }

  engine::session_stats churn_stats;
  std::size_t churn_max_bytes = 0;
  {
    engine::serving_session churn{serve_executor, {}, {.max_bytes = byte_bound}};
    std::mt19937_64 churn_rng{31};
    std::vector<std::future<engine::packed_wave_result>> futures;
    for (std::size_t round = 0; round < churn_rounds; ++round) {
      futures.clear();
      for (std::size_t r = 0; r < 2 * circuits.size(); ++r) {
        // Even requests walk the cold tail, odd ones revisit the hot four.
        const auto& circuit =
            (r % 2 == 0) ? circuits[4 + (r / 2) % (circuits.size() - 4)]
                         : circuits[(r / 2) % 4];
        engine::wave_batch batch{circuit.num_pis()};
        std::vector<bool> wave(circuit.num_pis());
        for (std::size_t w = 0; w < 128; ++w) {
          for (std::size_t i = 0; i < wave.size(); ++i) {
            wave[i] = (churn_rng() & 1u) != 0;
          }
          batch.append(wave);
        }
        futures.push_back(churn.submit(circuit, std::move(batch), phases));
        churn_max_bytes = std::max(churn_max_bytes, churn.stats().bytes);
      }
      for (auto& future : futures) {
        (void)future.get();
      }
      churn_max_bytes = std::max(churn_max_bytes, churn.stats().bytes);
      if (churn_max_bytes > byte_bound) {
        std::fprintf(stderr, "FATAL: cache exceeded its byte bound (%zu > %zu)\n",
                     churn_max_bytes, byte_bound);
        return 2;
      }
    }
    churn_stats = churn.stats();
  }
  const double churn_hit_rate = static_cast<double>(churn_stats.hits) /
                                static_cast<double>(churn_stats.hits + churn_stats.misses);

  // --- dispatcher sweep -------------------------------------------------------
  // Submission-shape sweep through the coalescing dispatcher: many small
  // same-program requests (the coalescing sweet spot), few large ones
  // (singleton passes), and a hot/cold program mix (small requests split
  // across four programs, so fused groups shrink). Each scenario records
  // throughput, end-to-end latency percentiles (submit -> callback, via the
  // bench_util nearest-rank helper), queue-wait percentiles (from the
  // session's sample reservoir), and how much actually coalesced.
  struct dispatch_record {
    const char* name;
    double wps{0.0};
    double e2e_p50_ms{0.0};
    double e2e_p99_ms{0.0};
    double queue_p50_ms{0.0};
    double queue_p99_ms{0.0};
    double fused_passes{0.0};
    double coalesced_requests{0.0};
    double singleton_passes{0.0};
  };
  std::vector<std::shared_ptr<const mig_network>> mix_nets;
  mix_nets.push_back(shared_raw);
  for (std::uint64_t s = 0; s < 3; ++s) {
    mix_nets.push_back(std::make_shared<const mig_network>(
        gen::random_mig({32, 400, 0.5, 16, 5100 + s})));
  }
  const auto small_batch_for = [&](const mig_network& circuit, std::uint64_t seed) {
    std::mt19937_64 small_rng{seed};
    engine::wave_batch b{circuit.num_pis()};
    std::vector<bool> wave(circuit.num_pis());
    for (std::size_t w = 0; w < 128; ++w) {
      for (std::size_t i = 0; i < wave.size(); ++i) {
        wave[i] = (small_rng() & 1u) != 0;
      }
      b.append(wave);
    }
    return b;
  };

  const auto run_dispatch_scenario =
      [&](const char* name,
          const std::vector<std::pair<std::shared_ptr<const mig_network>,
                                      const engine::wave_batch*>>& submissions) {
        dispatch_record rec;
        rec.name = name;
        engine::serving_session dispatch{serve_executor};
        // Warm the compile cache so the timed window measures dispatch and
        // evaluation, not one-off lowering.
        for (const auto& n : mix_nets) {
          (void)dispatch.submit(n, small_batch_for(*n, 1), phases).get();
        }
        (void)dispatch.take_queue_wait_samples();

        std::vector<double> e2e_ms(submissions.size(), 0.0);
        std::size_t total_waves = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < submissions.size(); ++i) {
          total_waves += submissions[i].second->num_waves();
          const auto submit_time = std::chrono::steady_clock::now();
          dispatch.submit(submissions[i].first, *submissions[i].second, phases,
                          [&e2e_ms, i, submit_time](engine::packed_wave_result result,
                                                    std::exception_ptr error) {
                            if (error || result.num_waves == 0) {
                              std::fprintf(stderr,
                                           "FATAL: dispatcher sweep request failed\n");
                              std::exit(2);
                            }
                            e2e_ms[i] = std::chrono::duration<double, std::milli>(
                                            std::chrono::steady_clock::now() - submit_time)
                                            .count();
                          });
        }
        dispatch.drain();
        rec.wps = static_cast<double>(total_waves) / seconds_since(t0);
        auto queue_ms = dispatch.take_queue_wait_samples();
        rec.e2e_p50_ms = bench::percentile(e2e_ms, 50.0);
        rec.e2e_p99_ms = bench::percentile(e2e_ms, 99.0);
        rec.queue_p50_ms = bench::percentile(queue_ms, 50.0);
        rec.queue_p99_ms = bench::percentile(queue_ms, 99.0);
        const auto m = dispatch.metrics();
        rec.fused_passes = static_cast<double>(m.fused_passes);
        rec.coalesced_requests = static_cast<double>(m.coalesced_requests);
        rec.singleton_passes = static_cast<double>(m.singleton_passes);
        return rec;
      };

  std::vector<dispatch_record> dispatch_records;
  {
    const auto hot_small = small_batch_for(raw, 71);
    std::vector<std::pair<std::shared_ptr<const mig_network>, const engine::wave_batch*>>
        many_small(256, {shared_raw, &hot_small});
    dispatch_records.push_back(run_dispatch_scenario("many_small", many_small));

    std::vector<std::pair<std::shared_ptr<const mig_network>, const engine::wave_batch*>>
        few_large(8, {shared_raw, &sweep_batch});
    dispatch_records.push_back(run_dispatch_scenario("few_large", few_large));

    std::vector<engine::wave_batch> mix_batches;
    for (std::size_t i = 0; i < mix_nets.size(); ++i) {
      mix_batches.push_back(small_batch_for(*mix_nets[i], 600 + i));
    }
    std::vector<std::pair<std::shared_ptr<const mig_network>, const engine::wave_batch*>>
        hot_cold;
    for (std::size_t r = 0; r < 256; ++r) {
      const std::size_t which = r % mix_nets.size();
      hot_cold.push_back({mix_nets[which], &mix_batches[which]});
    }
    dispatch_records.push_back(run_dispatch_scenario("hot_cold", hot_cold));
  }

  // --- technology scenario sweep --------------------------------------------
  // The same raw adder through the scenario-keyed batch_session, once per
  // built-in scenario. Every scenario computes the same function (words are
  // checked against the packed reference), but each compiles its own
  // program: the scenario's fan-out limit and loss budget reshape the
  // prepared netlist, so steady-state throughput differs per target.
  struct scenario_record {
    std::string key;  // json-safe: lower-case, '-' -> '_'
    double wps{0.0};
    std::size_t repeaters{0};
    std::size_t components{0};
    std::uint32_t depth{0};
    unsigned fdm_lanes{1};
  };
  std::vector<scenario_record> scenario_records;
  {
    engine::batch_session scenario_session{serve_executor};
    for (const auto& name : tech_scenario::names()) {
      const auto scenario = tech_scenario::by_name(name);
      scenario_record rec;
      rec.key = name;
      for (auto& c : rec.key) {
        c = c == '-' ? '_' : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      rec.fdm_lanes = scenario.fdm_lanes;

      pipeline_options opts;
      opts.scenario = scenario;
      const auto piped = wave_pipeline(raw, opts);
      rec.repeaters = piped.repeater_buffers_added;
      rec.components = piped.final_stats.components;
      rec.depth = piped.depth_after;

      // Warm the cache (one compile miss), then measure steady-state hits.
      const auto warm = scenario_session.run(raw, sweep_batch, phases, scenario);
      if (warm.words != sweep_reference.words) {
        std::fprintf(stderr, "FATAL: scenario '%s' diverges from the packed reference\n",
                     name.c_str());
        return 2;
      }
      rec.wps = measure_wps(sweep_waves, [&] {
        (void)scenario_session.run(raw, sweep_batch, phases, scenario);
      });
      scenario_records.push_back(std::move(rec));
    }
  }

  // Default-scenario no-regression gate: the SWD scenario prepares the
  // netlist exactly as the historical default flow does, so the SWD-tagged
  // program and the untagged program compiled from the same prepared
  // netlist are identical modulo the cache tag. Tagging must therefore be
  // free at run time — best-of-two windows per side, ratio gated at 0.8 so
  // timer noise on a shared runner cannot fail an identical-program pair.
  double scenario_gate_ratio = 0.0;
  bool scenario_gate_ok = false;
  {
    const auto prepared = wave_pipeline(raw, {});
    const engine::compiled_netlist untagged{prepared.net};
    engine::compile_options tagged_options;
    tagged_options.scenario_fingerprint = tech_scenario::swd().fingerprint();
    const engine::compiled_netlist tagged{prepared.net, tagged_options};
    const auto untagged_run = engine::run_waves_packed(untagged, sweep_batch, phases);
    const auto tagged_run = engine::run_waves_packed(tagged, sweep_batch, phases);
    if (untagged_run.words != tagged_run.words ||
        untagged_run.words != sweep_reference.words) {
      std::fprintf(stderr, "FATAL: scenario-tagged program diverges from untagged\n");
      return 2;
    }
    const auto best_of_two = [&](const engine::compiled_netlist& program) {
      const auto pass = [&] { (void)engine::run_waves_packed(program, sweep_batch, phases); };
      return std::max(measure_wps(sweep_waves, pass), measure_wps(sweep_waves, pass));
    };
    const double untagged_wps = best_of_two(untagged);
    const double tagged_wps = best_of_two(tagged);
    scenario_gate_ratio = tagged_wps / untagged_wps;
    scenario_gate_ok = scenario_gate_ratio >= 0.8;
  }

  // --- compiler scheduling sweep (schedule level x kernel shape) ------------
  // The scheduling-PR acceptance sweep: both reference netlists compiled at
  // opt 2 under schedule levels 0/1/2 and measured on the plane-major
  // kernel (the production path). Scheduling reorders the combinational
  // program *before* slot recycling, so the gates check both effects — the
  // scheduled program must hold the unscheduled steady-state throughput
  // (best-of-two windows per side, the usual 0.95 timer-noise tolerance)
  // and the mig4k scratch working set (comb slots == peak liveness + fixed)
  // must shrink at schedule level >= 1.
  struct sched_case_record {
    const char* name;
    double wps[3]{};         // plane-major waves/s at schedule level 0/1/2
    std::size_t slots[3]{};  // comb slots at opt 2, schedule level 0/1/2
    std::size_t peak[3]{};   // post-schedule peak live slots
    std::size_t moves[3]{};  // ops moved off their original position
  };
  std::vector<sched_case_record> sched_records;
  bool sched_gate_ok = true;
  for (const auto& k : kernel_cases) {
    sched_case_record rec;
    rec.name = k.name;
    const auto batch_k = kernel_batch(k.net, 4242);
    const std::size_t chunks = batch_k.num_chunks();
    std::vector<std::uint64_t> plane_out;
    std::vector<std::uint64_t> scratch;
    std::vector<std::uint64_t> reference;
    for (unsigned level = 0; level < 3; ++level) {
      const engine::compiled_netlist program{
          k.net, k.schedule, {.opt_level = 2, .schedule_level = level}};
      rec.slots[level] = program.comb_slot_count();
      rec.peak[level] = program.opt_stats().peak_live_slots;
      rec.moves[level] = program.opt_stats().scheduled_op_moves;
      plane_out.assign(chunks * program.num_pos(), 0);
      const auto pass = [&] {
        engine::eval_packed_planes(program, batch_k.view(),
                                   {plane_out.data(), chunks, program.num_pos(), chunks},
                                   scratch);
      };
      pass();
      if (level == 0) {
        reference = plane_out;
      } else if (plane_out != reference) {
        std::fprintf(stderr, "FATAL: scheduled program diverges on %s\n", k.name);
        return 2;
      }
      rec.wps[level] = std::max(measure_wps(batch_k.num_waves(), pass),
                                measure_wps(batch_k.num_waves(), pass));
    }
    sched_gate_ok =
        sched_gate_ok && std::max(rec.wps[1], rec.wps[2]) >= 0.95 * rec.wps[0];
    sched_records.push_back(rec);
  }
  // mig4k (record 1) is the liveness acceptance shape: interleaved random
  // cones are exactly what the greedy scheduler de-interleaves.
  const bool sched_liveness_ok = sched_records[1].slots[1] < sched_records[1].slots[0] &&
                                 sched_records[1].peak[1] < sched_records[1].peak[0];

  // Op-prefetch default (off) against the flipped setting on the larger
  // program (mig4k, opt 2 + schedule 1): the shipped default must be at
  // least as fast as the alternative — the measured justification for
  // defaulting the toggle off.
  double sched_prefetch_ratio = 0.0;
  {
    const auto& mk = kernel_cases[1];
    const auto batch_k = kernel_batch(mk.net, 4243);
    const std::size_t chunks = batch_k.num_chunks();
    const engine::compiled_netlist with{
        mk.net, mk.schedule,
        {.opt_level = 2, .schedule_level = 1, .op_prefetch = true}};
    const engine::compiled_netlist without{
        mk.net, mk.schedule,
        {.opt_level = 2, .schedule_level = 1, .op_prefetch = false}};
    std::vector<std::uint64_t> out_a(chunks * with.num_pos());
    std::vector<std::uint64_t> out_b(chunks * with.num_pos());
    std::vector<std::uint64_t> scratch;
    const auto pass_with = [&] {
      engine::eval_packed_planes(with, batch_k.view(),
                                 {out_a.data(), chunks, with.num_pos(), chunks}, scratch);
    };
    const auto pass_without = [&] {
      engine::eval_packed_planes(without, batch_k.view(),
                                 {out_b.data(), chunks, without.num_pos(), chunks},
                                 scratch);
    };
    pass_with();
    pass_without();
    if (out_a != out_b) {
      std::fprintf(stderr, "FATAL: op-prefetch toggle changes outputs\n");
      return 2;
    }
    const double on_wps = std::max(measure_wps(batch_k.num_waves(), pass_with),
                                   measure_wps(batch_k.num_waves(), pass_with));
    const double off_wps = std::max(measure_wps(batch_k.num_waves(), pass_without),
                                    measure_wps(batch_k.num_waves(), pass_without));
    sched_prefetch_ratio = off_wps / on_wps;  // default (off) vs alternative (on)
  }
  const bool sched_prefetch_gate_ok = sched_prefetch_ratio >= 0.95;

  // Tiled wide-PI transpose against the naive stride-num_signals loop, on
  // the wide-I/O stress shape (4096 PI planes), plus the end-to-end packed
  // throughput of the wide circuit itself.
  double sched_tile_ratio = 0.0;
  double wide_io_wps = 0.0;
  {
    const auto wide = insert_buffers(gen::wide_io_circuit(4096, 64));
    const std::size_t wide_waves = 2048;
    std::mt19937_64 wide_rng{991};
    engine::wave_batch wide_batch{wide.net.num_pis()};
    wide_batch.reserve(wide_waves);
    std::vector<bool> wave(wide.net.num_pis());
    for (std::size_t w = 0; w < wide_waves; ++w) {
      for (std::size_t i = 0; i < wave.size(); ++i) {
        wave[i] = (wide_rng() & 1u) != 0;
      }
      wide_batch.append(wave);
    }
    const std::size_t wide_pis = wide.net.num_pis();
    const std::size_t wide_chunks = wide_batch.num_chunks();

    // Tiled production path (chunk_major_words) vs the naive transpose.
    volatile std::uint64_t sink = 0;
    const auto tiled_pass = [&] { sink = sink + wide_batch.chunk_major_words()[0]; };
    const auto naive_pass = [&] {
      std::vector<std::uint64_t> dst(wide_chunks * wide_pis);
      for (std::size_t i = 0; i < wide_pis; ++i) {
        const std::uint64_t* plane = wide_batch.plane(i);
        for (std::size_t c = 0; c < wide_chunks; ++c) {
          dst[c * wide_pis + i] = plane[c];
        }
      }
      sink = sink + dst[0];
    };
    const double tiled_wps = std::max(measure_wps(wide_waves, tiled_pass),
                                      measure_wps(wide_waves, tiled_pass));
    const double naive_wps = std::max(measure_wps(wide_waves, naive_pass),
                                      measure_wps(wide_waves, naive_pass));
    sched_tile_ratio = tiled_wps / naive_wps;

    const engine::compiled_netlist wide_program{
        wide.net, wide.schedule, {.opt_level = 2, .schedule_level = 1}};
    wide_io_wps = measure_wps(wide_waves, [&] {
      (void)engine::run_waves_packed(wide_program, wide_batch, phases);
    });
  }
  const bool sched_tile_gate_ok = sched_tile_ratio >= 0.95;

  // The serving/scaling gates are decoration on a 1-core host (nothing can
  // scale); they are enforced wherever the hardware can actually express
  // the property — the multi-core CI runner.
  const double serving_vs_parallel = serving_wps / parallel_wps.back();
  const double scaling_t2 = parallel_wps[1] / parallel_wps[0];  // thread_counts[1] == 2
  const bool multicore_ok =
      hw_threads <= 1 || (serving_vs_parallel >= 0.85 && scaling_t2 >= 1.5);

  const double seed_wps = static_cast<double>(num_waves) / seed_s;
  const double scalar_wps = static_cast<double>(num_waves) / scalar_s;
  const double packed_wps = static_cast<double>(num_waves) / packed_s;
  const double steady_wps = static_cast<double>(num_waves) / steady_s;
  const double scalar_speedup = scalar_wps / seed_wps;
  const double packed_speedup = packed_wps / seed_wps;
  const double steady_speedup = steady_wps / seed_wps;

  if (json) {
    bench::json_record("perf_wave_engine", "seed_scalar_waves_per_s", seed_wps);
    bench::json_record("perf_wave_engine", "engine_scalar_waves_per_s", scalar_wps);
    bench::json_record("perf_wave_engine", "engine_packed_waves_per_s", packed_wps);
    bench::json_record("perf_wave_engine", "engine_packed_steady_waves_per_s", steady_wps);
    bench::json_record("perf_wave_engine", "engine_scalar_speedup", scalar_speedup);
    bench::json_record("perf_wave_engine", "engine_packed_speedup", packed_speedup);
    bench::json_record("perf_wave_engine", "engine_packed_steady_speedup", steady_speedup);
    bench::json_record("perf_wave_engine", "hardware_concurrency",
                       static_cast<double>(hw_threads));
    for (const auto& k : kernel_cases) {
      const std::string prefix = std::string{"kernel_"} + k.name;
      bench::json_record("perf_wave_engine", prefix + "_w1_waves_per_s", k.sweep.w1_wps);
      bench::json_record("perf_wave_engine", prefix + "_block_waves_per_s",
                         k.sweep.block_wps);
      bench::json_record("perf_wave_engine", prefix + "_block_opt2_waves_per_s",
                         k.sweep.block_opt2_wps);
      bench::json_record("perf_wave_engine", prefix + "_plane_waves_per_s",
                         k.sweep.plane_wps);
      bench::json_record("perf_wave_engine", prefix + "_plane_opt2_waves_per_s",
                         k.sweep.plane_opt2_wps);
      bench::json_record("perf_wave_engine", prefix + "_gather_overhead_vs_plane",
                         k.sweep.plane_opt2_wps / k.sweep.block_opt2_wps);
      bench::json_record("perf_wave_engine", prefix + "_speedup_vs_w1",
                         k.sweep.plane_opt2_wps / k.sweep.w1_wps);
      for (int level = 0; level < 3; ++level) {
        bench::json_record("perf_wave_engine",
                           prefix + "_comb_ops_opt" + std::to_string(level),
                           static_cast<double>(k.sweep.ops[level]));
        bench::json_record("perf_wave_engine",
                           prefix + "_comb_slots_opt" + std::to_string(level),
                           static_cast<double>(k.sweep.slots[level]));
      }
    }
    bench::json_record("perf_wave_engine", "kernel_best_speedup_vs_w1",
                       best_kernel_speedup);
    bench::json_record("perf_wave_engine", "kernel_plane_holds_pr4",
                       plane_holds_pr4 ? 1.0 : 0.0);
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      bench::json_record("perf_wave_engine",
                         "engine_parallel_waves_per_s_t" + std::to_string(thread_counts[i]),
                         parallel_wps[i]);
      bench::json_record("perf_wave_engine",
                         "engine_parallel_scaling_t" + std::to_string(thread_counts[i]),
                         parallel_wps[i] / parallel_wps[0]);
    }
    bench::json_record("perf_wave_engine", "serving_async_waves_per_s", serving_wps);
    bench::json_record("perf_wave_engine", "serving_async_vs_parallel",
                       serving_wps / parallel_wps.back());
    for (const auto& rec : dispatch_records) {
      const std::string prefix = std::string{"dispatch_"} + rec.name;
      bench::json_record("perf_wave_engine", prefix + "_waves_per_s", rec.wps);
      bench::json_record("perf_wave_engine", prefix + "_e2e_p50_ms", rec.e2e_p50_ms);
      bench::json_record("perf_wave_engine", prefix + "_e2e_p99_ms", rec.e2e_p99_ms);
      bench::json_record("perf_wave_engine", prefix + "_queue_wait_p50_ms",
                         rec.queue_p50_ms);
      bench::json_record("perf_wave_engine", prefix + "_queue_wait_p99_ms",
                         rec.queue_p99_ms);
      bench::json_record("perf_wave_engine", prefix + "_fused_passes", rec.fused_passes);
      bench::json_record("perf_wave_engine", prefix + "_coalesced_requests",
                         rec.coalesced_requests);
      bench::json_record("perf_wave_engine", prefix + "_singleton_passes",
                         rec.singleton_passes);
    }
    bench::json_record("perf_wave_engine", "serving_cache_hit_rate", churn_hit_rate);
    bench::json_record("perf_wave_engine", "serving_cache_evictions",
                       static_cast<double>(churn_stats.evictions));
    bench::json_record("perf_wave_engine", "serving_cache_byte_bound",
                       static_cast<double>(byte_bound));
    bench::json_record("perf_wave_engine", "serving_cache_max_resident_bytes",
                       static_cast<double>(churn_max_bytes));
    for (const auto& rec : scenario_records) {
      const std::string prefix = std::string{"scenario_"} + rec.key;
      bench::json_record("perf_wave_engine", prefix + "_waves_per_s", rec.wps);
      bench::json_record("perf_wave_engine", prefix + "_repeaters",
                         static_cast<double>(rec.repeaters));
      bench::json_record("perf_wave_engine", prefix + "_components",
                         static_cast<double>(rec.components));
      bench::json_record("perf_wave_engine", prefix + "_depth",
                         static_cast<double>(rec.depth));
      bench::json_record("perf_wave_engine", prefix + "_fdm_lanes",
                         static_cast<double>(rec.fdm_lanes));
    }
    bench::json_record("perf_wave_engine", "scenario_default_gate_ratio",
                       scenario_gate_ratio);
    bench::json_record("perf_wave_engine", "scenario_gate_ok",
                       scenario_gate_ok ? 1.0 : 0.0);
    for (const auto& rec : sched_records) {
      const std::string prefix = std::string{"sched_"} + rec.name;
      for (int level = 0; level < 3; ++level) {
        const std::string suffix = std::to_string(level);
        bench::json_record("perf_wave_engine", prefix + "_waves_per_s_l" + suffix,
                           rec.wps[level]);
        bench::json_record("perf_wave_engine", prefix + "_comb_slots_l" + suffix,
                           static_cast<double>(rec.slots[level]));
        bench::json_record("perf_wave_engine", prefix + "_peak_live_l" + suffix,
                           static_cast<double>(rec.peak[level]));
        bench::json_record("perf_wave_engine", prefix + "_op_moves_l" + suffix,
                           static_cast<double>(rec.moves[level]));
      }
      bench::json_record("perf_wave_engine", prefix + "_ratio",
                         std::max(rec.wps[1], rec.wps[2]) / rec.wps[0]);
    }
    bench::json_record("perf_wave_engine", "sched_gate_ok", sched_gate_ok ? 1.0 : 0.0);
    bench::json_record("perf_wave_engine", "sched_liveness_reduced",
                       sched_liveness_ok ? 1.0 : 0.0);
    bench::json_record("perf_wave_engine", "sched_prefetch_ratio", sched_prefetch_ratio);
    bench::json_record("perf_wave_engine", "sched_prefetch_gate_ok",
                       sched_prefetch_gate_ok ? 1.0 : 0.0);
    bench::json_record("perf_wave_engine", "sched_tile_ratio", sched_tile_ratio);
    bench::json_record("perf_wave_engine", "sched_tile_gate_ok",
                       sched_tile_gate_ok ? 1.0 : 0.0);
    bench::json_record("perf_wave_engine", "sched_wide_io_waves_per_s", wide_io_wps);
    bench::json_record("perf_wave_engine", "serving_scaling_gates_enforced",
                       hw_threads > 1 ? 1.0 : 0.0);
    bench::json_record("perf_wave_engine", "serving_scaling_gates_ok",
                       multicore_ok ? 1.0 : 0.0);
  } else {
    std::printf("%-22s %14s %14s %10s\n", "path", "time [s]", "waves/s", "speedup");
    bench::print_rule('-', 64);
    std::printf("%-22s %14s %14s %10s\n", "seed scalar", bench::fmt(seed_s, 4).c_str(),
                bench::fmt(seed_wps).c_str(), "1.00x");
    std::printf("%-22s %14s %14s %9sx\n", "engine scalar", bench::fmt(scalar_s, 4).c_str(),
                bench::fmt(scalar_wps).c_str(), bench::fmt(scalar_speedup).c_str());
    std::printf("%-22s %14s %14s %9sx\n", "engine packed", bench::fmt(packed_s, 4).c_str(),
                bench::fmt(packed_wps).c_str(), bench::fmt(packed_speedup).c_str());
    std::printf("%-22s %14s %14s %9sx\n", "engine packed (steady)",
                bench::fmt(steady_s, 4).c_str(), bench::fmt(steady_wps).c_str(),
                bench::fmt(steady_speedup).c_str());

    std::printf("\nkernel layout x optimizer steady-state sweep — %zu waves\n", kernel_waves);
    std::printf("%-10s %14s %14s %14s %10s %18s\n", "netlist", "W=1 waves/s",
                "chunk-major", "plane-major", "speedup", "ops 0/1/2");
    bench::print_rule('-', 92);
    for (const auto& k : kernel_cases) {
      char ops[64];
      std::snprintf(ops, sizeof(ops), "%zu/%zu/%zu", k.sweep.ops[0], k.sweep.ops[1],
                    k.sweep.ops[2]);
      std::printf("%-10s %14s %14s %14s %9sx %18s\n", k.name,
                  bench::fmt(k.sweep.w1_wps).c_str(),
                  bench::fmt(k.sweep.block_opt2_wps).c_str(),
                  bench::fmt(k.sweep.plane_opt2_wps).c_str(),
                  bench::fmt(k.sweep.plane_opt2_wps / k.sweep.w1_wps).c_str(), ops);
      std::printf("%-10s %46s gather overhead recovered: %sx | slots 0/2: %zu -> %zu\n", "",
                  "", bench::fmt(k.sweep.plane_opt2_wps / k.sweep.block_opt2_wps).c_str(),
                  k.sweep.slots[0], k.sweep.slots[2]);
    }

    std::printf("\nparallel thread-scaling sweep — %zu waves (%zu chunks), %u hardware "
                "thread(s)\n",
                sweep_waves, (sweep_waves + 63) / 64, hw_threads);
    std::printf("%-22s %14s %10s\n", "threads", "waves/s", "scaling");
    bench::print_rule('-', 48);
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      std::printf("%-22u %14s %9sx\n", thread_counts[i], bench::fmt(parallel_wps[i]).c_str(),
                  bench::fmt(parallel_wps[i] / parallel_wps[0]).c_str());
    }

    std::printf("\nasync serving — %zu requests x %zu waves through serving_session\n",
                serving_requests, sweep_waves);
    std::printf("%-22s %14s\n", "serving async", bench::fmt(serving_wps).c_str());

    std::printf("\ndispatcher sweep — submission shapes through the coalescing dispatcher\n");
    std::printf("%-12s %14s %10s %10s %11s %11s %8s %10s\n", "scenario", "waves/s",
                "e2e p50", "e2e p99", "queue p50", "queue p99", "fused", "coalesced");
    bench::print_rule('-', 94);
    for (const auto& rec : dispatch_records) {
      std::printf("%-12s %14s %8sms %8sms %9sms %9sms %8.0f %10.0f\n", rec.name,
                  bench::fmt(rec.wps).c_str(), bench::fmt(rec.e2e_p50_ms).c_str(),
                  bench::fmt(rec.e2e_p99_ms).c_str(), bench::fmt(rec.queue_p50_ms).c_str(),
                  bench::fmt(rec.queue_p99_ms).c_str(), rec.fused_passes,
                  rec.coalesced_requests);
    }

    std::printf("\ncache churn — %zu circuits, %zu rounds, byte bound %zu (hot 4 + ~5 cold)\n",
                churn_circuits, churn_rounds, byte_bound);
    std::printf("%-22s %14s\n", "hit rate",
                bench::fmt(churn_hit_rate, 3).c_str());
    std::printf("%-22s %14llu\n", "evictions",
                static_cast<unsigned long long>(churn_stats.evictions));
    std::printf("%-22s %14zu (bound %zu: %s)\n", "max resident bytes", churn_max_bytes,
                byte_bound, churn_max_bytes <= byte_bound ? "OK" : "EXCEEDED");

    std::printf("\ntechnology scenario sweep — %zu waves through the scenario-keyed "
                "session\n",
                sweep_waves);
    std::printf("%-12s %14s %8s %12s %8s %8s\n", "scenario", "waves/s", "lanes",
                "components", "depth", "reps");
    bench::print_rule('-', 68);
    for (const auto& rec : scenario_records) {
      std::printf("%-12s %14s %8u %12zu %8u %8zu\n", rec.key.c_str(),
                  bench::fmt(rec.wps).c_str(), rec.fdm_lanes, rec.components, rec.depth,
                  rec.repeaters);
    }

    std::printf("\ncompiler scheduling sweep — plane-major kernel at opt 2, schedule "
                "levels 0/1/2\n");
    std::printf("%-10s %14s %14s %14s %10s %14s\n", "netlist", "sched 0", "sched 1",
                "sched 2", "ratio", "slots 0/1/2");
    bench::print_rule('-', 84);
    for (const auto& rec : sched_records) {
      char slots[48];
      std::snprintf(slots, sizeof(slots), "%zu/%zu/%zu", rec.slots[0], rec.slots[1],
                    rec.slots[2]);
      std::printf("%-10s %14s %14s %14s %9sx %14s\n", rec.name,
                  bench::fmt(rec.wps[0]).c_str(), bench::fmt(rec.wps[1]).c_str(),
                  bench::fmt(rec.wps[2]).c_str(),
                  bench::fmt(std::max(rec.wps[1], rec.wps[2]) / rec.wps[0]).c_str(), slots);
      std::printf("%-10s %46s peak live 0/1/2: %zu/%zu/%zu | moves 1/2: %zu/%zu\n", "", "",
                  rec.peak[0], rec.peak[1], rec.peak[2], rec.moves[1], rec.moves[2]);
    }
    std::printf("%-22s %14s (tiled vs naive transpose, 4096 planes)\n", "wide-PI tile ratio",
                bench::fmt(sched_tile_ratio).c_str());
    std::printf("%-22s %14s (wide_io 4096x64 end-to-end)\n", "wide-PI waves/s",
                bench::fmt(wide_io_wps).c_str());
    std::printf("%-22s %14s (default off vs on; mig4k, opt 2 + sched 1)\n",
                "op-prefetch ratio", bench::fmt(sched_prefetch_ratio).c_str());

    std::printf("\nacceptance: packed >= 10x over seed scalar: %s (%sx)\n",
                packed_speedup >= 10.0 ? "PASS" : "FAIL",
                bench::fmt(packed_speedup).c_str());
    std::printf("acceptance: plane-major kernel >= 2x over single-word kernel: %s (%sx)\n",
                best_kernel_speedup >= 2.0 ? "PASS" : "FAIL",
                bench::fmt(best_kernel_speedup).c_str());
    std::printf("acceptance: plane-major holds the PR-4 (chunk-major) throughput on every "
                "netlist: %s\n",
                plane_holds_pr4 ? "PASS" : "FAIL");
    std::printf("acceptance: scenario tagging costs nothing on the default scenario "
                "(>= 0.8): %s (%s)\n",
                scenario_gate_ok ? "PASS" : "FAIL", bench::fmt(scenario_gate_ratio).c_str());
    std::printf("acceptance: scheduled >= unscheduled throughput on every netlist "
                "(>= 0.95): %s\n",
                sched_gate_ok ? "PASS" : "FAIL");
    std::printf("acceptance: scheduling shrinks the mig4k working set (slots and peak "
                "liveness): %s\n",
                sched_liveness_ok ? "PASS" : "FAIL");
    std::printf("acceptance: op-prefetch default beats the flipped setting (>= 0.95): "
                "%s (%s)\n",
                sched_prefetch_gate_ok ? "PASS" : "FAIL",
                bench::fmt(sched_prefetch_ratio).c_str());
    std::printf("acceptance: tiled transpose holds the naive loop (>= 0.95): %s (%s)\n",
                sched_tile_gate_ok ? "PASS" : "FAIL", bench::fmt(sched_tile_ratio).c_str());
    if (hw_threads > 1) {
      std::printf("acceptance: serving_async_vs_parallel >= 0.85: %s (%s)\n",
                  serving_vs_parallel >= 0.85 ? "PASS" : "FAIL",
                  bench::fmt(serving_vs_parallel).c_str());
      std::printf("acceptance: engine_parallel_scaling_t2 >= 1.5: %s (%sx)\n",
                  scaling_t2 >= 1.5 ? "PASS" : "FAIL", bench::fmt(scaling_t2).c_str());
    } else {
      std::printf("acceptance: serving/scaling gates skipped — single-core host (enforced "
                  "on the multi-core CI runner)\n");
    }
  }

  return packed_speedup >= 10.0 && best_kernel_speedup >= 2.0 && plane_holds_pr4 &&
                 scenario_gate_ok && sched_gate_ok && sched_liveness_ok &&
                 sched_prefetch_gate_ok && sched_tile_gate_ok && multicore_ok
             ? 0
             : 1;
}
