// Ablation A3 (DESIGN.md): the paper's "input netlist is already optimized
// for depth" assumption. Compares the full FO3+BUF flow on raw generator
// netlists vs depth-rewritten ones: depth optimization shrinks the buffer
// bill and boosts every throughput gain.

#include <cstdio>

#include "bench_util.hpp"
#include "wavemig/depth_rewriting.hpp"
#include "wavemig/gen/arith.hpp"
#include "wavemig/gen/crypto.hpp"
#include "wavemig/gen/misc.hpp"
#include "wavemig/metrics.hpp"
#include "wavemig/pipeline.hpp"

using namespace wavemig;

namespace {

void compare(const char* name, const mig_network& raw) {
  const auto optimized = depth_rewrite(raw);

  const auto raw_piped = wave_pipeline(raw);
  const auto opt_piped = wave_pipeline(optimized);

  const auto raw_cmp = compare_metrics(raw, raw_piped.net, technology::swd());
  const auto opt_cmp = compare_metrics(optimized, opt_piped.net, technology::swd());

  std::printf("%-14s | %6u -> %6u | %8zu -> %8zu | %8zu -> %8zu | %7.2f -> %7.2f\n", name,
              raw_piped.depth_before, opt_piped.depth_before, raw.num_components(),
              optimized.num_components(), raw_piped.final_stats.components,
              opt_piped.final_stats.components, raw_cmp.tp_gain, opt_cmp.tp_gain);
}

}  // namespace

int main() {
  bench::print_title("Ablation A3 - Depth optimization before wave pipelining (FO3+BUF, SWD)");
  std::printf("%-14s | %16s | %20s | %20s | %18s\n", "circuit", "depth raw->opt",
              "size raw->opt", "WP size raw->opt", "SWD T/P raw->opt");
  bench::print_rule('-', 110);

  compare("adder32", gen::ripple_adder_circuit(32));
  compare("adder64", gen::ripple_adder_circuit(64));
  compare("mul16", gen::multiplier_circuit(16));
  compare("cmp64", gen::comparator_circuit(64));
  compare("priority64", gen::priority_encoder_circuit(64));
  compare("des_small", gen::des_circuit(2));
  compare("voter101", gen::voter_circuit(101));
  compare("max32x4", gen::max_circuit(32, 4));

  bench::print_rule('-', 110);
  std::printf(
      "Note: the WP throughput is depth-independent, so depth optimization\n"
      "lowers latency and the component bill; T/P gains shift with d_wp/3.\n");
  return 0;
}
