// Ablation A1 (DESIGN.md): buffer organization strategies.
//   naive — private buffers per edge (no sharing);
//   chain — the paper's Algorithm 1 shared chains;
//   tree  — capacity-aware trees (identical counts to chain when unlimited).
// Quantifies the savings of Algorithm 1's chain sharing, which the paper
// claims is buffer-minimal.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "wavemig/buffer_insertion.hpp"
#include "wavemig/gen/suite.hpp"
#include "wavemig/stats.hpp"

using namespace wavemig;

int main() {
  bench::print_title("Ablation A1 - Buffer insertion strategies (BUF alone, all benchmarks)");

  std::printf("%-16s %10s | %10s %10s %10s | %10s\n", "benchmark", "size", "naive", "chain",
              "tree", "saved");
  bench::print_rule();

  std::vector<double> savings;
  std::size_t total_naive = 0;
  std::size_t total_chain = 0;
  for (const auto& benchmk : gen::build_suite()) {
    buffer_insertion_options naive_opts;
    naive_opts.strategy = buffer_strategy::naive;
    buffer_insertion_options chain_opts;
    chain_opts.strategy = buffer_strategy::chain;
    buffer_insertion_options tree_opts;
    tree_opts.strategy = buffer_strategy::tree;

    const auto naive = insert_buffers(benchmk.net, naive_opts);
    const auto chain = insert_buffers(benchmk.net, chain_opts);
    const auto tree = insert_buffers(benchmk.net, tree_opts);

    total_naive += naive.buffers_added;
    total_chain += chain.buffers_added;
    const double saved =
        naive.buffers_added == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(chain.buffers_added) /
                                 static_cast<double>(naive.buffers_added));
    savings.push_back(saved);
    std::printf("%-16s %10zu | %10zu %10zu %10zu | %9.1f%%\n", benchmk.name.c_str(),
                benchmk.net.num_components(), naive.buffers_added, chain.buffers_added,
                tree.buffers_added, saved);
  }
  bench::print_rule();
  std::printf("suite total: naive %zu, chain %zu  ->  chain sharing saves %.1f%% overall\n",
              total_naive, total_chain,
              100.0 * (1.0 - static_cast<double>(total_chain) /
                                 static_cast<double>(total_naive == 0 ? 1 : total_naive)));
  std::printf("average per-circuit saving: %.1f%%\n", mean(savings));
  return 0;
}
