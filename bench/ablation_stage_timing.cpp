// Ablation A8 (DESIGN.md): real stage timing vs the paper's fixed phase
// delay. The paper clocks every level with one constant phase period and
// treats inverters as free; with Table I's heterogeneous delays the slowest
// stage (component + edge inverter) dictates the coherent clock. QCA is hit
// hardest: its inverter (7 cells) is 3.5x slower than its majority gate.

#include <cstdio>

#include "bench_util.hpp"
#include "wavemig/gen/suite.hpp"
#include "wavemig/pipeline.hpp"
#include "wavemig/timing.hpp"

using namespace wavemig;

int main() {
  bench::print_title("Ablation A8 - Required vs assumed phase delay (FO3+BUF netlists)");

  std::printf("%-12s", "benchmark");
  for (const char* tech : {"SWD", "QCA", "NML"}) {
    std::printf(" | %5s req/ass      T_eff", tech);
  }
  std::printf("\n");
  bench::print_rule('-', 110);

  const std::array<technology, 3> techs{technology::swd(), technology::qca(), technology::nml()};
  for (const auto& name : {"sasc", "mul8", "mul16", "hamming", "crc32_8", "revx", "voter101"}) {
    const auto net = gen::build_benchmark(name);
    const auto piped = wave_pipeline(net);
    std::printf("%-12s", name);
    for (const auto& tech : techs) {
      const auto report = analyze_stage_timing(piped.net, tech);
      std::printf(" | %6.4g/%-6.4g %10.4g", report.required_phase_delay_ns,
                  report.assumed_phase_delay_ns, report.effective_wp_throughput_mops);
    }
    std::printf("\n");
  }
  bench::print_rule('-', 110);
  std::printf(
      "req = worst stage (component + surviving edge inverter after polarity\n"
      "optimization) x cell delay; ass = the paper's implied phase constant.\n"
      "T_eff (MOPS) is the coherent three-phase throughput under `req` —\n"
      "compare with the paper's 793.65 / 83333.33 / 16.67 MOPS.\n");
  return 0;
}
