// Reproduces Table I: technology cell and gate parameters for SWD, QCA and
// NML, exactly as used by the metrics engine.

#include <cstdio>

#include "bench_util.hpp"
#include "wavemig/technology.hpp"

using namespace wavemig;

namespace {

void print_technology(const technology& t) {
  std::printf("%s Cell           | Relative values   INV    MAJ    BUF    FOG\n", t.name.c_str());
  std::printf("  Area   (um^2) %-10.6g | Area          %6.4g %6.4g %6.4g %6.4g\n",
              t.cell_area_um2, t.inv.area, t.maj.area, t.buf.area, t.fog.area);
  std::printf("  Delay  (ns)   %-10.6g | Delay         %6.4g %6.4g %6.4g %6.4g\n",
              t.cell_delay_ns, t.inv.delay, t.maj.delay, t.buf.delay, t.fog.delay);
  std::printf("  Energy (fJ)   %-10.6g | Energy        %6.4g %6.4g %6.4g %6.4g\n",
              t.cell_energy_fj, t.inv.energy, t.maj.energy, t.buf.energy, t.fog.energy);
  std::printf("  wave-clock phase delay: %g ns", t.phase_delay_ns);
  if (t.sense_amp_energy_fj > 0.0) {
    std::printf("   (+ %g fJ sense amplifier per output)", t.sense_amp_energy_fj);
  }
  std::printf("\n");
  bench::print_rule();
}

}  // namespace

int main() {
  bench::print_title("Table I - Technology cell and gate parameters (Zografos et al., DATE'17)");
  print_technology(technology::swd());
  print_technology(technology::qca());
  print_technology(technology::nml());
  std::printf(
      "Sources: SWD from [22], QCA from [12], NML from [11],[24]; phase delays\n"
      "derived from Table II throughput columns (see EXPERIMENTS.md).\n");
  return 0;
}
