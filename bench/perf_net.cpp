// Network serving load generator: multi-client loopback traffic against the
// wire front-end (net/server.hpp), measuring end-to-end request latency and
// dispatcher queue-wait percentiles under a production-shaped mix — two
// circuits (a 64-bit adder and a 4k-gate random MIG) served hot by
// fingerprint, with periodic cold requests that inline fresh netlists and
// churn the compile cache.
//
// The same mix is then replayed in-process (straight submit_packed futures,
// no sockets) under the same concurrency, and the wire overhead is gated:
// wire e2e p99 must stay within 3x of the in-process e2e p99 — the wire
// protocol's zero-copy framing means a request costs syscalls, not copies,
// so queueing and evaluation dominate both paths identically under load.
//
// The load now runs with the resilience machinery armed the way production
// would run it: each wire client carries a retry policy (reconnect/backoff/
// re-send) and the session carries a shed policy with a deep queue bound.
// Under nominal load neither may do anything — the shed_gate_ok record (CI
// greps it alongside wire_e2e_gate_ok) asserts zero sheds, and the
// reconnect/resend counters are reported so a retry storm is visible in the
// records rather than silently absorbed into the tail.
//
// `--json` emits machine-readable records (BENCH_pr9.json is this bench's
// output); the wire_e2e_gate_ok and shed_gate_ok records are what CI greps.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "wavemig/engine/parallel_executor.hpp"
#include "wavemig/engine/serving.hpp"
#include "wavemig/gen/arith.hpp"
#include "wavemig/gen/random_mig.hpp"
#include "wavemig/io/mig_format.hpp"
#include "wavemig/net/client.hpp"
#include "wavemig/net/server.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

// Sized so each request is compute-dominated (2048 waves = 32 chunks of
// kernel work): the e2e tail then measures serving, not scheduler jitter on
// a 50-microsecond syscall round trip.
constexpr unsigned num_clients = 2;
constexpr std::size_t requests_per_client = 96;
constexpr std::size_t waves_per_request = 2048;
constexpr unsigned phases = 3;
constexpr std::size_t cold_every = 12;  // every 12th request inlines a fresh netlist

double elapsed_ms(clock_type::time_point since) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - since).count();
}

std::vector<std::uint64_t> random_planes(std::size_t num_pis, std::size_t num_waves,
                                         std::uint64_t seed) {
  const std::size_t chunks = (num_waves + 63) / 64;
  std::mt19937_64 rng{seed};
  std::vector<std::uint64_t> words(num_pis * chunks);
  for (auto& word : words) {
    word = rng();
  }
  if (const std::size_t tail = num_waves % 64; tail != 0) {
    const std::uint64_t mask = (std::uint64_t{1} << tail) - 1;
    for (std::size_t p = 0; p < num_pis; ++p) {
      words[(p + 1) * chunks - 1] &= mask;
    }
  }
  return words;
}

wavemig::mig_network cold_circuit(std::uint64_t seed) {
  return wavemig::gen::random_mig({24, 240, 0.5, 12, 9000 + seed});
}

struct workload {
  std::shared_ptr<const wavemig::mig_network> adder;
  std::shared_ptr<const wavemig::mig_network> mig4k;
};

/// One client's mix: request i runs the adder (even) or the big MIG (odd),
/// except every `cold_every`-th request, which inlines a fresh random
/// netlist — a compile miss and a registration, the cache-churn half of the
/// workload.
bool is_cold(std::size_t i) { return i % cold_every == cold_every - 1; }

/// Drives one wire client: pipelines up to `window` requests, records each
/// request's end-to-end milliseconds (send to matching response).
void run_wire_client(std::uint16_t port, const workload& load, unsigned client_index,
                     std::vector<double>& e2e_ms, wavemig::net::client_stats& stats_out,
                     std::atomic<bool>& ok) {
  try {
    auto client = wavemig::net::wire_client::connect(port);
    // Production-shaped client: survives a dropped connection. At nominal
    // load this never triggers; the reconnect/resend counters are summed
    // into the JSON records to prove it.
    wavemig::net::retry_policy policy;
    policy.max_attempts = 3;
    policy.base_backoff = std::chrono::milliseconds{5};
    policy.max_backoff = std::chrono::milliseconds{100};
    client.set_retry_policy(policy);
    const std::uint64_t adder_fp = client.register_program(*load.adder);
    const std::uint64_t mig_fp = client.register_program(*load.mig4k);

    for (std::size_t i = 0; i < requests_per_client; ++i) {
      wavemig::net::run_request req;
      req.phases = phases;
      req.num_waves = waves_per_request;
      const auto seed =
          static_cast<std::uint64_t>(client_index) * 1000 + static_cast<std::uint64_t>(i);
      if (is_cold(i)) {
        const auto cold = cold_circuit(seed);
        std::ostringstream text;
        wavemig::io::write_mig(cold, text);
        req.netlist = text.str();
        req.num_pis = static_cast<std::uint32_t>(cold.num_pis());
        req.payload = random_planes(cold.num_pis(), waves_per_request, seed);
      } else {
        const auto& net = (i % 2 == 0) ? load.adder : load.mig4k;
        req.fingerprint = (i % 2 == 0) ? adder_fp : mig_fp;
        req.num_pis = static_cast<std::uint32_t>(net->num_pis());
        req.payload = random_planes(net->num_pis(), waves_per_request, seed);
      }
      const auto start = clock_type::now();
      const auto resp = client.run(std::move(req));
      e2e_ms.push_back(elapsed_ms(start));
      if (resp.status != wavemig::net::wire_status::ok) {
        std::fprintf(stderr, "client %u request %zu refused: %s\n", client_index, i,
                     resp.message.c_str());
        ok.store(false);
        return;
      }
    }
    stats_out = client.stats();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "client %u failed: %s\n", client_index, e.what());
    ok.store(false);
  }
}

/// The same mix as run_wire_client, without the wire: submit_packed futures
/// straight into the session. Used as the e2e baseline the gate compares
/// against.
void run_inprocess_client(wavemig::engine::serving_session& serving, const workload& load,
                          unsigned client_index, std::vector<double>& e2e_ms,
                          std::atomic<bool>& ok) {
  try {
    for (std::size_t i = 0; i < requests_per_client; ++i) {
      const auto seed = static_cast<std::uint64_t>(client_index) * 1000 +
                        static_cast<std::uint64_t>(i) + 500000;
      std::shared_ptr<const wavemig::mig_network> net;
      std::string cold_text;
      if (is_cold(i)) {
        // Serve the cold program from `.mig` text like the wire does, so the
        // baseline's cold samples pay the same parse the server pays — the
        // gate then measures wire overhead, not text-vs-object ingestion.
        std::ostringstream text;
        wavemig::io::write_mig(cold_circuit(seed), text);
        cold_text = text.str();
      } else {
        net = (i % 2 == 0) ? load.adder : load.mig4k;
      }
      const auto num_pis =
          net ? net->num_pis() : cold_circuit(seed).num_pis();
      auto planes = random_planes(num_pis, waves_per_request, seed);
      const auto start = clock_type::now();
      if (!net) {
        std::istringstream in{cold_text};
        net = std::make_shared<const wavemig::mig_network>(wavemig::io::read_mig(in));
      }
      (void)serving.submit_packed(net, std::move(planes), waves_per_request, phases).get();
      e2e_ms.push_back(elapsed_ms(start));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "in-process producer %u failed: %s\n", client_index, e.what());
    ok.store(false);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wavemig;
  const bool json = bench::json_mode(argc, argv);

  const workload load{
      std::make_shared<const mig_network>(gen::ripple_adder_circuit(64)),
      std::make_shared<const mig_network>(gen::random_mig({64, 4000, 0.5, 32, 777})),
  };

  engine::parallel_executor executor;
  engine::serving_session serving{executor};
  net::wire_server server{serving};

  // Production-shaped overload protection: a queue bound far above what two
  // pipelining clients can stack up. Nominal load must shed exactly nothing
  // (shed_gate_ok below) — the policy exists for overload, not steady state.
  engine::shed_policy shed;
  shed.queue_depth = 512;
  serving.set_shed_policy(shed);

  if (!json) {
    bench::print_title("perf_net: loopback wire serving vs in-process submit_packed");
    std::printf("clients=%u requests/client=%zu waves/request=%zu phases=%u (cold every %zu)\n",
                num_clients, requests_per_client, waves_per_request, phases, cold_every);
  }

  // Warm the compile cache for both hot programs so neither phase pays the
  // one-time compile of the 4k-gate MIG inside its latency samples (the cold
  // requests pay their compiles in both phases symmetrically).
  for (const auto& net : {load.adder, load.mig4k}) {
    (void)serving.submit_packed(net, random_planes(net->num_pis(), waves_per_request, 1),
                                waves_per_request, phases)
        .get();
  }
  serving.drain();
  (void)serving.take_queue_wait_samples();

  // --- wire phase ----------------------------------------------------------
  std::atomic<bool> ok{true};
  std::vector<std::vector<double>> wire_lat(num_clients);
  std::vector<net::client_stats> client_stats(num_clients);
  {
    std::vector<std::thread> clients;
    for (unsigned c = 0; c < num_clients; ++c) {
      clients.emplace_back([&, c] {
        run_wire_client(server.port(), load, c, wire_lat[c], client_stats[c], ok);
      });
    }
    for (auto& t : clients) {
      t.join();
    }
  }
  serving.drain();
  auto queue_wait = serving.take_queue_wait_samples();

  // --- in-process phase ----------------------------------------------------
  std::vector<std::vector<double>> local_lat(num_clients);
  {
    std::vector<std::thread> producers;
    for (unsigned c = 0; c < num_clients; ++c) {
      producers.emplace_back(
          [&, c] { run_inprocess_client(serving, load, c, local_lat[c], ok); });
    }
    for (auto& t : producers) {
      t.join();
    }
  }
  serving.drain();

  if (!ok.load()) {
    std::fprintf(stderr, "perf_net: load generation failed\n");
    return 1;
  }

  std::vector<double> wire_all;
  std::vector<double> local_all;
  for (unsigned c = 0; c < num_clients; ++c) {
    wire_all.insert(wire_all.end(), wire_lat[c].begin(), wire_lat[c].end());
    local_all.insert(local_all.end(), local_lat[c].begin(), local_lat[c].end());
  }
  const double wire_p50 = bench::percentile(wire_all, 50);
  const double wire_p99 = bench::percentile(wire_all, 99);
  const double local_p50 = bench::percentile(local_all, 50);
  const double local_p99 = bench::percentile(local_all, 99);
  const double queue_p50 = bench::percentile(queue_wait, 50);
  const double queue_p99 = bench::percentile(queue_wait, 99);
  const double ratio = local_p99 > 0.0 ? wire_p99 / local_p99 : 0.0;
  // The wire front-end must not dominate serving cost: its e2e p99 stays
  // within 3x of the in-process path's under the same load.
  const bool gate_ok = local_p99 > 0.0 && wire_p99 <= 3.0 * local_p99;

  const auto stats = server.stats();
  const auto metrics = serving.metrics();
  std::uint64_t reconnects = 0;
  std::uint64_t resends = 0;
  for (const auto& cs : client_stats) {
    reconnects += cs.reconnects;
    resends += cs.resends;
  }
  // At nominal load the shed policy must be invisible: a single shed here
  // means the overload detector misfires on healthy traffic.
  const bool shed_gate_ok = metrics.requests_shed == 0;

  if (json) {
    bench::json_record("perf_net", "wire_e2e_p50_ms", wire_p50);
    bench::json_record("perf_net", "wire_e2e_p99_ms", wire_p99);
    bench::json_record("perf_net", "inprocess_e2e_p50_ms", local_p50);
    bench::json_record("perf_net", "inprocess_e2e_p99_ms", local_p99);
    bench::json_record("perf_net", "queue_wait_p50_ms", queue_p50);
    bench::json_record("perf_net", "queue_wait_p99_ms", queue_p99);
    bench::json_record("perf_net", "wire_over_inprocess_p99", ratio);
    bench::json_record("perf_net", "requests_ok", static_cast<double>(stats.requests_ok));
    bench::json_record("perf_net", "requests_refused",
                       static_cast<double>(stats.requests_refused));
    bench::json_record("perf_net", "programs_registered",
                       static_cast<double>(stats.programs_registered));
    bench::json_record("perf_net", "coalesced_requests",
                       static_cast<double>(metrics.coalesced_requests));
    bench::json_record("perf_net", "client_reconnects", static_cast<double>(reconnects));
    bench::json_record("perf_net", "client_resends", static_cast<double>(resends));
    bench::json_record("perf_net", "requests_shed",
                       static_cast<double>(metrics.requests_shed));
    bench::json_record("perf_net", "wire_e2e_gate_ok", gate_ok ? 1.0 : 0.0);
    bench::json_record("perf_net", "shed_gate_ok", shed_gate_ok ? 1.0 : 0.0);
  } else {
    bench::print_rule();
    std::printf("%-28s %10s %10s\n", "latency (ms)", "p50", "p99");
    bench::print_rule();
    std::printf("%-28s %10s %10s\n", "wire e2e", bench::fmt(wire_p50).c_str(),
                bench::fmt(wire_p99).c_str());
    std::printf("%-28s %10s %10s\n", "in-process e2e", bench::fmt(local_p50).c_str(),
                bench::fmt(local_p99).c_str());
    std::printf("%-28s %10s %10s\n", "dispatcher queue wait", bench::fmt(queue_p50).c_str(),
                bench::fmt(queue_p99).c_str());
    bench::print_rule();
    std::printf("wire/in-process p99 ratio: %s (gate: <= 3.0 -> %s)\n",
                bench::fmt(ratio).c_str(), gate_ok ? "ok" : "FAIL");
    std::printf("server: %llu ok, %llu refused, %llu programs; serving coalesced %llu\n",
                static_cast<unsigned long long>(stats.requests_ok),
                static_cast<unsigned long long>(stats.requests_refused),
                static_cast<unsigned long long>(stats.programs_registered),
                static_cast<unsigned long long>(metrics.coalesced_requests));
    std::printf("resilience: %llu reconnects, %llu resends, %llu shed (gate: 0 shed -> %s)\n",
                static_cast<unsigned long long>(reconnects),
                static_cast<unsigned long long>(resends),
                static_cast<unsigned long long>(metrics.requests_shed),
                shed_gate_ok ? "ok" : "FAIL");
  }

  server.shutdown();
  serving.close();
  return gate_ok && shed_gate_ok ? 0 : 1;
}
