// Ablation A5 (DESIGN.md): wave-aware MIG optimization — the §III remark
// that optimizing the netlist with the wave-pipelining requirements in mind
// reduces the final size. Compares the FO3+BUF flow on (a) the suite netlist
// as-is (depth-optimized) and (b) after the balance_rewrite pass that breaks
// depth ties toward minimal fan-in level spread.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "wavemig/balance_rewriting.hpp"
#include "wavemig/gen/suite.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/pipeline.hpp"
#include "wavemig/scheduling.hpp"
#include "wavemig/stats.hpp"

using namespace wavemig;

int main() {
  bench::print_title("Ablation A5 - Wave-aware rewriting before the FO3+BUF flow");

  std::printf("%-16s | %8s %8s | %10s %10s | %10s %10s | %7s\n", "benchmark", "slack", "slack'",
              "size", "size'", "WP size", "WP size'", "delta");
  bench::print_rule('-', 120);

  std::vector<double> deltas;
  for (const auto& benchmk : gen::build_suite()) {
    const auto tuned = balance_rewrite(benchmk.net);

    const auto slack_before = slack_sum(benchmk.net, compute_levels(benchmk.net));
    const auto slack_after = slack_sum(tuned, compute_levels(tuned));

    const auto base = wave_pipeline(benchmk.net);
    const auto opt = wave_pipeline(tuned);

    const double delta = 100.0 * (static_cast<double>(opt.final_stats.components) /
                                      static_cast<double>(base.final_stats.components) -
                                  1.0);
    deltas.push_back(delta);
    std::printf("%-16s | %8llu %8llu | %10zu %10zu | %10zu %10zu | %+6.1f%%\n",
                benchmk.name.c_str(), static_cast<unsigned long long>(slack_before),
                static_cast<unsigned long long>(slack_after), benchmk.net.num_components(),
                tuned.num_components(), base.final_stats.components, opt.final_stats.components,
                delta);
  }
  bench::print_rule('-', 120);
  std::printf("average WP-netlist size change: %+.1f%% (negative = wave-aware wins)\n",
              mean(deltas));
  return 0;
}
