// Ablation A4 (DESIGN.md): level scheduling for buffer insertion.
// The paper's Algorithm 1 implicitly balances against ASAP levels; ALAP and
// mid-slack schedules redistribute slack at identical depth. This bench
// quantifies the buffer bill per policy over the whole suite (BUF alone).

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "wavemig/buffer_insertion.hpp"
#include "wavemig/gen/suite.hpp"
#include "wavemig/stats.hpp"

using namespace wavemig;

int main() {
  bench::print_title("Ablation A4 - Level scheduling policies for buffer insertion (BUF alone)");

  std::printf("%-16s %10s | %10s %10s %10s | %8s\n", "benchmark", "size", "ASAP", "ALAP",
              "mid-slack", "best");
  bench::print_rule();

  std::size_t totals[3] = {0, 0, 0};
  std::size_t wins[3] = {0, 0, 0};
  for (const auto& benchmk : gen::build_suite()) {
    std::size_t added[3];
    const schedule_policy policies[3] = {schedule_policy::asap, schedule_policy::alap,
                                         schedule_policy::mid_slack};
    for (int p = 0; p < 3; ++p) {
      buffer_insertion_options opts;
      opts.schedule = policies[p];
      added[p] = insert_buffers(benchmk.net, opts).buffers_added;
      totals[p] += added[p];
    }
    const int best = added[1] < added[0] ? (added[2] < added[1] ? 2 : 1)
                                         : (added[2] < added[0] ? 2 : 0);
    ++wins[best];
    static const char* names[3] = {"ASAP", "ALAP", "mid"};
    std::printf("%-16s %10zu | %10zu %10zu %10zu | %8s\n", benchmk.name.c_str(),
                benchmk.net.num_components(), added[0], added[1], added[2], names[best]);
  }
  bench::print_rule();
  std::printf("suite totals:               %10zu %10zu %10zu\n", totals[0], totals[1], totals[2]);
  std::printf("circuits won:               %10zu %10zu %10zu\n", wins[0], wins[1], wins[2]);
  std::printf(
      "\nAll policies reach identical depth and wave readiness; the difference\n"
      "is purely the buffer bill (and thus area/energy of the WP netlist).\n");
  return 0;
}
