// Reproduces Fig. 7: increase of critical path length after fan-out
// restriction (limits 2..5) over the original critical path, for all 37
// benchmarks, plus the per-limit averages the paper quotes
// (+140% / +57% / +36% / +26% for FO2 / FO3 / FO4 / FO5).

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "wavemig/fanout_restriction.hpp"
#include "wavemig/gen/suite.hpp"
#include "wavemig/stats.hpp"

using namespace wavemig;

int main() {
  bench::print_title("Fig. 7 - Critical path increase after fan-out restriction (FOk alone)");

  std::printf("%-16s %8s | %10s %10s %10s %10s\n", "benchmark", "orig CP", "FO2", "FO3", "FO4",
              "FO5");
  bench::print_rule();

  std::vector<std::vector<double>> increases(4);
  for (const auto& benchmk : gen::build_suite()) {
    std::printf("%-16s", benchmk.name.c_str());
    bool first = true;
    for (unsigned k = 2; k <= 5; ++k) {
      const auto result = restrict_fanout(benchmk.net, {k, true});
      if (first) {
        std::printf(" %8u |", result.depth_before);
        first = false;
      }
      const double pct = 100.0 * (static_cast<double>(result.depth_after) /
                                      static_cast<double>(result.depth_before) -
                                  1.0);
      increases[k - 2].push_back(pct);
      std::printf(" %9.1f%%", pct);
    }
    std::printf("\n");
  }
  bench::print_rule();

  static const double paper_avgs[4] = {140.0, 57.0, 36.0, 26.0};
  std::printf("%-27s", "average increase");
  for (unsigned k = 2; k <= 5; ++k) {
    std::printf(" %9.1f%%", mean(increases[k - 2]));
  }
  std::printf("\n%-27s", "paper average");
  for (unsigned k = 2; k <= 5; ++k) {
    std::printf(" %9.1f%%", paper_avgs[k - 2]);
  }
  std::printf("\n");
  return 0;
}
