// Reproduces Fig. 5: number of balancing buffers added (BUF alone) versus
// the original netlist size, over all 37 suite benchmarks, with the
// log-log power-law fit B(s) = c * s^e (paper: 7.95 * s^0.9).

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "wavemig/gen/suite.hpp"
#include "wavemig/pipeline.hpp"
#include "wavemig/stats.hpp"

using namespace wavemig;

int main() {
  bench::print_title("Fig. 5 - Balancing buffers added vs original netlist size (BUF alone)");

  std::printf("%-16s %10s %10s %10s\n", "benchmark", "size", "buffers", "ratio");
  bench::print_rule();

  std::vector<double> sizes;
  std::vector<double> buffers;
  std::vector<double> ratios;
  for (const auto& benchmk : gen::build_suite()) {
    pipeline_options opts;
    opts.fanout_limit.reset();  // buffer insertion only
    const auto result = wave_pipeline(benchmk.net, opts);
    const auto size = static_cast<double>(result.original_stats.components);
    const auto added = static_cast<double>(result.balance_buffers_added);
    sizes.push_back(size);
    buffers.push_back(added);
    if (added > 0.0) {
      ratios.push_back(added / size);
    }
    std::printf("%-16s %10.0f %10.0f %10.2f\n", benchmk.name.c_str(), size, added, added / size);
  }
  bench::print_rule();

  const auto fit = fit_power_law(sizes, buffers);
  std::printf("power-law fit:    B(s) = %.2f * s^%.3f   (r^2 = %.3f in log-log space)\n",
              fit.coefficient, fit.exponent, fit.r_squared);
  std::printf("paper trend line: B(s) = 7.95 * s^0.900\n");
  std::printf("mean buffers/size over buffered circuits: %.2f (paper: 2x-4x on average)\n",
              mean(ratios));
  return 0;
}
