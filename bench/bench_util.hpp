#pragma once

// Shared formatting helpers for the table/figure reproduction binaries.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace wavemig::bench {

inline void print_rule(char fill = '-', int width = 110) {
  for (int i = 0; i < width; ++i) {
    std::putchar(fill);
  }
  std::putchar('\n');
}

inline void print_title(const std::string& title) {
  print_rule('=');
  std::printf("%s\n", title.c_str());
  print_rule('=');
}

/// Formats a double with engineering-friendly precision (Table II style).
inline std::string fmt(double value, int precision = 2) {
  char buffer[64];
  if (value != 0.0 && (value < 1e-2 || value >= 1e6)) {
    std::snprintf(buffer, sizeof(buffer), "%.2e", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  }
  return buffer;
}

/// Nearest-rank percentile of `samples` (`p` in [0, 100]; p50 = median,
/// p99 = tail): the value at rank ceil(p/100 * n), the standard
/// latency-reporting convention — always an actual sample, never an
/// interpolation. Sorts `samples` in place; returns 0 when empty.
inline double percentile(std::vector<double>& samples, double p) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size());
  std::size_t index = rank <= 1.0 ? 0 : static_cast<std::size_t>(std::ceil(rank)) - 1;
  index = std::min(index, samples.size() - 1);
  return samples[index];
}

/// True when `--json` was passed: the bench should emit machine-readable
/// records (one JSON object per line) instead of / in addition to its human
/// tables, so trajectory files (BENCH_*.json) can be scripted from the perf
/// benches.
inline bool json_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string{argv[i]} == "--json") {
      return true;
    }
  }
  return false;
}

/// Emits one machine-readable record: {"benchmark": ..., "metric": ..., "value": ...}.
inline void json_record(const std::string& benchmark, const std::string& metric, double value) {
  std::printf("{\"benchmark\": \"%s\", \"metric\": \"%s\", \"value\": %.17g}\n",
              benchmark.c_str(), metric.c_str(), value);
}

}  // namespace wavemig::bench
