#pragma once

// Shared formatting helpers for the table/figure reproduction binaries.

#include <cstdio>
#include <string>
#include <vector>

namespace wavemig::bench {

inline void print_rule(char fill = '-', int width = 110) {
  for (int i = 0; i < width; ++i) {
    std::putchar(fill);
  }
  std::putchar('\n');
}

inline void print_title(const std::string& title) {
  print_rule('=');
  std::printf("%s\n", title.c_str());
  print_rule('=');
}

/// Formats a double with engineering-friendly precision (Table II style).
inline std::string fmt(double value, int precision = 2) {
  char buffer[64];
  if (value != 0.0 && (value < 1e-2 || value >= 1e6)) {
    std::snprintf(buffer, sizeof(buffer), "%.2e", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  }
  return buffer;
}

/// True when `--json` was passed: the bench should emit machine-readable
/// records (one JSON object per line) instead of / in addition to its human
/// tables, so trajectory files (BENCH_*.json) can be scripted from the perf
/// benches.
inline bool json_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string{argv[i]} == "--json") {
      return true;
    }
  }
  return false;
}

/// Emits one machine-readable record: {"benchmark": ..., "metric": ..., "value": ...}.
inline void json_record(const std::string& benchmark, const std::string& metric, double value) {
  std::printf("{\"benchmark\": \"%s\", \"metric\": \"%s\", \"value\": %.17g}\n",
              benchmark.c_str(), metric.c_str(), value);
}

}  // namespace wavemig::bench
