#pragma once

// Shared formatting helpers for the table/figure reproduction binaries.

#include <cstdio>
#include <string>
#include <vector>

namespace wavemig::bench {

inline void print_rule(char fill = '-', int width = 110) {
  for (int i = 0; i < width; ++i) {
    std::putchar(fill);
  }
  std::putchar('\n');
}

inline void print_title(const std::string& title) {
  print_rule('=');
  std::printf("%s\n", title.c_str());
  print_rule('=');
}

/// Formats a double with engineering-friendly precision (Table II style).
inline std::string fmt(double value, int precision = 2) {
  char buffer[64];
  if (value != 0.0 && (value < 1e-2 || value >= 1e6)) {
    std::snprintf(buffer, sizeof(buffer), "%.2e", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  }
  return buffer;
}

}  // namespace wavemig::bench
