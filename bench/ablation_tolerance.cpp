// Ablation A6 (DESIGN.md): tolerance-aware balancing. The paper balances
// every path exactly, but the non-volatile cells it targets hold their value
// for a full clock period: under a P-phase clock an edge may span up to
// P - 1 scheduled levels (safe bound P - 2) and still deliver the same wave.
// This bench sweeps the coherence tolerance and reports the buffer savings
// relative to exact balancing — extra throughput head-room the paper's flow
// leaves on the table.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "wavemig/buffer_insertion.hpp"
#include "wavemig/gen/suite.hpp"
#include "wavemig/stats.hpp"

using namespace wavemig;

int main() {
  bench::print_title(
      "Ablation A6 - Coherence-tolerance sweep (BUF alone; tol = P-2 for a P-phase clock)");

  std::printf("%-16s %10s | %10s %10s %10s %10s\n", "benchmark", "size", "tol 0", "tol 1",
              "tol 2", "tol 3");
  bench::print_rule();

  std::size_t totals[4] = {0, 0, 0, 0};
  for (const auto& benchmk : gen::build_suite()) {
    std::printf("%-16s %10zu |", benchmk.name.c_str(), benchmk.net.num_components());
    for (unsigned tol = 0; tol <= 3; ++tol) {
      buffer_insertion_options opts;
      opts.tolerance = tol;
      const auto result = insert_buffers(benchmk.net, opts);
      totals[tol] += result.buffers_added;
      std::printf(" %10zu", result.buffers_added);
    }
    std::printf("\n");
  }
  bench::print_rule();
  std::printf("%-27s |", "suite totals");
  for (unsigned tol = 0; tol <= 3; ++tol) {
    std::printf(" %10zu", totals[tol]);
  }
  std::printf("\n%-27s |", "relative to exact");
  for (unsigned tol = 0; tol <= 3; ++tol) {
    std::printf(" %9.1f%%", 100.0 * static_cast<double>(totals[tol]) /
                                static_cast<double>(totals[0] == 0 ? 1 : totals[0]));
  }
  std::printf(
      "\n\nThe paper's three-phase clock supports tol 1 for free; tol 2/3 need a\n"
      "4-/5-phase clock, trading initiation interval for buffer area.\n");
  return 0;
}
