// P1: algorithm performance microbenchmarks (google-benchmark).
// Measures the wave-pipelining passes and supporting algorithms against
// circuit size, confirming the near-linear scaling that makes the flow
// practical at the 1e5-component scale of Fig. 5.

#include <benchmark/benchmark.h>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/depth_rewriting.hpp"
#include "wavemig/fanout_restriction.hpp"
#include "wavemig/gen/arith.hpp"
#include "wavemig/gen/random_mig.hpp"
#include "wavemig/inverter_optimization.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/pipeline.hpp"
#include "wavemig/simulation.hpp"
#include "wavemig/wave_simulator.hpp"

namespace {

using namespace wavemig;

mig_network sized_random(std::int64_t gates) {
  return gen::random_mig(
      {32, static_cast<unsigned>(gates), 0.4, 256, static_cast<std::uint64_t>(gates)});
}

void BM_buffer_insertion(benchmark::State& state) {
  const auto net = sized_random(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(insert_buffers(net));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_buffer_insertion)->Range(1000, 64000)->Complexity(benchmark::oN)->Unit(benchmark::kMillisecond);

void BM_fanout_restriction(benchmark::State& state) {
  const auto net = sized_random(8000);
  const auto limit = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(restrict_fanout(net, {limit, true}));
  }
}
BENCHMARK(BM_fanout_restriction)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

void BM_full_pipeline(benchmark::State& state) {
  const auto net = sized_random(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wave_pipeline(net));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_full_pipeline)->Range(1000, 32000)->Complexity(benchmark::oN)->Unit(benchmark::kMillisecond);

void BM_depth_rewriting(benchmark::State& state) {
  const auto net = sized_random(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(depth_rewrite(net, {2, true}));
  }
}
BENCHMARK(BM_depth_rewriting)->Range(1000, 16000)->Unit(benchmark::kMillisecond);

void BM_inverter_optimization(benchmark::State& state) {
  const auto net = sized_random(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_inverters(net));
  }
}
BENCHMARK(BM_inverter_optimization)->Range(1000, 16000)->Unit(benchmark::kMillisecond);

void BM_levels(benchmark::State& state) {
  const auto net = sized_random(32000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_levels(net));
  }
}
BENCHMARK(BM_levels);

void BM_word_simulation(benchmark::State& state) {
  const auto net = sized_random(16000);
  std::vector<std::uint64_t> words(net.num_pis(), 0xA5A5A5A5A5A5A5A5ull);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_words(net, words));
  }
}
BENCHMARK(BM_word_simulation);

void BM_wave_simulation(benchmark::State& state) {
  const auto net = insert_buffers(gen::multiplier_circuit(6)).net;
  std::vector<std::vector<bool>> waves(static_cast<std::size_t>(state.range(0)),
                                       std::vector<bool>(net.num_pis(), true));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_waves(net, waves, 3));
  }
}
BENCHMARK(BM_wave_simulation)->Arg(8)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
