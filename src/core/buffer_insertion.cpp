#include "wavemig/buffer_insertion.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "wavemig/levels.hpp"

namespace wavemig {

namespace {

/// Key identifying one physical consumer connection of a driver: either a
/// fan-in slot of a node or a primary-output position.
std::uint64_t edge_key(node_index consumer, std::uint32_t slot) {
  return (static_cast<std::uint64_t>(consumer) << 32) | slot;
}

class balance_builder {
public:
  balance_builder(const mig_network& old_net, const buffer_insertion_options& options)
      : old_{old_net},
        options_{options},
        levels_{compute_schedule(old_net, options.schedule)},
        fanouts_{compute_fanouts(old_net)} {}

  buffer_insertion_result run() {
    buffer_insertion_result result;
    result.depth_before = levels_.depth;

    std::vector<signal> map(old_.num_nodes(), constant0);
    old_.foreach_node([&](node_index n) {
      switch (old_.kind(n)) {
        case node_kind::constant:
          return;
        case node_kind::primary_input:
          map[n] = new_net_.create_pi(old_.pi_name(old_.pi_position(n)));
          break;
        case node_kind::majority: {
          const auto fis = old_.fanins(n);
          map[n] = new_net_.create_maj(tap_for(n, 0, fis[0]), tap_for(n, 1, fis[1]),
                                       tap_for(n, 2, fis[2]));
          break;
        }
        case node_kind::buffer:
          map[n] = new_net_.create_buffer(tap_for(n, 0, old_.fanins(n)[0]));
          break;
        case node_kind::fanout:
          map[n] = new_net_.create_fanout(tap_for(n, 0, old_.fanins(n)[0]));
          break;
      }
      record_schedule(map[n], levels_[n]);
      plan_driver(n, map[n]);
    });

    for (std::uint32_t position = 0; position < old_.num_pos(); ++position) {
      const signal driver = old_.po_signal(position);
      signal s;
      if (old_.is_constant(driver.index())) {
        s = driver;  // constant outputs carry no wave; no padding needed
      } else {
        s = taps_.at(edge_key(fanout_map::po_consumer, position))
                .complement_if(driver.is_complemented());
      }
      new_net_.create_po(s, old_.po_name(position));
    }

    result.buffers_added = new_net_.num_buffers() - old_.num_buffers();
    result.depth_after = compute_levels(new_net_).depth;

    schedule_.resize(new_net_.num_nodes(), 0);
    result.schedule.level = std::move(schedule_);
    result.schedule.depth = 0;
    for (const auto& po : new_net_.pos()) {
      if (!new_net_.is_constant(po.driver.index())) {
        result.schedule.depth =
            std::max(result.schedule.depth, result.schedule.level[po.driver.index()]);
      }
    }
    result.net = std::move(new_net_);
    return result;
  }

private:
  /// Required number of buffers on one consumer edge of driver `n`:
  /// the scheduled gap, reduced by the coherence tolerance (cells hold their
  /// value long enough to bridge `tolerance` extra levels).
  std::uint32_t gap_of(node_index n, const fanout_map::edge& e) const {
    std::uint32_t gap;
    if (e.consumer == fanout_map::po_consumer) {
      gap = options_.pad_outputs ? levels_.depth - levels_[n] : 0;
    } else {
      gap = levels_[e.consumer] - levels_[n] - 1;
    }
    return gap > options_.tolerance ? gap - options_.tolerance : 0;
  }

  /// Records the scheduled level of a rebuilt node (idempotent: structural
  /// hashing may map several requests onto one node; the first wins).
  void record_schedule(signal s, std::uint32_t level) {
    if (schedule_.size() <= s.index()) {
      schedule_.resize(s.index() + 1, 0);
      schedule_[s.index()] = level;
    }
  }

  /// Plans the buffer structure hanging off driver `n` (whose rebuilt signal
  /// is `s`) and records the tap signal of every consumer edge.
  void plan_driver(node_index n, signal s) {
    const auto& edges = fanouts_.edges[n];
    if (edges.empty()) {
      return;
    }
    switch (options_.strategy) {
      case buffer_strategy::naive:
        for (const auto& e : edges) {
          signal tap = s;
          for (std::uint32_t i = 0; i < gap_of(n, e); ++i) {
            tap = new_net_.create_buffer(tap);
            record_schedule(tap, levels_[n] + i + 1);
          }
          taps_[edge_key(e.consumer, e.slot)] = tap;
        }
        break;
      case buffer_strategy::chain: {
        // Algorithm 1: one shared chain; fan-outs sorted by required depth
        // tap it at their position (extending lazily gives the identical
        // structure for any processing order).
        std::vector<signal> chain{s};
        for (const auto& e : edges) {
          const std::uint32_t gap = gap_of(n, e);
          while (chain.size() <= gap) {
            chain.push_back(new_net_.create_buffer(chain.back()));
            record_schedule(chain.back(),
                            levels_[n] + static_cast<std::uint32_t>(chain.size()) - 1);
          }
          taps_[edge_key(e.consumer, e.slot)] = chain[gap];
        }
        break;
      }
      case buffer_strategy::tree:
        plan_tree(n, s, edges);
        break;
    }
  }

  void plan_tree(node_index n, signal s, const std::vector<fanout_map::edge>& edges) {
    const std::uint64_t cap =
        options_.fanout_limit ? *options_.fanout_limit : std::numeric_limits<std::uint64_t>::max();

    std::uint32_t max_gap = 0;
    for (const auto& e : edges) {
      max_gap = std::max(max_gap, gap_of(n, e));
    }

    // taps_at[p]: consumer edges attaching after p buffers.
    std::vector<std::vector<const fanout_map::edge*>> taps_at(max_gap + 1);
    for (const auto& e : edges) {
      taps_at[gap_of(n, e)].push_back(&e);
    }

    // Bottom-up vertex counts: vertices at position p drive the taps at p
    // plus the carrier buffers at p+1.
    std::vector<std::uint64_t> vertices(max_gap + 2, 0);
    for (std::uint32_t p = max_gap; p >= 1; --p) {
      const std::uint64_t demand = taps_at[p].size() + vertices[p + 1];
      // Overflow-safe ceiling division (cap may be the unlimited sentinel).
      vertices[p] = demand == 0 ? 0 : 1 + (demand - 1) / cap;
    }
    if (taps_at[0].size() + vertices[1] > cap) {
      throw std::invalid_argument{
          "insert_buffers: driver fan-out exceeds the buffer-tree capacity; "
          "run fanout restriction first"};
    }

    // Top-down materialization.
    std::vector<signal> current{s};
    std::vector<std::uint64_t> used{0};
    for (std::uint32_t p = 0; p <= max_gap; ++p) {
      std::vector<signal> next;
      std::vector<std::uint64_t> next_used;
      std::size_t parent = 0;
      auto take_parent = [&]() -> signal {
        while (used[parent] >= cap) {
          ++parent;
        }
        ++used[parent];
        return current[parent];
      };
      if (p < max_gap) {
        next.reserve(vertices[p + 1]);
        for (std::uint64_t i = 0; i < vertices[p + 1]; ++i) {
          next.push_back(new_net_.create_buffer(take_parent()));
          record_schedule(next.back(), levels_[n] + p + 1);
          next_used.push_back(0);
        }
      }
      for (const auto* e : taps_at[p]) {
        taps_[edge_key(e->consumer, e->slot)] = take_parent();
      }
      current = std::move(next);
      used = std::move(next_used);
    }
  }

  /// Fan-in signal of the rebuilt consumer: the planned tap with the original
  /// edge complement, or the constant itself.
  signal tap_for(node_index consumer, std::uint32_t slot, signal original) {
    if (old_.is_constant(original.index())) {
      return original;
    }
    return taps_.at(edge_key(consumer, slot)).complement_if(original.is_complemented());
  }

  const mig_network& old_;
  const buffer_insertion_options& options_;
  level_map levels_;
  fanout_map fanouts_;
  mig_network new_net_;
  std::unordered_map<std::uint64_t, signal> taps_;
  std::vector<std::uint32_t> schedule_;  // scheduled level per new node
};

}  // namespace

buffer_insertion_result insert_buffers(const mig_network& net,
                                       const buffer_insertion_options& options) {
  if (options.fanout_limit && *options.fanout_limit < 2) {
    throw std::invalid_argument{"insert_buffers: fanout limit must be at least 2"};
  }
  balance_builder builder{net, options};
  return builder.run();
}

}  // namespace wavemig
