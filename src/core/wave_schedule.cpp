#include "wavemig/wave_schedule.hpp"

#include <algorithm>

#include "wavemig/levels.hpp"

namespace wavemig {

namespace {

constexpr std::size_t max_reported_issues = 8;

void report(wave_readiness& r, std::string message) {
  if (r.issues.size() < max_reported_issues) {
    r.issues.push_back(std::move(message));
  }
}

}  // namespace

wave_readiness check_wave_readiness(const mig_network& net, const level_map& schedule,
                                    unsigned tolerance) {
  wave_readiness result;
  result.depth = schedule.depth;
  result.outputs_aligned = true;

  net.foreach_node([&](node_index n) {
    for (const signal f : net.fanins(n)) {
      if (net.is_constant(f.index())) {
        continue;
      }
      const std::uint32_t producer = schedule.level[f.index()];
      const std::uint32_t consumer = schedule.level[n];
      // The span is only meaningful on forward edges; a backward or
      // level-equal edge is reported as such instead of as a wrapped-around
      // unsigned difference.
      if (consumer <= producer) {
        ++result.violating_edges;
        report(result, "edge " + std::to_string(f.index()) + " (level " +
                           std::to_string(producer) + ") -> " + std::to_string(n) +
                           " (level " + std::to_string(consumer) + ") does not advance");
      } else if (consumer - producer > tolerance + 1) {
        ++result.violating_edges;
        report(result, "edge " + std::to_string(f.index()) + " (level " +
                           std::to_string(producer) + ") -> " + std::to_string(n) +
                           " (level " + std::to_string(consumer) + ") spans " +
                           std::to_string(consumer - producer) + " levels");
      }
    }
  });

  std::uint32_t po_min = UINT32_MAX;
  std::uint32_t po_max = 0;
  for (const auto& po : net.pos()) {
    if (net.is_constant(po.driver.index())) {
      continue;
    }
    const std::uint32_t lvl = schedule.level[po.driver.index()];
    po_min = std::min(po_min, lvl);
    po_max = std::max(po_max, lvl);
  }
  if (po_min != UINT32_MAX && po_max - po_min > tolerance) {
    result.outputs_aligned = false;
    report(result, "outputs span levels " + std::to_string(po_min) + ".." +
                       std::to_string(po_max) + " (tolerance " + std::to_string(tolerance) + ")");
  }

  result.ready = result.violating_edges == 0 && result.outputs_aligned;
  return result;
}

wave_readiness check_wave_readiness(const mig_network& net) {
  return check_wave_readiness(net, compute_levels(net), 0);
}

}  // namespace wavemig
