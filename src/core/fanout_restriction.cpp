#include "wavemig/fanout_restriction.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "wavemig/levels.hpp"

namespace wavemig {

namespace {

constexpr std::int64_t po_deadline = std::numeric_limits<std::int64_t>::max();

std::uint64_t edge_key(node_index consumer, std::uint32_t slot) {
  return (static_cast<std::uint64_t>(consumer) << 32) | slot;
}

class restriction_builder {
public:
  restriction_builder(const mig_network& old_net, const fanout_restriction_options& options)
      : old_{old_net},
        options_{options},
        levels_{compute_levels(old_net)},
        fanouts_{compute_fanouts(old_net)} {
    lower_bound_.assign(old_.num_nodes(), 0);
    old_.foreach_node([&](node_index n) { lower_bound_[n] = levels_[n]; });
  }

  fanout_restriction_result run() {
    fanout_restriction_result result;
    result.depth_before = levels_.depth;

    std::vector<signal> map(old_.num_nodes(), constant0);
    old_.foreach_node([&](node_index n) {
      switch (old_.kind(n)) {
        case node_kind::constant:
          return;
        case node_kind::primary_input:
          map[n] = new_net_.create_pi(old_.pi_name(old_.pi_position(n)));
          break;
        case node_kind::majority: {
          const auto fis = old_.fanins(n);
          map[n] = new_net_.create_maj(tap_for(n, 0, fis[0]), tap_for(n, 1, fis[1]),
                                       tap_for(n, 2, fis[2]));
          break;
        }
        case node_kind::buffer:
          map[n] = new_net_.create_buffer(tap_for(n, 0, old_.fanins(n)[0]));
          break;
        case node_kind::fanout:
          map[n] = new_net_.create_fanout(tap_for(n, 0, old_.fanins(n)[0]));
          break;
      }
      sync_levels();
      lower_bound_[n] = level_of(map[n]);
      plan_driver(n, map[n], result);
    });

    for (std::uint32_t position = 0; position < old_.num_pos(); ++position) {
      const signal driver = old_.po_signal(position);
      signal s = driver;
      if (!old_.is_constant(driver.index())) {
        s = taps_.at(edge_key(fanout_map::po_consumer, position))
                .complement_if(driver.is_complemented());
      }
      new_net_.create_po(s, old_.po_name(position));
    }

    result.fogs_added = new_net_.num_fanout_gates() - old_.num_fanout_gates();
    result.buffers_added = new_net_.num_buffers() - old_.num_buffers();
    result.depth_after = compute_levels(new_net_).depth;
    result.net = std::move(new_net_);
    return result;
  }

private:
  void sync_levels() {
    while (new_levels_.size() < new_net_.num_nodes()) {
      const auto n = static_cast<node_index>(new_levels_.size());
      std::uint32_t lvl = 0;
      for (const signal f : new_net_.fanins(n)) {
        if (!new_net_.is_constant(f.index())) {
          lvl = std::max(lvl, new_levels_[f.index()] + 1);
        }
      }
      new_levels_.push_back(lvl);
    }
  }

  [[nodiscard]] std::uint32_t level_of(signal s) const { return new_levels_[s.index()]; }

  signal tap_for(node_index consumer, std::uint32_t slot, signal original) {
    if (old_.is_constant(original.index())) {
      return original;
    }
    return taps_.at(edge_key(consumer, slot)).complement_if(original.is_complemented());
  }

  void plan_driver(node_index n, signal s, fanout_restriction_result& result) {
    const auto& edges = fanouts_.edges[n];
    if (edges.empty()) {
      return;
    }
    const std::uint32_t L = level_of(s);

    // Drivers within their native capability connect directly: every
    // component drives one consumer; an existing FOG drives up to `limit`.
    const std::size_t native_capacity = old_.is_fanout_gate(n) ? options_.limit : 1;
    if (edges.size() <= native_capacity) {
      for (const auto& e : edges) {
        record_tap(e, s, L + 1);
      }
      return;
    }

    const std::uint64_t m = edges.size();
    const std::uint64_t k = options_.limit;
    const std::uint64_t fog_count = (m - 1 + (k - 1) - 1) / (k - 1);  // ceil((m-1)/(k-1))

    // BFS FOG placement: ports are (depth, driving vertex); placing a FOG on
    // the shallowest free port keeps the tree as shallow as possible.
    struct port {
      std::uint32_t depth;  // consumer attached here sits at level >= L + depth
      signal vertex;
    };
    std::vector<port> ports{{1, s}};
    std::size_t head = 0;
    for (std::uint64_t i = 0; i < fog_count; ++i) {
      const port p = ports[head++];
      const signal fog = new_net_.create_fanout(p.vertex);
      sync_levels();
      for (std::uint64_t j = 0; j < k; ++j) {
        ports.push_back({p.depth + 1, fog});
      }
    }

    // Deadline of a consumer edge: the deepest port it can take without
    // being delayed. PO edges absorb any depth (they are padded later).
    struct pending {
      const fanout_map::edge* e;
      std::int64_t deadline;
    };
    std::vector<pending> consumers;
    consumers.reserve(edges.size());
    for (const auto& e : edges) {
      std::int64_t deadline = po_deadline;
      if (e.consumer != fanout_map::po_consumer) {
        deadline = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(lower_bound_[e.consumer]) - static_cast<std::int64_t>(L));
      }
      consumers.push_back({&e, deadline});
    }
    std::stable_sort(consumers.begin(), consumers.end(),
                     [](const pending& a, const pending& b) { return a.deadline < b.deadline; });

    // Ports remaining from `head` are free, already sorted by depth. The
    // deepest assigned port bounds residual stretching: within the FOG
    // tree's span no path may exit shallower than the tree is deep ("do not
    // leave residual paths that jump through graph levels", Fig. 6b), but
    // slack beyond the tree is left for the shared chains of the buffer
    // insertion pass.
    const std::uint32_t tree_depth = ports[head + consumers.size() - 1].depth;
    for (std::size_t i = 0; i < consumers.size(); ++i) {
      const port& p = ports[head + i];
      const pending& c = consumers[i];
      const bool is_po = c.e->consumer == fanout_map::po_consumer;
      signal tap = p.vertex;
      std::uint32_t arrival = L + p.depth;

      if (!is_po && static_cast<std::int64_t>(p.depth) > c.deadline) {
        ++result.delayed_edges;
      } else if (!is_po && options_.fill_residual &&
                 static_cast<std::int64_t>(p.depth) < c.deadline) {
        const auto target = std::min<std::int64_t>(c.deadline, tree_depth);
        for (std::int64_t j = p.depth; j < target; ++j) {
          tap = new_net_.create_buffer(tap);
        }
        sync_levels();
        arrival = L + static_cast<std::uint32_t>(std::max<std::int64_t>(p.depth, target));
      }
      record_tap(*c.e, tap, arrival);
    }
  }

  void record_tap(const fanout_map::edge& e, signal tap, std::uint32_t arrival) {
    taps_[edge_key(e.consumer, e.slot)] = tap;
    if (e.consumer != fanout_map::po_consumer) {
      lower_bound_[e.consumer] = std::max(lower_bound_[e.consumer], arrival);
    }
  }

  const mig_network& old_;
  const fanout_restriction_options& options_;
  level_map levels_;
  fanout_map fanouts_;
  mig_network new_net_;
  std::vector<std::uint32_t> new_levels_;
  std::vector<std::uint32_t> lower_bound_;  // growing level estimates, old indices
  std::unordered_map<std::uint64_t, signal> taps_;
};

}  // namespace

fanout_restriction_result restrict_fanout(const mig_network& net,
                                          const fanout_restriction_options& options) {
  if (options.limit < 2) {
    throw std::invalid_argument{"restrict_fanout: limit must be at least 2"};
  }
  restriction_builder builder{net, options};
  return builder.run();
}

}  // namespace wavemig
