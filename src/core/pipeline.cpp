#include "wavemig/pipeline.hpp"

#include <utility>

#include "wavemig/wave_schedule.hpp"

namespace wavemig {

pipeline_result wave_pipeline(const mig_network& net, const pipeline_options& options) {
  pipeline_result result;
  result.original_stats = compute_stats(net);
  result.depth_before = result.original_stats.depth;

  const std::optional<unsigned> limit = options.fanout_limit.resolve(options.scenario);

  mig_network current = net;  // copy; passes below rebuild anyway

  if (limit) {
    fanout_restriction_options fo;
    fo.limit = *limit;
    fo.fill_residual = options.fill_residual;
    auto restricted = restrict_fanout(current, fo);
    result.fogs_added = restricted.fogs_added;
    result.restriction_buffers_added = restricted.buffers_added;
    result.delayed_edges = restricted.delayed_edges;
    current = std::move(restricted.net);
  }

  // Loss budget after restriction (repeaters are per-edge, so the limit is
  // preserved) and before balancing (balance buffers regenerate, so
  // balancing never re-violates the budget).
  const std::optional<unsigned> budget =
      options.enforce_loss ? options.scenario.max_unregenerated_levels() : std::nullopt;
  if (budget) {
    loss_budget_options lb;
    lb.max_unregenerated_levels = budget;
    auto regenerated = enforce_loss_budget(current, lb);
    result.repeater_buffers_added = regenerated.repeaters_added;
    result.max_attenuation_run = regenerated.max_run_before;
    current = std::move(regenerated.net);
  }

  if (options.insert_buffers) {
    buffer_insertion_options bi;
    bi.strategy = options.strategy;
    bi.schedule = options.schedule;
    if (limit && options.respect_limit_in_buffers) {
      bi.strategy = buffer_strategy::tree;
      bi.fanout_limit = limit;
    }
    auto balanced = insert_buffers(current, bi);
    result.balance_buffers_added = balanced.buffers_added;
    current = std::move(balanced.net);
  }

  result.final_stats = compute_stats(current);
  result.depth_after = result.final_stats.depth;
  result.wave_ready = check_wave_readiness(current).ready;
  result.net = std::move(current);
  return result;
}

}  // namespace wavemig
