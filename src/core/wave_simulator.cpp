#include "wavemig/wave_simulator.hpp"

#include <stdexcept>

#include "wavemig/engine/compiled_netlist.hpp"
#include "wavemig/engine/wave_engine.hpp"
#include "wavemig/levels.hpp"

// Thin front-ends over the compiled execution engine (engine/): the network
// is lowered once per call and the engine's pre-bucketed tick program (or
// the packed combinational program) does the actual work. See
// engine/wave_engine.hpp for the execution model.

namespace wavemig {

namespace {

// Validation lives in the engine layer: the compiled_netlist constructor
// rejects a mismatched schedule, engine::run_waves checks phases and wave
// widths, and wave_batch/run_waves_packed cover the packed path.

wave_run_result unpack_packed(const engine::packed_wave_result& packed) {
  wave_run_result result;
  result.outputs = packed.unpack();
  result.ticks = packed.ticks;
  result.latency_ticks = packed.latency_ticks;
  result.initiation_interval = packed.initiation_interval;
  result.waves_in_flight = packed.waves_in_flight;
  return result;
}

}  // namespace

wave_run_result run_waves(const mig_network& net, const std::vector<std::vector<bool>>& waves,
                          unsigned phases) {
  return run_waves(net, waves, phases, compute_levels(net));
}

wave_run_result run_waves(const mig_network& net, const std::vector<std::vector<bool>>& waves,
                          unsigned phases, const level_map& schedule) {
  const engine::compiled_netlist compiled{net, schedule};
  return engine::run_waves(compiled, waves, phases);
}

wave_run_result run_waves_packed(const mig_network& net,
                                 const std::vector<std::vector<bool>>& waves, unsigned phases) {
  return run_waves_packed(net, waves, phases, compute_levels(net));
}

wave_run_result run_waves_packed(const mig_network& net,
                                 const std::vector<std::vector<bool>>& waves, unsigned phases,
                                 const level_map& schedule) {
  const engine::compiled_netlist compiled{net, schedule};
  const auto batch = engine::wave_batch::from_waves(waves, net.num_pis());
  return unpack_packed(engine::run_waves_packed(compiled, batch, phases));
}

}  // namespace wavemig
