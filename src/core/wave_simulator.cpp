#include "wavemig/wave_simulator.hpp"

#include <stdexcept>

#include "wavemig/levels.hpp"

namespace wavemig {

wave_run_result run_waves(const mig_network& net, const std::vector<std::vector<bool>>& waves,
                          unsigned phases) {
  return run_waves(net, waves, phases, compute_levels(net));
}

wave_run_result run_waves(const mig_network& net, const std::vector<std::vector<bool>>& waves,
                          unsigned phases, const level_map& levels) {
  if (phases == 0) {
    throw std::invalid_argument{"run_waves: at least one clock phase required"};
  }
  if (levels.level.size() != net.num_nodes()) {
    throw std::invalid_argument{"run_waves: schedule does not match the network"};
  }
  for (const auto& wave : waves) {
    if (wave.size() != net.num_pis()) {
      throw std::invalid_argument{"run_waves: each wave needs one value per primary input"};
    }
  }

  const std::uint32_t depth = levels.depth;

  wave_run_result result;
  result.initiation_interval = phases;
  result.latency_ticks = depth > 0 ? depth : 1;
  result.waves_in_flight = (depth + phases - 1) / phases;
  result.outputs.assign(waves.size(), {});
  if (waves.empty()) {
    return result;
  }

  // Sample tick of wave w at a driver of level l: the tick where that driver
  // latches wave w. Level-0 drivers (PIs) are sampled at injection time.
  auto sample_tick = [&](std::uint64_t w, std::uint32_t level) -> std::uint64_t {
    return w * phases + (level > 0 ? level - 1 : 0);
  };

  std::uint64_t last_tick = 0;
  const std::uint64_t last_wave = waves.size() - 1;
  for (const auto& po : net.pos()) {
    if (net.is_constant(po.driver.index())) {
      continue;
    }
    last_tick = std::max(last_tick, sample_tick(last_wave, levels[po.driver.index()]));
  }

  std::vector<bool> value(net.num_nodes(), false);
  std::vector<bool> snapshot;

  auto read = [&](const std::vector<bool>& state, signal s) {
    const bool v = state[s.index()];
    return s.is_complemented() ? !v : v;
  };

  for (std::uint64_t t = 0; t <= last_tick; ++t) {
    // Present the input wave for this initiation slot (inputs hold their
    // value between injections).
    const std::uint64_t wave = t / phases;
    if (t % phases == 0 && wave < waves.size()) {
      for (std::size_t i = 0; i < net.num_pis(); ++i) {
        value[net.pis()[i]] = waves[wave][i];
      }
    }

    // Synchronous update of the fired phase from the pre-tick state.
    snapshot = value;
    const std::uint32_t fired = static_cast<std::uint32_t>(t % phases);
    net.foreach_component([&](node_index n) {
      const std::uint32_t lvl = levels[n];
      if (lvl == 0 || (lvl - 1) % phases != fired) {
        return;
      }
      const auto fis = net.fanins(n);
      if (net.is_majority(n)) {
        const bool a = read(snapshot, fis[0]);
        const bool b = read(snapshot, fis[1]);
        const bool c = read(snapshot, fis[2]);
        value[n] = (a && b) || (b && c) || (a && c);
      } else {
        value[n] = read(snapshot, fis[0]);
      }
    });

    // Sample every output whose driver just latched its wave.
    for (std::size_t p = 0; p < net.num_pos(); ++p) {
      const signal driver = net.po_signal(p);
      if (net.is_constant(driver.index())) {
        continue;
      }
      const std::uint32_t lvl = levels[driver.index()];
      if (t < (lvl > 0 ? lvl - 1 : 0)) {
        continue;  // before the first wave can arrive
      }
      const std::uint64_t w = (t - (lvl > 0 ? lvl - 1 : 0)) / phases;
      if (w < waves.size() && t == sample_tick(w, lvl)) {
        auto& out = result.outputs[w];
        if (out.empty()) {
          out.assign(net.num_pos(), false);
        }
        out[p] = read(value, driver);
      }
    }
  }

  // Constant-driven outputs are the same for every wave.
  for (std::size_t p = 0; p < net.num_pos(); ++p) {
    const signal driver = net.po_signal(p);
    if (net.is_constant(driver.index())) {
      for (auto& out : result.outputs) {
        if (out.empty()) {
          out.assign(net.num_pos(), false);
        }
        out[p] = driver.is_complemented();
      }
    }
  }

  result.ticks = last_tick + 1;
  return result;
}

}  // namespace wavemig
