#include "wavemig/phase_assignment.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace wavemig {

double phase_assignment::load_imbalance() const {
  if (load.empty()) {
    return 0.0;
  }
  const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
  if (*hi == 0) {
    return 0.0;
  }
  return static_cast<double>(*hi - *lo) / static_cast<double>(*hi);
}

phase_assignment assign_phases(const mig_network& net, const level_map& schedule,
                               unsigned phases) {
  if (phases == 0) {
    throw std::invalid_argument{"assign_phases: at least one phase required"};
  }
  if (schedule.level.size() != net.num_nodes()) {
    throw std::invalid_argument{"assign_phases: schedule does not match the network"};
  }
  phase_assignment result;
  result.phases = phases;
  result.phase.assign(net.num_nodes(), 0);
  result.load.assign(phases, 0);

  net.foreach_component([&](node_index n) {
    const std::uint32_t lvl = schedule.level[n];
    const auto phase = static_cast<std::uint8_t>(lvl == 0 ? 0 : (lvl - 1) % phases);
    result.phase[n] = phase;
    ++result.load[phase];
  });
  return result;
}

phase_assignment assign_phases(const mig_network& net, unsigned phases) {
  return assign_phases(net, compute_levels(net), phases);
}

void write_phase_report(const mig_network& net, const level_map& schedule,
                        const phase_assignment& assignment, std::ostream& os) {
  os << "clock phases: " << assignment.phases << "\n";
  for (unsigned p = 0; p < assignment.phases; ++p) {
    os << "  phase " << p + 1 << ": " << assignment.load[p] << " components\n";
  }
  os << "load imbalance: " << assignment.load_imbalance() << "\n";

  // Wave-front composition per level.
  std::vector<std::size_t> majorities(schedule.depth + 1, 0);
  std::vector<std::size_t> buffers(schedule.depth + 1, 0);
  std::vector<std::size_t> fogs(schedule.depth + 1, 0);
  net.foreach_component([&](node_index n) {
    const std::uint32_t lvl = schedule.level[n];
    if (lvl > schedule.depth) {
      return;
    }
    if (net.is_majority(n)) {
      ++majorities[lvl];
    } else if (net.is_buffer(n)) {
      ++buffers[lvl];
    } else {
      ++fogs[lvl];
    }
  });
  os << "level | phase |   MAJ   BUF   FOG\n";
  for (std::uint32_t lvl = 1; lvl <= schedule.depth; ++lvl) {
    os << "  " << lvl << "  |  " << ((lvl - 1) % assignment.phases) + 1 << "  | " << majorities[lvl]
       << " " << buffers[lvl] << " " << fogs[lvl] << "\n";
  }
}

}  // namespace wavemig
