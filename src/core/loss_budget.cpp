#include "wavemig/loss_budget.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "wavemig/levels.hpp"

namespace wavemig {

namespace {

/// Longest unregenerated run of the network: per node, the consecutive
/// majority/FOG levels since the last PI or buffer (both regenerate).
std::uint32_t max_unregenerated_run(const mig_network& net) {
  std::vector<std::uint32_t> run(net.num_nodes(), 0);
  std::uint32_t worst = 0;
  net.foreach_node([&](node_index n) {
    if (!net.is_majority(n) && !net.is_fanout_gate(n)) {
      return;  // constants, PIs and buffers regenerate: run stays 0
    }
    std::uint32_t incoming = 0;
    for (const signal f : net.fanins(n)) {
      if (!net.is_constant(f.index())) {
        incoming = std::max(incoming, run[f.index()]);
      }
    }
    run[n] = incoming + 1;
    worst = std::max(worst, run[n]);
  });
  return worst;
}

}  // namespace

loss_budget_result enforce_loss_budget(const mig_network& old,
                                       const loss_budget_options& options) {
  loss_budget_result result;
  result.depth_before = compute_levels(old).depth;
  result.max_run_before = max_unregenerated_run(old);

  if (!options.max_unregenerated_levels) {
    result.max_run_after = result.max_run_before;
    result.depth_after = result.depth_before;
    result.net = old;
    return result;
  }
  const unsigned budget = *options.max_unregenerated_levels;
  if (budget == 0) {
    throw std::invalid_argument{
        "enforce_loss_budget: max_unregenerated_levels must be at least 1"};
  }

  mig_network net;
  std::vector<signal> map(old.num_nodes(), constant0);
  std::vector<std::uint32_t> run;  // per *new* node index

  const auto run_of = [&](signal s) -> std::uint32_t {
    return net.is_constant(s.index()) ? 0 : run[s.index()];
  };
  // Structural hashing / folding in create_maj may return an existing node —
  // identical structure implies an identical run, so only fresh nodes (index
  // at or past the pre-call watermark) are recorded.
  const auto note = [&](signal s, std::uint32_t r, std::size_t watermark) {
    if (s.index() >= watermark) {
      run.resize(net.num_nodes(), 0);
      run[s.index()] = r;
    }
  };
  const auto mapped = [&](signal f) -> signal {
    if (old.is_constant(f.index())) {
      return f;
    }
    return map[f.index()].complement_if(f.is_complemented());
  };
  // One more level through a majority/FOG would exceed the budget: splice a
  // regenerating repeater into this edge. Per edge, never shared — the
  // driver's fan-out degree is preserved, so the pass composes with
  // restrict_fanout without re-violating the limit.
  const auto regenerated = [&](signal s) -> signal {
    if (net.is_constant(s.index()) || run_of(s) + 1 <= budget) {
      return s;
    }
    const std::size_t watermark = net.num_nodes();
    const signal repeater = net.create_buffer(s);
    note(repeater, 0, watermark);
    ++result.repeaters_added;
    return repeater;
  };

  old.foreach_node([&](node_index n) {
    switch (old.kind(n)) {
      case node_kind::constant:
        return;
      case node_kind::primary_input: {
        const std::size_t watermark = net.num_nodes();
        map[n] = net.create_pi(old.pi_name(old.pi_position(n)));
        note(map[n], 0, watermark);
        return;
      }
      case node_kind::majority: {
        const auto fis = old.fanins(n);
        const signal a = regenerated(mapped(fis[0]));
        const signal b = regenerated(mapped(fis[1]));
        const signal c = regenerated(mapped(fis[2]));
        const std::size_t watermark = net.num_nodes();
        map[n] = net.create_maj(a, b, c);
        const std::uint32_t incoming =
            std::max({run_of(a), run_of(b), run_of(c)});
        note(map[n], incoming + 1, watermark);
        return;
      }
      case node_kind::buffer: {
        const std::size_t watermark = net.num_nodes();
        map[n] = net.create_buffer(mapped(old.fanins(n)[0]));
        note(map[n], 0, watermark);
        return;
      }
      case node_kind::fanout: {
        const signal in = regenerated(mapped(old.fanins(n)[0]));
        const std::size_t watermark = net.num_nodes();
        map[n] = net.create_fanout(in);
        note(map[n], run_of(in) + 1, watermark);
        return;
      }
    }
  });

  for (std::uint32_t p = 0; p < old.num_pos(); ++p) {
    const signal driver = old.po_signal(p);
    net.create_po(mapped(driver), old.po_name(p));
  }

  result.max_run_after = max_unregenerated_run(net);
  result.depth_after = compute_levels(net).depth;
  result.net = std::move(net);
  return result;
}

}  // namespace wavemig
