#include "wavemig/fault/fault_injection.hpp"

#include <cstdlib>
#include <mutex>
#include <random>
#include <thread>
#include <unordered_map>

namespace wavemig::fault {

namespace detail {
std::atomic<std::size_t> armed_count{0};
}  // namespace detail

namespace {

struct site_state {
  fault_config config;
  bool armed{false};
  std::uint64_t hits{0};   ///< counted while armed
  std::uint64_t fires{0};  ///< trigger firings (survives disarm)
};

struct registry {
  std::mutex mutex;
  std::unordered_map<std::string, site_state> sites;
  std::mt19937_64 rng{read_seed()};
  std::uint64_t seed{read_seed()};

  static std::uint64_t read_seed() {
    if (const char* env = std::getenv("WAVEMIG_FAULT_SEED")) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0') {
        return static_cast<std::uint64_t>(v);
      }
    }
    return 0xC0FFEE5EEDull;  // fixed default: chaos runs reproduce by default
  }

  static registry& instance() {
    static registry r;
    return r;
  }
};

}  // namespace

void arm(const std::string& site, fault_config config) {
  auto& reg = registry::instance();
  std::lock_guard<std::mutex> lock{reg.mutex};
  auto& state = reg.sites[site];
  if (!state.armed) {
    detail::armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  state.armed = true;
  state.config = config;
  state.hits = 0;
}

void disarm(const std::string& site) {
  auto& reg = registry::instance();
  std::lock_guard<std::mutex> lock{reg.mutex};
  const auto it = reg.sites.find(site);
  if (it != reg.sites.end() && it->second.armed) {
    it->second.armed = false;
    detail::armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void disarm_all() {
  auto& reg = registry::instance();
  std::lock_guard<std::mutex> lock{reg.mutex};
  for (auto& [name, state] : reg.sites) {
    if (state.armed) {
      state.armed = false;
      detail::armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

std::uint64_t fire_count(const std::string& site) {
  auto& reg = registry::instance();
  std::lock_guard<std::mutex> lock{reg.mutex};
  const auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.fires;
}

std::uint64_t hit_count(const std::string& site) {
  auto& reg = registry::instance();
  std::lock_guard<std::mutex> lock{reg.mutex};
  const auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.hits;
}

std::uint64_t seed() { return registry::instance().seed; }

std::vector<std::string> armed_sites() {
  auto& reg = registry::instance();
  std::lock_guard<std::mutex> lock{reg.mutex};
  std::vector<std::string> names;
  for (const auto& [name, state] : reg.sites) {
    if (state.armed) {
      names.push_back(name);
    }
  }
  return names;
}

fault_result hit(const char* site) {
  auto& reg = registry::instance();
  fault_result result;
  {
    std::lock_guard<std::mutex> lock{reg.mutex};
    const auto it = reg.sites.find(site);
    if (it == reg.sites.end() || !it->second.armed) {
      return result;
    }
    site_state& state = it->second;
    ++state.hits;
    const std::uint64_t nth = state.config.every_nth == 0 ? 1 : state.config.every_nth;
    if (state.hits % nth != 0) {
      return result;
    }
    if (state.config.probability < 1.0) {
      std::uniform_real_distribution<double> dist{0.0, 1.0};
      if (dist(reg.rng) >= state.config.probability) {
        return result;
      }
    }
    ++state.fires;
    result.fired = true;
    result.action = state.config.action;
    result.delay = state.config.delay;
    result.max_bytes = state.config.max_bytes;
    if (state.config.one_shot) {
      state.armed = false;
      detail::armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  // Delay/stall actions sleep right here (outside the lock), so most sites
  // need nothing beyond the `.fired` branch they already have.
  if (result.action == fault_action::delay || result.action == fault_action::stall) {
    if (result.delay.count() > 0) {
      std::this_thread::sleep_for(result.delay);
    }
  }
  return result;
}

}  // namespace wavemig::fault
