#include "wavemig/io/blif.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "wavemig/io/mig_format.hpp"  // parse_error
#include "wavemig/io/text_util.hpp"

namespace wavemig::io {

namespace {

struct names_block {
  std::vector<std::string> signals;  // inputs..., output last
  std::vector<std::pair<std::string, char>> cubes;
  std::size_t line_no{0};
};

signal build_cover(mig_network& net, const names_block& block,
                   const std::vector<signal>& inputs, std::size_t line_no) {
  // Constant covers.
  if (inputs.empty()) {
    if (block.cubes.empty()) {
      return constant0;
    }
    return block.cubes.front().second == '1' ? constant1 : constant0;
  }
  if (block.cubes.empty()) {
    return constant0;
  }

  const char value = block.cubes.front().second;
  signal sum = constant0;
  for (const auto& [pattern, out] : block.cubes) {
    if (out != value) {
      throw parse_error{line_no, ".names mixes on-set and off-set cubes"};
    }
    if (pattern.size() != inputs.size()) {
      throw parse_error{line_no, "cube width does not match .names input count"};
    }
    signal cube = constant1;
    for (std::size_t i = 0; i < pattern.size(); ++i) {
      if (pattern[i] == '1') {
        cube = net.create_and(cube, inputs[i]);
      } else if (pattern[i] == '0') {
        cube = net.create_and(cube, !inputs[i]);
      } else if (pattern[i] != '-') {
        throw parse_error{line_no, std::string{"invalid cube character '"} + pattern[i] + "'"};
      }
    }
    sum = net.create_or(sum, cube);
  }
  return value == '1' ? sum : !sum;  // off-set cover describes the complement
}

}  // namespace

mig_network read_blif(std::istream& is) {
  mig_network net;
  std::unordered_map<std::string, signal> symbols;
  std::vector<std::string> outputs;
  std::vector<names_block> blocks;

  std::size_t line_no = 0;
  std::string line;
  std::string pending;  // handles '\' continuations
  names_block* current = nullptr;

  auto tokens_of = [](const std::string& s) {
    std::vector<std::string> t;
    std::stringstream ss{s};
    std::string w;
    while (ss >> w) {
      t.push_back(w);
    }
    return t;
  };

  while (std::getline(is, line)) {
    ++line_no;
    strip_line_ending(line);  // CRLF parity with every other io/ reader
    // A '#' comment runs to the end of the physical line, so a backslash
    // inside a comment is part of the comment, not a continuation: strip
    // before the continuation check, and drop the whitespace the strip can
    // leave so "\ # comment" still continues like "\" does.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    strip_line_ending(line);
    if (!line.empty() && line.back() == '\\') {
      pending += line.substr(0, line.size() - 1) + " ";
      continue;
    }
    line = pending + line;
    pending.clear();

    const auto toks = tokens_of(line);
    if (toks.empty()) {
      continue;
    }

    if (toks[0] == ".model") {
      current = nullptr;
    } else if (toks[0] == ".inputs") {
      current = nullptr;
      for (std::size_t i = 1; i < toks.size(); ++i) {
        symbols[toks[i]] = net.create_pi(toks[i]);
      }
    } else if (toks[0] == ".outputs") {
      current = nullptr;
      outputs.insert(outputs.end(), toks.begin() + 1, toks.end());
    } else if (toks[0] == ".names") {
      if (toks.size() < 2) {
        throw parse_error{line_no, ".names requires at least an output"};
      }
      blocks.emplace_back();
      current = &blocks.back();
      current->signals.assign(toks.begin() + 1, toks.end());
      current->line_no = line_no;
    } else if (toks[0] == ".end") {
      current = nullptr;
    } else if (toks[0] == ".latch" || toks[0] == ".subckt" || toks[0] == ".gate") {
      throw parse_error{line_no, "unsupported BLIF construct '" + toks[0] + "'"};
    } else if (toks[0][0] == '.') {
      throw parse_error{line_no, "unknown BLIF directive '" + toks[0] + "'"};
    } else {
      if (current == nullptr) {
        throw parse_error{line_no, "cube line outside .names"};
      }
      if (current->signals.size() == 1) {
        // Constant: single token '0' or '1'.
        if (toks.size() != 1 || (toks[0] != "0" && toks[0] != "1")) {
          throw parse_error{line_no, "constant .names expects a single 0/1 line"};
        }
        current->cubes.emplace_back("", toks[0][0]);
      } else {
        if (toks.size() != 2 || toks[1].size() != 1) {
          throw parse_error{line_no, "cube line must be '<pattern> <0|1>'"};
        }
        current->cubes.emplace_back(toks[0], toks[1][0]);
      }
    }
  }
  if (!pending.empty()) {
    // The accumulated text never reached the parser; dropping it silently
    // would quietly alter the circuit.
    throw parse_error{line_no, "file ends inside a '\\' line continuation"};
  }

  // Resolve .names blocks; BLIF allows any order, so iterate until all
  // definitions are available (cycles are rejected).
  std::vector<bool> done(blocks.size(), false);
  std::size_t remaining = blocks.size();
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      if (done[i]) {
        continue;
      }
      auto& block = blocks[i];
      std::vector<signal> inputs;
      bool ready = true;
      for (std::size_t s = 0; s + 1 < block.signals.size(); ++s) {
        const auto it = symbols.find(block.signals[s]);
        if (it == symbols.end()) {
          ready = false;
          break;
        }
        inputs.push_back(it->second);
      }
      if (!ready) {
        continue;
      }
      const std::string& out = block.signals.back();
      if (symbols.count(out) != 0) {
        throw parse_error{block.line_no, "redefinition of '" + out + "'"};
      }
      symbols[out] = build_cover(net, block, inputs, block.line_no);
      done[i] = true;
      --remaining;
      progress = true;
    }
  }
  if (remaining > 0) {
    throw parse_error{0, "unresolved or cyclic .names definitions"};
  }

  for (const auto& name : outputs) {
    const auto it = symbols.find(name);
    if (it == symbols.end()) {
      throw parse_error{0, "undefined output '" + name + "'"};
    }
    net.create_po(it->second, name);
  }
  return net;
}

mig_network read_blif_file(const std::string& path) {
  std::ifstream is{path};
  if (!is) {
    throw std::runtime_error{"read_blif_file: cannot open '" + path + "'"};
  }
  return read_blif(is);
}

namespace {

/// Emitted-name table. User-visible PI/PO names are sanitized (whitespace,
/// '#' and '\' would change the token structure of the file) and claimed
/// first; generated names — internal nodes ("n<i>"), shared inverters
/// ("<name>_b"), constant drivers ("const0"/"const1") — are then uniquified
/// against them, so a PI literally named "n7" no longer merges with node 7
/// on re-read.
class blif_name_table {
public:
  explicit blif_name_table(const mig_network& net) : net_{net} {
    pi_names_.reserve(net.num_pis());
    for (std::size_t i = 0; i < net.num_pis(); ++i) {
      pi_names_.push_back(claim(sanitize(net.pi_name(i))));
    }
    po_names_.reserve(net.num_pos());
    for (const auto& po : net.pos()) {
      po_names_.push_back(claim(sanitize(po.name)));
    }
  }

  [[nodiscard]] const std::string& pi(std::size_t position) const {
    return pi_names_[position];
  }
  [[nodiscard]] const std::string& po(std::size_t position) const {
    return po_names_[position];
  }

  [[nodiscard]] const std::string& node(node_index n) {
    auto [it, inserted] = node_names_.try_emplace(n);
    if (inserted) {
      it->second = net_.is_pi(n) ? pi_names_[net_.pi_position(n)]
                                 : claim("n" + std::to_string(n));
    }
    return it->second;
  }

  /// Name of the shared inverter fed by node `n`.
  [[nodiscard]] const std::string& inverted(node_index n) {
    auto [it, inserted] = inverted_names_.try_emplace(n);
    if (inserted) {
      it->second = claim(node(n) + "_b");
    }
    return it->second;
  }

  [[nodiscard]] const std::string& constant(bool one) {
    std::string& name = constant_names_[one ? 1 : 0];
    if (name.empty()) {
      name = claim(one ? "const1" : "const0");
    }
    return name;
  }

private:
  static std::string sanitize(const std::string& name) {
    std::string out = name.empty() ? "_" : name;
    for (char& ch : out) {
      if (ch == ' ' || ch == '\t' || ch == '#' || ch == '\\' || ch == '\r' || ch == '\n') {
        ch = '_';
      }
    }
    return out;
  }

  /// Registers `base`, appending "_<k>" until it is unique.
  std::string claim(std::string base) {
    if (used_.insert(base).second) {
      return base;
    }
    for (unsigned k = 1;; ++k) {
      std::string candidate = base + "_" + std::to_string(k);
      if (used_.insert(candidate).second) {
        return candidate;
      }
    }
  }

  const mig_network& net_;
  std::unordered_set<std::string> used_;
  std::vector<std::string> pi_names_;
  std::vector<std::string> po_names_;
  std::unordered_map<node_index, std::string> node_names_;
  std::unordered_map<node_index, std::string> inverted_names_;
  std::string constant_names_[2];
};

}  // namespace

void write_blif(const mig_network& net, std::ostream& os, const std::string& model_name) {
  blif_name_table names{net};

  os << ".model " << model_name << "\n.inputs";
  for (std::size_t i = 0; i < net.num_pis(); ++i) {
    os << ' ' << names.pi(i);
  }
  os << "\n.outputs";
  for (std::size_t p = 0; p < net.num_pos(); ++p) {
    os << ' ' << names.po(p);
  }
  os << '\n';

  // Shared inverters: one per driver that feeds any complemented edge.
  std::unordered_set<node_index> inverted;
  auto operand = [&](signal s) -> std::string {
    if (s.is_complemented()) {
      inverted.insert(s.index());
      return names.inverted(s.index());
    }
    return names.node(s.index());
  };

  // Constant drivers used anywhere need .names blocks.
  bool use_const0 = false;
  bool use_const1 = false;
  std::ostringstream body;
  auto emit_operand = [&](signal s) -> std::string {
    if (net.is_constant(s.index())) {
      if (s.is_complemented()) {
        use_const1 = true;
      } else {
        use_const0 = true;
      }
      return names.constant(s.is_complemented());
    }
    return operand(s);
  };

  net.foreach_node([&](node_index n) {
    switch (net.kind(n)) {
      case node_kind::majority: {
        const auto fis = net.fanins(n);
        const std::string a = emit_operand(fis[0]);
        const std::string b = emit_operand(fis[1]);
        const std::string c = emit_operand(fis[2]);
        body << ".names " << a << ' ' << b << ' ' << c << ' ' << names.node(n) << '\n'
             << "11- 1\n1-1 1\n-11 1\n";
        break;
      }
      case node_kind::buffer:
      case node_kind::fanout:
        body << ".names " << emit_operand(net.fanins(n)[0]) << ' ' << names.node(n) << '\n'
             << "1 1\n";
        break;
      default:
        break;
    }
  });

  std::ostringstream po_body;
  for (std::size_t p = 0; p < net.num_pos(); ++p) {
    po_body << ".names " << emit_operand(net.po_signal(p)) << ' ' << names.po(p) << "\n1 1\n";
  }

  if (use_const0) {
    os << ".names " << names.constant(false) << "\n";  // empty cover = constant 0
  }
  if (use_const1) {
    os << ".names " << names.constant(true) << "\n1\n";
  }
  for (const node_index n : inverted) {
    os << ".names " << names.node(n) << ' ' << names.inverted(n) << "\n0 1\n";
  }
  os << body.str() << po_body.str() << ".end\n";
}

void write_blif_file(const mig_network& net, const std::string& path,
                     const std::string& model_name) {
  std::ofstream os{path};
  if (!os) {
    throw std::runtime_error{"write_blif_file: cannot open '" + path + "'"};
  }
  write_blif(net, os, model_name);
}

}  // namespace wavemig::io
