#include "wavemig/io/blif.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "wavemig/io/mig_format.hpp"  // parse_error

namespace wavemig::io {

namespace {

struct names_block {
  std::vector<std::string> signals;  // inputs..., output last
  std::vector<std::pair<std::string, char>> cubes;
  std::size_t line_no{0};
};

signal build_cover(mig_network& net, const names_block& block,
                   const std::vector<signal>& inputs, std::size_t line_no) {
  // Constant covers.
  if (inputs.empty()) {
    if (block.cubes.empty()) {
      return constant0;
    }
    return block.cubes.front().second == '1' ? constant1 : constant0;
  }
  if (block.cubes.empty()) {
    return constant0;
  }

  const char value = block.cubes.front().second;
  signal sum = constant0;
  for (const auto& [pattern, out] : block.cubes) {
    if (out != value) {
      throw parse_error{line_no, ".names mixes on-set and off-set cubes"};
    }
    if (pattern.size() != inputs.size()) {
      throw parse_error{line_no, "cube width does not match .names input count"};
    }
    signal cube = constant1;
    for (std::size_t i = 0; i < pattern.size(); ++i) {
      if (pattern[i] == '1') {
        cube = net.create_and(cube, inputs[i]);
      } else if (pattern[i] == '0') {
        cube = net.create_and(cube, !inputs[i]);
      } else if (pattern[i] != '-') {
        throw parse_error{line_no, std::string{"invalid cube character '"} + pattern[i] + "'"};
      }
    }
    sum = net.create_or(sum, cube);
  }
  return value == '1' ? sum : !sum;  // off-set cover describes the complement
}

}  // namespace

mig_network read_blif(std::istream& is) {
  mig_network net;
  std::unordered_map<std::string, signal> symbols;
  std::vector<std::string> outputs;
  std::vector<names_block> blocks;

  std::size_t line_no = 0;
  std::string line;
  std::string pending;  // handles '\' continuations
  names_block* current = nullptr;

  auto tokens_of = [](const std::string& s) {
    std::vector<std::string> t;
    std::stringstream ss{s};
    std::string w;
    while (ss >> w) {
      t.push_back(w);
    }
    return t;
  };

  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (!line.empty() && line.back() == '\\') {
      pending += line.substr(0, line.size() - 1) + " ";
      continue;
    }
    line = pending + line;
    pending.clear();

    const auto hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    const auto toks = tokens_of(line);
    if (toks.empty()) {
      continue;
    }

    if (toks[0] == ".model") {
      current = nullptr;
    } else if (toks[0] == ".inputs") {
      current = nullptr;
      for (std::size_t i = 1; i < toks.size(); ++i) {
        symbols[toks[i]] = net.create_pi(toks[i]);
      }
    } else if (toks[0] == ".outputs") {
      current = nullptr;
      outputs.insert(outputs.end(), toks.begin() + 1, toks.end());
    } else if (toks[0] == ".names") {
      if (toks.size() < 2) {
        throw parse_error{line_no, ".names requires at least an output"};
      }
      blocks.emplace_back();
      current = &blocks.back();
      current->signals.assign(toks.begin() + 1, toks.end());
      current->line_no = line_no;
    } else if (toks[0] == ".end") {
      current = nullptr;
    } else if (toks[0] == ".latch" || toks[0] == ".subckt" || toks[0] == ".gate") {
      throw parse_error{line_no, "unsupported BLIF construct '" + toks[0] + "'"};
    } else if (toks[0][0] == '.') {
      throw parse_error{line_no, "unknown BLIF directive '" + toks[0] + "'"};
    } else {
      if (current == nullptr) {
        throw parse_error{line_no, "cube line outside .names"};
      }
      if (current->signals.size() == 1) {
        // Constant: single token '0' or '1'.
        if (toks.size() != 1 || (toks[0] != "0" && toks[0] != "1")) {
          throw parse_error{line_no, "constant .names expects a single 0/1 line"};
        }
        current->cubes.emplace_back("", toks[0][0]);
      } else {
        if (toks.size() != 2 || toks[1].size() != 1) {
          throw parse_error{line_no, "cube line must be '<pattern> <0|1>'"};
        }
        current->cubes.emplace_back(toks[0], toks[1][0]);
      }
    }
  }

  // Resolve .names blocks; BLIF allows any order, so iterate until all
  // definitions are available (cycles are rejected).
  std::vector<bool> done(blocks.size(), false);
  std::size_t remaining = blocks.size();
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      if (done[i]) {
        continue;
      }
      auto& block = blocks[i];
      std::vector<signal> inputs;
      bool ready = true;
      for (std::size_t s = 0; s + 1 < block.signals.size(); ++s) {
        const auto it = symbols.find(block.signals[s]);
        if (it == symbols.end()) {
          ready = false;
          break;
        }
        inputs.push_back(it->second);
      }
      if (!ready) {
        continue;
      }
      const std::string& out = block.signals.back();
      if (symbols.count(out) != 0) {
        throw parse_error{block.line_no, "redefinition of '" + out + "'"};
      }
      symbols[out] = build_cover(net, block, inputs, block.line_no);
      done[i] = true;
      --remaining;
      progress = true;
    }
  }
  if (remaining > 0) {
    throw parse_error{0, "unresolved or cyclic .names definitions"};
  }

  for (const auto& name : outputs) {
    const auto it = symbols.find(name);
    if (it == symbols.end()) {
      throw parse_error{0, "undefined output '" + name + "'"};
    }
    net.create_po(it->second, name);
  }
  return net;
}

mig_network read_blif_file(const std::string& path) {
  std::ifstream is{path};
  if (!is) {
    throw std::runtime_error{"read_blif_file: cannot open '" + path + "'"};
  }
  return read_blif(is);
}

namespace {

std::string blif_name(const mig_network& net, node_index n) {
  if (net.is_pi(n)) {
    return net.pi_name(net.pi_position(n));
  }
  return "n" + std::to_string(n);
}

}  // namespace

void write_blif(const mig_network& net, std::ostream& os, const std::string& model_name) {
  os << ".model " << model_name << "\n.inputs";
  for (std::size_t i = 0; i < net.num_pis(); ++i) {
    os << ' ' << net.pi_name(i);
  }
  os << "\n.outputs";
  for (const auto& po : net.pos()) {
    os << ' ' << po.name;
  }
  os << '\n';

  // Shared inverters: one per driver that feeds any complemented edge.
  std::unordered_set<node_index> inverted;
  auto inverted_name = [&](node_index n) { return blif_name(net, n) + "_b"; };
  auto operand = [&](signal s) -> std::string {
    if (s.is_complemented()) {
      inverted.insert(s.index());
      return inverted_name(s.index());
    }
    return blif_name(net, s.index());
  };

  // Constant drivers used anywhere need .names blocks.
  bool use_const0 = false;
  bool use_const1 = false;
  std::ostringstream body;
  auto emit_operand = [&](signal s) -> std::string {
    if (net.is_constant(s.index())) {
      if (s.is_complemented()) {
        use_const1 = true;
        return "const1";
      }
      use_const0 = true;
      return "const0";
    }
    return operand(s);
  };

  net.foreach_node([&](node_index n) {
    switch (net.kind(n)) {
      case node_kind::majority: {
        const auto fis = net.fanins(n);
        const std::string a = emit_operand(fis[0]);
        const std::string b = emit_operand(fis[1]);
        const std::string c = emit_operand(fis[2]);
        body << ".names " << a << ' ' << b << ' ' << c << ' ' << blif_name(net, n) << '\n'
             << "11- 1\n1-1 1\n-11 1\n";
        break;
      }
      case node_kind::buffer:
      case node_kind::fanout:
        body << ".names " << emit_operand(net.fanins(n)[0]) << ' ' << blif_name(net, n) << '\n'
             << "1 1\n";
        break;
      default:
        break;
    }
  });

  std::ostringstream po_body;
  for (const auto& po : net.pos()) {
    po_body << ".names " << emit_operand(po.driver) << ' ' << po.name << "\n1 1\n";
  }

  if (use_const0) {
    os << ".names const0\n";  // empty cover = constant 0
  }
  if (use_const1) {
    os << ".names const1\n1\n";
  }
  for (const node_index n : inverted) {
    os << ".names " << blif_name(net, n) << ' ' << inverted_name(n) << "\n0 1\n";
  }
  os << body.str() << po_body.str() << ".end\n";
}

void write_blif_file(const mig_network& net, const std::string& path,
                     const std::string& model_name) {
  std::ofstream os{path};
  if (!os) {
    throw std::runtime_error{"write_blif_file: cannot open '" + path + "'"};
  }
  write_blif(net, os, model_name);
}

}  // namespace wavemig::io
