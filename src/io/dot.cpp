#include "wavemig/io/dot.hpp"

#include <fstream>
#include <map>
#include <vector>

#include "wavemig/levels.hpp"

namespace wavemig::io {

void write_dot(const mig_network& net, std::ostream& os) {
  const auto levels = compute_levels(net);

  os << "digraph mig {\n  rankdir=BT;\n";
  std::map<std::uint32_t, std::vector<node_index>> by_level;

  net.foreach_node([&](node_index n) {
    switch (net.kind(n)) {
      case node_kind::primary_input:
        os << "  n" << n << " [label=\"" << net.pi_name(net.pi_position(n))
           << "\", shape=house, style=filled, fillcolor=lightblue];\n";
        break;
      case node_kind::majority:
        os << "  n" << n << " [label=\"MAJ\\n" << n << "\", shape=ellipse];\n";
        break;
      case node_kind::buffer:
        os << "  n" << n << " [label=\"BUF\\n" << n
           << "\", shape=box, style=filled, fillcolor=lightgray];\n";
        break;
      case node_kind::fanout:
        os << "  n" << n << " [label=\"FOG\\n" << n
           << "\", shape=invtriangle, style=filled, fillcolor=lightyellow];\n";
        break;
      case node_kind::constant:
        return;  // constants drawn per use would clutter; omit
    }
    by_level[levels[n]].push_back(n);
  });

  net.foreach_node([&](node_index n) {
    for (const signal f : net.fanins(n)) {
      if (net.is_constant(f.index())) {
        continue;
      }
      os << "  n" << f.index() << " -> n" << n
         << (f.is_complemented() ? " [style=dashed]" : "") << ";\n";
    }
  });

  for (std::size_t p = 0; p < net.num_pos(); ++p) {
    const signal driver = net.po_signal(p);
    os << "  po" << p << " [label=\"" << net.po_name(p)
       << "\", shape=invhouse, style=filled, fillcolor=lightgreen];\n";
    if (!net.is_constant(driver.index())) {
      os << "  n" << driver.index() << " -> po" << p
         << (driver.is_complemented() ? " [style=dashed]" : "") << ";\n";
    }
  }

  for (const auto& [lvl, nodes] : by_level) {
    os << "  { rank=same;";
    for (const node_index n : nodes) {
      os << " n" << n << ";";
    }
    os << " }  // level " << lvl << "\n";
  }
  os << "}\n";
}

void write_dot_file(const mig_network& net, const std::string& path) {
  std::ofstream os{path};
  if (!os) {
    throw std::runtime_error{"write_dot_file: cannot open '" + path + "'"};
  }
  write_dot(net, os);
}

}  // namespace wavemig::io
