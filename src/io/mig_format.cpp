#include "wavemig/io/mig_format.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "wavemig/io/text_util.hpp"

namespace wavemig::io {

namespace {

std::string node_name(const mig_network& net, node_index n) {
  if (net.is_pi(n)) {
    return net.pi_name(net.pi_position(n));
  }
  return "n" + std::to_string(n);
}

std::string operand(const mig_network& net, signal s) {
  if (net.is_constant(s.index())) {
    return s.is_complemented() ? "1" : "0";
  }
  return (s.is_complemented() ? "!" : "") + node_name(net, s.index());
}

}  // namespace

void write_mig(const mig_network& net, std::ostream& os, const std::string& model_name) {
  os << "# wavemig netlist\n.model " << model_name << "\n.inputs";
  for (std::size_t i = 0; i < net.num_pis(); ++i) {
    os << ' ' << net.pi_name(i);
  }
  os << '\n';

  net.foreach_node([&](node_index n) {
    switch (net.kind(n)) {
      case node_kind::majority: {
        const auto fis = net.fanins(n);
        os << node_name(net, n) << " = MAJ(" << operand(net, fis[0]) << ", "
           << operand(net, fis[1]) << ", " << operand(net, fis[2]) << ")\n";
        break;
      }
      case node_kind::buffer:
        os << node_name(net, n) << " = BUF(" << operand(net, net.fanins(n)[0]) << ")\n";
        break;
      case node_kind::fanout:
        os << node_name(net, n) << " = FOG(" << operand(net, net.fanins(n)[0]) << ")\n";
        break;
      default:
        break;
    }
  });

  for (const auto& po : net.pos()) {
    os << ".output " << po.name << " = " << operand(net, po.driver) << '\n';
  }
}

void write_mig_file(const mig_network& net, const std::string& path,
                    const std::string& model_name) {
  std::ofstream os{path};
  if (!os) {
    throw std::runtime_error{"write_mig_file: cannot open '" + path + "'"};
  }
  write_mig(net, os, model_name);
}

namespace {

struct reader_state {
  mig_network net;
  std::unordered_map<std::string, signal> symbols;
  std::size_t line_no{0};

  signal parse_operand(std::string token) {
    if (token == "0") {
      return constant0;
    }
    if (token == "1") {
      return constant1;
    }
    bool complemented = false;
    if (!token.empty() && token[0] == '!') {
      complemented = true;
      token.erase(0, 1);
    }
    const auto it = symbols.find(token);
    if (it == symbols.end()) {
      throw parse_error{line_no, "use of undefined signal '" + token + "'"};
    }
    return it->second.complement_if(complemented);
  }
};

/// Splits "NAME = KIND(op, op, op)" into pieces; returns false if the line
/// is not an assignment.
bool split_assignment(const std::string& line, std::string& name, std::string& kind,
                      std::vector<std::string>& ops) {
  const auto eq = line.find('=');
  const auto open = line.find('(');
  const auto close = line.rfind(')');
  if (eq == std::string::npos || open == std::string::npos || close == std::string::npos ||
      open > close || eq > open) {
    return false;
  }
  auto trim = [](std::string s) {
    const auto begin = s.find_first_not_of(" \t");
    const auto end = s.find_last_not_of(" \t");
    return begin == std::string::npos ? std::string{} : s.substr(begin, end - begin + 1);
  };
  name = trim(line.substr(0, eq));
  kind = trim(line.substr(eq + 1, open - eq - 1));
  ops.clear();
  std::string inner = line.substr(open + 1, close - open - 1);
  std::stringstream ss{inner};
  std::string piece;
  while (std::getline(ss, piece, ',')) {
    ops.push_back(trim(piece));
  }
  return !name.empty() && !kind.empty();
}

}  // namespace

mig_network read_mig(std::istream& is) {
  reader_state st;
  std::string line;
  while (std::getline(is, line)) {
    ++st.line_no;
    const auto begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos || line[begin] == '#') {
      continue;
    }
    line = line.substr(begin);
    strip_line_ending(line);

    if (line.rfind(".model", 0) == 0) {
      continue;
    }
    if (line.rfind(".inputs", 0) == 0) {
      std::stringstream ss{line.substr(7)};
      std::string name;
      while (ss >> name) {
        if (st.symbols.count(name) != 0) {
          throw parse_error{st.line_no, "duplicate input '" + name + "'"};
        }
        st.symbols[name] = st.net.create_pi(name);
      }
      continue;
    }
    if (line.rfind(".output", 0) == 0) {
      const auto eq = line.find('=');
      if (eq == std::string::npos) {
        throw parse_error{st.line_no, ".output requires '<name> = <operand>'"};
      }
      std::stringstream left{line.substr(7, eq - 7)};
      std::string name;
      left >> name;
      std::stringstream right{line.substr(eq + 1)};
      std::string op;
      right >> op;
      if (name.empty() || op.empty()) {
        throw parse_error{st.line_no, ".output requires '<name> = <operand>'"};
      }
      st.net.create_po(st.parse_operand(op), name);
      continue;
    }

    std::string name;
    std::string kind;
    std::vector<std::string> ops;
    if (!split_assignment(line, name, kind, ops)) {
      throw parse_error{st.line_no, "unrecognized line '" + line + "'"};
    }
    if (st.symbols.count(name) != 0) {
      throw parse_error{st.line_no, "redefinition of '" + name + "'"};
    }
    signal s;
    if (kind == "MAJ") {
      if (ops.size() != 3) {
        throw parse_error{st.line_no, "MAJ requires three operands"};
      }
      s = st.net.create_maj(st.parse_operand(ops[0]), st.parse_operand(ops[1]),
                            st.parse_operand(ops[2]));
    } else if (kind == "BUF" || kind == "FOG") {
      if (ops.size() != 1) {
        throw parse_error{st.line_no, kind + " requires one operand"};
      }
      s = kind == "BUF" ? st.net.create_buffer(st.parse_operand(ops[0]))
                        : st.net.create_fanout(st.parse_operand(ops[0]));
    } else {
      throw parse_error{st.line_no, "unknown component kind '" + kind + "'"};
    }
    st.symbols[name] = s;
  }
  return std::move(st.net);
}

mig_network read_mig_file(const std::string& path) {
  std::ifstream is{path};
  if (!is) {
    throw std::runtime_error{"read_mig_file: cannot open '" + path + "'"};
  }
  return read_mig(is);
}

}  // namespace wavemig::io
