#include "wavemig/io/text_util.hpp"

#include <stdexcept>

namespace wavemig::io {

void strip_line_ending(std::string& line) {
  while (!line.empty() &&
         (line.back() == '\r' || line.back() == ' ' || line.back() == '\t')) {
    line.pop_back();
  }
}

std::size_t parse_count(const std::string& token, std::size_t max, const char* what) {
  if (token.empty()) {
    throw std::invalid_argument{std::string{what} + ": empty count"};
  }
  std::size_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument{std::string{what} + ": invalid count '" + token + "'"};
    }
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    // value * 10 + digit > max, tested without the multiply that could wrap.
    if (value > max / 10 || (value == max / 10 && digit > max % 10)) {
      throw std::invalid_argument{std::string{what} + ": count '" + token +
                                  "' exceeds the supported maximum"};
    }
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace wavemig::io
