#include "wavemig/engine/serving.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace wavemig::engine {

serving_session::serving_session(parallel_executor& executor,
                                 buffer_insertion_options options, cache_limits limits,
                                 unsigned dispatchers, compile_options compile)
    : session_{executor, options, limits, compile} {
  if (dispatchers == 0) {
    dispatchers = 2;
  }
  dispatchers_.reserve(dispatchers);
  for (unsigned d = 0; d < dispatchers; ++d) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
}

serving_session::~serving_session() { close(); }

void serving_session::submit(mig_network net, wave_batch waves, unsigned phases,
                             serving_callback on_complete) {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    if (closed_) {
      throw std::runtime_error{"serving_session: submit after close"};
    }
    request req;
    req.net = std::move(net);
    req.waves = std::move(waves);
    req.phases = phases;
    req.done = std::move(on_complete);
    queue_.push_back(std::move(req));
  }
  queue_ready_.notify_one();
}

std::future<packed_wave_result> serving_session::submit(mig_network net, wave_batch waves,
                                                        unsigned phases) {
  auto promise = std::make_shared<std::promise<packed_wave_result>>();
  auto future = promise->get_future();
  submit(std::move(net), std::move(waves), phases,
         [promise](packed_wave_result result, std::exception_ptr error) {
           if (error) {
             promise->set_exception(error);
           } else {
             promise->set_value(std::move(result));
           }
         });
  return future;
}

void serving_session::submit_packed(mig_network net, std::vector<std::uint64_t> plane_words,
                                    std::size_t num_waves, unsigned phases,
                                    serving_callback on_complete) {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    if (closed_) {
      throw std::runtime_error{"serving_session: submit after close"};
    }
    request req;
    req.net = std::move(net);
    req.plane_words = std::move(plane_words);
    req.packed_waves = num_waves;
    req.packed = true;
    req.phases = phases;
    req.done = std::move(on_complete);
    queue_.push_back(std::move(req));
  }
  queue_ready_.notify_one();
}

std::future<packed_wave_result> serving_session::submit_packed(
    mig_network net, std::vector<std::uint64_t> plane_words, std::size_t num_waves,
    unsigned phases) {
  auto promise = std::make_shared<std::promise<packed_wave_result>>();
  auto future = promise->get_future();
  submit_packed(std::move(net), std::move(plane_words), num_waves, phases,
                [promise](packed_wave_result result, std::exception_ptr error) {
                  if (error) {
                    promise->set_exception(error);
                  } else {
                    promise->set_value(std::move(result));
                  }
                });
  return future;
}

void serving_session::dispatcher_loop() {
  for (;;) {
    request req;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      queue_ready_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // closed and fully drained
      }
      req = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }

    // The request pins its compiled program via shared_ptr, so a concurrent
    // LRU eviction of the same entry cannot pull the program out from under
    // the evaluation.
    packed_wave_result result;
    std::exception_ptr error;
    try {
      if (req.packed) {
        // Zero-copy adoption of the caller's plane-major words. The size
        // validation throws here — on the dispatcher — so a malformed
        // packed request surfaces through the future like any other
        // validation error.
        req.waves = wave_batch::from_plane_words(std::move(req.plane_words),
                                                 req.net.num_pis(), req.packed_waves);
      }
      result = session_.run(req.net, req.waves, req.phases);
    } catch (...) {
      error = std::current_exception();
    }
    // A callback that throws (including a follow-up submit racing close())
    // must not take down the dispatcher — and with it the process.
    try {
      if (req.done) {
        req.done(std::move(result), error);
      }
    } catch (...) {
    }
    req = request{};  // release the network/batch before reporting idle

    {
      std::lock_guard<std::mutex> lock{mutex_};
      if (--active_ == 0 && queue_.empty()) {
        idle_.notify_all();
      }
    }
  }
}

void serving_session::drain() {
  std::unique_lock<std::mutex> lock{mutex_};
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void serving_session::close() {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    closed_ = true;
  }
  queue_ready_.notify_all();
  drain();
  // close_mutex_ serializes concurrent closers: the first joins, every
  // later one (including a destructor racing it) blocks here until the
  // join completed, so no caller ever returns while a dispatcher thread
  // can still touch the session. mutex_ is not held — the dispatchers
  // need it to finish their last iteration.
  std::lock_guard<std::mutex> close_lock{close_mutex_};
  for (auto& dispatcher : dispatchers_) {
    dispatcher.join();
  }
  dispatchers_.clear();
}

std::size_t serving_session::pending() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return queue_.size() + active_;
}

}  // namespace wavemig::engine
