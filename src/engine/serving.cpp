#include "wavemig/engine/serving.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "block_splice.hpp"
#include "wavemig/fault/fault_injection.hpp"

namespace wavemig::engine {

serving_session::serving_session(parallel_executor& executor,
                                 buffer_insertion_options options, cache_limits limits,
                                 unsigned dispatchers, compile_options compile)
    : executor_{executor},
      session_{executor, options, limits, compile},
      max_inflight_units_{std::max<std::size_t>(4, 4 * executor.num_threads())} {
  if (dispatchers == 0) {
    dispatchers = 2;
  }
  dispatchers_.reserve(dispatchers);
  for (unsigned d = 0; d < dispatchers; ++d) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
}

serving_session::~serving_session() { close(); }

// -------------------------------------------------------- submissions ---

void serving_session::enqueue(request req) {
  req.enqueued = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock{mutex_};
    if (closed_) {
      throw session_closed_error{};
    }
    // Admission control: reject (don't queue) once the backlog sits at the
    // bound — the caller learns now instead of missing a deadline later.
    const std::size_t backlog = queue_.size() + active_;
    if (admission_limit_ != 0 && backlog >= admission_limit_) {
      ++metrics_.requests_rejected;
      throw admission_rejected_error{backlog, admission_limit_};
    }
    // Load shedding: while the session looks overloaded (queue depth or
    // recent queue-wait p99 over its threshold), requests at or below the
    // policy's priority floor are rejected before consuming a slot, so the
    // traffic that can still meet its deadlines keeps flowing.
    const bool overloaded =
        (shed_policy_.queue_depth != 0 && queue_.size() >= shed_policy_.queue_depth) ||
        (shed_policy_.queue_wait_p99_ms > 0.0 &&
         cached_wait_p99_ms_ > shed_policy_.queue_wait_p99_ms);
    if (overloaded && req.opts.priority >= shed_policy_.min_priority) {
      ++metrics_.requests_rejected;
      ++metrics_.requests_shed;
      throw admission_rejected_error{
          "serving_session: shed under overload (queue " +
          std::to_string(queue_.size()) + " deep, recent wait p99 " +
          std::to_string(cached_wait_p99_ms_) + " ms, priority " +
          std::to_string(req.opts.priority) + " >= shed floor " +
          std::to_string(shed_policy_.min_priority) + ")"};
    }
    ++metrics_.requests_accepted;
    queue_.push_back(std::move(req));
  }
  queue_ready_.notify_one();
}

void serving_session::submit(std::shared_ptr<const mig_network> net, wave_batch waves,
                             unsigned phases, serving_callback on_complete) {
  request req;
  req.net = std::move(net);
  req.waves = std::move(waves);
  req.phases = phases;
  req.done = std::move(on_complete);
  enqueue(std::move(req));
}

void serving_session::submit(mig_network net, wave_batch waves, unsigned phases,
                             serving_callback on_complete) {
  submit(std::make_shared<const mig_network>(std::move(net)), std::move(waves), phases,
         std::move(on_complete));
}

std::future<packed_wave_result> serving_session::submit(
    std::shared_ptr<const mig_network> net, wave_batch waves, unsigned phases) {
  auto promise = std::make_shared<std::promise<packed_wave_result>>();
  auto future = promise->get_future();
  submit(std::move(net), std::move(waves), phases,
         [promise](packed_wave_result result, std::exception_ptr error) {
           if (error) {
             promise->set_exception(error);
           } else {
             promise->set_value(std::move(result));
           }
         });
  return future;
}

std::future<packed_wave_result> serving_session::submit(mig_network net, wave_batch waves,
                                                        unsigned phases) {
  return submit(std::make_shared<const mig_network>(std::move(net)), std::move(waves),
                phases);
}

void serving_session::submit(std::shared_ptr<const mig_network> net, wave_batch waves,
                             unsigned phases, tech_scenario scenario,
                             serving_callback on_complete) {
  request req;
  req.net = std::move(net);
  req.waves = std::move(waves);
  req.phases = phases;
  req.opts.scenario = std::make_shared<const tech_scenario>(std::move(scenario));
  req.done = std::move(on_complete);
  enqueue(std::move(req));
}

std::future<packed_wave_result> serving_session::submit(
    std::shared_ptr<const mig_network> net, wave_batch waves, unsigned phases,
    tech_scenario scenario) {
  auto promise = std::make_shared<std::promise<packed_wave_result>>();
  auto future = promise->get_future();
  submit(std::move(net), std::move(waves), phases, std::move(scenario),
         [promise](packed_wave_result result, std::exception_ptr error) {
           if (error) {
             promise->set_exception(error);
           } else {
             promise->set_value(std::move(result));
           }
         });
  return future;
}

void serving_session::submit_packed(std::shared_ptr<const mig_network> net,
                                    std::vector<std::uint64_t> plane_words,
                                    std::size_t num_waves, unsigned phases,
                                    serving_callback on_complete) {
  request req;
  req.net = std::move(net);
  req.plane_words = std::move(plane_words);
  req.packed_waves = num_waves;
  req.packed = true;
  req.phases = phases;
  req.done = std::move(on_complete);
  enqueue(std::move(req));
}

void serving_session::submit_packed(mig_network net, std::vector<std::uint64_t> plane_words,
                                    std::size_t num_waves, unsigned phases,
                                    serving_callback on_complete) {
  submit_packed(std::make_shared<const mig_network>(std::move(net)), std::move(plane_words),
                num_waves, phases, std::move(on_complete));
}

std::future<packed_wave_result> serving_session::submit_packed(
    std::shared_ptr<const mig_network> net, std::vector<std::uint64_t> plane_words,
    std::size_t num_waves, unsigned phases) {
  auto promise = std::make_shared<std::promise<packed_wave_result>>();
  auto future = promise->get_future();
  submit_packed(std::move(net), std::move(plane_words), num_waves, phases,
                [promise](packed_wave_result result, std::exception_ptr error) {
                  if (error) {
                    promise->set_exception(error);
                  } else {
                    promise->set_value(std::move(result));
                  }
                });
  return future;
}

std::future<packed_wave_result> serving_session::submit_packed(
    mig_network net, std::vector<std::uint64_t> plane_words, std::size_t num_waves,
    unsigned phases) {
  return submit_packed(std::make_shared<const mig_network>(std::move(net)),
                       std::move(plane_words), num_waves, phases);
}

void serving_session::submit_packed(std::shared_ptr<const mig_network> net,
                                    std::vector<std::uint64_t> plane_words,
                                    std::size_t num_waves, unsigned phases,
                                    tech_scenario scenario, serving_callback on_complete) {
  request req;
  req.net = std::move(net);
  req.plane_words = std::move(plane_words);
  req.packed_waves = num_waves;
  req.packed = true;
  req.phases = phases;
  req.opts.scenario = std::make_shared<const tech_scenario>(std::move(scenario));
  req.done = std::move(on_complete);
  enqueue(std::move(req));
}

std::future<packed_wave_result> serving_session::submit_packed(
    std::shared_ptr<const mig_network> net, std::vector<std::uint64_t> plane_words,
    std::size_t num_waves, unsigned phases, tech_scenario scenario) {
  auto promise = std::make_shared<std::promise<packed_wave_result>>();
  auto future = promise->get_future();
  submit_packed(std::move(net), std::move(plane_words), num_waves, phases,
                std::move(scenario),
                [promise](packed_wave_result result, std::exception_ptr error) {
                  if (error) {
                    promise->set_exception(error);
                  } else {
                    promise->set_value(std::move(result));
                  }
                });
  return future;
}

void serving_session::submit(std::shared_ptr<const mig_network> net, wave_batch waves,
                             unsigned phases, submit_options opts,
                             serving_callback on_complete) {
  request req;
  req.net = std::move(net);
  req.waves = std::move(waves);
  req.phases = phases;
  req.opts = std::move(opts);
  req.done = std::move(on_complete);
  enqueue(std::move(req));
}

std::future<packed_wave_result> serving_session::submit(
    std::shared_ptr<const mig_network> net, wave_batch waves, unsigned phases,
    submit_options opts) {
  auto promise = std::make_shared<std::promise<packed_wave_result>>();
  auto future = promise->get_future();
  submit(std::move(net), std::move(waves), phases, std::move(opts),
         [promise](packed_wave_result result, std::exception_ptr error) {
           if (error) {
             promise->set_exception(error);
           } else {
             promise->set_value(std::move(result));
           }
         });
  return future;
}

void serving_session::submit_packed(std::shared_ptr<const mig_network> net,
                                    std::vector<std::uint64_t> plane_words,
                                    std::size_t num_waves, unsigned phases,
                                    submit_options opts, serving_callback on_complete) {
  request req;
  req.net = std::move(net);
  req.plane_words = std::move(plane_words);
  req.packed_waves = num_waves;
  req.packed = true;
  req.phases = phases;
  req.opts = std::move(opts);
  req.done = std::move(on_complete);
  enqueue(std::move(req));
}

std::future<packed_wave_result> serving_session::submit_packed(
    std::shared_ptr<const mig_network> net, std::vector<std::uint64_t> plane_words,
    std::size_t num_waves, unsigned phases, submit_options opts) {
  auto promise = std::make_shared<std::promise<packed_wave_result>>();
  auto future = promise->get_future();
  submit_packed(std::move(net), std::move(plane_words), num_waves, phases, std::move(opts),
                [promise](packed_wave_result result, std::exception_ptr error) {
                  if (error) {
                    promise->set_exception(error);
                  } else {
                    promise->set_value(std::move(result));
                  }
                });
  return future;
}

// ----------------------------------------------------------- dispatch ---

std::uint64_t serving_session::fingerprint_of(
    const std::shared_ptr<const mig_network>& net) {
  const mig_network* key = net.get();
  {
    std::lock_guard<std::mutex> lock{fp_mutex_};
    if (const auto it = fp_memo_.find(key); it != fp_memo_.end()) {
      // The weak_ptr must still refer to *this* object: a memo hit on a
      // reused allocation address (old network freed, new one placed there)
      // would otherwise serve the old network's fingerprint.
      if (const auto held = it->second.net.lock(); held.get() == key) {
        return it->second.fingerprint;
      }
      fp_memo_.erase(it);
    }
  }
  const std::uint64_t fp = network_fingerprint(*net);
  std::lock_guard<std::mutex> lock{fp_mutex_};
  if (fp_memo_.size() >= 256) {
    // Cheap bound: drop dead entries first, flush wholesale if the memo is
    // full of live one-shot networks.
    for (auto it = fp_memo_.begin(); it != fp_memo_.end();) {
      it = it->second.net.expired() ? fp_memo_.erase(it) : std::next(it);
    }
    if (fp_memo_.size() >= 256) {
      fp_memo_.clear();
    }
  }
  fp_memo_[key] = {net, fp};
  return fp;
}

void serving_session::dispatcher_loop() {
  for (;;) {
    // serving.dispatcher.stall (delay action, sleeps inside hit()): one
    // dispatcher stops draining for a while, as if wedged on a slow
    // compile — the backlog this builds is what load shedding reacts to.
    (void)WAVEMIG_FAULT_HIT("serving.dispatcher.stall");
    std::vector<request> gulp;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      queue_ready_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // closed and fully drained
      }
      gulp = take_gulp_locked();
      // The gulp's requests count as active until their units retire them,
      // so drain()'s predicate never observes a false idle.
      active_ += gulp.size();
      ++metrics_.gulps;
      metrics_.max_gulp = std::max<std::uint64_t>(metrics_.max_gulp, gulp.size());
    }
    process_gulp(std::move(gulp));
  }
}

std::vector<serving_session::request> serving_session::take_gulp_locked() {
  const std::size_t take = std::min(queue_.size(), max_gulp_requests);
  std::vector<request> gulp;
  gulp.reserve(take);

  // Fast path — the overwhelmingly common queue shape (one priority class,
  // at most one client id) is plain FIFO: no selection pass, no rebuild.
  bool uniform = true;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    if (queue_[i].opts.priority != queue_.front().opts.priority ||
        queue_[i].opts.client_id != queue_.front().opts.client_id) {
      uniform = false;
      break;
    }
  }
  if (uniform) {
    for (std::size_t i = 0; i < take; ++i) {
      gulp.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    return gulp;
  }

  // Policy path: order the whole queue by ascending priority byte (stable,
  // so FIFO survives inside equal keys), then round-robin across client
  // ids inside each priority class — every sweep takes at most one request
  // per client, so a flooding client contributes once per turn while its
  // competitors' requests drain alongside.
  std::vector<std::size_t> order(queue_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return queue_[a].opts.priority < queue_[b].opts.priority;
  });

  std::vector<std::size_t> chosen;
  chosen.reserve(take);
  std::size_t at = 0;
  while (chosen.size() < take && at < order.size()) {
    std::size_t end = at;
    while (end < order.size() &&
           queue_[order[end]].opts.priority == queue_[order[at]].opts.priority) {
      ++end;
    }
    std::vector<char> taken(end - at, 0);
    std::size_t remaining = end - at;
    while (remaining > 0 && chosen.size() < take) {
      std::vector<std::uint64_t> clients_this_turn;
      for (std::size_t k = at; k < end && chosen.size() < take; ++k) {
        if (taken[k - at]) {
          continue;
        }
        const std::uint64_t client = queue_[order[k]].opts.client_id;
        if (std::find(clients_this_turn.begin(), clients_this_turn.end(), client) !=
            clients_this_turn.end()) {
          continue;  // this client already got its slot this turn
        }
        clients_this_turn.push_back(client);
        taken[k - at] = 1;
        --remaining;
        chosen.push_back(order[k]);
      }
    }
    at = end;
  }

  // Extract the chosen requests (in selection order), then rebuild the
  // queue from the unchosen remainder in original FIFO order.
  std::vector<char> selected(queue_.size(), 0);
  for (const std::size_t i : chosen) {
    selected[i] = 1;
  }
  for (const std::size_t i : chosen) {
    gulp.push_back(std::move(queue_[i]));
  }
  std::deque<request> rest;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (!selected[i]) {
      rest.push_back(std::move(queue_[i]));
    }
  }
  queue_ = std::move(rest);
  return gulp;
}

void serving_session::process_gulp(std::vector<request> gulp) {
  const auto now = std::chrono::steady_clock::now();
  {
    constexpr std::size_t recent_wait_window = 128;
    constexpr std::size_t p99_refresh_interval = 32;
    std::lock_guard<std::mutex> lock{mutex_};
    for (const request& req : gulp) {
      const double wait_ms =
          std::chrono::duration<double, std::milli>(now - req.enqueued).count();
      if (queue_wait_samples_.size() < max_queue_wait_samples) {
        queue_wait_samples_.push_back(wait_ms);
      }
      // The shed check's p99 source: a small ring of the latest waits,
      // re-sorted every few samples so submissions read a cached double
      // instead of sorting anything.
      if (recent_waits_.size() < recent_wait_window) {
        recent_waits_.push_back(wait_ms);
      } else {
        recent_waits_[recent_at_] = wait_ms;
        recent_at_ = (recent_at_ + 1) % recent_wait_window;
      }
      if (++samples_since_p99_ >= p99_refresh_interval) {
        samples_since_p99_ = 0;
        std::vector<double> sorted = recent_waits_;
        std::sort(sorted.begin(), sorted.end());
        cached_wait_p99_ms_ = sorted[std::min(sorted.size() - 1, sorted.size() * 99 / 100)];
      }
    }
  }

  // Prepare each request in isolation: adopt packed words, fingerprint,
  // compile (one cache hit/miss per request — the session's hit/miss
  // counters stay per-request even when requests fuse), validate. A failure
  // here fails only this request; its gulp-mates proceed.
  struct prepared {
    request req;
    std::shared_ptr<const compiled_netlist> program;
    std::size_t chunks{0};
  };
  std::vector<prepared> ready;
  ready.reserve(gulp.size());
  for (request& req : gulp) {
    try {
      // A request whose deadline already passed fails without executing —
      // nobody can use its result, so the cycles go to requests that can
      // still make theirs.
      if (req.opts.deadline != std::chrono::steady_clock::time_point{} &&
          now >= req.opts.deadline) {
        throw deadline_expired_error{};
      }
      if (WAVEMIG_FAULT_HIT("serving.dispatcher.throw").fired) {
        // An unexpected dispatcher-side failure: must fail only this
        // request (internal_error on the wire), never its gulp-mates.
        throw std::runtime_error{"injected dispatcher fault (serving.dispatcher.throw)"};
      }
      if (req.packed) {
        // Zero-copy adoption of the caller's plane-major words. Shape
        // validation throws here — on the dispatcher — so a malformed
        // packed request surfaces through the future like any other
        // validation error. Packed requests declare their shape, so zero
        // waves is a malformed header, not a degenerate batch.
        if (req.packed_waves == 0) {
          throw invalid_request_error{"serving_session: packed request with zero waves"};
        }
        try {
          req.waves = wave_batch::from_plane_words(
              std::move(req.plane_words), req.net->num_pis(), req.packed_waves,
              req.opts.reject_stray_tail_bits ? wave_batch::tail_bits::reject
                                              : wave_batch::tail_bits::mask);
        } catch (const std::invalid_argument& shape) {
          throw invalid_request_error{shape.what()};
        }
      }
      // Scenario-tagged requests compile through the scenario cache path;
      // the distinct program pointer then keeps them from coalescing with
      // untagged (or differently-tagged) requests against the same network.
      // A per-request compile override (req.opts.compile) routes through
      // the options-keyed overloads the same way.
      const std::uint64_t fp = fingerprint_of(req.net);
      auto program =
          req.opts.scenario
              ? (req.opts.compile
                     ? session_.compile(*req.net, req.phases, fp, *req.opts.scenario,
                                        *req.opts.compile)
                     : session_.compile(*req.net, req.phases, fp, *req.opts.scenario))
              : (req.opts.compile
                     ? session_.compile(*req.net, req.phases, fp, *req.opts.compile)
                     : session_.compile(*req.net, req.phases, fp));
      validate_packed_run(*program, req.waves.num_pis(), req.phases, "serving_session");
      const std::size_t chunks = req.waves.num_chunks();
      ready.push_back({std::move(req), std::move(program), chunks});
    } catch (const deadline_expired_error&) {
      {
        std::lock_guard<std::mutex> lock{mutex_};
        ++metrics_.requests_expired;
      }
      fail_request(req, std::current_exception());
    } catch (...) {
      fail_request(req, std::current_exception());
    }
  }

  // Group by executable program identity: one cache entry per (fingerprint,
  // strategy, phases), so same-key requests share one shared_ptr and the
  // pointer doubles as the coalescing key. Requests wider than
  // small_request_chunks amortize a pass on their own and run as
  // singletons; small same-key requests pack greedily (in submission order)
  // into fused blocks of at most max_fused_chunks.
  struct group {
    const compiled_netlist* program;
    unsigned phases;
    std::vector<std::size_t> members;  // indices into `ready`
  };
  std::vector<group> groups;
  for (std::size_t i = 0; i < ready.size(); ++i) {
    const compiled_netlist* program = ready[i].program.get();
    const unsigned phases = ready[i].req.phases;
    auto it = std::find_if(groups.begin(), groups.end(), [&](const group& g) {
      return g.program == program && g.phases == phases;
    });
    if (it == groups.end()) {
      groups.push_back({program, phases, {}});
      it = std::prev(groups.end());
    }
    it->members.push_back(i);
  }

  for (const group& g : groups) {
    std::vector<std::size_t> fusible;
    for (const std::size_t i : g.members) {
      if (ready[i].chunks > small_request_chunks) {
        auto unit = std::make_shared<exec_unit>();
        unit->program = ready[i].program;
        unit->phases = g.phases;
        unit->total_chunks = ready[i].chunks;
        unit->member_waves.push_back(ready[i].req.waves.num_waves());
        unit->batch = std::move(ready[i].req.waves);
        ready[i].req.waves = wave_batch{0};
        unit->members.push_back(std::move(ready[i].req));
        launch_unit(std::move(unit));
      } else {
        fusible.push_back(i);
      }
    }
    // Greedy packing in submission order; a leftover of one degenerates to
    // a singleton pass on its own batch (zero-copy, no fused buffer).
    std::size_t at = 0;
    while (at < fusible.size()) {
      std::size_t end = at;
      std::size_t total = 0;
      while (end < fusible.size() && (end == at || total + ready[fusible[end]].chunks <=
                                                       max_fused_chunks)) {
        total += ready[fusible[end]].chunks;
        ++end;
      }
      auto unit = std::make_shared<exec_unit>();
      unit->program = ready[fusible[at]].program;
      unit->phases = g.phases;
      unit->total_chunks = total;
      if (end - at == 1) {
        prepared& p = ready[fusible[at]];
        unit->member_waves.push_back(p.req.waves.num_waves());
        unit->batch = std::move(p.req.waves);
        p.req.waves = wave_batch{0};
        unit->members.push_back(std::move(p.req));
      } else {
        // Fused block: each member's planes land at its chunk offset of a
        // shared plane-major buffer with stride == total. Members uphold
        // the tail-zero invariant, so the fused planes do too; the unused
        // lanes of a member's last chunk evaluate to garbage that the
        // per-member slice-back masks off — chunk purity keeps every
        // member's own chunks bit-identical to a standalone run.
        unit->fused = true;
        const std::size_t num_pis = unit->program->num_pis();
        unit->in_words.assign(total * num_pis, 0);
        unit->members.reserve(end - at);
        std::size_t offset = 0;
        for (std::size_t k = at; k < end; ++k) {
          prepared& p = ready[fusible[k]];
          for (std::size_t i = 0; i < num_pis; ++i) {
            std::memcpy(unit->in_words.data() + i * total + offset, p.req.waves.plane(i),
                        p.chunks * sizeof(std::uint64_t));
          }
          unit->member_offsets.push_back(offset);
          unit->member_waves.push_back(p.req.waves.num_waves());
          offset += p.chunks;
          p.req.waves = wave_batch{0};  // input copied; free it before launch
          unit->members.push_back(std::move(p.req));
        }
      }
      launch_unit(std::move(unit));
      at = end;
    }
  }
}

void serving_session::fail_request(request& req, std::exception_ptr error) {
  // A callback that throws (including a follow-up submit racing close())
  // must not take down the dispatcher — and with it the process.
  try {
    if (req.done) {
      req.done(packed_wave_result{}, error);
    }
  } catch (...) {
  }
  req = request{};  // release the network/batch before reporting idle
  std::lock_guard<std::mutex> lock{mutex_};
  ++metrics_.requests_failed;
  if (--active_ == 0 && queue_.empty()) {
    idle_.notify_all();
  }
}

void serving_session::launch_unit(std::shared_ptr<exec_unit> unit) {
  {
    // Bound the passes in flight: their result (and fused input) buffers
    // are the dispatcher's only unbounded memory under a flood. Workers
    // retire passes independently of the dispatchers, so this always
    // clears.
    std::unique_lock<std::mutex> lock{mutex_};
    unit_retired_.wait(lock, [this] { return inflight_units_ < max_inflight_units_; });
    ++inflight_units_;
    if (unit->fused) {
      ++metrics_.fused_passes;
      metrics_.coalesced_requests += unit->members.size();
    } else {
      ++metrics_.singleton_passes;
    }
  }

  const std::size_t num_pos = unit->program->num_pos();
  unit->out_words.resize(unit->total_chunks * num_pos);
  const std::size_t block =
      compiled_netlist::shard_block_chunks(unit->total_chunks, executor_.num_threads());
  const std::size_t num_blocks = unit->total_chunks == 0 ? 0 : (unit->total_chunks + block - 1) / block;

  // Completion-token execution: the dispatcher returns to its queue as soon
  // as the pass is enqueued; the worker finishing the last plane-block
  // slices results back and fires the callbacks. An empty pass (zero-wave
  // request) completes inline right here.
  std::shared_ptr<exec_unit> task_ref = unit;
  executor_.submit_group(
      num_blocks,
      [this, unit, block](std::size_t b, unsigned worker) {
        const std::size_t first = b * block;
        const std::size_t count = std::min(block, unit->total_chunks - first);
        const wave_block_view pis =
            unit->fused ? wave_block_view{unit->in_words.data(), unit->total_chunks,
                                          unit->program->num_pis(), unit->total_chunks}
                        : unit->batch.view();
        const wave_block_mut_view pos{unit->out_words.data(), unit->total_chunks,
                                      unit->program->num_pos(), unit->total_chunks};
        eval_packed_planes(*unit->program, pis.slice(first, count), pos.slice(first, count),
                           executor_.scratch(worker));
      },
      [this, task_ref](std::exception_ptr error) { finish_unit(task_ref, error); });
}

void serving_session::finish_unit(const std::shared_ptr<exec_unit>& unit,
                                  std::exception_ptr error) {
  const std::size_t num_pos = unit->program->num_pos();
  for (std::size_t m = 0; m < unit->members.size(); ++m) {
    request& req = unit->members[m];
    packed_wave_result result;
    if (!error) {
      result.num_pos = num_pos;
      result.num_waves = unit->member_waves[m];
      fill_packed_clock_metrics(result, *unit->program, unit->phases, result.num_waves);
      const std::size_t chunks = result.num_chunks();
      if (!unit->fused) {
        result.words = std::move(unit->out_words);
      } else {
        result.words.resize(chunks * num_pos);
        const std::size_t offset = unit->member_offsets[m];
        for (std::size_t p = 0; p < num_pos; ++p) {
          std::memcpy(result.words.data() + p * chunks,
                      unit->out_words.data() + p * unit->total_chunks + offset,
                      chunks * sizeof(std::uint64_t));
        }
      }
      detail::mask_result_tail(result);
    }
    // Callbacks fire before the members retire from active_, so a drain()
    // racing a callback's follow-up submit never observes a false idle.
    // serving.callback.drop: the completion callback is silently lost —
    // the failure mode the server's watchdog exists to recover from.
    const bool drop = WAVEMIG_FAULT_HIT("serving.callback.drop").fired;
    try {
      if (req.done && !drop) {
        req.done(std::move(result), error);
      }
    } catch (...) {
    }
    req = request{};
  }

  const std::size_t retired = unit->members.size();
  const bool failed = error != nullptr;
  // Final accounting, with every notify under the lock: once a waiter
  // (drain/close) observes active_ == 0 it may destroy the session, and it
  // can only observe that after this unlock completes — nothing here
  // touches `this` afterwards.
  std::lock_guard<std::mutex> lock{mutex_};
  if (failed) {
    metrics_.requests_failed += retired;
  } else {
    metrics_.requests_completed += retired;
  }
  --inflight_units_;
  unit_retired_.notify_one();
  active_ -= retired;
  if (active_ == 0 && queue_.empty()) {
    idle_.notify_all();
  }
}

// ------------------------------------------------------------ control ---

void serving_session::set_admission_limit(std::size_t max_pending) {
  std::lock_guard<std::mutex> lock{mutex_};
  admission_limit_ = max_pending;
}

std::size_t serving_session::admission_limit() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return admission_limit_;
}

void serving_session::set_shed_policy(shed_policy policy) {
  std::lock_guard<std::mutex> lock{mutex_};
  shed_policy_ = policy;
}

shed_policy serving_session::get_shed_policy() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return shed_policy_;
}

void serving_session::drain() {
  std::unique_lock<std::mutex> lock{mutex_};
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void serving_session::close() {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    closed_ = true;
  }
  queue_ready_.notify_all();
  drain();
  // close_mutex_ serializes concurrent closers: the first joins, every
  // later one (including a destructor racing it) blocks here until the
  // join completed, so no caller ever returns while a dispatcher thread
  // can still touch the session. mutex_ is not held — the dispatchers
  // need it to finish their last iteration.
  std::lock_guard<std::mutex> close_lock{close_mutex_};
  for (auto& dispatcher : dispatchers_) {
    dispatcher.join();
  }
  dispatchers_.clear();
}

std::size_t serving_session::pending() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return queue_.size() + active_;
}

serving_metrics serving_session::metrics() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return metrics_;
}

std::vector<double> serving_session::take_queue_wait_samples() {
  std::lock_guard<std::mutex> lock{mutex_};
  return std::exchange(queue_wait_samples_, {});
}

}  // namespace wavemig::engine
