// NEON instance of the multi-word packed kernel, the arm64 counterpart of
// kernel_avx2.cpp (see the WAVEMIG_ENABLE_NEON option in CMakeLists.txt).
// NEON/ASIMD is part of the AArch64 baseline, so no special compile flags
// are needed; the dispatch still goes through detail::neon_supported() to
// mirror the AVX2 translation unit's shape. When the option is off this
// unit compiles to nothing and the portable kernels serve every width.

#if defined(WAVEMIG_HAVE_NEON)

#include <arm_neon.h>

#include "packed_kernel.hpp"

namespace wavemig::engine::detail {

bool neon_supported() {
  return true;  // ASIMD is mandatory in the AArch64 baseline ISA
}

namespace {

/// Majority over three 128-bit lanes: (a & (b | c)) | (b & c).
inline uint64x2_t maj128(uint64x2_t a, uint64x2_t b, uint64x2_t c) {
  return vorrq_u64(vandq_u64(a, vorrq_u64(b, c)), vandq_u64(b, c));
}

inline uint64x2_t load_xor(const std::uint64_t* p, uint64x2_t mask) {
  return veorq_u64(vld1q_u64(p), mask);
}

}  // namespace

void eval_ops_neon_w4(const compiled_netlist::maj_op* ops, std::size_t num_ops,
                      std::uint64_t* slots) {
  for (std::size_t i = 0; i < num_ops; ++i) {
    const auto& o = ops[i];
    const std::uint64_t* pa = slots + static_cast<std::size_t>(o.a >> 1) * 4;
    const std::uint64_t* pb = slots + static_cast<std::size_t>(o.b >> 1) * 4;
    const std::uint64_t* pc = slots + static_cast<std::size_t>(o.c >> 1) * 4;
    std::uint64_t* pt = slots + static_cast<std::size_t>(o.target) * 4;
    const uint64x2_t ma = vdupq_n_u64(complement_mask(o.a));
    const uint64x2_t mb = vdupq_n_u64(complement_mask(o.b));
    const uint64x2_t mc = vdupq_n_u64(complement_mask(o.c));
    const uint64x2_t lo = maj128(load_xor(pa, ma), load_xor(pb, mb), load_xor(pc, mc));
    const uint64x2_t hi =
        maj128(load_xor(pa + 2, ma), load_xor(pb + 2, mb), load_xor(pc + 2, mc));
    vst1q_u64(pt, lo);
    vst1q_u64(pt + 2, hi);
  }
}

void eval_ops_neon_w8(const compiled_netlist::maj_op* ops, std::size_t num_ops,
                      std::uint64_t* slots) {
  for (std::size_t i = 0; i < num_ops; ++i) {
    const auto& o = ops[i];
    const std::uint64_t* pa = slots + static_cast<std::size_t>(o.a >> 1) * 8;
    const std::uint64_t* pb = slots + static_cast<std::size_t>(o.b >> 1) * 8;
    const std::uint64_t* pc = slots + static_cast<std::size_t>(o.c >> 1) * 8;
    std::uint64_t* pt = slots + static_cast<std::size_t>(o.target) * 8;
    const uint64x2_t ma = vdupq_n_u64(complement_mask(o.a));
    const uint64x2_t mb = vdupq_n_u64(complement_mask(o.b));
    const uint64x2_t mc = vdupq_n_u64(complement_mask(o.c));
    for (std::size_t j = 0; j < 8; j += 2) {
      vst1q_u64(pt + j, maj128(load_xor(pa + j, ma), load_xor(pb + j, mb),
                               load_xor(pc + j, mc)));
    }
  }
}

}  // namespace wavemig::engine::detail

#endif  // WAVEMIG_HAVE_NEON
