// AVX2 instance of the multi-word packed kernel. This translation unit is
// the only one compiled with -mavx2 (see the WAVEMIG_ENABLE_AVX2 option in
// CMakeLists.txt); callers go through detail::avx2_supported() so the
// library still runs on CPUs without AVX2. When the option is off the unit
// compiles to nothing and the portable kernels serve every width.

#if defined(WAVEMIG_HAVE_AVX2)

#include <immintrin.h>

#include "packed_kernel.hpp"

namespace wavemig::engine::detail {

bool avx2_supported() {
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
}

namespace {

/// Majority over three 256-bit lanes: (a & (b | c)) | (b & c).
inline __m256i maj256(__m256i a, __m256i b, __m256i c) {
  return _mm256_or_si256(_mm256_and_si256(a, _mm256_or_si256(b, c)),
                         _mm256_and_si256(b, c));
}

inline __m256i load_xor(const std::uint64_t* p, __m256i mask) {
  return _mm256_xor_si256(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)), mask);
}

}  // namespace

void eval_ops_avx2_w4(const compiled_netlist::maj_op* ops, std::size_t num_ops,
                      std::uint64_t* slots) {
  for (std::size_t i = 0; i < num_ops; ++i) {
    const auto& o = ops[i];
    const __m256i a = load_xor(slots + static_cast<std::size_t>(o.a >> 1) * 4,
                               _mm256_set1_epi64x(static_cast<long long>(complement_mask(o.a))));
    const __m256i b = load_xor(slots + static_cast<std::size_t>(o.b >> 1) * 4,
                               _mm256_set1_epi64x(static_cast<long long>(complement_mask(o.b))));
    const __m256i c = load_xor(slots + static_cast<std::size_t>(o.c >> 1) * 4,
                               _mm256_set1_epi64x(static_cast<long long>(complement_mask(o.c))));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(slots + static_cast<std::size_t>(o.target) * 4),
        maj256(a, b, c));
  }
}

void eval_ops_avx2_w8(const compiled_netlist::maj_op* ops, std::size_t num_ops,
                      std::uint64_t* slots) {
  for (std::size_t i = 0; i < num_ops; ++i) {
    const auto& o = ops[i];
    const std::uint64_t* pa = slots + static_cast<std::size_t>(o.a >> 1) * 8;
    const std::uint64_t* pb = slots + static_cast<std::size_t>(o.b >> 1) * 8;
    const std::uint64_t* pc = slots + static_cast<std::size_t>(o.c >> 1) * 8;
    std::uint64_t* pt = slots + static_cast<std::size_t>(o.target) * 8;
    const __m256i ma = _mm256_set1_epi64x(static_cast<long long>(complement_mask(o.a)));
    const __m256i mb = _mm256_set1_epi64x(static_cast<long long>(complement_mask(o.b)));
    const __m256i mc = _mm256_set1_epi64x(static_cast<long long>(complement_mask(o.c)));
    const __m256i lo = maj256(load_xor(pa, ma), load_xor(pb, mb), load_xor(pc, mc));
    const __m256i hi =
        maj256(load_xor(pa + 4, ma), load_xor(pb + 4, mb), load_xor(pc + 4, mc));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(pt), lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(pt + 4), hi);
  }
}

}  // namespace wavemig::engine::detail

#endif  // WAVEMIG_HAVE_AVX2
