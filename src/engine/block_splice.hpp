#pragma once

// Internal helpers shared by the packed front-ends (wave_engine.cpp,
// parallel_executor.cpp) for assembling and finishing plane-major results.
// Not installed; nothing outside src/engine includes this.

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "wavemig/engine/wave_engine.hpp"

namespace wavemig::engine::detail {

/// Copies `n` words, sized for the per-plane copies of the packed layouts:
/// short copies (a handful of chunk words — the shape of every block splice
/// and of wide-PI/few-wave appends) use a plain loop, because a
/// runtime-sized memcpy call costs more than the copy itself (measured in
/// PR 5 on exactly this pattern); long copies keep memcpy's bulk path.
inline void copy_words_small(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  if (n <= 2 * compiled_netlist::max_block_chunks) {
    for (std::size_t j = 0; j < n; ++j) {
      dst[j] = src[j];
    }
  } else {
    std::memcpy(dst, src, n * sizeof(std::uint64_t));
  }
}

/// Splices one plane-major block (`block_chunks` chunks, plane stride ==
/// its own chunk count) into a plane-major destination of stride
/// `dst_stride` at chunk offset `chunk_offset` — the assembly step of the
/// streaming front-ends. One contiguous chunk-word copy per plane
/// (block_chunks is at most max_block_chunks everywhere, so the copy takes
/// copy_words_small's loop path).
inline void splice_block_planes(const std::uint64_t* src, std::size_t block_chunks,
                                std::uint64_t* dst, std::size_t dst_stride,
                                std::size_t chunk_offset, std::size_t num_planes) {
  for (std::size_t p = 0; p < num_planes; ++p) {
    copy_words_small(dst + p * dst_stride + chunk_offset, src + p * block_chunks, block_chunks);
  }
}

/// I/O-tiled word transpose from plane-major (plane s's chunk words at
/// `src + s * src_stride`) to chunk-major (`dst[c * num_signals + s]`).
/// Square word tiles sized to the kernel block (8 x 8 = one cache line per
/// row on either side) keep both the source plane lines and the destination
/// chunk rows resident across the tile: the naive plane-outer walk touches
/// every destination chunk row once per *plane*, which on very-wide-PI /
/// many-PO circuits re-fetches the whole destination `num_signals` times.
inline void transpose_planes_to_chunk_major(const std::uint64_t* src, std::size_t src_stride,
                                            std::size_t num_signals, std::size_t num_chunks,
                                            std::uint64_t* dst) {
  constexpr std::size_t tile = compiled_netlist::max_block_chunks;
  for (std::size_t s0 = 0; s0 < num_signals; s0 += tile) {
    const std::size_t s1 = std::min(num_signals, s0 + tile);
    for (std::size_t c0 = 0; c0 < num_chunks; c0 += tile) {
      const std::size_t c1 = std::min(num_chunks, c0 + tile);
      for (std::size_t c = c0; c < c1; ++c) {
        for (std::size_t s = s0; s < s1; ++s) {
          dst[c * num_signals + s] = src[s * src_stride + c];
        }
      }
    }
  }
}

/// Zeroes the bits above `num_waves` in each plane's last chunk of a
/// finished result. The kernel computes tail lanes like any other lane
/// (deterministically, from the batch's zeroed tail inputs — complemented
/// outputs make them 1), so every front-end masks once at assembly to
/// uphold the containers' tail-zero invariant.
inline void mask_result_tail(packed_wave_result& result) {
  const std::size_t tail = result.num_waves % 64;
  if (tail == 0 || result.words.empty()) {
    return;
  }
  const std::uint64_t mask = (std::uint64_t{1} << tail) - 1;
  const std::size_t chunks = result.num_chunks();
  for (std::size_t p = 0; p < result.num_pos; ++p) {
    result.words[p * chunks + chunks - 1] &= mask;
  }
}

}  // namespace wavemig::engine::detail
