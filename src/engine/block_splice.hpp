#pragma once

// Internal helpers shared by the packed front-ends (wave_engine.cpp,
// parallel_executor.cpp) for assembling and finishing plane-major results.
// Not installed; nothing outside src/engine includes this.

#include <cstdint>
#include <cstring>

#include "wavemig/engine/wave_engine.hpp"

namespace wavemig::engine::detail {

/// Splices one plane-major block (`block_chunks` chunks, plane stride ==
/// its own chunk count) into a plane-major destination of stride
/// `dst_stride` at chunk offset `chunk_offset` — the assembly step of the
/// streaming front-ends. One contiguous chunk-word copy per plane.
inline void splice_block_planes(const std::uint64_t* src, std::size_t block_chunks,
                                std::uint64_t* dst, std::size_t dst_stride,
                                std::size_t chunk_offset, std::size_t num_planes) {
  for (std::size_t p = 0; p < num_planes; ++p) {
    std::memcpy(dst + p * dst_stride + chunk_offset, src + p * block_chunks,
                block_chunks * sizeof(std::uint64_t));
  }
}

/// Zeroes the bits above `num_waves` in each plane's last chunk of a
/// finished result. The kernel computes tail lanes like any other lane
/// (deterministically, from the batch's zeroed tail inputs — complemented
/// outputs make them 1), so every front-end masks once at assembly to
/// uphold the containers' tail-zero invariant.
inline void mask_result_tail(packed_wave_result& result) {
  const std::size_t tail = result.num_waves % 64;
  if (tail == 0 || result.words.empty()) {
    return;
  }
  const std::uint64_t mask = (std::uint64_t{1} << tail) - 1;
  const std::size_t chunks = result.num_chunks();
  for (std::size_t p = 0; p < result.num_pos; ++p) {
    result.words[p * chunks + chunks - 1] &= mask;
  }
}

}  // namespace wavemig::engine::detail
