#include "wavemig/engine/wave_engine.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "block_splice.hpp"

namespace wavemig::engine {

namespace {

/// Clocking metadata shared by the cycle-accurate and packed paths; the
/// formulas mirror the sampling schedule of the tick simulator exactly.
/// Even a depth-0 (PI-to-PO) network carries one wave at a time, matching
/// the latency_ticks fallback below.
template <typename Result>
void fill_clock_metrics(Result& result, const compiled_netlist& net, unsigned phases,
                        std::size_t num_waves) {
  const std::uint32_t depth = net.depth();
  // FDM scenarios (compile_options::fdm_lanes > 1) carry several logical
  // waves per physical conduit slot: wave w occupies slot w / lanes, and
  // every physical wave in flight holds `lanes` logical ones. Metadata only
  // — computed words are lane-independent.
  const unsigned lanes = std::max(1u, net.options().fdm_lanes);
  result.initiation_interval = phases;
  result.latency_ticks = depth > 0 ? depth : 1;
  result.waves_in_flight = std::max<std::uint32_t>(1, (depth + phases - 1) / phases) * lanes;
  if (num_waves == 0) {
    result.ticks = 0;
    return;
  }
  std::uint64_t last_tick = 0;
  const std::uint64_t last_wave = (num_waves - 1) / lanes;
  for (std::size_t p = 0; p < net.num_pos(); ++p) {
    if (net.po_constant()[p]) {
      continue;
    }
    const std::uint32_t lvl = net.po_levels()[p];
    last_tick = std::max(last_tick, last_wave * phases + (lvl > 0 ? lvl - 1 : 0));
  }
  result.ticks = last_tick + 1;
}

/// Splices one masked 64-wave word into a plane at wave offset
/// `base_wave` (the shared primitive of both bulk-append layouts): a low
/// part into the partially filled chunk and, when the splice crosses a
/// word boundary, a high part carried into the next one — two shifts,
/// never per-bit. `total_chunks` bounds the carry store; when the carried
/// bits would land past the final chunk they are provably zero
/// (offset + valid wave bits <= 64), so the store is skipped.
inline void splice_word(std::uint64_t* plane, std::uint64_t word, std::size_t base_wave,
                        std::size_t total_chunks) {
  const std::size_t offset = base_wave % 64;
  const std::size_t lo_chunk = base_wave / 64;
  plane[lo_chunk] |= word << offset;
  if (offset != 0 && lo_chunk + 1 < total_chunks) {
    plane[lo_chunk + 1] |= word >> (64 - offset);
  }
}

}  // namespace

void validate_packed_run(const compiled_netlist& net, std::size_t batch_pis, unsigned phases,
                         const char* who) {
  if (phases == 0) {
    throw std::invalid_argument{std::string{who} + ": at least one clock phase required"};
  }
  if (batch_pis != net.num_pis()) {
    throw std::invalid_argument{std::string{who} +
                                ": each wave needs one value per primary input"};
  }
  if (!net.wave_coherent(phases)) {
    throw std::invalid_argument{
        std::string{who} + ": netlist is not wave-coherent under " + std::to_string(phases) +
        " phases (edge spans " + std::to_string(net.min_edge_span()) + ".." +
        std::to_string(net.max_edge_span()) +
        " must lie in [1, phases]); balance it with insert_buffers or use the "
        "cycle-accurate run_waves"};
  }
}

void fill_packed_clock_metrics(packed_wave_result& result, const compiled_netlist& net,
                               unsigned phases, std::size_t num_waves) {
  fill_clock_metrics(result, net, phases, num_waves);
}

void eval_packed_planes(const compiled_netlist& net, const wave_block_view& pis,
                        const wave_block_mut_view& pos, std::vector<std::uint64_t>& scratch) {
  if (pis.num_signals != net.num_pis() || pos.num_signals != net.num_pos() ||
      pis.num_chunks != pos.num_chunks) {
    throw std::invalid_argument{
        "eval_packed_planes: view shapes must match the netlist (PI/PO planes) and each "
        "other (chunk count)"};
  }
  // A stride below the chunk count would silently overlap adjacent planes —
  // the one shape error that corrupts output instead of reading wrong data.
  if ((pis.num_signals != 0 && pis.plane_stride < pis.num_chunks) ||
      (pos.num_signals != 0 && pos.plane_stride < pos.num_chunks)) {
    throw std::invalid_argument{
        "eval_packed_planes: plane stride must be at least the chunk count"};
  }
  net.eval_planes_block(pis.planes, pis.plane_stride, pos.planes, pos.plane_stride,
                        pis.num_chunks, scratch);
}

void eval_packed_chunk(const compiled_netlist& net, const std::uint64_t* chunk_words,
                       std::uint64_t* out_words, std::vector<std::uint64_t>& scratch) {
  net.eval_words_into(chunk_words, out_words, scratch);
}

void eval_packed_block(const compiled_netlist& net, const std::uint64_t* chunk_words,
                       std::uint64_t* out_words, std::size_t num_chunks,
                       std::vector<std::uint64_t>& scratch) {
  net.eval_words_block(chunk_words, out_words, num_chunks, scratch);
}

// --------------------------------------------------------- wave_batch ---

void wave_batch::ensure_chunk_capacity(std::size_t chunks) {
  if (chunks <= chunk_capacity_) {
    return;
  }
  // Geometric growth keeps per-wave append amortized O(1) even though a
  // re-stride moves every plane.
  const std::size_t new_capacity = std::max(chunks, 2 * chunk_capacity_);
  std::vector<std::uint64_t> grown(num_pis_ * new_capacity, 0);
  if (const std::size_t used = num_chunks(); used != 0) {
    for (std::size_t i = 0; i < num_pis_; ++i) {
      std::memcpy(grown.data() + i * new_capacity, words_.data() + i * chunk_capacity_,
                  used * sizeof(std::uint64_t));
    }
  }
  words_.swap(grown);
  chunk_capacity_ = new_capacity;
}

void wave_batch::clear() {
  // Zero only the words that carried waves — spare capacity is zero by
  // invariant — so the storage is immediately reusable.
  if (const std::size_t used = num_chunks(); used != 0) {
    for (std::size_t i = 0; i < num_pis_; ++i) {
      std::memset(words_.data() + i * chunk_capacity_, 0, used * sizeof(std::uint64_t));
    }
  }
  num_waves_ = 0;
}

void wave_batch::append(const std::vector<bool>& wave) {
  if (wave.size() != num_pis_) {
    throw std::invalid_argument{"wave_batch: each wave needs one value per primary input"};
  }
  const std::size_t bit = num_waves_ % 64;
  if (bit == 0) {
    ensure_chunk_capacity(num_waves_ / 64 + 1);
  }
  const std::size_t chunk = num_waves_ / 64;
  std::uint64_t* words = words_.data() + chunk;
  for (std::size_t i = 0; i < num_pis_; ++i, words += chunk_capacity_) {
    *words |= static_cast<std::uint64_t>(wave[i]) << bit;
  }
  ++num_waves_;
}

void wave_batch::append_words(const std::uint64_t* words, std::size_t num_waves) {
  if (num_waves == 0) {
    return;
  }
  const std::size_t in_chunks = (num_waves + 63) / 64;
  const std::size_t total = num_waves_ + num_waves;
  const std::size_t total_chunks = (total + 63) / 64;
  ensure_chunk_capacity(total_chunks);

  // Each incoming chunk-major word is masked to its valid waves and spliced
  // into its plane. The aligned case (offset 0) degenerates to `lo |= w`
  // into zeroed words. I/O-tiled iteration — chunk tiles outer, planes mid,
  // chunks inner — keeps each destination plane line resident for a whole
  // tile of splices: the old chunk-outer walk cycled through all num_pis
  // plane lines per chunk, which on very-wide-PI batches re-fetched every
  // line once per chunk.
  const std::size_t tail = num_waves % 64;
  const std::uint64_t tail_mask = tail == 0 ? ~std::uint64_t{0}
                                            : (std::uint64_t{1} << tail) - 1;
  constexpr std::size_t tile = compiled_netlist::max_block_chunks;
  for (std::size_t c0 = 0; c0 < in_chunks; c0 += tile) {
    const std::size_t c1 = std::min(in_chunks, c0 + tile);
    for (std::size_t i = 0; i < num_pis_; ++i) {
      std::uint64_t* plane = words_.data() + i * chunk_capacity_;
      for (std::size_t c = c0; c < c1; ++c) {
        const std::uint64_t in = words[c * num_pis_ + i];
        splice_word(plane, c + 1 == in_chunks ? in & tail_mask : in, num_waves_ + c * 64,
                    total_chunks);
      }
    }
  }
  num_waves_ = total;
}

void wave_batch::append_planes(const std::uint64_t* planes, std::size_t plane_stride,
                               std::size_t num_waves) {
  if (num_waves == 0) {
    return;
  }
  const std::size_t in_chunks = (num_waves + 63) / 64;
  const std::size_t offset = num_waves_ % 64;
  const std::size_t total = num_waves_ + num_waves;
  const std::size_t total_chunks = (total + 63) / 64;
  ensure_chunk_capacity(total_chunks);

  const std::size_t tail = num_waves % 64;
  const std::uint64_t tail_mask = tail == 0 ? ~std::uint64_t{0}
                                            : (std::uint64_t{1} << tail) - 1;
  if (offset == 0) {
    // Aligned: one contiguous copy per plane, then mask the incoming tail.
    // copy_words_small because wide-PI appends put only a few chunk words
    // in each of very many planes — the worst case for per-plane memcpy
    // call overhead.
    for (std::size_t i = 0; i < num_pis_; ++i) {
      std::uint64_t* dst = words_.data() + i * chunk_capacity_ + num_waves_ / 64;
      detail::copy_words_small(dst, planes + i * plane_stride, in_chunks);
      dst[in_chunks - 1] &= tail_mask;
    }
  } else {
    // Plane-outer iteration keeps the plane-major source sequential.
    for (std::size_t i = 0; i < num_pis_; ++i) {
      const std::uint64_t* src = planes + i * plane_stride;
      std::uint64_t* plane = words_.data() + i * chunk_capacity_;
      for (std::size_t c = 0; c < in_chunks; ++c) {
        splice_word(plane, c + 1 == in_chunks ? src[c] & tail_mask : src[c],
                    num_waves_ + c * 64, total_chunks);
      }
    }
  }
  num_waves_ = total;
}

wave_batch wave_batch::from_plane_words(std::vector<std::uint64_t> words, std::size_t num_pis,
                                        std::size_t num_waves, tail_bits tail) {
  // Overflow-proof shape check: (num_waves + 63) could wrap for a hostile
  // num_waves near SIZE_MAX, and chunks * num_pis could wrap right back
  // onto the attacker's buffer size. Divide instead of multiplying: the
  // buffer decides how many chunks per plane there are, and num_waves must
  // agree with that count exactly.
  const std::size_t chunks = num_waves / 64 + (num_waves % 64 != 0 ? 1 : 0);
  const bool size_matches = num_pis == 0
                                ? words.size() == 0
                                : words.size() % num_pis == 0 && words.size() / num_pis == chunks;
  if (!size_matches) {
    throw std::invalid_argument{
        "wave_batch: plane words must hold ceil(num_waves / 64) chunks per primary input"};
  }
  wave_batch batch{num_pis};
  batch.words_ = std::move(words);
  batch.chunk_capacity_ = chunks;
  batch.num_waves_ = num_waves;
  // Restore the tail invariant: the adopted buffer may carry stray bits
  // above num_waves in each plane's last chunk. Under `reject` they are a
  // shape error (an untrusted producer mis-declared its wave count).
  if (const std::size_t live = num_waves % 64; live != 0) {
    const std::uint64_t mask = (std::uint64_t{1} << live) - 1;
    for (std::size_t i = 0; i < num_pis; ++i) {
      std::uint64_t& last = batch.words_[i * chunks + chunks - 1];
      if (tail == tail_bits::reject && (last & ~mask) != 0) {
        throw std::invalid_argument{
            "wave_batch: stray bits above num_waves in a plane's last chunk"};
      }
      last &= mask;
    }
  }
  return batch;
}

std::vector<std::uint64_t> wave_batch::chunk_major_words() const {
  const std::size_t chunks = num_chunks();
  std::vector<std::uint64_t> out(chunks * num_pis_);
  detail::transpose_planes_to_chunk_major(words_.data(), chunk_capacity_, num_pis_, chunks,
                                          out.data());
  return out;
}

wave_batch wave_batch::from_waves(const std::vector<std::vector<bool>>& waves,
                                  std::size_t num_pis) {
  wave_batch batch{num_pis};
  batch.reserve(waves.size());
  for (const auto& wave : waves) {
    batch.append(wave);
  }
  return batch;
}

// -------------------------------------------------- packed_wave_result ---

std::vector<std::uint64_t> packed_wave_result::chunk_major_words() const {
  const std::size_t chunks = num_chunks();
  std::vector<std::uint64_t> out(chunks * num_pos);
  detail::transpose_planes_to_chunk_major(words.data(), chunks, num_pos, chunks, out.data());
  return out;
}

std::vector<std::vector<bool>> packed_wave_result::unpack() const {
  std::vector<std::vector<bool>> out(num_waves, std::vector<bool>(num_pos, false));
  // Word-at-a-time transpose: load each packed word once and fan its lanes
  // out, instead of recomputing chunk/bit indices per (wave, output) pair.
  const std::size_t chunks = num_chunks();
  for (std::size_t p = 0; p < num_pos; ++p) {
    const std::uint64_t* po_plane = words.data() + p * chunks;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lanes = std::min<std::size_t>(64, num_waves - c * 64);
      std::uint64_t word = po_plane[c];
      for (std::size_t b = 0; b < lanes; ++b, word >>= 1) {
        if ((word & 1u) != 0) {
          out[c * 64 + b][p] = true;
        }
      }
    }
  }
  return out;
}

// --------------------------------------------------------- scalar path ---

wave_run_result run_waves(const compiled_netlist& net,
                          const std::vector<std::vector<bool>>& waves, unsigned phases) {
  if (phases == 0) {
    throw std::invalid_argument{"run_waves: at least one clock phase required"};
  }
  for (const auto& wave : waves) {
    if (wave.size() != net.num_pis()) {
      throw std::invalid_argument{"run_waves: each wave needs one value per primary input"};
    }
  }

  wave_run_result result;
  fill_clock_metrics(result, net, phases, waves.size());
  result.outputs.assign(waves.size(), std::vector<bool>(net.num_pos(), false));
  if (waves.empty()) {
    return result;
  }
  // The tick simulator models a single physical lane: every wave occupies
  // its own initiation slot regardless of the program's FDM tag, so the
  // simulated tick span is computed lane-agnostically. result.ticks carries
  // the (possibly FDM-compressed) clock metadata and must not bound the
  // simulation loop — that would drop waves past the first physical slot.
  std::uint64_t last_tick = 0;
  const std::uint64_t final_wave = waves.size() - 1;
  for (std::uint32_t p = 0; p < net.num_pos(); ++p) {
    if (net.po_constant()[p]) {
      continue;
    }
    const std::uint32_t lvl = net.po_levels()[p];
    last_tick = std::max(last_tick, final_wave * phases + (lvl > 0 ? lvl - 1 : 0));
  }

  // Per-clock-phase firing lists, resolved once instead of per tick. Ops in
  // a list are ordered by decreasing level so the in-place update below
  // preserves synchronous (pre-tick snapshot) semantics: every data edge
  // spans >= 1 level, hence a consumer always updates before its producer
  // within the same tick. Only min(phases, max level) buckets can be
  // non-empty, so allocation stays bounded by the netlist, not by `phases`.
  const auto& ops = net.tick_ops();
  std::uint32_t max_level = 0;
  for (const auto& o : ops) {
    max_level = std::max(max_level, o.level);
  }
  const std::size_t num_buckets = std::min<std::uint64_t>(phases, max_level);
  std::vector<std::vector<std::uint32_t>> phase_ops(num_buckets);
  for (std::uint32_t i = 0; i < ops.size(); ++i) {
    if (ops[i].level == 0) {
      continue;  // unscheduled component: never fires (matches interpreter)
    }
    phase_ops[(ops[i].level - 1) % phases].push_back(i);
  }
  for (auto& list : phase_ops) {
    std::stable_sort(list.begin(), list.end(), [&](std::uint32_t a, std::uint32_t b) {
      return ops[a].level > ops[b].level;
    });
  }
  // A custom schedule may contain non-advancing edges; fall back to a full
  // pre-tick snapshot in that case to keep the semantics exact.
  const bool in_place = net.min_edge_span() >= 1;

  // Per-tick PO sampling schedule, resolved once: output p (driver level
  // lvl) samples wave w at tick w * phases + start with start = lvl - 1, so
  // only the outputs whose start is congruent to t modulo `phases` can
  // sample at tick t. Bucketing them by that residue turns the former
  // every-tick rescan of all POs into O(actual samples) work.
  struct po_sample {
    std::uint32_t po;
    std::uint64_t start;
    slot_ref ref;
  };
  // Like phase_ops above, allocation is bounded by the netlist, not by
  // `phases`: only residues up to the largest sampling start can be
  // occupied, so ticks beyond the bucket count simply sample nothing.
  std::uint64_t max_start = 0;
  for (std::uint32_t p = 0; p < net.num_pos(); ++p) {
    const std::uint32_t lvl = net.po_levels()[p];
    max_start = std::max<std::uint64_t>(max_start, lvl > 0 ? lvl - 1 : 0);
  }
  std::vector<std::vector<po_sample>> sample_buckets(
      static_cast<std::size_t>(std::min<std::uint64_t>(phases, max_start + 1)));
  for (std::uint32_t p = 0; p < net.num_pos(); ++p) {
    if (net.po_constant()[p]) {
      continue;
    }
    const std::uint32_t lvl = net.po_levels()[p];
    const std::uint64_t start = lvl > 0 ? lvl - 1 : 0;
    sample_buckets[start % phases].push_back({p, start, net.po_refs()[p]});
  }

  std::vector<std::uint8_t> value(net.tick_slot_count(), 0);
  std::vector<std::uint8_t> snapshot;

  const auto read = [](const std::vector<std::uint8_t>& state, slot_ref ref) -> std::uint8_t {
    return state[ref >> 1] ^ static_cast<std::uint8_t>(ref & 1u);
  };
  const auto apply = [&](const compiled_netlist::tick_op& o,
                         const std::vector<std::uint8_t>& state) {
    if (o.kind == compiled_netlist::tick_kind::majority) {
      const std::uint8_t a = read(state, o.a);
      const std::uint8_t b = read(state, o.b);
      const std::uint8_t c = read(state, o.c);
      value[o.target] = static_cast<std::uint8_t>((a & b) | (b & c) | (a & c));
    } else {
      value[o.target] = read(state, o.a);
    }
  };

  for (std::uint64_t t = 0; t <= last_tick; ++t) {
    // Present the input wave for this initiation slot (inputs hold their
    // value between injections).
    const std::uint64_t wave = t / phases;
    if (t % phases == 0 && wave < waves.size()) {
      for (std::size_t i = 0; i < net.num_pis(); ++i) {
        value[net.pi_slots()[i]] = static_cast<std::uint8_t>(waves[wave][i]);
      }
    }

    if (const std::size_t bucket = t % phases; bucket < num_buckets) {
      const auto& fired = phase_ops[bucket];
      if (in_place) {
        for (const std::uint32_t i : fired) {
          apply(ops[i], value);
        }
      } else {
        snapshot = value;
        for (const std::uint32_t i : fired) {
          apply(ops[i], snapshot);
        }
      }
    }

    // Sample every output whose driver just latched its wave: exactly the
    // bucket of this tick's residue (start ≡ t mod phases there, so
    // t >= start already implies t lands on a sampling tick).
    if (const std::size_t residue = t % phases; residue < sample_buckets.size()) {
      for (const auto& s : sample_buckets[residue]) {
        if (t < s.start) {
          continue;  // before the first wave can arrive
        }
        const std::uint64_t w = (t - s.start) / phases;
        if (w < waves.size()) {
          result.outputs[w][s.po] = read(value, s.ref) != 0;
        }
      }
    }
  }

  // Constant-driven outputs are the same for every wave.
  for (std::size_t p = 0; p < net.num_pos(); ++p) {
    if (!net.po_constant()[p]) {
      continue;
    }
    const bool v = (net.po_refs()[p] & 1u) != 0;
    for (auto& out : result.outputs) {
      out[p] = v;
    }
  }

  return result;
}

// --------------------------------------------------------- packed path ---

packed_wave_result run_waves_packed(const compiled_netlist& net, const wave_batch& waves,
                                    unsigned phases) {
  validate_packed_run(net, waves.num_pis(), phases, "run_waves_packed");

  packed_wave_result result;
  result.num_pos = net.num_pos();
  result.num_waves = waves.num_waves();
  fill_clock_metrics(result, net, phases, waves.num_waves());
  result.words.resize(waves.num_chunks() * net.num_pos());

  // Plane-major on both sides: the whole run is one multi-word block
  // evaluation (internally split into word-blocks of
  // compiled_netlist::max_block_chunks) with unit-stride PI/PO word I/O.
  std::vector<std::uint64_t> scratch;
  eval_packed_planes(net, waves.view(),
                     {result.words.data(), waves.num_chunks(), net.num_pos(),
                      waves.num_chunks()},
                     scratch);
  detail::mask_result_tail(result);
  return result;
}

wave_stream::wave_stream(const compiled_netlist& net, unsigned phases,
                         std::size_t expected_waves)
    : net_{net}, phases_{phases}, expected_waves_{expected_waves}, pending_{net.num_pis()} {
  validate_packed_run(net, net.num_pis(), phases, "wave_stream");
  pending_.reserve(block_waves);
}

void wave_stream::push(const std::vector<bool>& wave) {
  pending_.append(wave);  // validates the width
  ++pushed_;
  if (pending_.num_waves() == block_waves) {
    flush_pending();
  }
}

void wave_stream::ensure_direct_capacity(std::size_t needed_chunks) {
  if (direct_stride_ >= needed_chunks) {
    return;
  }
  // The hint sizes the first allocation exactly; a stream that outgrows it
  // re-strides geometrically (the graceful-undershoot fallback).
  std::size_t new_stride = std::max(needed_chunks, (expected_waves_ + 63) / 64);
  if (direct_stride_ != 0) {
    new_stride = std::max(needed_chunks, 2 * direct_stride_);
  }
  std::vector<std::uint64_t> grown(new_stride * net_.num_pos(), 0);
  if (flushed_chunks_ != 0) {
    for (std::size_t p = 0; p < net_.num_pos(); ++p) {
      std::memcpy(grown.data() + p * new_stride, done_words_.data() + p * direct_stride_,
                  flushed_chunks_ * sizeof(std::uint64_t));
    }
  }
  done_words_.swap(grown);
  direct_stride_ = new_stride;
}

void wave_stream::flush_pending() {
  const std::size_t chunks = pending_.num_chunks();
  std::uint64_t* out;
  std::size_t out_stride;
  if (expected_waves_ != 0) {
    // Direct-write path: evaluate straight into the final full-width result
    // planes at this block's chunk offset — no finish()-time splice. Flushes
    // are chunk-aligned except possibly the last (block_waves is a multiple
    // of 64; a partial block only flushes at finish), so every block owns a
    // whole chunk range of each plane.
    ensure_direct_capacity(flushed_chunks_ + chunks);
    out = done_words_.data() + flushed_chunks_;
    out_stride = direct_stride_;
  } else {
    const std::size_t out_words = chunks * net_.num_pos();
    done_words_.resize(done_words_.size() + out_words);
    out = done_words_.data() + done_words_.size() - out_words;
    out_stride = chunks;
  }
  eval_packed_planes(net_, pending_.view(), {out, out_stride, net_.num_pos(), chunks},
                     scratch_);
  done_chunks_.push_back(chunks);
  flushed_chunks_ += chunks;
  completed_ += pending_.num_waves();
  pending_.clear();  // keeps the packed-word storage for the next block
}

packed_wave_result wave_stream::finish() {
  if (!pending_.empty()) {
    flush_pending();
  }
  packed_wave_result out;
  out.num_pos = net_.num_pos();
  out.num_waves = completed_;
  fill_clock_metrics(out, net_, phases_, completed_);
  if (expected_waves_ != 0) {
    // Direct-write path: blocks already landed at their final chunk
    // offsets. An exact hint hands the buffer over as-is; an overshot hint
    // compacts each plane down to the result stride first (ascending
    // planes — the destination never overruns the source).
    const std::size_t total_chunks = out.num_chunks();
    if (direct_stride_ > total_chunks) {
      for (std::size_t p = 0; p < out.num_pos; ++p) {
        std::memmove(done_words_.data() + p * total_chunks,
                     done_words_.data() + p * direct_stride_,
                     total_chunks * sizeof(std::uint64_t));
      }
    }
    done_words_.resize(total_chunks * out.num_pos);
    out.words = std::move(done_words_);
  } else if (done_chunks_.size() <= 1) {
    // Zero or one block: the buffer already has the result's plane stride.
    out.words = std::move(done_words_);
  } else {
    out.words.resize(out.num_chunks() * net_.num_pos());
    std::size_t chunk_offset = 0;
    std::size_t word_offset = 0;
    for (const std::size_t block_chunks : done_chunks_) {
      detail::splice_block_planes(done_words_.data() + word_offset, block_chunks,
                                  out.words.data(), out.num_chunks(), chunk_offset,
                                  net_.num_pos());
      chunk_offset += block_chunks;
      word_offset += block_chunks * net_.num_pos();
    }
  }
  detail::mask_result_tail(out);
  done_words_ = {};
  done_chunks_.clear();
  direct_stride_ = 0;
  flushed_chunks_ = 0;
  pushed_ = 0;
  completed_ = 0;
  return out;
}

}  // namespace wavemig::engine
