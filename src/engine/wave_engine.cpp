#include "wavemig/engine/wave_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace wavemig::engine {

namespace {

/// Clocking metadata shared by the cycle-accurate and packed paths; the
/// formulas mirror the sampling schedule of the tick simulator exactly.
/// Even a depth-0 (PI-to-PO) network carries one wave at a time, matching
/// the latency_ticks fallback below.
template <typename Result>
void fill_clock_metrics(Result& result, const compiled_netlist& net, unsigned phases,
                        std::size_t num_waves) {
  const std::uint32_t depth = net.depth();
  result.initiation_interval = phases;
  result.latency_ticks = depth > 0 ? depth : 1;
  result.waves_in_flight = std::max<std::uint32_t>(1, (depth + phases - 1) / phases);
  if (num_waves == 0) {
    result.ticks = 0;
    return;
  }
  std::uint64_t last_tick = 0;
  const std::uint64_t last_wave = num_waves - 1;
  for (std::size_t p = 0; p < net.num_pos(); ++p) {
    if (net.po_constant()[p]) {
      continue;
    }
    const std::uint32_t lvl = net.po_levels()[p];
    last_tick = std::max(last_tick, last_wave * phases + (lvl > 0 ? lvl - 1 : 0));
  }
  result.ticks = last_tick + 1;
}

}  // namespace

void validate_packed_run(const compiled_netlist& net, std::size_t batch_pis, unsigned phases,
                         const char* who) {
  if (phases == 0) {
    throw std::invalid_argument{std::string{who} + ": at least one clock phase required"};
  }
  if (batch_pis != net.num_pis()) {
    throw std::invalid_argument{std::string{who} +
                                ": each wave needs one value per primary input"};
  }
  if (!net.wave_coherent(phases)) {
    throw std::invalid_argument{
        std::string{who} + ": netlist is not wave-coherent under " + std::to_string(phases) +
        " phases (edge spans " + std::to_string(net.min_edge_span()) + ".." +
        std::to_string(net.max_edge_span()) +
        " must lie in [1, phases]); balance it with insert_buffers or use the "
        "cycle-accurate run_waves"};
  }
}

void fill_packed_clock_metrics(packed_wave_result& result, const compiled_netlist& net,
                               unsigned phases, std::size_t num_waves) {
  fill_clock_metrics(result, net, phases, num_waves);
}

void eval_packed_chunk(const compiled_netlist& net, const std::uint64_t* chunk_words,
                       std::uint64_t* out_words, std::vector<std::uint64_t>& scratch) {
  net.eval_words_into(chunk_words, out_words, scratch);
}

void wave_batch::append(const std::vector<bool>& wave) {
  if (wave.size() != num_pis_) {
    throw std::invalid_argument{"wave_batch: each wave needs one value per primary input"};
  }
  const std::size_t bit = num_waves_ % 64;
  if (bit == 0) {
    words_.insert(words_.end(), num_pis_, 0);
  }
  std::uint64_t* chunk = words_.data() + (num_waves_ / 64) * num_pis_;
  for (std::size_t i = 0; i < num_pis_; ++i) {
    chunk[i] |= static_cast<std::uint64_t>(wave[i]) << bit;
  }
  ++num_waves_;
}

wave_batch wave_batch::from_waves(const std::vector<std::vector<bool>>& waves,
                                  std::size_t num_pis) {
  wave_batch batch{num_pis};
  for (const auto& wave : waves) {
    batch.append(wave);
  }
  return batch;
}

std::vector<std::vector<bool>> packed_wave_result::unpack() const {
  std::vector<std::vector<bool>> out(num_waves, std::vector<bool>(num_pos, false));
  for (std::size_t w = 0; w < num_waves; ++w) {
    for (std::size_t p = 0; p < num_pos; ++p) {
      out[w][p] = output(w, p);
    }
  }
  return out;
}

wave_run_result run_waves(const compiled_netlist& net,
                          const std::vector<std::vector<bool>>& waves, unsigned phases) {
  if (phases == 0) {
    throw std::invalid_argument{"run_waves: at least one clock phase required"};
  }
  for (const auto& wave : waves) {
    if (wave.size() != net.num_pis()) {
      throw std::invalid_argument{"run_waves: each wave needs one value per primary input"};
    }
  }

  wave_run_result result;
  fill_clock_metrics(result, net, phases, waves.size());
  result.outputs.assign(waves.size(), {});
  if (waves.empty()) {
    return result;
  }
  const std::uint64_t last_tick = result.ticks - 1;

  // Per-clock-phase firing lists, resolved once instead of per tick. Ops in
  // a list are ordered by decreasing level so the in-place update below
  // preserves synchronous (pre-tick snapshot) semantics: every data edge
  // spans >= 1 level, hence a consumer always updates before its producer
  // within the same tick. Only min(phases, max level) buckets can be
  // non-empty, so allocation stays bounded by the netlist, not by `phases`.
  const auto& ops = net.tick_ops();
  std::uint32_t max_level = 0;
  for (const auto& o : ops) {
    max_level = std::max(max_level, o.level);
  }
  const std::size_t num_buckets = std::min<std::uint64_t>(phases, max_level);
  std::vector<std::vector<std::uint32_t>> phase_ops(num_buckets);
  for (std::uint32_t i = 0; i < ops.size(); ++i) {
    if (ops[i].level == 0) {
      continue;  // unscheduled component: never fires (matches interpreter)
    }
    phase_ops[(ops[i].level - 1) % phases].push_back(i);
  }
  for (auto& list : phase_ops) {
    std::stable_sort(list.begin(), list.end(), [&](std::uint32_t a, std::uint32_t b) {
      return ops[a].level > ops[b].level;
    });
  }
  // A custom schedule may contain non-advancing edges; fall back to a full
  // pre-tick snapshot in that case to keep the semantics exact.
  const bool in_place = net.min_edge_span() >= 1;

  std::vector<std::uint8_t> value(net.tick_slot_count(), 0);
  std::vector<std::uint8_t> snapshot;

  const auto read = [](const std::vector<std::uint8_t>& state, slot_ref ref) -> std::uint8_t {
    return state[ref >> 1] ^ static_cast<std::uint8_t>(ref & 1u);
  };
  const auto apply = [&](const compiled_netlist::tick_op& o,
                         const std::vector<std::uint8_t>& state) {
    if (o.kind == compiled_netlist::tick_kind::majority) {
      const std::uint8_t a = read(state, o.a);
      const std::uint8_t b = read(state, o.b);
      const std::uint8_t c = read(state, o.c);
      value[o.target] = static_cast<std::uint8_t>((a & b) | (b & c) | (a & c));
    } else {
      value[o.target] = read(state, o.a);
    }
  };

  for (std::uint64_t t = 0; t <= last_tick; ++t) {
    // Present the input wave for this initiation slot (inputs hold their
    // value between injections).
    const std::uint64_t wave = t / phases;
    if (t % phases == 0 && wave < waves.size()) {
      for (std::size_t i = 0; i < net.num_pis(); ++i) {
        value[net.pi_slots()[i]] = static_cast<std::uint8_t>(waves[wave][i]);
      }
    }

    if (const std::size_t bucket = t % phases; bucket < num_buckets) {
      const auto& fired = phase_ops[bucket];
      if (in_place) {
        for (const std::uint32_t i : fired) {
          apply(ops[i], value);
        }
      } else {
        snapshot = value;
        for (const std::uint32_t i : fired) {
          apply(ops[i], snapshot);
        }
      }
    }

    // Sample every output whose driver just latched its wave.
    for (std::size_t p = 0; p < net.num_pos(); ++p) {
      if (net.po_constant()[p]) {
        continue;
      }
      const std::uint32_t lvl = net.po_levels()[p];
      const std::uint64_t start = lvl > 0 ? lvl - 1 : 0;
      if (t < start) {
        continue;  // before the first wave can arrive
      }
      const std::uint64_t w = (t - start) / phases;
      if (w < waves.size() && t == w * phases + start) {
        auto& out = result.outputs[w];
        if (out.empty()) {
          out.assign(net.num_pos(), false);
        }
        out[p] = read(value, net.po_refs()[p]) != 0;
      }
    }
  }

  // Constant-driven outputs are the same for every wave.
  for (std::size_t p = 0; p < net.num_pos(); ++p) {
    if (!net.po_constant()[p]) {
      continue;
    }
    const bool v = (net.po_refs()[p] & 1u) != 0;
    for (auto& out : result.outputs) {
      if (out.empty()) {
        out.assign(net.num_pos(), false);
      }
      out[p] = v;
    }
  }

  return result;
}

packed_wave_result run_waves_packed(const compiled_netlist& net, const wave_batch& waves,
                                    unsigned phases) {
  validate_packed_run(net, waves.num_pis(), phases, "run_waves_packed");

  packed_wave_result result;
  result.num_pos = net.num_pos();
  result.num_waves = waves.num_waves();
  fill_clock_metrics(result, net, phases, waves.num_waves());
  result.words.resize(waves.num_chunks() * net.num_pos());

  std::vector<std::uint64_t> scratch;
  for (std::size_t c = 0; c < waves.num_chunks(); ++c) {
    eval_packed_chunk(net, waves.chunk_words(c), result.words.data() + c * net.num_pos(),
                      scratch);
  }
  return result;
}

wave_stream::wave_stream(const compiled_netlist& net, unsigned phases)
    : net_{net}, phases_{phases}, pending_{net.num_pis()} {
  validate_packed_run(net, net.num_pis(), phases, "wave_stream");
}

void wave_stream::push(const std::vector<bool>& wave) {
  pending_.append(wave);  // validates the width
  ++pushed_;
  if (pending_.num_waves() == 64) {
    flush_chunk();
  }
}

void wave_stream::flush_chunk() {
  result_.words.resize(result_.words.size() + net_.num_pos());
  eval_packed_chunk(net_, pending_.chunk_words(0),
                    result_.words.data() + result_.words.size() - net_.num_pos(), scratch_);
  completed_ += pending_.num_waves();
  pending_ = wave_batch{net_.num_pis()};
}

packed_wave_result wave_stream::finish() {
  if (!pending_.empty()) {
    flush_chunk();
  }
  result_.num_pos = net_.num_pos();
  result_.num_waves = completed_;
  fill_clock_metrics(result_, net_, phases_, completed_);
  packed_wave_result out = std::move(result_);
  result_ = {};
  pushed_ = 0;
  completed_ = 0;
  return out;
}

}  // namespace wavemig::engine
