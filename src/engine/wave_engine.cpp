#include "wavemig/engine/wave_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace wavemig::engine {

namespace {

/// Clocking metadata shared by the cycle-accurate and packed paths; the
/// formulas mirror the sampling schedule of the tick simulator exactly.
/// Even a depth-0 (PI-to-PO) network carries one wave at a time, matching
/// the latency_ticks fallback below.
template <typename Result>
void fill_clock_metrics(Result& result, const compiled_netlist& net, unsigned phases,
                        std::size_t num_waves) {
  const std::uint32_t depth = net.depth();
  result.initiation_interval = phases;
  result.latency_ticks = depth > 0 ? depth : 1;
  result.waves_in_flight = std::max<std::uint32_t>(1, (depth + phases - 1) / phases);
  if (num_waves == 0) {
    result.ticks = 0;
    return;
  }
  std::uint64_t last_tick = 0;
  const std::uint64_t last_wave = num_waves - 1;
  for (std::size_t p = 0; p < net.num_pos(); ++p) {
    if (net.po_constant()[p]) {
      continue;
    }
    const std::uint32_t lvl = net.po_levels()[p];
    last_tick = std::max(last_tick, last_wave * phases + (lvl > 0 ? lvl - 1 : 0));
  }
  result.ticks = last_tick + 1;
}

}  // namespace

void validate_packed_run(const compiled_netlist& net, std::size_t batch_pis, unsigned phases,
                         const char* who) {
  if (phases == 0) {
    throw std::invalid_argument{std::string{who} + ": at least one clock phase required"};
  }
  if (batch_pis != net.num_pis()) {
    throw std::invalid_argument{std::string{who} +
                                ": each wave needs one value per primary input"};
  }
  if (!net.wave_coherent(phases)) {
    throw std::invalid_argument{
        std::string{who} + ": netlist is not wave-coherent under " + std::to_string(phases) +
        " phases (edge spans " + std::to_string(net.min_edge_span()) + ".." +
        std::to_string(net.max_edge_span()) +
        " must lie in [1, phases]); balance it with insert_buffers or use the "
        "cycle-accurate run_waves"};
  }
}

void fill_packed_clock_metrics(packed_wave_result& result, const compiled_netlist& net,
                               unsigned phases, std::size_t num_waves) {
  fill_clock_metrics(result, net, phases, num_waves);
}

void eval_packed_chunk(const compiled_netlist& net, const std::uint64_t* chunk_words,
                       std::uint64_t* out_words, std::vector<std::uint64_t>& scratch) {
  net.eval_words_into(chunk_words, out_words, scratch);
}

void eval_packed_block(const compiled_netlist& net, const std::uint64_t* chunk_words,
                       std::uint64_t* out_words, std::size_t num_chunks,
                       std::vector<std::uint64_t>& scratch) {
  net.eval_words_block(chunk_words, out_words, num_chunks, scratch);
}

void wave_batch::append(const std::vector<bool>& wave) {
  if (wave.size() != num_pis_) {
    throw std::invalid_argument{"wave_batch: each wave needs one value per primary input"};
  }
  const std::size_t bit = num_waves_ % 64;
  if (bit == 0) {
    words_.insert(words_.end(), num_pis_, 0);
  }
  std::uint64_t* chunk = words_.data() + (num_waves_ / 64) * num_pis_;
  for (std::size_t i = 0; i < num_pis_; ++i) {
    chunk[i] |= static_cast<std::uint64_t>(wave[i]) << bit;
  }
  ++num_waves_;
}

void wave_batch::append_words(const std::uint64_t* words, std::size_t num_waves) {
  if (num_waves == 0) {
    return;
  }
  const std::size_t in_chunks = (num_waves + 63) / 64;
  const std::size_t offset = num_waves_ % 64;
  const std::size_t total = num_waves_ + num_waves;
  words_.resize(((total + 63) / 64) * num_pis_, 0);

  if (offset == 0) {
    std::copy(words, words + in_chunks * num_pis_,
              words_.begin() + static_cast<std::ptrdiff_t>((num_waves_ / 64) * num_pis_));
    // Stray bits above num_waves in the caller's last chunk must not leak
    // into waves appended later.
    if (const std::size_t tail = num_waves % 64; tail != 0) {
      const std::uint64_t mask = (std::uint64_t{1} << tail) - 1;
      std::uint64_t* last = words_.data() + (total / 64) * num_pis_;
      for (std::size_t i = 0; i < num_pis_; ++i) {
        last[i] &= mask;
      }
    }
  } else {
    // Unaligned: each incoming word splits into a low part spliced into the
    // partially filled chunk and a high part carried into the next one —
    // two shifts per word, never per-bit.
    for (std::size_t c = 0; c < in_chunks; ++c) {
      const std::uint64_t* in = words + c * num_pis_;
      const std::size_t valid = std::min<std::size_t>(64, num_waves - c * 64);
      const std::uint64_t valid_mask =
          valid == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << valid) - 1;
      const std::size_t base = num_waves_ + c * 64;
      const std::size_t hi_chunk = base / 64 + 1;
      std::uint64_t* lo = words_.data() + (base / 64) * num_pis_;
      // When the spliced waves fit inside the low chunk no high chunk was
      // allocated — and the carried bits are provably zero then.
      std::uint64_t* hi = (hi_chunk + 1) * num_pis_ <= words_.size()
                              ? words_.data() + hi_chunk * num_pis_
                              : nullptr;
      for (std::size_t i = 0; i < num_pis_; ++i) {
        const std::uint64_t w = in[i] & valid_mask;
        lo[i] |= w << offset;
        if (hi != nullptr) {
          hi[i] |= w >> (64 - offset);
        }
      }
    }
  }
  num_waves_ = total;
}

wave_batch wave_batch::from_waves(const std::vector<std::vector<bool>>& waves,
                                  std::size_t num_pis) {
  wave_batch batch{num_pis};
  batch.reserve(waves.size());
  for (const auto& wave : waves) {
    batch.append(wave);
  }
  return batch;
}

std::vector<std::vector<bool>> packed_wave_result::unpack() const {
  std::vector<std::vector<bool>> out(num_waves, std::vector<bool>(num_pos, false));
  // Word-at-a-time transpose: load each packed word once and fan its lanes
  // out, instead of recomputing chunk/bit indices per (wave, output) pair.
  const std::size_t num_chunks = (num_waves + 63) / 64;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t lanes = std::min<std::size_t>(64, num_waves - c * 64);
    const std::uint64_t* chunk = words.data() + c * num_pos;
    for (std::size_t p = 0; p < num_pos; ++p) {
      std::uint64_t word = chunk[p];
      for (std::size_t b = 0; b < lanes; ++b, word >>= 1) {
        if ((word & 1u) != 0) {
          out[c * 64 + b][p] = true;
        }
      }
    }
  }
  return out;
}

wave_run_result run_waves(const compiled_netlist& net,
                          const std::vector<std::vector<bool>>& waves, unsigned phases) {
  if (phases == 0) {
    throw std::invalid_argument{"run_waves: at least one clock phase required"};
  }
  for (const auto& wave : waves) {
    if (wave.size() != net.num_pis()) {
      throw std::invalid_argument{"run_waves: each wave needs one value per primary input"};
    }
  }

  wave_run_result result;
  fill_clock_metrics(result, net, phases, waves.size());
  result.outputs.assign(waves.size(), std::vector<bool>(net.num_pos(), false));
  if (waves.empty()) {
    return result;
  }
  const std::uint64_t last_tick = result.ticks - 1;

  // Per-clock-phase firing lists, resolved once instead of per tick. Ops in
  // a list are ordered by decreasing level so the in-place update below
  // preserves synchronous (pre-tick snapshot) semantics: every data edge
  // spans >= 1 level, hence a consumer always updates before its producer
  // within the same tick. Only min(phases, max level) buckets can be
  // non-empty, so allocation stays bounded by the netlist, not by `phases`.
  const auto& ops = net.tick_ops();
  std::uint32_t max_level = 0;
  for (const auto& o : ops) {
    max_level = std::max(max_level, o.level);
  }
  const std::size_t num_buckets = std::min<std::uint64_t>(phases, max_level);
  std::vector<std::vector<std::uint32_t>> phase_ops(num_buckets);
  for (std::uint32_t i = 0; i < ops.size(); ++i) {
    if (ops[i].level == 0) {
      continue;  // unscheduled component: never fires (matches interpreter)
    }
    phase_ops[(ops[i].level - 1) % phases].push_back(i);
  }
  for (auto& list : phase_ops) {
    std::stable_sort(list.begin(), list.end(), [&](std::uint32_t a, std::uint32_t b) {
      return ops[a].level > ops[b].level;
    });
  }
  // A custom schedule may contain non-advancing edges; fall back to a full
  // pre-tick snapshot in that case to keep the semantics exact.
  const bool in_place = net.min_edge_span() >= 1;

  // Per-tick PO sampling schedule, resolved once: output p (driver level
  // lvl) samples wave w at tick w * phases + start with start = lvl - 1, so
  // only the outputs whose start is congruent to t modulo `phases` can
  // sample at tick t. Bucketing them by that residue turns the former
  // every-tick rescan of all POs into O(actual samples) work.
  struct po_sample {
    std::uint32_t po;
    std::uint64_t start;
    slot_ref ref;
  };
  // Like phase_ops above, allocation is bounded by the netlist, not by
  // `phases`: only residues up to the largest sampling start can be
  // occupied, so ticks beyond the bucket count simply sample nothing.
  std::uint64_t max_start = 0;
  for (std::uint32_t p = 0; p < net.num_pos(); ++p) {
    const std::uint32_t lvl = net.po_levels()[p];
    max_start = std::max<std::uint64_t>(max_start, lvl > 0 ? lvl - 1 : 0);
  }
  std::vector<std::vector<po_sample>> sample_buckets(
      static_cast<std::size_t>(std::min<std::uint64_t>(phases, max_start + 1)));
  for (std::uint32_t p = 0; p < net.num_pos(); ++p) {
    if (net.po_constant()[p]) {
      continue;
    }
    const std::uint32_t lvl = net.po_levels()[p];
    const std::uint64_t start = lvl > 0 ? lvl - 1 : 0;
    sample_buckets[start % phases].push_back({p, start, net.po_refs()[p]});
  }

  std::vector<std::uint8_t> value(net.tick_slot_count(), 0);
  std::vector<std::uint8_t> snapshot;

  const auto read = [](const std::vector<std::uint8_t>& state, slot_ref ref) -> std::uint8_t {
    return state[ref >> 1] ^ static_cast<std::uint8_t>(ref & 1u);
  };
  const auto apply = [&](const compiled_netlist::tick_op& o,
                         const std::vector<std::uint8_t>& state) {
    if (o.kind == compiled_netlist::tick_kind::majority) {
      const std::uint8_t a = read(state, o.a);
      const std::uint8_t b = read(state, o.b);
      const std::uint8_t c = read(state, o.c);
      value[o.target] = static_cast<std::uint8_t>((a & b) | (b & c) | (a & c));
    } else {
      value[o.target] = read(state, o.a);
    }
  };

  for (std::uint64_t t = 0; t <= last_tick; ++t) {
    // Present the input wave for this initiation slot (inputs hold their
    // value between injections).
    const std::uint64_t wave = t / phases;
    if (t % phases == 0 && wave < waves.size()) {
      for (std::size_t i = 0; i < net.num_pis(); ++i) {
        value[net.pi_slots()[i]] = static_cast<std::uint8_t>(waves[wave][i]);
      }
    }

    if (const std::size_t bucket = t % phases; bucket < num_buckets) {
      const auto& fired = phase_ops[bucket];
      if (in_place) {
        for (const std::uint32_t i : fired) {
          apply(ops[i], value);
        }
      } else {
        snapshot = value;
        for (const std::uint32_t i : fired) {
          apply(ops[i], snapshot);
        }
      }
    }

    // Sample every output whose driver just latched its wave: exactly the
    // bucket of this tick's residue (start ≡ t mod phases there, so
    // t >= start already implies t lands on a sampling tick).
    if (const std::size_t residue = t % phases; residue < sample_buckets.size()) {
      for (const auto& s : sample_buckets[residue]) {
        if (t < s.start) {
          continue;  // before the first wave can arrive
        }
        const std::uint64_t w = (t - s.start) / phases;
        if (w < waves.size()) {
          result.outputs[w][s.po] = read(value, s.ref) != 0;
        }
      }
    }
  }

  // Constant-driven outputs are the same for every wave.
  for (std::size_t p = 0; p < net.num_pos(); ++p) {
    if (!net.po_constant()[p]) {
      continue;
    }
    const bool v = (net.po_refs()[p] & 1u) != 0;
    for (auto& out : result.outputs) {
      out[p] = v;
    }
  }

  return result;
}

packed_wave_result run_waves_packed(const compiled_netlist& net, const wave_batch& waves,
                                    unsigned phases) {
  validate_packed_run(net, waves.num_pis(), phases, "run_waves_packed");

  packed_wave_result result;
  result.num_pos = net.num_pos();
  result.num_waves = waves.num_waves();
  fill_clock_metrics(result, net, phases, waves.num_waves());
  result.words.resize(waves.num_chunks() * net.num_pos());

  // The batch's words are contiguous chunk-major, so the whole run is one
  // multi-word block evaluation (internally split into word-blocks of
  // compiled_netlist::max_block_chunks).
  std::vector<std::uint64_t> scratch;
  eval_packed_block(net, waves.chunk_words(0), result.words.data(), waves.num_chunks(),
                    scratch);
  return result;
}

wave_stream::wave_stream(const compiled_netlist& net, unsigned phases,
                         std::size_t expected_waves)
    : net_{net}, phases_{phases}, expected_waves_{expected_waves}, pending_{net.num_pis()} {
  validate_packed_run(net, net.num_pis(), phases, "wave_stream");
  pending_.reserve(block_waves);
}

void wave_stream::push(const std::vector<bool>& wave) {
  pending_.append(wave);  // validates the width
  ++pushed_;
  if (pending_.num_waves() == block_waves) {
    flush_pending();
  }
}

void wave_stream::flush_pending() {
  // The expected-waves hint is applied lazily at the first flush of a run,
  // so a hinted stream that is finished and discarded (or reset and never
  // reused) does not pay for a full result buffer it will not fill.
  if (result_.words.empty() && expected_waves_ != 0) {
    result_.words.reserve(((expected_waves_ + 63) / 64) * net_.num_pos());
  }
  const std::size_t out_words = pending_.num_chunks() * net_.num_pos();
  result_.words.resize(result_.words.size() + out_words);
  eval_packed_block(net_, pending_.chunk_words(0),
                    result_.words.data() + result_.words.size() - out_words,
                    pending_.num_chunks(), scratch_);
  completed_ += pending_.num_waves();
  pending_.clear();  // keeps the packed-word storage for the next block
}

packed_wave_result wave_stream::finish() {
  if (!pending_.empty()) {
    flush_pending();
  }
  result_.num_pos = net_.num_pos();
  result_.num_waves = completed_;
  fill_clock_metrics(result_, net_, phases_, completed_);
  packed_wave_result out = std::move(result_);
  result_ = {};
  pushed_ = 0;
  completed_ = 0;
  return out;
}

}  // namespace wavemig::engine
