#include "wavemig/engine/parallel_executor.hpp"

#include <algorithm>
#include <exception>

#include "block_splice.hpp"

namespace wavemig::engine {

// ------------------------------------------------------------ executor ---

parallel_executor::parallel_executor(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  scratch_.resize(num_threads);
  workers_.reserve(num_threads);
  for (unsigned w = 0; w < num_threads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

parallel_executor::~parallel_executor() {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void parallel_executor::worker_loop(unsigned worker) {
  for (;;) {
    std::function<void(unsigned)> task;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop requested and nothing left to drain
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task(worker);
  }
}

void parallel_executor::submit(std::function<void(unsigned)> task) {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void parallel_executor::for_each(std::size_t num_tasks,
                                 const std::function<void(std::size_t, unsigned)>& fn) {
  if (num_tasks == 0) {
    return;
  }

  // Per-call completion state: independent for_each calls (possibly from
  // different threads) never wait on each other's tasks.
  struct call_state {
    std::atomic<std::size_t> next{0};
    std::mutex mutex;
    std::condition_variable done;
    std::size_t live_workers{0};
    std::exception_ptr error;
  };
  auto state = std::make_shared<call_state>();
  const auto fan =
      static_cast<unsigned>(std::min<std::size_t>(num_threads(), num_tasks));
  state->live_workers = fan;

  // `fn` is captured by reference: this call blocks until every shard task
  // returned, so the reference outlives the tasks.
  for (unsigned i = 0; i < fan; ++i) {
    submit([state, &fn, num_tasks](unsigned worker) {
      try {
        for (std::size_t t = state->next.fetch_add(1); t < num_tasks;
             t = state->next.fetch_add(1)) {
          fn(t, worker);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock{state->mutex};
        if (!state->error) {
          state->error = std::current_exception();
        }
        state->next.store(num_tasks);  // cancel the remaining tasks
      }
      std::lock_guard<std::mutex> lock{state->mutex};
      if (--state->live_workers == 0) {
        state->done.notify_all();
      }
    });
  }

  std::unique_lock<std::mutex> lock{state->mutex};
  state->done.wait(lock, [&] { return state->live_workers == 0; });
  if (state->error) {
    std::rethrow_exception(state->error);
  }
}

// ------------------------------------------------------- parallel run ---

packed_wave_result run_waves_parallel(const compiled_netlist& net, const wave_batch& waves,
                                      unsigned phases, parallel_executor& executor) {
  validate_packed_run(net, waves.num_pis(), phases, "run_waves_parallel");

  packed_wave_result result;
  result.num_pos = net.num_pos();
  result.num_waves = waves.num_waves();
  fill_packed_clock_metrics(result, net, phases, waves.num_waves());
  result.words.resize(waves.num_chunks() * net.num_pos());

  // One task per multi-chunk block (not per chunk): the multi-word kernel
  // runs at full width inside every task and dispatch overhead amortizes
  // over the block. The block size adapts so small batches still fan out —
  // at least two tasks per worker where possible (parallelism beats kernel
  // width when the batch cannot feed both), growing to max_block_chunks
  // once the batch is large enough to keep every worker busy at full
  // width. Sharding slices the batch's plane view — same planes, offset
  // base, no copy — and every block writes a disjoint chunk range of each
  // result plane, so the assembly is deterministic by construction and the
  // result words are identical at every block size.
  const std::size_t num_chunks = waves.num_chunks();
  const std::size_t threads = std::max(1u, executor.num_threads());
  const std::size_t block = std::clamp<std::size_t>(num_chunks / (2 * threads), 1,
                                                    compiled_netlist::max_block_chunks);
  const std::size_t num_blocks = (num_chunks + block - 1) / block;
  const wave_block_view pis = waves.view();
  const wave_block_mut_view pos{result.words.data(), num_chunks, net.num_pos(), num_chunks};
  executor.for_each(num_blocks, [&](std::size_t b, unsigned worker) {
    const std::size_t first = b * block;
    const std::size_t count = std::min(block, num_chunks - first);
    eval_packed_planes(net, pis.slice(first, count), pos.slice(first, count),
                       executor.scratch(worker));
  });
  detail::mask_result_tail(result);
  return result;
}

// ------------------------------------------------------------- stream ---

parallel_wave_stream::parallel_wave_stream(const compiled_netlist& net, unsigned phases,
                                           parallel_executor& executor)
    : net_{net}, phases_{phases}, executor_{executor}, pending_{net.num_pis()} {
  validate_packed_run(net, net.num_pis(), phases, "parallel_wave_stream");
  pending_.reserve(block_waves);
}

parallel_wave_stream::~parallel_wave_stream() {
  // In-flight block tasks reference this stream's jobs; never die under them.
  wait_in_flight();
}

void parallel_wave_stream::push(const std::vector<bool>& wave) {
  pending_.append(wave);  // validates the width
  ++pushed_;
  if (pending_.num_waves() == block_waves) {
    dispatch_block();
  }
}

void parallel_wave_stream::dispatch_block() {
  jobs_.emplace_back(std::move(pending_), net_.num_pos());
  pending_ = wave_batch{net_.num_pis()};
  pending_.reserve(block_waves);
  block_job* job = &jobs_.back();  // deque: stable across later push_backs
  {
    std::lock_guard<std::mutex> lock{mutex_};
    ++in_flight_;
  }
  executor_.submit([this, job](unsigned worker) {
    const std::size_t chunks = job->inputs.num_chunks();
    eval_packed_planes(net_, job->inputs.view(),
                       {job->out.data(), chunks, net_.num_pos(), chunks},
                       executor_.scratch(worker));
    completed_.fetch_add(job->inputs.num_waves(), std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock{mutex_};
    if (--in_flight_ == 0) {
      all_done_.notify_all();
    }
  });
}

void parallel_wave_stream::wait_in_flight() {
  std::unique_lock<std::mutex> lock{mutex_};
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

packed_wave_result parallel_wave_stream::finish() {
  if (!pending_.empty()) {
    dispatch_block();
  }
  wait_in_flight();

  packed_wave_result result;
  result.num_pos = net_.num_pos();
  result.num_waves = pushed_;
  fill_packed_clock_metrics(result, net_, phases_, pushed_);
  if (jobs_.size() == 1) {
    // A single block already has the result's plane stride.
    result.words = std::move(jobs_.front().out);
  } else if (!jobs_.empty()) {
    // Splice each job's plane-major block (stride == its own chunk count)
    // into the full-width result planes — contiguous chunk-word copies, in
    // push order, so the words are bit-identical to the single-threaded
    // packed path.
    const std::size_t total_chunks = result.num_chunks();
    result.words.resize(total_chunks * net_.num_pos());
    std::size_t chunk_offset = 0;
    for (const auto& job : jobs_) {
      const std::size_t job_chunks = job.inputs.num_chunks();
      detail::splice_block_planes(job.out.data(), job_chunks, result.words.data(),
                                  total_chunks, chunk_offset, net_.num_pos());
      chunk_offset += job_chunks;
    }
  }
  detail::mask_result_tail(result);

  jobs_.clear();
  pushed_ = 0;
  completed_.store(0, std::memory_order_relaxed);
  return result;
}

// ------------------------------------------------------------ session ---

std::uint64_t network_fingerprint(const mig_network& net) {
  constexpr std::uint64_t offset = 1469598103934665603ull;
  constexpr std::uint64_t prime = 1099511628211ull;
  std::uint64_t h = offset;
  const auto mix = [&](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h = (h ^ ((v >> (8 * byte)) & 0xffu)) * prime;
    }
  };
  mix(net.num_pis());
  net.foreach_node([&](node_index n) {
    mix(static_cast<std::uint64_t>(net.kind(n)));
    if (net.is_pi(n)) {
      mix(net.pi_position(n));
    }
    for (const signal f : net.fanins(n)) {
      mix((static_cast<std::uint64_t>(f.index()) << 1) |
          static_cast<std::uint64_t>(f.is_complemented()));
    }
  });
  for (const auto& po : net.pos()) {
    mix((static_cast<std::uint64_t>(po.driver.index()) << 1) |
        static_cast<std::uint64_t>(po.driver.is_complemented()));
  }
  return h;
}

std::size_t batch_session::cache_key_hash::operator()(const cache_key& k) const noexcept {
  std::uint64_t h = k.fingerprint;
  h ^= (static_cast<std::uint64_t>(k.strategy) + 1) * 0x9e3779b97f4a7c15ull;
  h ^= (static_cast<std::uint64_t>(k.phases) + 1) * 0xbf58476d1ce4e5b9ull;
  return static_cast<std::size_t>(h ^ (h >> 32));
}

batch_session::batch_session(parallel_executor& executor, buffer_insertion_options options,
                             cache_limits limits, compile_options compile)
    : executor_{executor}, options_{options}, limits_{limits}, compile_options_{compile} {}

void batch_session::evict_to_limits() {
  while (!lru_.empty() &&
         ((limits_.max_entries != 0 && cache_.size() > limits_.max_entries) ||
          (limits_.max_bytes != 0 && bytes_ > limits_.max_bytes))) {
    const auto it = cache_.find(lru_.back());
    bytes_ -= it->second.bytes;
    cache_.erase(it);
    lru_.pop_back();
    ++evictions_;
  }
}

std::shared_ptr<const compiled_netlist> batch_session::compile(const mig_network& net,
                                                               unsigned phases) {
  const cache_key key{network_fingerprint(net), options_.strategy, phases};

  {
    std::lock_guard<std::mutex> lock{mutex_};
    if (const auto it = cache_.find(key); it != cache_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return it->second.program;
    }
  }

  // Balance + lower + optimize outside the lock; a concurrent miss on the
  // same key compiles the identical program and the first insert wins.
  const auto balanced = insert_buffers(net, options_);
  auto fresh = std::make_shared<const compiled_netlist>(balanced.net, balanced.schedule,
                                                        compile_options_);

  std::lock_guard<std::mutex> lock{mutex_};
  ++misses_;
  const auto [it, inserted] = cache_.try_emplace(key);
  if (inserted) {
    it->second.program = std::move(fresh);
    it->second.bytes = it->second.program->memory_bytes();
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
    bytes_ += it->second.bytes;
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  }
  // Hold our own reference before eviction: when this entry alone exceeds
  // max_bytes it is evicted immediately, yet the caller's run proceeds.
  auto program = it->second.program;
  evict_to_limits();
  return program;
}

packed_wave_result batch_session::run(const mig_network& net, const wave_batch& waves,
                                      unsigned phases) {
  const auto compiled = compile(net, phases);
  return run_waves_parallel(*compiled, waves, phases, executor_);
}

session_stats batch_session::stats() const {
  std::lock_guard<std::mutex> lock{mutex_};
  session_stats s{hits_, misses_, evictions_, cache_.size(), bytes_, 0, 0};
  for (const auto& [key, entry] : cache_) {
    s.comb_ops += entry.program->num_comb_ops();
    s.comb_slots += entry.program->comb_slot_count();
  }
  return s;
}

std::size_t batch_session::cached_netlists() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return cache_.size();
}

std::uint64_t batch_session::cache_hits() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return hits_;
}

std::uint64_t batch_session::cache_misses() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return misses_;
}

}  // namespace wavemig::engine
