#include "wavemig/engine/parallel_executor.hpp"

#include <algorithm>
#include <cstring>
#include <exception>

#include "block_splice.hpp"
#include "wavemig/fault/fault_injection.hpp"
#include "wavemig/pipeline.hpp"

namespace wavemig::engine {

namespace detail {

/// Shared state of one submitted group: the task body, the countdown, and
/// the completion machinery. Deque items and `task_group` tokens hold it
/// through a shared_ptr, so the state outlives whichever of them finishes
/// last.
struct group_state {
  std::function<void(std::size_t, unsigned)> fn;
  std::atomic<std::size_t> remaining{0};
  std::atomic<bool> cancelled{false};
  mutable std::mutex mutex;
  std::condition_variable cv;
  bool done{false};
  std::exception_ptr error;
  group_callback on_complete;
};

}  // namespace detail

namespace {

/// Identity of the current thread inside a pool, so `submit` from a worker
/// lands on that worker's own deque (locality) instead of round-robin.
struct worker_identity {
  const void* owner{nullptr};
  unsigned index{0};
};
thread_local worker_identity tls_worker;

}  // namespace

// --------------------------------------------------------- task_group ---

bool task_group::done() const {
  if (!state_) {
    return true;
  }
  std::lock_guard<std::mutex> lock{state_->mutex};
  return state_->done;
}

void task_group::wait() const {
  if (!state_) {
    return;
  }
  std::unique_lock<std::mutex> lock{state_->mutex};
  state_->cv.wait(lock, [this] { return state_->done; });
}

std::exception_ptr task_group::error() const {
  if (!state_) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock{state_->mutex};
  return state_->error;
}

// ------------------------------------------------------------ executor ---

parallel_executor::parallel_executor(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  scratch_.resize(num_threads);
  deques_.reserve(num_threads);
  for (unsigned w = 0; w < num_threads; ++w) {
    deques_.push_back(std::make_unique<work_deque>());
  }
  workers_.reserve(num_threads);
  for (unsigned w = 0; w < num_threads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

parallel_executor::~parallel_executor() {
  {
    std::lock_guard<std::mutex> lock{sleep_mutex_};
    stop_ = true;
  }
  sleep_cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void parallel_executor::worker_loop(unsigned worker) {
  tls_worker = {this, worker};
  task_item item;
  while (next_item(worker, item)) {
    run_item(item, worker);
    item = task_item{};  // release the group/fn before going back to sleep
  }
  tls_worker = {};
}

bool parallel_executor::next_item(unsigned worker, task_item& item) {
  auto& own = *deques_[worker];
  const std::size_t num_workers = deques_.size();
  for (;;) {
    // Own deque first, from the front: a group's pre-partitioned range runs
    // in ascending chunk order (prefetch-friendly), plain submissions FIFO.
    {
      std::lock_guard<std::mutex> lock{own.mutex};
      if (!own.items.empty()) {
        item = std::move(own.items.front());
        own.items.pop_front();
        pending_.fetch_sub(1);
        return true;
      }
    }
    // Empty: steal a whole item (one plane-block of a group, or one plain
    // task) from the back of a victim — the work farthest from where the
    // victim is currently progressing.
    // executor.steal.delay (delay action, sleeps inside hit()): widens the
    // own-empty → steal race window so chaos runs exercise interleavings a
    // quiet machine rarely produces.
    (void)WAVEMIG_FAULT_HIT("executor.steal.delay");
    for (std::size_t i = 1; i < num_workers; ++i) {
      auto& victim = *deques_[(worker + i) % num_workers];
      std::lock_guard<std::mutex> lock{victim.mutex};
      if (!victim.items.empty()) {
        item = std::move(victim.items.back());
        victim.items.pop_back();
        pending_.fetch_sub(1);
        return true;
      }
    }
    // Nothing anywhere: park. `pending_` is incremented before an item
    // becomes visible in a deque, so a positive count here means a push is
    // in progress — loop and rescan instead of sleeping past it.
    std::unique_lock<std::mutex> lock{sleep_mutex_};
    if (pending_.load() > 0) {
      continue;
    }
    if (stop_) {
      return false;  // stop requested and every deque drained
    }
    sleepers_.fetch_add(1);
    sleep_cv_.wait(lock, [this] { return stop_ || pending_.load() > 0; });
    sleepers_.fetch_sub(1);
  }
}

void parallel_executor::run_item(task_item& item, unsigned worker) {
  // executor.worker.stall (delay/stall action, sleeps inside hit()): one
  // worker goes dark mid-pass; stealing must keep the rest of the group
  // progressing and the result bit-identical.
  (void)WAVEMIG_FAULT_HIT("executor.worker.stall");
  if (!item.group) {
    item.fn(worker);  // plain tasks must not throw (documented contract)
    return;
  }
  detail::group_state& group = *item.group;
  if (!group.cancelled.load(std::memory_order_relaxed)) {
    try {
      group.fn(item.index, worker);
    } catch (...) {
      std::lock_guard<std::mutex> lock{group.mutex};
      if (!group.error) {
        group.error = std::current_exception();
      }
      group.cancelled.store(true, std::memory_order_relaxed);
    }
  }
  if (group.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task: publish completion, then fire the callback outside the
    // lock (it may submit follow-up work against this executor).
    group_callback on_complete;
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> lock{group.mutex};
      group.done = true;
      error = group.error;
      on_complete = std::move(group.on_complete);
    }
    group.cv.notify_all();
    if (on_complete) {
      try {
        on_complete(error);
      } catch (...) {
        // A throwing completion must not take down the worker.
      }
    }
  }
}

void parallel_executor::push_item(unsigned deque_index, task_item item) {
  auto& deque = *deques_[deque_index];
  std::lock_guard<std::mutex> lock{deque.mutex};
  deque.items.push_back(std::move(item));
}

void parallel_executor::notify_new_work(std::size_t count) {
  if (sleepers_.load() == 0) {
    return;  // every worker is already awake and will rescan
  }
  // The (empty) critical section orders this notify after any worker that
  // last saw pending_ == 0: such a worker is either fully parked (the
  // notify reaches it) or re-evaluates the predicate under the mutex and
  // sees the new count.
  { std::lock_guard<std::mutex> lock{sleep_mutex_}; }
  if (count > 1) {
    sleep_cv_.notify_all();
  } else {
    sleep_cv_.notify_one();
  }
}

void parallel_executor::submit(std::function<void(unsigned)> task) {
  task_item item;
  item.fn = std::move(task);
  const unsigned target = tls_worker.owner == this
                              ? tls_worker.index
                              : rr_next_.fetch_add(1, std::memory_order_relaxed) %
                                    static_cast<unsigned>(deques_.size());
  pending_.fetch_add(1);
  push_item(target, std::move(item));
  notify_new_work(1);
}

task_group parallel_executor::submit_group_impl(
    std::size_t num_tasks, std::function<void(std::size_t, unsigned)> fn,
    group_callback on_complete) {
  auto state = std::make_shared<detail::group_state>();
  state->fn = std::move(fn);
  if (num_tasks == 0) {
    state->done = true;
    if (on_complete) {
      try {
        on_complete(nullptr);
      } catch (...) {
      }
    }
    return task_group{std::move(state)};
  }
  state->on_complete = std::move(on_complete);
  state->remaining.store(num_tasks, std::memory_order_relaxed);

  // Contiguous pre-partition: worker (start + w) % W owns the w-th range of
  // the index space, so each worker walks an ascending contiguous run of
  // plane-blocks and stealing only rebalances the edges. `start` rotates
  // per group so concurrent small groups spread across different workers.
  const std::size_t num_workers = deques_.size();
  const unsigned start = rr_next_.fetch_add(1, std::memory_order_relaxed) %
                         static_cast<unsigned>(num_workers);
  pending_.fetch_add(num_tasks);  // before visibility: claims never underflow
  for (std::size_t w = 0; w < num_workers; ++w) {
    const std::size_t first = num_tasks * w / num_workers;
    const std::size_t last = num_tasks * (w + 1) / num_workers;
    if (first == last) {
      continue;
    }
    auto& deque = *deques_[(start + w) % num_workers];
    std::lock_guard<std::mutex> lock{deque.mutex};
    for (std::size_t t = first; t < last; ++t) {
      task_item item;
      item.group = state;
      item.index = t;
      deque.items.push_back(std::move(item));
    }
  }
  notify_new_work(num_tasks);
  return task_group{std::move(state)};
}

task_group parallel_executor::submit_group(std::size_t num_tasks,
                                           std::function<void(std::size_t, unsigned)> fn,
                                           group_callback on_complete) {
  return submit_group_impl(num_tasks, std::move(fn), std::move(on_complete));
}

void parallel_executor::for_each(std::size_t num_tasks,
                                 const std::function<void(std::size_t, unsigned)>& fn) {
  if (num_tasks == 0) {
    return;
  }
  // `fn` is captured by reference: this call blocks until the group
  // completed, so the reference outlives the tasks.
  const task_group group = submit_group_impl(
      num_tasks, [&fn](std::size_t task, unsigned worker) { fn(task, worker); }, {});
  group.wait();
  if (auto error = group.error()) {
    std::rethrow_exception(error);
  }
}

// ------------------------------------------------------- parallel run ---

packed_wave_result run_waves_parallel(const compiled_netlist& net, const wave_batch& waves,
                                      unsigned phases, parallel_executor& executor) {
  validate_packed_run(net, waves.num_pis(), phases, "run_waves_parallel");

  packed_wave_result result;
  result.num_pos = net.num_pos();
  result.num_waves = waves.num_waves();
  fill_packed_clock_metrics(result, net, phases, waves.num_waves());
  result.words.resize(waves.num_chunks() * net.num_pos());

  // One task per multi-chunk block (not per chunk), partitioned by the
  // shared shard_block_chunks policy: the multi-word kernel runs at full
  // width inside every task and dispatch overhead amortizes over the block.
  // Sharding slices the batch's plane view — same planes, offset base, no
  // copy — and every block writes a disjoint chunk range of each result
  // plane, so the assembly is deterministic by construction and the result
  // words are identical at every block size.
  const std::size_t num_chunks = waves.num_chunks();
  const std::size_t block =
      compiled_netlist::shard_block_chunks(num_chunks, executor.num_threads());
  const std::size_t num_blocks = (num_chunks + block - 1) / block;
  const wave_block_view pis = waves.view();
  const wave_block_mut_view pos{result.words.data(), num_chunks, net.num_pos(), num_chunks};
  executor.for_each(num_blocks, [&](std::size_t b, unsigned worker) {
    const std::size_t first = b * block;
    const std::size_t count = std::min(block, num_chunks - first);
    eval_packed_planes(net, pis.slice(first, count), pos.slice(first, count),
                       executor.scratch(worker));
  });
  detail::mask_result_tail(result);
  return result;
}

// ------------------------------------------------------------- stream ---

parallel_wave_stream::parallel_wave_stream(const compiled_netlist& net, unsigned phases,
                                           parallel_executor& executor,
                                           std::size_t expected_waves)
    : net_{net},
      phases_{phases},
      executor_{executor},
      expected_waves_{expected_waves},
      pending_{net.num_pis()} {
  validate_packed_run(net, net.num_pis(), phases, "parallel_wave_stream");
  pending_.reserve(block_waves);
}

parallel_wave_stream::~parallel_wave_stream() {
  // In-flight block tasks reference this stream's jobs; never die under them.
  wait_in_flight();
}

void parallel_wave_stream::push(const std::vector<bool>& wave) {
  pending_.append(wave);  // validates the width
  ++pushed_;
  if (pending_.num_waves() == block_waves) {
    dispatch_block();
  }
}

void parallel_wave_stream::ensure_direct_capacity(std::size_t needed_chunks) {
  if (direct_stride_ >= needed_chunks) {
    return;
  }
  std::size_t new_stride = std::max(needed_chunks, (expected_waves_ + 63) / 64);
  if (direct_stride_ != 0) {
    // The hint undershot: re-striding moves every plane, which must not
    // race the in-flight jobs still writing the old layout. Correctness is
    // preserved; the one-off stall is the price of a wrong hint.
    wait_in_flight();
    new_stride = std::max(needed_chunks, 2 * direct_stride_);
  }
  std::vector<std::uint64_t> grown(new_stride * net_.num_pos(), 0);
  if (chunks_dispatched_ != 0) {
    for (std::size_t p = 0; p < net_.num_pos(); ++p) {
      std::memcpy(grown.data() + p * new_stride, direct_words_.data() + p * direct_stride_,
                  chunks_dispatched_ * sizeof(std::uint64_t));
    }
  }
  direct_words_.swap(grown);
  direct_stride_ = new_stride;
}

void parallel_wave_stream::dispatch_block() {
  jobs_.emplace_back(std::move(pending_));
  pending_ = wave_batch{net_.num_pis()};
  pending_.reserve(block_waves);
  block_job* job = &jobs_.back();  // deque: stable across later push_backs
  const std::size_t chunks = job->inputs.num_chunks();

  // Hinted streams write straight into the final full-width result planes
  // at this block's chunk offset — no per-job buffer, no finish()-time
  // splice. Unhinted streams keep the per-job buffer + splice path.
  std::uint64_t* out_base;
  std::size_t out_stride;
  if (expected_waves_ != 0) {
    ensure_direct_capacity(chunks_dispatched_ + chunks);
    out_base = direct_words_.data() + chunks_dispatched_;
    out_stride = direct_stride_;
  } else {
    job->out.resize(chunks * net_.num_pos());
    out_base = job->out.data();
    out_stride = chunks;
  }
  chunks_dispatched_ += chunks;

  {
    std::lock_guard<std::mutex> lock{mutex_};
    ++in_flight_;
  }
  executor_.submit([this, job, out_base, out_stride](unsigned worker) {
    const std::size_t job_chunks = job->inputs.num_chunks();
    eval_packed_planes(net_, job->inputs.view(),
                       {out_base, out_stride, net_.num_pos(), job_chunks},
                       executor_.scratch(worker));
    completed_.fetch_add(job->inputs.num_waves(), std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock{mutex_};
    if (--in_flight_ == 0) {
      all_done_.notify_all();
    }
  });
}

void parallel_wave_stream::wait_in_flight() {
  std::unique_lock<std::mutex> lock{mutex_};
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

packed_wave_result parallel_wave_stream::finish() {
  if (!pending_.empty()) {
    dispatch_block();
  }
  wait_in_flight();

  packed_wave_result result;
  result.num_pos = net_.num_pos();
  result.num_waves = pushed_;
  fill_packed_clock_metrics(result, net_, phases_, pushed_);
  const std::size_t total_chunks = result.num_chunks();
  if (expected_waves_ != 0) {
    // Direct-write path: blocks already landed at their final chunk
    // offsets. An exact (or matching) hint hands the buffer over as-is; an
    // overshot hint compacts each plane down to the result stride first
    // (ascending planes: the destination never overruns the source).
    if (direct_stride_ > total_chunks) {
      for (std::size_t p = 0; p < result.num_pos; ++p) {
        std::memmove(direct_words_.data() + p * total_chunks,
                     direct_words_.data() + p * direct_stride_,
                     total_chunks * sizeof(std::uint64_t));
      }
    }
    direct_words_.resize(total_chunks * result.num_pos);
    result.words = std::move(direct_words_);
    direct_words_ = {};
    direct_stride_ = 0;
  } else if (jobs_.size() == 1) {
    // A single block already has the result's plane stride.
    result.words = std::move(jobs_.front().out);
  } else if (!jobs_.empty()) {
    // Splice each job's plane-major block (stride == its own chunk count)
    // into the full-width result planes — contiguous chunk-word copies, in
    // push order, so the words are bit-identical to the single-threaded
    // packed path.
    result.words.resize(total_chunks * net_.num_pos());
    std::size_t chunk_offset = 0;
    for (const auto& job : jobs_) {
      const std::size_t job_chunks = job.inputs.num_chunks();
      detail::splice_block_planes(job.out.data(), job_chunks, result.words.data(),
                                  total_chunks, chunk_offset, net_.num_pos());
      chunk_offset += job_chunks;
    }
  }
  detail::mask_result_tail(result);

  jobs_.clear();
  chunks_dispatched_ = 0;
  pushed_ = 0;
  completed_.store(0, std::memory_order_relaxed);
  return result;
}

// ------------------------------------------------------------ session ---

std::uint64_t network_fingerprint(const mig_network& net) {
  constexpr std::uint64_t offset = 1469598103934665603ull;
  constexpr std::uint64_t prime = 1099511628211ull;
  std::uint64_t h = offset;
  const auto mix = [&](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h = (h ^ ((v >> (8 * byte)) & 0xffu)) * prime;
    }
  };
  mix(net.num_pis());
  net.foreach_node([&](node_index n) {
    mix(static_cast<std::uint64_t>(net.kind(n)));
    if (net.is_pi(n)) {
      mix(net.pi_position(n));
    }
    for (const signal f : net.fanins(n)) {
      mix((static_cast<std::uint64_t>(f.index()) << 1) |
          static_cast<std::uint64_t>(f.is_complemented()));
    }
  });
  for (const auto& po : net.pos()) {
    mix((static_cast<std::uint64_t>(po.driver.index()) << 1) |
        static_cast<std::uint64_t>(po.driver.is_complemented()));
  }
  return h;
}

std::size_t batch_session::cache_key_hash::operator()(const cache_key& k) const noexcept {
  std::uint64_t h = k.fingerprint;
  h ^= (static_cast<std::uint64_t>(k.strategy) + 1) * 0x9e3779b97f4a7c15ull;
  h ^= (static_cast<std::uint64_t>(k.phases) + 1) * 0xbf58476d1ce4e5b9ull;
  h ^= (k.scenario + 1) * 0x94d049bb133111ebull;
  h ^= (k.options + 1) * 0x2545f4914f6cdd1dull;
  return static_cast<std::size_t>(h ^ (h >> 32));
}

batch_session::batch_session(parallel_executor& executor, buffer_insertion_options options,
                             cache_limits limits, compile_options compile)
    : executor_{executor}, options_{options}, limits_{limits}, compile_options_{compile} {}

void batch_session::evict_to_limits() {
  while (!lru_.empty() &&
         ((limits_.max_entries != 0 && cache_.size() > limits_.max_entries) ||
          (limits_.max_bytes != 0 && bytes_ > limits_.max_bytes))) {
    const auto it = cache_.find(lru_.back());
    bytes_ -= it->second.bytes;
    cache_.erase(it);
    lru_.pop_back();
    ++evictions_;
  }
}

std::shared_ptr<const compiled_netlist> batch_session::compile(const mig_network& net,
                                                               unsigned phases) {
  return compile(net, phases, network_fingerprint(net));
}

std::shared_ptr<const compiled_netlist> batch_session::lookup(const cache_key& key) {
  std::lock_guard<std::mutex> lock{mutex_};
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.program;
  }
  return nullptr;
}

std::shared_ptr<const compiled_netlist> batch_session::insert(
    const cache_key& key, std::shared_ptr<const compiled_netlist> fresh) {
  std::lock_guard<std::mutex> lock{mutex_};
  ++misses_;
  const auto [it, inserted] = cache_.try_emplace(key);
  if (inserted) {
    it->second.program = std::move(fresh);
    it->second.bytes = it->second.program->memory_bytes();
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
    bytes_ += it->second.bytes;
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  }
  // Hold our own reference before eviction: when this entry alone exceeds
  // max_bytes it is evicted immediately, yet the caller's run proceeds.
  auto program = it->second.program;
  evict_to_limits();
  return program;
}

std::shared_ptr<const compiled_netlist> batch_session::compile(const mig_network& net,
                                                               unsigned phases,
                                                               std::uint64_t fingerprint) {
  return compile(net, phases, fingerprint, compile_options_);
}

std::shared_ptr<const compiled_netlist> batch_session::compile(const mig_network& net,
                                                               unsigned phases,
                                                               std::uint64_t fingerprint,
                                                               const compile_options& opts) {
  const cache_key key{fingerprint, options_.strategy, phases, 0, options_fingerprint(opts)};
  if (auto program = lookup(key)) {
    return program;
  }

  // Balance + lower + optimize outside the lock; a concurrent miss on the
  // same key compiles the identical program and the first insert wins.
  const auto balanced = insert_buffers(net, options_);
  return insert(key,
                std::make_shared<const compiled_netlist>(balanced.net, balanced.schedule, opts));
}

std::shared_ptr<const compiled_netlist> batch_session::compile(const mig_network& net,
                                                               unsigned phases,
                                                               const tech_scenario& scenario) {
  return compile(net, phases, network_fingerprint(net), scenario);
}

std::shared_ptr<const compiled_netlist> batch_session::compile(const mig_network& net,
                                                               unsigned phases,
                                                               std::uint64_t fingerprint,
                                                               const tech_scenario& scenario) {
  return compile(net, phases, fingerprint, scenario, compile_options_);
}

std::shared_ptr<const compiled_netlist> batch_session::compile(const mig_network& net,
                                                               unsigned phases,
                                                               std::uint64_t fingerprint,
                                                               const tech_scenario& scenario,
                                                               const compile_options& opts) {
  // The effective options — scenario tag and FDM lane count applied on top
  // of the session/request base — are computed *before* the key, so the
  // options fingerprint in the key always describes exactly the program
  // the entry holds.
  compile_options tagged = opts;
  tagged.scenario_fingerprint = scenario.fingerprint();
  tagged.fdm_lanes = scenario.fdm_lanes;
  const cache_key key{fingerprint, options_.strategy, phases, tagged.scenario_fingerprint,
                      options_fingerprint(tagged)};
  if (auto program = lookup(key)) {
    return program;
  }

  // Scenario preparation runs the full pipeline — fan-out restriction at
  // the scenario's capability, loss-budget repeaters, then balancing with
  // this session's strategy/schedule — and the lowered program carries the
  // scenario tag and FDM lane count in its compile options.
  pipeline_options prep;
  prep.scenario = scenario;
  prep.strategy = options_.strategy;
  prep.schedule = options_.schedule;
  auto prepared = wave_pipeline(net, prep);

  return insert(key, std::make_shared<const compiled_netlist>(prepared.net, tagged));
}

packed_wave_result batch_session::run(const mig_network& net, const wave_batch& waves,
                                      unsigned phases) {
  const auto compiled = compile(net, phases);
  return run_waves_parallel(*compiled, waves, phases, executor_);
}

packed_wave_result batch_session::run(const mig_network& net, const wave_batch& waves,
                                      unsigned phases, const tech_scenario& scenario) {
  const auto compiled = compile(net, phases, scenario);
  return run_waves_parallel(*compiled, waves, phases, executor_);
}

session_stats batch_session::stats() const {
  std::lock_guard<std::mutex> lock{mutex_};
  session_stats s{hits_, misses_, evictions_, cache_.size(), bytes_, 0, 0, 0, 0};
  for (const auto& [key, entry] : cache_) {
    s.comb_ops += entry.program->num_comb_ops();
    s.comb_slots += entry.program->comb_slot_count();
    s.comb_peak_live += entry.program->opt_stats().peak_live_slots;
    s.sched_op_moves += entry.program->opt_stats().scheduled_op_moves;
  }
  return s;
}

std::size_t batch_session::cached_netlists() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return cache_.size();
}

std::uint64_t batch_session::cache_hits() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return hits_;
}

std::uint64_t batch_session::cache_misses() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return misses_;
}

}  // namespace wavemig::engine
