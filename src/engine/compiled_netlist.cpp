#include "wavemig/engine/compiled_netlist.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "packed_kernel.hpp"

// Prefetch is a pure hint; compile it out where the builtin is unavailable.
#if defined(__GNUC__) || defined(__clang__)
#define WAVEMIG_PREFETCH(addr, rw) __builtin_prefetch((addr), (rw))
#else
#define WAVEMIG_PREFETCH(addr, rw) ((void)0)
#endif

namespace wavemig::engine {

namespace {

/// One pass of the majority program over a W-word slot block: the width
/// dispatch shared by the plane-major and chunk-major entries. W = 4 and
/// W = 8 go to the SIMD instances (AVX2 / NEON) when built in and supported
/// at runtime; every width has a fully unrolled portable kernel.
void run_ops_block(const compiled_netlist::maj_op* ops, std::size_t num_ops,
                   std::uint64_t* slots, std::size_t w) {
  switch (w) {
    case 8:
#if defined(WAVEMIG_HAVE_AVX2)
      if (detail::avx2_supported()) {
        detail::eval_ops_avx2_w8(ops, num_ops, slots);
        break;
      }
#endif
#if defined(WAVEMIG_HAVE_NEON)
      if (detail::neon_supported()) {
        detail::eval_ops_neon_w8(ops, num_ops, slots);
        break;
      }
#endif
      detail::eval_ops_portable<8>(ops, num_ops, slots);
      break;
    case 4:
#if defined(WAVEMIG_HAVE_AVX2)
      if (detail::avx2_supported()) {
        detail::eval_ops_avx2_w4(ops, num_ops, slots);
        break;
      }
#endif
#if defined(WAVEMIG_HAVE_NEON)
      if (detail::neon_supported()) {
        detail::eval_ops_neon_w4(ops, num_ops, slots);
        break;
      }
#endif
      detail::eval_ops_portable<4>(ops, num_ops, slots);
      break;
    case 7:
      detail::eval_ops_portable<7>(ops, num_ops, slots);
      break;
    case 6:
      detail::eval_ops_portable<6>(ops, num_ops, slots);
      break;
    case 5:
      detail::eval_ops_portable<5>(ops, num_ops, slots);
      break;
    case 3:
      detail::eval_ops_portable<3>(ops, num_ops, slots);
      break;
    case 2:
      detail::eval_ops_portable<2>(ops, num_ops, slots);
      break;
    default:
      detail::eval_ops_portable<1>(ops, num_ops, slots);
      break;
  }
}

/// Op-group grain of the software-pipelined kernel loop: while one group
/// computes, the next group's operand slot words are prefetched. 32 ops is
/// ~enough majority work (32*W word-lanes) to hide an L2 miss without the
/// prefetched lines aging out of L1 before their group runs.
constexpr std::size_t op_prefetch_group = 32;

/// The kernel pass of one W-word block, optionally software-pipelined
/// (compile_options::op_prefetch): the op program runs in groups of
/// `op_prefetch_group`, prefetching the next group's operand blocks while
/// the current group computes. Pays off when the slot working set outruns
/// L2 (unrecycled or very wide programs); small programs skip the group
/// loop entirely — one group would mean pure overhead.
void run_ops_block_pipelined(const compiled_netlist::maj_op* ops, std::size_t num_ops,
                             std::uint64_t* slots, std::size_t w, bool prefetch) {
  if (!prefetch || num_ops <= 2 * op_prefetch_group) {
    run_ops_block(ops, num_ops, slots, w);
    return;
  }
  for (std::size_t off = 0; off < num_ops; off += op_prefetch_group) {
    const std::size_t g = std::min(op_prefetch_group, num_ops - off);
    const std::size_t ahead = off + g;
    if (ahead < num_ops) {
      detail::prefetch_ops_operands(ops + ahead, std::min(op_prefetch_group, num_ops - ahead),
                                    slots, w);
    }
    run_ops_block(ops + off, g, slots, w);
  }
}

}  // namespace

compiled_netlist::compiled_netlist(const mig_network& net, compile_options options)
    : compiled_netlist{net, compute_levels(net), options} {}

compiled_netlist::compiled_netlist(const mig_network& net, const level_map& schedule,
                                   compile_options options) {
  if (schedule.level.size() != net.num_nodes()) {
    throw std::invalid_argument{"compiled_netlist: schedule does not match the network"};
  }
  options_ = options;
  lower(net, &schedule);
  optimize();
}

compiled_netlist compiled_netlist::comb_only(const mig_network& net, compile_options options) {
  compiled_netlist compiled;
  compiled.options_ = options;
  compiled.lower(net, nullptr);
  compiled.optimize();
  return compiled;
}

void compiled_netlist::lower(const mig_network& net, const level_map* schedule) {
  num_pis_ = static_cast<std::uint32_t>(net.num_pis());
  num_pos_ = static_cast<std::uint32_t>(net.num_pos());
  depth_ = schedule != nullptr ? schedule->depth : 0;
  tick_slot_count_ = static_cast<std::uint32_t>(net.num_nodes());

  // Combinational program: fold buffers/fan-out gates by reference
  // forwarding, so the hot loop touches majority gates only. `comb_ref[n]`
  // is the resolved slot reference of node n's regular (non-complemented)
  // output.
  std::vector<slot_ref> comb_ref(net.num_nodes(), 0);
  comb_slot_count_ = 1 + num_pis_;  // slot 0 = constant, then the PIs
  comb_ops_.clear();
  comb_ops_.reserve(net.num_majorities());
  tick_ops_.clear();
  if (schedule != nullptr) {
    tick_ops_.reserve(net.num_components());
  }
  pi_slots_.assign(num_pis_, 0);

  min_edge_span_ = std::numeric_limits<std::uint32_t>::max();
  max_edge_span_ = 0;
  bool any_edge = false;

  const auto resolve = [&](signal s) -> slot_ref {
    return comb_ref[s.index()] ^ static_cast<slot_ref>(s.is_complemented());
  };
  const auto tick_ref = [](signal s) -> slot_ref {
    return (s.index() << 1u) | static_cast<slot_ref>(s.is_complemented());
  };
  const auto note_edge = [&](node_index consumer, signal fanin) {
    if (net.is_constant(fanin.index())) {
      return;  // constant fan-ins carry no data wave
    }
    any_edge = true;
    const std::uint32_t consumer_level = (*schedule)[consumer];
    const std::uint32_t producer_level = (*schedule)[fanin.index()];
    const std::uint32_t span =
        consumer_level > producer_level ? consumer_level - producer_level : 0;
    min_edge_span_ = std::min(min_edge_span_, span);
    max_edge_span_ = std::max(max_edge_span_, span);
  };

  net.foreach_node([&](node_index n) {
    switch (net.kind(n)) {
      case node_kind::constant:
        comb_ref[n] = 0;  // slot 0, regular edge
        break;
      case node_kind::primary_input: {
        const auto position = static_cast<std::uint32_t>(net.pi_position(n));
        comb_ref[n] = (1 + position) << 1u;
        pi_slots_[position] = n;
        break;
      }
      case node_kind::majority: {
        const auto fis = net.fanins(n);
        const std::uint32_t slot = comb_slot_count_++;
        comb_ops_.push_back({slot, resolve(fis[0]), resolve(fis[1]), resolve(fis[2])});
        comb_ref[n] = slot << 1u;
        if (schedule != nullptr) {
          tick_ops_.push_back({n, tick_ref(fis[0]), tick_ref(fis[1]), tick_ref(fis[2]),
                               (*schedule)[n], tick_kind::majority});
          note_edge(n, fis[0]);
          note_edge(n, fis[1]);
          note_edge(n, fis[2]);
        }
        break;
      }
      case node_kind::buffer:
      case node_kind::fanout: {
        const signal in = net.fanins(n)[0];
        comb_ref[n] = resolve(in);
        if (schedule != nullptr) {
          tick_ops_.push_back({n, tick_ref(in), 0, 0, (*schedule)[n], tick_kind::copy});
          note_edge(n, in);
        }
        break;
      }
    }
  });

  if (schedule == nullptr) {
    min_edge_span_ = 0;  // no schedule: never wave-coherent
    max_edge_span_ = 0;
  } else if (!any_edge) {
    min_edge_span_ = 1;  // vacuous coherence (constant / PI-only networks)
    max_edge_span_ = 1;
  }

  comb_po_refs_.assign(num_pos_, 0);
  po_refs_.assign(num_pos_, 0);
  po_levels_.assign(num_pos_, 0);
  po_constant_.assign(num_pos_, false);
  for (std::size_t p = 0; p < num_pos_; ++p) {
    const signal driver = net.po_signal(p);
    comb_po_refs_[p] = resolve(driver);
    po_refs_[p] = tick_ref(driver);
    po_levels_[p] = schedule != nullptr ? (*schedule)[driver.index()] : 0;
    po_constant_[p] = net.is_constant(driver.index());
  }
}

std::size_t compiled_netlist::memory_bytes() const {
  const auto vec_bytes = [](const auto& v) { return v.capacity() * sizeof(v[0]); };
  return sizeof(*this) + vec_bytes(comb_ops_) + vec_bytes(comb_po_refs_) +
         vec_bytes(tick_ops_) + vec_bytes(pi_slots_) + vec_bytes(po_refs_) +
         vec_bytes(po_levels_) + (po_constant_.capacity() + 7) / 8;
}

void compiled_netlist::eval_words_into(const std::uint64_t* pi_words, std::uint64_t* po_words,
                                       std::vector<std::uint64_t>& slots) const {
  slots.resize(comb_slot_count_);
  slots[0] = 0;
  std::copy(pi_words, pi_words + num_pis_, slots.begin() + 1);
  detail::eval_ops_portable<1>(comb_ops_.data(), comb_ops_.size(), slots.data());
  for (std::size_t p = 0; p < num_pos_; ++p) {
    const slot_ref ref = comb_po_refs_[p];
    po_words[p] = slots[ref >> 1] ^ complement_mask(ref);
  }
}

void compiled_netlist::eval_planes_block(const std::uint64_t* pi_planes, std::size_t pi_stride,
                                         std::uint64_t* po_planes, std::size_t po_stride,
                                         std::size_t num_chunks,
                                         std::vector<std::uint64_t>& slots) const {
  for (std::size_t done = 0; done < num_chunks;) {
    const std::size_t w = std::min(max_block_chunks, num_chunks - done);

    // Slot-major W-word blocks: slot s occupies slots[s*w .. s*w + w).
    slots.resize(static_cast<std::size_t>(comb_slot_count_) * w);
    std::uint64_t* s = slots.data();
    std::fill(s, s + w, 0);  // constant slot
    const bool more = done + w < num_chunks;
    for (std::size_t i = 0; i < num_pis_; ++i) {
      const std::uint64_t* src = pi_planes + i * pi_stride + done;
      // Each plane contributes one cache line per block, a full plane
      // stride apart from its neighbors — too many streams for hardware
      // prefetchers to track, so the next block's line is requested here,
      // with a whole kernel pass of latency to hide behind.
      if (more) {
        WAVEMIG_PREFETCH(src + w, 0);
      }
      // Plane-major input: the block's W words of PI i are already adjacent.
      // A plain loop, not memcpy — the runtime-sized call would cost more
      // than the 64-byte copy itself, per PI per block.
      std::uint64_t* dst = s + (1 + i) * w;
      for (std::size_t j = 0; j < w; ++j) {
        dst[j] = src[j];
      }
    }

    run_ops_block_pipelined(comb_ops_.data(), comb_ops_.size(), s, w, options_.op_prefetch);

    for (std::size_t p = 0; p < num_pos_; ++p) {
      const slot_ref ref = comb_po_refs_[p];
      const std::uint64_t* out_slot = s + static_cast<std::size_t>(ref >> 1) * w;
      const std::uint64_t mask = complement_mask(ref);
      std::uint64_t* dst = po_planes + p * po_stride + done;
      if (more) {
        WAVEMIG_PREFETCH(dst + w, 1);
      }
      for (std::size_t j = 0; j < w; ++j) {
        dst[j] = out_slot[j] ^ mask;  // unit stride, no scatter
      }
    }
    done += w;
  }
}

void compiled_netlist::eval_words_block(const std::uint64_t* pi_words,
                                        std::uint64_t* po_words, std::size_t num_chunks,
                                        std::vector<std::uint64_t>& slots) const {
  for (std::size_t done = 0; done < num_chunks;) {
    const std::size_t w = std::min(max_block_chunks, num_chunks - done);
    const std::uint64_t* pi = pi_words + done * num_pis_;
    std::uint64_t* po = po_words + done * num_pos_;

    // Slot-major W-word blocks: slot s occupies slots[s*w .. s*w + w).
    slots.resize(static_cast<std::size_t>(comb_slot_count_) * w);
    std::uint64_t* s = slots.data();
    std::fill(s, s + w, 0);  // constant slot
    for (std::size_t i = 0; i < num_pis_; ++i) {
      std::uint64_t* pi_slot = s + (1 + i) * w;
      for (std::size_t j = 0; j < w; ++j) {
        pi_slot[j] = pi[j * num_pis_ + i];  // gather: chunk-major -> slot-major
      }
    }

    run_ops_block(comb_ops_.data(), comb_ops_.size(), s, w);

    for (std::size_t p = 0; p < num_pos_; ++p) {
      const slot_ref ref = comb_po_refs_[p];
      const std::uint64_t* out_slot = s + static_cast<std::size_t>(ref >> 1) * w;
      const std::uint64_t mask = complement_mask(ref);
      for (std::size_t j = 0; j < w; ++j) {
        po[j * num_pos_ + p] = out_slot[j] ^ mask;  // scatter back to chunk-major
      }
    }
    done += w;
  }
}

std::vector<std::uint64_t> compiled_netlist::eval_words(
    const std::vector<std::uint64_t>& pi_words) const {
  if (pi_words.size() != num_pis_) {
    throw std::invalid_argument{"compiled_netlist: one word per primary input required"};
  }
  std::vector<std::uint64_t> po_words(num_pos_);
  std::vector<std::uint64_t> slots;
  eval_words_into(pi_words.data(), po_words.data(), slots);
  return po_words;
}

}  // namespace wavemig::engine
