#pragma once

// Internal kernel interface between the portable block evaluator
// (compiled_netlist.cpp) and the SIMD translation units (kernel_avx2.cpp,
// compiled with -mavx2 behind the WAVEMIG_ENABLE_AVX2 CMake option, and
// kernel_neon.cpp behind WAVEMIG_ENABLE_NEON on arm64). Not installed;
// nothing outside src/engine includes this.
//
// Slot layout of a W-word block: `slots[s * W + j]` is word j (= chunk j of
// the block) of value slot s. Every kernel reads all three operand words of
// a lane before storing that lane, which is what makes the slot-recycling
// optimizer's operand-overwriting targets safe.

#include <cstddef>
#include <cstdint>

#include "wavemig/engine/compiled_netlist.hpp"

namespace wavemig::engine::detail {

/// Portable unrolled kernel: evaluates `num_ops` majority ops over W-word
/// slot blocks. W is a compile-time constant so the inner loop fully
/// unrolls (and auto-vectorizes where the target allows).
template <std::size_t W>
void eval_ops_portable(const compiled_netlist::maj_op* ops, std::size_t num_ops,
                       std::uint64_t* slots) {
  for (std::size_t i = 0; i < num_ops; ++i) {
    const auto& o = ops[i];
    const std::uint64_t* a = slots + static_cast<std::size_t>(o.a >> 1) * W;
    const std::uint64_t* b = slots + static_cast<std::size_t>(o.b >> 1) * W;
    const std::uint64_t* c = slots + static_cast<std::size_t>(o.c >> 1) * W;
    std::uint64_t* t = slots + static_cast<std::size_t>(o.target) * W;
    const std::uint64_t ma = complement_mask(o.a);
    const std::uint64_t mb = complement_mask(o.b);
    const std::uint64_t mc = complement_mask(o.c);
    for (std::size_t j = 0; j < W; ++j) {
      const std::uint64_t av = a[j] ^ ma;
      const std::uint64_t bv = b[j] ^ mb;
      const std::uint64_t cv = c[j] ^ mc;
      t[j] = (av & (bv | cv)) | (bv & cv);  // 4-op majority
    }
  }
}

/// Prefetch hint over an op group's operand slot words — the software-
/// pipelining half of `eval_planes_block`: while the kernel computes group
/// k, the operand word-blocks of group k+1 are requested here, with a whole
/// group of majority work to hide the miss latency behind. A pure hint (the
/// loads are issued for side effect only), compiled out where the builtin
/// is unavailable; gated at the call site by compile_options::op_prefetch.
inline void prefetch_ops_operands(const compiled_netlist::maj_op* ops, std::size_t num_ops,
                                  const std::uint64_t* slots, std::size_t w) {
#if defined(__GNUC__) || defined(__clang__)
  for (std::size_t i = 0; i < num_ops; ++i) {
    const auto& o = ops[i];
    __builtin_prefetch(slots + static_cast<std::size_t>(o.a >> 1) * w, 0);
    __builtin_prefetch(slots + static_cast<std::size_t>(o.b >> 1) * w, 0);
    __builtin_prefetch(slots + static_cast<std::size_t>(o.c >> 1) * w, 0);
  }
#else
  (void)ops;
  (void)num_ops;
  (void)slots;
  (void)w;
#endif
}

#if defined(WAVEMIG_HAVE_AVX2)
/// True when the running CPU supports AVX2 (checked once).
bool avx2_supported();

/// AVX2 kernels over 4- and 8-word slot blocks (one / two __m256i lanes per
/// slot). Bit-identical to eval_ops_portable<4|8>.
void eval_ops_avx2_w4(const compiled_netlist::maj_op* ops, std::size_t num_ops,
                      std::uint64_t* slots);
void eval_ops_avx2_w8(const compiled_netlist::maj_op* ops, std::size_t num_ops,
                      std::uint64_t* slots);
#endif

#if defined(WAVEMIG_HAVE_NEON)
/// True when the running CPU supports NEON/ASIMD. On AArch64 it is part of
/// the baseline ISA, so this is a constant — kept as a function to mirror
/// the AVX2 dispatch shape.
bool neon_supported();

/// NEON kernels over 4- and 8-word slot blocks (two / four uint64x2_t lanes
/// per slot). Bit-identical to eval_ops_portable<4|8>.
void eval_ops_neon_w4(const compiled_netlist::maj_op* ops, std::size_t num_ops,
                      std::uint64_t* slots);
void eval_ops_neon_w8(const compiled_netlist::maj_op* ops, std::size_t num_ops,
                      std::uint64_t* slots);
#endif

}  // namespace wavemig::engine::detail
