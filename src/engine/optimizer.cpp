#include <algorithm>
#include <array>
#include <unordered_map>
#include <utility>
#include <vector>

#include "wavemig/engine/compiled_netlist.hpp"

// Post-lowering optimizer over the combinational program (see
// engine/optimizer.hpp for the pass catalogue and level semantics). The
// tick program is deliberately untouched: its job is cycle-accurate wave
// semantics, including interference, and removing "redundant" physical
// components would change what it models. Every pass here preserves the
// combinational function of every primary output bit-for-bit, which the
// differential test suite enforces across all execution paths.

namespace wavemig::engine {

namespace {

/// A constant reference: slot 0 with the complement bit selecting the value.
constexpr bool is_const(slot_ref r) { return (r >> 1) == 0; }

struct triple_hash {
  std::size_t operator()(const std::array<slot_ref, 3>& key) const noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const slot_ref r : key) {
      h ^= r + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      h *= 0xff51afd7ed558ccdull;
    }
    return static_cast<std::size_t>(h ^ (h >> 33));
  }
};

void sort3(slot_ref& a, slot_ref& b, slot_ref& c) {
  if (a > b) std::swap(a, b);
  if (b > c) std::swap(b, c);
  if (a > b) std::swap(a, b);
}

/// Tries to fold M(a, b, c) (refs sorted ascending) to a single reference:
/// the functional reductions M(x,x,y) = x and M(x,!x,y) = y, which also
/// subsume every constant instance (M(0,1,y) = y, M(0,0,y) = 0, ...) since
/// constants are the refs 0 and 1. Returns true and sets `out` on success.
bool fold_majority(slot_ref a, slot_ref b, slot_ref c, slot_ref& out) {
  if (a == b || (a ^ 1u) == b) {
    out = a == b ? a : c;
    return true;
  }
  if (b == c || (b ^ 1u) == c) {
    out = b == c ? b : a;
    return true;
  }
  return false;
}

}  // namespace

void compiled_netlist::optimize(unsigned opt_level) {
  opt_stats_ = {};
  opt_stats_.ops_before = comb_ops_.size();
  opt_stats_.slots_before = comb_slot_count_;
  opt_stats_.ops_after = comb_ops_.size();
  opt_stats_.slots_after = comb_slot_count_;
  if (opt_level == 0) {
    return;
  }

  const std::uint32_t fixed = 1 + num_pis_;  // constant slot + PI slots

  // ---- constant propagation + structural hashing (CSE), one forward walk.
  // `fwd[s]` maps the old slot of a producer to its optimized reference;
  // ops are in topological order, so operands always resolve through ops
  // already visited.
  std::vector<slot_ref> fwd(comb_slot_count_, 0);
  for (std::uint32_t s = 0; s < fixed; ++s) {
    fwd[s] = s << 1u;
  }
  std::unordered_map<std::array<slot_ref, 3>, slot_ref, triple_hash> structural;
  structural.reserve(comb_ops_.size());
  std::vector<maj_op> kept;
  kept.reserve(comb_ops_.size());

  for (const auto& o : comb_ops_) {
    slot_ref a = fwd[o.a >> 1] ^ (o.a & 1u);
    slot_ref b = fwd[o.b >> 1] ^ (o.b & 1u);
    slot_ref c = fwd[o.c >> 1] ^ (o.c & 1u);
    sort3(a, b, c);

    if (slot_ref folded = 0; fold_majority(a, b, c, folded)) {
      fwd[o.target] = folded;
      ++opt_stats_.constants_folded;
      continue;
    }

    // Canonical polarity under self-duality: M(!a,!b,!c) = !M(a,b,c) — at
    // most one complemented operand, the flip carried on the output edge.
    slot_ref out_complement = 0;
    if ((a & 1u) + (b & 1u) + (c & 1u) >= 2) {
      a ^= 1u;
      b ^= 1u;
      c ^= 1u;
      out_complement = 1u;
      sort3(a, b, c);
    }

    const std::array<slot_ref, 3> key{a, b, c};
    if (const auto it = structural.find(key); it != structural.end()) {
      fwd[o.target] = it->second ^ out_complement;
      ++opt_stats_.cse_hits;
      continue;
    }
    kept.push_back({o.target, a, b, c});
    structural.emplace(key, o.target << 1u);
    fwd[o.target] = (o.target << 1u) ^ out_complement;
  }
  for (auto& ref : comb_po_refs_) {
    ref = fwd[ref >> 1] ^ (ref & 1u);
  }

  // ---- dead-op elimination from the PO cone. A backward sweep over the
  // topologically ordered survivors: an op is live iff its target feeds a
  // PO or a live consumer — this also collects the cones orphaned by the
  // folding and CSE above.
  std::vector<std::uint8_t> live(comb_slot_count_, 0);
  for (const slot_ref ref : comb_po_refs_) {
    live[ref >> 1] = 1;
  }
  for (std::size_t i = kept.size(); i-- > 0;) {
    const auto& o = kept[i];
    if (!live[o.target]) {
      continue;
    }
    live[o.a >> 1] = 1;
    live[o.b >> 1] = 1;
    live[o.c >> 1] = 1;
  }
  const std::size_t before_dce = kept.size();
  std::erase_if(kept, [&](const maj_op& o) { return !live[o.target]; });
  opt_stats_.dead_ops_removed = before_dce - kept.size();

  // ---- slot assignment. Targets still carry their raw-lowering slot ids,
  // so the folded/CSE'd/dead holes must be compacted either way:
  //
  // * opt level 1 — dense renumbering, one slot per surviving op.
  // * opt level 2 — liveness-based recycling: a linear scan frees each
  //   slot at its last use and reuses it for later targets, shrinking the
  //   working set to the program's peak liveness. Freeing an op's operands
  //   *before* allocating its target lets a gate overwrite its own last-use
  //   operand in place (the kernels read all three words of a lane before
  //   storing that lane).
  const std::size_t n = kept.size();
  std::vector<std::uint32_t> rename(comb_slot_count_, 0);
  for (std::uint32_t s = 0; s < fixed; ++s) {
    rename[s] = s;
  }
  std::uint32_t next = fixed;

  if (opt_level >= 2) {
    constexpr std::size_t used_by_po = ~std::size_t{0};
    std::vector<std::size_t> last_use(comb_slot_count_, 0);
    for (std::size_t i = 0; i < n; ++i) {
      last_use[kept[i].a >> 1] = i;
      last_use[kept[i].b >> 1] = i;
      last_use[kept[i].c >> 1] = i;
    }
    for (const slot_ref ref : comb_po_refs_) {
      last_use[ref >> 1] = used_by_po;
    }
    std::vector<std::uint32_t> free_slots;
    std::vector<std::uint8_t> freed(comb_slot_count_, 0);
    for (std::size_t i = 0; i < n; ++i) {
      auto& o = kept[i];
      const std::uint32_t operands[3] = {o.a >> 1, o.b >> 1, o.c >> 1};
      o.a = (rename[operands[0]] << 1u) | (o.a & 1u);
      o.b = (rename[operands[1]] << 1u) | (o.b & 1u);
      o.c = (rename[operands[2]] << 1u) | (o.c & 1u);
      for (const std::uint32_t s : operands) {
        if (s >= fixed && last_use[s] == i && !freed[s]) {
          freed[s] = 1;
          free_slots.push_back(rename[s]);
        }
      }
      std::uint32_t target = 0;
      if (free_slots.empty()) {
        target = next++;
      } else {
        target = free_slots.back();
        free_slots.pop_back();
      }
      rename[o.target] = target;
      o.target = target;
    }
    opt_stats_.peak_live_slots = next - fixed;
  } else {
    for (auto& o : kept) {
      o.a = (rename[o.a >> 1] << 1u) | (o.a & 1u);
      o.b = (rename[o.b >> 1] << 1u) | (o.b & 1u);
      o.c = (rename[o.c >> 1] << 1u) | (o.c & 1u);
      rename[o.target] = next++;
      o.target = rename[o.target];
    }
  }
  for (auto& ref : comb_po_refs_) {
    ref = (rename[ref >> 1] << 1u) | (ref & 1u);
  }

  comb_ops_ = std::move(kept);
  comb_ops_.shrink_to_fit();
  comb_slot_count_ = next;
  opt_stats_.ops_after = comb_ops_.size();
  opt_stats_.slots_after = comb_slot_count_;
}

}  // namespace wavemig::engine
