#include <algorithm>
#include <array>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "wavemig/engine/compiled_netlist.hpp"

// Post-lowering optimizer over the combinational program (see
// engine/optimizer.hpp for the pass catalogue and level semantics). The
// tick program is deliberately untouched: its job is cycle-accurate wave
// semantics, including interference, and removing "redundant" physical
// components would change what it models. Every pass here preserves the
// combinational function of every primary output bit-for-bit, which the
// differential test suite enforces across all execution paths.

namespace wavemig::engine {

namespace {

using maj_op = compiled_netlist::maj_op;

/// A constant reference: slot 0 with the complement bit selecting the value.
constexpr bool is_const(slot_ref r) { return (r >> 1) == 0; }

struct triple_hash {
  std::size_t operator()(const std::array<slot_ref, 3>& key) const noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const slot_ref r : key) {
      h ^= r + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      h *= 0xff51afd7ed558ccdull;
    }
    return static_cast<std::size_t>(h ^ (h >> 33));
  }
};

void sort3(slot_ref& a, slot_ref& b, slot_ref& c) {
  if (a > b) std::swap(a, b);
  if (b > c) std::swap(b, c);
  if (a > b) std::swap(a, b);
}

/// Tries to fold M(a, b, c) (refs sorted ascending) to a single reference:
/// the functional reductions M(x,x,y) = x and M(x,!x,y) = y, which also
/// subsume every constant instance (M(0,1,y) = y, M(0,0,y) = 0, ...) since
/// constants are the refs 0 and 1. Returns true and sets `out` on success.
bool fold_majority(slot_ref a, slot_ref b, slot_ref c, slot_ref& out) {
  if (a == b || (a ^ 1u) == b) {
    out = a == b ? a : c;
    return true;
  }
  if (b == c || (b ^ 1u) == c) {
    out = b == c ? b : a;
    return true;
  }
  return false;
}

/// Topological list scheduler (compile_options::schedule_level >= 1):
/// reorders the combinational program to shorten live ranges, greedily
/// minimizing liveness. At every step the scheduler picks, among the ready
/// ops (all operands produced), one that *kills* the most operand values —
/// an operand dies when this op is its last remaining consumer and no PO
/// reads it — so values are consumed as close to their birth as the
/// dependences allow and the slot recycler's free list stays shallow. Run
/// *before* slot recycling, that is exactly what drops peak liveness and
/// therefore `comb_slots` at opt level >= 2.
///
/// Ties between equal-kill candidates:
///
/// * level 1 — original program order (stable, deterministic).
/// * level 2 — ILP-aware: among max-kill candidates (in original order),
///   prefer one that does NOT read a value produced by the last two
///   scheduled ops. A consumer placed right behind its producer serializes
///   the word kernel on store-to-load forwarding; preferring an independent
///   neighbor restores the instruction-level parallelism that the original
///   level-major order had for free. Falls back to original order.
///
/// Dead ops (possible at opt level 0, where no DCE ran) participate like
/// any other op — every op is scheduled exactly once and operands always
/// precede their consumers, so the result is topologically valid by
/// construction. Returns the number of ops that changed program position.
std::size_t schedule_comb_ops(std::vector<maj_op>& ops, const std::vector<slot_ref>& po_refs,
                              std::uint32_t slot_count, unsigned schedule_level) {
  const std::size_t n = ops.size();
  if (n < 2) {
    return 0;
  }
  constexpr std::uint32_t npos = ~std::uint32_t{0};
  std::vector<std::uint32_t> producer(slot_count, npos);
  for (std::uint32_t i = 0; i < n; ++i) {
    producer[ops[i].target] = i;
  }
  std::vector<std::uint8_t> po_used(n, 0);
  for (const slot_ref ref : po_refs) {
    if (const std::uint32_t p = producer[ref >> 1]; p != npos) {
      po_used[p] = 1;
    }
  }

  // Dependence graph over op indices: per op its distinct producer ops
  // (gate operands only — constants and PIs are always available and never
  // die), and per producer its distinct consumer ops.
  std::vector<std::array<std::uint32_t, 3>> operand_ops(n);
  std::vector<std::uint8_t> num_operand_ops(n, 0);
  std::vector<std::uint32_t> indegree(n, 0);
  std::vector<std::uint32_t> remaining_uses(n, 0);  // unscheduled consumers of op's value
  std::vector<std::uint32_t> consumer_head(n, npos);
  std::vector<std::uint32_t> consumer_next;  // linked per-producer consumer lists
  std::vector<std::uint32_t> consumer_op;
  consumer_next.reserve(3 * n);
  consumer_op.reserve(3 * n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto& dist = operand_ops[i];
    for (const slot_ref ref : {ops[i].a, ops[i].b, ops[i].c}) {
      const std::uint32_t p = producer[ref >> 1];
      if (p == npos) {
        continue;
      }
      bool seen = false;
      for (std::uint8_t k = 0; k < num_operand_ops[i]; ++k) {
        seen = seen || dist[k] == p;
      }
      if (seen) {
        continue;
      }
      dist[num_operand_ops[i]++] = p;
      ++indegree[i];
      ++remaining_uses[p];
      consumer_op.push_back(i);
      consumer_next.push_back(consumer_head[p]);
      consumer_head[p] = static_cast<std::uint32_t>(consumer_op.size() - 1);
    }
  }

  // kills[i] = operand values that die the moment op i runs: their producer
  // has exactly one unscheduled consumer left (op i) and no PO reads them.
  // Maintained incrementally — each producer transitions to
  // remaining_uses == 1 at most once.
  std::vector<std::uint8_t> kills(n, 0);
  std::vector<std::uint8_t> scheduled_flag(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint8_t k = 0; k < num_operand_ops[i]; ++k) {
      const std::uint32_t p = operand_ops[i][k];
      kills[i] += remaining_uses[p] == 1 && !po_used[p] ? 1 : 0;
    }
  }

  // Ready ops bucketed by kill count, each bucket ordered by original op
  // index (the level-1 tie-break). A fifth pseudo-bucket would never be
  // reached: an op kills at most its 3 operands.
  std::array<std::set<std::uint32_t>, 4> buckets;
  const auto bucket_of = [&](std::uint32_t i) { return std::min<std::uint8_t>(kills[i], 3); };
  for (std::uint32_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) {
      buckets[bucket_of(i)].insert(i);
    }
  }

  // Recently produced values, newest first — the level-2 chaining hint.
  std::array<std::uint32_t, 4> recent{npos, npos, npos, npos};

  std::vector<maj_op> result;
  result.reserve(n);
  for (std::size_t emitted = 0; emitted < n; ++emitted) {
    int best = 3;
    while (buckets[best].empty()) {
      --best;  // never underflows: unscheduled ops exist, so some op is ready
    }
    std::uint32_t pick = npos;
    if (schedule_level >= 2) {
      // Among max-kill candidates (scanned in original order), prefer one
      // that does not consume a value produced by the last two scheduled
      // ops: a consumer scheduled right behind its producer serializes the
      // kernel on store-to-load forwarding, while an independent op keeps
      // the word loop's instruction-level parallelism. Bounded scan — the
      // bucket head is a fine fallback.
      int scanned = 0;
      for (auto it = buckets[best].begin(); it != buckets[best].end() && scanned < 8;
           ++it, ++scanned) {
        const std::uint32_t c = *it;
        bool depends_on_recent = false;
        for (std::uint8_t k = 0; k < num_operand_ops[c]; ++k) {
          depends_on_recent = depends_on_recent || operand_ops[c][k] == recent[0] ||
                              operand_ops[c][k] == recent[1];
        }
        if (!depends_on_recent) {
          pick = c;
          break;
        }
      }
    }
    if (pick == npos) {
      pick = *buckets[best].begin();
    }
    buckets[bucket_of(pick)].erase(pick);
    scheduled_flag[pick] = 1;
    result.push_back(ops[pick]);

    for (std::uint8_t k = 0; k < num_operand_ops[pick]; ++k) {
      const std::uint32_t p = operand_ops[pick][k];
      if (--remaining_uses[p] == 1 && !po_used[p]) {
        // The one unscheduled consumer left gains a kill; re-bucket it if
        // it is already ready.
        for (std::uint32_t e = consumer_head[p]; e != npos; e = consumer_next[e]) {
          const std::uint32_t c = consumer_op[e];
          if (scheduled_flag[c]) {
            continue;
          }
          if (indegree[c] == 0) {
            buckets[bucket_of(c)].erase(c);
            ++kills[c];
            buckets[bucket_of(c)].insert(c);
          } else {
            ++kills[c];
          }
          break;
        }
      }
    }
    for (std::uint32_t e = consumer_head[pick]; e != npos; e = consumer_next[e]) {
      const std::uint32_t c = consumer_op[e];
      if (--indegree[c] == 0) {
        buckets[bucket_of(c)].insert(c);
      }
    }
    for (std::size_t r = recent.size() - 1; r > 0; --r) {
      recent[r] = recent[r - 1];
    }
    recent[0] = pick;
  }

  std::size_t moves = 0;
  for (std::size_t i = 0; i < n; ++i) {
    moves += result[i].target != ops[i].target ? 1 : 0;
  }
  ops = std::move(result);
  return moves;
}

/// Measured peak liveness of a program order: the maximum number of gate
/// values simultaneously live, counting a value from its defining op until
/// its last consuming op (PO-referenced values never die). Mirrors the slot
/// recycler's free-before-allocate accounting exactly, so at opt level >= 2
/// `slots_after - fixed` equals this number.
std::size_t measure_peak_liveness(const std::vector<maj_op>& ops,
                                  const std::vector<slot_ref>& po_refs,
                                  std::uint32_t slot_count, std::uint32_t fixed) {
  const std::size_t n = ops.size();
  constexpr std::size_t used_by_po = ~std::size_t{0};
  std::vector<std::size_t> last_use(slot_count, 0);
  for (std::size_t i = 0; i < n; ++i) {
    last_use[ops[i].a >> 1] = i;
    last_use[ops[i].b >> 1] = i;
    last_use[ops[i].c >> 1] = i;
  }
  for (const slot_ref ref : po_refs) {
    last_use[ref >> 1] = used_by_po;
  }
  std::vector<std::uint8_t> dead(slot_count, 0);
  std::size_t live = 0;
  std::size_t peak = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (const slot_ref ref : {ops[i].a, ops[i].b, ops[i].c}) {
      const std::uint32_t s = ref >> 1;
      if (s >= fixed && last_use[s] == i && !dead[s]) {
        dead[s] = 1;
        --live;
      }
    }
    ++live;  // the target is born (and stays live forever if never used)
    peak = std::max(peak, live);
  }
  return peak;
}

}  // namespace

void compiled_netlist::optimize() {
  const unsigned opt_level = options_.opt_level;
  const unsigned schedule_level = options_.schedule_level;
  opt_stats_ = {};
  opt_stats_.ops_before = comb_ops_.size();
  opt_stats_.slots_before = comb_slot_count_;
  opt_stats_.ops_after = comb_ops_.size();
  opt_stats_.slots_after = comb_slot_count_;
  if (opt_level == 0 && schedule_level == 0) {
    return;
  }

  const std::uint32_t fixed = 1 + num_pis_;  // constant slot + PI slots
  std::vector<maj_op> kept;

  if (opt_level >= 1) {
    // ---- constant propagation + structural hashing (CSE), one forward
    // walk. `fwd[s]` maps the old slot of a producer to its optimized
    // reference; ops are in topological order, so operands always resolve
    // through ops already visited.
    std::vector<slot_ref> fwd(comb_slot_count_, 0);
    for (std::uint32_t s = 0; s < fixed; ++s) {
      fwd[s] = s << 1u;
    }
    std::unordered_map<std::array<slot_ref, 3>, slot_ref, triple_hash> structural;
    structural.reserve(comb_ops_.size());
    kept.reserve(comb_ops_.size());

    for (const auto& o : comb_ops_) {
      slot_ref a = fwd[o.a >> 1] ^ (o.a & 1u);
      slot_ref b = fwd[o.b >> 1] ^ (o.b & 1u);
      slot_ref c = fwd[o.c >> 1] ^ (o.c & 1u);
      sort3(a, b, c);

      if (slot_ref folded = 0; fold_majority(a, b, c, folded)) {
        fwd[o.target] = folded;
        ++opt_stats_.constants_folded;
        continue;
      }

      // Canonical polarity under self-duality: M(!a,!b,!c) = !M(a,b,c) — at
      // most one complemented operand, the flip carried on the output edge.
      slot_ref out_complement = 0;
      if ((a & 1u) + (b & 1u) + (c & 1u) >= 2) {
        a ^= 1u;
        b ^= 1u;
        c ^= 1u;
        out_complement = 1u;
        sort3(a, b, c);
      }

      const std::array<slot_ref, 3> key{a, b, c};
      if (const auto it = structural.find(key); it != structural.end()) {
        fwd[o.target] = it->second ^ out_complement;
        ++opt_stats_.cse_hits;
        continue;
      }
      kept.push_back({o.target, a, b, c});
      structural.emplace(key, o.target << 1u);
      fwd[o.target] = (o.target << 1u) ^ out_complement;
    }
    for (auto& ref : comb_po_refs_) {
      ref = fwd[ref >> 1] ^ (ref & 1u);
    }

    // ---- dead-op elimination from the PO cone. A backward sweep over the
    // topologically ordered survivors: an op is live iff its target feeds a
    // PO or a live consumer — this also collects the cones orphaned by the
    // folding and CSE above.
    std::vector<std::uint8_t> live(comb_slot_count_, 0);
    for (const slot_ref ref : comb_po_refs_) {
      live[ref >> 1] = 1;
    }
    for (std::size_t i = kept.size(); i-- > 0;) {
      const auto& o = kept[i];
      if (!live[o.target]) {
        continue;
      }
      live[o.a >> 1] = 1;
      live[o.b >> 1] = 1;
      live[o.c >> 1] = 1;
    }
    const std::size_t before_dce = kept.size();
    std::erase_if(kept, [&](const maj_op& o) { return !live[o.target]; });
    opt_stats_.dead_ops_removed = before_dce - kept.size();
  } else {
    // Scheduling without the optimizer passes: reorder the raw lowering.
    kept = comb_ops_;
  }

  // ---- op scheduling, before slot assignment so the recycler's linear
  // scan runs over the reordered (cone-clustered) live ranges.
  if (schedule_level >= 1) {
    opt_stats_.scheduled_op_moves =
        schedule_comb_ops(kept, comb_po_refs_, comb_slot_count_, schedule_level);
  }
  opt_stats_.peak_live_slots =
      measure_peak_liveness(kept, comb_po_refs_, comb_slot_count_, fixed);

  // ---- slot assignment. Targets still carry their raw-lowering slot ids,
  // so the folded/CSE'd/dead holes must be compacted either way:
  //
  // * opt level 0 — targets keep their raw ids (only the order changed).
  // * opt level 1 — dense renumbering, one slot per surviving op.
  // * opt level 2 — liveness-based recycling: a linear scan frees each
  //   slot at its last use and reuses it for later targets, shrinking the
  //   working set to the program's peak liveness. Freeing an op's operands
  //   *before* allocating its target lets a gate overwrite its own last-use
  //   operand in place (the kernels read all three words of a lane before
  //   storing that lane).
  if (opt_level >= 1) {
    const std::size_t n = kept.size();
    std::vector<std::uint32_t> rename(comb_slot_count_, 0);
    for (std::uint32_t s = 0; s < fixed; ++s) {
      rename[s] = s;
    }
    std::uint32_t next = fixed;

    if (opt_level >= 2) {
      constexpr std::size_t used_by_po = ~std::size_t{0};
      std::vector<std::size_t> last_use(comb_slot_count_, 0);
      for (std::size_t i = 0; i < n; ++i) {
        last_use[kept[i].a >> 1] = i;
        last_use[kept[i].b >> 1] = i;
        last_use[kept[i].c >> 1] = i;
      }
      for (const slot_ref ref : comb_po_refs_) {
        last_use[ref >> 1] = used_by_po;
      }
      std::vector<std::uint32_t> free_slots;
      std::vector<std::uint8_t> freed(comb_slot_count_, 0);
      for (std::size_t i = 0; i < n; ++i) {
        auto& o = kept[i];
        const std::uint32_t operands[3] = {o.a >> 1, o.b >> 1, o.c >> 1};
        o.a = (rename[operands[0]] << 1u) | (o.a & 1u);
        o.b = (rename[operands[1]] << 1u) | (o.b & 1u);
        o.c = (rename[operands[2]] << 1u) | (o.c & 1u);
        for (const std::uint32_t s : operands) {
          if (s >= fixed && last_use[s] == i && !freed[s]) {
            freed[s] = 1;
            free_slots.push_back(rename[s]);
          }
        }
        std::uint32_t target = 0;
        if (free_slots.empty()) {
          target = next++;
        } else {
          target = free_slots.back();
          free_slots.pop_back();
        }
        rename[o.target] = target;
        o.target = target;
      }
    } else {
      for (auto& o : kept) {
        o.a = (rename[o.a >> 1] << 1u) | (o.a & 1u);
        o.b = (rename[o.b >> 1] << 1u) | (o.b & 1u);
        o.c = (rename[o.c >> 1] << 1u) | (o.c & 1u);
        rename[o.target] = next++;
        o.target = rename[o.target];
      }
    }
    for (auto& ref : comb_po_refs_) {
      ref = (rename[ref >> 1] << 1u) | (ref & 1u);
    }
    comb_slot_count_ = next;
  }

  comb_ops_ = std::move(kept);
  comb_ops_.shrink_to_fit();
  opt_stats_.ops_after = comb_ops_.size();
  opt_stats_.slots_after = comb_slot_count_;
}

}  // namespace wavemig::engine
