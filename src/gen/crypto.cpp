#include "wavemig/gen/crypto.hpp"

#include <random>
#include <stdexcept>
#include <vector>

#include "wavemig/gen/arith.hpp"
#include "wavemig/synthesis.hpp"
#include "wavemig/truth_table.hpp"

namespace wavemig::gen {

namespace {

using sbox_table = std::array<std::array<std::uint8_t, 16>, 4>;

// FIPS 46-3 substitution boxes S1..S8.
constexpr std::array<sbox_table, 8> des_sboxes{{
    {{{14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7},
      {0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8},
      {4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0},
      {15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13}}},
    {{{15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10},
      {3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5},
      {0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15},
      {13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9}}},
    {{{10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8},
      {13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1},
      {13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7},
      {1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12}}},
    {{{7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15},
      {13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9},
      {10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4},
      {3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14}}},
    {{{2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9},
      {14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6},
      {4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14},
      {11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3}}},
    {{{12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11},
      {10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8},
      {9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6},
      {4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13}}},
    {{{4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1},
      {13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6},
      {1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2},
      {6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12}}},
    {{{13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7},
      {1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2},
      {7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8},
      {2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11}}},
}};

// DES expansion table E (1-based bit positions of R).
constexpr std::array<std::uint8_t, 48> des_expansion{
    32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,  8,  9,  10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1};

// DES permutation P (1-based positions of the S-box output).
constexpr std::array<std::uint8_t, 32> des_permutation{
    16, 7, 20, 21, 29, 12, 28, 17, 1,  15, 23, 26, 5,  18, 31, 10,
    2,  8, 24, 14, 32, 27, 3,  9,  19, 13, 30, 6,  22, 11, 4,  25};

}  // namespace

const sbox_table& des_sbox(unsigned box) {
  if (box >= 8) {
    throw std::invalid_argument{"des_sbox: box index in [0,8)"};
  }
  return des_sboxes[box];
}

std::array<signal, 4> des_sbox_network(mig_network& net, const std::array<signal, 6>& in,
                                       unsigned box) {
  const auto& table = des_sbox(box);
  std::array<signal, 4> out{};
  for (unsigned bit = 0; bit < 4; ++bit) {
    truth_table tt{6};
    for (unsigned v = 0; v < 64; ++v) {
      // Input encoding: v = b5..b0 with row {b5,b0}, column {b4..b1}.
      const unsigned row = ((v >> 5) << 1) | (v & 1u);
      const unsigned col = (v >> 1) & 0xFu;
      if ((table[row][col] >> bit) & 1u) {
        tt.set_bit(v, true);
      }
    }
    out[bit] = synthesize_truth_table(net, tt, std::vector<signal>{in.begin(), in.end()});
  }
  return out;
}

mig_network des_circuit(unsigned rounds) {
  if (rounds == 0) {
    throw std::invalid_argument{"des_circuit: at least one round"};
  }
  mig_network net;
  const word block = make_input_word(net, 64, "blk");
  const word key = make_input_word(net, 64, "key");

  word left{block.begin(), block.begin() + 32};
  word right{block.begin() + 32, block.end()};

  for (unsigned r = 0; r < rounds; ++r) {
    // Expansion: 32 -> 48 bits.
    word expanded;
    expanded.reserve(48);
    for (const auto pos : des_expansion) {
      expanded.push_back(right[pos - 1]);
    }
    // Key mixing: rotate the key input per round.
    for (unsigned i = 0; i < 48; ++i) {
      expanded[i] = net.create_xor(expanded[i], key[(i + 7 * r) % 64]);
    }
    // Eight S-boxes: 48 -> 32 bits.
    word substituted(32, constant0);
    for (unsigned box = 0; box < 8; ++box) {
      // FIPS orders S-box input MSB-first; map to our b0..b5 LSB-first.
      std::array<signal, 6> in{};
      for (unsigned i = 0; i < 6; ++i) {
        in[5 - i] = expanded[box * 6 + i];
      }
      const auto out = des_sbox_network(net, in, box);
      for (unsigned i = 0; i < 4; ++i) {
        substituted[box * 4 + (3 - i)] = out[i];  // MSB-first within the nibble
      }
    }
    // Permutation P + Feistel combination.
    word mixed(32, constant0);
    for (unsigned i = 0; i < 32; ++i) {
      mixed[i] = net.create_xor(left[i], substituted[des_permutation[i] - 1]);
    }
    left = right;
    right = std::move(mixed);
  }

  make_output_word(net, left, "l");
  make_output_word(net, right, "r");
  return net;
}

mig_network reversible_cascade_circuit(unsigned lines, unsigned gates, std::uint64_t seed) {
  if (lines < 3) {
    throw std::invalid_argument{"reversible_cascade_circuit: at least three lines"};
  }
  mig_network net;
  word wires = make_input_word(net, lines, "w");

  std::mt19937_64 rng{seed};
  std::uniform_int_distribution<unsigned> pick_line(0, lines - 1);
  std::uniform_int_distribution<unsigned> pick_kind(0, 9);

  for (unsigned g = 0; g < gates; ++g) {
    const unsigned target = pick_line(rng);
    const unsigned kind = pick_kind(rng);
    if (kind < 6) {
      // Toffoli: target ^= c1 & c2.
      unsigned c1 = pick_line(rng);
      while (c1 == target) {
        c1 = pick_line(rng);
      }
      unsigned c2 = pick_line(rng);
      while (c2 == target || c2 == c1) {
        c2 = pick_line(rng);
      }
      wires[target] = net.create_xor(wires[target], net.create_and(wires[c1], wires[c2]));
    } else if (kind < 9) {
      // CNOT: target ^= c.
      unsigned c = pick_line(rng);
      while (c == target) {
        c = pick_line(rng);
      }
      wires[target] = net.create_xor(wires[target], wires[c]);
    } else {
      // NOT.
      wires[target] = !wires[target];
    }
  }

  make_output_word(net, wires, "q");
  return net;
}

mig_network crc32_circuit(unsigned data_bits) {
  mig_network net;
  const word state = make_input_word(net, 32, "crc");
  const word data = make_input_word(net, data_bits, "d");

  // Bitwise CRC-32 (polynomial 0xEDB88320, reflected form): one table-free
  // shift-xor step per message bit.
  word crc = state;
  for (unsigned i = 0; i < data_bits; ++i) {
    const signal feedback = net.create_xor(crc[0], data[i]);
    word next(32, constant0);
    for (unsigned b = 0; b < 31; ++b) {
      next[b] = crc[b + 1];
    }
    constexpr std::uint32_t poly = 0xEDB88320u;
    for (unsigned b = 0; b < 32; ++b) {
      if ((poly >> b) & 1u) {
        next[b] = net.create_xor(next[b], feedback);
      }
    }
    crc = std::move(next);
  }
  make_output_word(net, crc, "q");
  return net;
}

}  // namespace wavemig::gen
