#include "wavemig/gen/suite.hpp"

#include <functional>
#include <stdexcept>
#include <utility>

#include "wavemig/depth_rewriting.hpp"
#include "wavemig/gen/arith.hpp"
#include "wavemig/gen/control.hpp"
#include "wavemig/gen/crypto.hpp"
#include "wavemig/gen/misc.hpp"
#include "wavemig/gen/random_mig.hpp"

namespace wavemig::gen {

namespace {

struct suite_entry {
  const char* name;
  std::function<mig_network()> build;
};

const std::vector<suite_entry>& registry() {
  static const std::vector<suite_entry> entries = [] {
    std::vector<suite_entry> e;

    // Controller-style random logic (OpenCores-class profiles).
    e.push_back({"sasc", [] {
                   return control_circuit({18, 12, 10, 4, 3, 11});
                 }});
    e.push_back({"simple_spi", [] {
                   return control_circuit({20, 14, 10, 4, 3, 12});
                 }});
    e.push_back({"i2c", [] {
                   return control_circuit({24, 16, 12, 4, 3, 13});
                 }});
    e.push_back({"pci_ctrl", [] {
                   return control_circuit({30, 24, 14, 5, 4, 14});
                 }});
    e.push_back({"mem_ctrl", [] {
                   return control_circuit({40, 32, 18, 5, 4, 15});
                 }});
    e.push_back({"ac97_ctrl", [] {
                   return control_circuit({36, 30, 14, 4, 3, 17});
                 }});
    e.push_back({"wb_dma", [] {
                   return control_circuit({32, 26, 14, 4, 4, 18});
                 }});
    e.push_back({"tv80", [] {
                   return control_circuit({36, 30, 22, 6, 4, 19});
                 }});

    // Crypto / reversible.
    e.push_back({"systemcdes", [] { return des_circuit(2); }});
    e.push_back({"des_area", [] { return des_circuit(4); }});
    e.push_back({"des_perf", [] { return des_circuit(8); }});
    e.push_back({"crc32_8", [] { return crc32_circuit(8); }});
    e.push_back({"revx", [] { return reversible_cascade_circuit(24, 520, 7); }});

    // Random FSM next-state logic (exact truth-table synthesis).
    e.push_back({"fsm_ctrl", [] { return fsm_circuit(4, 8, 21); }});
    e.push_back({"fsm_small", [] { return fsm_circuit(3, 6, 22); }});

    // Arithmetic.
    e.push_back({"adder32", [] { return ripple_adder_circuit(32); }});
    e.push_back({"adder64", [] { return ripple_adder_circuit(64); }});
    e.push_back({"adder128", [] { return ripple_adder_circuit(128); }});
    e.push_back({"mul8", [] { return multiplier_circuit(8); }});
    e.push_back({"mul16", [] { return multiplier_circuit(16); }});
    e.push_back({"mul32", [] { return multiplier_circuit(32); }});
    e.push_back({"mul64", [] { return multiplier_circuit(64); }});
    e.push_back({"mac16", [] { return mac_circuit(16); }});
    e.push_back({"hamming", [] { return hamming_distance_circuit(32); }});
    e.push_back({"hamming_codec", [] { return hamming_codec_circuit(4); }});
    e.push_back({"parity64", [] { return parity_circuit(64); }});
    e.push_back({"cmp128", [] { return comparator_circuit(128); }});
    e.push_back({"max32x4", [] { return max_circuit(32, 4); }});
    e.push_back({"diffeq1", [] { return diffeq_circuit(32); }});
    e.push_back({"int2float16", [] { return int2float_circuit(16); }});

    // Structured misc.
    e.push_back({"voter101", [] { return voter_circuit(101); }});
    e.push_back({"barrel64", [] { return barrel_shifter_circuit(64); }});
    e.push_back({"dec8", [] { return decoder_circuit(8); }});
    e.push_back({"priority64", [] { return priority_encoder_circuit(64); }});
    e.push_back({"arbiter16", [] { return arbiter_circuit(16); }});
    // (wide_io_circuit is deliberately NOT a suite entry: the suite pins
    // the paper's 37 benchmarks. The wide-I/O transpose stress shape is
    // built directly by the bench and tests that need it.)

    // Seeded random MIGs (size-scaling tail of Fig. 5).
    e.push_back({"rand_mid", [] {
                   return random_mig({64, 8000, 0.3, 64, 101});
                 }});
    e.push_back({"rand_large", [] {
                   return random_mig({96, 42000, 0.5, 2000, 103});
                 }});

    return e;
  }();
  return entries;
}

/// §III: "We assume that the input of the algorithm is an already optimized
/// MIG netlist" — suite circuits are depth-rewritten before delivery, like
/// the depth-optimized benchmarks of [16] that the paper consumes.
mig_network finalize(mig_network net) {
  depth_rewriting_options opts;
  opts.max_iterations = 3;
  return depth_rewrite(net, opts);
}

}  // namespace

const std::vector<std::string>& benchmark_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> n;
    for (const auto& e : registry()) {
      n.emplace_back(e.name);
    }
    return n;
  }();
  return names;
}

const std::vector<std::string>& table2_names() {
  static const std::vector<std::string> names{"sasc", "des_area", "mul32",  "hamming",
                                              "mul64", "revx",    "diffeq1"};
  return names;
}

mig_network build_benchmark(const std::string& name) {
  for (const auto& e : registry()) {
    if (name == e.name) {
      return finalize(e.build());
    }
  }
  throw std::invalid_argument{"build_benchmark: unknown benchmark '" + name + "'"};
}

std::vector<benchmark_case> build_suite() {
  std::vector<benchmark_case> suite;
  suite.reserve(registry().size());
  for (const auto& e : registry()) {
    suite.push_back({e.name, finalize(e.build())});
  }
  return suite;
}

}  // namespace wavemig::gen
