#include "wavemig/gen/control.hpp"

#include <random>
#include <stdexcept>
#include <vector>

#include "wavemig/gen/arith.hpp"
#include "wavemig/synthesis.hpp"
#include "wavemig/truth_table.hpp"

namespace wavemig::gen {

mig_network control_circuit(const control_profile& profile) {
  if (profile.inputs == 0 || profile.outputs == 0) {
    throw std::invalid_argument{"control_circuit: inputs and outputs must be positive"};
  }
  mig_network net;
  std::mt19937_64 rng{profile.seed};

  const word in = make_input_word(net, profile.inputs, "in");
  word state;
  if (profile.state_bits > 0) {
    state = make_input_word(net, profile.state_bits, "st");
  }

  // One-hot state decode lines shared by all outputs.
  std::vector<signal> decoded;
  if (profile.state_bits > 0) {
    for (unsigned v = 0; v < (1u << profile.state_bits); ++v) {
      signal line = constant1;
      for (unsigned b = 0; b < profile.state_bits; ++b) {
        line = net.create_and(line, state[b].complement_if(((v >> b) & 1u) == 0));
      }
      decoded.push_back(line);
    }
  }

  std::uniform_int_distribution<unsigned> pick_input(0, profile.inputs - 1);
  std::uniform_int_distribution<unsigned> coin(0, 1);
  const unsigned max_literals = std::max(2u, profile.literals_per_cube);
  std::uniform_int_distribution<unsigned> pick_width(2, max_literals);

  for (unsigned o = 0; o < profile.outputs; ++o) {
    signal sum = constant0;
    for (unsigned c = 0; c < profile.cubes_per_output; ++c) {
      signal cube = constant1;
      const unsigned width = pick_width(rng);
      for (unsigned l = 0; l < width; ++l) {
        const signal lit = in[pick_input(rng)].complement_if(coin(rng) == 1);
        cube = net.create_and(cube, lit);
      }
      if (!decoded.empty()) {
        std::uniform_int_distribution<std::size_t> pick_state(0, decoded.size() - 1);
        cube = net.create_and(cube, decoded[pick_state(rng)]);
      }
      sum = net.create_or(sum, cube);
    }
    net.create_po(sum, "out" + std::to_string(o));
  }
  return net;
}

mig_network fsm_circuit(unsigned state_bits, unsigned input_bits, std::uint64_t seed) {
  const unsigned vars = state_bits + input_bits;
  if (vars == 0 || vars > 16) {
    throw std::invalid_argument{"fsm_circuit: state_bits + input_bits in [1,16]"};
  }
  mig_network net;
  std::mt19937_64 rng{seed};

  std::vector<signal> inputs;
  for (unsigned b = 0; b < state_bits; ++b) {
    inputs.push_back(net.create_pi("s" + std::to_string(b)));
  }
  for (unsigned b = 0; b < input_bits; ++b) {
    inputs.push_back(net.create_pi("i" + std::to_string(b)));
  }

  for (unsigned b = 0; b < state_bits; ++b) {
    truth_table tt{vars};
    for (std::uint64_t row = 0; row < tt.num_bits(); ++row) {
      tt.set_bit(row, (rng() & 1u) != 0);
    }
    net.create_po(synthesize_truth_table(net, tt, inputs), "ns" + std::to_string(b));
  }
  return net;
}

}  // namespace wavemig::gen
