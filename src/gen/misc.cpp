#include "wavemig/gen/misc.hpp"

#include <stdexcept>

#include "wavemig/gen/arith.hpp"

namespace wavemig::gen {

mig_network voter_circuit(unsigned inputs) {
  if (inputs < 3 || inputs % 2 == 0) {
    throw std::invalid_argument{"voter_circuit: odd input count >= 3 required"};
  }
  mig_network net;
  const word in = make_input_word(net, inputs, "v");
  const word count = popcount(net, in);

  // Majority when count >= (inputs+1)/2: compare against the constant
  // threshold with a borrow chain (count - threshold has no borrow).
  const unsigned threshold = (inputs + 1) / 2;
  word threshold_word(count.size(), constant0);
  for (std::size_t b = 0; b < count.size(); ++b) {
    if ((threshold >> b) & 1u) {
      threshold_word[b] = constant1;
    }
  }
  const signal lt = less_than(net, count, threshold_word);
  net.create_po(!lt, "majority");
  return net;
}

mig_network barrel_shifter_circuit(unsigned width) {
  if (width < 2 || (width & (width - 1)) != 0) {
    throw std::invalid_argument{"barrel_shifter_circuit: width must be a power of two"};
  }
  unsigned stages = 0;
  while ((1u << stages) < width) {
    ++stages;
  }
  mig_network net;
  word value = make_input_word(net, width, "x");
  const word amount = make_input_word(net, stages, "sh");

  for (unsigned s = 0; s < stages; ++s) {
    const unsigned dist = 1u << s;
    word rotated(width, constant0);
    for (unsigned i = 0; i < width; ++i) {
      rotated[(i + dist) % width] = value[i];
    }
    value = mux_word(net, amount[s], rotated, value);
  }
  make_output_word(net, value, "y");
  return net;
}

mig_network decoder_circuit(unsigned bits) {
  if (bits == 0 || bits > 12) {
    throw std::invalid_argument{"decoder_circuit: bits in [1,12]"};
  }
  mig_network net;
  const word sel = make_input_word(net, bits, "a");
  for (unsigned v = 0; v < (1u << bits); ++v) {
    // Balanced AND tree over the literals.
    word literals;
    literals.reserve(bits);
    for (unsigned b = 0; b < bits; ++b) {
      literals.push_back(sel[b].complement_if(((v >> b) & 1u) == 0));
    }
    while (literals.size() > 1) {
      word next;
      for (std::size_t i = 0; i + 1 < literals.size(); i += 2) {
        next.push_back(net.create_and(literals[i], literals[i + 1]));
      }
      if (literals.size() % 2 == 1) {
        next.push_back(literals.back());
      }
      literals = std::move(next);
    }
    net.create_po(literals.front(), "d" + std::to_string(v));
  }
  return net;
}

mig_network priority_encoder_circuit(unsigned width) {
  if (width < 2) {
    throw std::invalid_argument{"priority_encoder_circuit: width >= 2"};
  }
  mig_network net;
  const word req = make_input_word(net, width, "r");

  // highest[i] = r[i] & !r[i+1] & ... & !r[width-1], built with a shared
  // "none above" chain.
  word highest(width, constant0);
  signal none_above = constant1;
  for (unsigned i = width; i-- > 0;) {
    highest[i] = net.create_and(req[i], none_above);
    none_above = net.create_and(none_above, !req[i]);
  }

  unsigned bits = 1;
  while ((1u << bits) < width) {
    ++bits;
  }
  for (unsigned b = 0; b < bits; ++b) {
    signal acc = constant0;
    for (unsigned i = 0; i < width; ++i) {
      if ((i >> b) & 1u) {
        acc = net.create_or(acc, highest[i]);
      }
    }
    net.create_po(acc, "idx" + std::to_string(b));
  }
  net.create_po(!none_above, "valid");
  return net;
}

mig_network arbiter_circuit(unsigned width) {
  if (width < 2 || (width & (width - 1)) != 0) {
    throw std::invalid_argument{"arbiter_circuit: width must be a power of two"};
  }
  unsigned bits = 0;
  while ((1u << bits) < width) {
    ++bits;
  }
  mig_network net;
  const word req = make_input_word(net, width, "r");
  const word pointer = make_input_word(net, bits, "p");

  // Decode the round-robin pointer.
  word is_ptr(width, constant0);
  for (unsigned v = 0; v < width; ++v) {
    signal line = constant1;
    for (unsigned b = 0; b < bits; ++b) {
      line = net.create_and(line, pointer[b].complement_if(((v >> b) & 1u) == 0));
    }
    is_ptr[v] = line;
  }

  // Grant the first request at or after the pointer (wrap-around): for each
  // candidate position, build priority chains from every pointer value.
  for (unsigned g = 0; g < width; ++g) {
    signal grant = constant0;
    for (unsigned p = 0; p < width; ++p) {
      // With pointer p, position g wins iff req[g] and no request in the
      // cyclic range [p, g).
      signal none_before = constant1;
      for (unsigned step = 0; step < width; ++step) {
        const unsigned pos = (p + step) % width;
        if (pos == g) {
          break;
        }
        none_before = net.create_and(none_before, !req[pos]);
      }
      grant = net.create_or(grant, net.create_and(is_ptr[p], net.create_and(req[g], none_before)));
    }
    net.create_po(grant, "g" + std::to_string(g));
  }
  return net;
}

mig_network wide_io_circuit(unsigned inputs, unsigned outputs) {
  if (outputs == 0 || inputs < 3 * static_cast<unsigned long long>(outputs)) {
    throw std::invalid_argument{"wide_io_circuit: inputs >= 3 * outputs >= 3 required"};
  }
  if (inputs > (1u << 16)) {
    throw std::invalid_argument{"wide_io_circuit: at most 65536 inputs"};
  }
  mig_network net;
  const word in = make_input_word(net, inputs, "w");
  for (unsigned j = 0; j < outputs; ++j) {
    // The strided slice keeps every output's cone spread across the whole
    // input range, so no PI plane is dead weight.
    word layer;
    for (unsigned i = j; i < inputs; i += outputs) {
      layer.push_back(in[i]);
    }
    // Triple-reduce with majority gates; a 2-signal remainder folds with OR.
    while (layer.size() > 1) {
      word next;
      std::size_t i = 0;
      for (; i + 2 < layer.size(); i += 3) {
        next.push_back(net.create_maj(layer[i], layer[i + 1], layer[i + 2]));
      }
      if (i + 1 < layer.size()) {
        next.push_back(net.create_or(layer[i], layer[i + 1]));
      } else if (i < layer.size()) {
        next.push_back(layer[i]);
      }
      layer = std::move(next);
    }
    net.create_po(layer.front(), "m" + std::to_string(j));
  }
  return net;
}

}  // namespace wavemig::gen
