#include "wavemig/gen/arith.hpp"

#include <stdexcept>

namespace wavemig::gen {

word make_input_word(mig_network& net, unsigned width, const std::string& prefix) {
  word bits;
  bits.reserve(width);
  for (unsigned i = 0; i < width; ++i) {
    bits.push_back(net.create_pi(prefix + std::to_string(i)));
  }
  return bits;
}

void make_output_word(mig_network& net, const word& bits, const std::string& prefix) {
  for (std::size_t i = 0; i < bits.size(); ++i) {
    net.create_po(bits[i], prefix + std::to_string(i));
  }
}

std::pair<word, signal> add_ripple(mig_network& net, const word& a, const word& b,
                                   signal carry_in) {
  if (a.size() != b.size()) {
    throw std::invalid_argument{"add_ripple: width mismatch"};
  }
  word sum;
  sum.reserve(a.size());
  signal carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto [s, c] = net.create_full_adder(a[i], b[i], carry);
    sum.push_back(s);
    carry = c;
  }
  return {sum, carry};
}

std::pair<word, signal> sub_ripple(mig_network& net, const word& a, const word& b) {
  word not_b;
  not_b.reserve(b.size());
  for (const signal s : b) {
    not_b.push_back(!s);
  }
  return add_ripple(net, a, not_b, constant1);
}

word multiply_array(mig_network& net, const word& a, const word& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument{"multiply_array: width mismatch"};
  }
  const std::size_t w = a.size();
  word product(2 * w, constant0);

  // Row accumulation of partial products with ripple carries.
  word row(w, constant0);
  for (std::size_t j = 0; j < w; ++j) {
    word partial;
    partial.reserve(w);
    for (std::size_t i = 0; i < w; ++i) {
      partial.push_back(net.create_and(a[i], b[j]));
    }
    auto [sum, carry] = add_ripple(net, row, partial, constant0);
    product[j] = sum.front();
    row.assign(sum.begin() + 1, sum.end());
    row.push_back(carry);
  }
  for (std::size_t i = 0; i < w; ++i) {
    product[w + i] = row[i];
  }
  return product;
}

signal less_than(mig_network& net, const word& a, const word& b) {
  // a < b  <=>  borrow out of a - b  <=>  !carry_out(a + ~b + 1)
  auto [diff, carry] = sub_ripple(net, a, b);
  (void)diff;
  return !carry;
}

signal equals(mig_network& net, const word& a, const word& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument{"equals: width mismatch"};
  }
  signal acc = constant1;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = net.create_and(acc, !net.create_xor(a[i], b[i]));
  }
  return acc;
}

word mux_word(mig_network& net, signal sel, const word& t, const word& e) {
  if (t.size() != e.size()) {
    throw std::invalid_argument{"mux_word: width mismatch"};
  }
  word out;
  out.reserve(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    out.push_back(net.create_mux(sel, t[i], e[i]));
  }
  return out;
}

signal parity(mig_network& net, const word& bits) {
  if (bits.empty()) {
    return constant0;
  }
  // Balanced XOR tree.
  word layer = bits;
  while (layer.size() > 1) {
    word next;
    next.reserve(layer.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(net.create_xor(layer[i], layer[i + 1]));
    }
    if (layer.size() % 2 == 1) {
      next.push_back(layer.back());
    }
    layer = std::move(next);
  }
  return layer.front();
}

word popcount(mig_network& net, const word& bits) {
  if (bits.empty()) {
    return {constant0};
  }
  // Layered 3:2 compression: within each weight column, one layer of full
  // adders (and at most one half adder) maps the column onto a third of its
  // size, keeping the tree logarithmic. Index-based access throughout:
  // pushing a carry column may reallocate `columns`.
  std::vector<word> columns(1, bits);
  word result;
  for (std::size_t weight = 0; weight < columns.size(); ++weight) {
    while (columns[weight].size() > 1) {
      if (columns.size() <= weight + 1) {
        columns.emplace_back();
      }
      const word layer = std::move(columns[weight]);
      word reduced;
      std::size_t i = 0;
      for (; i + 2 < layer.size(); i += 3) {
        auto [s, cy] = net.create_full_adder(layer[i], layer[i + 1], layer[i + 2]);
        reduced.push_back(s);
        columns[weight + 1].push_back(cy);
      }
      if (layer.size() - i == 2) {
        // Half adder: sum = a ^ b, carry = a & b.
        reduced.push_back(net.create_xor(layer[i], layer[i + 1]));
        columns[weight + 1].push_back(net.create_and(layer[i], layer[i + 1]));
      } else if (layer.size() - i == 1) {
        reduced.push_back(layer[i]);
      }
      columns[weight] = std::move(reduced);
    }
    result.push_back(columns[weight].empty() ? constant0 : columns[weight].front());
  }
  return result;
}

mig_network ripple_adder_circuit(unsigned width) {
  mig_network net;
  const word a = make_input_word(net, width, "a");
  const word b = make_input_word(net, width, "b");
  auto [sum, carry] = add_ripple(net, a, b, constant0);
  make_output_word(net, sum, "s");
  net.create_po(carry, "cout");
  return net;
}

mig_network multiplier_circuit(unsigned width) {
  mig_network net;
  const word a = make_input_word(net, width, "a");
  const word b = make_input_word(net, width, "b");
  make_output_word(net, multiply_array(net, a, b), "p");
  return net;
}

mig_network mac_circuit(unsigned width) {
  mig_network net;
  const word a = make_input_word(net, width, "a");
  const word b = make_input_word(net, width, "b");
  word c = make_input_word(net, width, "c");
  word product = multiply_array(net, a, b);
  c.resize(product.size(), constant0);
  auto [sum, carry] = add_ripple(net, product, c, constant0);
  make_output_word(net, sum, "m");
  net.create_po(carry, "cout");
  return net;
}

mig_network hamming_distance_circuit(unsigned width) {
  mig_network net;
  const word a = make_input_word(net, width, "a");
  const word b = make_input_word(net, width, "b");

  // Sequential accumulation (not a balanced tree) to mirror the paper's
  // deep HAMMING benchmark: acc += (a_i ^ b_i), one small adder per bit.
  word acc(1, net.create_xor(a[0], b[0]));
  for (unsigned i = 1; i < width; ++i) {
    const signal d = net.create_xor(a[i], b[i]);
    word addend(acc.size(), constant0);
    addend[0] = d;
    auto [sum, carry] = add_ripple(net, acc, addend, constant0);
    acc = std::move(sum);
    // Width grows just enough to hold the count.
    if ((i & (i + 1)) == 0) {  // i+1 is a power of two
      acc.push_back(carry);
    }
  }
  make_output_word(net, acc, "d");
  return net;
}

mig_network hamming_codec_circuit(unsigned parity_bits) {
  if (parity_bits < 2 || parity_bits > 6) {
    throw std::invalid_argument{"hamming_codec_circuit: parity_bits in [2,6]"};
  }
  const unsigned n = (1u << parity_bits) - 1;  // codeword length
  const unsigned k = n - parity_bits;          // data length

  mig_network net;
  const word data = make_input_word(net, k, "d");
  const word error = make_input_word(net, n, "e");  // error mask (testbench injects <=1 bit)

  // Systematic encoding: positions 1..n (1-based); powers of two hold parity.
  word code(n + 1, constant0);  // index 0 unused
  unsigned d = 0;
  for (unsigned pos = 1; pos <= n; ++pos) {
    if ((pos & (pos - 1)) != 0) {
      code[pos] = data[d++];
    }
  }
  for (unsigned p = 0; p < parity_bits; ++p) {
    const unsigned mask = 1u << p;
    word covered;
    for (unsigned pos = 1; pos <= n; ++pos) {
      if ((pos & mask) != 0 && (pos & (pos - 1)) != 0) {
        covered.push_back(code[pos]);
      }
    }
    code[mask] = parity(net, covered);
  }

  // Channel: flip bits under the error mask.
  word received(n + 1, constant0);
  for (unsigned pos = 1; pos <= n; ++pos) {
    received[pos] = net.create_xor(code[pos], error[pos - 1]);
  }

  // Syndrome.
  word syndrome;
  for (unsigned p = 0; p < parity_bits; ++p) {
    const unsigned mask = 1u << p;
    word covered;
    for (unsigned pos = 1; pos <= n; ++pos) {
      if ((pos & mask) != 0) {
        covered.push_back(received[pos]);
      }
    }
    syndrome.push_back(parity(net, covered));
  }

  // Correct: flip position `syndrome` when non-zero; emit data positions.
  d = 0;
  for (unsigned pos = 1; pos <= n; ++pos) {
    if ((pos & (pos - 1)) == 0) {
      continue;
    }
    signal match = constant1;
    for (unsigned p = 0; p < parity_bits; ++p) {
      const bool bit = (pos >> p) & 1u;
      match = net.create_and(match, syndrome[p].complement_if(!bit));
    }
    net.create_po(net.create_xor(received[pos], match), "q" + std::to_string(d++));
  }
  return net;
}

mig_network parity_circuit(unsigned width) {
  mig_network net;
  const word a = make_input_word(net, width, "x");
  net.create_po(parity(net, a), "parity");
  return net;
}

mig_network comparator_circuit(unsigned width) {
  mig_network net;
  const word a = make_input_word(net, width, "a");
  const word b = make_input_word(net, width, "b");
  const signal lt = less_than(net, a, b);
  const signal eq = equals(net, a, b);
  net.create_po(lt, "lt");
  net.create_po(eq, "eq");
  net.create_po(net.create_and(!lt, !eq), "gt");
  return net;
}

mig_network max_circuit(unsigned width, unsigned ways) {
  if (ways < 2) {
    throw std::invalid_argument{"max_circuit: at least two inputs"};
  }
  mig_network net;
  std::vector<word> values;
  values.reserve(ways);
  for (unsigned i = 0; i < ways; ++i) {
    values.push_back(make_input_word(net, width, "v" + std::to_string(i)));
  }
  while (values.size() > 1) {
    std::vector<word> next;
    for (std::size_t i = 0; i + 1 < values.size(); i += 2) {
      const signal lt = less_than(net, values[i], values[i + 1]);
      next.push_back(mux_word(net, lt, values[i + 1], values[i]));
    }
    if (values.size() % 2 == 1) {
      next.push_back(values.back());
    }
    values = std::move(next);
  }
  make_output_word(net, values.front(), "max");
  return net;
}

namespace {

/// Truncated multiplication keeping `width` low bits.
word multiply_trunc(mig_network& net, const word& a, const word& b) {
  word full = multiply_array(net, a, b);
  full.resize(a.size());
  return full;
}

}  // namespace

mig_network diffeq_circuit(unsigned width) {
  mig_network net;
  const word x = make_input_word(net, width, "x");
  const word y = make_input_word(net, width, "y");
  const word u = make_input_word(net, width, "u");
  const word dx = make_input_word(net, width, "dx");

  // x' = x + dx
  auto [x1, cx] = add_ripple(net, x, dx, constant0);
  (void)cx;

  // y' = y + u*dx
  const word u_dx = multiply_trunc(net, u, dx);
  auto [y1, cy] = add_ripple(net, y, u_dx, constant0);
  (void)cy;

  // u' = u - 3*x*u*dx - 3*y*dx   (3*t = t + 2t)
  auto triple = [&](const word& t) {
    word shifted(t.size(), constant0);
    for (std::size_t i = 1; i < t.size(); ++i) {
      shifted[i] = t[i - 1];
    }
    return add_ripple(net, t, shifted, constant0).first;
  };
  const word x_u = multiply_trunc(net, x, u);
  const word x_u_dx = multiply_trunc(net, x_u, dx);
  const word term1 = triple(x_u_dx);
  const word y_dx = multiply_trunc(net, y, dx);
  const word term2 = triple(y_dx);
  const word u_minus = sub_ripple(net, u, term1).first;
  const word u1 = sub_ripple(net, u_minus, term2).first;

  make_output_word(net, x1, "x1");
  make_output_word(net, y1, "y1");
  make_output_word(net, u1, "u1");
  return net;
}

mig_network int2float_circuit(unsigned width) {
  mig_network net;
  const word v = make_input_word(net, width, "v");

  // Leading-one position (priority scan from the top) and validity.
  word is_leading(width, constant0);
  signal seen = constant0;
  for (unsigned i = width; i-- > 0;) {
    is_leading[i] = net.create_and(v[i], !seen);
    seen = net.create_or(seen, v[i]);
  }

  // Exponent: one-hot encode of the leading position.
  unsigned exp_bits = 1;
  while ((1u << exp_bits) < width) {
    ++exp_bits;
  }
  word exponent(exp_bits, constant0);
  for (unsigned e = 0; e < exp_bits; ++e) {
    word terms;
    for (unsigned i = 0; i < width; ++i) {
      if ((i >> e) & 1u) {
        terms.push_back(is_leading[i]);
      }
    }
    signal acc = constant0;
    for (const signal t : terms) {
      acc = net.create_or(acc, t);
    }
    exponent[e] = acc;
  }

  // Mantissa: normalize by muxing the word under each leading position.
  const unsigned mant_bits = width > 8 ? 8 : width;
  word mantissa(mant_bits, constant0);
  for (unsigned m = 0; m < mant_bits; ++m) {
    signal acc = constant0;
    for (unsigned lead = 0; lead < width; ++lead) {
      // Bit (lead - 1 - m) of v aligns to mantissa bit m (MSB-first).
      if (lead >= m + 1) {
        acc = net.create_or(acc, net.create_and(is_leading[lead], v[lead - 1 - m]));
      }
    }
    mantissa[m] = acc;
  }

  make_output_word(net, exponent, "exp");
  make_output_word(net, mantissa, "mant");
  net.create_po(seen, "nonzero");
  return net;
}

}  // namespace wavemig::gen
