#include "wavemig/gen/random_mig.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <vector>

#include "wavemig/cleanup.hpp"
#include "wavemig/levels.hpp"

namespace wavemig::gen {

mig_network random_mig(const random_mig_profile& profile) {
  if (profile.inputs < 3) {
    throw std::invalid_argument{"random_mig: at least three inputs"};
  }
  if (profile.locality < 0.0 || profile.locality >= 1.0) {
    throw std::invalid_argument{"random_mig: locality in [0,1)"};
  }

  mig_network net;
  std::mt19937_64 rng{profile.seed};

  std::vector<signal> pool;
  for (unsigned i = 0; i < profile.inputs; ++i) {
    pool.push_back(net.create_pi());
  }

  std::uniform_real_distribution<double> unit(0.0, 1.0);
  auto pick = [&]() -> signal {
    // Mix of a uniform draw and a draw from the most recent window.
    std::size_t index;
    const std::size_t window = std::max<std::size_t>(profile.inputs, pool.size() / 8);
    if (unit(rng) < profile.locality && pool.size() > window) {
      index = pool.size() - 1 - (rng() % window);
    } else {
      index = rng() % pool.size();
    }
    return pool[index].complement_if((rng() & 1u) != 0);
  };

  for (unsigned g = 0; g < profile.gates; ++g) {
    signal a = pick();
    signal b = pick();
    signal c = pick();
    // Distinct underlying nodes keep create_maj from collapsing the gate.
    int guard = 0;
    while ((b.index() == a.index() || b.index() == c.index() || a.index() == c.index()) &&
           guard++ < 64) {
      if (b.index() == a.index()) {
        b = pick();
      } else {
        c = pick();
      }
    }
    const signal s = net.create_maj(a, b, c);
    if (net.is_majority(s.index())) {
      pool.push_back(s.without_complement());
    }
  }

  // Outputs: dangling gates first (deterministic order), then deep nodes.
  const auto fanouts = compute_fanouts(net);
  std::vector<node_index> dangling;
  net.foreach_gate([&](node_index n) {
    if (fanouts.degree(n) == 0) {
      dangling.push_back(n);
    }
  });
  unsigned made = 0;
  for (const node_index n : dangling) {
    if (made >= profile.outputs) {
      break;
    }
    net.create_po(signal{n, false});
    ++made;
  }
  for (std::size_t i = pool.size(); made < profile.outputs && i-- > 0;) {
    net.create_po(pool[i].complement_if((rng() & 1u) != 0));
    ++made;
  }

  return cleanup_dangling(net);
}

}  // namespace wavemig::gen
