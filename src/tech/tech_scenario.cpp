#include "wavemig/tech_scenario.hpp"

#include <bit>
#include <cmath>

#include "registry_util.hpp"

namespace wavemig {

std::optional<unsigned> tech_scenario::max_unregenerated_levels() const {
  if (attenuation_db_per_level <= 0.0) {
    return std::nullopt;
  }
  const double levels = std::floor(regeneration_db / attenuation_db_per_level);
  if (levels < 1.0) {
    return 1u;
  }
  return static_cast<unsigned>(levels);
}

std::uint64_t tech_scenario::fingerprint() const {
  constexpr std::uint64_t offset = 1469598103934665603ull;
  constexpr std::uint64_t prime = 1099511628211ull;
  std::uint64_t h = offset;
  const auto mix = [&](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h = (h ^ ((v >> (8 * byte)) & 0xffu)) * prime;
    }
  };
  const auto mix_double = [&](double v) { mix(std::bit_cast<std::uint64_t>(v)); };
  const auto mix_costs = [&](const component_costs& c) {
    mix_double(c.area);
    mix_double(c.delay);
    mix_double(c.energy);
  };
  for (const char ch : name) {
    h = (h ^ static_cast<unsigned char>(ch)) * prime;
  }
  mix_double(tech.cell_area_um2);
  mix_double(tech.cell_delay_ns);
  mix_double(tech.cell_energy_fj);
  mix_costs(tech.inv);
  mix_costs(tech.maj);
  mix_costs(tech.buf);
  mix_costs(tech.fog);
  mix_double(tech.phase_delay_ns);
  mix_double(tech.sense_amp_energy_fj);
  mix(fanout_limit ? *fanout_limit + 1 : 0);
  mix(fdm_lanes);
  mix_double(attenuation_db_per_level);
  mix_double(regeneration_db);
  mix_costs(repeater);
  return h == 0 ? 1 : h;  // zero is reserved for "no scenario"
}

tech_scenario tech_scenario::swd() {
  tech_scenario s;
  s.name = "SWD";
  s.tech = technology::swd();
  s.fanout_limit = 3;
  s.repeater = {2.0, 1.0, 3.0};  // buffer cell + active re-amplification stage
  return s;
}

tech_scenario tech_scenario::qca() {
  tech_scenario s;
  s.name = "QCA";
  s.tech = technology::qca();
  s.fanout_limit = 4;
  s.repeater = {1.0, 1.0, 2.0};
  return s;
}

tech_scenario tech_scenario::nml() {
  tech_scenario s;
  s.name = "NML";
  s.tech = technology::nml();
  s.fanout_limit = 2;
  s.repeater = {2.0, 2.0, 4.0};
  return s;
}

tech_scenario tech_scenario::fdm_swd() {
  tech_scenario s;
  s.name = "FDM-SWD";
  s.tech = technology::swd();
  // The FDM gate of arXiv:1908.02546 multiplexes frequencies through one
  // conduit; its demonstrated gates fan out to 2 (arXiv:2109.05219), and the
  // longer multiplexed conduits make attenuation a first-class budget: at
  // 0.25 dB per level against a 2.5 dB regeneration window, a wave needs a
  // repeater after 10 consecutive unregenerated levels.
  s.fanout_limit = 2;
  s.fdm_lanes = 4;
  s.attenuation_db_per_level = 0.25;
  s.regeneration_db = 2.5;
  s.repeater = {2.0, 1.0, 3.0};
  return s;
}

tech_scenario tech_scenario::by_name(const std::string& name) {
  if (registry::iequals(name, "SWD")) {
    return swd();
  }
  if (registry::iequals(name, "QCA")) {
    return qca();
  }
  if (registry::iequals(name, "NML")) {
    return nml();
  }
  if (registry::iequals(name, "FDM-SWD")) {
    return fdm_swd();
  }
  throw unknown_technology_error{
      registry::unknown_name_message("tech_scenario::by_name", name, names())};
}

const std::vector<std::string>& tech_scenario::names() {
  static const std::vector<std::string> known{"SWD", "QCA", "NML", "FDM-SWD"};
  return known;
}

}  // namespace wavemig
