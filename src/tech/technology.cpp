#include "wavemig/technology.hpp"

#include "registry_util.hpp"

namespace wavemig {

technology technology::swd() {
  technology t;
  t.name = "SWD";
  t.cell_area_um2 = 0.002304;
  t.cell_delay_ns = 0.42;
  t.cell_energy_fj = 1.44e-8;
  t.inv = {2.0, 1.0, 1.0};
  t.maj = {5.0, 1.0, 3.0};
  t.buf = {2.0, 1.0, 1.0};
  t.fog = {5.0, 1.0, 3.0};
  // One majority level per phase: MAJ relative delay 1 x 0.42 ns.
  t.phase_delay_ns = 0.42;
  // The paper's SWD power column is dominated by the ME-cell sense
  // amplifiers [22]; 2.7 aJ per output reproduces the magnitude of
  // Table II's SWD power for controller-sized output counts.
  t.sense_amp_energy_fj = 2.7e-3;
  return t;
}

technology technology::qca() {
  technology t;
  t.name = "QCA";
  t.cell_area_um2 = 0.0004;
  t.cell_delay_ns = 0.0012;
  t.cell_energy_fj = 9.80e-7;
  t.inv = {10.0, 7.0, 10.0};
  t.maj = {3.0, 2.0, 3.0};
  t.buf = {1.0, 1.0, 1.0};
  t.fog = {3.0, 2.0, 3.0};
  // Every QCA throughput entry of Table II implies a 4 ps level delay
  // (e.g. WP throughput 83333.33 MOPS = 1/(3 x 0.004 ns)); this equals the
  // INV/MAJ/BUF average (7+2+1)/3 cells x 1.2 ps.
  t.phase_delay_ns = 0.004;
  return t;
}

technology technology::nml() {
  technology t;
  t.name = "NML";
  t.cell_area_um2 = 0.0098;
  t.cell_delay_ns = 10.0;
  t.cell_energy_fj = 5.00e-4;
  t.inv = {1.0, 1.0, 1.0};
  t.maj = {2.0, 2.0, 2.0};
  t.buf = {2.0, 2.0, 2.0};
  t.fog = {2.0, 2.0, 2.0};
  // MAJ relative delay 2 x 10 ns (Table II: WP throughput 16.67 MOPS =
  // 1/(3 x 20 ns)).
  t.phase_delay_ns = 20.0;
  return t;
}

technology technology::by_name(const std::string& name) {
  if (registry::iequals(name, "SWD")) {
    return swd();
  }
  if (registry::iequals(name, "QCA")) {
    return qca();
  }
  if (registry::iequals(name, "NML")) {
    return nml();
  }
  throw unknown_technology_error{
      registry::unknown_name_message("technology::by_name", name, names())};
}

const std::vector<std::string>& technology::names() {
  static const std::vector<std::string> known{"SWD", "QCA", "NML"};
  return known;
}

}  // namespace wavemig
