#include "wavemig/timing.hpp"

#include <stdexcept>

#include "wavemig/inverter_optimization.hpp"

namespace wavemig {

timing_report analyze_stage_timing(const mig_network& net, const technology& tech,
                                   unsigned phases, bool optimize_polarity) {
  if (phases == 0) {
    throw std::invalid_argument{"analyze_stage_timing: at least one phase required"};
  }

  std::vector<bool> flip(net.num_nodes(), false);
  if (optimize_polarity) {
    flip = optimize_inverters(net).flip;
  }

  auto relative_delay = [&](node_index n) {
    switch (net.kind(n)) {
      case node_kind::majority:
        return tech.maj.delay;
      case node_kind::buffer:
        return tech.buf.delay;
      case node_kind::fanout:
        return tech.fog.delay;
      default:
        return 0.0;
    }
  };

  timing_report report;
  report.assumed_phase_delay_ns = tech.phase_delay_ns;

  double worst_relative = 0.0;
  net.foreach_component([&](node_index n) {
    bool has_inverter = false;
    for (const signal f : net.fanins(n)) {
      if (net.is_constant(f.index())) {
        continue;
      }
      const bool inverter = f.is_complemented() ^ flip[f.index()] ^ flip[n];
      has_inverter = has_inverter || inverter;
    }
    const double stage = relative_delay(n) + (has_inverter ? tech.inv.delay : 0.0);
    if (stage > worst_relative) {
      worst_relative = stage;
      report.critical_node = n;
      report.critical_has_inverter = has_inverter;
    }
  });

  if (worst_relative == 0.0) {
    worst_relative = tech.maj.delay;  // no components: fall back to one gate
  }
  report.required_phase_delay_ns = tech.cell_delay_ns * worst_relative;
  report.slack_ratio = report.assumed_phase_delay_ns / report.required_phase_delay_ns;
  report.effective_wp_throughput_mops =
      1e3 / (static_cast<double>(phases) * report.required_phase_delay_ns);
  return report;
}

timing_report analyze_stage_timing(const mig_network& net, const tech_scenario& scenario,
                                   unsigned phases, bool optimize_polarity) {
  timing_report report = analyze_stage_timing(net, scenario.tech, phases, optimize_polarity);
  if (scenario.fdm_lanes > 1) {
    report.effective_wp_throughput_mops *= static_cast<double>(scenario.fdm_lanes);
  }
  return report;
}

}  // namespace wavemig
