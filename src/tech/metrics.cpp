#include "wavemig/metrics.hpp"

#include <algorithm>

#include "wavemig/inverter_optimization.hpp"
#include "wavemig/levels.hpp"

namespace wavemig {

component_inventory count_components(const mig_network& net, bool optimize_polarity) {
  component_inventory inv;
  inv.majorities = net.num_majorities();
  inv.buffers = net.num_buffers();
  inv.fanout_gates = net.num_fanout_gates();
  inv.outputs = net.num_pos();
  inv.inverters =
      optimize_polarity ? optimize_inverters(net).inverter_count : count_inverters(net);
  return inv;
}

circuit_metrics compute_metrics(const mig_network& net, const technology& tech,
                                bool wave_pipelined, unsigned phases) {
  circuit_metrics m;
  m.components = count_components(net);
  m.depth = compute_levels(net).depth;

  const auto maj = static_cast<double>(m.components.majorities);
  const auto buf = static_cast<double>(m.components.buffers);
  const auto fog = static_cast<double>(m.components.fanout_gates);
  const auto inv = static_cast<double>(m.components.inverters);

  m.area_um2 = tech.cell_area_um2 *
               (maj * tech.maj.area + buf * tech.buf.area + fog * tech.fog.area +
                inv * tech.inv.area);
  m.energy_per_op_fj =
      tech.cell_energy_fj * (maj * tech.maj.energy + buf * tech.buf.energy +
                             fog * tech.fog.energy + inv * tech.inv.energy) +
      tech.sense_amp_energy_fj * static_cast<double>(m.components.outputs);

  m.latency_ns = static_cast<double>(m.depth) * tech.phase_delay_ns;
  if (m.latency_ns <= 0.0) {
    m.latency_ns = tech.phase_delay_ns;  // degenerate single-level circuits
  }

  if (wave_pipelined) {
    m.throughput_mops = 1e3 / (static_cast<double>(phases) * tech.phase_delay_ns);
    // A depth-0 (PI-to-PO) network still carries one wave at a time —
    // consistent with the latency_ns degenerate-case fallback above.
    m.waves_in_flight = std::max(1u, (m.depth + phases - 1) / phases);
  } else {
    m.throughput_mops = 1e3 / m.latency_ns;
    m.waves_in_flight = 1;
  }

  // fJ / ns = uW. The paper's power model charges one operation over the
  // circuit latency; the steady-state model charges every wave in flight.
  m.power_uw = m.energy_per_op_fj / m.latency_ns;
  m.power_steady_state_uw = m.energy_per_op_fj * m.throughput_mops * 1e-3;
  return m;
}

scenario_metrics compute_scenario_metrics(const mig_network& net, const tech_scenario& scenario,
                                          bool wave_pipelined, std::size_t repeaters,
                                          unsigned phases) {
  scenario_metrics sm;
  sm.repeaters = repeaters;
  sm.fdm_lanes = scenario.fdm_lanes;
  sm.metrics = compute_metrics(net, scenario.tech, wave_pipelined, phases);

  const auto reps = static_cast<double>(repeaters);
  sm.repeater_area_delta_um2 =
      scenario.tech.cell_area_um2 * reps * (scenario.repeater.area - scenario.tech.buf.area);
  sm.repeater_energy_delta_fj = scenario.tech.cell_energy_fj * reps *
                                (scenario.repeater.energy - scenario.tech.buf.energy);

  circuit_metrics& m = sm.metrics;
  m.area_um2 += sm.repeater_area_delta_um2;
  m.energy_per_op_fj += sm.repeater_energy_delta_fj;
  if (wave_pipelined && scenario.fdm_lanes > 1) {
    m.throughput_mops *= static_cast<double>(scenario.fdm_lanes);
    m.waves_in_flight *= scenario.fdm_lanes;
  }
  m.power_uw = m.energy_per_op_fj / m.latency_ns;
  m.power_steady_state_uw = m.energy_per_op_fj * m.throughput_mops * 1e-3;
  return sm;
}

pipeline_comparison compare_metrics(const mig_network& original, const mig_network& pipelined,
                                    const technology& tech, unsigned phases) {
  pipeline_comparison c;
  c.original = compute_metrics(original, tech, false, phases);
  c.pipelined = compute_metrics(pipelined, tech, true, phases);
  c.ta_gain = c.pipelined.throughput_per_area() / c.original.throughput_per_area();
  c.tp_gain = c.pipelined.throughput_per_power() / c.original.throughput_per_power();
  return c;
}

}  // namespace wavemig
