#pragma once

#include <cctype>
#include <string>
#include <vector>

namespace wavemig::registry {

/// Case-insensitive name comparison shared by the technology and scenario
/// registries ("fdm-swd" resolves like "FDM-SWD").
inline bool iequals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

inline std::string unknown_name_message(const char* who, const std::string& name,
                                        const std::vector<std::string>& names) {
  std::string msg = std::string{who} + ": unknown name '" + name + "' (known:";
  for (const auto& n : names) {
    msg += ' ';
    msg += n;
  }
  msg += ')';
  return msg;
}

}  // namespace wavemig::registry
