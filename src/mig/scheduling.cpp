#include "wavemig/scheduling.hpp"

#include <algorithm>

namespace wavemig {

namespace {

level_map compute_alap(const mig_network& net, const level_map& asap) {
  const std::uint32_t depth = asap.depth;
  const auto fanouts = compute_fanouts(net);

  level_map result;
  result.depth = depth;
  result.level.assign(net.num_nodes(), 0);

  // Reverse topological sweep (indices descend through consumers first).
  for (node_index n = static_cast<node_index>(net.num_nodes()); n-- > 1;) {
    if (!net.is_majority(n) && !net.is_buffer(n) && !net.is_fanout_gate(n)) {
      continue;  // PIs and constants stay at level 0
    }
    std::uint32_t latest = depth;  // unreferenced nodes float to the bottom
    for (const auto& edge : fanouts.edges[n]) {
      if (edge.consumer == fanout_map::po_consumer) {
        // PO virtual consumer at depth + 1: drivers pin to the depth, which
        // aligns the outputs without padding buffers.
        latest = std::min(latest, depth);
      } else {
        latest = std::min(latest, result.level[edge.consumer] - 1);
      }
    }
    result.level[n] = latest;
  }
  return result;
}

}  // namespace

level_map compute_schedule(const mig_network& net, schedule_policy policy) {
  level_map asap = compute_levels(net);
  if (policy == schedule_policy::asap) {
    return asap;
  }
  level_map alap = compute_alap(net, asap);
  if (policy == schedule_policy::alap) {
    return alap;
  }

  // Mid-slack: midpoint of the window, then a forward legalization pass
  // (midpoints of different fan-ins can collide).
  level_map result;
  result.depth = asap.depth;
  result.level.assign(net.num_nodes(), 0);
  net.foreach_node([&](node_index n) {
    if (!net.is_majority(n) && !net.is_buffer(n) && !net.is_fanout_gate(n)) {
      return;
    }
    std::uint32_t lvl = (asap.level[n] + alap.level[n]) / 2;
    for (const signal f : net.fanins(n)) {
      if (!net.is_constant(f.index())) {
        lvl = std::max(lvl, result.level[f.index()] + 1);
      }
    }
    result.level[n] = std::min(lvl, alap.level[n]);
  });
  return result;
}

bool is_valid_schedule(const mig_network& net, const level_map& levels) {
  if (levels.level.size() != net.num_nodes()) {
    return false;
  }
  bool valid = true;
  net.foreach_node([&](node_index n) {
    if (net.is_pi(n) || net.is_constant(n)) {
      if (levels.level[n] != 0) {
        valid = false;
      }
      return;
    }
    if (levels.level[n] > levels.depth) {
      valid = false;
    }
    for (const signal f : net.fanins(n)) {
      if (!net.is_constant(f.index()) && levels.level[n] < levels.level[f.index()] + 1) {
        valid = false;
      }
    }
  });
  return valid;
}

std::uint64_t slack_sum(const mig_network& net, const level_map& levels) {
  std::uint64_t total = 0;
  net.foreach_node([&](node_index n) {
    for (const signal f : net.fanins(n)) {
      if (!net.is_constant(f.index())) {
        total += levels.level[n] - levels.level[f.index()] - 1;
      }
    }
  });
  return total;
}

}  // namespace wavemig
