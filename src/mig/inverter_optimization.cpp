#include "wavemig/inverter_optimization.hpp"

#include "wavemig/levels.hpp"

namespace wavemig {

namespace {

bool edge_has_inverter(const mig_network& net, const std::vector<bool>& flip, signal edge,
                       node_index consumer_or_po, bool is_po) {
  const node_index driver = edge.index();
  if (net.is_constant(driver)) {
    return false;
  }
  bool present = edge.is_complemented();
  if (flip[driver]) {
    present = !present;
  }
  if (!is_po && flip[consumer_or_po]) {
    present = !present;
  }
  return present;
}

}  // namespace

std::size_t count_inverters(const mig_network& net, const std::vector<bool>& flip) {
  std::size_t count = 0;
  net.foreach_node([&](node_index n) {
    for (const signal f : net.fanins(n)) {
      if (edge_has_inverter(net, flip, f, n, false)) {
        ++count;
      }
    }
  });
  for (const auto& po : net.pos()) {
    if (edge_has_inverter(net, flip, po.driver, 0, true)) {
      ++count;
    }
  }
  return count;
}

std::size_t count_inverters(const mig_network& net) {
  return count_inverters(net, std::vector<bool>(net.num_nodes(), false));
}

polarity_assignment optimize_inverters(const mig_network& net) {
  polarity_assignment result;
  result.flip.assign(net.num_nodes(), false);

  const auto fanouts = compute_fanouts(net);

  // Gain of flipping node n: every touching non-constant edge toggles its
  // inverter, so gain = (#present) - (#absent) over in- and out-edges.
  auto gain = [&](node_index n) -> long {
    long present = 0;
    long absent = 0;
    for (const signal f : net.fanins(n)) {
      if (net.is_constant(f.index())) {
        continue;
      }
      if (edge_has_inverter(net, result.flip, f, n, false)) {
        ++present;
      } else {
        ++absent;
      }
    }
    for (const auto& edge : fanouts.edges[n]) {
      const bool is_po = edge.consumer == fanout_map::po_consumer;
      signal s;
      if (is_po) {
        s = net.po_signal(edge.slot);
      } else {
        s = net.fanins(edge.consumer)[edge.slot];
      }
      if (edge_has_inverter(net, result.flip, s, edge.consumer, is_po)) {
        ++present;
      } else {
        ++absent;
      }
    }
    return present - absent;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    net.foreach_node([&](node_index n) {
      const auto k = net.kind(n);
      if (k != node_kind::majority && k != node_kind::buffer && k != node_kind::fanout) {
        return;
      }
      if (gain(n) > 0) {
        result.flip[n] = !result.flip[n];
        changed = true;
      }
    });
  }

  result.inverter_count = count_inverters(net, result.flip);
  return result;
}

}  // namespace wavemig
