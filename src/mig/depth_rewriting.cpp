#include "wavemig/depth_rewriting.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "wavemig/cleanup.hpp"
#include "wavemig/levels.hpp"

namespace wavemig {

namespace {

/// Builder that tracks levels of the network under construction so that
/// rewriting decisions can be made against the *new* structure.
class leveled_builder {
public:
  explicit leveled_builder(mig_network& net) : net_{net} { sync(); }

  [[nodiscard]] std::uint32_t level_of(signal s) const {
    return net_.is_constant(s.index()) ? 0 : levels_[s.index()];
  }

  signal create_maj(signal a, signal b, signal c) {
    const signal s = net_.create_maj(a, b, c);
    sync();
    return s;
  }

  mig_network& net() { return net_; }

  /// Catches up on nodes created directly on the network (PIs, buffers,
  /// fan-out gates). Must be called before level_of sees their signals —
  /// otherwise level_of reads past the end of the level table.
  void sync() {
    while (levels_.size() < net_.num_nodes()) {
      const auto n = static_cast<node_index>(levels_.size());
      std::uint32_t lvl = 0;
      for (const signal f : net_.fanins(n)) {
        if (!net_.is_constant(f.index())) {
          lvl = std::max(lvl, levels_[f.index()] + 1);
        }
      }
      levels_.push_back(lvl);
    }
  }

private:
  mig_network& net_;
  std::vector<std::uint32_t> levels_;
};

/// One candidate decomposition of a majority gate: the deepest fan-in `g`
/// (which must reference a majority node) and the two shallow siblings.
struct split {
  signal g;
  signal s1;
  signal s2;
};

signal build_with_rules(leveled_builder& b, signal x, signal y, signal z, bool allow_area) {
  b.sync();  // PIs/buffers/fan-outs are created on the network directly
  auto lvl = [&](signal s) { return b.level_of(s); };
  const std::uint32_t baseline = std::max({lvl(x), lvl(y), lvl(z)}) + 1;

  // Consider each fan-in as the critical decomposition point.
  const std::array<split, 3> splits{{{x, y, z}, {y, x, z}, {z, x, y}}};

  signal best_result = constant0;
  std::uint32_t best_level = baseline;
  bool found = false;

  for (const auto& sp : splits) {
    const mig_network& net = b.net();
    if (!net.is_majority(sp.g.index())) {
      continue;
    }
    const std::uint32_t lg = lvl(sp.g);
    const std::uint32_t ls = std::max(lvl(sp.s1), lvl(sp.s2));
    if (lg < ls + 2 || lg < 2) {
      continue;  // no room for improvement through this fan-in
    }

    // Grandchildren with the complement of g pushed inside (self-duality).
    const auto fis = net.fanins(sp.g.index());
    std::array<signal, 3> gc{fis[0].complement_if(sp.g.is_complemented()),
                             fis[1].complement_if(sp.g.is_complemented()),
                             fis[2].complement_if(sp.g.is_complemented())};

    // Associativity: requires a signal u shared between {s1,s2} and the
    // grandchildren: M(u, s, M(u, p, q)) = M(u, q, M(u, p, s)) — swap the
    // shallow sibling s with the deep grandchild q.
    for (unsigned i = 0; i < 3; ++i) {
      for (const signal s_shared : {sp.s1, sp.s2}) {
        if (gc[i] != s_shared) {
          continue;
        }
        const signal u = gc[i];
        const signal other = s_shared == sp.s1 ? sp.s2 : sp.s1;
        signal p = gc[(i + 1) % 3];
        signal q = gc[(i + 2) % 3];
        if (lvl(p) > lvl(q)) {
          std::swap(p, q);
        }
        // Only beneficial when the grandchild we hoist is deeper than the
        // sibling we push down.
        if (lvl(q) <= lvl(other)) {
          continue;
        }
        const std::uint32_t inner_est = std::max({lvl(p), lvl(u), lvl(other)}) + 1;
        const std::uint32_t est = std::max({lvl(q), lvl(u), inner_est}) + 1;
        if (est < best_level) {
          const signal inner = b.create_maj(u, p, other);
          const signal outer = b.create_maj(u, q, inner);
          best_result = outer;
          best_level = b.level_of(outer);
          found = true;
        }
      }
    }

    // Distributivity: M(s1, s2, M(u, v, q)) = M(M(s1,s2,u), M(s1,s2,v), q)
    // hides the critical grandchild q at the cost of one duplicated gate.
    if (allow_area) {
      std::array<signal, 3> sorted = gc;
      std::sort(sorted.begin(), sorted.end(),
                [&](signal a_, signal b_) { return lvl(a_) < lvl(b_); });
      const signal u = sorted[0];
      const signal v = sorted[1];
      const signal q = sorted[2];
      const std::uint32_t est =
          std::max({std::max({lvl(sp.s1), lvl(sp.s2), lvl(u)}) + 1,
                    std::max({lvl(sp.s1), lvl(sp.s2), lvl(v)}) + 1, lvl(q)}) +
          1;
      if (est < best_level) {
        const signal left = b.create_maj(sp.s1, sp.s2, u);
        const signal right = b.create_maj(sp.s1, sp.s2, v);
        const signal outer = b.create_maj(left, right, q);
        best_result = outer;
        best_level = b.level_of(outer);
        found = true;
      }
    }
  }

  if (found) {
    return best_result;
  }
  return b.create_maj(x, y, z);
}

mig_network rewrite_once(const mig_network& net, bool allow_area) {
  mig_network result;
  leveled_builder builder{result};

  std::vector<signal> map(net.num_nodes(), constant0);
  net.foreach_node([&](node_index n) {
    auto mapped = [&](signal s) { return map[s.index()].complement_if(s.is_complemented()); };
    switch (net.kind(n)) {
      case node_kind::primary_input:
        map[n] = result.create_pi(net.pi_name(net.pi_position(n)));
        break;
      case node_kind::majority: {
        const auto fis = net.fanins(n);
        map[n] = build_with_rules(builder, mapped(fis[0]), mapped(fis[1]), mapped(fis[2]),
                                  allow_area);
        break;
      }
      case node_kind::buffer:
        map[n] = result.create_buffer(mapped(net.fanins(n)[0]));
        break;
      case node_kind::fanout:
        map[n] = result.create_fanout(mapped(net.fanins(n)[0]));
        break;
      default:
        break;
    }
  });

  for (const auto& po : net.pos()) {
    result.create_po(map[po.driver.index()].complement_if(po.driver.is_complemented()), po.name);
  }
  return cleanup_dangling(result);
}

}  // namespace wavemig::(anonymous)

mig_network depth_rewrite(const mig_network& net, const depth_rewriting_options& options) {
  mig_network current = cleanup_dangling(net);
  std::uint32_t best_depth = compute_levels(current).depth;

  for (unsigned iteration = 0; iteration < options.max_iterations; ++iteration) {
    mig_network next = rewrite_once(current, options.allow_area_increase);
    const std::uint32_t next_depth = compute_levels(next).depth;
    if (next_depth >= best_depth) {
      break;
    }
    best_depth = next_depth;
    current = std::move(next);
  }
  return current;
}

}  // namespace wavemig
