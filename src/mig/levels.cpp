#include "wavemig/levels.hpp"

#include <algorithm>

namespace wavemig {

level_map compute_levels(const mig_network& net) {
  level_map result;
  result.level.assign(net.num_nodes(), 0);

  net.foreach_node([&](node_index n) {
    std::uint32_t lvl = 0;
    bool has_wave_input = false;
    for (const signal f : net.fanins(n)) {
      if (net.is_constant(f.index())) {
        continue;
      }
      has_wave_input = true;
      lvl = std::max(lvl, result.level[f.index()] + 1);
    }
    // A component fed only by constants would be degenerate; canonicalization
    // prevents it for majority gates, and buffers/FOGs on constants keep
    // level 0 + 1 via the has_wave_input fallback below.
    if (!has_wave_input && (net.is_majority(n) || net.is_buffer(n) || net.is_fanout_gate(n))) {
      lvl = 1;
    }
    result.level[n] = lvl;
  });

  for (const auto& po : net.pos()) {
    if (!net.is_constant(po.driver.index())) {
      result.depth = std::max(result.depth, result.level[po.driver.index()]);
    }
  }
  return result;
}

std::uint32_t max_exclusive_base_distance(const mig_network& net, const level_map& levels,
                                          node_index n) {
  (void)net;
  const std::uint32_t own = levels.level[n];
  return own == 0 ? 0 : own - 1;
}

fanout_map compute_fanouts(const mig_network& net) {
  fanout_map result;
  result.edges.resize(net.num_nodes());

  net.foreach_node([&](node_index n) {
    const auto fis = net.fanins(n);
    for (std::uint32_t slot = 0; slot < fis.size(); ++slot) {
      const node_index driver = fis[slot].index();
      if (!net.is_constant(driver)) {
        result.edges[driver].push_back({n, slot});
      }
    }
  });

  for (std::uint32_t position = 0; position < net.num_pos(); ++position) {
    const node_index driver = net.po_signal(position).index();
    if (!net.is_constant(driver)) {
      result.edges[driver].push_back({fanout_map::po_consumer, position});
    }
  }
  return result;
}

std::size_t max_fanout_degree(const mig_network& net) {
  const auto fanouts = compute_fanouts(net);
  std::size_t best = 0;
  net.foreach_node([&](node_index n) {
    if (!net.is_constant(n)) {
      best = std::max(best, fanouts.degree(n));
    }
  });
  return best;
}

network_stats compute_stats(const mig_network& net) {
  network_stats s;
  s.pis = net.num_pis();
  s.pos = net.num_pos();
  s.majorities = net.num_majorities();
  s.buffers = net.num_buffers();
  s.fanout_gates = net.num_fanout_gates();
  s.components = net.num_components();
  s.depth = compute_levels(net).depth;
  s.max_fanout = max_fanout_degree(net);
  return s;
}

}  // namespace wavemig
