#include "wavemig/mig.hpp"

#include <algorithm>
#include <stdexcept>

namespace wavemig {

namespace {

void check_signal(const std::vector<mig_network::node>& nodes, signal s, const char* what) {
  if (s.index() >= nodes.size()) {
    throw std::invalid_argument{std::string{what} + ": signal references unknown node"};
  }
}

}  // namespace

mig_network::mig_network() {
  nodes_.push_back(node{node_kind::constant, {}, 0});
}

signal mig_network::create_pi(std::string name) {
  const auto index = static_cast<node_index>(nodes_.size());
  node n;
  n.kind = node_kind::primary_input;
  n.aux = static_cast<std::uint32_t>(pis_.size());
  nodes_.push_back(n);
  pis_.push_back(index);
  pi_names_.push_back(name.empty() ? "pi" + std::to_string(pis_.size() - 1) : std::move(name));
  return signal{index, false};
}

std::size_t mig_network::maj_key_hash::operator()(const maj_key& k) const noexcept {
  // FNV-1a over the three raw signal words.
  std::size_t h = 1469598103934665603ull;
  for (auto word : k.raw) {
    h ^= word;
    h *= 1099511628211ull;
  }
  return h;
}

signal mig_network::create_maj(signal a, signal b, signal c) {
  check_signal(nodes_, a, "create_maj");
  check_signal(nodes_, b, "create_maj");
  check_signal(nodes_, c, "create_maj");

  // Functional reductions: M(x,x,y) = x and M(x,!x,y) = y.
  if (a == b) return a;
  if (a == c) return a;
  if (b == c) return b;
  if (a == !b) return c;
  if (a == !c) return b;
  if (b == !c) return a;

  // Complement-parity canonicalization via self-duality:
  // with two or more complemented fan-ins, flip all three and complement
  // the output, so stored nodes have at most one complemented fan-in.
  const int complemented = static_cast<int>(a.is_complemented()) +
                           static_cast<int>(b.is_complemented()) +
                           static_cast<int>(c.is_complemented());
  bool output_complemented = false;
  if (complemented >= 2) {
    a = !a;
    b = !b;
    c = !c;
    output_complemented = true;
  }
  return lookup_or_create_maj(a, b, c, output_complemented);
}

signal mig_network::lookup_or_create_maj(signal a, signal b, signal c, bool output_complemented) {
  std::array<signal, 3> in{a, b, c};
  std::sort(in.begin(), in.end());

  const maj_key key{{in[0].raw(), in[1].raw(), in[2].raw()}};
  if (const auto it = strash_.find(key); it != strash_.end()) {
    return signal{it->second, output_complemented};
  }

  const auto index = static_cast<node_index>(nodes_.size());
  node n;
  n.kind = node_kind::majority;
  n.fanin = in;
  nodes_.push_back(n);
  strash_.emplace(key, index);
  ++num_majorities_;
  return signal{index, output_complemented};
}

signal mig_network::create_xor(signal a, signal b) {
  // a ^ b = (a | b) & !(a & b) = M(M(a,b,1), !M(a,b,0), 0)
  const signal any = create_or(a, b);
  const signal both = create_and(a, b);
  return create_and(any, !both);
}

signal mig_network::create_xor3(signal a, signal b, signal c) {
  return create_full_adder(a, b, c).first;
}

signal mig_network::create_mux(signal sel, signal t, signal e) {
  if (t == e) {
    return t;
  }
  // sel ? t : e = (sel & t) | (!sel & e)
  return create_or(create_and(sel, t), create_and(!sel, e));
}

std::pair<signal, signal> mig_network::create_full_adder(signal a, signal b, signal c) {
  const signal carry = create_maj(a, b, c);
  const signal sum = create_maj(!carry, create_maj(a, b, !c), c);
  return {sum, carry};
}

signal mig_network::create_buffer(signal in) {
  check_signal(nodes_, in, "create_buffer");
  const auto index = static_cast<node_index>(nodes_.size());
  node n;
  n.kind = node_kind::buffer;
  n.fanin[0] = in;
  nodes_.push_back(n);
  ++num_buffers_;
  return signal{index, false};
}

signal mig_network::create_fanout(signal in) {
  check_signal(nodes_, in, "create_fanout");
  const auto index = static_cast<node_index>(nodes_.size());
  node n;
  n.kind = node_kind::fanout;
  n.fanin[0] = in;
  nodes_.push_back(n);
  ++num_fanouts_;
  return signal{index, false};
}

std::uint32_t mig_network::create_po(signal driver, std::string name) {
  check_signal(nodes_, driver, "create_po");
  const auto position = static_cast<std::uint32_t>(pos_.size());
  pos_.push_back(output{driver, name.empty() ? "po" + std::to_string(position) : std::move(name)});
  return position;
}

std::span<const signal> mig_network::fanins(node_index n) const {
  const auto& nd = nodes_[n];
  switch (nd.kind) {
    case node_kind::majority:
      return {nd.fanin.data(), 3};
    case node_kind::buffer:
    case node_kind::fanout:
      return {nd.fanin.data(), 1};
    default:
      return {};
  }
}

}  // namespace wavemig
