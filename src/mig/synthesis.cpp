#include "wavemig/synthesis.hpp"

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace wavemig {

namespace {

struct table_hash {
  std::size_t operator()(const std::vector<std::uint64_t>& words) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (auto w : words) {
      h ^= static_cast<std::size_t>(w);
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// Extracts the cofactor of the top variable (index num_vars-1): the lower
/// or upper half of the bit string, over num_vars-1 variables.
truth_table top_cofactor(const truth_table& tt, bool polarity) {
  const unsigned vars = tt.num_vars();
  truth_table result{vars - 1};
  const std::uint64_t half = std::uint64_t{1} << (vars - 1);
  for (std::uint64_t i = 0; i < half; ++i) {
    result.set_bit(i, tt.get_bit(polarity ? i + half : i));
  }
  return result;
}

class shannon_builder {
public:
  shannon_builder(mig_network& net, std::span<const signal> inputs) : net_{net}, inputs_{inputs} {}

  signal build(const truth_table& tt) {
    const unsigned vars = tt.num_vars();
    if (tt == truth_table::constant(vars, false)) {
      return constant0;
    }
    if (tt == truth_table::constant(vars, true)) {
      return constant1;
    }
    for (unsigned v = 0; v < vars; ++v) {
      const auto proj = truth_table::nth_var(vars, v);
      if (tt == proj) {
        return inputs_[v];
      }
      if (tt == ~proj) {
        return !inputs_[v];
      }
    }

    if (const auto it = cache_.find(tt.words()); it != cache_.end()) {
      // Cache keys are per variable count; collisions across widths are
      // avoided because recursion depth fixes the width for equal keys only
      // when bit counts match.
      if (it->second.vars == vars) {
        return it->second.s;
      }
    }

    const signal high = build(top_cofactor(tt, true));
    const signal low = build(top_cofactor(tt, false));
    const signal sel = inputs_[vars - 1];
    const signal result = net_.create_mux(sel, high, low);
    cache_[tt.words()] = {result, vars};
    return result;
  }

private:
  struct entry {
    signal s;
    unsigned vars;
  };

  mig_network& net_;
  std::span<const signal> inputs_;
  std::unordered_map<std::vector<std::uint64_t>, entry, table_hash> cache_;
};

}  // namespace

signal synthesize_truth_table(mig_network& net, const truth_table& tt,
                              std::span<const signal> inputs) {
  if (inputs.size() != tt.num_vars()) {
    throw std::invalid_argument{"synthesize_truth_table: input count must match variable count"};
  }
  shannon_builder builder{net, inputs};
  return builder.build(tt);
}

}  // namespace wavemig
