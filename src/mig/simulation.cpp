#include "wavemig/simulation.hpp"

#include <random>
#include <stdexcept>

namespace wavemig {

namespace {

std::uint64_t read_word(const std::vector<std::uint64_t>& values, signal s) {
  const std::uint64_t v = values[s.index()];
  return s.is_complemented() ? ~v : v;
}

}  // namespace

std::vector<std::uint64_t> simulate_words(const mig_network& net,
                                          const std::vector<std::uint64_t>& pi_words) {
  if (pi_words.size() != net.num_pis()) {
    throw std::invalid_argument{"simulate_words: one word per primary input required"};
  }

  std::vector<std::uint64_t> values(net.num_nodes(), 0);
  net.foreach_node([&](node_index n) {
    switch (net.kind(n)) {
      case node_kind::constant:
        values[n] = 0;
        break;
      case node_kind::primary_input:
        values[n] = pi_words[net.pi_position(n)];
        break;
      case node_kind::majority: {
        const auto fis = net.fanins(n);
        const std::uint64_t a = read_word(values, fis[0]);
        const std::uint64_t b = read_word(values, fis[1]);
        const std::uint64_t c = read_word(values, fis[2]);
        values[n] = (a & b) | (b & c) | (a & c);
        break;
      }
      case node_kind::buffer:
      case node_kind::fanout:
        values[n] = read_word(values, net.fanins(n)[0]);
        break;
    }
  });

  std::vector<std::uint64_t> result;
  result.reserve(net.num_pos());
  for (const auto& po : net.pos()) {
    result.push_back(read_word(values, po.driver));
  }
  return result;
}

std::vector<truth_table> simulate_truth_tables(const mig_network& net) {
  const auto num_vars = static_cast<unsigned>(net.num_pis());
  if (num_vars > 20) {
    throw std::invalid_argument{"simulate_truth_tables: at most 20 inputs supported"};
  }

  std::vector<truth_table> values(net.num_nodes(), truth_table{num_vars});
  net.foreach_node([&](node_index n) {
    switch (net.kind(n)) {
      case node_kind::constant:
        break;  // already constant 0
      case node_kind::primary_input:
        values[n] = truth_table::nth_var(num_vars, static_cast<unsigned>(net.pi_position(n)));
        break;
      case node_kind::majority: {
        const auto fis = net.fanins(n);
        auto in = [&](signal s) {
          return s.is_complemented() ? ~values[s.index()] : values[s.index()];
        };
        values[n] = truth_table::maj(in(fis[0]), in(fis[1]), in(fis[2]));
        break;
      }
      case node_kind::buffer:
      case node_kind::fanout: {
        const signal s = net.fanins(n)[0];
        values[n] = s.is_complemented() ? ~values[s.index()] : values[s.index()];
        break;
      }
    }
  });

  std::vector<truth_table> result;
  result.reserve(net.num_pos());
  for (const auto& po : net.pos()) {
    result.push_back(po.driver.is_complemented() ? ~values[po.driver.index()]
                                                 : values[po.driver.index()]);
  }
  return result;
}

std::vector<bool> simulate_pattern(const mig_network& net, const std::vector<bool>& inputs) {
  if (inputs.size() != net.num_pis()) {
    throw std::invalid_argument{"simulate_pattern: one value per primary input required"};
  }
  std::vector<std::uint64_t> words(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    words[i] = inputs[i] ? ~std::uint64_t{0} : 0;
  }
  const auto out = simulate_words(net, words);
  std::vector<bool> result(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    result[i] = (out[i] & 1u) != 0;
  }
  return result;
}

bool functionally_equivalent(const mig_network& a, const mig_network& b, unsigned rounds,
                             std::uint64_t seed, unsigned exact_limit) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) {
    return false;
  }
  if (a.num_pis() <= exact_limit) {
    return simulate_truth_tables(a) == simulate_truth_tables(b);
  }

  std::mt19937_64 rng{seed};
  for (unsigned round = 0; round < rounds; ++round) {
    std::vector<std::uint64_t> words(a.num_pis());
    for (auto& w : words) {
      w = rng();
    }
    if (simulate_words(a, words) != simulate_words(b, words)) {
      return false;
    }
  }
  return true;
}

}  // namespace wavemig
