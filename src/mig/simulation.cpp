#include "wavemig/simulation.hpp"

#include <random>
#include <stdexcept>

#include "wavemig/engine/compiled_netlist.hpp"

// Thin front-ends over the compiled execution engine: every entry point
// lowers the network once (engine::compiled_netlist) and evaluates the
// folded majority-only program — buffers and fan-out gates cost nothing
// here, and repeated evaluations (equivalence checking) reuse the compile.

namespace wavemig {

std::vector<std::uint64_t> simulate_words(const mig_network& net,
                                          const std::vector<std::uint64_t>& pi_words) {
  if (pi_words.size() != net.num_pis()) {
    throw std::invalid_argument{"simulate_words: one word per primary input required"};
  }
  return engine::compiled_netlist::comb_only(net).eval_words(pi_words);
}

std::vector<truth_table> simulate_truth_tables(const mig_network& net) {
  const auto num_vars = static_cast<unsigned>(net.num_pis());
  if (num_vars > 20) {
    throw std::invalid_argument{"simulate_truth_tables: at most 20 inputs supported"};
  }

  const auto compiled = engine::compiled_netlist::comb_only(net);
  std::vector<truth_table> slots;
  compiled.eval([&](std::uint32_t i) { return truth_table::nth_var(num_vars, i); },
                truth_table{num_vars}, slots);

  std::vector<truth_table> result;
  result.reserve(net.num_pos());
  for (std::size_t p = 0; p < net.num_pos(); ++p) {
    result.push_back(compiled.po_value(slots, p));
  }
  return result;
}

std::vector<bool> simulate_pattern(const mig_network& net, const std::vector<bool>& inputs) {
  if (inputs.size() != net.num_pis()) {
    throw std::invalid_argument{"simulate_pattern: one value per primary input required"};
  }
  std::vector<std::uint64_t> words(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    words[i] = inputs[i] ? ~std::uint64_t{0} : 0;
  }
  const auto out = simulate_words(net, words);
  std::vector<bool> result(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    result[i] = (out[i] & 1u) != 0;
  }
  return result;
}

bool functionally_equivalent(const mig_network& a, const mig_network& b, unsigned rounds,
                             std::uint64_t seed, unsigned exact_limit) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) {
    return false;
  }
  if (a.num_pis() <= exact_limit) {
    return simulate_truth_tables(a) == simulate_truth_tables(b);
  }

  // Compile both networks once and reuse scratch across the random rounds.
  const auto ca = engine::compiled_netlist::comb_only(a);
  const auto cb = engine::compiled_netlist::comb_only(b);
  std::vector<std::uint64_t> words(a.num_pis());
  std::vector<std::uint64_t> out_a(a.num_pos());
  std::vector<std::uint64_t> out_b(b.num_pos());
  std::vector<std::uint64_t> scratch_a;
  std::vector<std::uint64_t> scratch_b;

  std::mt19937_64 rng{seed};
  for (unsigned round = 0; round < rounds; ++round) {
    for (auto& w : words) {
      w = rng();
    }
    ca.eval_words_into(words.data(), out_a.data(), scratch_a);
    cb.eval_words_into(words.data(), out_b.data(), scratch_b);
    if (out_a != out_b) {
      return false;
    }
  }
  return true;
}

}  // namespace wavemig
