#include "wavemig/functional_reduction.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "wavemig/cleanup.hpp"

namespace wavemig {

namespace {

/// 16-bit truth-table projections for up to four cut leaves. Functions of
/// fewer leaves replicate across the unused variables, so plain word
/// equality compares functions correctly at any width.
constexpr std::uint16_t projections[4] = {0xAAAA, 0xCCCC, 0xF0F0, 0xFF00};

struct cut {
  std::vector<node_index> leaves;  // sorted
  std::uint16_t tt{0};

  friend bool operator==(const cut& a, const cut& b) {
    return a.leaves == b.leaves && a.tt == b.tt;
  }
};

/// Re-expresses `tt` (over `from`) over the superset `to`.
std::uint16_t expand(std::uint16_t tt, const std::vector<node_index>& from,
                     const std::vector<node_index>& to) {
  unsigned position[4] = {0, 0, 0, 0};
  for (std::size_t i = 0; i < from.size(); ++i) {
    position[i] = static_cast<unsigned>(
        std::find(to.begin(), to.end(), from[i]) - to.begin());
  }
  std::uint16_t out = 0;
  for (unsigned m = 0; m < 16; ++m) {
    unsigned old_m = 0;
    for (std::size_t i = 0; i < from.size(); ++i) {
      if ((m >> position[i]) & 1u) {
        old_m |= 1u << i;
      }
    }
    if ((tt >> old_m) & 1u) {
      out |= static_cast<std::uint16_t>(1u << m);
    }
  }
  return out;
}

class reducer {
public:
  reducer(const mig_network& old_net, const functional_reduction_options& options)
      : old_{old_net}, options_{options} {}

  functional_reduction_result run() {
    functional_reduction_result result;
    std::vector<signal> map(old_.num_nodes(), constant0);

    old_.foreach_node([&](node_index n) {
      auto mapped = [&](signal s) { return map[s.index()].complement_if(s.is_complemented()); };
      switch (old_.kind(n)) {
        case node_kind::primary_input:
          map[n] = new_net_.create_pi(old_.pi_name(old_.pi_position(n)));
          ensure_trivial_cut(map[n].index());
          break;
        case node_kind::majority: {
          const auto fis = old_.fanins(n);
          map[n] = build_maj(mapped(fis[0]), mapped(fis[1]), mapped(fis[2]), result);
          break;
        }
        case node_kind::buffer:
          map[n] = new_net_.create_buffer(mapped(old_.fanins(n)[0]));
          ensure_trivial_cut(map[n].index());
          break;
        case node_kind::fanout:
          map[n] = new_net_.create_fanout(mapped(old_.fanins(n)[0]));
          ensure_trivial_cut(map[n].index());
          break;
        default:
          break;
      }
    });

    for (const auto& po : old_.pos()) {
      new_net_.create_po(map[po.driver.index()].complement_if(po.driver.is_complemented()),
                         po.name);
    }
    result.net = cleanup_dangling(new_net_);
    result.merged_gates = new_net_.num_majorities() > result.net.num_majorities()
                              ? new_net_.num_majorities() - result.net.num_majorities()
                              : 0;
    return result;
  }

private:
  void ensure_trivial_cut(node_index n) {
    if (cuts_.size() <= n) {
      cuts_.resize(n + 1);
    }
    if (cuts_[n].empty() && !new_net_.is_constant(n)) {
      cuts_[n].push_back({{n}, projections[0]});
    }
  }

  /// Cut sets of a fan-in signal; constants have one empty-leaf cut whose
  /// table is the constant itself.
  std::vector<cut> cuts_of(signal s) {
    if (new_net_.is_constant(s.index())) {
      return {{{}, static_cast<std::uint16_t>(s.is_complemented() ? 0xFFFF : 0x0000)}};
    }
    ensure_trivial_cut(s.index());
    std::vector<cut> result = cuts_[s.index()];
    if (s.is_complemented()) {
      for (auto& c : result) {
        c.tt = static_cast<std::uint16_t>(~c.tt);
      }
    }
    return result;
  }

  signal build_maj(signal a, signal b, signal c, functional_reduction_result& stats) {
    (void)stats;
    const signal s = new_net_.create_maj(a, b, c);
    if (!new_net_.is_majority(s.index())) {
      return s;  // reduced to a constant/fan-in by canonicalization
    }
    const node_index n = s.index();
    if (cuts_.size() > n && !cuts_[n].empty()) {
      return s;  // structural-hash hit: cuts already registered
    }
    ensure_trivial_cut(n);

    // Merge one cut per fan-in; bound the combination count.
    const auto ca = cuts_of(new_net_.fanins(n)[0]);
    const auto cb = cuts_of(new_net_.fanins(n)[1]);
    const auto cc = cuts_of(new_net_.fanins(n)[2]);
    std::vector<cut> merged;
    const std::size_t budget = 4 * options_.cuts_per_node;
    for (const auto& x : ca) {
      for (const auto& y : cb) {
        for (const auto& z : cc) {
          if (merged.size() >= budget) {
            break;
          }
          std::vector<node_index> leaves = x.leaves;
          for (const auto& more : {y.leaves, z.leaves}) {
            for (const node_index l : more) {
              if (std::find(leaves.begin(), leaves.end(), l) == leaves.end()) {
                leaves.push_back(l);
              }
            }
          }
          if (leaves.size() > options_.cut_size) {
            continue;
          }
          std::sort(leaves.begin(), leaves.end());
          const std::uint16_t ta = expand(x.tt, x.leaves, leaves);
          const std::uint16_t tb = expand(y.tt, y.leaves, leaves);
          const std::uint16_t tc = expand(z.tt, z.leaves, leaves);
          const auto tt = static_cast<std::uint16_t>((ta & tb) | (tb & tc) | (ta & tc));
          cut candidate{std::move(leaves), tt};
          if (std::find(merged.begin(), merged.end(), candidate) == merged.end()) {
            merged.push_back(std::move(candidate));
          }
        }
      }
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const cut& l, const cut& r) { return l.leaves.size() < r.leaves.size(); });
    if (merged.size() > options_.cuts_per_node) {
      merged.resize(options_.cuts_per_node);
    }

    // Functional lookup: another node realizing any of these cut functions
    // (up to complement) replaces this one.
    for (const auto& m : merged) {
      if (m.leaves.empty()) {
        // The node is a constant function of no leaves; re-apply the
        // canonicalization complement of the created signal.
        return constant0.complement_if(((m.tt & 1u) != 0) ^ s.is_complemented());
      }
      const bool complemented = (m.tt & 1u) != 0;
      const auto canon = static_cast<std::uint16_t>(complemented ? ~m.tt : m.tt);
      const auto key = std::make_pair(m.leaves, canon);
      if (const auto it = table_.find(key); it != table_.end()) {
        const signal found = it->second.complement_if(complemented);
        if (found.index() != n) {
          // Drop n (left dangling; removed by the final cleanup) and hand
          // the equivalent signal to the consumers, restoring the
          // canonicalization complement of the created signal.
          return found.complement_if(s.is_complemented());
        }
      }
    }
    for (const auto& m : merged) {
      if (m.leaves.empty()) {
        continue;
      }
      const bool complemented = (m.tt & 1u) != 0;
      const auto canon = static_cast<std::uint16_t>(complemented ? ~m.tt : m.tt);
      table_.emplace(std::make_pair(m.leaves, canon), signal{n, complemented});
    }
    cuts_[n].insert(cuts_[n].end(), merged.begin(), merged.end());
    if (cuts_[n].size() > options_.cuts_per_node + 1) {
      cuts_[n].resize(options_.cuts_per_node + 1);
    }
    return s;
  }

  const mig_network& old_;
  const functional_reduction_options& options_;
  mig_network new_net_;
  std::vector<std::vector<cut>> cuts_;
  std::map<std::pair<std::vector<node_index>, std::uint16_t>, signal> table_;
};

}  // namespace

functional_reduction_result reduce_functionally(const mig_network& net,
                                                const functional_reduction_options& options) {
  reducer r{net, options};
  return r.run();
}

}  // namespace wavemig
