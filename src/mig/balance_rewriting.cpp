#include "wavemig/balance_rewriting.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "wavemig/cleanup.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/scheduling.hpp"

namespace wavemig {

namespace {

/// Lexicographic candidate score: depth first, then the fan-in level spread
/// summed over every node the candidate creates (each level of spread is a
/// future balancing buffer).
struct score {
  std::uint32_t level;
  std::uint64_t spread;

  friend bool operator<(const score& a, const score& b) {
    return a.level != b.level ? a.level < b.level : a.spread < b.spread;
  }
};

class balance_builder {
public:
  explicit balance_builder(mig_network& net, bool allow_area)
      : net_{net}, allow_area_{allow_area} {
    sync();
  }

  signal build(signal x, signal y, signal z) {
    sync();  // PIs/buffers/fan-outs are created on the network directly
    const score plain = triple_score(x, y, z);
    score best = plain;
    int best_kind = 0;  // 0 plain, 1 associativity, 2 distributivity
    std::array<signal, 5> best_args{};

    const std::array<std::array<signal, 3>, 3> splits{
        {{z, x, y}, {y, x, z}, {x, y, z}}};  // {g, s1, s2}
    for (const auto& sp : splits) {
      const signal g = sp[0];
      const signal s1 = sp[1];
      const signal s2 = sp[2];
      if (!net_.is_majority(g.index())) {
        continue;
      }
      const auto fis = net_.fanins(g.index());
      std::array<signal, 3> gc{fis[0].complement_if(g.is_complemented()),
                               fis[1].complement_if(g.is_complemented()),
                               fis[2].complement_if(g.is_complemented())};

      // Associativity M(u, s, M(u, p, q)) = M(u, q, M(u, p, s)).
      for (unsigned i = 0; i < 3; ++i) {
        for (const signal shared : {s1, s2}) {
          if (gc[i] != shared) {
            continue;
          }
          const signal u = gc[i];
          const signal other = shared == s1 ? s2 : s1;
          for (unsigned j = 1; j <= 2; ++j) {
            const signal p = gc[(i + j) % 3];
            const signal q = gc[(i + 3 - j) % 3];
            const score inner = triple_score(u, p, other);
            score candidate = triple_score_with(u, q, inner.level);
            candidate.spread += inner.spread;
            if (candidate < best) {
              best = candidate;
              best_kind = 1;
              best_args = {u, p, other, q, {}};
            }
          }
        }
      }

      // Distributivity M(s1, s2, M(a, b, c)) = M(M(s1,s2,a), M(s1,s2,b), c),
      // hiding the deepest grandchild c.
      if (allow_area_) {
        std::array<signal, 3> sorted = gc;
        std::sort(sorted.begin(), sorted.end(),
                  [&](signal a_, signal b_) { return level_of(a_) < level_of(b_); });
        const score left = triple_score(s1, s2, sorted[0]);
        const score right = triple_score(s1, s2, sorted[1]);
        score candidate =
            pair_score(std::max(left.level, right.level), level_of(sorted[2]),
                       std::min({left.level, right.level, level_of(sorted[2])}));
        candidate.spread += left.spread + right.spread;
        if (candidate < best) {
          best = candidate;
          best_kind = 2;
          best_args = {s1, s2, sorted[0], sorted[1], sorted[2]};
        }
      }
    }

    signal result;
    switch (best_kind) {
      case 1: {
        const signal inner = create(best_args[0], best_args[1], best_args[2]);
        result = create(best_args[0], best_args[3], inner);
        break;
      }
      case 2: {
        const signal left = create(best_args[0], best_args[1], best_args[2]);
        const signal right = create(best_args[0], best_args[1], best_args[3]);
        result = create(left, right, best_args[4]);
        break;
      }
      default:
        result = create(x, y, z);
        break;
    }
    return result;
  }

  signal create(signal a, signal b, signal c) {
    const signal s = net_.create_maj(a, b, c);
    sync();
    return s;
  }

  [[nodiscard]] std::uint32_t level_of(signal s) const {
    return net_.is_constant(s.index()) ? 0 : levels_[s.index()];
  }

private:
  /// Score of a fresh majority over three signals (spread ignores
  /// constants: a constant fan-in is gate-internal and buffers nothing).
  score triple_score(signal a, signal b, signal c) const {
    std::uint32_t lo = UINT32_MAX;
    std::uint32_t hi = 0;
    for (const signal s : {a, b, c}) {
      if (net_.is_constant(s.index())) {
        continue;
      }
      lo = std::min(lo, level_of(s));
      hi = std::max(hi, level_of(s));
    }
    if (lo == UINT32_MAX) {
      return {1, 0};
    }
    return {hi + 1, hi - lo};
  }

  /// Score of M(a, b, <inner at level l>).
  score triple_score_with(signal a, signal b, std::uint32_t inner_level) const {
    std::uint32_t lo = inner_level;
    std::uint32_t hi = inner_level;
    for (const signal s : {a, b}) {
      if (net_.is_constant(s.index())) {
        continue;
      }
      lo = std::min(lo, level_of(s));
      hi = std::max(hi, level_of(s));
    }
    return {hi + 1, hi - lo};
  }

  static score pair_score(std::uint32_t inner_max, std::uint32_t third, std::uint32_t lowest) {
    const std::uint32_t hi = std::max(inner_max, third);
    const std::uint32_t lo = std::min({inner_max, third, lowest});
    return {hi + 1, hi - lo};
  }

  void sync() {
    while (levels_.size() < net_.num_nodes()) {
      const auto n = static_cast<node_index>(levels_.size());
      std::uint32_t lvl = 0;
      for (const signal f : net_.fanins(n)) {
        if (!net_.is_constant(f.index())) {
          lvl = std::max(lvl, levels_[f.index()] + 1);
        }
      }
      levels_.push_back(lvl);
    }
  }

  mig_network& net_;
  bool allow_area_;
  std::vector<std::uint32_t> levels_;
};

mig_network rewrite_once(const mig_network& net, bool allow_area) {
  mig_network result;
  balance_builder builder{result, allow_area};

  std::vector<signal> map(net.num_nodes(), constant0);
  net.foreach_node([&](node_index n) {
    auto mapped = [&](signal s) { return map[s.index()].complement_if(s.is_complemented()); };
    switch (net.kind(n)) {
      case node_kind::primary_input:
        map[n] = result.create_pi(net.pi_name(net.pi_position(n)));
        break;
      case node_kind::majority: {
        const auto fis = net.fanins(n);
        map[n] = builder.build(mapped(fis[0]), mapped(fis[1]), mapped(fis[2]));
        break;
      }
      case node_kind::buffer:
        map[n] = result.create_buffer(mapped(net.fanins(n)[0]));
        break;
      case node_kind::fanout:
        map[n] = result.create_fanout(mapped(net.fanins(n)[0]));
        break;
      default:
        break;
    }
  });
  for (const auto& po : net.pos()) {
    result.create_po(map[po.driver.index()].complement_if(po.driver.is_complemented()), po.name);
  }
  return cleanup_dangling(result);
}

std::uint64_t imbalance(const mig_network& net) {
  return slack_sum(net, compute_levels(net));
}

}  // namespace

mig_network balance_rewrite(const mig_network& net, const balance_rewriting_options& options) {
  mig_network current = cleanup_dangling(net);
  std::uint32_t best_depth = compute_levels(current).depth;
  std::uint64_t best_imbalance = imbalance(current);

  for (unsigned iteration = 0; iteration < options.max_iterations; ++iteration) {
    mig_network next = rewrite_once(current, options.allow_area_increase);
    const std::uint32_t depth = compute_levels(next).depth;
    const std::uint64_t slack = imbalance(next);
    if (depth > best_depth || (depth == best_depth && slack >= best_imbalance)) {
      break;
    }
    best_depth = depth;
    best_imbalance = slack;
    current = std::move(next);
  }
  return current;
}

}  // namespace wavemig
