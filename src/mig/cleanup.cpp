#include "wavemig/cleanup.hpp"

#include <vector>

namespace wavemig {

mig_network cleanup_dangling(const mig_network& net) {
  std::vector<bool> live(net.num_nodes(), false);
  live[0] = true;
  for (const auto& po : net.pos()) {
    live[po.driver.index()] = true;
  }
  // Reverse sweep: fan-ins have smaller indices than their consumers.
  for (node_index n = static_cast<node_index>(net.num_nodes()); n-- > 1;) {
    if (!live[n]) {
      continue;
    }
    for (const signal f : net.fanins(n)) {
      live[f.index()] = true;
    }
  }

  mig_network result;
  std::vector<signal> map(net.num_nodes(), constant0);
  net.foreach_node([&](node_index n) {
    if (net.is_pi(n)) {
      map[n] = result.create_pi(net.pi_name(net.pi_position(n)));
      return;
    }
    if (!live[n]) {
      return;
    }
    auto mapped = [&](signal s) { return map[s.index()].complement_if(s.is_complemented()); };
    switch (net.kind(n)) {
      case node_kind::majority: {
        const auto fis = net.fanins(n);
        map[n] = result.create_maj(mapped(fis[0]), mapped(fis[1]), mapped(fis[2]));
        break;
      }
      case node_kind::buffer:
        map[n] = result.create_buffer(mapped(net.fanins(n)[0]));
        break;
      case node_kind::fanout:
        map[n] = result.create_fanout(mapped(net.fanins(n)[0]));
        break;
      default:
        break;
    }
  });

  for (const auto& po : net.pos()) {
    result.create_po(map[po.driver.index()].complement_if(po.driver.is_complemented()), po.name);
  }
  return result;
}

}  // namespace wavemig
