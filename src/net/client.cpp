#include "wavemig/net/client.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <thread>

#include "wavemig/io/mig_format.hpp"

namespace wavemig::net {

namespace {

/// Responses are bounded by the result planes of one request, which the
/// request itself bounded; anything past this is a corrupt stream.
constexpr std::size_t max_response_bytes = std::size_t{1} << 30;

}  // namespace

tcp_socket wire_client::dial(const std::string& host, std::uint16_t port) {
  tcp_socket sock = tcp_socket::connect(host, port);
  std::vector<std::uint8_t> preamble;
  {
    byte_writer w{preamble};
    w.u32(wire_magic);
    w.u32(wire_version);
  }
  sock.write_all(preamble.data(), preamble.size());
  std::uint8_t echo[8];
  if (!sock.read_exact(echo, sizeof echo)) {
    throw socket_error{"wire: server closed during handshake"};
  }
  byte_reader r{echo, sizeof echo};
  if (r.u32() != wire_magic || r.u32() != wire_version) {
    throw protocol_error{"wire: server preamble mismatch"};
  }
  return sock;
}

wire_client wire_client::connect(std::uint16_t port, const std::string& host) {
  return wire_client{dial(host, port), host, port};
}

void wire_client::set_retry_policy(retry_policy policy) {
  policy_ = policy;
  if (sock_.valid()) {
    sock_.set_receive_timeout(policy_.try_timeout);
  }
}

void wire_client::reconnect() {
  sock_ = dial(host_, port_);
  if (policy_.try_timeout.count() > 0) {
    sock_.set_receive_timeout(policy_.try_timeout);
  }
  ++stats_.reconnects;
  // Replay every tracked request whose response never arrived. Runs are
  // pure functions of their payload, so the server executing a replay (even
  // when the original also executed, its response lost) is harmless — the
  // answer is bit-identical either way.
  for (const auto& [id, req] : unanswered_) {
    write_request(req);
    ++stats_.resends;
  }
}

void wire_client::write_request(const run_request& req) {
  const auto prefix = encode_run_frame_prefix(req);
  sock_.write_all(prefix.data(), prefix.size());
  if (req.payload.empty()) {
    return;
  }
  if constexpr (std::endian::native == std::endian::little) {
    // Wire order is native order: the tracked payload goes out as-is, no
    // copy, and stays intact for the next replay.
    sock_.write_all(req.payload.data(), req.payload.size() * sizeof(std::uint64_t));
  } else {
    std::vector<std::uint64_t> wire_words = req.payload;
    words_to_wire(wire_words.data(), wire_words.size());
    sock_.write_all(wire_words.data(), wire_words.size() * sizeof(std::uint64_t));
  }
}

std::uint64_t wire_client::register_netlist(const std::string& mig_text) {
  register_request req;
  req.id = next_id_++;
  req.netlist = mig_text;
  const auto frame = encode_register_frame(req);
  sock_.write_all(frame.data(), frame.size());
  wire_response resp = receive_matching(req.id);
  if (resp.status != wire_status::ok) {
    throw wire_error{resp.status, resp.message};
  }
  return resp.fingerprint;
}

std::uint64_t wire_client::register_program(const mig_network& net) {
  std::ostringstream os;
  io::write_mig(net, os);
  return register_netlist(os.str());
}

std::uint64_t wire_client::send(run_request req) {
  if (req.id == 0) {
    req.id = next_id_++;
  }
  const auto prefix = encode_run_frame_prefix(req);
  sock_.write_all(prefix.data(), prefix.size());
  if (!req.payload.empty()) {
    words_to_wire(req.payload.data(), req.payload.size());
    sock_.write_all(req.payload.data(), req.payload.size() * sizeof(std::uint64_t));
  }
  return req.id;
}

wire_response wire_client::receive() {
  if (!stashed_.empty()) {
    wire_response resp = std::move(stashed_.front());
    stashed_.pop_front();
    return resp;
  }
  return receive_from_socket();
}

wire_response wire_client::receive_matching(std::uint64_t id) {
  // The stash is checked once, up front. The read loop below must go to the
  // socket directly: popping the stash there would re-stash the same
  // non-matching response forever instead of making progress.
  for (auto it = stashed_.begin(); it != stashed_.end(); ++it) {
    if (it->id == id) {
      wire_response resp = std::move(*it);
      stashed_.erase(it);
      return resp;
    }
  }
  for (;;) {
    wire_response resp = receive_from_socket();
    if (resp.id == id) {
      return resp;
    }
    stashed_.push_back(std::move(resp));
  }
}

wire_response wire_client::receive_from_socket() {
  std::uint8_t len_bytes[4];
  if (!sock_.read_exact(len_bytes, sizeof len_bytes)) {
    throw socket_error{"wire: connection closed"};
  }
  byte_reader len_reader{len_bytes, sizeof len_bytes};
  const std::uint32_t body_len = len_reader.u32();
  if (body_len < response_fixed_bytes || body_len > max_response_bytes) {
    throw protocol_error{"wire: response length out of bounds"};
  }

  std::uint8_t fixed[response_fixed_bytes];
  if (!sock_.read_exact(fixed, sizeof fixed)) {
    throw socket_error{"wire: connection closed mid-response"};
  }
  byte_reader r{fixed, sizeof fixed};
  if (r.u8() != static_cast<std::uint8_t>(frame_kind::response)) {
    throw protocol_error{"wire: expected a response frame"};
  }
  wire_response resp;
  resp.id = r.u64();
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(wire_status::watchdog_expired)) {
    throw protocol_error{"wire: unknown response status"};
  }
  resp.status = static_cast<wire_status>(status);
  const std::size_t rest = body_len - response_fixed_bytes;

  if (resp.status == wire_status::ok) {
    if (rest < response_ok_extra_bytes ||
        (rest - response_ok_extra_bytes) % sizeof(std::uint64_t) != 0) {
      throw protocol_error{"wire: ok response lengths disagree"};
    }
    std::uint8_t extra[response_ok_extra_bytes];
    if (!sock_.read_exact(extra, sizeof extra)) {
      throw socket_error{"wire: connection closed mid-response"};
    }
    byte_reader er{extra, sizeof extra};
    resp.fingerprint = er.u64();
    resp.result.num_waves = static_cast<std::size_t>(er.u64());
    resp.result.num_pos = er.u32();
    resp.result.ticks = er.u64();
    resp.result.latency_ticks = er.u32();
    resp.result.initiation_interval = er.u32();
    resp.result.waves_in_flight = er.u32();
    // Result planes land directly in the packed_wave_result's own vector —
    // the client-side half of the zero-copy story.
    const std::size_t words = (rest - response_ok_extra_bytes) / sizeof(std::uint64_t);
    resp.result.words.resize(words);
    if (words > 0 && !sock_.read_exact(resp.result.words.data(),
                                       words * sizeof(std::uint64_t))) {
      throw socket_error{"wire: connection closed mid-response"};
    }
    words_from_wire(resp.result.words.data(), words);
  } else {
    if (rest < 4) {
      throw protocol_error{"wire: error response lengths disagree"};
    }
    std::uint8_t msg_len_bytes[4];
    if (!sock_.read_exact(msg_len_bytes, sizeof msg_len_bytes)) {
      throw socket_error{"wire: connection closed mid-response"};
    }
    byte_reader mr{msg_len_bytes, sizeof msg_len_bytes};
    const std::uint32_t msg_len = mr.u32();
    if (msg_len != rest - 4) {
      throw protocol_error{"wire: error response lengths disagree"};
    }
    resp.message.resize(msg_len);
    if (msg_len > 0 && !sock_.read_exact(resp.message.data(), msg_len)) {
      throw socket_error{"wire: connection closed mid-response"};
    }
  }
  return resp;
}

wire_response wire_client::run(run_request req) {
  if (policy_.max_attempts <= 1) {
    // Non-retrying fast path: identical to the pre-policy client, payload
    // swapped to wire order in place — no tracking copy exists.
    const std::uint64_t id = send(std::move(req));
    return receive_matching(id);
  }

  if (req.id == 0) {
    req.id = next_id_++;
  }
  const std::uint64_t id = req.id;
  unanswered_.emplace(id, std::move(req));
  for (unsigned attempt = 1;; ++attempt) {
    try {
      if (!sock_.valid()) {
        reconnect();  // replays every unanswered request, this one included
      } else if (attempt == 1) {
        write_request(unanswered_.at(id));
      }
      wire_response resp = receive_matching(id);
      unanswered_.erase(id);
      return resp;
    } catch (const socket_error& e) {
      // The connection is unusable (reset, timed out mid-frame, or the
      // reconnect itself failed): discard it and back off before redialing.
      // Stashed responses were fully received and stay valid; the dead
      // stream's partial bytes died with the socket.
      sock_.close();
      if (attempt >= policy_.max_attempts) {
        unanswered_.erase(id);
        throw;
      }
      const unsigned shift = std::min(attempt - 1, 20u);
      const auto backoff = std::min<std::chrono::milliseconds::rep>(
          policy_.max_backoff.count(), policy_.base_backoff.count() << shift);
      if (backoff > 0) {
        std::uniform_real_distribution<double> jitter{0.5, 1.0};
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>{
            static_cast<double>(backoff) * jitter(jitter_)});
      }
    }
  }
}

}  // namespace wavemig::net
