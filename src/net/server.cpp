#include "wavemig/net/server.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <sstream>

#include "wavemig/fault/fault_injection.hpp"
#include "wavemig/io/mig_format.hpp"
#include "wavemig/technology.hpp"

namespace wavemig::net {

namespace {

[[nodiscard]] std::vector<std::uint8_t> encode_preamble() {
  std::vector<std::uint8_t> out;
  out.reserve(8);
  byte_writer w{out};
  w.u32(wire_magic);
  w.u32(wire_version);
  return out;
}

}  // namespace

/// Per-connection state. The reader thread owns the socket's read side and
/// all submissions; the writer thread owns the write side (after the
/// reader's handshake reply, which happens-before any response exists).
/// Completion callbacks keep the connection alive via shared_ptr and only
/// touch the mutex-guarded outbox/inflight pair.
struct wire_server::connection {
  tcp_socket sock;
  std::uint64_t client_id{0};

  std::mutex mutex;
  std::condition_variable cv;  // writer wakeups; reader waiting inflight==0
  struct outgoing {
    std::vector<std::uint8_t> prefix;   ///< length word + body up to payload
    std::vector<std::uint64_t> words;   ///< result planes (native order)
  };
  std::deque<outgoing> outbox;
  std::size_t inflight{0};  ///< submitted to the session, response not yet queued
  bool stop{false};         ///< writer: flush the outbox, then exit
  bool write_failed{false};

  std::thread reader;
  std::thread writer;
};

wire_server::wire_server(engine::serving_session& session, server_options options)
    : session_{session},
      options_{options},
      listener_{tcp_listener::listen_loopback(options.port, options.listen_backlog)} {
  accept_thread_ = std::thread{[this] { accept_loop(); }};
  if (options_.watchdog_bound.count() > 0) {
    watchdog_thread_ = std::thread{[this] { watchdog_loop(); }};
  }
}

wire_server::~wire_server() { shutdown(); }

void wire_server::begin_drain() { draining_.store(true, std::memory_order_relaxed); }

void wire_server::shutdown() {
  std::lock_guard<std::mutex> shutdown_lock{shutdown_mutex_};
  if (shut_down_) {
    return;
  }
  shut_down_ = true;
  begin_drain();
  // Unblock and join the accept loop first so no new connection appears
  // while the existing ones tear down.
  listener_.close();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::vector<std::shared_ptr<connection>> connections;
  {
    std::lock_guard<std::mutex> lock{mutex_};
    connections = connections_;
  }
  for (const auto& conn : connections) {
    // Read-side only: the reader unblocks and exits, then waits for the
    // connection's in-flight requests, whose responses the writer still
    // flushes down the intact write side — no accepted request's response
    // is ever dropped.
    conn->sock.shutdown_read();
  }
  for (const auto& conn : connections) {
    if (conn->reader.joinable()) {
      conn->reader.join();  // the reader joins its writer before returning
    }
  }
  {
    std::lock_guard<std::mutex> lock{mutex_};
    connections_.clear();
  }
  // The watchdog joins *after* the readers: a reader's final flush waits
  // for inflight == 0, and when a completion was lost it is the watchdog
  // that expires the request and releases that count.
  {
    std::lock_guard<std::mutex> lock{watch_mutex_};
    watch_stop_ = true;
  }
  watch_cv_.notify_all();
  if (watchdog_thread_.joinable()) {
    watchdog_thread_.join();
  }
}

void wire_server::watchdog_loop() {
  // Scan at a quarter of the bound so an expired request is answered at
  // most ~25% late, clamped so tight test bounds don't busy-spin and huge
  // production bounds still notice shutdown promptly.
  const auto interval = std::clamp(options_.watchdog_bound / 4,
                                   std::chrono::milliseconds{1},
                                   std::chrono::milliseconds{250});
  std::unique_lock<std::mutex> lock{watch_mutex_};
  while (!watch_stop_) {
    watch_cv_.wait_for(lock, interval, [&] { return watch_stop_; });
    if (watch_stop_) {
      break;
    }
    const auto now = std::chrono::steady_clock::now();
    std::vector<watch_entry> expired;
    for (auto it = watched_.begin(); it != watched_.end();) {
      if (it->settled->load(std::memory_order_acquire)) {
        it = watched_.erase(it);  // answered normally; nothing to watch
        continue;
      }
      if (now >= it->expires) {
        // Win the latch or lose it to a completion racing us right now;
        // only the winner answers.
        if (!it->settled->exchange(true, std::memory_order_acq_rel)) {
          expired.push_back(std::move(*it));
        }
        it = watched_.erase(it);
        continue;
      }
      ++it;
    }
    lock.unlock();
    for (const auto& entry : expired) {
      // Stats first: once the client can observe the watchdog_expired
      // response, stats() must already account for it.
      {
        std::lock_guard<std::mutex> stats_lock{mutex_};
        ++stats_.requests_refused;
        ++stats_.requests_watchdog_expired;
      }
      respond_status(entry.conn, entry.id, wire_status::watchdog_expired,
                     "request exceeded the server watchdog bound");
      {
        std::lock_guard<std::mutex> conn_lock{entry.conn->mutex};
        --entry.conn->inflight;
      }
      entry.conn->cv.notify_all();
    }
    lock.lock();
  }
}

server_stats wire_server::stats() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return stats_;
}

std::size_t wire_server::num_programs() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return programs_.size();
}

void wire_server::accept_loop() {
  for (;;) {
    tcp_socket sock = listener_.accept();
    if (!sock.valid()) {
      return;  // listener closed
    }
    auto conn = std::make_shared<connection>();
    conn->sock = std::move(sock);
    {
      std::lock_guard<std::mutex> lock{mutex_};
      conn->client_id = next_client_id_++;
      ++stats_.connections_accepted;
      connections_.push_back(conn);
    }
    conn->writer = std::thread{[this, conn] { writer_loop(conn); }};
    conn->reader = std::thread{[this, conn] { reader_loop(conn); }};
  }
}

void wire_server::writer_loop(const std::shared_ptr<connection>& conn) {
  for (;;) {
    connection::outgoing out;
    {
      std::unique_lock<std::mutex> lock{conn->mutex};
      conn->cv.wait(lock, [&] { return conn->stop || !conn->outbox.empty(); });
      if (conn->outbox.empty()) {
        return;  // stop and fully flushed
      }
      out = std::move(conn->outbox.front());
      conn->outbox.pop_front();
    }
    // server.writer.die: the writer silently stops transmitting, as if its
    // thread had crashed mid-stream — the client's per-try timeout is what
    // recovers. server.writer.stall (delay action) sleeps inside hit(),
    // modelling a slow-consumer backlog.
    if (WAVEMIG_FAULT_HIT("server.writer.die").fired) {
      conn->write_failed = true;
    }
    (void)WAVEMIG_FAULT_HIT("server.writer.stall");
    if (conn->write_failed) {
      continue;  // client is gone; keep draining queued responses cheaply
    }
    try {
      conn->sock.write_all(out.prefix.data(), out.prefix.size());
      if (!out.words.empty()) {
        words_to_wire(out.words.data(), out.words.size());
        conn->sock.write_all(out.words.data(),
                             out.words.size() * sizeof(std::uint64_t));
      }
    } catch (const socket_error&) {
      std::lock_guard<std::mutex> lock{conn->mutex};
      conn->write_failed = true;
    }
  }
}

void wire_server::respond_status(const std::shared_ptr<connection>& conn, std::uint64_t id,
                                 wire_status status, const std::string& message) {
  wire_response resp;
  resp.id = id;
  resp.status = status;
  resp.message = message;
  connection::outgoing out;
  out.prefix = encode_response_frame_prefix(resp);
  {
    std::lock_guard<std::mutex> lock{conn->mutex};
    conn->outbox.push_back(std::move(out));
  }
  conn->cv.notify_all();
}

void wire_server::count_response(wire_status status) {
  std::lock_guard<std::mutex> lock{mutex_};
  if (status == wire_status::ok) {
    ++stats_.requests_ok;
  } else {
    ++stats_.requests_refused;
  }
}

std::pair<std::uint64_t, std::shared_ptr<const mig_network>> wire_server::register_netlist(
    const std::string& text) {
  std::istringstream is{text};
  auto net = std::make_shared<const mig_network>(io::read_mig(is));
  const std::uint64_t fp = engine::network_fingerprint(*net);
  std::lock_guard<std::mutex> lock{mutex_};
  auto [it, inserted] = programs_.try_emplace(fp, net);
  if (inserted) {
    ++stats_.programs_registered;
  }
  // Serve the first-registered instance so repeat registrations of one
  // program keep hitting the session's fingerprint memo by pointer.
  return {fp, it->second};
}

std::shared_ptr<const mig_network> wire_server::find_program(std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock{mutex_};
  const auto it = programs_.find(fingerprint);
  return it == programs_.end() ? nullptr : it->second;
}

std::shared_ptr<const tech_scenario> wire_server::resolve_scenario(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    if (const auto it = scenarios_.find(name); it != scenarios_.end()) {
      return it->second;
    }
  }
  // by_name throws unknown_technology_error outside the lock; a hit is
  // cached by name so every request for one scenario shares one pointer
  // (and therefore one compiled-program cache entry).
  auto scenario = std::make_shared<const tech_scenario>(tech_scenario::by_name(name));
  std::lock_guard<std::mutex> lock{mutex_};
  return scenarios_.try_emplace(name, std::move(scenario)).first->second;
}

void wire_server::serve_register(const std::shared_ptr<connection>& conn,
                                 const register_request& req) {
  if (draining_.load(std::memory_order_relaxed)) {
    respond_status(conn, req.id, wire_status::draining, "server is draining");
    count_response(wire_status::draining);
    return;
  }
  try {
    const auto [fp, net] = register_netlist(req.netlist);
    wire_response resp;
    resp.id = req.id;
    resp.status = wire_status::ok;
    resp.fingerprint = fp;
    resp.result.num_pos = net->num_pos();
    connection::outgoing out;
    out.prefix = encode_response_frame_prefix(resp);
    {
      std::lock_guard<std::mutex> lock{conn->mutex};
      conn->outbox.push_back(std::move(out));
    }
    conn->cv.notify_all();
    count_response(wire_status::ok);
  } catch (const std::exception& e) {
    respond_status(conn, req.id, wire_status::invalid_request, e.what());
    count_response(wire_status::invalid_request);
  }
}

void wire_server::serve_run(const std::shared_ptr<connection>& conn, run_request req) {
  if (draining_.load(std::memory_order_relaxed)) {
    respond_status(conn, req.id, wire_status::draining, "server is draining");
    count_response(wire_status::draining);
    return;
  }

  std::shared_ptr<const mig_network> net;
  if (!req.netlist.empty()) {
    try {
      auto [fp, registered] = register_netlist(req.netlist);
      net = std::move(registered);
      // The ok response echoes the computed fingerprint, so an inline-netlist
      // client can switch to 8-byte fingerprint headers without a separate
      // register round-trip.
      req.fingerprint = fp;
    } catch (const std::exception& e) {
      respond_status(conn, req.id, wire_status::invalid_request, e.what());
      count_response(wire_status::invalid_request);
      return;
    }
  } else {
    net = find_program(req.fingerprint);
    if (!net) {
      respond_status(conn, req.id, wire_status::unknown_program,
                     "fingerprint not registered (register the program or inline the netlist)");
      count_response(wire_status::unknown_program);
      return;
    }
  }

  engine::submit_options opts;
  opts.priority = req.priority;
  opts.client_id = conn->client_id;
  opts.reject_stray_tail_bits = (req.flags & run_flag_mask_tail_bits) == 0;
  if (req.deadline_ms != 0) {
    opts.deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds{req.deadline_ms};
  }
  if (!req.scenario.empty()) {
    try {
      opts.scenario = resolve_scenario(req.scenario);
    } catch (const unknown_technology_error& e) {
      respond_status(conn, req.id, wire_status::unknown_scenario, e.what());
      count_response(wire_status::unknown_scenario);
      return;
    }
  }

  const std::uint64_t id = req.id;
  {
    std::lock_guard<std::mutex> lock{conn->mutex};
    ++conn->inflight;
  }
  // Under a watchdog, register the request *before* submitting: once
  // submit_packed is called, a lost completion can only be recovered here.
  std::shared_ptr<std::atomic<bool>> settled;
  if (options_.watchdog_bound.count() > 0) {
    settled = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard<std::mutex> lock{watch_mutex_};
    watched_.push_back(watch_entry{
        conn, id, std::chrono::steady_clock::now() + options_.watchdog_bound, settled});
  }
  auto retire = [conn](wire_response resp) {
    connection::outgoing out;
    out.prefix = encode_response_frame_prefix(resp);
    out.words = std::move(resp.result.words);
    {
      std::lock_guard<std::mutex> lock{conn->mutex};
      conn->outbox.push_back(std::move(out));
      --conn->inflight;
    }
    conn->cv.notify_all();
  };
  try {
    const std::uint64_t fingerprint = req.fingerprint;
    session_.submit_packed(
        std::move(net), std::move(req.payload), static_cast<std::size_t>(req.num_waves),
        req.phases, std::move(opts),
        [this, conn, id, fingerprint, retire, settled](engine::packed_wave_result result,
                                                       std::exception_ptr error) {
          if (settled && settled->exchange(true, std::memory_order_acq_rel)) {
            // The watchdog already answered (and released the inflight
            // count) for this request; the late result is discarded.
            return;
          }
          wire_response resp;
          resp.id = id;
          resp.fingerprint = fingerprint;
          if (!error) {
            resp.status = wire_status::ok;
            resp.result = std::move(result);
          } else {
            try {
              std::rethrow_exception(error);
            } catch (const engine::deadline_expired_error& e) {
              resp.status = wire_status::deadline_expired;
              resp.message = e.what();
            } catch (const engine::invalid_request_error& e) {
              resp.status = wire_status::invalid_request;
              resp.message = e.what();
            } catch (const std::invalid_argument& e) {
              resp.status = wire_status::invalid_request;
              resp.message = e.what();
            } catch (const std::exception& e) {
              resp.status = wire_status::internal_error;
              resp.message = e.what();
            }
          }
          count_response(resp.status);
          retire(std::move(resp));
        });
  } catch (const engine::admission_rejected_error& e) {
    if (settled && settled->exchange(true, std::memory_order_acq_rel)) {
      return;  // the watchdog answered first; it already released inflight
    }
    {
      std::lock_guard<std::mutex> lock{conn->mutex};
      --conn->inflight;
    }
    respond_status(conn, id, wire_status::admission_rejected, e.what());
    count_response(wire_status::admission_rejected);
  } catch (const engine::session_closed_error& e) {
    if (settled && settled->exchange(true, std::memory_order_acq_rel)) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock{conn->mutex};
      --conn->inflight;
    }
    respond_status(conn, id, wire_status::draining, e.what());
    count_response(wire_status::draining);
  } catch (const std::exception& e) {
    if (settled && settled->exchange(true, std::memory_order_acq_rel)) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock{conn->mutex};
      --conn->inflight;
    }
    respond_status(conn, id, wire_status::internal_error, e.what());
    count_response(wire_status::internal_error);
  }
}

void wire_server::reader_loop(const std::shared_ptr<connection>& conn) {
  // Handshake: expect the client preamble, echo our own. The reply happens
  // before any frame is read, hence before any response can exist — so the
  // writer thread never races this write.
  bool alive = false;
  std::uint8_t preamble[8];
  if (conn->sock.read_exact(preamble, sizeof preamble)) {
    byte_reader r{preamble, sizeof preamble};
    const std::uint32_t magic = r.u32();
    const std::uint32_t version = r.u32();
    if (magic == wire_magic && version == wire_version) {
      try {
        const auto reply = encode_preamble();
        conn->sock.write_all(reply.data(), reply.size());
        alive = true;
      } catch (const socket_error&) {
      }
    }
  }

  std::vector<std::uint8_t> scratch;
  // Drains `n` body bytes to stay frame-synchronized after a refusal.
  const auto discard = [&](std::size_t n) -> bool {
    scratch.resize(std::min<std::size_t>(n, 4096));
    while (n > 0) {
      const std::size_t step = std::min(n, scratch.size());
      if (!conn->sock.read_exact(scratch.data(), step)) {
        return false;
      }
      n -= step;
    }
    return true;
  };

  while (alive) {
    // server.reader.die: the reader exits as if its thread had crashed.
    // The flush below still runs — in-flight responses reach the client
    // before the close, so a retrying client loses at most unsent frames.
    if (WAVEMIG_FAULT_HIT("server.reader.die").fired) {
      break;
    }
    std::uint8_t len_bytes[4];
    if (!conn->sock.read_exact(len_bytes, sizeof len_bytes)) {
      break;  // clean disconnect (or truncated frame: nothing to answer)
    }
    byte_reader len_reader{len_bytes, sizeof len_bytes};
    const std::uint32_t body_len = len_reader.u32();
    if (body_len == 0 || body_len > options_.max_frame_bytes) {
      // An oversized length prefix cannot be skipped (we refuse to read
      // that much); the stream is unrecoverable past it.
      respond_status(conn, 0, wire_status::malformed_frame,
                     "frame length out of bounds");
      count_response(wire_status::malformed_frame);
      break;
    }

    std::uint8_t kind = 0;
    if (!conn->sock.read_exact(&kind, 1)) {
      break;
    }
    const std::size_t rest = body_len - 1;

    if (kind == static_cast<std::uint8_t>(frame_kind::run)) {
      if (rest < run_fixed_bytes - 1) {
        if (!discard(rest)) {
          break;
        }
        respond_status(conn, 0, wire_status::malformed_frame, "run frame too short");
        count_response(wire_status::malformed_frame);
        continue;
      }
      std::uint8_t fixed[run_fixed_bytes - 1];
      if (!conn->sock.read_exact(fixed, sizeof fixed)) {
        break;
      }
      byte_reader r{fixed, sizeof fixed};
      run_request req;
      req.id = r.u64();
      req.priority = r.u8();
      req.flags = r.u8();
      const std::uint16_t scenario_len = r.u16();
      req.deadline_ms = r.u32();
      req.phases = r.u32();
      req.num_pis = r.u32();
      const std::uint32_t netlist_len = r.u32();
      req.fingerprint = r.u64();
      req.num_waves = r.u64();

      const std::size_t after_fixed = rest - (run_fixed_bytes - 1);
      const std::size_t var_len = std::size_t{scenario_len} + std::size_t{netlist_len};
      if (var_len > after_fixed ||
          (after_fixed - var_len) % sizeof(std::uint64_t) != 0) {
        if (!discard(after_fixed)) {
          break;
        }
        respond_status(conn, req.id, wire_status::malformed_frame,
                       "run frame lengths disagree");
        count_response(wire_status::malformed_frame);
        continue;
      }
      if (scenario_len > 0) {
        req.scenario.resize(scenario_len);
        if (!conn->sock.read_exact(req.scenario.data(), scenario_len)) {
          break;
        }
      }
      if (netlist_len > 0) {
        req.netlist.resize(netlist_len);
        if (!conn->sock.read_exact(req.netlist.data(), netlist_len)) {
          break;
        }
      }
      // The zero-copy read: payload words land directly in the vector that
      // submit_packed adopts, which the kernel then evaluates in place.
      const std::size_t payload_words =
          (after_fixed - var_len) / sizeof(std::uint64_t);
      req.payload.resize(payload_words);
      if (payload_words > 0 &&
          !conn->sock.read_exact(req.payload.data(),
                                 payload_words * sizeof(std::uint64_t))) {
        break;
      }
      words_from_wire(req.payload.data(), payload_words);
      serve_run(conn, std::move(req));
    } else if (kind == static_cast<std::uint8_t>(frame_kind::register_program)) {
      if (rest < register_fixed_bytes - 1) {
        if (!discard(rest)) {
          break;
        }
        respond_status(conn, 0, wire_status::malformed_frame, "register frame too short");
        count_response(wire_status::malformed_frame);
        continue;
      }
      std::uint8_t fixed[register_fixed_bytes - 1];
      if (!conn->sock.read_exact(fixed, sizeof fixed)) {
        break;
      }
      byte_reader r{fixed, sizeof fixed};
      register_request req;
      req.id = r.u64();
      const std::uint32_t netlist_len = r.u32();
      if (netlist_len != rest - (register_fixed_bytes - 1)) {
        if (!discard(rest - (register_fixed_bytes - 1))) {
          break;
        }
        respond_status(conn, req.id, wire_status::malformed_frame,
                       "register frame lengths disagree");
        count_response(wire_status::malformed_frame);
        continue;
      }
      req.netlist.resize(netlist_len);
      if (netlist_len > 0 && !conn->sock.read_exact(req.netlist.data(), netlist_len)) {
        break;
      }
      serve_register(conn, req);
    } else {
      // Unknown kind: the frame is still length-delimited, so skip it and
      // keep the stream alive.
      if (!discard(rest)) {
        break;
      }
      respond_status(conn, 0, wire_status::malformed_frame, "unknown frame kind");
      count_response(wire_status::malformed_frame);
    }
  }

  // Flush before teardown: wait until every submitted request's response
  // has been queued, tell the writer to finish the outbox, and join it.
  {
    std::unique_lock<std::mutex> lock{conn->mutex};
    conn->cv.wait(lock, [&] { return conn->inflight == 0; });
    conn->stop = true;
  }
  conn->cv.notify_all();
  if (conn->writer.joinable()) {
    conn->writer.join();
  }
  conn->sock.shutdown_both();
}

}  // namespace wavemig::net
