#include "wavemig/net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <limits>
#include <thread>
#include <utility>

#include "wavemig/fault/fault_injection.hpp"

namespace wavemig::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw socket_error{std::string{what} + ": " + std::strerror(errno)};
}

/// Process-wide SIGPIPE suppression, installed once by the first socket
/// created in this process. MSG_NOSIGNAL already covers our send() calls;
/// this is the belt to that suspender — a dead peer must never be able to
/// kill the server through a signal delivered on a path that forgot the
/// flag (or through a platform where the flag is a no-op).
void ignore_sigpipe() {
  static const bool installed = [] {
    (void)std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)installed;
}

}  // namespace

// ----------------------------------------------------------- tcp_socket ---

tcp_socket::~tcp_socket() { close(); }

tcp_socket::tcp_socket(tcp_socket&& other) noexcept : fd_{std::exchange(other.fd_, -1)} {}

tcp_socket& tcp_socket::operator=(tcp_socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

tcp_socket tcp_socket::connect(const std::string& host, std::uint16_t port) {
  ignore_sigpipe();
  if (const auto f = WAVEMIG_FAULT_HIT("socket.connect.fail"); f.fired) {
    throw socket_error{"connect: injected fault (socket.connect.fail)"};
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw_errno("socket");
  }
  tcp_socket sock{fd};

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw socket_error{"inet_pton: invalid IPv4 address '" + host + "'"};
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINTR) {
      throw_errno("connect");
    }
    // EINTR: POSIX leaves the connection attempt in flight — retrying
    // connect() is undefined. Poll for writability, then read the outcome
    // from SO_ERROR.
    for (;;) {
      pollfd p{fd, POLLOUT, 0};
      const int r = ::poll(&p, 1, -1);
      if (r < 0) {
        if (errno == EINTR) {
          continue;
        }
        throw_errno("poll");
      }
      int err = 0;
      socklen_t len = sizeof err;
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
        throw_errno("getsockopt");
      }
      if (err != 0) {
        errno = err;
        throw_errno("connect");
      }
      break;
    }
  }
  // Frames are written whole (prefix + payload back to back); Nagle only
  // adds latency between them.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

void tcp_socket::set_receive_timeout(std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0) {
    throw_errno("setsockopt(SO_RCVTIMEO)");
  }
}

bool tcp_socket::read_exact(void* data, std::size_t size) {
  if (const auto f = WAVEMIG_FAULT_HIT("socket.read.reset"); f.fired) {
    return false;  // as if the peer reset mid-stream
  }
  std::size_t inject_short_after = size;
  if (const auto f = WAVEMIG_FAULT_HIT("socket.read.short"); f.fired) {
    // A byte prefix arrives, then the stream "dies": the short-read shape a
    // peer crashing mid-frame produces.
    inject_short_after = std::min(size, f.max_bytes == 0 ? 1 : f.max_bytes);
  }
  bool inject_eintr = WAVEMIG_FAULT_HIT("socket.read.eintr").fired;
  auto* at = static_cast<std::uint8_t*>(data);
  while (size > 0) {
    if (inject_eintr) {
      // One simulated interrupted recv: the loop must retry, not surface a
      // spurious error (what the EINTR branch below pins).
      inject_eintr = false;
      continue;
    }
    if (inject_short_after == 0) {
      return false;
    }
    const ssize_t got = ::recv(fd_, at, std::min(size, inject_short_after), 0);
    if (got > 0) {
      at += got;
      size -= static_cast<std::size_t>(got);
      if (inject_short_after != std::numeric_limits<std::size_t>::max()) {
        inject_short_after -= std::min(inject_short_after, static_cast<std::size_t>(got));
      }
      continue;
    }
    if (got == 0) {
      return false;  // peer closed (clean or mid-frame; the caller frames)
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Only reachable with a receive timeout set: the peer made no
      // progress inside the bound. The stream may sit mid-frame, so this is
      // an error (retry loops reconnect), not end-of-stream.
      throw socket_error{"recv: timed out"};
    }
    if (errno == ECONNRESET || errno == EPIPE) {
      return false;  // reset reads as end-of-stream, like a close
    }
    throw_errno("recv");
  }
  return true;
}

void tcp_socket::write_all(const void* data, std::size_t size) {
  if (const auto f = WAVEMIG_FAULT_HIT("socket.write.error"); f.fired) {
    throw socket_error{"send: injected fault (socket.write.error)"};
  }
  std::size_t inject_short_after = std::numeric_limits<std::size_t>::max();
  if (const auto f = WAVEMIG_FAULT_HIT("socket.write.short"); f.fired) {
    inject_short_after = std::min(size, f.max_bytes == 0 ? 1 : f.max_bytes);
  }
  const auto* at = static_cast<const std::uint8_t*>(data);
  while (size > 0) {
    if (inject_short_after == 0) {
      // The partial write went out, then the connection "died": the peer
      // sees a truncated frame, we see a write error.
      throw socket_error{"send: injected fault (socket.write.short)"};
    }
    const ssize_t put =
        ::send(fd_, at, std::min(size, inject_short_after), MSG_NOSIGNAL);
    if (put > 0) {
      at += put;
      size -= static_cast<std::size_t>(put);
      if (inject_short_after != std::numeric_limits<std::size_t>::max()) {
        inject_short_after -= std::min(inject_short_after, static_cast<std::size_t>(put));
      }
      continue;
    }
    if (put < 0 && errno == EINTR) {
      continue;
    }
    throw_errno("send");
  }
}

void tcp_socket::shutdown_both() noexcept {
  if (fd_ >= 0) {
    (void)::shutdown(fd_, SHUT_RDWR);
  }
}

void tcp_socket::shutdown_read() noexcept {
  if (fd_ >= 0) {
    (void)::shutdown(fd_, SHUT_RD);
  }
}

void tcp_socket::close() noexcept {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

// --------------------------------------------------------- tcp_listener ---

tcp_listener::~tcp_listener() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

tcp_listener::tcp_listener(tcp_listener&& other) noexcept
    : fd_{std::exchange(other.fd_, -1)}, port_{std::exchange(other.port_, 0)} {}

tcp_listener& tcp_listener::operator=(tcp_listener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      (void)::close(fd_);
    }
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

tcp_listener tcp_listener::listen_loopback(std::uint16_t port, int backlog) {
  ignore_sigpipe();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw_errno("socket");
  }
  tcp_listener listener;
  listener.fd_ = fd;

  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("bind");
  }
  if (::listen(fd, backlog) != 0) {
    throw_errno("listen");
  }

  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

tcp_socket tcp_listener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      if (const auto f = WAVEMIG_FAULT_HIT("socket.accept.abort"); f.fired) {
        // As if the peer aborted between the kernel queue and us: the
        // connection is dropped, the accept loop keeps serving.
        (void)::close(fd);
        continue;
      }
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return tcp_socket{fd};
    }
    switch (errno) {
      case EINTR:
      case ECONNABORTED:  // the peer gave up while queued — not our failure
#ifdef EPROTO
      case EPROTO:
#endif
        continue;
      case EMFILE:  // fd exhaustion is transient under load: back off and
      case ENFILE:  // retry instead of killing the accept loop (and with it
      case ENOBUFS:  // the server) the moment the process is busiest
      case ENOMEM:
        std::this_thread::sleep_for(std::chrono::milliseconds{10});
        continue;
      default:
        return tcp_socket{};  // listener closed / shut down: accept loop exits
    }
  }
}

void tcp_listener::close() noexcept {
  // Shut down rather than close: a concurrently blocked accept() returns
  // with an error instead of racing the fd number being reused. The fd
  // itself is released by the destructor, after the accept loop joined.
  if (fd_ >= 0) {
    (void)::shutdown(fd_, SHUT_RDWR);
  }
}

}  // namespace wavemig::net
