#include "wavemig/net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace wavemig::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw socket_error{std::string{what} + ": " + std::strerror(errno)};
}

}  // namespace

// ----------------------------------------------------------- tcp_socket ---

tcp_socket::~tcp_socket() { close(); }

tcp_socket::tcp_socket(tcp_socket&& other) noexcept : fd_{std::exchange(other.fd_, -1)} {}

tcp_socket& tcp_socket::operator=(tcp_socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

tcp_socket tcp_socket::connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw_errno("socket");
  }
  tcp_socket sock{fd};

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw socket_error{"inet_pton: invalid IPv4 address '" + host + "'"};
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("connect");
  }
  // Frames are written whole (prefix + payload back to back); Nagle only
  // adds latency between them.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

bool tcp_socket::read_exact(void* data, std::size_t size) {
  auto* at = static_cast<std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t got = ::recv(fd_, at, size, 0);
    if (got > 0) {
      at += got;
      size -= static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) {
      return false;  // peer closed (clean or mid-frame; the caller frames)
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == ECONNRESET || errno == EPIPE) {
      return false;  // reset reads as end-of-stream, like a close
    }
    throw_errno("recv");
  }
  return true;
}

void tcp_socket::write_all(const void* data, std::size_t size) {
  const auto* at = static_cast<const std::uint8_t*>(data);
  while (size > 0) {
    const ssize_t put = ::send(fd_, at, size, MSG_NOSIGNAL);
    if (put > 0) {
      at += put;
      size -= static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) {
      continue;
    }
    throw_errno("send");
  }
}

void tcp_socket::shutdown_both() noexcept {
  if (fd_ >= 0) {
    (void)::shutdown(fd_, SHUT_RDWR);
  }
}

void tcp_socket::shutdown_read() noexcept {
  if (fd_ >= 0) {
    (void)::shutdown(fd_, SHUT_RD);
  }
}

void tcp_socket::close() noexcept {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

// --------------------------------------------------------- tcp_listener ---

tcp_listener::~tcp_listener() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

tcp_listener::tcp_listener(tcp_listener&& other) noexcept
    : fd_{std::exchange(other.fd_, -1)}, port_{std::exchange(other.port_, 0)} {}

tcp_listener& tcp_listener::operator=(tcp_listener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      (void)::close(fd_);
    }
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

tcp_listener tcp_listener::listen_loopback(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw_errno("socket");
  }
  tcp_listener listener;
  listener.fd_ = fd;

  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("bind");
  }
  if (::listen(fd, backlog) != 0) {
    throw_errno("listen");
  }

  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

tcp_socket tcp_listener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return tcp_socket{fd};
    }
    if (errno == EINTR) {
      continue;
    }
    return tcp_socket{};  // listener closed / shut down: accept loop exits
  }
}

void tcp_listener::close() noexcept {
  // Shut down rather than close: a concurrently blocked accept() returns
  // with an error instead of racing the fd number being reused. The fd
  // itself is released by the destructor, after the accept loop joined.
  if (fd_ >= 0) {
    (void)::shutdown(fd_, SHUT_RDWR);
  }
}

}  // namespace wavemig::net
