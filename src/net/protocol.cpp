#include "wavemig/net/protocol.hpp"

#include <bit>
#include <limits>

namespace wavemig::net {

namespace {

template <typename T>
[[nodiscard]] T byteswap_integral(T v) {
  T out = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out = static_cast<T>(out << 8) | static_cast<T>((v >> (8 * i)) & 0xFF);
  }
  return out;
}

template <typename T>
[[nodiscard]] T to_wire(T v) {
  if constexpr (std::endian::native == std::endian::little) {
    return v;
  } else {
    return byteswap_integral(v);
  }
}

}  // namespace

const char* to_string(wire_status status) {
  switch (status) {
    case wire_status::ok: return "ok";
    case wire_status::malformed_frame: return "malformed_frame";
    case wire_status::invalid_request: return "invalid_request";
    case wire_status::unknown_program: return "unknown_program";
    case wire_status::unknown_scenario: return "unknown_scenario";
    case wire_status::admission_rejected: return "admission_rejected";
    case wire_status::draining: return "draining";
    case wire_status::deadline_expired: return "deadline_expired";
    case wire_status::internal_error: return "internal_error";
    case wire_status::watchdog_expired: return "watchdog_expired";
  }
  return "unknown_status";
}

void byte_writer::raw(const void* data, std::size_t n) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  out_.insert(out_.end(), bytes, bytes + n);
}

void byte_writer::u16(std::uint16_t v) {
  const std::uint16_t wire = to_wire(v);
  raw(&wire, sizeof wire);
}

void byte_writer::u32(std::uint32_t v) {
  const std::uint32_t wire = to_wire(v);
  raw(&wire, sizeof wire);
}

void byte_writer::u64(std::uint64_t v) {
  const std::uint64_t wire = to_wire(v);
  raw(&wire, sizeof wire);
}

const std::uint8_t* byte_reader::take(std::size_t n) {
  if (n > size_ - at_) {
    throw protocol_error{"wire: truncated frame body"};
  }
  const std::uint8_t* p = data_ + at_;
  at_ += n;
  return p;
}

std::uint16_t byte_reader::from_wire(std::uint16_t v) { return to_wire(v); }
std::uint32_t byte_reader::from_wire(std::uint32_t v) { return to_wire(v); }
std::uint64_t byte_reader::from_wire(std::uint64_t v) { return to_wire(v); }

void words_to_wire(std::uint64_t* words, std::size_t count) {
  if constexpr (std::endian::native != std::endian::little) {
    for (std::size_t i = 0; i < count; ++i) {
      words[i] = byteswap_integral(words[i]);
    }
  } else {
    (void)words;
    (void)count;
  }
}

namespace {

void put_u16(byte_writer& w, std::uint16_t v) { w.u16(v); }
void put_u32(byte_writer& w, std::uint32_t v) { w.u32(v); }
void put_u64(byte_writer& w, std::uint64_t v) { w.u64(v); }

}  // namespace

std::vector<std::uint8_t> encode_run_frame_prefix(const run_request& req) {
  if (req.scenario.size() > std::numeric_limits<std::uint16_t>::max()) {
    throw protocol_error{"wire: scenario name too long"};
  }
  if (req.netlist.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw protocol_error{"wire: inline netlist too long"};
  }
  const std::size_t body = run_fixed_bytes + req.scenario.size() + req.netlist.size() +
                           req.payload.size() * sizeof(std::uint64_t);
  if (body > std::numeric_limits<std::uint32_t>::max()) {
    throw protocol_error{"wire: frame exceeds the u32 length prefix"};
  }
  std::vector<std::uint8_t> out;
  out.reserve(4 + run_fixed_bytes + req.scenario.size() + req.netlist.size());
  byte_writer w{out};
  put_u32(w, static_cast<std::uint32_t>(body));
  w.u8(static_cast<std::uint8_t>(frame_kind::run));
  put_u64(w, req.id);
  w.u8(req.priority);
  w.u8(req.flags);
  put_u16(w, static_cast<std::uint16_t>(req.scenario.size()));
  put_u32(w, req.deadline_ms);
  put_u32(w, req.phases);
  put_u32(w, req.num_pis);
  put_u32(w, static_cast<std::uint32_t>(req.netlist.size()));
  put_u64(w, req.fingerprint);
  put_u64(w, req.num_waves);
  w.bytes(req.scenario.data(), req.scenario.size());
  w.bytes(req.netlist.data(), req.netlist.size());
  return out;
}

std::vector<std::uint8_t> encode_register_frame(const register_request& req) {
  if (req.netlist.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw protocol_error{"wire: netlist too long"};
  }
  const std::size_t body = register_fixed_bytes + req.netlist.size();
  if (body > std::numeric_limits<std::uint32_t>::max()) {
    throw protocol_error{"wire: frame exceeds the u32 length prefix"};
  }
  std::vector<std::uint8_t> out;
  out.reserve(4 + body);
  byte_writer w{out};
  put_u32(w, static_cast<std::uint32_t>(body));
  w.u8(static_cast<std::uint8_t>(frame_kind::register_program));
  put_u64(w, req.id);
  put_u32(w, static_cast<std::uint32_t>(req.netlist.size()));
  w.bytes(req.netlist.data(), req.netlist.size());
  return out;
}

std::vector<std::uint8_t> encode_response_frame_prefix(const wire_response& resp) {
  std::vector<std::uint8_t> out;
  byte_writer w{out};
  if (resp.status == wire_status::ok) {
    const std::size_t body = response_fixed_bytes + response_ok_extra_bytes +
                             resp.result.words.size() * sizeof(std::uint64_t);
    if (body > std::numeric_limits<std::uint32_t>::max()) {
      throw protocol_error{"wire: response exceeds the u32 length prefix"};
    }
    out.reserve(4 + response_fixed_bytes + response_ok_extra_bytes);
    put_u32(w, static_cast<std::uint32_t>(body));
    w.u8(static_cast<std::uint8_t>(frame_kind::response));
    put_u64(w, resp.id);
    w.u8(static_cast<std::uint8_t>(resp.status));
    put_u64(w, resp.fingerprint);
    put_u64(w, static_cast<std::uint64_t>(resp.result.num_waves));
    put_u32(w, static_cast<std::uint32_t>(resp.result.num_pos));
    put_u64(w, resp.result.ticks);
    put_u32(w, resp.result.latency_ticks);
    put_u32(w, resp.result.initiation_interval);
    put_u32(w, resp.result.waves_in_flight);
  } else {
    const std::size_t body = response_fixed_bytes + 4 + resp.message.size();
    if (body > std::numeric_limits<std::uint32_t>::max()) {
      throw protocol_error{"wire: response exceeds the u32 length prefix"};
    }
    out.reserve(4 + body);
    put_u32(w, static_cast<std::uint32_t>(body));
    w.u8(static_cast<std::uint8_t>(frame_kind::response));
    put_u64(w, resp.id);
    w.u8(static_cast<std::uint8_t>(resp.status));
    put_u32(w, static_cast<std::uint32_t>(resp.message.size()));
    w.bytes(resp.message.data(), resp.message.size());
  }
  return out;
}

std::size_t decode_run_body(const std::uint8_t* body, std::size_t size, run_request& out) {
  byte_reader r{body, size};
  if (r.u8() != static_cast<std::uint8_t>(frame_kind::run)) {
    throw protocol_error{"wire: not a run frame"};
  }
  out.id = r.u64();
  out.priority = r.u8();
  out.flags = r.u8();
  const std::uint16_t scenario_len = r.u16();
  out.deadline_ms = r.u32();
  out.phases = r.u32();
  out.num_pis = r.u32();
  const std::uint32_t netlist_len = r.u32();
  out.fingerprint = r.u64();
  out.num_waves = r.u64();
  out.scenario = r.str(scenario_len);
  out.netlist = r.str(netlist_len);
  if (r.remaining() % sizeof(std::uint64_t) != 0) {
    throw protocol_error{"wire: payload is not a whole number of words"};
  }
  return size - r.remaining();
}

register_request decode_register_body(const std::uint8_t* body, std::size_t size) {
  byte_reader r{body, size};
  if (r.u8() != static_cast<std::uint8_t>(frame_kind::register_program)) {
    throw protocol_error{"wire: not a register frame"};
  }
  register_request out;
  out.id = r.u64();
  const std::uint32_t netlist_len = r.u32();
  out.netlist = r.str(netlist_len);
  if (r.remaining() != 0) {
    throw protocol_error{"wire: trailing bytes after register frame"};
  }
  return out;
}

wire_response decode_response_body(const std::uint8_t* body, std::size_t size) {
  byte_reader r{body, size};
  if (r.u8() != static_cast<std::uint8_t>(frame_kind::response)) {
    throw protocol_error{"wire: not a response frame"};
  }
  wire_response out;
  out.id = r.u64();
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(wire_status::watchdog_expired)) {
    throw protocol_error{"wire: unknown response status"};
  }
  out.status = static_cast<wire_status>(status);
  if (out.status == wire_status::ok) {
    out.fingerprint = r.u64();
    out.result.num_waves = static_cast<std::size_t>(r.u64());
    out.result.num_pos = r.u32();
    out.result.ticks = r.u64();
    out.result.latency_ticks = r.u32();
    out.result.initiation_interval = r.u32();
    out.result.waves_in_flight = r.u32();
    if (r.remaining() % sizeof(std::uint64_t) != 0) {
      throw protocol_error{"wire: result payload is not a whole number of words"};
    }
    const std::size_t words = r.remaining() / sizeof(std::uint64_t);
    out.result.words.resize(words);
    if (words > 0) {  // an empty vector's data() is null — memcpy forbids it
      const std::string raw = r.str(words * sizeof(std::uint64_t));
      std::memcpy(out.result.words.data(), raw.data(), raw.size());
      words_from_wire(out.result.words.data(), words);
    }
  } else {
    const std::uint32_t message_len = r.u32();
    out.message = r.str(message_len);
    if (r.remaining() != 0) {
      throw protocol_error{"wire: trailing bytes after error response"};
    }
  }
  return out;
}

}  // namespace wavemig::net
