#include "wavemig/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace wavemig {

double power_law_fit::operator()(double x) const { return coefficient * std::pow(x, exponent); }

power_law_fit fit_power_law(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument{"fit_power_law: size mismatch"};
  }
  std::vector<double> lx;
  std::vector<double> ly;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0.0 && y[i] > 0.0) {
      lx.push_back(std::log(x[i]));
      ly.push_back(std::log(y[i]));
    }
  }
  const auto n = static_cast<double>(lx.size());
  if (lx.size() < 2) {
    throw std::invalid_argument{"fit_power_law: need at least two positive samples"};
  }

  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < lx.size(); ++i) {
    sx += lx[i];
    sy += ly[i];
    sxx += lx[i] * lx[i];
    sxy += lx[i] * ly[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    throw std::invalid_argument{"fit_power_law: degenerate x values"};
  }
  power_law_fit fit;
  fit.exponent = (n * sxy - sx * sy) / denom;
  const double intercept = (sy - fit.exponent * sx) / n;
  fit.coefficient = std::exp(intercept);

  double ss_res = 0.0;
  double ss_tot = 0.0;
  const double mean_y = sy / n;
  for (std::size_t i = 0; i < lx.size(); ++i) {
    const double predicted = intercept + fit.exponent * lx[i];
    ss_res += (ly[i] - predicted) * (ly[i] - predicted);
    ss_tot += (ly[i] - mean_y) * (ly[i] - mean_y);
  }
  fit.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

double mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (double v : values) {
    total += v;
  }
  return total / static_cast<double>(values.size());
}

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) {
      throw std::invalid_argument{"geometric_mean: values must be positive"};
    }
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double sample_stddev(const std::vector<double>& values) {
  if (values.size() < 2) {
    return 0.0;
  }
  const double m = mean(values);
  double ss = 0.0;
  for (double v : values) {
    ss += (v - m) * (v - m);
  }
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

}  // namespace wavemig
