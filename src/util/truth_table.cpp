#include "wavemig/truth_table.hpp"

#include <bit>
#include <stdexcept>

namespace wavemig {

namespace {

constexpr std::uint64_t var_pattern(unsigned var) {
  // Periodic pattern of variable `var` inside one 64-bit word (var < 6).
  constexpr std::uint64_t patterns[6] = {
      0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
      0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull};
  return patterns[var];
}

}  // namespace

truth_table::truth_table(unsigned num_vars) : num_vars_{num_vars} {
  if (num_vars > 20) {
    throw std::invalid_argument{"truth_table supports at most 20 variables"};
  }
  const std::size_t words = num_vars <= 6 ? 1 : (std::size_t{1} << (num_vars - 6));
  words_.assign(words, 0);
}

bool truth_table::get_bit(std::uint64_t position) const {
  return (words_[position >> 6u] >> (position & 63u)) & 1u;
}

void truth_table::set_bit(std::uint64_t position, bool value) {
  if (value) {
    words_[position >> 6u] |= std::uint64_t{1} << (position & 63u);
  } else {
    words_[position >> 6u] &= ~(std::uint64_t{1} << (position & 63u));
  }
}

truth_table truth_table::nth_var(unsigned num_vars, unsigned var) {
  if (var >= num_vars) {
    throw std::invalid_argument{"nth_var: variable out of range"};
  }
  truth_table tt{num_vars};
  if (var < 6) {
    for (auto& w : tt.words_) {
      w = var_pattern(var);
    }
  } else {
    const std::size_t period = std::size_t{1} << (var - 6);
    for (std::size_t i = 0; i < tt.words_.size(); ++i) {
      tt.words_[i] = (i / period) % 2 == 1 ? ~std::uint64_t{0} : 0;
    }
  }
  tt.mask_top_word();
  return tt;
}

truth_table truth_table::constant(unsigned num_vars, bool value) {
  truth_table tt{num_vars};
  if (value) {
    for (auto& w : tt.words_) {
      w = ~std::uint64_t{0};
    }
    tt.mask_top_word();
  }
  return tt;
}

void truth_table::mask_top_word() {
  if (num_vars_ < 6) {
    words_.back() &= (std::uint64_t{1} << (std::uint64_t{1} << num_vars_)) - 1;
  }
}

truth_table truth_table::operator~() const {
  truth_table r{*this};
  for (auto& w : r.words_) {
    w = ~w;
  }
  r.mask_top_word();
  return r;
}

truth_table truth_table::operator&(const truth_table& other) const {
  truth_table r{*this};
  for (std::size_t i = 0; i < r.words_.size(); ++i) {
    r.words_[i] &= other.words_[i];
  }
  return r;
}

truth_table truth_table::operator|(const truth_table& other) const {
  truth_table r{*this};
  for (std::size_t i = 0; i < r.words_.size(); ++i) {
    r.words_[i] |= other.words_[i];
  }
  return r;
}

truth_table truth_table::operator^(const truth_table& other) const {
  truth_table r{*this};
  for (std::size_t i = 0; i < r.words_.size(); ++i) {
    r.words_[i] ^= other.words_[i];
  }
  return r;
}

truth_table truth_table::maj(const truth_table& a, const truth_table& b, const truth_table& c) {
  truth_table r{a.num_vars_};
  for (std::size_t i = 0; i < r.words_.size(); ++i) {
    const auto wa = a.words_[i];
    const auto wb = b.words_[i];
    const auto wc = c.words_[i];
    r.words_[i] = (wa & wb) | (wb & wc) | (wa & wc);
  }
  return r;
}

truth_table truth_table::ite(const truth_table& sel, const truth_table& then_tt,
                             const truth_table& else_tt) {
  truth_table r{sel.num_vars_};
  for (std::size_t i = 0; i < r.words_.size(); ++i) {
    r.words_[i] = (sel.words_[i] & then_tt.words_[i]) | (~sel.words_[i] & else_tt.words_[i]);
  }
  r.mask_top_word();
  return r;
}

bool operator==(const truth_table& a, const truth_table& b) {
  return a.num_vars_ == b.num_vars_ && a.words_ == b.words_;
}

std::uint64_t truth_table::count_ones() const {
  std::uint64_t total = 0;
  for (auto w : words_) {
    total += static_cast<std::uint64_t>(std::popcount(w));
  }
  return total;
}

std::string truth_table::to_hex() const {
  static constexpr char digits[] = "0123456789abcdef";
  const std::uint64_t bits = num_bits();
  const std::uint64_t nibbles = bits < 4 ? 1 : bits / 4;
  std::string out;
  out.reserve(nibbles);
  for (std::uint64_t n = nibbles; n-- > 0;) {
    const std::uint64_t bit = n * 4;
    const unsigned value = (words_[bit >> 6u] >> (bit & 63u)) & 0xFu;
    out.push_back(digits[value]);
  }
  return out;
}

}  // namespace wavemig
