#pragma once

#include <cstddef>
#include <vector>

namespace wavemig {

/// Result of fitting y = coefficient * x^exponent by least squares in
/// log-log space (the trend line of the paper's Fig. 5).
struct power_law_fit {
  double coefficient{0.0};
  double exponent{0.0};
  /// Coefficient of determination of the fit in log space.
  double r_squared{0.0};

  /// Evaluates the fitted model at x.
  [[nodiscard]] double operator()(double x) const;
};

/// Fits y = c * x^e over strictly positive samples. Pairs with a
/// non-positive coordinate are skipped. Requires at least two usable points.
power_law_fit fit_power_law(const std::vector<double>& x, const std::vector<double>& y);

/// Arithmetic mean; returns 0 for an empty range.
double mean(const std::vector<double>& values);

/// Geometric mean over strictly positive values; returns 0 if empty.
double geometric_mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); returns 0 for fewer than two
/// samples.
double sample_stddev(const std::vector<double>& values);

}  // namespace wavemig
