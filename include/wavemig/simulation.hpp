#pragma once

#include <cstdint>
#include <vector>

#include "wavemig/mig.hpp"
#include "wavemig/truth_table.hpp"

namespace wavemig {

/// Evaluates the network on 64 input patterns at once: `pi_words[i]` packs 64
/// values of PI i. Returns one word per primary output. Buffers and fan-out
/// gates are transparent (combinational view).
std::vector<std::uint64_t> simulate_words(const mig_network& net,
                                          const std::vector<std::uint64_t>& pi_words);

/// Exact truth table of every primary output; requires num_pis() <= 20.
std::vector<truth_table> simulate_truth_tables(const mig_network& net);

/// Evaluates a single input assignment (bit i = value of PI i).
std::vector<bool> simulate_pattern(const mig_network& net, const std::vector<bool>& inputs);

/// Checks combinational equivalence of two networks with identical PI/PO
/// counts. Uses exact truth tables when the input count is at most
/// `exact_limit`, otherwise `rounds` rounds of 64 random patterns seeded
/// deterministically (a sound-but-incomplete random check; the wave-pipelining
/// passes under test only ever add identity components, so random patterns
/// catch structural wiring errors reliably).
bool functionally_equivalent(const mig_network& a, const mig_network& b, unsigned rounds = 16,
                             std::uint64_t seed = 0x9E3779B97F4A7C15ull, unsigned exact_limit = 12);

}  // namespace wavemig
