#pragma once

#include <cstdint>

#include "wavemig/mig.hpp"

namespace wavemig {

struct fanout_restriction_options {
  /// Fan-out capability of a fan-out gate (the paper's restriction value,
  /// 2..5 in §IV; a FOG with limit 3 is "a reversed majority node").
  unsigned limit{3};
  /// Stretch taps that arrive earlier than the consumer can absorb with
  /// buffers, so no residual path "jumps through graph levels" (the BUF in
  /// the paper's Fig. 6b). Disable for the ablation bench.
  bool fill_residual{true};
};

struct fanout_restriction_result {
  mig_network net;
  std::size_t fogs_added{0};
  std::size_t buffers_added{0};
  /// Consumer edges whose tap sits deeper than the consumer could absorb;
  /// these are the paper's "delayed nodes" and the source of the
  /// critical-path growth of Fig. 7.
  std::size_t delayed_edges{0};
  std::uint32_t depth_before{0};
  std::uint32_t depth_after{0};
};

/// Limits the fan-out of every component for beyond-CMOS feasibility (§IV).
///
/// Physical model (validated against the paper's Figs. 6 and 8): every
/// component and primary input natively drives a single consumer; fanning a
/// signal out to m ≥ 2 consumers requires a tree of fan-out gates (FOG),
/// each with `limit` output ports. The minimum FOG count per driver is
/// ⌈(m−1)/(limit−1)⌉, which this pass achieves. FOGs are placed as shallow
/// as possible (BFS), then consumer edges are assigned to tree ports in
/// deadline order: consumers that can absorb tree depth for free (their
/// level is dominated by another fan-in) take the deep ports, critical
/// consumers take the shallow ports, and any consumer forced beyond its
/// deadline becomes a delayed node whose level increase propagates.
///
/// The pass is idempotent: FOGs already driving at most `limit` consumers
/// and single-consumer components are left untouched.
fanout_restriction_result restrict_fanout(const mig_network& net,
                                          const fanout_restriction_options& options = {});

}  // namespace wavemig
