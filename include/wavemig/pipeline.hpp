#pragma once

#include <cstdint>
#include <optional>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/fanout_restriction.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/mig.hpp"

namespace wavemig {

/// Options of the complete wave-pipelining enablement flow: optional fan-out
/// restriction (§IV) followed by path-balancing buffer insertion (§III),
/// matching the paper's "FOx + BUF" composition order ("it has to be
/// performed before the buffer insertion algorithm").
struct pipeline_options {
  /// Fan-out restriction limit; nullopt skips the restriction pass
  /// (technology with unlimited fan-out).
  std::optional<unsigned> fanout_limit{3};
  /// Stretch early FOG-tree taps with buffers (see fanout_restriction).
  bool fill_residual{true};
  /// Run the balancing pass. Disable to study fan-out restriction alone.
  bool insert_buffers{true};
  /// Buffer organization (paper: shared chains).
  buffer_strategy strategy{buffer_strategy::chain};
  /// When a fanout limit is set, balance with capacity-aware buffer trees so
  /// the final netlist respects the limit on every vertex, including chain
  /// taps. When false the paper-literal chains are used even after
  /// restriction.
  bool respect_limit_in_buffers{true};
  /// Level scheduling for the balancing pass (see scheduling.hpp).
  schedule_policy schedule{schedule_policy::asap};
};

struct pipeline_result {
  mig_network net;
  network_stats original_stats;
  network_stats final_stats;
  std::size_t fogs_added{0};
  std::size_t restriction_buffers_added{0};
  std::size_t balance_buffers_added{0};
  std::size_t delayed_edges{0};
  std::uint32_t depth_before{0};
  std::uint32_t depth_after{0};
  /// check_wave_readiness(net).ready — true whenever buffers were inserted.
  bool wave_ready{false};
};

/// Runs the full enablement flow and gathers the statistics reported in the
/// paper's Figs. 5, 7, 8 and Table II.
pipeline_result wave_pipeline(const mig_network& net, const pipeline_options& options = {});

}  // namespace wavemig
