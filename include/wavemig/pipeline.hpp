#pragma once

#include <cstdint>
#include <optional>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/fanout_restriction.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/loss_budget.hpp"
#include "wavemig/mig.hpp"
#include "wavemig/tech_scenario.hpp"

namespace wavemig {

/// Tri-state fan-out limit: derive from the technology scenario (default),
/// an explicit value, or explicitly unlimited. Keeps the original
/// `std::optional<unsigned>`-style call sites working: assigning an unsigned
/// makes the setting explicit, `reset()` makes it explicitly unlimited, and
/// in boolean context the setting is true only when an explicit value is
/// held (`*setting` then reads it).
class fanout_setting {
public:
  /// Default: derive the limit from pipeline_options::scenario.
  constexpr fanout_setting() = default;
  /// Explicit limit, overriding the scenario.
  constexpr fanout_setting(unsigned limit) : state_{state::exact}, limit_{limit} {}
  /// Legacy interop with the optional-typed call sites: a value is an
  /// explicit limit, nullopt is explicitly unlimited (never "derive").
  constexpr fanout_setting(std::optional<unsigned> limit)
      : state_{limit ? state::exact : state::none}, limit_{limit.value_or(3)} {}

  constexpr fanout_setting& operator=(unsigned limit) {
    state_ = state::exact;
    limit_ = limit;
    return *this;
  }

  /// Explicitly unlimited: skip the restriction pass regardless of scenario.
  constexpr void reset() { state_ = state::none; }

  /// True only when an explicit limit is held (not for derive/unlimited).
  constexpr explicit operator bool() const { return state_ == state::exact; }
  /// The explicit limit; only valid when `operator bool()` is true.
  constexpr unsigned operator*() const { return limit_; }

  /// True when the limit derives from the scenario (the default state).
  [[nodiscard]] constexpr bool derived() const { return state_ == state::derive; }

  /// The effective limit against a scenario — the documented precedence:
  /// an explicit value wins, `reset()` means unlimited, otherwise the
  /// scenario's fan-out capability applies (which may itself be unlimited).
  [[nodiscard]] constexpr std::optional<unsigned> resolve(const tech_scenario& scenario) const {
    switch (state_) {
      case state::exact:
        return limit_;
      case state::none:
        return std::nullopt;
      case state::derive:
        break;
    }
    return scenario.fanout_limit;
  }

private:
  enum class state { derive, exact, none };
  state state_{state::derive};
  unsigned limit_{3};
};

/// Options of the complete wave-pipelining enablement flow: optional fan-out
/// restriction (§IV), scenario loss-budget repeater insertion, then
/// path-balancing buffer insertion (§III), matching the paper's "FOx + BUF"
/// composition order ("it has to be performed before the buffer insertion
/// algorithm"). The technology scenario parameterizes the flow: it supplies
/// the derived fan-out limit and the attenuation budget.
struct pipeline_options {
  /// Fan-out restriction limit. Precedence: an explicitly assigned value
  /// overrides everything; `fanout_limit.reset()` disables the restriction
  /// pass outright; the default derives the limit from
  /// `scenario.fanout_limit` (SWD: 3, matching the historical default).
  fanout_setting fanout_limit{};
  /// Stretch early FOG-tree taps with buffers (see fanout_restriction).
  bool fill_residual{true};
  /// Run the balancing pass. Disable to study fan-out restriction alone.
  bool insert_buffers{true};
  /// Buffer organization (paper: shared chains).
  buffer_strategy strategy{buffer_strategy::chain};
  /// When a fanout limit is in effect, balance with capacity-aware buffer
  /// trees so the final netlist respects the limit on every vertex,
  /// including chain taps. When false the paper-literal chains are used even
  /// after restriction.
  bool respect_limit_in_buffers{true};
  /// Level scheduling for the balancing pass (see scheduling.hpp).
  schedule_policy schedule{schedule_policy::asap};
  /// Technology scenario the flow targets. Supplies the derived fan-out
  /// limit and the attenuation/regeneration budget. The default (SWD) is
  /// lossless with fan-out 3 — bit-identical to the historical behavior.
  tech_scenario scenario{tech_scenario::swd()};
  /// Run the loss-budget pass when the scenario has an attenuation budget
  /// (between restriction and balancing). Disable to study the raw flow.
  bool enforce_loss{true};
};

struct pipeline_result {
  mig_network net;
  network_stats original_stats;
  network_stats final_stats;
  std::size_t fogs_added{0};
  std::size_t restriction_buffers_added{0};
  /// Regenerating repeaters inserted by the loss-budget pass (0 for
  /// lossless scenarios). Counted in final_stats.buffers alongside the
  /// restriction and balance buffers.
  std::size_t repeater_buffers_added{0};
  std::size_t balance_buffers_added{0};
  std::size_t delayed_edges{0};
  /// Longest unregenerated run entering the loss-budget pass (0 when the
  /// pass did not run — lossless scenario or enforce_loss false).
  std::uint32_t max_attenuation_run{0};
  std::uint32_t depth_before{0};
  std::uint32_t depth_after{0};
  /// check_wave_readiness(net).ready — true whenever buffers were inserted.
  bool wave_ready{false};
};

/// Runs the full enablement flow and gathers the statistics reported in the
/// paper's Figs. 5, 7, 8 and Table II.
pipeline_result wave_pipeline(const mig_network& net, const pipeline_options& options = {});

}  // namespace wavemig
