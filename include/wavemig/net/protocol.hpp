#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "wavemig/engine/wave_engine.hpp"

namespace wavemig::net {

/// @name Wire protocol
///
/// A little length-prefixed binary protocol whose run-request payload *is*
/// the engine's plane-major packed-wave layout (PR-5): `num_pis` planes of
/// ceil(num_waves / 64) chunk words each, wave w at bit w % 64 of word
/// w / 64. A request therefore deserializes straight into
/// `serving_session::submit_packed` with zero packing, transposing, or
/// copying — and result planes ship back the same way.
///
/// Everything on the wire is little-endian (the native layout of every
/// deployment target; big-endian hosts byteswap payload words in place via
/// `words_to_wire` / `words_from_wire`).
///
/// Connection handshake: each side sends `wire_magic` then `wire_version`
/// (8 bytes) before any frame; a mismatch closes the connection.
///
/// Frames are `u32 body_length` + body; `body[0]` is the `frame_kind`.
///
/// Run request (kind 1), 45-byte fixed header then variable parts:
///   u8  kind            u64 id              u8  priority (lower = sooner)
///   u8  flags           u16 scenario_len    u32 deadline_ms (0 = none)
///   u32 phases          u32 num_pis         u32 netlist_len
///   u64 fingerprint     u64 num_waves
///   scenario_len bytes  scenario name (empty = untagged)
///   netlist_len bytes   inline `.mig` netlist (empty = lookup fingerprint)
///   rest                plane-major payload words (a multiple of 8 bytes)
///
/// Register (kind 3): u8 kind, u64 id, u32 netlist_len, netlist bytes. The
/// response echoes the computed fingerprint, so subsequent runs can send
/// the 8-byte fingerprint instead of the netlist text.
///
/// Response (kind 2): u8 kind, u64 id, u8 status; then on `ok`
///   u64 fingerprint   u64 num_waves   u32 num_pos   u64 ticks
///   u32 latency_ticks u32 initiation_interval       u32 waves_in_flight
///   plane-major result words (num_pos planes);
/// on any other status: u32 message_len + message bytes.
/// @{

inline constexpr std::uint32_t wire_magic = 0x31474D57u;  ///< "WMG1" on the wire
inline constexpr std::uint32_t wire_version = 1;

enum class frame_kind : std::uint8_t {
  run = 1,
  response = 2,
  register_program = 3,
};

/// Status taxonomy of a response — the wire image of the serving layer's
/// typed errors (engine/serving.hpp) plus the framing-level failures only
/// the front-end can see.
enum class wire_status : std::uint8_t {
  ok = 0,
  malformed_frame = 1,     ///< undecodable bytes: bad lengths, unknown kind
  invalid_request = 2,     ///< decoded but invalid: shape/validation errors
  unknown_program = 3,     ///< fingerprint not registered, no inline netlist
  unknown_scenario = 4,    ///< scenario name not in the registry
  admission_rejected = 5,  ///< backlog at the admission bound; never queued
  draining = 6,            ///< server is draining; request refused
  deadline_expired = 7,    ///< deadline passed before dispatch
  internal_error = 8,
  /// The server's watchdog failed the request: it exceeded the hard
  /// wall-clock bound (server_options::watchdog_bound) without completing,
  /// so the server answered for it and released its connection slot. The
  /// request may still finish internally — its late result is discarded.
  /// New in protocol revision 9; older clients reject it as an unknown
  /// status, which closes the connection (see README "Resilience").
  watchdog_expired = 9,
};

[[nodiscard]] const char* to_string(wire_status status);

/// Run request flag: ask the server to mask stray bits above `num_waves`
/// (the trusted in-process default) instead of rejecting the request.
inline constexpr std::uint8_t run_flag_mask_tail_bits = 0x01;

/// Thrown by decoders on structurally invalid bytes (truncated header,
/// lengths that disagree, unknown kind). The server answers with
/// `wire_status::malformed_frame`; the client surfaces it to the caller.
class protocol_error : public std::runtime_error {
public:
  explicit protocol_error(const std::string& what) : std::runtime_error{what} {}
};

/// One run over the wire. `payload` is plane-major words exactly as
/// `wave_batch::from_plane_words` adopts them.
struct run_request {
  std::uint64_t id{0};
  std::uint8_t priority{128};
  std::uint8_t flags{0};
  std::uint32_t deadline_ms{0};  ///< relative to server receipt; 0 = none
  std::uint32_t phases{1};
  std::uint32_t num_pis{0};
  std::uint64_t fingerprint{0};  ///< ignored when `netlist` is non-empty
  std::uint64_t num_waves{0};
  std::string scenario;  ///< registry name; empty = untagged
  std::string netlist;   ///< inline `.mig` text; empty = use `fingerprint`
  std::vector<std::uint64_t> payload;
};

struct register_request {
  std::uint64_t id{0};
  std::string netlist;  ///< `.mig` text of the program to register
};

/// A decoded response. On `ok`, `result` carries the packed output planes
/// and clock metrics; otherwise `message` explains the status.
struct wire_response {
  std::uint64_t id{0};
  wire_status status{wire_status::ok};
  std::string message;
  std::uint64_t fingerprint{0};
  engine::packed_wave_result result;
};

/// Byte sizes of the fixed (pre-variable-part) encodings, kind byte
/// included. Decoders bound-check against these before touching fields.
inline constexpr std::size_t run_fixed_bytes = 45;
inline constexpr std::size_t register_fixed_bytes = 13;
inline constexpr std::size_t response_fixed_bytes = 10;
inline constexpr std::size_t response_ok_extra_bytes = 40;

/// Appends little-endian scalars to a byte buffer (the encode direction).
/// Scalars are swapped to wire order on big-endian hosts; `bytes` is
/// order-preserving.
class byte_writer {
public:
  explicit byte_writer(std::vector<std::uint8_t>& out) : out_{out} {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(const void* data, std::size_t n) { raw(data, n); }

private:
  void raw(const void* data, std::size_t n);

  std::vector<std::uint8_t>& out_;
};

/// Reads little-endian scalars off a byte span, throwing protocol_error on
/// underrun (the decode direction).
class byte_reader {
public:
  byte_reader(const std::uint8_t* data, std::size_t size) : data_{data}, size_{size} {}

  [[nodiscard]] std::uint8_t u8() { return take(1)[0]; }
  [[nodiscard]] std::uint16_t u16() { return scalar<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return scalar<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return scalar<std::uint64_t>(); }
  [[nodiscard]] std::string str(std::size_t n) {
    const std::uint8_t* p = take(n);
    return std::string{reinterpret_cast<const char*>(p), n};
  }
  [[nodiscard]] std::size_t remaining() const { return size_ - at_; }

private:
  template <typename T>
  [[nodiscard]] T scalar() {
    T v;
    std::memcpy(&v, take(sizeof(T)), sizeof(T));
    return from_wire(v);
  }
  const std::uint8_t* take(std::size_t n);
  static std::uint16_t from_wire(std::uint16_t v);
  static std::uint32_t from_wire(std::uint32_t v);
  static std::uint64_t from_wire(std::uint64_t v);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t at_{0};
};

/// In-place byteswap of payload words on big-endian hosts; a no-op on
/// little-endian ones. The transform is an involution, so one function
/// serves both directions — these names just document intent.
void words_to_wire(std::uint64_t* words, std::size_t count);
inline void words_from_wire(std::uint64_t* words, std::size_t count) {
  words_to_wire(words, count);
}

/// Frame prefix of a run request: the u32 length word plus the body up to
/// (exclusive) the payload words. The caller writes `req.payload` (wire
/// byte order) immediately after — zero-copy framing of the plane words.
[[nodiscard]] std::vector<std::uint8_t> encode_run_frame_prefix(const run_request& req);

/// The complete register frame (length word included).
[[nodiscard]] std::vector<std::uint8_t> encode_register_frame(const register_request& req);

/// Frame prefix of a response (length word included). For `ok` responses
/// the caller writes `resp.result.words` after the prefix; for error
/// responses the prefix is the whole frame.
[[nodiscard]] std::vector<std::uint8_t> encode_response_frame_prefix(const wire_response& resp);

/// Decodes a run-request body (kind byte included) up to the payload
/// words: fills every field but `payload` and returns the byte offset at
/// which the payload words start. Throws protocol_error when lengths
/// disagree with `size` or the payload tail is not a whole number of
/// words.
[[nodiscard]] std::size_t decode_run_body(const std::uint8_t* body, std::size_t size,
                                          run_request& out);

/// Decodes a register-request body (kind byte included).
[[nodiscard]] register_request decode_register_body(const std::uint8_t* body, std::size_t size);

/// Decodes a response body (kind byte included), payload words included
/// (they are copied out of `body` — the client's read path reads them
/// straight off the socket instead when it can).
[[nodiscard]] wire_response decode_response_body(const std::uint8_t* body, std::size_t size);

/// @}

}  // namespace wavemig::net
