#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "wavemig/engine/serving.hpp"
#include "wavemig/net/protocol.hpp"
#include "wavemig/net/socket.hpp"

namespace wavemig::net {

struct server_options {
  /// Port to bind on the loopback interface; 0 binds an ephemeral port
  /// (`wire_server::port()` reports the bound one).
  std::uint16_t port{0};
  /// Hard bound on one frame's body length. An oversized length prefix is
  /// answered with `malformed_frame` and the connection closes — the
  /// stream cannot be resynchronized past a length we refuse to read.
  std::size_t max_frame_bytes{std::size_t{64} << 20};
  /// Accept backlog of the listening socket.
  int listen_backlog{64};
  /// Hard wall-clock bound on one accepted run request, measured from
  /// submission. A request that has not completed inside the bound is
  /// answered `wire_status::watchdog_expired` by a watchdog thread and its
  /// connection slot released — the engine may still finish it internally,
  /// but the late result is discarded. Zero (the default) disables the
  /// watchdog. Set it well above the p99 of your largest request: this is
  /// a leak-stopper for lost completions, not a scheduling deadline (use
  /// `run_request::deadline_ms` for that).
  std::chrono::milliseconds watchdog_bound{0};
};

/// Monotonic counters of a server's lifetime.
struct server_stats {
  std::uint64_t connections_accepted{0};
  std::uint64_t requests_ok{0};       ///< responses written with status ok
  std::uint64_t requests_refused{0};  ///< responses with any non-ok status
  std::uint64_t programs_registered{0};
  /// Requests the watchdog answered for (also counted in requests_refused).
  std::uint64_t requests_watchdog_expired{0};
};

/// The socket front-end over a `serving_session`: accepts loopback TCP
/// connections speaking the wavemig wire protocol (net/protocol.hpp) and
/// forwards run requests to `serving_session::submit_packed` — the request
/// payload is already plane-major, so the bytes read off the socket are
/// the words the kernel evaluates; no transpose, no copy.
///
/// Threading: one accept thread; per connection, one reader thread
/// (frames in, submissions out) and one writer thread (responses out, in
/// completion order — responses carry ids, so clients may pipeline).
/// Completion callbacks fire on executor workers and only enqueue the
/// encoded response; the blocking socket write happens on the
/// connection's writer thread, so a slow client never stalls a worker.
///
/// Policies mapped onto the serving layer:
/// * priority byte and deadline_ms → `submit_options` (gulp order /
///   deadline_expired status),
/// * per-connection client id → the dispatcher's round-robin fairness,
/// * the session's admission limit → `admission_rejected` status,
/// * `begin_drain()` → new requests answered `draining` while accepted
///   ones flush; `shutdown()` then flushes, joins, and closes.
///
/// Payload validation is strict by default: stray bits above `num_waves`
/// reject the request (`run_flag_mask_tail_bits` opts back into masking).
class wire_server {
public:
  /// Binds and starts serving immediately. The session (and its executor)
  /// must outlive the server.
  explicit wire_server(engine::serving_session& session, server_options options = {});
  ~wire_server();

  wire_server(const wire_server&) = delete;
  wire_server& operator=(const wire_server&) = delete;

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Enters drain mode: every subsequent run/register frame is refused
  /// with `wire_status::draining`, while already-submitted requests keep
  /// executing and their responses keep flowing. Irreversible.
  void begin_drain();

  /// Graceful shutdown: begin_drain(), stop accepting connections, flush
  /// every accepted request's response, then tear the connections down and
  /// join all threads. Idempotent; the destructor calls it.
  void shutdown();

  [[nodiscard]] server_stats stats() const;

  /// Programs registered (by register frames or inline run netlists).
  [[nodiscard]] std::size_t num_programs() const;

private:
  struct connection;

  /// One run request under watchdog supervision. `settled` is the
  /// exactly-once latch between the completion callback and the watchdog:
  /// whoever exchanges it to true answers the request; the loser discards.
  struct watch_entry {
    std::shared_ptr<connection> conn;
    std::uint64_t id{0};
    std::chrono::steady_clock::time_point expires;
    std::shared_ptr<std::atomic<bool>> settled;
  };

  void accept_loop();
  void watchdog_loop();
  void reader_loop(const std::shared_ptr<connection>& conn);
  void writer_loop(const std::shared_ptr<connection>& conn);
  /// Serves one decoded run request: resolves program + scenario, builds
  /// submit_options, submits. Refusals are answered inline.
  void serve_run(const std::shared_ptr<connection>& conn, run_request req);
  void serve_register(const std::shared_ptr<connection>& conn, const register_request& req);
  /// Parses and registers a `.mig` netlist; returns {fingerprint, net}.
  std::pair<std::uint64_t, std::shared_ptr<const mig_network>> register_netlist(
      const std::string& text);
  [[nodiscard]] std::shared_ptr<const mig_network> find_program(std::uint64_t fingerprint);
  /// Name → shared scenario, cached; throws unknown_technology_error.
  [[nodiscard]] std::shared_ptr<const tech_scenario> resolve_scenario(const std::string& name);
  static void respond_status(const std::shared_ptr<connection>& conn, std::uint64_t id,
                             wire_status status, const std::string& message);
  void count_response(wire_status status);

  engine::serving_session& session_;
  server_options options_;
  tcp_listener listener_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> shut_down_{false};

  mutable std::mutex mutex_;  // connections_, programs_, scenarios_, stats_
  std::vector<std::shared_ptr<connection>> connections_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const mig_network>> programs_;
  std::unordered_map<std::string, std::shared_ptr<const tech_scenario>> scenarios_;
  server_stats stats_;
  std::uint64_t next_client_id_{1};

  std::mutex watch_mutex_;  // watched_, watch_stop_
  std::condition_variable watch_cv_;
  std::vector<watch_entry> watched_;
  bool watch_stop_{false};

  std::mutex shutdown_mutex_;  // serializes shutdown() callers
  std::thread accept_thread_;
  std::thread watchdog_thread_;
};

}  // namespace wavemig::net
