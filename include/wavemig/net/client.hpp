#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "wavemig/mig.hpp"
#include "wavemig/net/protocol.hpp"
#include "wavemig/net/socket.hpp"

namespace wavemig::net {

/// A non-ok response surfaced as an exception by the conveniences that
/// hide the response object (`register_program`). `status()` carries the
/// wire status; what() carries the server's message.
class wire_error : public std::runtime_error {
public:
  wire_error(wire_status status, const std::string& message)
      : std::runtime_error{std::string{net::to_string(status)} + ": " + message},
        status_{status} {}
  [[nodiscard]] wire_status status() const { return status_; }

private:
  wire_status status_;
};

/// Client side of the wire protocol: connects, handshakes, and exchanges
/// frames. Not thread-safe — one client per thread (the load generator
/// opens one per worker). Requests may be pipelined: `send` several, then
/// `receive` responses (matched by id; they arrive in completion order,
/// not submission order).
class wire_client {
public:
  /// Connects to a loopback server and performs the preamble handshake.
  /// Throws socket_error / protocol_error on failure.
  [[nodiscard]] static wire_client connect(std::uint16_t port,
                                           const std::string& host = "127.0.0.1");

  wire_client(wire_client&&) noexcept = default;
  wire_client& operator=(wire_client&&) noexcept = default;

  /// Registers a program and returns the server-computed fingerprint for
  /// subsequent 8-byte-header runs. Throws wire_error on refusal.
  std::uint64_t register_program(const mig_network& net);
  std::uint64_t register_netlist(const std::string& mig_text);

  /// Sends one run request (no waiting). A zero id is replaced with an
  /// auto-incremented one; returns the id actually sent.
  std::uint64_t send(run_request req);

  /// Blocks for the next response (any id). Throws socket_error when the
  /// server closed the connection, protocol_error on undecodable bytes.
  [[nodiscard]] wire_response receive();

  /// Round-trip convenience: send, then receive until this request's id
  /// answers (stashing any other pipelined responses for later receive()
  /// calls).
  [[nodiscard]] wire_response run(run_request req);

  /// Shuts the connection down (both directions).
  void close() { sock_.shutdown_both(); }

private:
  explicit wire_client(tcp_socket sock) : sock_{std::move(sock)} {}

  /// Blocks until the response with `id` arrives: drains the stash once,
  /// then reads frames off the socket, stashing every other id.
  [[nodiscard]] wire_response receive_matching(std::uint64_t id);
  [[nodiscard]] wire_response receive_from_socket();

  tcp_socket sock_;
  std::uint64_t next_id_{1};
  std::deque<wire_response> stashed_;
};

}  // namespace wavemig::net
