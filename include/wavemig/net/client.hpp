#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <random>
#include <string>
#include <unordered_map>

#include "wavemig/mig.hpp"
#include "wavemig/net/protocol.hpp"
#include "wavemig/net/socket.hpp"

namespace wavemig::net {

/// A non-ok response surfaced as an exception by the conveniences that
/// hide the response object (`register_program`). `status()` carries the
/// wire status; what() carries the server's message.
class wire_error : public std::runtime_error {
public:
  wire_error(wire_status status, const std::string& message)
      : std::runtime_error{std::string{net::to_string(status)} + ": " + message},
        status_{status} {}
  [[nodiscard]] wire_status status() const { return status_; }

private:
  wire_status status_;
};

/// Client-side resilience policy (set_retry_policy). With `max_attempts`
/// above 1, `run` survives a dropped connection: on a socket error it
/// discards the dead connection, sleeps an exponentially growing jittered
/// backoff, reconnects (redoing the handshake), re-sends every not-yet-
/// answered tracked request, and waits again. Run requests are pure
/// functions of their payload, so a re-send is idempotent — the retried
/// response is bit-identical to what the lost one would have carried.
/// The default policy (one attempt) reproduces the non-retrying client
/// exactly, including its zero-copy send path.
struct retry_policy {
  /// Total tries per `run` call (first send included). 1 = no retries.
  unsigned max_attempts{1};
  /// Backoff before retry k (1-based) is `base_backoff << (k - 1)`, capped
  /// at `max_backoff`, then scaled by uniform jitter in [0.5, 1.0] so a
  /// fleet of clients doesn't reconnect in lockstep.
  std::chrono::milliseconds base_backoff{10};
  std::chrono::milliseconds max_backoff{1000};
  /// Per-try receive bound: a response read that makes no progress for this
  /// long counts as a failed try (the connection is discarded — a timed-out
  /// stream may sit mid-frame). Zero = wait forever.
  std::chrono::milliseconds try_timeout{0};
};

/// Monotonic counters of one client's resilience machinery.
struct client_stats {
  std::uint64_t reconnects{0};  ///< successful re-dials after a socket error
  std::uint64_t resends{0};     ///< tracked requests re-sent after reconnects
};

/// Client side of the wire protocol: connects, handshakes, and exchanges
/// frames. Not thread-safe — one client per thread (the load generator
/// opens one per worker). Requests may be pipelined: `send` several, then
/// `receive` responses (matched by id; they arrive in completion order,
/// not submission order). Only `run` requests participate in retry; raw
/// `send`/`receive` and registration are not re-sent (a reconnect keeps
/// registered programs — they are server-global, not per-connection).
class wire_client {
public:
  /// Connects to a loopback server and performs the preamble handshake.
  /// Throws socket_error / protocol_error on failure.
  [[nodiscard]] static wire_client connect(std::uint16_t port,
                                           const std::string& host = "127.0.0.1");

  wire_client(wire_client&&) noexcept = default;
  wire_client& operator=(wire_client&&) noexcept = default;

  /// Registers a program and returns the server-computed fingerprint for
  /// subsequent 8-byte-header runs. Throws wire_error on refusal.
  std::uint64_t register_program(const mig_network& net);
  std::uint64_t register_netlist(const std::string& mig_text);

  /// Sends one run request (no waiting). A zero id is replaced with an
  /// auto-incremented one; returns the id actually sent.
  std::uint64_t send(run_request req);

  /// Blocks for the next response (any id). Throws socket_error when the
  /// server closed the connection, protocol_error on undecodable bytes.
  [[nodiscard]] wire_response receive();

  /// Round-trip convenience: send, then receive until this request's id
  /// answers (stashing any other pipelined responses for later receive()
  /// calls). Under a retry policy (max_attempts > 1) this call reconnects
  /// and re-sends across socket errors — see retry_policy — and throws the
  /// last socket_error only once the attempts are exhausted.
  [[nodiscard]] wire_response run(run_request req);

  /// Installs the resilience policy (applies `try_timeout` to the live
  /// connection immediately). The default-constructed policy restores the
  /// non-retrying behavior.
  void set_retry_policy(retry_policy policy);
  [[nodiscard]] const retry_policy& get_retry_policy() const { return policy_; }
  [[nodiscard]] const client_stats& stats() const { return stats_; }

  /// Shuts the connection down (both directions).
  void close() { sock_.shutdown_both(); }

private:
  wire_client(tcp_socket sock, std::string host, std::uint16_t port)
      : sock_{std::move(sock)}, host_{std::move(host)}, port_{port} {}

  /// Dials + performs the preamble handshake (shared by connect/reconnect).
  [[nodiscard]] static tcp_socket dial(const std::string& host, std::uint16_t port);
  /// Re-dials after a socket error and re-sends every tracked unanswered
  /// request on the fresh connection.
  void reconnect();
  /// Writes one run frame without consuming the request (the tracked copy
  /// must survive for further re-sends).
  void write_request(const run_request& req);
  /// Blocks until the response with `id` arrives: drains the stash once,
  /// then reads frames off the socket, stashing every other id.
  [[nodiscard]] wire_response receive_matching(std::uint64_t id);
  [[nodiscard]] wire_response receive_from_socket();

  tcp_socket sock_;
  std::string host_;
  std::uint16_t port_{0};
  std::uint64_t next_id_{1};
  std::deque<wire_response> stashed_;
  retry_policy policy_;
  client_stats stats_;
  /// Tracked requests of in-progress `run` calls: id → the request as
  /// sent, so a reconnect can replay it byte-for-byte.
  std::unordered_map<std::uint64_t, run_request> unanswered_;
  std::minstd_rand jitter_{0x5EED1E55u};
};

}  // namespace wavemig::net
