#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace wavemig::net {

/// Thrown on socket-level failures (connect/bind/write errors). Clean
/// end-of-stream is *not* an error — reads report it by returning false.
class socket_error : public std::runtime_error {
public:
  explicit socket_error(const std::string& what) : std::runtime_error{what} {}
};

/// A connected TCP stream: a move-only fd wrapper with exact-length
/// blocking I/O — all the protocol layer needs. Closes on destruction.
class tcp_socket {
public:
  tcp_socket() = default;
  explicit tcp_socket(int fd) : fd_{fd} {}
  ~tcp_socket();

  tcp_socket(tcp_socket&& other) noexcept;
  tcp_socket& operator=(tcp_socket&& other) noexcept;
  tcp_socket(const tcp_socket&) = delete;
  tcp_socket& operator=(const tcp_socket&) = delete;

  /// Connects to `host:port` (numeric IPv4 host; "127.0.0.1" for the
  /// loopback tools this layer ships). Throws socket_error on failure.
  [[nodiscard]] static tcp_socket connect(const std::string& host, std::uint16_t port);

  /// Reads exactly `size` bytes. Returns false on end-of-stream — whether
  /// at a clean boundary or mid-buffer (a truncated frame and a closed
  /// peer are indistinguishable here; framing decides what was lost).
  /// Throws socket_error on genuine I/O errors; a peer reset reads as
  /// end-of-stream, not an error.
  [[nodiscard]] bool read_exact(void* data, std::size_t size);

  /// Writes exactly `size` bytes or throws socket_error (a closed peer
  /// surfaces as EPIPE — signals are suppressed, not raised).
  void write_all(const void* data, std::size_t size);

  /// Bounds every subsequent blocking read: a read that makes no progress
  /// for `timeout` throws socket_error ("recv: timed out"). Zero restores
  /// the unbounded default. A timed-out stream may sit mid-frame — callers
  /// (the client's retry loop) discard the connection rather than resync.
  void set_receive_timeout(std::chrono::milliseconds timeout);

  /// Shuts down both directions without closing the fd: any thread blocked
  /// in read_exact on this socket returns end-of-stream. The unblocking
  /// half of a graceful teardown.
  void shutdown_both() noexcept;
  /// Shuts down the read direction only: the peer's in-flight responses
  /// still flush, but our reader unblocks. What a draining server uses.
  void shutdown_read() noexcept;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close() noexcept;

private:
  int fd_{-1};
};

/// A listening TCP socket bound to the loopback interface. Port 0 binds an
/// ephemeral port; `port()` reports the bound one.
class tcp_listener {
public:
  tcp_listener() = default;
  ~tcp_listener();

  tcp_listener(tcp_listener&& other) noexcept;
  tcp_listener& operator=(tcp_listener&& other) noexcept;
  tcp_listener(const tcp_listener&) = delete;
  tcp_listener& operator=(const tcp_listener&) = delete;

  [[nodiscard]] static tcp_listener listen_loopback(std::uint16_t port, int backlog = 64);

  /// Blocks for the next connection. Returns an invalid socket once the
  /// listener is closed (the accept loop's exit signal).
  [[nodiscard]] tcp_socket accept();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Closes the listening fd; a blocked accept() returns invalid.
  void close() noexcept;

private:
  int fd_{-1};
  std::uint16_t port_{0};
};

}  // namespace wavemig::net
