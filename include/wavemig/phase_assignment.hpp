#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "wavemig/levels.hpp"
#include "wavemig/mig.hpp"

namespace wavemig {

/// Assignment of components to regeneration-clock phases (the paper's
/// Fig. 4): a component at scheduled level l belongs to phase (l-1) mod P,
/// so each phase fires every P ticks and data advances one level per tick.
/// Primary inputs belong to the injection slot (phase 0 fires as new data
/// is presented).
struct phase_assignment {
  unsigned phases{3};
  /// Phase per node; PIs and constants are 0.
  std::vector<std::uint8_t> phase;
  /// Number of clocked components per phase — the per-phase clock load that
  /// a clocking network must drive (the overhead the paper's §V explicitly
  /// leaves out of its comparisons).
  std::vector<std::size_t> load;

  /// Largest relative spread between phase loads (0 = perfectly balanced).
  [[nodiscard]] double load_imbalance() const;
};

/// Computes the phase assignment from a schedule (use the schedule returned
/// by buffer insertion for tolerance-balanced netlists).
phase_assignment assign_phases(const mig_network& net, const level_map& schedule,
                               unsigned phases = 3);

/// Convenience overload using ASAP levels.
phase_assignment assign_phases(const mig_network& net, unsigned phases = 3);

/// Writes a human-readable clock report: per-phase component loads and the
/// level-by-level composition of each wave front.
void write_phase_report(const mig_network& net, const level_map& schedule,
                        const phase_assignment& assignment, std::ostream& os);

}  // namespace wavemig
