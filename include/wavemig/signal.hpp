#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace wavemig {

/// Index of a node inside a mig_network. Node 0 is always the constant node.
using node_index = std::uint32_t;

/// A signal references a network node together with an optional complement
/// attribute. In a Majority-Inverter Graph, inversion lives on edges rather
/// than on nodes, so a signal is the unit that fan-ins, primary outputs and
/// all construction APIs traffic in.
///
/// The representation packs (index, complemented) into 32 bits: bit 0 holds
/// the complement, the remaining 31 bits hold the node index.
class signal {
public:
  constexpr signal() = default;

  constexpr signal(node_index index, bool complemented)
      : data_{(index << 1u) | static_cast<std::uint32_t>(complemented)} {}

  /// Node referenced by this signal.
  [[nodiscard]] constexpr node_index index() const { return data_ >> 1u; }

  /// True if the edge carries an inversion.
  [[nodiscard]] constexpr bool is_complemented() const { return (data_ & 1u) != 0u; }

  /// Raw packed value; defines a deterministic total order used for
  /// canonicalization and structural hashing.
  [[nodiscard]] constexpr std::uint32_t raw() const { return data_; }

  /// Complemented copy of this signal.
  [[nodiscard]] constexpr signal operator!() const { return from_raw(data_ ^ 1u); }

  /// Copy of this signal with the complement attribute cleared.
  [[nodiscard]] constexpr signal without_complement() const { return from_raw(data_ & ~1u); }

  /// Copy of this signal with the complement attribute xor-ed in.
  [[nodiscard]] constexpr signal complement_if(bool c) const {
    return from_raw(data_ ^ static_cast<std::uint32_t>(c));
  }

  friend constexpr bool operator==(signal a, signal b) { return a.data_ == b.data_; }
  friend constexpr bool operator!=(signal a, signal b) { return a.data_ != b.data_; }
  friend constexpr bool operator<(signal a, signal b) { return a.data_ < b.data_; }

  static constexpr signal from_raw(std::uint32_t raw) {
    signal s;
    s.data_ = raw;
    return s;
  }

private:
  std::uint32_t data_{0};
};

/// The constant-0 signal (node 0, regular edge).
inline constexpr signal constant0{0, false};
/// The constant-1 signal (node 0, complemented edge).
inline constexpr signal constant1{0, true};

}  // namespace wavemig

template <>
struct std::hash<wavemig::signal> {
  std::size_t operator()(wavemig::signal s) const noexcept {
    return std::hash<std::uint32_t>{}(s.raw());
  }
};
