#pragma once

#include <cstddef>

#include "wavemig/mig.hpp"
#include "wavemig/tech_scenario.hpp"
#include "wavemig/technology.hpp"

namespace wavemig {

/// Stage-timing analysis of a wave-pipelined netlist.
///
/// The paper's throughput model advances one level per clock phase of a
/// fixed duration (technology::phase_delay_ns) and treats inverters as free
/// edge attributes. Physically every stage must complete within one phase:
/// a component with relative delay d fed through an edge inverter (relative
/// delay d_inv) needs (d + d_inv) x cell_delay. For QCA — whose inverter is
/// 3.5x slower than its majority gate — the paper's 4 ps phase is optimistic
/// wherever inverters survive polarity optimization. This module computes
/// the real per-stage requirement and the throughput it implies.
struct timing_report {
  /// Worst stage delay: cell_delay x max over components of
  /// (component relative delay + inverter relative delay if any fan-in edge
  /// of that component carries a physical inverter).
  double required_phase_delay_ns{0.0};
  /// The technology's assumed phase delay (Table II's implied constant).
  double assumed_phase_delay_ns{0.0};
  /// assumed / required; below 1 the paper's clock is optimistic for this
  /// netlist and technology.
  double slack_ratio{0.0};
  /// Node index of the slowest stage.
  node_index critical_node{0};
  /// True when the critical stage includes an edge inverter.
  bool critical_has_inverter{false};
  /// 1 / (phases x required phase delay), in MOPS — the coherent
  /// wave-pipelined throughput under the real stage timing.
  double effective_wp_throughput_mops{0.0};
};

/// Analyzes stage timing. With `optimize_polarity` the inverter placement of
/// optimize_inverters() is used (the best case); otherwise every complemented
/// edge counts as a physical inverter.
timing_report analyze_stage_timing(const mig_network& net, const technology& tech,
                                   unsigned phases = 3, bool optimize_polarity = true);

/// Scenario convenience: analyzes against `scenario.tech`, then scales the
/// effective wave-pipelined throughput by the FDM lane count — with
/// frequency-division multiplexing every physical phase carries
/// `scenario.fdm_lanes` logical waves, so logical throughput is the physical
/// rate times the lane count. Stage delays are lane-independent.
timing_report analyze_stage_timing(const mig_network& net, const tech_scenario& scenario,
                                   unsigned phases = 3, bool optimize_polarity = true);

}  // namespace wavemig
