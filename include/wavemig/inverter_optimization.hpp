#pragma once

#include <cstddef>
#include <vector>

#include "wavemig/mig.hpp"

namespace wavemig {

/// A per-node polarity assignment: `flip[n]` true means the physical cell for
/// node n realizes the *complement* of the logical node (legal for majority
/// gates by self-duality M(!a,!b,!c) = !M(a,b,c), and trivially for buffers
/// and fan-out gates). Primary inputs and constants are never flipped.
///
/// Under an assignment, a physical inverter sits on edge (d -> consumer c
/// with complement attribute `compl`) iff `compl ^ flip[d] ^ flip[c]` (and
/// `compl ^ flip[d]` for PO edges). This reproduces the inversion
/// optimization of Testa et al. [20] as used by the paper's INV component
/// counts: the logical MIG stays canonical while the physical inverter count
/// is minimized.
struct polarity_assignment {
  std::vector<bool> flip;
  std::size_t inverter_count{0};
};

/// Physical inverter count with no polarity flips (or under `assignment`).
/// Complemented constant edges are free: the complement of a constant is the
/// other constant, not an inverter.
std::size_t count_inverters(const mig_network& net);
std::size_t count_inverters(const mig_network& net, const std::vector<bool>& flip);

/// Greedy polarity optimization: flips any node whose flip strictly reduces
/// the physical inverter count, until a fixpoint. Deterministic; the count
/// decreases monotonically, so termination is guaranteed.
polarity_assignment optimize_inverters(const mig_network& net);

}  // namespace wavemig
