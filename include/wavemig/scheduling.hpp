#pragma once

#include <cstdint>

#include "wavemig/levels.hpp"
#include "wavemig/mig.hpp"

namespace wavemig {

/// Level-assignment policy for path balancing. Buffer insertion charges
/// every edge (u,v) with level(v) - level(u) - 1 buffers (shared per driver
/// chain), so moving nodes inside their slack window changes the buffer
/// bill without affecting depth. The paper's Algorithm 1 implicitly uses
/// ASAP levels; ALAP and mid-slack are classic alternatives evaluated by
/// the scheduling ablation bench.
enum class schedule_policy {
  /// As-soon-as-possible: longest path from the inputs (the paper's levels).
  asap,
  /// As-late-as-possible: every node one level above its earliest consumer;
  /// primary-output drivers are pinned to the circuit depth, which aligns
  /// outputs without padding and pushes all slack onto the (highly shared)
  /// input chains.
  alap,
  /// Midpoint of the ASAP/ALAP window, legalized by a forward pass.
  mid_slack,
};

/// Computes a level assignment under `policy`. PIs and constants stay at
/// level 0; the depth (max PO-driver level) equals the ASAP depth for every
/// policy, so scheduling never costs latency.
level_map compute_schedule(const mig_network& net, schedule_policy policy);

/// True when `levels` is a feasible wave schedule: every non-constant edge
/// (u,v) satisfies level(v) >= level(u) + 1, PIs sit at level 0, and no node
/// exceeds the recorded depth.
bool is_valid_schedule(const mig_network& net, const level_map& levels);

/// Total positive slack Σ_edges (level(v) - level(u) - 1): the number of
/// buffers a *naive* (unshared) balancing pass would insert, and a useful
/// imbalance measure for wave-aware optimization.
std::uint64_t slack_sum(const mig_network& net, const level_map& levels);

}  // namespace wavemig
