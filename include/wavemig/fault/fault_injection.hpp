#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wavemig::fault {

/// @name Fault injection
///
/// A registry of named fault points threaded through the layers that can
/// fail in production — sockets, the wire server, the serving dispatcher,
/// the executor. Each site is a `WAVEMIG_FAULT_HIT("name")` check at the
/// spot where a real failure would surface; armed sites make the site take
/// the failure path (error return, delay, partial I/O, stall) under a
/// configurable trigger, so the chaos suite can pin exact recovery
/// behavior instead of waiting for the failure to happen in the wild.
///
/// Cost model:
/// * Compiled out (WAVEMIG_FAULT_INJECTION undefined — what production
///   builds use via -DWAVEMIG_ENABLE_FAULT_INJECTION=OFF): every site
///   expands to an empty constant `fault_result`, so the checks fold away
///   entirely. The registry API below still links (tests can call it), it
///   just never affects any code path.
/// * Compiled in but nothing armed: one relaxed atomic load per site.
/// * Armed: a mutex-guarded lookup on the (already failing) path.
///
/// Probability triggers draw from one registry-wide PRNG seeded from the
/// `WAVEMIG_FAULT_SEED` environment variable (decimal; unset = a fixed
/// default), so a chaos run that found a bug reproduces from its logged
/// seed.
///
/// Site names wired through the tree (see README "Resilience"):
///   socket.read.reset      read reports end-of-stream (ECONNRESET-like)
///   socket.read.short      a byte prefix is read, then end-of-stream
///   socket.read.eintr      one simulated interrupted read (loop retries)
///   socket.write.error     write throws (EPIPE-like)
///   socket.write.short     a byte prefix is written, then the write throws
///   socket.accept.abort    the accepted fd is closed (ECONNABORTED-like)
///   socket.connect.fail    connect throws before dialing
///   server.reader.die      a connection's reader thread exits its loop
///   server.writer.stall    the writer sleeps before each write (slow client)
///   server.writer.die      the writer drops responses (write-side death)
///   serving.dispatcher.stall  a dispatcher sleeps before gulping
///   serving.dispatcher.throw  request preparation throws on the dispatcher
///   serving.callback.drop  a request's completion callback is lost
///   executor.worker.stall  a worker sleeps before running a task
///   executor.steal.delay   a thief sleeps before stealing (steal race)
/// @{

/// What an armed site does when its trigger fires. Sites interpret the
/// action in their own failure vocabulary — a socket read "fails" by
/// returning end-of-stream, a dispatcher by throwing; `delay` and `stall`
/// both sleep (stall is just a long delay by convention); `partial_io`
/// processes at most `max_bytes` then fails.
enum class fault_action : std::uint8_t {
  fail = 0,
  delay = 1,
  partial_io = 2,
  stall = 3,
};

/// How an armed site decides whether a given hit fires. All three triggers
/// compose: a hit is eligible every `every_nth` calls, then fires with
/// `probability`; `one_shot` disarms the site after its first firing.
struct fault_config {
  fault_action action{fault_action::fail};
  double probability{1.0};     ///< chance an eligible hit fires
  std::uint64_t every_nth{1};  ///< eligible on every Nth hit (1 = every hit)
  bool one_shot{false};        ///< disarm after the first firing
  std::chrono::milliseconds delay{0};  ///< sleep for delay/stall actions
  std::size_t max_bytes{0};            ///< partial_io bound (0 = 1 byte)
};

/// Outcome of one site check. `fired == false` (the default) means take the
/// normal path; the remaining fields echo the armed config so the site
/// doesn't need a second registry round trip.
struct fault_result {
  bool fired{false};
  fault_action action{fault_action::fail};
  std::chrono::milliseconds delay{0};
  std::size_t max_bytes{0};
};

/// Arms `site` with `config` (replacing any previous arming).
void arm(const std::string& site, fault_config config);
/// Disarms one site / every site. Counters survive disarming.
void disarm(const std::string& site);
void disarm_all();
/// Times the named site's trigger actually fired (monotonic per arm()).
[[nodiscard]] std::uint64_t fire_count(const std::string& site);
/// Times the named site was hit (armed or not — hits are only counted
/// while the site is armed, so tests can pin exact hit/fire ratios).
[[nodiscard]] std::uint64_t hit_count(const std::string& site);
/// The PRNG seed in effect (WAVEMIG_FAULT_SEED or the fixed default).
[[nodiscard]] std::uint64_t seed();
/// Names of the currently armed sites (diagnostics).
[[nodiscard]] std::vector<std::string> armed_sites();

namespace detail {
extern std::atomic<std::size_t> armed_count;
}  // namespace detail

/// True while at least one site is armed — the only check a hot path pays.
[[nodiscard]] inline bool enabled() {
  return detail::armed_count.load(std::memory_order_relaxed) != 0;
}

/// The slow half of a site check: looks the site up, applies its trigger,
/// sleeps for delay/stall actions itself (so most sites need no further
/// logic), and reports what fired. Only called when `enabled()`.
[[nodiscard]] fault_result hit(const char* site);

/// @}

}  // namespace wavemig::fault

/// The per-site check. Compiled out it is a constant empty result — the
/// branch on `.fired` folds away; compiled in it costs one relaxed load
/// until a site is armed.
#if defined(WAVEMIG_FAULT_INJECTION)
#define WAVEMIG_FAULT_HIT(site)                                    \
  (::wavemig::fault::enabled() ? ::wavemig::fault::hit(site)       \
                               : ::wavemig::fault::fault_result{})
#else
#define WAVEMIG_FAULT_HIT(site) (::wavemig::fault::fault_result{})
#endif
