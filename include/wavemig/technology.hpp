#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace wavemig {

/// Thrown by the technology / scenario registries (`technology::by_name`,
/// `tech_scenario::by_name`) for a name they do not know. The message lists
/// the known names.
class unknown_technology_error : public std::invalid_argument {
public:
  using std::invalid_argument::invalid_argument;
};

/// Relative cost of one component type in units of the technology cell
/// (the "Relative values" columns of the paper's Table I).
struct component_costs {
  double area{1.0};
  double delay{1.0};
  double energy{1.0};
};

/// A beyond-CMOS technology model: cell constants plus relative component
/// costs (Table I) and the wave-clock phase delay that Table II's throughput
/// columns imply.
///
/// Power model note (§V): the paper computes power as energy-per-operation
/// divided by circuit latency and states that for SWD a "power dominant
/// sense amplifier" is included; Table II's SWD T/P ratios equal d_wp/3
/// exactly, which pins the SWD energy to the per-output sense amplifiers.
/// `sense_amp_energy_fj` models that per-output readout cost (zero for QCA
/// and NML).
struct technology {
  std::string name;

  double cell_area_um2{0.0};
  double cell_delay_ns{0.0};
  double cell_energy_fj{0.0};

  component_costs inv;
  component_costs maj;
  component_costs buf;
  component_costs fog;

  /// Duration of one wave-clock phase in ns. One level of logic advances per
  /// phase; a wave-pipelined circuit accepts a new wave every `phases`
  /// (default 3) phase ticks. Values implied by Table II: 0.42 ns (SWD),
  /// 0.004 ns (QCA), 20 ns (NML).
  double phase_delay_ns{1.0};

  /// Per-primary-output readout energy (fJ); dominant for SWD.
  double sense_amp_energy_fj{0.0};

  /// Spin Wave Devices — constants from Table I ([22]).
  static technology swd();
  /// Quantum-dot Cellular Automata — constants from Table I ([12]).
  static technology qca();
  /// NanoMagnetic Logic — constants from Table I ([11], [24]).
  static technology nml();

  /// Registry lookup by name (case-insensitive: "swd" == "SWD"), replacing
  /// the ad-hoc string matching tests and benches used to carry. Throws
  /// unknown_technology_error for anything not in `names()`.
  static technology by_name(const std::string& name);
  /// The registered technology names, in Table I order.
  static const std::vector<std::string>& names();
};

}  // namespace wavemig
