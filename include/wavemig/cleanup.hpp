#pragma once

#include "wavemig/mig.hpp"

namespace wavemig {

/// Rebuilds the network keeping only nodes reachable from the primary
/// outputs. All PIs are preserved (with names and order) even when unused,
/// so the PI/PO interface of the circuit never changes. Majority gates are
/// re-canonicalized on the way, which can merge nodes that became
/// structurally equal. Buffers and fan-out gates are copied verbatim.
mig_network cleanup_dangling(const mig_network& net);

}  // namespace wavemig
