#pragma once

#include <span>

#include "wavemig/mig.hpp"
#include "wavemig/truth_table.hpp"

namespace wavemig {

/// Synthesizes an arbitrary truth table over `inputs` into majority logic by
/// recursive Shannon decomposition (top variable first) with structural
/// sharing of common cofactors. Constant and single-literal cofactors
/// terminate the recursion; each decomposition step costs one multiplexer
/// (three majority gates before hashing).
///
/// `inputs.size()` must equal `tt.num_vars()`. Used by the S-box and control
/// generators and by the BLIF reader.
signal synthesize_truth_table(mig_network& net, const truth_table& tt,
                              std::span<const signal> inputs);

}  // namespace wavemig
