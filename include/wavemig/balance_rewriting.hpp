#pragma once

#include "wavemig/mig.hpp"

namespace wavemig {

/// Wave-aware MIG restructuring — the extension the paper sketches in §III:
/// "if the wave pipelining requirements were to be taken into account during
/// the original MIG optimization, then the size of the netlists could be
/// reduced."
///
/// The pass rebuilds the network applying the same majority axioms as
/// depth_rewrite, but scores candidates lexicographically by
/// (node level, fan-in level spread): among structures of equal depth it
/// prefers the one whose fan-ins arrive at the most similar levels, since
/// every level of spread later becomes balancing buffers. Combined with
/// associativity/distributivity this trades nothing in depth for a smaller
/// buffer bill (quantified by the `ablation_wave_aware` bench).
struct balance_rewriting_options {
  unsigned max_iterations{3};
  bool allow_area_increase{true};
};

mig_network balance_rewrite(const mig_network& net, const balance_rewriting_options& options = {});

}  // namespace wavemig
