#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wavemig/levels.hpp"
#include "wavemig/mig.hpp"

namespace wavemig {

/// Result of checking the wave-pipelining feasibility conditions of §II-C /
/// §III: (a) every path between two connected components has equal length —
/// equivalently, every non-constant edge spans exactly one level — and
/// (b) all primary outputs sit at the same base distance.
struct wave_readiness {
  bool ready{false};
  /// Edges (u -> v) with level(v) != level(u) + 1 ("residual paths that jump
  /// through graph levels").
  std::size_t violating_edges{0};
  /// True when all non-constant PO drivers share one level.
  bool outputs_aligned{false};
  std::uint32_t depth{0};
  /// Human-readable description of the first few violations.
  std::vector<std::string> issues;
};

/// Verifies wave readiness against the network's ASAP levels with exact
/// balancing (tolerance 0). Constant fan-ins and constant-driven outputs are
/// exempt (they carry no data wave).
wave_readiness check_wave_readiness(const mig_network& net);

/// Verifies wave readiness under an explicit clock schedule and coherence
/// tolerance: every non-constant edge must span between 1 and tolerance + 1
/// scheduled levels (a P-phase clock tolerates up to P - 2; see
/// buffer_insertion_options::tolerance), and all non-constant PO drivers
/// must sit within `tolerance` levels of each other.
wave_readiness check_wave_readiness(const mig_network& net, const level_map& schedule,
                                    unsigned tolerance);

}  // namespace wavemig
