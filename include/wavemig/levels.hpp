#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "wavemig/mig.hpp"

namespace wavemig {

/// Longest-path levels of a network (the paper's base-distance maxima):
/// PIs sit at level 0 and every component (majority gate, buffer, fan-out
/// gate) contributes one level. Constant fan-ins carry no data wave and are
/// ignored (§2.1 of DESIGN.md); a component whose non-constant fan-ins are
/// all PIs sits at level 1.
struct level_map {
  std::vector<std::uint32_t> level;  ///< per node index
  std::uint32_t depth{0};            ///< max level over all PO drivers

  [[nodiscard]] std::uint32_t operator[](node_index n) const { return level[n]; }
};

/// Computes levels in one forward pass (node index order is topological).
level_map compute_levels(const mig_network& net);

/// Maximum exclusive base distance of a node: one level below the node's own
/// level, i.e. the depth of its deepest non-constant fan-in. Defined for
/// components; returns 0 for PIs/constants.
std::uint32_t max_exclusive_base_distance(const mig_network& net, const level_map& levels,
                                          node_index n);

/// Fan-out structure of a network. For each driver node, lists every
/// consumer fan-in slot and every primary output it feeds. A slot is a
/// physical connection: a node consuming the same driver through several
/// fan-in positions occupies several slots.
struct fanout_map {
  static constexpr node_index po_consumer = std::numeric_limits<node_index>::max();

  struct edge {
    node_index consumer;  ///< consuming node, or `po_consumer` for an output
    std::uint32_t slot;   ///< fan-in position, or PO position for outputs
  };

  std::vector<std::vector<edge>> edges;  ///< indexed by driver node

  /// Number of physical consumer connections of `n` (gate slots + POs).
  [[nodiscard]] std::size_t degree(node_index n) const { return edges[n].size(); }
};

/// Computes the fan-out map. Constant drivers are given empty edge lists:
/// constants are gate-internal biases, not routed signals.
fanout_map compute_fanouts(const mig_network& net);

/// Maximum fan-out degree over all non-constant nodes.
std::size_t max_fanout_degree(const mig_network& net);

/// Basic structural statistics used throughout benches and reports.
struct network_stats {
  std::size_t pis{0};
  std::size_t pos{0};
  std::size_t majorities{0};
  std::size_t buffers{0};
  std::size_t fanout_gates{0};
  std::size_t components{0};  ///< majorities + buffers + fanout gates
  std::uint32_t depth{0};
  std::size_t max_fanout{0};
};

network_stats compute_stats(const mig_network& net);

}  // namespace wavemig
