#pragma once

#include <cstdint>

#include "wavemig/mig.hpp"
#include "wavemig/tech_scenario.hpp"
#include "wavemig/technology.hpp"

namespace wavemig {

/// Physical component inventory of a netlist: majority gates, buffers,
/// fan-out gates, and inverters. Inverters are complemented non-constant
/// edges after greedy polarity optimization (see inverter_optimization.hpp),
/// matching the paper's component accounting where inversion is an edge
/// attribute realized by dedicated INV cells.
struct component_inventory {
  std::size_t majorities{0};
  std::size_t buffers{0};
  std::size_t fanout_gates{0};
  std::size_t inverters{0};
  std::size_t outputs{0};

  [[nodiscard]] std::size_t total() const {
    return majorities + buffers + fanout_gates + inverters;
  }
};

component_inventory count_components(const mig_network& net, bool optimize_polarity = true);

/// Evaluation of one netlist on one technology, following the paper's §V
/// formulas (reverse-engineered from Table II; DESIGN.md §2.4):
///   area       = cell_area x Σ relative area
///   energy/op  = cell_energy x Σ relative energy (+ sense amps per PO)
///   latency    = depth x phase_delay
///   throughput = 1/latency (non-pipelined) or 1/(phases x phase_delay)
///   power      = energy/op / latency   (the paper's model — it decreases
///                when latency grows faster than energy, the "artifact"
///                discussed in §V; see `power_steady_state_uw` for the
///                all-waves-active alternative)
struct circuit_metrics {
  component_inventory components;
  std::uint32_t depth{0};
  double area_um2{0.0};
  double energy_per_op_fj{0.0};
  double latency_ns{0.0};
  double throughput_mops{0.0};
  double power_uw{0.0};
  double power_steady_state_uw{0.0};
  /// Waves in flight: 1 for non-pipelined, ceil(depth/phases) when
  /// wave-pipelined.
  std::uint32_t waves_in_flight{1};

  [[nodiscard]] double throughput_per_area() const { return throughput_mops / area_um2; }
  [[nodiscard]] double throughput_per_power() const { return throughput_mops / power_uw; }
};

/// Computes metrics for a netlist. `wave_pipelined` selects the throughput
/// model; `phases` is the wave-clock phase count (3 in the paper).
circuit_metrics compute_metrics(const mig_network& net, const technology& tech,
                                bool wave_pipelined, unsigned phases = 3);

/// Scenario-aware evaluation: the base Table II model plus the scenario's
/// active components. Repeaters inserted by the loss-budget pass are plain
/// buffers in the netlist (compute_metrics costs them as `buf`); the deltas
/// below re-cost those `repeaters` at the scenario's repeater premium.
/// Repeater *delay* needs no delta — each repeater occupies one level and
/// the depth-based latency already covers it. FDM lanes multiply the
/// wave-pipelined throughput and the waves in flight (several logical waves
/// share one physical conduit slot); computed outputs are lane-independent.
struct scenario_metrics {
  /// Adjusted metrics: area/energy include the repeater premium, throughput
  /// and waves_in_flight include the FDM lane multiplier, power recomputed.
  circuit_metrics metrics;
  std::size_t repeaters{0};
  unsigned fdm_lanes{1};
  /// cell_area x repeaters x (repeater.area - buf.area); already folded
  /// into metrics.area_um2.
  double repeater_area_delta_um2{0.0};
  /// cell_energy x repeaters x (repeater.energy - buf.energy); already
  /// folded into metrics.energy_per_op_fj (and the recomputed powers).
  double repeater_energy_delta_fj{0.0};
};

/// Computes scenario metrics for a netlist. `repeaters` is the number of
/// loss-budget repeaters in the net (pipeline_result::repeater_buffers_added).
scenario_metrics compute_scenario_metrics(const mig_network& net, const tech_scenario& scenario,
                                          bool wave_pipelined, std::size_t repeaters = 0,
                                          unsigned phases = 3);

/// Original-vs-wave-pipelined comparison (one row of Table II).
struct pipeline_comparison {
  circuit_metrics original;
  circuit_metrics pipelined;
  /// Normalized (T/A) gain: (T_wp/A_wp) / (T_orig/A_orig).
  double ta_gain{0.0};
  /// Normalized (T/P) gain: (T_wp/P_wp) / (T_orig/P_orig).
  double tp_gain{0.0};
};

pipeline_comparison compare_metrics(const mig_network& original, const mig_network& pipelined,
                                    const technology& tech, unsigned phases = 3);

}  // namespace wavemig
