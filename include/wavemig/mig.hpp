#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "wavemig/signal.hpp"

namespace wavemig {

/// Kind of a network node. `majority` nodes are the only logic primitive of
/// a MIG (§II-A of the paper); `buffer` and `fanout` are the physical
/// components inserted by the wave-pipelining passes (§III, §IV).
enum class node_kind : std::uint8_t {
  constant,       ///< node 0; signal polarity selects logic 0 / logic 1
  primary_input,  ///< circuit input
  majority,       ///< 3-input majority gate
  buffer,         ///< 1-input delay element (wave balancing)
  fanout,         ///< 1-input fan-out gate (FOG), k physical output ports
};

/// Majority-Inverter Graph.
///
/// The network is append-only: nodes are never removed or re-wired, and a
/// node's fan-ins always have smaller indices, so **node index order is a
/// topological order**. Optimization passes produce new networks (see
/// cleanup.hpp, depth_rewriting.hpp, and the wave-pipelining passes in
/// core/), which keeps every intermediate result valid and hashable.
///
/// Majority nodes are canonicalized (fan-ins sorted, at most one complemented
/// fan-in via the self-duality M(!a,!b,!c) = !M(a,b,c)) and structurally
/// hashed, so logically identical gates are created once. The functional
/// reductions M(x,x,y) = x and M(x,!x,y) = y are applied on construction.
/// Buffers and fan-out gates are *not* hashed: they are distinct physical
/// components even when fed by the same signal.
class mig_network {
public:
  struct node {
    node_kind kind{node_kind::constant};
    /// Fan-in signals; used slots: majority = 3, buffer/fanout = 1, else 0.
    std::array<signal, 3> fanin{};
    /// Kind-specific payload: PI position for primary inputs.
    std::uint32_t aux{0};
  };

  struct output {
    signal driver;
    std::string name;
  };

  mig_network();

  /// @name Construction
  /// @{

  /// Constant signal; the complement attribute encodes the value.
  [[nodiscard]] signal get_constant(bool value) const { return value ? constant1 : constant0; }

  /// Adds a primary input. `name` defaults to "pi<N>".
  signal create_pi(std::string name = {});

  /// Adds (or reuses) a canonicalized majority gate.
  signal create_maj(signal a, signal b, signal c);

  /// AND as M(a, b, 0).
  signal create_and(signal a, signal b) { return create_maj(a, b, constant0); }
  /// OR as M(a, b, 1).
  signal create_or(signal a, signal b) { return create_maj(a, b, constant1); }
  /// XOR from three majority gates.
  signal create_xor(signal a, signal b);
  /// Three-input XOR (the full-adder sum), four majority gates of which one
  /// is the carry M(a,b,c) and is shared with callers that also need it.
  signal create_xor3(signal a, signal b, signal c);
  /// Multiplexer sel ? t : e built from AND/OR majority gates.
  signal create_mux(signal sel, signal t, signal e);

  /// Full adder: returns {sum, carry} using the 3-gate MIG construction
  /// carry = M(a,b,c), sum = M(!carry, M(a,b,!c), c).
  std::pair<signal, signal> create_full_adder(signal a, signal b, signal c);

  /// Adds a balancing buffer (never hashed).
  signal create_buffer(signal in);

  /// Adds a fan-out gate / FOG (never hashed).
  signal create_fanout(signal in);

  /// Registers a primary output; returns its position. `name` defaults to
  /// "po<N>".
  std::uint32_t create_po(signal driver, std::string name = {});

  /// @}
  /// @name Structure queries
  /// @{

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_pis() const { return pis_.size(); }
  [[nodiscard]] std::size_t num_pos() const { return pos_.size(); }
  [[nodiscard]] std::size_t num_majorities() const { return num_majorities_; }
  [[nodiscard]] std::size_t num_buffers() const { return num_buffers_; }
  [[nodiscard]] std::size_t num_fanout_gates() const { return num_fanouts_; }

  /// Majority + buffer + fanout count: the component count used in the
  /// paper's netlist-size metrics (PIs and constants are not components).
  [[nodiscard]] std::size_t num_components() const {
    return num_majorities_ + num_buffers_ + num_fanouts_;
  }

  [[nodiscard]] node_kind kind(node_index n) const { return nodes_[n].kind; }
  [[nodiscard]] bool is_constant(node_index n) const { return nodes_[n].kind == node_kind::constant; }
  [[nodiscard]] bool is_pi(node_index n) const { return nodes_[n].kind == node_kind::primary_input; }
  [[nodiscard]] bool is_majority(node_index n) const { return nodes_[n].kind == node_kind::majority; }
  [[nodiscard]] bool is_buffer(node_index n) const { return nodes_[n].kind == node_kind::buffer; }
  [[nodiscard]] bool is_fanout_gate(node_index n) const { return nodes_[n].kind == node_kind::fanout; }

  /// Fan-in signals of a node (empty span for constants and PIs).
  [[nodiscard]] std::span<const signal> fanins(node_index n) const;

  /// All PI node indices in creation order.
  [[nodiscard]] const std::vector<node_index>& pis() const { return pis_; }
  /// All primary outputs in creation order.
  [[nodiscard]] const std::vector<output>& pos() const { return pos_; }

  [[nodiscard]] signal po_signal(std::size_t position) const { return pos_[position].driver; }
  [[nodiscard]] const std::string& po_name(std::size_t position) const { return pos_[position].name; }
  [[nodiscard]] const std::string& pi_name(std::size_t position) const { return pi_names_[position]; }
  /// PI position of a primary-input node.
  [[nodiscard]] std::size_t pi_position(node_index n) const { return nodes_[n].aux; }

  /// @}
  /// @name Iteration (index order == topological order)
  /// @{

  template <typename Fn>
  void foreach_node(Fn&& fn) const {
    for (node_index n = 0; n < nodes_.size(); ++n) {
      fn(n);
    }
  }

  template <typename Fn>
  void foreach_gate(Fn&& fn) const {
    for (node_index n = 1; n < nodes_.size(); ++n) {
      if (nodes_[n].kind == node_kind::majority) {
        fn(n);
      }
    }
  }

  template <typename Fn>
  void foreach_component(Fn&& fn) const {
    for (node_index n = 1; n < nodes_.size(); ++n) {
      const auto k = nodes_[n].kind;
      if (k == node_kind::majority || k == node_kind::buffer || k == node_kind::fanout) {
        fn(n);
      }
    }
  }

  /// @}

private:
  signal lookup_or_create_maj(signal a, signal b, signal c, bool output_complemented);

  struct maj_key {
    std::array<std::uint32_t, 3> raw;
    friend bool operator==(const maj_key&, const maj_key&) = default;
  };
  struct maj_key_hash {
    std::size_t operator()(const maj_key& k) const noexcept;
  };

  std::vector<node> nodes_;
  std::vector<node_index> pis_;
  std::vector<std::string> pi_names_;
  std::vector<output> pos_;
  std::unordered_map<maj_key, node_index, maj_key_hash> strash_;
  std::size_t num_majorities_{0};
  std::size_t num_buffers_{0};
  std::size_t num_fanouts_{0};
};

}  // namespace wavemig
