#pragma once

#include <cstddef>

#include "wavemig/mig.hpp"

namespace wavemig {

struct functional_reduction_options {
  /// Maximum cut width (leaf count); 16-bit truth tables cap this at 4.
  unsigned cut_size{4};
  /// Maximum cuts kept per node (smallest-leaf-count first).
  unsigned cuts_per_node{8};
};

struct functional_reduction_result {
  mig_network net;
  /// Majority gates removed by merging equivalent cones.
  std::size_t merged_gates{0};
};

/// Cut-based functional reduction: enumerates k-feasible cuts with their
/// local truth tables (bottom-up merging, like classic FRAIG/cut-rewriting
/// engines) and merges any two nodes that realize the same function — up to
/// complement — over the same cut leaves. Catches redundancies that
/// structural hashing cannot, e.g. `(a&b) | ((a|b)&c)` merging with
/// `M(a,b,c)`. Functionally equivalent by construction (two cones with equal
/// truth tables over identical leaves compute the same signal); verified by
/// randomized tests.
functional_reduction_result reduce_functionally(const mig_network& net,
                                                const functional_reduction_options& options = {});

}  // namespace wavemig
