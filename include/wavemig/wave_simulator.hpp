#pragma once

#include <cstdint>
#include <vector>

#include "wavemig/levels.hpp"
#include "wavemig/mig.hpp"

namespace wavemig {

/// Result of streaming data waves through a netlist under the multi-phase
/// regeneration clock of the paper's Fig. 4.
struct wave_run_result {
  /// Per wave, the sampled primary-output values.
  std::vector<std::vector<bool>> outputs;
  /// Total clock ticks executed.
  std::uint64_t ticks{0};
  /// Ticks from injecting a wave to sampling it at the outputs.
  std::uint32_t latency_ticks{0};
  /// Ticks between successive wave injections (= number of clock phases).
  std::uint32_t initiation_interval{0};
  /// The paper's N = d / phases: waves simultaneously in flight.
  std::uint32_t waves_in_flight{0};
};

/// Cycle-accurate wave-pipelining simulation.
///
/// Clocking model: components at level l belong to clock phase
/// (l − 1) mod `phases`; tick t fires phase (t mod `phases`), and every
/// fired component synchronously latches the majority/identity of its
/// fan-ins' pre-tick values (non-volatile cells hold their value between
/// firings). A new input wave is presented every `phases` ticks; wave w is
/// sampled at each output when its driver latches it.
///
/// On a wave-ready netlist (see check_wave_readiness) every wave's outputs
/// equal the combinational evaluation of that wave's inputs. On an
/// unbalanced netlist adjacent waves interfere — the motivation for the
/// paper's buffer-insertion algorithm; tests and examples demonstrate both.
///
/// `waves[w]` holds one bool per primary input. `phases` must be >= 1.
wave_run_result run_waves(const mig_network& net, const std::vector<std::vector<bool>>& waves,
                          unsigned phases = 3);

/// Same, clocking components by an explicit schedule instead of ASAP levels.
/// Required for tolerance-balanced netlists, whose coherence holds only
/// under the schedule returned by buffer insertion (see
/// buffer_insertion_options::tolerance).
wave_run_result run_waves(const mig_network& net, const std::vector<std::vector<bool>>& waves,
                          unsigned phases, const level_map& schedule);

/// Packed wave-pipelined execution: 64 independent waves per 64-bit word per
/// step, wave-for-wave identical to `run_waves` on any wave-coherent netlist
/// (every edge span in [1, phases] under the schedule — what insert_buffers
/// produces). Throws std::invalid_argument on malformed input, or when the
/// netlist is not coherent under `phases` (an incoherent netlist exhibits
/// wave interference, which only the cycle-accurate `run_waves` models).
///
/// This is the drop-in convenience form; high-throughput and streaming
/// callers should compile once and use the engine API directly
/// (engine/wave_engine.hpp: run_waves_packed on a wave_batch, wave_stream).
wave_run_result run_waves_packed(const mig_network& net,
                                 const std::vector<std::vector<bool>>& waves,
                                 unsigned phases = 3);

/// Same, under an explicit clock schedule.
wave_run_result run_waves_packed(const mig_network& net,
                                 const std::vector<std::vector<bool>>& waves, unsigned phases,
                                 const level_map& schedule);

}  // namespace wavemig
