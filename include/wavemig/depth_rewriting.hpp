#pragma once

#include "wavemig/mig.hpp"

namespace wavemig {

/// Options for algebraic MIG depth rewriting.
struct depth_rewriting_options {
  /// Maximum number of full rewriting sweeps; each sweep rebuilds the
  /// network. Iteration stops early once the depth no longer improves.
  unsigned max_iterations{10};
  /// Allow the distributivity rule, which trades one duplicated gate for a
  /// level (the L→R majority distributivity of [16]). When false only the
  /// area-neutral associativity rules are applied.
  bool allow_area_increase{true};
};

/// Algebraic depth optimization over the majority axioms Ω of [14]–[16]:
/// associativity  M(x, u, M(y, u, z)) = M(z, u, M(y, u, x)) and
/// distributivity M(x, y, M(u, v, z)) = M(M(x,y,u), M(x,y,v), z),
/// applied where they provably reduce the level of the rebuilt node.
/// The paper assumes its input netlists are "already optimized for depth";
/// this pass provides that precondition for generated benchmarks.
///
/// The result is functionally equivalent to the input (asserted in tests);
/// PI/PO interface is preserved.
mig_network depth_rewrite(const mig_network& net, const depth_rewriting_options& options = {});

}  // namespace wavemig
