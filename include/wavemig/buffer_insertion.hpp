#pragma once

#include <cstdint>
#include <optional>

#include "wavemig/mig.hpp"
#include "wavemig/scheduling.hpp"

namespace wavemig {

/// How balancing buffers are organized per driver (§III of the paper,
/// DESIGN.md §2.2).
enum class buffer_strategy {
  /// Private buffer chain per edge — no sharing. Strawman baseline used by
  /// the ablation bench; inserts the most buffers.
  naive,
  /// The paper's Algorithm 1: one shared buffer chain per driver; fan-outs
  /// tap the chain at their required depth (the cumulative `lastBD` greedy).
  chain,
  /// Bottom-up merged buffer trees that additionally respect a fan-out
  /// capacity on every vertex. With unlimited capacity this produces exactly
  /// the chain solution; with capacity k it is the strategy composed with
  /// fan-out restriction.
  tree,
};

struct buffer_insertion_options {
  buffer_strategy strategy{buffer_strategy::chain};
  /// Fan-out capacity honored by the `tree` strategy (taps + chain
  /// continuation per vertex). Ignored by `naive`/`chain`.
  std::optional<unsigned> fanout_limit{};
  /// Pad every primary output to the maximum output depth (second loop of
  /// Algorithm 1). Disable only for experiments.
  bool pad_outputs{true};
  /// Level assignment driving the per-edge buffer demand. The paper uses
  /// ASAP levels; ALAP/mid-slack redistribute slack and can shrink the
  /// buffer bill at identical depth (scheduling ablation bench).
  schedule_policy schedule{schedule_policy::asap};
  /// Allowed residual gap per edge. The paper balances exactly (0). Under a
  /// P-phase clock a non-volatile cell holds its value for P ticks, so an
  /// edge spanning up to `tolerance + 1` scheduled levels still delivers the
  /// same wave as long as tolerance <= P - 2 (see DESIGN.md §2.2 and the
  /// ablation_tolerance bench). With tolerance > 0 the result is coherent
  /// only under the *returned* schedule — components must be clocked by
  /// `buffer_insertion_result::schedule`, not by recomputed ASAP levels.
  unsigned tolerance{0};
};

struct buffer_insertion_result {
  mig_network net;
  std::size_t buffers_added{0};
  std::uint32_t depth_before{0};
  std::uint32_t depth_after{0};
  /// Scheduled level (clock-phase anchor) of every node in `net`. Equals the
  /// ASAP levels when tolerance == 0.
  level_map schedule;
};

/// Balances every path of the netlist so that all input→output paths have
/// equal length (the wave-pipelining requirement of §II-C). After the pass,
/// every non-constant edge spans exactly one level and all primary outputs
/// sit at the same depth; `check_wave_readiness` verifies both. The pass
/// never changes the circuit function — buffers are identity components.
///
/// Throws std::invalid_argument if `tree` with a finite `fanout_limit`
/// encounters a driver whose direct consumers already exceed the capacity
/// (run fan-out restriction first).
buffer_insertion_result insert_buffers(const mig_network& net,
                                       const buffer_insertion_options& options = {});

}  // namespace wavemig
