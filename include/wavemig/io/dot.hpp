#pragma once

#include <iosfwd>
#include <string>

#include "wavemig/mig.hpp"

namespace wavemig::io {

/// Writes a Graphviz dot rendering: majority gates as ellipses, buffers as
/// boxes, fan-out gates as triangles, complemented edges dashed, nodes
/// ranked by level (so wave fronts line up visually).
void write_dot(const mig_network& net, std::ostream& os);
void write_dot_file(const mig_network& net, const std::string& path);

}  // namespace wavemig::io
