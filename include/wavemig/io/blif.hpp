#pragma once

#include <iosfwd>
#include <string>

#include "wavemig/mig.hpp"

namespace wavemig::io {

/// Reads a combinational BLIF subset: `.model`, `.inputs`, `.outputs`,
/// single-output `.names` covers (cube lines over {0,1,-} with on-set or
/// off-set output column), and `.end`. Each cover is converted to majority
/// logic as an OR of AND cubes (off-set covers are complemented). Latches
/// and hierarchy are rejected with parse_error.
mig_network read_blif(std::istream& is);
mig_network read_blif_file(const std::string& path);

/// Writes BLIF. Majority gates become three-cube `.names`, buffers and
/// fan-out gates single-cube identity `.names`, and complemented edges
/// materialize one shared inverter `.names` per driver.
void write_blif(const mig_network& net, std::ostream& os, const std::string& model_name = "mig");
void write_blif_file(const mig_network& net, const std::string& path,
                     const std::string& model_name = "mig");

}  // namespace wavemig::io
