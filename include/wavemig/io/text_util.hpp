#pragma once

#include <cstddef>
#include <string>

namespace wavemig::io {

/// Strips one line's trailing end-of-line debris in place: any combination
/// of '\r', ' ', and '\t' at the end (std::getline already consumed the
/// '\n'). The one shared definition of "end of a text line" for every
/// reader in io/ — files written on Windows (CRLF) or with trailing
/// whitespace parse identically to clean ones.
void strip_line_ending(std::string& line);

/// Parses a non-negative decimal count with an explicit overflow bound:
/// rejects empty tokens, non-digit characters, and any value above `max`
/// with std::invalid_argument naming `what` — a fuzzed header (or argv)
/// count can neither wrap an unsigned nor smuggle a sign through
/// stoul-style silent negation.
[[nodiscard]] std::size_t parse_count(const std::string& token, std::size_t max,
                                      const char* what);

}  // namespace wavemig::io
