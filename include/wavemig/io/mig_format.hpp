#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "wavemig/mig.hpp"

namespace wavemig::io {

/// Error thrown by all readers on malformed input; carries a line number.
class parse_error : public std::runtime_error {
public:
  parse_error(std::size_t line, const std::string& message)
      : std::runtime_error{"line " + std::to_string(line) + ": " + message}, line_{line} {}

  [[nodiscard]] std::size_t line() const { return line_; }

private:
  std::size_t line_;
};

/// Writes the native `.mig` netlist format:
///
///     # comment
///     .model <name>
///     .inputs <name> ...
///     <name> = MAJ(<op>, <op>, <op>)
///     <name> = BUF(<op>)
///     <name> = FOG(<op>)
///     .output <name> = <op>
///
/// where an operand is `[!]<name>`, `0`, or `1`. Definitions precede uses
/// (the writer emits topological order; the reader enforces it).
void write_mig(const mig_network& net, std::ostream& os, const std::string& model_name = "mig");
void write_mig_file(const mig_network& net, const std::string& path,
                    const std::string& model_name = "mig");

/// Reads the native format. Round-trips with write_mig (structure and names
/// preserved up to majority canonicalization).
mig_network read_mig(std::istream& is);
mig_network read_mig_file(const std::string& path);

}  // namespace wavemig::io
