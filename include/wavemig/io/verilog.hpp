#pragma once

#include <iosfwd>
#include <string>

#include "wavemig/mig.hpp"

namespace wavemig::io {

/// Writes structural Verilog: one `assign` per component, with majority
/// expanded to (a&b)|(a&c)|(b&c) and edge complements inlined as `~`.
/// Buffers and fan-out gates become identity assigns, preserving the
/// physical netlist structure for downstream tools.
void write_verilog(const mig_network& net, std::ostream& os,
                   const std::string& module_name = "mig");
void write_verilog_file(const mig_network& net, const std::string& path,
                        const std::string& module_name = "mig");

/// Reads a combinational structural-Verilog subset: one module; `input`,
/// `output` and `wire` declarations; `assign` statements over `~ & | ^ ()`
/// expressions, identifiers (plain or backslash-escaped), and the constants
/// 1'b0 / 1'b1. The canonical majority pattern (a&b)|(a&c)|(b&c) emitted by
/// write_verilog is recognized and rebuilt as a single majority gate, and
/// identity assigns tagged `// BUF` or `// FOG` restore physical buffers and
/// fan-out gates, so write/read round trips preserve structure. Other
/// expressions synthesize through AND/OR/XOR majority construction.
/// Definitions may appear in any order; combinational cycles are rejected
/// with parse_error.
mig_network read_verilog(std::istream& is);
mig_network read_verilog_file(const std::string& path);

}  // namespace wavemig::io
