#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wavemig/technology.hpp"

namespace wavemig {

/// An *active* technology scenario: the passive Table I constants
/// (`technology`) extended with the axes the related work shows actually
/// differentiate beyond-CMOS targets, consumed by every downstream layer:
///
/// * **fan-out capability** — per-gate fan-out limit that
///   `pipeline_options` / `fanout_restriction` derive their restriction
///   value from ("Fan-out enabled spin wave majority gate",
///   arXiv:2109.05219 demonstrates fan-outs of 2; the paper's §IV sweeps
///   2..5);
/// * **FDM lanes** — frequency-division multiplexing carries several
///   logical waves per physical conduit slot ("Reconfigurable nanoscale
///   spin wave majority gate with frequency-division multiplexing",
///   arXiv:1908.02546); the engine models `fdm_lanes` as a wave-count
///   multiplier per physical pass (clock metadata only — computed outputs
///   are lane-independent);
/// * **attenuation / regeneration budget** — spin waves attenuate as they
///   propagate; once the accumulated loss exceeds what one
///   repeater/transducer restores, the loss-budget pass
///   (`enforce_loss_budget`) must insert a regenerating repeater buffer,
///   costed by `repeater`.
///
/// The scenario also tags compiled programs: `fingerprint()` flows through
/// `compile_options` into the batch/serving cache key, so one session caches
/// and serves different scenarios of the same netlist as distinct programs.
struct tech_scenario {
  std::string name;
  technology tech;

  /// Per-gate fan-out capability; nullopt = unlimited fan-out (no
  /// restriction pass). The pipeline derives its default limit from this —
  /// see pipeline_options::fanout_limit for the precedence.
  std::optional<unsigned> fanout_limit{3};

  /// Logical waves per physical conduit slot (FDM frequency channels);
  /// 1 = no multiplexing.
  unsigned fdm_lanes{1};

  /// Amplitude loss per traversed logic level (majority or fan-out gate),
  /// in dB; 0 = lossless (the paper's model).
  double attenuation_db_per_level{0.0};

  /// Loss budget one repeater (or the input transducer) restores, in dB.
  /// Only meaningful with attenuation > 0.
  double regeneration_db{0.0};

  /// Relative cost of a repeater buffer inserted by the loss-budget pass,
  /// in technology cells (same units as technology::buf — a repeater is a
  /// buffer with an active regeneration stage).
  component_costs repeater{2.0, 1.0, 2.0};

  /// Logic levels a wave may traverse without regeneration:
  /// floor(regeneration_db / attenuation_db_per_level), clamped to >= 1.
  /// nullopt when the scenario is lossless (attenuation <= 0).
  [[nodiscard]] std::optional<unsigned> max_unregenerated_levels() const;

  /// Order-sensitive semantic fingerprint (name, constants, fan-out, lanes,
  /// loss budget, repeater cost). Never zero — zero is the "no scenario"
  /// tag of compile_options. Scenarios that compile or cost differently
  /// fingerprint differently (modulo 64-bit collisions).
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Spin Wave Devices, the paper's Table I/II model: fan-out 3, no FDM,
  /// lossless.
  static tech_scenario swd();
  /// Quantum-dot Cellular Automata: majority-cell fan-out 4, lossless.
  static tech_scenario qca();
  /// NanoMagnetic Logic: conservative fan-out 2, lossless.
  static tech_scenario nml();
  /// FDM-enabled spin wave variant (arXiv:1908.02546 + arXiv:2109.05219):
  /// fan-out 2, 4 frequency lanes per conduit, and an attenuation budget
  /// (0.25 dB/level against 2.5 dB regeneration = repeater every 10 levels).
  static tech_scenario fdm_swd();

  /// Registry lookup by name (case-insensitive). Throws
  /// unknown_technology_error for anything not in `names()`.
  static tech_scenario by_name(const std::string& name);
  /// The built-in scenario names: SWD, QCA, NML, FDM-SWD.
  static const std::vector<std::string>& names();
};

}  // namespace wavemig
