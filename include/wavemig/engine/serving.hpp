#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/engine/parallel_executor.hpp"
#include "wavemig/engine/wave_engine.hpp"
#include "wavemig/mig.hpp"

namespace wavemig::engine {

/// Completion callback of the async serving API. Exactly one of the two
/// arguments is meaningful: on success `error` is null and `result` carries
/// the packed outputs; on failure (e.g. an incoherent netlist or a
/// PI-count mismatch) `error` holds the exception and `result` is empty.
/// Callbacks run on a dispatcher thread — they may `submit` further
/// requests, but must not block on the session (`drain`/`close`) or on the
/// executor, and should hand heavy post-processing to the caller's own
/// threads. An exception thrown by a callback (e.g. a follow-up `submit`
/// racing `close()`) is caught and discarded; it never kills a dispatcher.
using serving_callback =
    std::function<void(packed_wave_result result, std::exception_ptr error)>;

/// Async serving front-end over `batch_session`: a multi-producer
/// submission queue feeding a small pool of dispatcher threads, which
/// compile through the session's bounded compiled-netlist cache and shard
/// the actual wave evaluation across the shared `parallel_executor`.
///
/// * `submit` never blocks on evaluation — it enqueues and returns a
///   `std::future` (or fires a completion callback) whose result words are
///   bit-identical to `run_waves_packed` on the session-balanced network.
/// * Per-request compiled-netlist reuse: requests against structurally
///   identical networks share one cached program; the request holds its own
///   reference, so cache eviction (LRU under `cache_limits`) while the
///   request is in flight is safe.
/// * Dispatcher threads are deliberately separate from the executor's
///   workers: a request's `run` blocks on the pool (`for_each`), which must
///   never happen from inside a pool task.
///
/// Shutdown is graceful by default: `close()` (and the destructor) stops
/// accepting new requests, drains everything already accepted, then joins
/// the dispatchers. No accepted request is ever dropped.
class serving_session {
public:
  /// The executor must outlive the session. `dispatchers == 0` resolves to
  /// 2 — enough to overlap one request's compile (cache miss) with another
  /// request's evaluation; raise it for workloads dominated by misses.
  /// `compile` selects the optimizer level every cached program is built
  /// with (bit-identical outputs at every level; see engine/optimizer.hpp).
  explicit serving_session(parallel_executor& executor,
                           buffer_insertion_options options = {}, cache_limits limits = {},
                           unsigned dispatchers = 0, compile_options compile = {});
  ~serving_session();

  serving_session(const serving_session&) = delete;
  serving_session& operator=(const serving_session&) = delete;

  /// Enqueues one request and returns a future for its packed result.
  /// Validation happens on the dispatcher, so malformed requests surface as
  /// exceptions from `future.get()`, not from `submit`. Throws
  /// std::runtime_error when the session is closed.
  [[nodiscard]] std::future<packed_wave_result> submit(mig_network net, wave_batch waves,
                                                       unsigned phases);

  /// Callback variant: `on_complete` fires exactly once per accepted
  /// request (see serving_callback for the threading contract).
  void submit(mig_network net, wave_batch waves, unsigned phases,
              serving_callback on_complete);

  /// Zero-copy packed submission: `plane_words` holds the waves already in
  /// the engine's plane-major layout — ceil(num_waves / 64) contiguous
  /// chunk words per PI, PI i's words at `plane_words[i * chunks ..
  /// (i+1) * chunks)`, wave w at bit w % 64 (exactly
  /// `wave_batch::view()` with plane stride == chunk count). The vector is
  /// adopted wholesale (`wave_batch::from_plane_words`); no per-wave
  /// packing, no transpose, no copy happens anywhere between the producer
  /// and the kernel. Bits above `num_waves` in each plane's last chunk are
  /// masked off. Like `submit`, validation (including the vector-size
  /// check) happens on the dispatcher, so malformed requests surface
  /// through the future / callback, and std::runtime_error is thrown when
  /// the session is closed.
  [[nodiscard]] std::future<packed_wave_result> submit_packed(
      mig_network net, std::vector<std::uint64_t> plane_words, std::size_t num_waves,
      unsigned phases);

  /// Callback variant of the zero-copy packed submission.
  void submit_packed(mig_network net, std::vector<std::uint64_t> plane_words,
                     std::size_t num_waves, unsigned phases, serving_callback on_complete);

  /// Blocks until every request accepted so far completed. New submissions
  /// remain allowed (and may keep `drain` from returning if they keep
  /// arriving).
  void drain();

  /// Stops accepting (`submit` throws), drains all accepted requests, joins
  /// the dispatchers. Idempotent and safe to call concurrently.
  void close();

  /// Requests accepted but not yet completed (queued + executing).
  [[nodiscard]] std::size_t pending() const;
  /// Dispatcher threads still attached (0 once closed). Blocks while a
  /// concurrent `close()` is joining them.
  [[nodiscard]] unsigned num_dispatchers() const {
    std::lock_guard<std::mutex> lock{close_mutex_};
    return static_cast<unsigned>(dispatchers_.size());
  }

  /// Counters of the underlying compiled-netlist cache.
  [[nodiscard]] session_stats stats() const { return session_.stats(); }
  /// The synchronous session underneath — shares the cache with the async
  /// path, so mixed sync/async workloads reuse one set of programs.
  [[nodiscard]] batch_session& session() { return session_; }

private:
  struct request {
    mig_network net;
    wave_batch waves{0};  // wave_batch has no default constructor
    /// submit_packed requests carry the adopted plane-major words instead
    /// of a batch; the dispatcher wraps them (zero-copy, but its size
    /// validation must surface through the future, not from submit).
    std::vector<std::uint64_t> plane_words;
    std::size_t packed_waves{0};
    bool packed{false};
    unsigned phases{0};
    serving_callback done;
  };

  void dispatcher_loop();

  batch_session session_;
  mutable std::mutex mutex_;
  std::condition_variable queue_ready_;  // dispatchers: work or close
  std::condition_variable idle_;         // drain: queue empty and nothing active
  std::deque<request> queue_;
  std::size_t active_{0};
  bool closed_{false};
  /// Serializes joining: every close() caller blocks until the dispatchers
  /// are actually joined, not just until someone else started joining.
  /// Guards dispatchers_ once the session is visible to other threads.
  mutable std::mutex close_mutex_;
  std::vector<std::thread> dispatchers_;
};

}  // namespace wavemig::engine
