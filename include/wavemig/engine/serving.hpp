#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/engine/parallel_executor.hpp"
#include "wavemig/engine/wave_engine.hpp"
#include "wavemig/mig.hpp"

namespace wavemig::engine {

/// @name Serving error taxonomy
///
/// Typed errors of the serving layer (like `unknown_technology_error` in the
/// technology registry), so front-ends — the network wire layer above all —
/// can map failure classes to status codes without string-matching. Every
/// class keeps the base its untyped predecessor threw (`std::runtime_error`
/// for control-flow errors, `std::invalid_argument` for validation errors),
/// so pre-existing catch sites keep working unchanged.
/// @{

/// Thrown by `submit`/`submit_packed` once the session is closed (a
/// `close()` ran or is running). Previously a bare `std::runtime_error`.
class session_closed_error : public std::runtime_error {
public:
  session_closed_error() : std::runtime_error{"serving_session: submit after close"} {}
};

/// Thrown by `submit`/`submit_packed` when admission control is enabled and
/// the backlog (queued + executing requests) already sits at the bound: the
/// request was rejected outright, never queued. Rejecting beats queueing for
/// a loaded server — the caller learns immediately instead of discovering a
/// deadline miss later.
class admission_rejected_error : public std::runtime_error {
public:
  admission_rejected_error(std::size_t pending, std::size_t bound)
      : std::runtime_error{"serving_session: admission rejected (" +
                           std::to_string(pending) + " pending >= bound " +
                           std::to_string(bound) + ")"} {}
  /// Load-shedding variant: the session is overloaded (see shed_policy) and
  /// this request's priority class is the one being shed.
  explicit admission_rejected_error(const std::string& what)
      : std::runtime_error{what} {}
};

/// Surfaced through the future/callback of a request whose deadline passed
/// before a dispatcher picked it up: the request fails instead of executing
/// (its result could no longer be used by anyone).
class deadline_expired_error : public std::runtime_error {
public:
  deadline_expired_error() : std::runtime_error{"serving_session: deadline expired"} {}
};

/// Surfaced through the future/callback of a request whose shape fails
/// validation on the dispatcher — a zero-wave packed submission, plane words
/// inconsistent with the declared wave count, or stray tail bits under
/// strict validation. Derives from `std::invalid_argument` like every other
/// engine validation error.
class invalid_request_error : public std::invalid_argument {
public:
  explicit invalid_request_error(const std::string& what) : std::invalid_argument{what} {}
};

/// @}

/// Per-request serving policies, honored by the dispatcher's gulp order.
/// Default-constructed options reproduce the pre-policy behavior exactly
/// (FIFO order, no deadline, tail bits masked).
struct submit_options {
  /// Dispatch priority: lower values are gulped (hence dispatched) first.
  /// 128 is the neutral default; the wire protocol carries the raw byte.
  std::uint8_t priority{128};
  /// Absolute deadline. A request still queued when its deadline passes
  /// fails with deadline_expired_error instead of executing. The zero
  /// time_point (default) means no deadline.
  std::chrono::steady_clock::time_point deadline{};
  /// Fairness key: within one priority class, a gulp round-robins across
  /// distinct client ids (one request per client per turn, FIFO within a
  /// client), so one flooding connection cannot starve the others. 0 means
  /// unkeyed — unkeyed requests form their own round-robin class.
  std::uint64_t client_id{0};
  /// Strict packed validation: stray bits above `num_waves` in a plane's
  /// last chunk fail the request (invalid_request_error) instead of being
  /// silently masked — what the wire front-end uses for untrusted payloads.
  bool reject_stray_tail_bits{false};
  /// Scenario of the request; null = untagged. Shared so fused members and
  /// the coalescing machinery never copy the scenario.
  std::shared_ptr<const tech_scenario> scenario;
  /// Per-request compile-options override (opt level, schedule level,
  /// prefetch toggle); nullopt = the session's defaults. The override joins
  /// the program cache key via its options fingerprint, so the same netlist
  /// requested at two schedule levels is served by two distinct cached
  /// programs — and requests compiled under different options never
  /// coalesce (coalescing keys on the program pointer).
  std::optional<compile_options> compile;
};

/// Overload load-shedding policy (set_shed_policy). When the session looks
/// overloaded — the queue is at least `queue_depth` requests deep, or the
/// recent queue-wait p99 exceeds `queue_wait_p99_ms` — submissions whose
/// priority byte is `min_priority` or worse (higher) are rejected with
/// admission_rejected_error *before* they consume a queue slot, so the
/// high-priority traffic that can still meet its deadlines keeps flowing.
/// Unlike the admission limit (a hard backlog cap for everyone), shedding
/// is selective: best-effort traffic pays for the overload first. A
/// default-constructed policy (both thresholds zero) disables shedding.
struct shed_policy {
  /// Queue depth at which the session counts as overloaded; 0 = ignore.
  std::size_t queue_depth{0};
  /// Recent queue-wait p99 (milliseconds, over the last ~128 dispatched
  /// requests) above which the session counts as overloaded; 0 = ignore.
  double queue_wait_p99_ms{0.0};
  /// Priority bytes >= this are shed while overloaded. The default 192
  /// sheds the bottom quarter of the priority space and never touches the
  /// neutral default (128).
  std::uint8_t min_priority{192};
};

/// Completion callback of the async serving API. Exactly one of the two
/// arguments is meaningful: on success `error` is null and `result` carries
/// the packed outputs; on failure (e.g. an incoherent netlist or a
/// PI-count mismatch) `error` holds the exception and `result` is empty.
/// Callbacks run on an executor worker (the one that finished the request's
/// last plane-block) or, for requests that fail validation, on a dispatcher
/// thread — they may `submit` further requests, but must not block on the
/// session (`drain`/`close`) or on the executor, and should hand heavy
/// post-processing to the caller's own threads. An exception thrown by a
/// callback (e.g. a follow-up `submit` racing `close()`) is caught and
/// discarded; it never kills a dispatcher or a worker.
using serving_callback =
    std::function<void(packed_wave_result result, std::exception_ptr error)>;

/// Point-in-time counters of a serving session's dispatcher. All counts are
/// monotonic over the session's lifetime.
struct serving_metrics {
  std::uint64_t requests_accepted{0};
  std::uint64_t requests_completed{0};  ///< callbacks fired with a result
  std::uint64_t requests_failed{0};     ///< callbacks fired with an error
  /// Submissions refused by admission control (admission_rejected_error
  /// thrown from submit; never accepted, so disjoint from the above).
  std::uint64_t requests_rejected{0};
  /// Submissions shed by the overload policy (a subset of
  /// requests_rejected: every shed is also counted there).
  std::uint64_t requests_shed{0};
  /// Requests failed because their deadline passed before dispatch (a
  /// subset of requests_failed).
  std::uint64_t requests_expired{0};
  /// Requests that executed as members of a fused multi-request pool pass
  /// (always counts the whole pass: a fused pass of 5 adds 5 here).
  std::uint64_t coalesced_requests{0};
  std::uint64_t fused_passes{0};      ///< multi-request pool passes launched
  std::uint64_t singleton_passes{0};  ///< single-request pool passes launched
  std::uint64_t gulps{0};             ///< queue drains performed by dispatchers
  std::uint64_t max_gulp{0};          ///< largest single drain (requests)
};

/// Async serving front-end over `batch_session`: a multi-producer
/// submission queue feeding a small pool of dispatcher threads, which
/// compile through the session's bounded compiled-netlist cache and shard
/// the actual wave evaluation across the shared `parallel_executor`.
///
/// * `submit` never blocks on evaluation — it enqueues and returns a
///   `std::future` (or fires a completion callback) whose result words are
///   bit-identical to `run_waves_packed` on the session-balanced network.
/// * Dispatchers drain the queue in **gulps** and **coalesce** small
///   same-program requests (same compiled-netlist fingerprint, buffer
///   strategy, and phase count) into one fused multi-chunk pool pass: each
///   request's waves become a chunk range of a fused plane-major block, the
///   pass shards across the executor like one big batch, and the finished
///   planes are sliced back per request. Wave coherence makes every 64-wave
///   chunk a pure function of its own input chunk, so a request's sliced
///   words are bit-identical to running it alone.
/// * Execution is non-blocking end to end: a dispatcher launches each pass
///   via `parallel_executor::submit_group` with a completion callback and
///   immediately returns to the queue, so a couple of dispatchers keep
///   dozens of requests in flight. Per-request completion callbacks fire on
///   the worker that finished the pass (in no guaranteed order across
///   requests — concurrent passes complete as they complete).
/// * Error isolation: requests that fail preparation (malformed packed
///   words, incoherent netlist, phase/PI mismatch) fail individually and
///   never poison their gulp-mates. Members of one fused pass share a
///   fate only if the pass itself throws mid-evaluation (which no engine
///   path does for validated inputs) — then every member receives that
///   error.
/// * Per-request compiled-netlist reuse: requests against structurally
///   identical networks share one cached program; the request holds its own
///   reference, so cache eviction (LRU under `cache_limits`) while the
///   request is in flight is safe. Submitting the network by `shared_ptr`
///   additionally memoizes its fingerprint, so a hot resubmission costs one
///   hash-map lookup instead of an O(network) re-hash.
/// * Dispatcher threads are deliberately separate from the executor's
///   workers: dispatchers prepare and launch, workers evaluate and
///   complete; neither ever blocks on the pool from inside it.
///
/// Shutdown is graceful by default: `close()` (and the destructor) stops
/// accepting new requests, drains everything already accepted, then joins
/// the dispatchers. No accepted request is ever dropped.
class serving_session {
public:
  /// The executor must outlive the session. `dispatchers == 0` resolves to
  /// 2 — enough to overlap one request's compile (cache miss) with another
  /// gulp's preparation; execution itself is asynchronous, so dispatcher
  /// count bounds preparation concurrency, not requests in flight.
  /// `compile` selects the optimizer level every cached program is built
  /// with (bit-identical outputs at every level; see engine/optimizer.hpp).
  explicit serving_session(parallel_executor& executor,
                           buffer_insertion_options options = {}, cache_limits limits = {},
                           unsigned dispatchers = 0, compile_options compile = {});
  ~serving_session();

  serving_session(const serving_session&) = delete;
  serving_session& operator=(const serving_session&) = delete;

  /// Enqueues one request and returns a future for its packed result.
  /// Validation happens on the dispatcher, so malformed requests surface as
  /// exceptions from `future.get()`, not from `submit`. Throws
  /// session_closed_error when the session is closed and
  /// admission_rejected_error when the backlog is at the admission bound.
  ///
  /// The `shared_ptr` overloads are the hot path: the session keeps only a
  /// reference (no deep copy) and memoizes the network's fingerprint, so
  /// resubmitting the same network object costs one cache lookup. The
  /// by-value overloads wrap the network in a fresh `shared_ptr` — correct,
  /// but they re-fingerprint per submission.
  [[nodiscard]] std::future<packed_wave_result> submit(
      std::shared_ptr<const mig_network> net, wave_batch waves, unsigned phases);
  [[nodiscard]] std::future<packed_wave_result> submit(mig_network net, wave_batch waves,
                                                       unsigned phases);

  /// Callback variants: `on_complete` fires exactly once per accepted
  /// request (see serving_callback for the threading contract).
  void submit(std::shared_ptr<const mig_network> net, wave_batch waves, unsigned phases,
              serving_callback on_complete);
  void submit(mig_network net, wave_batch waves, unsigned phases,
              serving_callback on_complete);

  /// Scenario-parameterized submission: the request compiles through the
  /// scenario-tagged cache path (batch_session::compile with a scenario), so
  /// one session serves several technology scenarios of the same netlist
  /// concurrently — each scenario's requests coalesce among themselves (the
  /// coalescing key is the compiled program) and never across scenarios.
  [[nodiscard]] std::future<packed_wave_result> submit(
      std::shared_ptr<const mig_network> net, wave_batch waves, unsigned phases,
      tech_scenario scenario);
  void submit(std::shared_ptr<const mig_network> net, wave_batch waves, unsigned phases,
              tech_scenario scenario, serving_callback on_complete);

  /// Zero-copy packed submission: `plane_words` holds the waves already in
  /// the engine's plane-major layout — ceil(num_waves / 64) contiguous
  /// chunk words per PI, PI i's words at `plane_words[i * chunks ..
  /// (i+1) * chunks)`, wave w at bit w % 64 (exactly
  /// `wave_batch::view()` with plane stride == chunk count). The vector is
  /// adopted wholesale (`wave_batch::from_plane_words`); no per-wave
  /// packing, no transpose, no copy happens anywhere between the producer
  /// and the kernel. Bits above `num_waves` in each plane's last chunk are
  /// masked off (or rejected — see submit_options::reject_stray_tail_bits).
  /// Like `submit`, validation (including the vector-size check) happens on
  /// the dispatcher, so malformed requests surface through the future /
  /// callback, and session_closed_error / admission_rejected_error are
  /// thrown when the session is closed or the backlog is at the bound.
  [[nodiscard]] std::future<packed_wave_result> submit_packed(
      std::shared_ptr<const mig_network> net, std::vector<std::uint64_t> plane_words,
      std::size_t num_waves, unsigned phases);
  [[nodiscard]] std::future<packed_wave_result> submit_packed(
      mig_network net, std::vector<std::uint64_t> plane_words, std::size_t num_waves,
      unsigned phases);

  /// Callback variants of the zero-copy packed submission.
  void submit_packed(std::shared_ptr<const mig_network> net,
                     std::vector<std::uint64_t> plane_words, std::size_t num_waves,
                     unsigned phases, serving_callback on_complete);
  void submit_packed(mig_network net, std::vector<std::uint64_t> plane_words,
                     std::size_t num_waves, unsigned phases, serving_callback on_complete);

  /// Scenario variants of the zero-copy packed submission (see the
  /// scenario `submit` overloads for the caching/coalescing contract).
  [[nodiscard]] std::future<packed_wave_result> submit_packed(
      std::shared_ptr<const mig_network> net, std::vector<std::uint64_t> plane_words,
      std::size_t num_waves, unsigned phases, tech_scenario scenario);
  void submit_packed(std::shared_ptr<const mig_network> net,
                     std::vector<std::uint64_t> plane_words, std::size_t num_waves,
                     unsigned phases, tech_scenario scenario, serving_callback on_complete);

  /// Policy-carrying submissions: `opts` adds priority, an absolute
  /// deadline, a per-client fairness key, strict tail-bit validation, and
  /// an optional scenario (see submit_options). Default-constructed options
  /// make these behave exactly like the plain overloads above.
  [[nodiscard]] std::future<packed_wave_result> submit(
      std::shared_ptr<const mig_network> net, wave_batch waves, unsigned phases,
      submit_options opts);
  void submit(std::shared_ptr<const mig_network> net, wave_batch waves, unsigned phases,
              submit_options opts, serving_callback on_complete);
  [[nodiscard]] std::future<packed_wave_result> submit_packed(
      std::shared_ptr<const mig_network> net, std::vector<std::uint64_t> plane_words,
      std::size_t num_waves, unsigned phases, submit_options opts);
  void submit_packed(std::shared_ptr<const mig_network> net,
                     std::vector<std::uint64_t> plane_words, std::size_t num_waves,
                     unsigned phases, submit_options opts, serving_callback on_complete);

  /// Admission bound: while `pending() >= max_pending`, submissions throw
  /// admission_rejected_error instead of queueing (and are counted in
  /// metrics().requests_rejected). 0 — the default — disables admission
  /// control. Safe to adjust while the session is serving.
  void set_admission_limit(std::size_t max_pending);
  [[nodiscard]] std::size_t admission_limit() const;

  /// Overload shedding (see shed_policy): while the queue depth or the
  /// recent queue-wait p99 crosses its threshold, submissions at or below
  /// the policy's priority floor throw admission_rejected_error (counted in
  /// metrics().requests_shed). Safe to adjust while the session is serving;
  /// the default (zero) policy disables shedding.
  void set_shed_policy(shed_policy policy);
  [[nodiscard]] shed_policy get_shed_policy() const;

  /// Blocks until every request accepted so far completed. New submissions
  /// remain allowed (and may keep `drain` from returning if they keep
  /// arriving).
  void drain();

  /// Stops accepting (`submit` throws), drains all accepted requests, joins
  /// the dispatchers. Idempotent and safe to call concurrently.
  void close();

  /// Requests accepted but not yet completed (queued + executing).
  [[nodiscard]] std::size_t pending() const;
  /// Dispatcher threads still attached (0 once closed). Blocks while a
  /// concurrent `close()` is joining them.
  [[nodiscard]] unsigned num_dispatchers() const {
    std::lock_guard<std::mutex> lock{close_mutex_};
    return static_cast<unsigned>(dispatchers_.size());
  }

  /// Counters of the underlying compiled-netlist cache.
  [[nodiscard]] session_stats stats() const { return session_.stats(); }
  /// Dispatcher-level counters (gulps, coalescing, completions).
  [[nodiscard]] serving_metrics metrics() const;
  /// Drains the queue-wait sample reservoir: per-request milliseconds spent
  /// between `submit` and the dispatcher picking the request up, for up to
  /// the most recent 8192 requests since the previous take. Benchmarks turn
  /// these into queue-wait percentiles.
  [[nodiscard]] std::vector<double> take_queue_wait_samples();
  /// The synchronous session underneath — shares the cache with the async
  /// path, so mixed sync/async workloads reuse one set of programs.
  [[nodiscard]] batch_session& session() { return session_; }

private:
  struct request {
    std::shared_ptr<const mig_network> net;
    wave_batch waves{0};  // wave_batch has no default constructor
    /// submit_packed requests carry the adopted plane-major words instead
    /// of a batch; the dispatcher wraps them (zero-copy, but its size
    /// validation must surface through the future, not from submit).
    std::vector<std::uint64_t> plane_words;
    std::size_t packed_waves{0};
    bool packed{false};
    unsigned phases{0};
    /// Per-request policies: priority/deadline/fairness key, strict tail
    /// validation, and the scenario (null = untagged). The scenario is
    /// shared so fused members and the memo never copy it.
    submit_options opts;
    serving_callback done;
    std::chrono::steady_clock::time_point enqueued{};
  };

  /// One launched pool pass: a singleton request (zero-copy view of its own
  /// batch) or a fused group of small same-program requests packed into one
  /// plane-major block. Shared between the group tasks, the completion
  /// callback, and nothing else — destroyed when the last of them lets go.
  struct exec_unit {
    std::shared_ptr<const compiled_netlist> program;
    unsigned phases{0};
    bool fused{false};
    std::size_t total_chunks{0};
    std::vector<request> members;
    std::vector<std::size_t> member_offsets;  ///< chunk offset per member (fused)
    std::vector<std::size_t> member_waves;    ///< wave count per member
    wave_batch batch{0};                   ///< singleton input (moved from the request)
    std::vector<std::uint64_t> in_words;   ///< fused input planes, stride total_chunks
    std::vector<std::uint64_t> out_words;  ///< result planes, stride total_chunks
  };

  void enqueue(request req);
  void dispatcher_loop();
  /// Selects the next gulp under `mutex_`. The queue's common shape — one
  /// priority class, at most one client id — takes a straight FIFO slice;
  /// otherwise requests are ordered by ascending priority byte and, inside
  /// a priority class, round-robined across client ids (one request per
  /// client per turn, FIFO within a client) so one flooding connection
  /// cannot starve the rest of a gulp.
  std::vector<request> take_gulp_locked();
  void process_gulp(std::vector<request> gulp);
  /// Fingerprint of `net`, memoized by pointer for shared networks. The
  /// memo entry carries a weak_ptr so a reused allocation address (old
  /// network freed, new one at the same address) can never serve a stale
  /// fingerprint.
  std::uint64_t fingerprint_of(const std::shared_ptr<const mig_network>& net);
  /// Fails one request before launch: fires its callback with `error` on
  /// the calling (dispatcher) thread and retires it from `active_`.
  void fail_request(request& req, std::exception_ptr error);
  /// Launches one pass on the executor (waits for an in-flight slot first).
  void launch_unit(std::shared_ptr<exec_unit> unit);
  /// Completion of one pass, on the worker that finished its last task (or
  /// inline on the dispatcher for an empty pass): slices results back per
  /// member, fires callbacks, retires the members and the in-flight slot.
  void finish_unit(const std::shared_ptr<exec_unit>& unit, std::exception_ptr error);

  /// Requests per queue drain: bounds a gulp's preparation latency and the
  /// transient memory of its fused blocks.
  static constexpr std::size_t max_gulp_requests = 64;
  /// Requests at most this many chunks wide coalesce; wider ones amortize
  /// their pass overhead on their own. One full multi-word kernel pass.
  static constexpr std::size_t small_request_chunks = compiled_netlist::max_block_chunks;
  /// Chunk budget of one fused block (128 chunks = 8192 waves): big enough
  /// to amortize a pass over dozens of small requests, small enough that a
  /// gulp's fused blocks stay cache- and memory-friendly.
  static constexpr std::size_t max_fused_chunks = 16 * compiled_netlist::max_block_chunks;
  static constexpr std::size_t max_queue_wait_samples = 8192;

  parallel_executor& executor_;
  batch_session session_;
  /// In-flight pass cap: dispatchers stall launching (not accepting) once
  /// this many passes are queued or running, bounding result-buffer memory
  /// under a flood. Workers retire passes, so the stall always clears.
  std::size_t max_inflight_units_;
  mutable std::mutex mutex_;
  std::condition_variable queue_ready_;  // dispatchers: work or close
  std::condition_variable idle_;         // drain: queue empty and nothing active
  std::condition_variable unit_retired_;  // launch_unit: in-flight slot free
  std::deque<request> queue_;
  std::size_t active_{0};
  std::size_t inflight_units_{0};
  /// 0 = unbounded; otherwise submissions are rejected once
  /// `queue_.size() + active_` reaches the bound.
  std::size_t admission_limit_{0};
  bool closed_{false};
  serving_metrics metrics_;
  shed_policy shed_policy_{};
  /// Ring of the most recent queue waits (ms), feeding the cached p99 the
  /// shed check reads — O(1) per submission, recomputed every few samples.
  std::vector<double> recent_waits_;
  std::size_t recent_at_{0};
  std::size_t samples_since_p99_{0};
  double cached_wait_p99_ms_{0.0};
  std::vector<double> queue_wait_samples_;
  struct fp_memo_entry {
    std::weak_ptr<const mig_network> net;
    std::uint64_t fingerprint{0};
  };
  std::mutex fp_mutex_;
  std::unordered_map<const mig_network*, fp_memo_entry> fp_memo_;
  /// Serializes joining: every close() caller blocks until the dispatchers
  /// are actually joined, not just until someone else started joining.
  /// Guards dispatchers_ once the session is visible to other threads.
  mutable std::mutex close_mutex_;
  std::vector<std::thread> dispatchers_;
};

}  // namespace wavemig::engine
