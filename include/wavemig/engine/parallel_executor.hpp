#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/engine/compiled_netlist.hpp"
#include "wavemig/engine/wave_engine.hpp"

namespace wavemig::engine {

/// Persistent worker pool for sharded packed execution. Workers are spawned
/// once and reused across runs, and each worker owns a scratch buffer that
/// the chunk kernel reuses, so the steady-state hot path performs no
/// allocation and no thread creation.
///
/// The pool is a plain task runner: `for_each` shards an index space across
/// the workers (this is what `run_waves_parallel` uses, one task per
/// 64-wave chunk), `submit` enqueues a single asynchronous task (what
/// `parallel_wave_stream` uses as chunks fill). Both are safe to call from
/// multiple threads concurrently — independent `for_each` calls and streams
/// can interleave on one executor.
///
/// Precondition: never call `for_each` (or anything that blocks on the pool,
/// e.g. `run_waves_parallel`, `batch_session::run`, or a stream's `finish`)
/// from inside a task running on the same executor — the blocked worker is
/// the one that would have to run the nested shards, which deadlocks.
class parallel_executor {
public:
  /// `num_threads == 0` resolves to the hardware concurrency (at least 1).
  explicit parallel_executor(unsigned num_threads = 0);
  ~parallel_executor();

  parallel_executor(const parallel_executor&) = delete;
  parallel_executor& operator=(const parallel_executor&) = delete;

  [[nodiscard]] unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs `fn(task, worker)` for every task in [0, num_tasks). Tasks are
  /// pulled dynamically by the workers (load-balanced, no fixed striping);
  /// `worker` is the stable index of the executing worker in
  /// [0, num_threads()). Blocks until every task finished; the first
  /// exception thrown by `fn` is rethrown here after the remaining tasks
  /// have been cancelled.
  void for_each(std::size_t num_tasks, const std::function<void(std::size_t, unsigned)>& fn);

  /// Enqueues one asynchronous task; returns immediately. The task must not
  /// throw — route errors through state the submitter owns (see
  /// parallel_wave_stream). Completion is the submitter's business to track.
  void submit(std::function<void(unsigned)> task);

  /// Reusable per-worker scratch for the packed chunk kernel. Only the
  /// worker with index `worker` may touch it while tasks are running.
  [[nodiscard]] std::vector<std::uint64_t>& scratch(unsigned worker) {
    return scratch_[worker];
  }

private:
  void worker_loop(unsigned worker);

  std::vector<std::vector<std::uint64_t>> scratch_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<std::function<void(unsigned)>> queue_;
  bool stop_{false};
  std::vector<std::thread> workers_;  // last member: joins before the rest dies
};

/// Sharded packed execution: identical contract and bit-identical result
/// words to `run_waves_packed`, with the batch distributed across the
/// executor's workers in multi-chunk blocks. The block size adapts to the
/// batch: up to compiled_netlist::max_block_chunks chunks per task on big
/// batches (full multi-word kernel width, amortized dispatch), shrinking
/// toward one chunk per task when the batch is too small to feed every
/// worker at full width. Blocks are independent (wave coherence makes
/// every chunk a pure function of its inputs); each task evaluates a
/// chunk slice of the batch's plane-major view (no copy — a slice is the
/// same planes at an offset base) and writes a disjoint chunk range of
/// every result plane, so assembly is deterministic regardless of
/// completion order — and identical at every block size.
packed_wave_result run_waves_parallel(const compiled_netlist& net, const wave_batch& waves,
                                      unsigned phases, parallel_executor& executor);

/// Streaming front-end over the sharded engine: like `wave_stream`, but a
/// multi-chunk block (`block_waves` waves) is dispatched to the pool the
/// moment it fills, so evaluation overlaps with wave arrival and with other
/// streams sharing the executor, and each pool task runs the multi-word
/// kernel at full width. Each block evaluates into its own plane-major
/// buffer; finish() splices the per-block planes into the result's
/// full-width planes in push order — bit-identical to the single-threaded
/// packed path.
///
/// push/finish must be called from one thread (the stream owner); the
/// executor may be shared with any number of other streams and sessions.
class parallel_wave_stream {
public:
  /// Waves per dispatched block: one full pass of the multi-word kernel.
  static constexpr std::size_t block_waves = 64 * compiled_netlist::max_block_chunks;
  /// The compiled netlist and the executor must outlive the stream. Throws
  /// std::invalid_argument when the netlist is not wave-coherent under
  /// `phases` or `phases == 0`.
  parallel_wave_stream(const compiled_netlist& net, unsigned phases,
                       parallel_executor& executor);
  ~parallel_wave_stream();

  parallel_wave_stream(const parallel_wave_stream&) = delete;
  parallel_wave_stream& operator=(const parallel_wave_stream&) = delete;

  /// Enqueues one wave; dispatches a block to the workers once
  /// `block_waves` are pending.
  void push(const std::vector<bool>& wave);

  [[nodiscard]] std::size_t waves_pushed() const { return pushed_; }
  /// Waves whose block a worker has already evaluated. Trails
  /// `waves_pushed()` while blocks are in flight.
  [[nodiscard]] std::size_t waves_completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

  /// Dispatches any pending partial block, waits for all in-flight blocks,
  /// and returns the accumulated result for every pushed wave. The stream
  /// is reusable afterwards (resets).
  packed_wave_result finish();

private:
  struct block_job {
    wave_batch inputs;
    std::vector<std::uint64_t> out;
    block_job(wave_batch batch, std::size_t num_pos)
        : inputs{std::move(batch)}, out(inputs.num_chunks() * num_pos) {}
  };

  void dispatch_block();
  void wait_in_flight();

  const compiled_netlist& net_;
  unsigned phases_;
  parallel_executor& executor_;
  wave_batch pending_;
  std::deque<block_job> jobs_;  // deque: stable addresses for in-flight jobs
  std::size_t pushed_{0};
  std::atomic<std::size_t> completed_{0};
  mutable std::mutex mutex_;
  std::condition_variable all_done_;
  std::size_t in_flight_{0};
};

/// Order-sensitive structural fingerprint of a network: FNV-1a over node
/// kinds, fan-in references, PI positions, and output drivers. Networks
/// that compile to different programs fingerprint differently (modulo
/// 64-bit collisions); names are deliberately excluded — they do not affect
/// execution.
[[nodiscard]] std::uint64_t network_fingerprint(const mig_network& net);

/// Bounds for a session's compiled-netlist cache. A value of 0 leaves the
/// corresponding dimension unbounded (the PR-2 behavior: cache everything
/// forever). `max_bytes` is charged per entry via
/// `compiled_netlist::memory_bytes()` and is a hard ceiling: the cache
/// evicts until it is back under the bound, even when that means the entry
/// that was inserted a moment ago — requests already holding the program
/// keep it alive through their shared_ptr, so eviction never invalidates an
/// in-flight run.
struct cache_limits {
  std::size_t max_entries{0};
  std::size_t max_bytes{0};
};

/// Point-in-time counters of a session's compiled-netlist cache. `hits` /
/// `misses` / `evictions` are monotonic over the session's lifetime;
/// `entries` / `bytes` / `comb_ops` / `comb_slots` describe what is
/// resident right now (`bytes` never exceeds `cache_limits::max_bytes` when
/// that bound is set). The op/slot totals are summed over the resident
/// compiled programs — with the optimizer on (compile_options::opt_level),
/// they are what the session actually executes and keeps hot, not what the
/// raw networks dictate.
struct session_stats {
  std::uint64_t hits{0};
  std::uint64_t misses{0};
  std::uint64_t evictions{0};
  std::size_t entries{0};
  std::size_t bytes{0};
  std::size_t comb_ops{0};
  std::size_t comb_slots{0};
};

/// Serving-style compiled-netlist cache: the first batch against a network
/// balances it (`insert_buffers` with the session options) and lowers it
/// once; every later batch against a structurally identical network reuses
/// the cached program. Keyed by (network fingerprint, buffer strategy,
/// phases), so one session can interleave requests against many circuits
/// without re-lowering any of them.
///
/// Long-lived sessions can bound the cache with `cache_limits`: entries are
/// evicted least-recently-used first whenever the entry or byte bound is
/// exceeded. Programs are refcounted (`shared_ptr`), so evicting an entry
/// whose program a request still executes only drops the cache's reference;
/// the run completes on its own copy and the memory is released when the
/// last request finishes.
///
/// Thread-safe: concurrent `run`/`compile` calls may share the session and
/// its executor. Two threads missing on the same key may both compile; one
/// result wins the cache, both runs are correct.
///
/// The lowered program itself does not depend on `phases` (coherence is
/// checked at run time), so a circuit served at several phase counts keeps
/// one entry per count — a little redundant memory in exchange for a key
/// that stays valid if lowering ever becomes phase-specialized.
class batch_session {
public:
  /// `compile` controls the post-lowering optimizer every cached program is
  /// built with (see engine/optimizer.hpp); results are bit-identical at
  /// every level, so serving sessions can default to the highest one.
  explicit batch_session(parallel_executor& executor,
                         buffer_insertion_options options = {}, cache_limits limits = {},
                         compile_options compile = {});

  /// Balances + compiles `net` on first sight (cache miss), then evaluates
  /// the batch on the executor. The returned words are bit-identical to
  /// `run_waves_packed` on the balanced network.
  packed_wave_result run(const mig_network& net, const wave_batch& waves, unsigned phases);

  /// The cache lookup half of `run`: returns the (balanced + lowered)
  /// program for `net`, compiling on a miss and touching the LRU order on a
  /// hit. The returned reference keeps the program alive independently of
  /// any later eviction.
  [[nodiscard]] std::shared_ptr<const compiled_netlist> compile(const mig_network& net,
                                                                unsigned phases);

  [[nodiscard]] session_stats stats() const;
  [[nodiscard]] std::size_t cached_netlists() const;
  [[nodiscard]] std::uint64_t cache_hits() const;
  [[nodiscard]] std::uint64_t cache_misses() const;

private:
  struct cache_key {
    std::uint64_t fingerprint;
    buffer_strategy strategy;
    unsigned phases;
    friend bool operator==(const cache_key&, const cache_key&) = default;
  };
  struct cache_key_hash {
    std::size_t operator()(const cache_key& k) const noexcept;
  };
  struct cache_entry {
    std::shared_ptr<const compiled_netlist> program;
    std::size_t bytes{0};
    std::list<cache_key>::iterator lru_pos;
  };

  /// Pops LRU entries until both bounds hold again. Caller holds mutex_.
  void evict_to_limits();

  parallel_executor& executor_;
  buffer_insertion_options options_;
  cache_limits limits_;
  compile_options compile_options_;
  mutable std::mutex mutex_;
  std::list<cache_key> lru_;  // front = most recently used
  std::unordered_map<cache_key, cache_entry, cache_key_hash> cache_;
  std::size_t bytes_{0};
  std::uint64_t hits_{0};
  std::uint64_t misses_{0};
  std::uint64_t evictions_{0};
};

}  // namespace wavemig::engine
