#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/engine/compiled_netlist.hpp"
#include "wavemig/engine/wave_engine.hpp"
#include "wavemig/tech_scenario.hpp"

namespace wavemig::engine {

namespace detail {
struct group_state;
}  // namespace detail

/// Completion token of `parallel_executor::submit_group`: a handle on a
/// sharded run that was enqueued without blocking the caller. The caller can
/// poll (`done`), park on it (`wait`), or — the non-blocking path the
/// serving dispatcher uses — attach a completion callback at submit time and
/// never wait at all. Default-constructed tokens are empty (`valid() ==
/// false`); copies share the same underlying run.
class task_group {
public:
  task_group() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  /// True once every task of the group finished (or was cancelled by an
  /// earlier task's exception).
  [[nodiscard]] bool done() const;
  /// Blocks until the group completed. Must not be called from a task
  /// running on the same executor (the parked worker may be the one the
  /// group is waiting for). Does not rethrow — check `error()`.
  void wait() const;
  /// The first exception thrown by a task, or null. Stable once `done()`.
  [[nodiscard]] std::exception_ptr error() const;

private:
  friend class parallel_executor;
  explicit task_group(std::shared_ptr<detail::group_state> state)
      : state_{std::move(state)} {}
  std::shared_ptr<detail::group_state> state_;
};

/// Fired exactly once when a submitted group completes, on the worker that
/// finished its last task; `error` is the group's first exception (null on
/// success). Keep it light — it occupies a worker lane — and never block on
/// the executor from inside it.
using group_callback = std::function<void(std::exception_ptr)>;

/// Persistent worker pool for sharded packed execution. Workers are spawned
/// once and reused across runs, and each worker owns a scratch buffer that
/// the chunk kernel reuses, so the steady-state hot path performs no
/// allocation and no thread creation.
///
/// Scheduling is work-stealing over per-worker deques: every worker owns a
/// deque of tasks and pushes/pops it under its own (uncontended) lock; a
/// sharded run pre-partitions its plane-block tasks contiguously across the
/// worker deques, so each worker walks its own ascending chunk range
/// (prefetch-friendly) and only when its deque runs dry does it steal whole
/// plane-blocks from the *back* of a victim's deque — the blocks farthest
/// from where the victim is currently working. There is no single global
/// queue mutex on the hot path: concurrent streams, sessions, and sharded
/// runs contend only when they actually steal from each other.
///
/// Three entry points:
/// * `for_each` shards an index space and blocks until done (what
///   `run_waves_parallel` uses).
/// * `submit_group` is its non-blocking sibling: same sharding, returns a
///   `task_group` completion token immediately — callers await (or attach a
///   completion callback to) a sharded run without parking a thread inside
///   the pool. This is what the serving dispatcher runs requests on.
/// * `submit` enqueues a single asynchronous task (what
///   `parallel_wave_stream` uses as blocks fill). Called from a worker of
///   this executor, it lands on that worker's own deque.
///
/// All are safe to call from multiple threads concurrently.
///
/// Precondition: never *block on* the pool (`for_each`, `task_group::wait`,
/// `run_waves_parallel`, `batch_session::run`, a stream's `finish`) from
/// inside a task running on the same executor — the blocked worker is the
/// one that would have to run the awaited tasks, which deadlocks.
/// Fire-and-forget calls (`submit`, `submit_group` without waiting) are fine
/// from inside tasks.
class parallel_executor {
public:
  /// `num_threads == 0` resolves to the hardware concurrency (at least 1).
  explicit parallel_executor(unsigned num_threads = 0);
  ~parallel_executor();

  parallel_executor(const parallel_executor&) = delete;
  parallel_executor& operator=(const parallel_executor&) = delete;

  [[nodiscard]] unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs `fn(task, worker)` for every task in [0, num_tasks). Tasks are
  /// pre-partitioned contiguously across the workers and rebalanced by
  /// stealing; `worker` is the stable index of the executing worker in
  /// [0, num_threads()). Blocks until every task finished; the first
  /// exception thrown by `fn` is rethrown here after the remaining tasks
  /// have been cancelled.
  void for_each(std::size_t num_tasks, const std::function<void(std::size_t, unsigned)>& fn);

  /// Non-blocking sibling of `for_each`: enqueues the sharded run and
  /// returns its completion token immediately. The executor owns a copy of
  /// `fn` until the group completes. `on_complete` (optional) fires exactly
  /// once, on the worker that finishes the group's last task, with the
  /// group's first error (null on success); a group of zero tasks completes
  /// — and fires `on_complete` — before `submit_group` returns, on the
  /// calling thread. An exception from a task cancels the group's remaining
  /// tasks, exactly like `for_each`.
  task_group submit_group(std::size_t num_tasks, std::function<void(std::size_t, unsigned)> fn,
                          group_callback on_complete = {});

  /// Enqueues one asynchronous task; returns immediately. The task must not
  /// throw — route errors through state the submitter owns (see
  /// parallel_wave_stream). Completion is the submitter's business to track.
  void submit(std::function<void(unsigned)> task);

  /// Reusable per-worker scratch for the packed chunk kernel. Only the
  /// worker with index `worker` may touch it while tasks are running.
  [[nodiscard]] std::vector<std::uint64_t>& scratch(unsigned worker) {
    return scratch_[worker];
  }

private:
  /// One queued unit of work: either a plain submitted task (`fn`) or task
  /// `index` of a sharded group. Group items carry a shared reference to
  /// the group, so an item survives in a deque (or in a thief's hands) past
  /// any other item's completion.
  struct task_item {
    std::function<void(unsigned)> fn;
    std::shared_ptr<detail::group_state> group;
    std::size_t index{0};
  };

  /// Per-worker deque. The owner pushes/pops the front, thieves take from
  /// the back; the mutex is uncontended unless someone is actually
  /// stealing. Padding out to a cache line would be a further refinement;
  /// the mutex already keeps false sharing off the hot path.
  struct work_deque {
    std::mutex mutex;
    std::deque<task_item> items;
  };

  task_group submit_group_impl(std::size_t num_tasks,
                               std::function<void(std::size_t, unsigned)> fn,
                               group_callback on_complete);
  void worker_loop(unsigned worker);
  /// Pops the next item for `worker` (own deque first, then steals). False
  /// when the executor is stopping and every deque is drained.
  bool next_item(unsigned worker, task_item& item);
  void run_item(task_item& item, unsigned worker);
  void push_item(unsigned deque_index, task_item item);
  /// Wakes sleepers after `count` new items were made visible.
  void notify_new_work(std::size_t count);

  std::vector<std::vector<std::uint64_t>> scratch_;
  std::vector<std::unique_ptr<work_deque>> deques_;
  std::atomic<std::size_t> pending_{0};   ///< queued items across all deques
  std::atomic<unsigned> sleepers_{0};     ///< workers parked on sleep_cv_
  std::atomic<unsigned> rr_next_{0};      ///< round-robin cursor for external pushes
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  bool stop_{false};                      ///< guarded by sleep_mutex_
  std::vector<std::thread> workers_;  // last member: joins before the rest dies
};

/// Sharded packed execution: identical contract and bit-identical result
/// words to `run_waves_packed`, with the batch distributed across the
/// executor's workers in multi-chunk blocks
/// (compiled_netlist::shard_block_chunks picks the block size: full
/// multi-word kernel width on big batches, shrinking toward one chunk per
/// task when the batch is too small to feed every worker at full width).
/// Blocks are independent (wave coherence makes every chunk a pure function
/// of its inputs); each task evaluates a chunk slice of the batch's
/// plane-major view (no copy — a slice is the same planes at an offset
/// base) and writes a disjoint chunk range of every result plane, so
/// assembly is deterministic regardless of completion order — and identical
/// at every block size.
packed_wave_result run_waves_parallel(const compiled_netlist& net, const wave_batch& waves,
                                      unsigned phases, parallel_executor& executor);

/// Streaming front-end over the sharded engine: like `wave_stream`, but a
/// multi-chunk block (`block_waves` waves) is dispatched to the pool the
/// moment it fills, so evaluation overlaps with wave arrival and with other
/// streams sharing the executor, and each pool task runs the multi-word
/// kernel at full width.
///
/// Without a hint, each block evaluates into its own plane-major buffer and
/// finish() splices the per-block planes into the result's full-width
/// planes in push order. When `expected_waves` fixes the output stride,
/// blocks evaluate **directly into the final full-width result planes** (at
/// their chunk offset) and finish() hands the buffer over without any
/// splice copy; a hint the stream outgrows falls back gracefully (the
/// buffer re-strides between blocks), and an overshot hint costs one
/// per-plane compaction at finish(). Either way the result words are
/// bit-identical to the single-threaded packed path.
///
/// push/finish must be called from one thread (the stream owner); the
/// executor may be shared with any number of other streams and sessions.
class parallel_wave_stream {
public:
  /// Waves per dispatched block: one full pass of the multi-word kernel.
  static constexpr std::size_t block_waves = 64 * compiled_netlist::max_block_chunks;
  /// The compiled netlist and the executor must outlive the stream.
  /// `expected_waves != 0` enables the direct-write path (see class docs).
  /// Throws std::invalid_argument when the netlist is not wave-coherent
  /// under `phases` or `phases == 0`.
  parallel_wave_stream(const compiled_netlist& net, unsigned phases,
                       parallel_executor& executor, std::size_t expected_waves = 0);
  ~parallel_wave_stream();

  parallel_wave_stream(const parallel_wave_stream&) = delete;
  parallel_wave_stream& operator=(const parallel_wave_stream&) = delete;

  /// Enqueues one wave; dispatches a block to the workers once
  /// `block_waves` are pending.
  void push(const std::vector<bool>& wave);

  [[nodiscard]] std::size_t waves_pushed() const { return pushed_; }
  /// Waves whose block a worker has already evaluated. Trails
  /// `waves_pushed()` while blocks are in flight.
  [[nodiscard]] std::size_t waves_completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

  /// Dispatches any pending partial block, waits for all in-flight blocks,
  /// and returns the accumulated result for every pushed wave. The stream
  /// is reusable afterwards (resets).
  packed_wave_result finish();

private:
  struct block_job {
    wave_batch inputs;
    std::vector<std::uint64_t> out;  ///< unused (empty) on the direct-write path
    explicit block_job(wave_batch batch) : inputs{std::move(batch)} {}
  };

  void dispatch_block();
  void wait_in_flight();
  /// Direct-write path: grows `direct_words_` so chunks [0, needed) fit.
  /// Re-striding moves every plane, so it must not race in-flight jobs —
  /// the caller waits them out first.
  void ensure_direct_capacity(std::size_t needed_chunks);

  const compiled_netlist& net_;
  unsigned phases_;
  parallel_executor& executor_;
  std::size_t expected_waves_;
  wave_batch pending_;
  std::deque<block_job> jobs_;  // deque: stable addresses for in-flight jobs
  /// Direct-write result storage (expected_waves_ != 0): num_pos planes of
  /// direct_stride_ words each; dispatched blocks write their chunk range
  /// in place.
  std::vector<std::uint64_t> direct_words_;
  std::size_t direct_stride_{0};
  std::size_t chunks_dispatched_{0};
  std::size_t pushed_{0};
  std::atomic<std::size_t> completed_{0};
  mutable std::mutex mutex_;
  std::condition_variable all_done_;
  std::size_t in_flight_{0};
};

/// Order-sensitive structural fingerprint of a network: FNV-1a over node
/// kinds, fan-in references, PI positions, and output drivers. Networks
/// that compile to different programs fingerprint differently (modulo
/// 64-bit collisions); names are deliberately excluded — they do not affect
/// execution.
[[nodiscard]] std::uint64_t network_fingerprint(const mig_network& net);

/// Bounds for a session's compiled-netlist cache. A value of 0 leaves the
/// corresponding dimension unbounded (the PR-2 behavior: cache everything
/// forever). `max_bytes` is charged per entry via
/// `compiled_netlist::memory_bytes()` and is a hard ceiling: the cache
/// evicts until it is back under the bound, even when that means the entry
/// that was inserted a moment ago — requests already holding the program
/// keep it alive through their shared_ptr, so eviction never invalidates an
/// in-flight run.
struct cache_limits {
  std::size_t max_entries{0};
  std::size_t max_bytes{0};
};

/// Point-in-time counters of a session's compiled-netlist cache. `hits` /
/// `misses` / `evictions` are monotonic over the session's lifetime;
/// `entries` / `bytes` / `comb_ops` / `comb_slots` describe what is
/// resident right now (`bytes` never exceeds `cache_limits::max_bytes` when
/// that bound is set). The op/slot totals are summed over the resident
/// compiled programs — with the optimizer on (compile_options::opt_level),
/// they are what the session actually executes and keeps hot, not what the
/// raw networks dictate. `comb_peak_live` and `sched_op_moves` sum the
/// post-schedule optimizer_stats of the resident programs (measured peak
/// liveness and ops moved by the scheduling pass), so a
/// compile_options::schedule_level win is observable at the session level
/// without instrumenting wall clock.
struct session_stats {
  std::uint64_t hits{0};
  std::uint64_t misses{0};
  std::uint64_t evictions{0};
  std::size_t entries{0};
  std::size_t bytes{0};
  std::size_t comb_ops{0};
  std::size_t comb_slots{0};
  std::size_t comb_peak_live{0};
  std::size_t sched_op_moves{0};
};

/// Serving-style compiled-netlist cache: the first batch against a network
/// balances it (`insert_buffers` with the session options) and lowers it
/// once; every later batch against a structurally identical network reuses
/// the cached program. Keyed by (network fingerprint, buffer strategy,
/// phases), so one session can interleave requests against many circuits
/// without re-lowering any of them.
///
/// Long-lived sessions can bound the cache with `cache_limits`: entries are
/// evicted least-recently-used first whenever the entry or byte bound is
/// exceeded. Programs are refcounted (`shared_ptr`), so evicting an entry
/// whose program a request still executes only drops the cache's reference;
/// the run completes on its own copy and the memory is released when the
/// last request finishes.
///
/// Thread-safe: concurrent `run`/`compile` calls may share the session and
/// its executor. Two threads missing on the same key may both compile; one
/// result wins the cache, both runs are correct.
///
/// The lowered program itself does not depend on `phases` (coherence is
/// checked at run time), so a circuit served at several phase counts keeps
/// one entry per count — a little redundant memory in exchange for a key
/// that stays valid if lowering ever becomes phase-specialized.
class batch_session {
public:
  /// `compile` controls the post-lowering optimizer every cached program is
  /// built with (see engine/optimizer.hpp); results are bit-identical at
  /// every level, so serving sessions can default to the highest one.
  explicit batch_session(parallel_executor& executor,
                         buffer_insertion_options options = {}, cache_limits limits = {},
                         compile_options compile = {});

  /// Balances + compiles `net` on first sight (cache miss), then evaluates
  /// the batch on the executor. The returned words are bit-identical to
  /// `run_waves_packed` on the balanced network.
  packed_wave_result run(const mig_network& net, const wave_batch& waves, unsigned phases);

  /// Scenario-parameterized run: the program is prepared by the full
  /// scenario pipeline (fan-out restriction, loss-budget repeaters, then
  /// balancing) and cached under the scenario's fingerprint, so one session
  /// serves several scenarios of the same netlist as distinct programs.
  packed_wave_result run(const mig_network& net, const wave_batch& waves, unsigned phases,
                         const tech_scenario& scenario);

  /// The cache lookup half of `run`: returns the (balanced + lowered)
  /// program for `net`, compiling on a miss and touching the LRU order on a
  /// hit. The returned reference keeps the program alive independently of
  /// any later eviction.
  [[nodiscard]] std::shared_ptr<const compiled_netlist> compile(const mig_network& net,
                                                                unsigned phases);

  /// Fast path for callers that already fingerprinted the network (the
  /// serving dispatcher memoizes fingerprints per shared network): a hot
  /// cache hit is then one hash-map lookup plus an LRU splice, with no
  /// O(network) re-hash. `fingerprint` must equal
  /// `network_fingerprint(net)`; passing anything else silently serves the
  /// wrong program.
  [[nodiscard]] std::shared_ptr<const compiled_netlist> compile(
      const mig_network& net, unsigned phases, std::uint64_t fingerprint);

  /// Scenario-tagged compile: on a miss the network is prepared by the full
  /// scenario pipeline (wave_pipeline with this session's strategy/schedule
  /// and the scenario's fan-out limit and loss budget) and lowered with
  /// compile_options carrying the scenario fingerprint and FDM lane count.
  /// The cache key gains the scenario fingerprint, so the same netlist
  /// compiled under two scenarios — or with and without one — occupies
  /// distinct entries serving distinct programs.
  [[nodiscard]] std::shared_ptr<const compiled_netlist> compile(const mig_network& net,
                                                                unsigned phases,
                                                                const tech_scenario& scenario);

  /// Fingerprint fast path of the scenario-tagged compile (see above);
  /// `fingerprint` must equal `network_fingerprint(net)`.
  [[nodiscard]] std::shared_ptr<const compiled_netlist> compile(const mig_network& net,
                                                                unsigned phases,
                                                                std::uint64_t fingerprint,
                                                                const tech_scenario& scenario);

  /// Per-request compile-options override: the program is built with `opts`
  /// instead of this session's defaults, and the cache key carries
  /// `options_fingerprint(opts)` — so the same netlist compiled at two
  /// schedule or opt levels occupies two distinct entries and can never
  /// cross-serve (every key, including the default-options paths above,
  /// carries its options fingerprint).
  [[nodiscard]] std::shared_ptr<const compiled_netlist> compile(const mig_network& net,
                                                                unsigned phases,
                                                                std::uint64_t fingerprint,
                                                                const compile_options& opts);

  /// Scenario-tagged compile with a per-request compile-options override;
  /// the scenario fingerprint and FDM lane count are applied on top of
  /// `opts` exactly as the default path applies them to the session
  /// options.
  [[nodiscard]] std::shared_ptr<const compiled_netlist> compile(const mig_network& net,
                                                                unsigned phases,
                                                                std::uint64_t fingerprint,
                                                                const tech_scenario& scenario,
                                                                const compile_options& opts);

  [[nodiscard]] session_stats stats() const;
  [[nodiscard]] std::size_t cached_netlists() const;
  [[nodiscard]] std::uint64_t cache_hits() const;
  [[nodiscard]] std::uint64_t cache_misses() const;

private:
  struct cache_key {
    std::uint64_t fingerprint;
    buffer_strategy strategy;
    unsigned phases;
    /// tech_scenario::fingerprint() of the request's scenario; 0 = untagged
    /// (the scenario-less compile path — tech_scenario fingerprints are
    /// never 0).
    std::uint64_t scenario{0};
    /// options_fingerprint() of the full effective compile_options the
    /// program was built with (opt level, schedule level, prefetch toggle,
    /// scenario tag, FDM lanes). Two compiles of the same network under
    /// different options are different executable programs and must never
    /// share an entry.
    std::uint64_t options{0};
    friend bool operator==(const cache_key&, const cache_key&) = default;
  };
  struct cache_key_hash {
    std::size_t operator()(const cache_key& k) const noexcept;
  };
  struct cache_entry {
    std::shared_ptr<const compiled_netlist> program;
    std::size_t bytes{0};
    std::list<cache_key>::iterator lru_pos;
  };

  /// Pops LRU entries until both bounds hold again. Caller holds mutex_.
  void evict_to_limits();
  /// Cache-hit half of compile: touches the LRU order and returns the
  /// program, or null on a miss. Takes mutex_.
  [[nodiscard]] std::shared_ptr<const compiled_netlist> lookup(const cache_key& key);
  /// Miss half: inserts `fresh` (first insert wins on a racing miss),
  /// evicts to limits, and returns the surviving program. Takes mutex_.
  [[nodiscard]] std::shared_ptr<const compiled_netlist> insert(
      const cache_key& key, std::shared_ptr<const compiled_netlist> fresh);

  parallel_executor& executor_;
  buffer_insertion_options options_;
  cache_limits limits_;
  compile_options compile_options_;
  mutable std::mutex mutex_;
  std::list<cache_key> lru_;  // front = most recently used
  std::unordered_map<cache_key, cache_entry, cache_key_hash> cache_;
  std::size_t bytes_{0};
  std::uint64_t hits_{0};
  std::uint64_t misses_{0};
  std::uint64_t evictions_{0};
};

}  // namespace wavemig::engine
