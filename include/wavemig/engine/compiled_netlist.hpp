#pragma once

#include <cstdint>
#include <vector>

#include "wavemig/engine/optimizer.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/mig.hpp"

namespace wavemig::engine {

/// Reference to a value slot with a complement attribute, mirroring the
/// encoding of wavemig::signal but resolved against the dense slot layout of
/// a compiled program: bit 0 is the complement, the remaining bits the slot.
using slot_ref = std::uint32_t;

/// All-ones when the reference carries a complement, zero otherwise — the
/// branch-free form of `ref & 1 ? ~v : v` for 64-bit words.
constexpr std::uint64_t complement_mask(slot_ref ref) {
  return static_cast<std::uint64_t>(0) - static_cast<std::uint64_t>(ref & 1u);
}

/// One-time lowering of a `mig_network` plus a clock schedule into flat
/// structure-of-arrays form. All per-tick decisions of the interpreters —
/// kind dispatch, fan-in chasing through `std::array<signal, 3>`,
/// `vector<bool>` proxies — are resolved at compile time into two programs:
///
/// * a **combinational program** (`comb` arrays): majority gates only, with
///   buffers and fan-out gates folded away by reference forwarding. This is
///   the engine behind `simulate_words`, `simulate_truth_tables` and the
///   packed wave path, where identity components contribute nothing.
/// * a **tick program** (`tick` arrays): every physical component with its
///   scheduled level, preserving the cycle-accurate semantics of
///   `run_waves` — including wave interference on unbalanced netlists.
///
/// A compiled netlist is immutable and can be shared by any number of
/// concurrent evaluations; all mutable state lives in caller-provided
/// scratch vectors.
class compiled_netlist {
public:
  /// Majority operation of the combinational program. Fan-ins are
  /// `slot_ref`s into the combinational slot array.
  struct maj_op {
    std::uint32_t target;
    slot_ref a, b, c;
  };

  enum class tick_kind : std::uint8_t { majority, copy };

  /// Physical component of the tick program. Fan-ins are `slot_ref`s into
  /// the per-node state array (slot == node index).
  struct tick_op {
    std::uint32_t target;
    slot_ref a, b, c;        ///< copy ops use only `a`
    std::uint32_t level;     ///< scheduled level (>= 1 for components)
    tick_kind kind;
  };

  /// Compiles against the network's ASAP levels.
  explicit compiled_netlist(const mig_network& net, compile_options options = {});

  /// Compiles against an explicit clock schedule (required for
  /// tolerance-balanced netlists; see buffer_insertion_options::tolerance).
  /// Throws std::invalid_argument if the schedule does not match the network.
  compiled_netlist(const mig_network& net, const level_map& schedule,
                   compile_options options = {});

  /// Compiles only the combinational program — no level computation, no
  /// tick program, no coherence metadata (wave_coherent is always false).
  /// The cheap lowering for purely combinational consumers
  /// (simulate_words & friends).
  static compiled_netlist comb_only(const mig_network& net, compile_options options = {});

  /// @name Interface shape
  /// @{
  /// Resident bytes of the lowered programs (ops, references, PO metadata
  /// plus the object header) — what a bounded compiled-netlist cache charges
  /// an entry against its byte budget. Deterministic for a given network:
  /// every vector is sized exactly during lowering and never reallocates.
  [[nodiscard]] std::size_t memory_bytes() const;
  [[nodiscard]] std::size_t num_pis() const { return num_pis_; }
  [[nodiscard]] std::size_t num_pos() const { return num_pos_; }
  /// Majority operations in the combinational program (after optimization).
  [[nodiscard]] std::size_t num_comb_ops() const { return comb_ops_.size(); }
  /// The combinational program itself, in execution order. Exposed so
  /// schedulers and tests can audit op order and operand liveness.
  [[nodiscard]] const std::vector<maj_op>& comb_ops() const { return comb_ops_; }
  /// Value slots of the combinational program: 1 (constant) + PIs + gate
  /// slots. This is the scratch working set of the packed kernel, per word
  /// of kernel width; slot recycling (opt level >= 2) shrinks it to peak
  /// liveness.
  [[nodiscard]] std::size_t comb_slot_count() const { return comb_slot_count_; }
  /// The options this program was compiled with.
  [[nodiscard]] compile_options options() const { return options_; }
  /// What the optimizer did (all zeros when opt level and schedule level
  /// are both 0, where `*_before` still describes the raw lowering).
  [[nodiscard]] const optimizer_stats& opt_stats() const { return opt_stats_; }
  /// Physical components in the tick program.
  [[nodiscard]] std::size_t num_tick_ops() const { return tick_ops_.size(); }
  /// Scheduled depth (max level over all primary-output drivers).
  [[nodiscard]] std::uint32_t depth() const { return depth_; }
  /// @}

  /// @name Coherence metadata
  ///
  /// Span of a data edge = level(consumer) - level(producer), constants
  /// excluded. Under a P-phase clock every wave stays coherent iff every
  /// edge span lies in [1, P] (DESIGN.md §2.2); `wave_coherent` is that
  /// predicate. Packed execution requires it; the tick program does not.
  /// @{
  [[nodiscard]] std::uint32_t min_edge_span() const { return min_edge_span_; }
  [[nodiscard]] std::uint32_t max_edge_span() const { return max_edge_span_; }
  [[nodiscard]] bool wave_coherent(unsigned phases) const {
    return min_edge_span_ >= 1 && max_edge_span_ <= phases;
  }
  /// @}

  /// @name Combinational evaluation
  /// @{

  /// Evaluates the combinational program over any word type supporting
  /// `~`, `&` and `|` (e.g. `std::uint64_t`, `truth_table`). `pi_value(i)`
  /// returns the word of PI position i; `zero` is the all-zero word (it
  /// carries the width for `truth_table`). `slots` is reusable scratch;
  /// read results with `po_value`.
  template <typename Word, typename PiFn>
  void eval(PiFn&& pi_value, const Word& zero, std::vector<Word>& slots) const {
    slots.clear();
    slots.resize(comb_slot_count_, zero);
    for (std::uint32_t i = 0; i < num_pis_; ++i) {
      slots[1 + i] = pi_value(i);
    }
    for (const auto& o : comb_ops_) {
      const Word a = read_slot(slots, o.a);
      const Word b = read_slot(slots, o.b);
      const Word c = read_slot(slots, o.c);
      slots[o.target] = (a & b) | (b & c) | (a & c);
    }
  }

  /// Value of primary output `position` after `eval` filled `slots`.
  template <typename Word>
  [[nodiscard]] Word po_value(const std::vector<Word>& slots, std::size_t position) const {
    return read_slot(slots, comb_po_refs_[position]);
  }

  /// Bit-parallel evaluation of 64 input patterns: `pi_words[i]` packs 64
  /// values of PI i, one output word per PO is appended to `po_words`.
  /// `slots` is reusable scratch — the single-word (W=1) form of the packed
  /// kernel.
  void eval_words_into(const std::uint64_t* pi_words, std::uint64_t* po_words,
                       std::vector<std::uint64_t>& slots) const;

  /// Word-blocks the multi-word kernel evaluates per pass: up to 8 chunks
  /// (512 waves) flow through the program together, so each op's three
  /// loads and one store amortize over 8 words — the software analogue of
  /// widening the datapath.
  static constexpr std::size_t max_block_chunks = 8;

  /// Chunks per task when sharding a `num_chunks`-chunk batch across
  /// `num_workers` workers — the partitioning every sharded front-end
  /// (run_waves_parallel, the serving dispatcher's fused pool passes)
  /// agrees on: full kernel width (`max_block_chunks`) on big batches so
  /// dispatch amortizes, shrinking toward one chunk per task when the batch
  /// is too small to feed every worker at full width (at least two tasks
  /// per worker where possible — parallelism beats kernel width when the
  /// batch cannot feed both).
  static constexpr std::size_t shard_block_chunks(std::size_t num_chunks,
                                                  std::size_t num_workers) {
    const std::size_t workers = num_workers == 0 ? 1 : num_workers;
    const std::size_t block = num_chunks / (2 * workers);
    return block == 0 ? 1 : (block > max_block_chunks ? max_block_chunks : block);
  }

  /// Tasks `shard_block_chunks` splits a batch into.
  static constexpr std::size_t shard_block_count(std::size_t num_chunks,
                                                 std::size_t num_workers) {
    const std::size_t block = shard_block_chunks(num_chunks, num_workers);
    return (num_chunks + block - 1) / block;
  }

  /// The native multi-word entry: evaluates `num_chunks` consecutive
  /// 64-wave chunks in word-blocks of up to `max_block_chunks`, with
  /// **plane-major** I/O — PI i's chunk words contiguous at
  /// `pi_planes + i * pi_stride`, PO p's at `po_planes + p * po_stride`
  /// (the layout of `wave_batch::view()` / `packed_wave_result`). Each
  /// block's PI words load into the slot-major kernel blocks with unit
  /// stride (one contiguous W-word copy per PI) and PO words store the same
  /// way — no strided gather or scatter anywhere. Uses unrolled portable
  /// kernels for every width plus the runtime-dispatched AVX2 / NEON paths
  /// when built in (WAVEMIG_ENABLE_AVX2 / WAVEMIG_ENABLE_NEON). `slots` is
  /// reusable scratch; results are bit-identical to `eval_words_into` per
  /// chunk, modulo layout.
  void eval_planes_block(const std::uint64_t* pi_planes, std::size_t pi_stride,
                         std::uint64_t* po_planes, std::size_t po_stride,
                         std::size_t num_chunks, std::vector<std::uint64_t>& slots) const;

  /// Legacy chunk-major adapter of `eval_planes_block`: both sides laid out
  /// `words[c * num_signals + s]` — chunk c's inputs at
  /// `pi_words + c * num_pis()`, its outputs at `po_words + c * num_pos()`.
  /// Pays a strided per-PI gather and per-PO scatter at every block
  /// boundary; kept for consumers still holding chunk-major words.
  /// Bit-identical to calling `eval_words_into` once per chunk.
  void eval_words_block(const std::uint64_t* pi_words, std::uint64_t* po_words,
                        std::size_t num_chunks, std::vector<std::uint64_t>& slots) const;

  /// Convenience wrapper; validates the input width.
  [[nodiscard]] std::vector<std::uint64_t> eval_words(
      const std::vector<std::uint64_t>& pi_words) const;

  /// @}
  /// @name Tick program access (cycle-accurate wave simulation)
  /// @{

  [[nodiscard]] const std::vector<tick_op>& tick_ops() const { return tick_ops_; }
  /// State slots of the tick program (one per network node).
  [[nodiscard]] std::size_t tick_slot_count() const { return tick_slot_count_; }
  /// Node slots of the primary inputs, in PI position order.
  [[nodiscard]] const std::vector<std::uint32_t>& pi_slots() const { return pi_slots_; }
  /// Per PO: reference into the tick state array.
  [[nodiscard]] const std::vector<slot_ref>& po_refs() const { return po_refs_; }
  /// Per PO: scheduled level of the driver (0 for PIs and constants).
  [[nodiscard]] const std::vector<std::uint32_t>& po_levels() const { return po_levels_; }
  /// Per PO: true when driven by the constant node.
  [[nodiscard]] const std::vector<bool>& po_constant() const { return po_constant_; }

  /// @}

  template <typename Word>
  [[nodiscard]] static Word read_slot(const std::vector<Word>& slots, slot_ref ref) {
    const Word& v = slots[ref >> 1];
    return (ref & 1u) != 0 ? ~v : v;
  }

private:
  compiled_netlist() = default;

  /// Lowers the network; a null schedule skips the tick program and
  /// coherence metadata (comb_only mode).
  void lower(const mig_network& net, const level_map* schedule);

  /// Runs the post-lowering optimizer over the combinational program
  /// (optimizer.cpp), reading options_ (opt_level + schedule_level). Fills
  /// opt_stats_; a no-op when both levels are 0.
  void optimize();

  compile_options options_{};
  optimizer_stats opt_stats_{};
  std::uint32_t num_pis_{0};
  std::uint32_t num_pos_{0};
  std::uint32_t depth_{0};
  std::uint32_t min_edge_span_{0};
  std::uint32_t max_edge_span_{0};

  // Combinational program: slot 0 = constant 0, slots 1..num_pis = PIs,
  // then one slot per majority gate.
  std::uint32_t comb_slot_count_{0};
  std::vector<maj_op> comb_ops_;
  std::vector<slot_ref> comb_po_refs_;

  // Tick program: slot == node index.
  std::uint32_t tick_slot_count_{0};
  std::vector<tick_op> tick_ops_;
  std::vector<std::uint32_t> pi_slots_;
  std::vector<slot_ref> po_refs_;
  std::vector<std::uint32_t> po_levels_;
  std::vector<bool> po_constant_;
};

}  // namespace wavemig::engine
