#pragma once

#include <cstddef>
#include <cstdint>

namespace wavemig::engine {

/// Knobs of the compiled-program optimizer that runs after lowering (see
/// compiled_netlist). Every level produces a program that is bit-identical
/// in its primary outputs — the optimizer only touches the combinational
/// program, never the cycle-accurate tick program — so the level is a pure
/// compile-time / memory / throughput trade-off:
///
/// * `0` — raw lowering, exactly the ops the network dictates (one majority
///   op per majority node, buffers folded by reference forwarding).
/// * `1` — constant propagation through majority gates (M(x,x,y)=x,
///   M(x,!x,y)=y, and their constant instances), structural hashing /
///   common-subexpression elimination under majority self-duality
///   (M(!a,!b,!c) = !M(a,b,c)), and dead-op elimination from the
///   primary-output cone. Shrinks the op count.
/// * `2` — level 1 plus liveness-based slot recycling: a linear scan
///   reassigns op target slots from a free list, so the scratch working set
///   shrinks from one slot per gate to the program's peak liveness. This is
///   what keeps the multi-word packed kernel cache-resident on big MIGs.
struct compile_options {
  unsigned opt_level{0};
  /// Technology-scenario tag of the program (tech_scenario::fingerprint());
  /// 0 = untagged. The tag flows into the batch/serving cache key, so one
  /// session caches and serves different scenarios of the same netlist as
  /// distinct programs. It never changes the computed output words.
  std::uint64_t scenario_fingerprint{0};
  /// FDM lanes of the scenario (logical waves per physical conduit slot);
  /// 1 = no multiplexing. Affects clock metadata only: with n lanes a batch
  /// of w waves occupies ceil(w/n) physical slots and n waves ride each
  /// phase, so `ticks` shrinks and `waves_in_flight` grows n-fold while the
  /// computed outputs stay bit-identical.
  unsigned fdm_lanes{1};
};

/// What the optimizer did to one compiled program. `ops_before/after` and
/// `slots_before/after` are the headline numbers (`*_before` describes the
/// raw lowering); the pass counters attribute the op shrinkage.
/// `peak_live_slots` is only filled by the slot-recycling pass (opt level
/// >= 2): the maximum number of gate values simultaneously live, which is
/// exactly `slots_after` minus the fixed constant/PI slots.
struct optimizer_stats {
  std::size_t ops_before{0};
  std::size_t ops_after{0};
  std::size_t slots_before{0};
  std::size_t slots_after{0};
  std::size_t constants_folded{0};
  std::size_t cse_hits{0};
  std::size_t dead_ops_removed{0};
  std::size_t peak_live_slots{0};
};

}  // namespace wavemig::engine
