#pragma once

#include <cstddef>
#include <cstdint>

namespace wavemig::engine {

/// Knobs of the compiled-program optimizer that runs after lowering (see
/// compiled_netlist). Every level produces a program that is bit-identical
/// in its primary outputs — the optimizer only touches the combinational
/// program, never the cycle-accurate tick program — so the level is a pure
/// compile-time / memory / throughput trade-off:
///
/// * `0` — raw lowering, exactly the ops the network dictates (one majority
///   op per majority node, buffers folded by reference forwarding).
/// * `1` — constant propagation through majority gates (M(x,x,y)=x,
///   M(x,!x,y)=y, and their constant instances), structural hashing /
///   common-subexpression elimination under majority self-duality
///   (M(!a,!b,!c) = !M(a,b,c)), and dead-op elimination from the
///   primary-output cone. Shrinks the op count.
/// * `2` — level 1 plus liveness-based slot recycling: a linear scan
///   reassigns op target slots from a free list, so the scratch working set
///   shrinks from one slot per gate to the program's peak liveness. This is
///   what keeps the multi-word packed kernel cache-resident on big MIGs.
struct compile_options {
  unsigned opt_level{0};
  /// Op-scheduling pass over the combinational program, run after
  /// folding/CSE/DCE and *before* slot recycling, so the recycler's linear
  /// scan sees the reordered live ranges and peak liveness (hence
  /// `comb_slots` at opt level >= 2) drops further. Orthogonal to
  /// `opt_level` — scheduling reorders whatever ops survive the enabled
  /// passes, and works even at opt level 0:
  ///
  /// * `0` — keep the lowering order (the pre-PR-10 behavior).
  /// * `1` — liveness-greedy topological list scheduling: among the ready
  ///   ops, always emit one that kills the most operand values (an operand
  ///   dies when this op is its last remaining consumer and no PO reads
  ///   it), so each value is consumed as close to its birth as the
  ///   dependences allow; ties resolve to original program order.
  /// * `2` — level 1 with an ILP-aware tie-break: equal-kill candidates
  ///   prefer an op that does not read a value produced by the last two
  ///   scheduled ops, so the word kernel is not serialized on
  ///   store-to-load forwarding between adjacent program lines.
  ///
  /// Every level is bit-identical in the primary outputs; the reorder is
  /// observable only through throughput, `optimizer_stats` and the cache
  /// key (see options_fingerprint).
  unsigned schedule_level{0};
  /// Technology-scenario tag of the program (tech_scenario::fingerprint());
  /// 0 = untagged. The tag flows into the batch/serving cache key, so one
  /// session caches and serves different scenarios of the same netlist as
  /// distinct programs. It never changes the computed output words.
  std::uint64_t scenario_fingerprint{0};
  /// FDM lanes of the scenario (logical waves per physical conduit slot);
  /// 1 = no multiplexing. Affects clock metadata only: with n lanes a batch
  /// of w waves occupies ceil(w/n) physical slots and n waves ride each
  /// phase, so `ticks` shrinks and `waves_in_flight` grows n-fold while the
  /// computed outputs stay bit-identical.
  unsigned fdm_lanes{1};
  /// Software-pipelined operand prefetch in `eval_planes_block`: the block
  /// evaluator runs the op program in small groups and prefetches the next
  /// group's operand slot words while the current group computes. Off by
  /// default — measured rather than assumed: on slot-recycled, scheduled
  /// programs the working set is cache-resident at every size we bench
  /// (4k–80k gates) and the group-loop overhead makes prefetch a 1–5%
  /// loss, echoing the PR 5 lesson that "obviously good"
  /// micro-optimizations can lose. perf_wave_engine gates the shipped
  /// default against the flipped setting so a future kernel change that
  /// tips the balance shows up in CI. Never changes outputs.
  bool op_prefetch{false};
};

/// Order-insensitive fingerprint of a full `compile_options` value. Joins
/// the batch/serving cache key so two programs compiled from the same
/// network under different options — a different opt or schedule level, a
/// scenario tag, a prefetch toggle — occupy distinct cache entries and can
/// never cross-serve.
[[nodiscard]] constexpr std::uint64_t options_fingerprint(const compile_options& o) {
  std::uint64_t h = 0x243f6a8885a308d3ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
  };
  mix(o.opt_level);
  mix(o.schedule_level);
  mix(o.scenario_fingerprint);
  mix(o.fdm_lanes);
  mix(o.op_prefetch ? 1u : 0u);
  return h;
}

/// What the optimizer did to one compiled program. `ops_before/after` and
/// `slots_before/after` are the headline numbers (`*_before` describes the
/// raw lowering); the pass counters attribute the op shrinkage.
/// `peak_live_slots` is the measured peak liveness of the final program
/// order — the maximum number of gate values simultaneously live — filled
/// whenever the optimizer runs (opt level >= 1 or schedule level >= 1). At
/// opt level >= 2 the slot recycler allocates exactly that many gate slots,
/// so `slots_after` equals `peak_live_slots` plus the fixed constant/PI
/// slots. `scheduled_op_moves` counts the ops the scheduling pass moved to
/// a different program position (0 when scheduling is off or changed
/// nothing), so a schedule-level win is observable directly, not inferred
/// from wall clock.
struct optimizer_stats {
  std::size_t ops_before{0};
  std::size_t ops_after{0};
  std::size_t slots_before{0};
  std::size_t slots_after{0};
  std::size_t constants_folded{0};
  std::size_t cse_hits{0};
  std::size_t dead_ops_removed{0};
  std::size_t peak_live_slots{0};
  std::size_t scheduled_op_moves{0};
};

}  // namespace wavemig::engine
