#pragma once

#include <cstdint>
#include <vector>

#include "wavemig/engine/compiled_netlist.hpp"
#include "wavemig/wave_simulator.hpp"

namespace wavemig::engine {

/// Packed batch of input waves: 64 waves per 64-bit word. Chunk c holds
/// waves [64c, 64c + 64); inside a chunk, `words[c * num_pis + i]` packs the
/// value of PI i for those 64 waves (wave w at bit w % 64).
class wave_batch {
public:
  explicit wave_batch(std::size_t num_pis) : num_pis_{num_pis} {}

  [[nodiscard]] std::size_t num_pis() const { return num_pis_; }
  [[nodiscard]] std::size_t num_waves() const { return num_waves_; }
  [[nodiscard]] std::size_t num_chunks() const { return (num_waves_ + 63) / 64; }
  [[nodiscard]] bool empty() const { return num_waves_ == 0; }

  /// Appends one wave (one bool per PI). Throws std::invalid_argument on a
  /// width mismatch.
  void append(const std::vector<bool>& wave);

  /// Bulk-appends `num_waves` already packed waves, so producers that hold
  /// packed words (a previous result, a wire format, another batch) skip
  /// the per-bool packing entirely. `words` uses this class's chunk-major
  /// layout: ceil(num_waves / 64) chunks of `num_pis` words each, wave w at
  /// bit w % 64 of chunk w / 64. Bits above `num_waves` in the last chunk
  /// are ignored. When the batch holds a multiple of 64 waves the copy is
  /// word-aligned; otherwise each word is spliced with two shifts — never
  /// bit by bit.
  void append_words(const std::uint64_t* words, std::size_t num_waves);

  /// Drops all waves but keeps the word storage for reuse (the allocation
  /// amortizer of wave_stream's flush path).
  void clear() {
    num_waves_ = 0;
    words_.clear();
  }

  /// Pre-allocates storage for `num_waves` waves.
  void reserve(std::size_t num_waves) { words_.reserve(((num_waves + 63) / 64) * num_pis_); }

  [[nodiscard]] bool input(std::size_t wave, std::size_t pi) const {
    const std::uint64_t word = words_[(wave / 64) * num_pis_ + pi];
    return ((word >> (wave % 64)) & 1u) != 0;
  }

  /// The `num_pis` packed words of chunk `chunk`.
  [[nodiscard]] const std::uint64_t* chunk_words(std::size_t chunk) const {
    return words_.data() + chunk * num_pis_;
  }

  static wave_batch from_waves(const std::vector<std::vector<bool>>& waves, std::size_t num_pis);

private:
  std::size_t num_pis_;
  std::size_t num_waves_{0};
  std::vector<std::uint64_t> words_;
};

/// Result of a packed wave run: 64 waves per word, chunk-major like
/// wave_batch (`words[c * num_pos + p]` packs PO p of chunk c). Clocking
/// metadata matches what the cycle-accurate simulator reports for the same
/// run.
struct packed_wave_result {
  std::size_t num_pos{0};
  std::size_t num_waves{0};
  std::vector<std::uint64_t> words;
  std::uint64_t ticks{0};
  std::uint32_t latency_ticks{0};
  std::uint32_t initiation_interval{0};
  std::uint32_t waves_in_flight{0};

  [[nodiscard]] bool output(std::size_t wave, std::size_t po) const {
    const std::uint64_t word = words[(wave / 64) * num_pos + po];
    return ((word >> (wave % 64)) & 1u) != 0;
  }

  /// Unpacks into the per-wave bool layout of wave_run_result::outputs —
  /// a word-at-a-time transpose (each packed word is loaded once and its
  /// 64 lanes distributed), not a per-(wave, output) bit probe.
  [[nodiscard]] std::vector<std::vector<bool>> unpack() const;
};

/// Cycle-accurate wave simulation on the compiled tick program — the exact
/// semantics of wavemig::run_waves (including wave interference on
/// unbalanced netlists), minus the interpreter overhead: components are
/// pre-bucketed into per-clock-phase firing lists and, when every edge
/// advances at least one level per tick, updated in place in decreasing
/// level order instead of snapshotting the full state every tick.
wave_run_result run_waves(const compiled_netlist& net,
                          const std::vector<std::vector<bool>>& waves, unsigned phases);

/// @name Packed chunk kernel
///
/// The building blocks every packed front-end (`run_waves_packed`,
/// `wave_stream`, and the sharded executors in parallel_executor.hpp) is
/// assembled from: validation, clock metadata, and single-chunk evaluation.
/// Routing all paths through the same kernel is what keeps single-threaded
/// and multi-threaded results bit-identical.
/// @{

/// Throws std::invalid_argument unless `phases >= 1`, `batch_pis` matches
/// the netlist, and the netlist is wave-coherent under `phases`. `who` is
/// the prefix of the diagnostic messages.
void validate_packed_run(const compiled_netlist& net, std::size_t batch_pis, unsigned phases,
                         const char* who);

/// Fills ticks / latency / initiation interval / waves in flight exactly as
/// the cycle-accurate simulator reports them for the same run.
void fill_packed_clock_metrics(packed_wave_result& result, const compiled_netlist& net,
                               unsigned phases, std::size_t num_waves);

/// Evaluates one 64-wave chunk: `chunk_words` holds the batch's `num_pis`
/// packed input words, `out_words` receives `num_pos` packed output words.
/// `scratch` is reused across calls — after the first call for a given
/// netlist the kernel performs no allocation.
void eval_packed_chunk(const compiled_netlist& net, const std::uint64_t* chunk_words,
                       std::uint64_t* out_words, std::vector<std::uint64_t>& scratch);

/// Evaluates `num_chunks` consecutive chunks through the multi-word kernel
/// (blocks of up to compiled_netlist::max_block_chunks chunks per pass,
/// AVX2-dispatched when available). Layout is chunk-major on both sides,
/// exactly `num_chunks` adjacent chunks of a wave_batch / packed result.
/// Bit-identical to `eval_packed_chunk` per chunk; this is the kernel every
/// packed front-end shards by.
void eval_packed_block(const compiled_netlist& net, const std::uint64_t* chunk_words,
                       std::uint64_t* out_words, std::size_t num_chunks,
                       std::vector<std::uint64_t>& scratch);

/// @}

/// Packed wave-pipelined execution: 64 independent waves per 64-bit word
/// per step. Requires `net.wave_coherent(phases)` — on a coherent netlist
/// every wave's sampled outputs equal the combinational evaluation of that
/// wave's inputs (§II-C), which the engine exploits to stream whole chunks
/// through the folded majority program. Throws std::invalid_argument when
/// the netlist is not coherent under `phases` (use the cycle-accurate
/// `run_waves` to observe interference) or when `phases == 0`.
packed_wave_result run_waves_packed(const compiled_netlist& net, const wave_batch& waves,
                                    unsigned phases);

/// Streaming front-end over the packed engine for workloads whose waves
/// arrive incrementally: waves accumulate into a multi-chunk block
/// (`block_waves` = 512 at the default kernel width) that is evaluated in
/// one multi-word pass the moment it fills, with the pending storage and
/// scratch reused across blocks, so memory stays constant regardless of
/// stream length.
class wave_stream {
public:
  /// Waves per evaluated block: one full pass of the multi-word kernel.
  static constexpr std::size_t block_waves = 64 * compiled_netlist::max_block_chunks;

  /// The compiled netlist must outlive the stream. `expected_waves` is an
  /// optional capacity hint: when the producer knows (roughly) how many
  /// waves it will push, the result storage is reserved once at the first
  /// flush instead of growing block by block. Throws std::invalid_argument
  /// when the netlist is not wave-coherent under `phases` or `phases == 0`.
  wave_stream(const compiled_netlist& net, unsigned phases, std::size_t expected_waves = 0);

  /// Enqueues one wave; evaluates transparently once a block is pending.
  void push(const std::vector<bool>& wave);

  [[nodiscard]] std::size_t waves_pushed() const { return pushed_; }
  /// Waves whose outputs are already available in the result.
  [[nodiscard]] std::size_t waves_completed() const { return completed_; }

  /// Flushes any pending partial block and returns the accumulated result
  /// for every pushed wave. The stream is reusable afterwards (resets).
  packed_wave_result finish();

private:
  void flush_pending();

  const compiled_netlist& net_;
  unsigned phases_;
  std::size_t expected_waves_;
  wave_batch pending_;
  packed_wave_result result_;
  std::vector<std::uint64_t> scratch_;
  std::size_t pushed_{0};
  std::size_t completed_{0};
};

}  // namespace wavemig::engine
