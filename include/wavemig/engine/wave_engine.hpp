#pragma once

#include <cstdint>
#include <vector>

#include "wavemig/engine/compiled_netlist.hpp"
#include "wavemig/wave_simulator.hpp"

namespace wavemig::engine {

/// @name Plane-major packed layout
///
/// Packed wave words are stored **plane-major** (word-transposed): for each
/// signal (PI of a batch, PO of a result) a contiguous run of chunk words —
/// `plane(s)[c]` packs waves [64c, 64c + 64) of signal s, wave w at bit
/// w % 64. The multi-word kernel consumes slot-major word blocks, so
/// plane-major I/O feeds it with unit-stride copies; the former chunk-major
/// layout (`words[c * num_signals + s]`) forced a strided gather per PI and
/// a strided scatter per PO on every block. Chunk-major survives only as
/// explicit adapters (`append_words`, `chunk_major_words`).
/// @{

/// Read-only view of a plane-major word block: `num_signals` planes of
/// `num_chunks` contiguous words each, consecutive planes `plane_stride`
/// words apart (the stride may exceed `num_chunks` — a batch keeps spare
/// chunk capacity, and a chunk slice of a wider block keeps the parent's
/// stride). Bits above the last valid wave in the final chunk are zero for
/// every view handed out by the engine's containers.
struct wave_block_view {
  const std::uint64_t* planes{nullptr};
  std::size_t plane_stride{0};
  std::size_t num_signals{0};
  std::size_t num_chunks{0};

  [[nodiscard]] const std::uint64_t* plane(std::size_t signal) const {
    return planes + signal * plane_stride;
  }
  /// The sub-view of chunks [first, first + count) — same planes, offset
  /// base, unchanged stride. This is how sharded executors slice work
  /// without copying: a slice is itself a valid plane-major block.
  [[nodiscard]] wave_block_view slice(std::size_t first, std::size_t count) const {
    return {planes + first, plane_stride, num_signals, count};
  }
};

/// Mutable counterpart of wave_block_view (what evaluation writes into).
struct wave_block_mut_view {
  std::uint64_t* planes{nullptr};
  std::size_t plane_stride{0};
  std::size_t num_signals{0};
  std::size_t num_chunks{0};

  [[nodiscard]] std::uint64_t* plane(std::size_t signal) const {
    return planes + signal * plane_stride;
  }
  [[nodiscard]] wave_block_mut_view slice(std::size_t first, std::size_t count) const {
    return {planes + first, plane_stride, num_signals, count};
  }
};

/// @}

/// Packed batch of input waves: 64 waves per 64-bit word, stored plane-major
/// (see above) — PI i owns the contiguous words `plane(i)[0 .. num_chunks())`,
/// wave w at bit w % 64 of word w / 64. Invariant maintained by every
/// mutator: words beyond `num_waves()` (the tail bits of the last chunk and
/// any spare capacity chunks) are zero, so views of the batch never expose
/// stray bits.
class wave_batch {
public:
  explicit wave_batch(std::size_t num_pis) : num_pis_{num_pis} {}

  [[nodiscard]] std::size_t num_pis() const { return num_pis_; }
  [[nodiscard]] std::size_t num_waves() const { return num_waves_; }
  [[nodiscard]] std::size_t num_chunks() const { return (num_waves_ + 63) / 64; }
  [[nodiscard]] bool empty() const { return num_waves_ == 0; }

  /// Appends one wave (one bool per PI). Throws std::invalid_argument on a
  /// width mismatch.
  void append(const std::vector<bool>& wave);

  /// Bulk-appends `num_waves` already packed waves given in the legacy
  /// **chunk-major** layout (`words[c * num_pis + i]` packs PI i of chunk
  /// c): the compatibility adapter for producers holding chunk-major words
  /// (a wire format, a pre-transpose snapshot). Bits above `num_waves` in
  /// the caller's last chunk are ignored. Words are spliced with at most
  /// two shifts each — never bit by bit.
  void append_words(const std::uint64_t* words, std::size_t num_waves);

  /// Bulk-appends `num_waves` packed waves given plane-major: PI i's words
  /// at `planes + i * plane_stride`, exactly the layout of `view()` /
  /// another batch's planes. The native bulk path — when the batch holds a
  /// multiple of 64 waves it is one contiguous copy per plane. Bits above
  /// `num_waves` in each plane's last chunk are ignored.
  void append_planes(const std::uint64_t* planes, std::size_t plane_stride,
                     std::size_t num_waves);

  /// What `from_plane_words` does with bits above `num_waves` in a plane's
  /// last chunk: `mask` (the default) zeroes them silently — right for
  /// trusted in-process producers reusing padded buffers; `reject` throws
  /// std::invalid_argument — right for untrusted payloads (the network
  /// front-end), where stray bits mean a corrupted or mis-declared frame.
  enum class tail_bits { mask, reject };

  /// Adopts `words` as plane-major storage without copying: `num_pis`
  /// planes of exactly ceil(num_waves / 64) words each (plane stride ==
  /// chunk count, PI i's words at `words[i * chunks .. (i+1) * chunks)`).
  /// Bits above `num_waves` in each plane's last chunk are masked off (or
  /// rejected, per `tail`). Throws std::invalid_argument when the vector's
  /// size does not match the declared shape — the check is division-based,
  /// so a hostile `num_waves` near SIZE_MAX cannot wrap the arithmetic
  /// into accepting a short buffer. This is the zero-copy ingestion path
  /// of serving_session::submit_packed.
  static wave_batch from_plane_words(std::vector<std::uint64_t> words, std::size_t num_pis,
                                     std::size_t num_waves, tail_bits tail = tail_bits::mask);

  /// Drops all waves but keeps the word storage for reuse (the allocation
  /// amortizer of wave_stream's flush path).
  void clear();

  /// Pre-allocates storage for `num_waves` waves.
  void reserve(std::size_t num_waves) { ensure_chunk_capacity((num_waves + 63) / 64); }

  [[nodiscard]] bool input(std::size_t wave, std::size_t pi) const {
    const std::uint64_t word = words_[pi * chunk_capacity_ + wave / 64];
    return ((word >> (wave % 64)) & 1u) != 0;
  }

  /// The contiguous chunk words of PI `pi` (plane-major native access).
  [[nodiscard]] const std::uint64_t* plane(std::size_t pi) const {
    return words_.data() + pi * chunk_capacity_;
  }

  /// Plane-major view of the whole batch — what the packed front-ends hand
  /// to the kernel. Valid until the next mutation.
  [[nodiscard]] wave_block_view view() const {
    return {words_.data(), chunk_capacity_, num_pis_, num_chunks()};
  }

  /// Legacy chunk-major copy (`out[c * num_pis + i]` packs PI i of chunk
  /// c) — the adapter for consumers of the pre-transpose layout. O(chunks x
  /// PIs); the hot paths never call it.
  [[nodiscard]] std::vector<std::uint64_t> chunk_major_words() const;

  static wave_batch from_waves(const std::vector<std::vector<bool>>& waves, std::size_t num_pis);

private:
  /// Grows the per-plane stride to at least `chunks` words (geometric), and
  /// re-strides the planes. New words are zero.
  void ensure_chunk_capacity(std::size_t chunks);

  std::size_t num_pis_;
  std::size_t num_waves_{0};
  std::size_t chunk_capacity_{0};  ///< plane stride in words
  std::vector<std::uint64_t> words_;  ///< num_pis_ * chunk_capacity_ words
};

/// Result of a packed wave run: 64 waves per word, plane-major like
/// wave_batch — PO p owns the contiguous words `plane(p)[0 .. num_chunks())`
/// (plane stride == chunk count exactly). Every engine front-end masks the
/// bits above `num_waves` in each plane's last chunk, so results uphold the
/// same tail-zero invariant as batches (hash or ship the words as-is).
/// Clocking metadata matches what the cycle-accurate simulator reports for
/// the same run.
struct packed_wave_result {
  std::size_t num_pos{0};
  std::size_t num_waves{0};
  std::vector<std::uint64_t> words;
  std::uint64_t ticks{0};
  std::uint32_t latency_ticks{0};
  std::uint32_t initiation_interval{0};
  std::uint32_t waves_in_flight{0};

  [[nodiscard]] std::size_t num_chunks() const { return (num_waves + 63) / 64; }

  [[nodiscard]] bool output(std::size_t wave, std::size_t po) const {
    const std::uint64_t word = words[po * num_chunks() + wave / 64];
    return ((word >> (wave % 64)) & 1u) != 0;
  }

  /// The contiguous chunk words of PO `po`.
  [[nodiscard]] const std::uint64_t* plane(std::size_t po) const {
    return words.data() + po * num_chunks();
  }

  [[nodiscard]] wave_block_view view() const {
    return {words.data(), num_chunks(), num_pos, num_chunks()};
  }

  /// Legacy chunk-major copy (`out[c * num_pos + p]`) — adapter for
  /// consumers of the pre-transpose layout.
  [[nodiscard]] std::vector<std::uint64_t> chunk_major_words() const;

  /// Unpacks into the per-wave bool layout of wave_run_result::outputs —
  /// a word-at-a-time transpose (each packed word is loaded once and its
  /// 64 lanes distributed), not a per-(wave, output) bit probe.
  [[nodiscard]] std::vector<std::vector<bool>> unpack() const;
};

/// Cycle-accurate wave simulation on the compiled tick program — the exact
/// semantics of wavemig::run_waves (including wave interference on
/// unbalanced netlists), minus the interpreter overhead: components are
/// pre-bucketed into per-clock-phase firing lists and, when every edge
/// advances at least one level per tick, updated in place in decreasing
/// level order instead of snapshotting the full state every tick.
wave_run_result run_waves(const compiled_netlist& net,
                          const std::vector<std::vector<bool>>& waves, unsigned phases);

/// @name Packed chunk kernel
///
/// The building blocks every packed front-end (`run_waves_packed`,
/// `wave_stream`, and the sharded executors in parallel_executor.hpp) is
/// assembled from: validation, clock metadata, and block evaluation over
/// plane-major views. Routing all paths through the same kernel is what
/// keeps single-threaded and multi-threaded results bit-identical.
/// @{

/// Throws std::invalid_argument unless `phases >= 1`, `batch_pis` matches
/// the netlist, and the netlist is wave-coherent under `phases`. `who` is
/// the prefix of the diagnostic messages.
void validate_packed_run(const compiled_netlist& net, std::size_t batch_pis, unsigned phases,
                         const char* who);

/// Fills ticks / latency / initiation interval / waves in flight exactly as
/// the cycle-accurate simulator reports them for the same run.
void fill_packed_clock_metrics(packed_wave_result& result, const compiled_netlist& net,
                               unsigned phases, std::size_t num_waves);

/// Evaluates a plane-major block: PI words read from `pis`, PO words written
/// into `pos` (both sides unit stride per signal — the zero-gather hot
/// path; see compiled_netlist::eval_planes_block). The chunk counts of the
/// two views must match, and their signal counts must match the netlist —
/// std::invalid_argument otherwise. `scratch` is reused across calls; after
/// the first call for a given netlist the kernel performs no allocation.
void eval_packed_planes(const compiled_netlist& net, const wave_block_view& pis,
                        const wave_block_mut_view& pos, std::vector<std::uint64_t>& scratch);

/// Evaluates one 64-wave chunk in the legacy chunk-major layout:
/// `chunk_words` holds `num_pis` packed input words, `out_words` receives
/// `num_pos` packed output words. Kept as the single-word (W = 1) reference
/// the multi-word paths are tested against.
void eval_packed_chunk(const compiled_netlist& net, const std::uint64_t* chunk_words,
                       std::uint64_t* out_words, std::vector<std::uint64_t>& scratch);

/// Evaluates `num_chunks` consecutive chunks given **chunk-major** words on
/// both sides (`chunk_words[c * num_pis + i]`, `out_words[c * num_pos + p]`)
/// — the legacy adapter entry: it pays the per-PI gather and per-PO scatter
/// the plane-major path exists to eliminate. Bit-identical to
/// `eval_packed_chunk` per chunk and to `eval_packed_planes` modulo layout.
void eval_packed_block(const compiled_netlist& net, const std::uint64_t* chunk_words,
                       std::uint64_t* out_words, std::size_t num_chunks,
                       std::vector<std::uint64_t>& scratch);

/// @}

/// Packed wave-pipelined execution: 64 independent waves per 64-bit word
/// per step. Requires `net.wave_coherent(phases)` — on a coherent netlist
/// every wave's sampled outputs equal the combinational evaluation of that
/// wave's inputs (§II-C), which the engine exploits to stream whole chunks
/// through the folded majority program. Throws std::invalid_argument when
/// the netlist is not coherent under `phases` (use the cycle-accurate
/// `run_waves` to observe interference) or when `phases == 0`.
packed_wave_result run_waves_packed(const compiled_netlist& net, const wave_batch& waves,
                                    unsigned phases);

/// Streaming front-end over the packed engine for workloads whose waves
/// arrive incrementally: waves accumulate into a multi-chunk block
/// (`block_waves` = 512 at the default kernel width) that is evaluated in
/// one multi-word pass the moment it fills, with the pending storage and
/// scratch reused across blocks, so the working set stays constant
/// regardless of stream length.
///
/// When `expected_waves` fixes the output stride, flushed blocks evaluate
/// **directly into the final full-width result planes** at their chunk
/// offset and finish() hands the buffer over without the per-block splice
/// copy. A hint the stream outgrows falls back gracefully (the buffer
/// re-strides between flushes); an overshot hint costs one per-plane
/// compaction at finish(). Result words are bit-identical either way.
class wave_stream {
public:
  /// Waves per evaluated block: one full pass of the multi-word kernel.
  static constexpr std::size_t block_waves = 64 * compiled_netlist::max_block_chunks;

  /// The compiled netlist must outlive the stream. `expected_waves != 0`
  /// enables the direct-write path (see class docs) — exact or generous
  /// hints skip the finish()-time splice entirely. Throws
  /// std::invalid_argument when the netlist is not wave-coherent under
  /// `phases` or `phases == 0`.
  wave_stream(const compiled_netlist& net, unsigned phases, std::size_t expected_waves = 0);

  /// Enqueues one wave; evaluates transparently once a block is pending.
  void push(const std::vector<bool>& wave);

  [[nodiscard]] std::size_t waves_pushed() const { return pushed_; }
  /// Waves whose outputs are already available in the result.
  [[nodiscard]] std::size_t waves_completed() const { return completed_; }

  /// Flushes any pending partial block and returns the accumulated result
  /// for every pushed wave. The stream is reusable afterwards (resets).
  packed_wave_result finish();

private:
  void flush_pending();
  /// Direct-write path: grows `done_words_` (re-striding the planes) so
  /// chunks [0, needed) fit at a common stride.
  void ensure_direct_capacity(std::size_t needed_chunks);

  const compiled_netlist& net_;
  unsigned phases_;
  std::size_t expected_waves_;
  wave_batch pending_;
  /// Unhinted: flushed blocks, concatenated — block b occupies
  /// done_chunks_[b] * num_pos words, plane-major with stride == that
  /// block's chunk count, and finish() splices the per-block planes into
  /// the result's full-width planes (or moves the buffer wholesale when
  /// only one block flushed). Hinted (`expected_waves_ != 0`): num_pos
  /// full-width planes of direct_stride_ words each; flushes land at their
  /// final chunk offset and finish() moves the buffer out splice-free.
  std::vector<std::uint64_t> done_words_;
  std::vector<std::size_t> done_chunks_;
  std::size_t direct_stride_{0};
  std::size_t flushed_chunks_{0};
  std::vector<std::uint64_t> scratch_;
  std::size_t pushed_{0};
  std::size_t completed_{0};
};

}  // namespace wavemig::engine
