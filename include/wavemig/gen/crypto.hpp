#pragma once

#include <array>
#include <cstdint>

#include "wavemig/mig.hpp"

namespace wavemig::gen {

/// The eight standard DES substitution boxes (publicly specified in FIPS
/// 46-3): `des_sbox(box)[row][col]` with 6-bit input split as
/// row = {b5,b0}, col = {b4..b1}.
const std::array<std::array<std::uint8_t, 16>, 4>& des_sbox(unsigned box);

/// Applies S-box `box` to six input signals (b0 = LSB of the 6-bit input);
/// returns the four output bits (LSB first). Synthesized by Shannon
/// decomposition with cofactor sharing.
std::array<signal, 4> des_sbox_network(mig_network& net, const std::array<signal, 6>& in,
                                       unsigned box);

/// DES-style Feistel network over a 64-bit block with `rounds` rounds:
/// expansion E, key mixing, the eight standard S-boxes and permutation P per
/// round. PIs: 64 block bits + 48 key bits per round slice drawn from a
/// 64-bit round key input by rotation. POs: 64 output bits. `rounds` = 4
/// approximates the size of the paper's DES_AREA benchmark.
mig_network des_circuit(unsigned rounds);

/// Reversible Toffoli/CNOT/NOT cascade on `lines` wires with `gates` gates
/// (seeded, deterministic), mapped to majority logic; mirrors the deep and
/// narrow REVX benchmark. POs are the final wire values.
mig_network reversible_cascade_circuit(unsigned lines, unsigned gates, std::uint64_t seed);

/// One CRC step over `data_bits` message bits with the CRC-32 polynomial
/// (XOR-tree update of a 32-bit register).
mig_network crc32_circuit(unsigned data_bits);

}  // namespace wavemig::gen
