#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wavemig/mig.hpp"

namespace wavemig::gen {

/// Little-endian vector of signals (bit 0 first). The word-level helpers
/// below are the building blocks of the arithmetic benchmark circuits and
/// are part of the public API (see examples/).
using word = std::vector<signal>;

/// Creates `width` primary inputs named `prefix0..prefix<width-1>`.
word make_input_word(mig_network& net, unsigned width, const std::string& prefix);

/// Registers one primary output per bit, named `prefix0..`.
void make_output_word(mig_network& net, const word& bits, const std::string& prefix);

/// Ripple-carry addition; returns `width` sum bits and the carry-out.
/// Each stage is the 3-majority-gate full adder (carry = M(a,b,c)).
std::pair<word, signal> add_ripple(mig_network& net, const word& a, const word& b, signal carry_in);

/// Two's-complement subtraction a - b (ripple borrow); returns difference
/// bits and the final carry (1 = no borrow, i.e. a >= b for unsigned).
std::pair<word, signal> sub_ripple(mig_network& net, const word& a, const word& b);

/// Unsigned array multiplier; returns 2*width product bits.
word multiply_array(mig_network& net, const word& a, const word& b);

/// Unsigned comparison a < b via the borrow chain.
signal less_than(mig_network& net, const word& a, const word& b);
/// Equality comparator (XNOR reduction).
signal equals(mig_network& net, const word& a, const word& b);

/// Word-level multiplexer sel ? t : e (per-bit).
word mux_word(mig_network& net, signal sel, const word& t, const word& e);

/// XOR reduction of all bits (odd parity).
signal parity(mig_network& net, const word& bits);

/// Population count as a binary word, built from full-adder compressors.
word popcount(mig_network& net, const word& bits);

/// @name Complete benchmark circuits (each constructs PIs/POs internally)
/// @{

/// w-bit ripple-carry adder: PIs a, b; POs sum, carry-out. Depth ~ w.
mig_network ripple_adder_circuit(unsigned width);

/// w x w array multiplier: PIs a, b; POs p (2w bits). Depth ~ 2w.
mig_network multiplier_circuit(unsigned width);

/// Multiply-accumulate a*b + c.
mig_network mac_circuit(unsigned width);

/// Hamming distance of two w-bit words: XOR + sequential accumulation,
/// deliberately depth-heavy like the paper's HAMMING benchmark.
mig_network hamming_distance_circuit(unsigned width);

/// Hamming(2^p - 1, 2^p - 1 - p) single-error-correcting codec: encodes the
/// data PIs, XORs in an error mask, decodes the syndrome and corrects;
/// POs are the corrected data word. `parity_bits` = p (e.g. 4 -> (15,11)).
mig_network hamming_codec_circuit(unsigned parity_bits);

/// XOR-reduction parity of `width` inputs.
mig_network parity_circuit(unsigned width);

/// Unsigned 1-bit outputs lt/eq/gt of two w-bit words.
mig_network comparator_circuit(unsigned width);

/// Maximum of `ways` w-bit inputs (comparator + mux tree), like EPFL `max`.
mig_network max_circuit(unsigned width, unsigned ways);

/// HLS `diffeq` Euler integrator step:
///   x' = x + dx;  y' = y + u*dx;  u' = u - 3*x*u*dx - 3*y*dx
/// with all operands `width` bits wide (truncated arithmetic). Five chained
/// multipliers make this the deepest suite circuit, like the paper's DIFFEQ1.
mig_network diffeq_circuit(unsigned width);

/// Converts a w-bit unsigned int to a small float (leading-one detection +
/// normalizing shift), like EPFL `int2float`.
mig_network int2float_circuit(unsigned width);

/// @}

}  // namespace wavemig::gen
