#pragma once

#include <cstdint>

#include "wavemig/mig.hpp"

namespace wavemig::gen {

/// Parameters of a seeded random MIG. `locality` biases fan-in selection
/// toward recently created nodes: 0 draws uniformly over all existing
/// signals (shallow, highly shared DAGs); values toward 1 draw mostly from a
/// recent window (deep, chain-like DAGs).
struct random_mig_profile {
  unsigned inputs{32};
  unsigned gates{1000};
  double locality{0.5};
  unsigned outputs{32};
  std::uint64_t seed{42};
};

/// Deterministic random majority network. Gates draw three distinct fan-ins
/// with random complements; primary outputs prefer dangling nodes so that
/// the whole DAG stays live after cleanup.
mig_network random_mig(const random_mig_profile& profile);

}  // namespace wavemig::gen
