#pragma once

#include <cstdint>
#include <string>

#include "wavemig/mig.hpp"

namespace wavemig::gen {

/// Parameters of a controller-style random-logic block: shallow, wide,
/// multi-output sum-of-products logic plus decoded state feedback, the
/// structural profile of the OpenCores-style control benchmarks (SASC, I2C,
/// SPI, memory/bus controllers) used in the paper's suite.
struct control_profile {
  unsigned inputs{16};
  unsigned outputs{12};
  /// Product terms per output (sparse cubes over the inputs).
  unsigned cubes_per_output{8};
  /// Maximum literals per cube; each cube draws its width from
  /// [2, literals_per_cube], so the OR plane combines cubes of different
  /// depths — the level-jumping irregularity of real controller netlists
  /// that drives the paper's buffer counts (Fig. 5).
  unsigned literals_per_cube{6};
  /// State bits decoded into one-hot lines mixed into the cubes (0 = none).
  unsigned state_bits{3};
  std::uint64_t seed{1};
};

/// Builds a deterministic controller-style circuit from the profile.
mig_network control_circuit(const control_profile& profile);

/// Next-state logic of a random Moore FSM: `state_bits` state inputs and
/// `input_bits` condition inputs; outputs are the next-state bits, each an
/// exactly synthesized random truth table (Shannon decomposition). Requires
/// state_bits + input_bits <= 16.
mig_network fsm_circuit(unsigned state_bits, unsigned input_bits, std::uint64_t seed);

}  // namespace wavemig::gen
