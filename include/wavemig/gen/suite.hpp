#pragma once

#include <string>
#include <vector>

#include "wavemig/mig.hpp"

namespace wavemig::gen {

/// One suite circuit.
struct benchmark_case {
  std::string name;
  mig_network net;
};

/// Names of the 37 suite benchmarks (the reproduction stand-in for the MIG
/// benchmarks of [16]; see DESIGN.md §1 "Substitutions"). Deterministic
/// order; includes the seven circuits named in the paper's Table II:
/// sasc, des_area, mul32, hamming, mul64, revx, diffeq1.
const std::vector<std::string>& benchmark_names();

/// Names of the seven Table II circuits, in the paper's row order.
const std::vector<std::string>& table2_names();

/// Builds a single benchmark by name; throws std::invalid_argument for
/// unknown names.
mig_network build_benchmark(const std::string& name);

/// Builds the complete 37-circuit suite (deterministic).
std::vector<benchmark_case> build_suite();

}  // namespace wavemig::gen
