#pragma once

#include "wavemig/mig.hpp"

namespace wavemig::gen {

/// Majority voter over `inputs` (odd) single-bit inputs: popcount plus a
/// threshold comparison — the natural MIG benchmark (EPFL `voter`).
mig_network voter_circuit(unsigned inputs);

/// Logarithmic barrel shifter: `width`-bit value (width a power of two),
/// log2(width) shift-amount bits, left-rotating mux layers (EPFL `bar`).
mig_network barrel_shifter_circuit(unsigned width);

/// Full `bits` -> 2^bits decoder (EPFL `dec`).
mig_network decoder_circuit(unsigned bits);

/// Priority encoder over `width` request lines: index of the highest
/// asserted line plus a valid flag (EPFL `priority`).
mig_network priority_encoder_circuit(unsigned width);

/// Round-robin-style arbiter: `width` request lines and a log2 grant pointer
/// input; outputs one-hot grants (EPFL `arbiter`, simplified).
mig_network arbiter_circuit(unsigned width);

/// Wide-I/O stress circuit: `inputs` primary inputs reduced to `outputs`
/// primary outputs by shallow interleaved majority trees (output j
/// majority-reduces the input slice {j, j+outputs, j+2*outputs, ...}).
/// The point is shape, not logic: with thousands of PI/PO planes and only
/// a few gates per output, packed runs are dominated by the per-plane
/// transposes and PI/PO traffic — the first-class stress case for the
/// I/O-tiled layout paths. Requires inputs >= 3 * outputs and outputs >= 1.
mig_network wide_io_circuit(unsigned inputs, unsigned outputs);

}  // namespace wavemig::gen
