#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wavemig {

/// Dynamically sized truth table over up to 20 variables, stored as packed
/// 64-bit words. Bit i of the table is the function value on the input
/// assignment whose binary encoding is i (variable 0 is the least
/// significant input bit).
///
/// Used for exact equivalence checks of small functions (S-boxes, adders,
/// generated control logic) and as the reference model in tests.
class truth_table {
public:
  /// Constructs the constant-0 table over `num_vars` variables.
  explicit truth_table(unsigned num_vars);

  [[nodiscard]] unsigned num_vars() const { return num_vars_; }
  [[nodiscard]] std::uint64_t num_bits() const { return std::uint64_t{1} << num_vars_; }

  [[nodiscard]] bool get_bit(std::uint64_t position) const;
  void set_bit(std::uint64_t position, bool value);

  /// Projection table of variable `var`: f(x) = x_var.
  static truth_table nth_var(unsigned num_vars, unsigned var);
  /// Constant function.
  static truth_table constant(unsigned num_vars, bool value);

  [[nodiscard]] truth_table operator~() const;
  [[nodiscard]] truth_table operator&(const truth_table& other) const;
  [[nodiscard]] truth_table operator|(const truth_table& other) const;
  [[nodiscard]] truth_table operator^(const truth_table& other) const;

  /// Ternary majority, the MIG primitive.
  static truth_table maj(const truth_table& a, const truth_table& b, const truth_table& c);

  /// If-then-else on a selector table.
  static truth_table ite(const truth_table& sel, const truth_table& then_tt,
                         const truth_table& else_tt);

  friend bool operator==(const truth_table& a, const truth_table& b);
  friend bool operator!=(const truth_table& a, const truth_table& b) { return !(a == b); }

  /// Number of one-bits (needed e.g. to check that MAJ-of-n voter counts).
  [[nodiscard]] std::uint64_t count_ones() const;

  /// Hexadecimal string, most significant word first (like mockturtle/abc).
  [[nodiscard]] std::string to_hex() const;

  /// Direct access to the packed words (low words first).
  [[nodiscard]] const std::vector<std::uint64_t>& words() const { return words_; }

private:
  void mask_top_word();

  unsigned num_vars_;
  std::vector<std::uint64_t> words_;
};

}  // namespace wavemig
