#pragma once

#include <cstdint>
#include <optional>

#include "wavemig/mig.hpp"

namespace wavemig {

struct loss_budget_options {
  /// Logic levels (majority and fan-out gates) a wave may traverse without
  /// regeneration — tech_scenario::max_unregenerated_levels(). nullopt
  /// disables the pass (lossless technology); 0 is invalid (no circuit
  /// could exist).
  std::optional<unsigned> max_unregenerated_levels{};
};

struct loss_budget_result {
  mig_network net;
  /// Repeater buffers inserted. Repeaters are plain buffer components
  /// (identity function); metrics cost them via tech_scenario::repeater.
  std::size_t repeaters_added{0};
  /// Longest unregenerated run before / after the pass. `after` is at most
  /// the budget whenever the pass ran.
  std::uint32_t max_run_before{0};
  std::uint32_t max_run_after{0};
  std::uint32_t depth_before{0};
  std::uint32_t depth_after{0};
};

/// Enforces a scenario's attenuation budget: walks the netlist in
/// topological order tracking each signal's **unregenerated run** — the
/// consecutive majority/fan-out levels traversed since the last
/// regeneration point (a primary input transducer or a buffer, both of
/// which launch a fresh wave, run 0) — and inserts a repeater buffer on any
/// majority/FOG fan-in edge whose contribution would push the consumer past
/// the budget. After the pass every node's run is at most the budget.
///
/// Repeaters are inserted per edge, never shared, so the pass preserves
/// every driver's fan-out degree — it composes with `restrict_fanout`
/// (run restriction first) without re-violating the limit. Insertion only
/// targets majority/FOG fan-in edges — a buffer's input tolerates any run
/// within budget and its output is fresh — which makes the pass
/// **idempotent**: re-running it on its own output inserts nothing.
///
/// Run it *before* path balancing: repeaters deepen the paths they are on,
/// and `insert_buffers` afterwards restores wave coherence (balance buffers
/// are themselves regeneration points, so balancing never re-violates the
/// budget).
///
/// Throws std::invalid_argument when the budget is 0. A nullopt budget
/// copies the network through (reporting `max_run_before` only).
loss_budget_result enforce_loss_budget(const mig_network& net,
                                       const loss_budget_options& options = {});

}  // namespace wavemig
