#include "wavemig/gen/random_mig.hpp"

#include <gtest/gtest.h>

#include "wavemig/levels.hpp"
#include "wavemig/simulation.hpp"

namespace wavemig {
namespace {

TEST(random_mig, deterministic_per_seed) {
  const gen::random_mig_profile p{16, 500, 0.4, 16, 7};
  const auto a = gen::random_mig(p);
  const auto b = gen::random_mig(p);
  EXPECT_EQ(a.num_majorities(), b.num_majorities());
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_TRUE(functionally_equivalent(a, b));
}

TEST(random_mig, seeds_produce_different_networks) {
  const auto a = gen::random_mig({16, 500, 0.4, 16, 7});
  const auto b = gen::random_mig({16, 500, 0.4, 16, 8});
  EXPECT_FALSE(functionally_equivalent(a, b));
}

TEST(random_mig, respects_interface_profile) {
  const auto net = gen::random_mig({24, 800, 0.3, 10, 3});
  EXPECT_EQ(net.num_pis(), 24u);
  EXPECT_EQ(net.num_pos(), 10u);
}

TEST(random_mig, fully_live_after_cleanup) {
  // random_mig runs cleanup internally: every gate must be reachable.
  const auto net = gen::random_mig({16, 400, 0.5, 16, 11});
  const auto fo = compute_fanouts(net);
  std::size_t dead = 0;
  net.foreach_gate([&](node_index n) {
    if (fo.degree(n) == 0) {
      ++dead;
    }
  });
  EXPECT_EQ(dead, 0u) << "cleanup must remove dangling gates";
}

TEST(random_mig, locality_controls_depth) {
  const auto shallow = gen::random_mig({32, 2000, 0.0, 32, 5});
  const auto deep = gen::random_mig({32, 2000, 0.85, 32, 5});
  EXPECT_LT(compute_levels(shallow).depth, compute_levels(deep).depth);
}

TEST(random_mig, gate_budget_is_an_upper_bound) {
  const auto net = gen::random_mig({16, 1000, 0.4, 16, 13});
  EXPECT_LE(net.num_majorities(), 1000u);
  EXPECT_GT(net.num_majorities(), 100u);  // most of the budget materializes
}

TEST(random_mig, validates_profile) {
  EXPECT_THROW(gen::random_mig({2, 100, 0.5, 4, 1}), std::invalid_argument);
  EXPECT_THROW(gen::random_mig({8, 100, 1.0, 4, 1}), std::invalid_argument);
  EXPECT_THROW(gen::random_mig({8, 100, -0.1, 4, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace wavemig
