#include "wavemig/technology.hpp"

#include <gtest/gtest.h>

namespace wavemig {
namespace {

// Table I of the paper, verified constant by constant.

TEST(technology, swd_cell_constants) {
  const auto t = technology::swd();
  EXPECT_EQ(t.name, "SWD");
  EXPECT_DOUBLE_EQ(t.cell_area_um2, 0.002304);
  EXPECT_DOUBLE_EQ(t.cell_delay_ns, 0.42);
  EXPECT_DOUBLE_EQ(t.cell_energy_fj, 1.44e-8);
}

TEST(technology, swd_relative_costs) {
  const auto t = technology::swd();
  EXPECT_DOUBLE_EQ(t.inv.area, 2.0);
  EXPECT_DOUBLE_EQ(t.maj.area, 5.0);
  EXPECT_DOUBLE_EQ(t.buf.area, 2.0);
  EXPECT_DOUBLE_EQ(t.fog.area, 5.0);
  EXPECT_DOUBLE_EQ(t.inv.delay, 1.0);
  EXPECT_DOUBLE_EQ(t.maj.delay, 1.0);
  EXPECT_DOUBLE_EQ(t.inv.energy, 1.0);
  EXPECT_DOUBLE_EQ(t.maj.energy, 3.0);
  EXPECT_DOUBLE_EQ(t.fog.energy, 3.0);
}

TEST(technology, qca_cell_constants) {
  const auto t = technology::qca();
  EXPECT_EQ(t.name, "QCA");
  EXPECT_DOUBLE_EQ(t.cell_area_um2, 0.0004);
  EXPECT_DOUBLE_EQ(t.cell_delay_ns, 0.0012);
  EXPECT_DOUBLE_EQ(t.cell_energy_fj, 9.80e-7);
}

TEST(technology, qca_relative_costs) {
  const auto t = technology::qca();
  EXPECT_DOUBLE_EQ(t.inv.area, 10.0);
  EXPECT_DOUBLE_EQ(t.maj.area, 3.0);
  EXPECT_DOUBLE_EQ(t.buf.area, 1.0);
  EXPECT_DOUBLE_EQ(t.fog.area, 3.0);
  EXPECT_DOUBLE_EQ(t.inv.delay, 7.0);
  EXPECT_DOUBLE_EQ(t.maj.delay, 2.0);
  EXPECT_DOUBLE_EQ(t.buf.delay, 1.0);
  EXPECT_DOUBLE_EQ(t.inv.energy, 10.0);
  EXPECT_DOUBLE_EQ(t.maj.energy, 3.0);
}

TEST(technology, nml_cell_constants) {
  const auto t = technology::nml();
  EXPECT_EQ(t.name, "NML");
  EXPECT_DOUBLE_EQ(t.cell_area_um2, 0.0098);
  EXPECT_DOUBLE_EQ(t.cell_delay_ns, 10.0);
  EXPECT_DOUBLE_EQ(t.cell_energy_fj, 5.00e-4);
}

TEST(technology, nml_relative_costs) {
  const auto t = technology::nml();
  EXPECT_DOUBLE_EQ(t.inv.area, 1.0);
  EXPECT_DOUBLE_EQ(t.maj.area, 2.0);
  EXPECT_DOUBLE_EQ(t.buf.area, 2.0);
  EXPECT_DOUBLE_EQ(t.fog.area, 2.0);
  EXPECT_DOUBLE_EQ(t.maj.delay, 2.0);
  EXPECT_DOUBLE_EQ(t.maj.energy, 2.0);
}

TEST(technology, fog_always_costs_like_a_majority) {
  // §V: "the fan-out gate (FOG) is equivalent to a reversed majority gate".
  for (const auto& t : {technology::swd(), technology::qca(), technology::nml()}) {
    EXPECT_DOUBLE_EQ(t.fog.area, t.maj.area) << t.name;
    EXPECT_DOUBLE_EQ(t.fog.delay, t.maj.delay) << t.name;
    EXPECT_DOUBLE_EQ(t.fog.energy, t.maj.energy) << t.name;
  }
}

TEST(technology, phase_delays_match_table2_throughputs) {
  // WP throughput = 1/(3 x phase_delay): 793.65 / 83333.33 / 16.67 MOPS.
  EXPECT_NEAR(1e3 / (3 * technology::swd().phase_delay_ns), 793.65, 0.01);
  EXPECT_NEAR(1e3 / (3 * technology::qca().phase_delay_ns), 83333.33, 0.5);
  EXPECT_NEAR(1e3 / (3 * technology::nml().phase_delay_ns), 16.67, 0.01);
}

TEST(technology, only_swd_has_sense_amplifiers) {
  EXPECT_GT(technology::swd().sense_amp_energy_fj, 0.0);
  EXPECT_DOUBLE_EQ(technology::qca().sense_amp_energy_fj, 0.0);
  EXPECT_DOUBLE_EQ(technology::nml().sense_amp_energy_fj, 0.0);
}

TEST(technology, swd_sense_amp_dominates_gate_energy) {
  // §V calls the SWD sense amplifier "power dominant": it must exceed the
  // majority-gate switching energy by orders of magnitude.
  const auto t = technology::swd();
  EXPECT_GT(t.sense_amp_energy_fj, 1000 * t.cell_energy_fj * t.maj.energy);
}

TEST(technology, custom_technology_is_constructible) {
  technology t;
  t.name = "custom";
  t.cell_area_um2 = 1.0;
  t.cell_delay_ns = 2.0;
  t.cell_energy_fj = 3.0;
  t.maj = {4.0, 5.0, 6.0};
  t.phase_delay_ns = 10.0;
  EXPECT_EQ(t.name, "custom");
  EXPECT_DOUBLE_EQ(t.maj.delay, 5.0);
}

}  // namespace
}  // namespace wavemig
