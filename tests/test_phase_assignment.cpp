#include "wavemig/phase_assignment.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/gen/arith.hpp"

namespace wavemig {
namespace {

TEST(phase_assignment, levels_map_to_cyclic_phases) {
  // Balanced chain: levels 1..6 -> phases 1,2,3,1,2,3 (0-based 0,1,2,...).
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  std::vector<signal> chain;
  signal s = net.create_maj(a, b, c);
  chain.push_back(s);
  for (int i = 0; i < 5; ++i) {
    s = net.create_buffer(s);
    chain.push_back(s);
  }
  net.create_po(s);

  const auto assignment = assign_phases(net, 3);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_EQ(assignment.phase[chain[i].index()], i % 3) << "level " << i + 1;
  }
}

TEST(phase_assignment, loads_count_components_only) {
  const auto balanced = insert_buffers(gen::multiplier_circuit(4));
  const auto assignment = assign_phases(balanced.net, 3);
  std::size_t total = 0;
  for (const auto l : assignment.load) {
    total += l;
  }
  EXPECT_EQ(total, balanced.net.num_components());
}

TEST(phase_assignment, balanced_netlists_have_low_imbalance) {
  // After exact balancing every level is dense, so the three phase loads
  // differ by at most a few levels' worth of cells.
  const auto balanced = insert_buffers(gen::multiplier_circuit(6));
  const auto assignment = assign_phases(balanced.net, 3);
  EXPECT_LT(assignment.load_imbalance(), 0.5);
  for (const auto l : assignment.load) {
    EXPECT_GT(l, 0u);
  }
}

TEST(phase_assignment, respects_custom_schedules) {
  const auto net = gen::multiplier_circuit(4);
  buffer_insertion_options opts;
  opts.tolerance = 1;
  const auto relaxed = insert_buffers(net, opts);
  const auto assignment = assign_phases(relaxed.net, relaxed.schedule, 3);
  relaxed.net.foreach_component([&](node_index n) {
    const auto lvl = relaxed.schedule.level[n];
    EXPECT_EQ(assignment.phase[n], lvl == 0 ? 0 : (lvl - 1) % 3) << n;
  });
}

TEST(phase_assignment, validates_arguments) {
  const auto net = gen::ripple_adder_circuit(4);
  EXPECT_THROW(assign_phases(net, 0), std::invalid_argument);
  level_map bogus;
  bogus.level.assign(1, 0);
  EXPECT_THROW(assign_phases(net, bogus, 3), std::invalid_argument);
}

TEST(phase_assignment, report_renders) {
  const auto balanced = insert_buffers(gen::ripple_adder_circuit(4));
  const auto assignment = assign_phases(balanced.net, 3);
  std::stringstream ss;
  write_phase_report(balanced.net, balanced.schedule, assignment, ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find("clock phases: 3"), std::string::npos);
  EXPECT_NE(text.find("phase 1:"), std::string::npos);
  EXPECT_NE(text.find("level | phase |"), std::string::npos);
}

}  // namespace
}  // namespace wavemig
