#include "wavemig/scheduling.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/gen/suite.hpp"
#include "wavemig/simulation.hpp"
#include "wavemig/wave_schedule.hpp"

namespace wavemig {
namespace {

TEST(scheduling, asap_equals_levels) {
  const auto net = gen::build_benchmark("mul8");
  const auto asap = compute_schedule(net, schedule_policy::asap);
  const auto levels = compute_levels(net);
  EXPECT_EQ(asap.level, levels.level);
  EXPECT_EQ(asap.depth, levels.depth);
}

TEST(scheduling, alap_pins_pure_po_drivers_to_depth) {
  // Drivers whose only consumers are primary outputs sink to the depth
  // (aligning outputs without padding); drivers shared with gates obey the
  // earliest consumer instead.
  const auto net = gen::build_benchmark("mul8");
  const auto alap = compute_schedule(net, schedule_policy::alap);
  const auto fanouts = compute_fanouts(net);
  for (const auto& po : net.pos()) {
    const node_index driver = po.driver.index();
    if (net.is_constant(driver) || net.is_pi(driver)) {
      continue;
    }
    bool only_pos = true;
    for (const auto& edge : fanouts.edges[driver]) {
      only_pos = only_pos && edge.consumer == fanout_map::po_consumer;
    }
    if (only_pos) {
      EXPECT_EQ(alap.level[driver], alap.depth) << po.name;
    } else {
      EXPECT_LE(alap.level[driver], alap.depth) << po.name;
    }
  }
}

TEST(scheduling, alap_halves_buffer_bill_on_multipliers) {
  // Array multipliers broadcast operand bits to rows at wildly different
  // levels; ALAP converts the private per-row slack into shared input
  // chains (the ablation_scheduling bench shows ~2x suite-wide savings).
  std::size_t asap_total = 0;
  std::size_t alap_total = 0;
  for (const auto& name : {"mul8", "mul16", "mac16", "hamming"}) {
    const auto net = gen::build_benchmark(name);
    buffer_insertion_options asap_opts;
    buffer_insertion_options alap_opts;
    alap_opts.schedule = schedule_policy::alap;
    asap_total += insert_buffers(net, asap_opts).buffers_added;
    alap_total += insert_buffers(net, alap_opts).buffers_added;
  }
  EXPECT_LT(alap_total, asap_total);
}

TEST(scheduling, alap_dominates_asap_within_depth) {
  const auto net = gen::build_benchmark("crc32_8");
  const auto asap = compute_schedule(net, schedule_policy::asap);
  const auto alap = compute_schedule(net, schedule_policy::alap);
  EXPECT_EQ(asap.depth, alap.depth);
  net.foreach_gate([&](node_index n) {
    EXPECT_GE(alap.level[n], asap.level[n]) << n;
    EXPECT_LE(alap.level[n], alap.depth) << n;
  });
}

TEST(scheduling, mid_slack_sits_in_the_window) {
  const auto net = gen::build_benchmark("sasc");
  const auto asap = compute_schedule(net, schedule_policy::asap);
  const auto alap = compute_schedule(net, schedule_policy::alap);
  const auto mid = compute_schedule(net, schedule_policy::mid_slack);
  net.foreach_gate([&](node_index n) {
    EXPECT_GE(mid.level[n], asap.level[n]) << n;
    EXPECT_LE(mid.level[n], alap.level[n]) << n;
  });
}

class schedule_validity_test
    : public ::testing::TestWithParam<std::tuple<std::string, schedule_policy>> {};

TEST_P(schedule_validity_test, schedules_are_valid) {
  const auto& [name, policy] = GetParam();
  const auto net = gen::build_benchmark(name);
  const auto schedule = compute_schedule(net, policy);
  EXPECT_TRUE(is_valid_schedule(net, schedule));
  EXPECT_EQ(schedule.depth, compute_levels(net).depth) << "scheduling must not cost depth";
}

INSTANTIATE_TEST_SUITE_P(
    suite_sweep, schedule_validity_test,
    ::testing::Combine(::testing::Values("sasc", "mul8", "adder32", "revx", "crc32_8",
                                         "barrel64", "hamming", "voter101"),
                       ::testing::Values(schedule_policy::asap, schedule_policy::alap,
                                         schedule_policy::mid_slack)),
    [](const auto& info) {
      const char* tag = std::get<1>(info.param) == schedule_policy::asap   ? "asap"
                        : std::get<1>(info.param) == schedule_policy::alap ? "alap"
                                                                           : "mid";
      return std::get<0>(info.param) + "_" + tag;
    });

TEST(scheduling, invalid_schedules_are_rejected) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal g = net.create_maj(a, b, c);
  net.create_po(net.create_maj(g, a, b));

  auto levels = compute_levels(net);
  levels.level[g.index()] = 5;  // above the depth and above its consumer
  EXPECT_FALSE(is_valid_schedule(net, levels));

  auto short_map = compute_levels(net);
  short_map.level.pop_back();
  EXPECT_FALSE(is_valid_schedule(net, short_map));
}

TEST(scheduling, slack_sum_counts_naive_buffers) {
  // g1 at level 1, g2 at level 2 consuming {g1, a, b}: the two PI edges
  // jump one level each -> slack 2.
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal g1 = net.create_maj(a, b, c);
  net.create_po(net.create_maj(g1, a, !b));
  EXPECT_EQ(slack_sum(net, compute_levels(net)), 2u);
}

class schedule_buffer_test : public ::testing::TestWithParam<std::string> {};

TEST_P(schedule_buffer_test, all_policies_balance_correctly) {
  const auto net = gen::build_benchmark(GetParam());
  for (const auto policy :
       {schedule_policy::asap, schedule_policy::alap, schedule_policy::mid_slack}) {
    buffer_insertion_options opts;
    opts.schedule = policy;
    const auto result = insert_buffers(net, opts);
    EXPECT_TRUE(check_wave_readiness(result.net).ready);
    EXPECT_EQ(result.depth_after, result.depth_before);
    EXPECT_TRUE(functionally_equivalent(net, result.net, 4));
  }
}

INSTANTIATE_TEST_SUITE_P(suite_sweep, schedule_buffer_test,
                         ::testing::Values("sasc", "mul8", "crc32_8", "int2float16", "dec8"),
                         [](const auto& info) { return info.param; });

TEST(scheduling, alap_saves_buffers_by_tapping_existing_chains) {
  // g = OR(a, !b) sits at level 1 under ASAP but is only consumed at the
  // top of a deep chain: ASAP spends a private 8-buffer chain on g's edge.
  // ALAP sinks g next to its consumer, where its fan-ins tap the chains
  // that a and b need for the deep logic anyway — strictly cheaper.
  mig_network net;
  const signal a = net.create_pi("a");
  const signal b = net.create_pi("b");
  const signal c = net.create_pi("c");
  signal deep = net.create_maj(a, b, c);
  for (int i = 0; i < 8; ++i) {
    deep = net.create_maj(deep, a, !b);  // rigid chain, levels 2..9
  }
  const signal g = net.create_or(a, !b);          // level 1, slack-rich
  net.create_po(net.create_maj(deep, g, a), "f");  // level 10

  buffer_insertion_options asap_opts;
  buffer_insertion_options alap_opts;
  alap_opts.schedule = schedule_policy::alap;
  const auto with_asap = insert_buffers(net, asap_opts);
  const auto with_alap = insert_buffers(net, alap_opts);
  EXPECT_LT(with_alap.buffers_added, with_asap.buffers_added);
  EXPECT_TRUE(check_wave_readiness(with_alap.net).ready);
  EXPECT_TRUE(functionally_equivalent(net, with_alap.net));
}

}  // namespace
}  // namespace wavemig
