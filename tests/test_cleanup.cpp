#include "wavemig/cleanup.hpp"

#include <gtest/gtest.h>

#include "wavemig/gen/arith.hpp"
#include "wavemig/gen/random_mig.hpp"
#include "wavemig/simulation.hpp"

namespace wavemig {
namespace {

TEST(cleanup, removes_unreferenced_gates) {
  mig_network net;
  const signal a = net.create_pi("a");
  const signal b = net.create_pi("b");
  const signal c = net.create_pi("c");
  const signal used = net.create_maj(a, b, c);
  net.create_maj(used, !a, b);  // dangling
  net.create_maj(!used, a, c);  // dangling
  net.create_po(used, "f");

  const auto cleaned = cleanup_dangling(net);
  EXPECT_EQ(cleaned.num_majorities(), 1u);
  EXPECT_TRUE(functionally_equivalent(net, cleaned));
}

TEST(cleanup, preserves_unused_pis_and_interface_order) {
  mig_network net;
  const signal a = net.create_pi("a");
  net.create_pi("unused");
  const signal c = net.create_pi("c");
  net.create_po(net.create_and(a, c), "f");
  net.create_po(!a, "g");

  const auto cleaned = cleanup_dangling(net);
  EXPECT_EQ(cleaned.num_pis(), 3u);
  EXPECT_EQ(cleaned.pi_name(1), "unused");
  EXPECT_EQ(cleaned.num_pos(), 2u);
  EXPECT_EQ(cleaned.po_name(0), "f");
  EXPECT_EQ(cleaned.po_name(1), "g");
  EXPECT_TRUE(functionally_equivalent(net, cleaned));
}

TEST(cleanup, keeps_buffers_and_fanout_gates) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal g = net.create_and(a, b);
  const signal buf = net.create_buffer(g);
  const signal fog = net.create_fanout(buf);
  net.create_buffer(g);  // dangling buffer must disappear
  net.create_po(fog, "f");

  const auto cleaned = cleanup_dangling(net);
  EXPECT_EQ(cleaned.num_buffers(), 1u);
  EXPECT_EQ(cleaned.num_fanout_gates(), 1u);
  EXPECT_TRUE(functionally_equivalent(net, cleaned));
}

TEST(cleanup, constant_outputs_survive) {
  mig_network net;
  net.create_pi();
  net.create_po(constant1, "one");
  net.create_po(constant0, "zero");
  const auto cleaned = cleanup_dangling(net);
  EXPECT_EQ(cleaned.po_signal(0), constant1);
  EXPECT_EQ(cleaned.po_signal(1), constant0);
}

TEST(cleanup, idempotent_on_clean_networks) {
  const auto net = gen::multiplier_circuit(6);
  const auto once = cleanup_dangling(net);
  const auto twice = cleanup_dangling(once);
  EXPECT_EQ(once.num_majorities(), twice.num_majorities());
  EXPECT_EQ(once.num_nodes(), twice.num_nodes());
  EXPECT_TRUE(functionally_equivalent(once, twice));
}

TEST(cleanup, random_networks_preserve_function) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto net = gen::random_mig({16, 300, 0.4, 16, seed});
    const auto cleaned = cleanup_dangling(net);
    EXPECT_TRUE(functionally_equivalent(net, cleaned)) << "seed " << seed;
    EXPECT_LE(cleaned.num_majorities(), net.num_majorities());
  }
}

}  // namespace
}  // namespace wavemig
