#include "wavemig/metrics.hpp"

#include <gtest/gtest.h>

#include "wavemig/gen/arith.hpp"
#include "wavemig/pipeline.hpp"

namespace wavemig {
namespace {

/// One majority gate with one complemented fan-in and a complemented PO:
/// 1 MAJ + 2 INV, depth 1.
mig_network tiny_example() {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  net.create_po(!net.create_maj(a, b, !c), "f");
  return net;
}

TEST(metrics, component_inventory_counts) {
  const auto net = tiny_example();
  const auto inv = count_components(net, /*optimize_polarity=*/false);
  EXPECT_EQ(inv.majorities, 1u);
  EXPECT_EQ(inv.inverters, 2u);
  EXPECT_EQ(inv.buffers, 0u);
  EXPECT_EQ(inv.fanout_gates, 0u);
  EXPECT_EQ(inv.outputs, 1u);
  EXPECT_EQ(inv.total(), 3u);
}

TEST(metrics, polarity_optimization_reduces_inventory) {
  const auto net = tiny_example();
  // Flipping the gate turns {1 fan-in inverter + 1 PO inverter} into
  // {2 fan-in inverters}... same cost here, but never more.
  const auto opt = count_components(net, true);
  const auto raw = count_components(net, false);
  EXPECT_LE(opt.inverters, raw.inverters);
}

TEST(metrics, area_formula_swd) {
  const auto net = tiny_example();
  const auto m = compute_metrics(net, technology::swd(), false);
  const auto inv_count = static_cast<double>(m.components.inverters);
  // area = cell_area x (1 MAJ x 5 + inverters x 2)
  EXPECT_DOUBLE_EQ(m.area_um2, 0.002304 * (5.0 + 2.0 * inv_count));
}

TEST(metrics, energy_includes_swd_sense_amplifiers) {
  const auto net = tiny_example();
  auto tech = technology::swd();
  const auto m = compute_metrics(net, tech, false);
  const double gate_energy =
      tech.cell_energy_fj * (3.0 + 1.0 * static_cast<double>(m.components.inverters));
  EXPECT_DOUBLE_EQ(m.energy_per_op_fj, gate_energy + tech.sense_amp_energy_fj * 1.0);
}

TEST(metrics, latency_and_throughput_non_pipelined) {
  const auto net = gen::ripple_adder_circuit(6);  // depth 7 (6 FAs + msb sum)
  const auto m = compute_metrics(net, technology::swd(), false);
  const double depth = m.depth;
  EXPECT_DOUBLE_EQ(m.latency_ns, depth * 0.42);
  EXPECT_DOUBLE_EQ(m.throughput_mops, 1e3 / (depth * 0.42));
  EXPECT_EQ(m.waves_in_flight, 1u);
}

TEST(metrics, depth_zero_network_still_has_one_wave_in_flight) {
  // PI-to-PO wires have depth 0; like the latency_ns fallback, the wave
  // count must clamp to the one wave physically traversing the circuit.
  mig_network net;
  const signal a = net.create_pi();
  net.create_po(a, "f");
  const auto tech = technology::swd();
  const auto m = compute_metrics(net, tech, /*wave_pipelined=*/true, 3);
  EXPECT_EQ(m.depth, 0u);
  EXPECT_EQ(m.waves_in_flight, 1u);
  EXPECT_DOUBLE_EQ(m.latency_ns, tech.phase_delay_ns);
}

TEST(metrics, throughput_wave_pipelined_is_depth_independent) {
  const auto shallow = gen::ripple_adder_circuit(4);
  const auto deep = gen::ripple_adder_circuit(32);
  const auto ms = compute_metrics(shallow, technology::swd(), true);
  const auto md = compute_metrics(deep, technology::swd(), true);
  EXPECT_DOUBLE_EQ(ms.throughput_mops, md.throughput_mops);
  EXPECT_NEAR(ms.throughput_mops, 793.65, 0.01);
  EXPECT_GT(md.waves_in_flight, ms.waves_in_flight);
}

TEST(metrics, paper_power_model_divides_energy_by_latency) {
  const auto net = tiny_example();
  const auto m = compute_metrics(net, technology::nml(), false);
  EXPECT_DOUBLE_EQ(m.power_uw, m.energy_per_op_fj / m.latency_ns);
  // Steady state: energy x throughput.
  EXPECT_DOUBLE_EQ(m.power_steady_state_uw, m.energy_per_op_fj * m.throughput_mops * 1e-3);
}

TEST(metrics, nml_power_magnitude_sanity) {
  // A SASC-sized controller on NML lands in Table II's 1e-3..1e-1 uW range.
  const auto net = gen::ripple_adder_circuit(32);
  const auto m = compute_metrics(net, technology::nml(), false);
  EXPECT_GT(m.power_uw, 1e-4);
  EXPECT_LT(m.power_uw, 1.0);
}

TEST(metrics, swd_tp_gain_equals_wp_depth_over_three) {
  // Table II regularity: with sense-amp-dominated SWD energy, the T/P gain
  // is exactly d_wp / 3 (e.g. SASC: depth 9 -> 3.00, MUL64: 135 -> 45.00).
  const auto net = gen::multiplier_circuit(6);
  const auto piped = wave_pipeline(net);
  const auto cmp = compare_metrics(net, piped.net, technology::swd());
  const double expected = static_cast<double>(piped.depth_after) / 3.0;
  EXPECT_NEAR(cmp.tp_gain, expected, expected * 0.02);
}

TEST(metrics, gains_are_ratios_of_ratios) {
  const auto net = gen::multiplier_circuit(5);
  const auto piped = wave_pipeline(net);
  for (const auto& tech : {technology::swd(), technology::qca(), technology::nml()}) {
    const auto cmp = compare_metrics(net, piped.net, tech);
    EXPECT_DOUBLE_EQ(cmp.ta_gain, cmp.pipelined.throughput_per_area() /
                                      cmp.original.throughput_per_area())
        << tech.name;
    EXPECT_DOUBLE_EQ(cmp.tp_gain, cmp.pipelined.throughput_per_power() /
                                      cmp.original.throughput_per_power())
        << tech.name;
    // Note: T/A below 1 is possible for shallow circuits on NML (the paper's
    // own Table II shows SASC NML T/A = 0.76), so only positivity is
    // universal here; the paper_regression suite checks the averaged gains.
    EXPECT_GT(cmp.ta_gain, 0.0) << tech.name;
    EXPECT_GT(cmp.tp_gain, 0.0) << tech.name;
  }
}

TEST(metrics, deeper_circuits_gain_more) {
  // Table II trend: T/P gains grow with depth (SASC 3.00 ... DIFFEQ1 94.00).
  const auto small = gen::multiplier_circuit(4);
  const auto big = gen::multiplier_circuit(8);
  const auto ps = wave_pipeline(small);
  const auto pb = wave_pipeline(big);
  const auto cs = compare_metrics(small, ps.net, technology::swd());
  const auto cb = compare_metrics(big, pb.net, technology::swd());
  EXPECT_GT(cb.tp_gain, cs.tp_gain);
}

TEST(metrics, degenerate_depth_zero_circuit) {
  mig_network net;
  const signal a = net.create_pi();
  net.create_po(a, "wire");
  const auto m = compute_metrics(net, technology::swd(), false);
  EXPECT_GT(m.latency_ns, 0.0);  // clamped to one phase
  EXPECT_GT(m.throughput_mops, 0.0);
}

}  // namespace
}  // namespace wavemig
