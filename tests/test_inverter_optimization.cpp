#include "wavemig/inverter_optimization.hpp"

#include <gtest/gtest.h>

#include "wavemig/gen/arith.hpp"
#include "wavemig/gen/random_mig.hpp"
#include "wavemig/simulation.hpp"

namespace wavemig {
namespace {

TEST(inverter_count, counts_complemented_nonconstant_edges) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal m = net.create_maj(!a, b, c);  // one complemented fan-in
  net.create_po(!m, "f");                     // one complemented PO edge
  EXPECT_EQ(count_inverters(net), 2u);
}

TEST(inverter_count, complemented_constants_are_free) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal g = net.create_or(a, b);  // M(a, b, 1): constant-1 edge
  net.create_po(g);
  EXPECT_EQ(count_inverters(net), 0u);
}

TEST(inverter_opt, flip_removes_majority_of_inverters) {
  // m = M(a, b, !c) feeds four complemented consumers: 1 + 4 = 5 inverters.
  // Flipping m costs its two regular fan-in edges but clears the
  // complemented fan-in and all four output inverters (gain 3).
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal d = net.create_pi();
  const signal m = net.create_maj(a, b, !c);
  ASSERT_FALSE(m.is_complemented());  // stored with a single complemented fan-in
  net.create_po(net.create_maj(!m, a, d), "f");
  net.create_po(net.create_maj(!m, b, d), "g");
  net.create_po(net.create_maj(!m, c, d), "h");
  net.create_po(!m, "i");

  const std::size_t before = count_inverters(net);
  EXPECT_EQ(before, 5u);
  const auto assignment = optimize_inverters(net);
  EXPECT_LT(assignment.inverter_count, before);
  EXPECT_TRUE(assignment.flip[m.index()]);
}

TEST(inverter_opt, never_worse_than_baseline) {
  for (std::uint64_t seed : {31ull, 32ull, 33ull, 34ull, 35ull}) {
    const auto net = gen::random_mig({16, 500, 0.4, 16, seed});
    const std::size_t before = count_inverters(net);
    const auto assignment = optimize_inverters(net);
    EXPECT_LE(assignment.inverter_count, before) << "seed " << seed;
    EXPECT_EQ(assignment.inverter_count, count_inverters(net, assignment.flip));
  }
}

TEST(inverter_opt, flips_preserve_function_by_self_duality) {
  // A flipped network must stay functionally identical when read through the
  // compensated edges: verify by materializing the flips into a new network.
  const auto net = gen::multiplier_circuit(4);
  const auto assignment = optimize_inverters(net);

  // Rebuild with flips applied: node n' realizes !n via M(!a,!b,!c); every
  // edge complement is compensated with the flips of both endpoints.
  mig_network flipped;
  std::vector<signal> map(net.num_nodes(), constant0);
  net.foreach_node([&](node_index n) {
    auto mapped = [&](signal s) {
      const bool edge_inverter = s.is_complemented() ^
                                 (!net.is_constant(s.index()) && assignment.flip[s.index()]) ^
                                 assignment.flip[n];
      return map[s.index()].complement_if(edge_inverter);
    };
    switch (net.kind(n)) {
      case node_kind::primary_input:
        map[n] = flipped.create_pi(net.pi_name(net.pi_position(n)));
        break;
      case node_kind::majority: {
        const auto fis = net.fanins(n);
        // With flip[n], all fan-in edges were already toggled via `mapped`,
        // so the raw majority realizes the complement of the original node.
        map[n] = flipped.create_maj(mapped(fis[0]), mapped(fis[1]), mapped(fis[2]));
        break;
      }
      default:
        break;
    }
  });
  for (const auto& po : net.pos()) {
    const signal driver = po.driver;
    // PO edge inverter = complement attribute ^ flip of the driver.
    const bool edge_inverter =
        driver.is_complemented() ^
        (!net.is_constant(driver.index()) && assignment.flip[driver.index()]);
    flipped.create_po(map[driver.index()].complement_if(edge_inverter), po.name);
  }
  EXPECT_TRUE(functionally_equivalent(net, flipped));
}

TEST(inverter_opt, parity_benchmark_drops_no_function) {
  const auto net = gen::parity_circuit(16);
  const auto assignment = optimize_inverters(net);
  EXPECT_LE(assignment.inverter_count, count_inverters(net));
}

TEST(inverter_opt, deterministic) {
  const auto net = gen::random_mig({12, 300, 0.5, 12, 77});
  const auto a = optimize_inverters(net);
  const auto b = optimize_inverters(net);
  EXPECT_EQ(a.inverter_count, b.inverter_count);
  EXPECT_EQ(a.flip, b.flip);
}

}  // namespace
}  // namespace wavemig
