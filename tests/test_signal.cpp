#include "wavemig/signal.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace wavemig {
namespace {

TEST(signal, default_is_constant0) {
  const signal s;
  EXPECT_EQ(s.index(), 0u);
  EXPECT_FALSE(s.is_complemented());
  EXPECT_EQ(s, constant0);
}

TEST(signal, packs_index_and_complement) {
  const signal s{42, true};
  EXPECT_EQ(s.index(), 42u);
  EXPECT_TRUE(s.is_complemented());
  EXPECT_EQ(s.raw(), (42u << 1) | 1u);
}

TEST(signal, complement_is_involution) {
  const signal s{7, false};
  EXPECT_NE(s, !s);
  EXPECT_EQ(s, !!s);
  EXPECT_EQ((!s).index(), s.index());
  EXPECT_TRUE((!s).is_complemented());
}

TEST(signal, constants_are_complements_of_each_other) {
  EXPECT_EQ(!constant0, constant1);
  EXPECT_EQ(!constant1, constant0);
  EXPECT_EQ(constant0.index(), constant1.index());
}

TEST(signal, without_complement_clears_attribute) {
  EXPECT_EQ(signal(9, true).without_complement(), signal(9, false));
  EXPECT_EQ(signal(9, false).without_complement(), signal(9, false));
}

TEST(signal, complement_if_conditionally_toggles) {
  const signal s{3, false};
  EXPECT_EQ(s.complement_if(false), s);
  EXPECT_EQ(s.complement_if(true), !s);
  EXPECT_EQ((!s).complement_if(true), s);
}

TEST(signal, ordering_is_total_and_deterministic) {
  const signal a{1, false};
  const signal b{1, true};
  const signal c{2, false};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);

  std::set<signal> ordered{c, a, b};
  EXPECT_EQ(ordered.size(), 3u);
  EXPECT_EQ(*ordered.begin(), a);
}

TEST(signal, hashable_in_unordered_containers) {
  std::unordered_set<signal> set;
  set.insert(signal{5, false});
  set.insert(signal{5, true});
  set.insert(signal{5, false});
  EXPECT_EQ(set.size(), 2u);
}

TEST(signal, from_raw_round_trips) {
  const signal s{123456, true};
  EXPECT_EQ(signal::from_raw(s.raw()), s);
}

}  // namespace
}  // namespace wavemig
