#include "wavemig/wave_schedule.hpp"

#include <gtest/gtest.h>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/gen/arith.hpp"

namespace wavemig {
namespace {

TEST(wave_schedule, single_gate_is_ready) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  net.create_po(net.create_maj(a, b, c));
  const auto r = check_wave_readiness(net);
  EXPECT_TRUE(r.ready);
  EXPECT_EQ(r.violating_edges, 0u);
  EXPECT_TRUE(r.outputs_aligned);
  EXPECT_EQ(r.depth, 1u);
}

TEST(wave_schedule, detects_level_jumping_edge) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal g1 = net.create_maj(a, b, c);
  const signal g2 = net.create_maj(g1, a, !b);  // a and b jump a level
  net.create_po(g2);
  const auto r = check_wave_readiness(net);
  EXPECT_FALSE(r.ready);
  EXPECT_EQ(r.violating_edges, 2u);
  EXPECT_FALSE(r.issues.empty());
}

TEST(wave_schedule, detects_misaligned_outputs) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal g1 = net.create_maj(a, b, c);
  const signal g2 = net.create_maj(g1, net.create_buffer(a), net.create_buffer(b));
  net.create_po(g1, "shallow");
  net.create_po(g2, "deep");
  const auto r = check_wave_readiness(net);
  EXPECT_EQ(r.violating_edges, 0u);
  EXPECT_FALSE(r.outputs_aligned);
  EXPECT_FALSE(r.ready);
}

TEST(wave_schedule, constant_edges_are_exempt) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  // AND/OR gates at various levels all consume constants; none violate.
  const signal g1 = net.create_and(a, b);
  const signal g2 = net.create_or(g1, net.create_buffer(a));
  net.create_po(g2);
  net.create_po(constant0, "zero");
  const auto r = check_wave_readiness(net);
  EXPECT_TRUE(r.ready);
}

TEST(wave_schedule, balanced_multiplier_passes) {
  const auto net = gen::multiplier_circuit(5);
  EXPECT_FALSE(check_wave_readiness(net).ready);  // raw multiplier is skewed
  const auto balanced = insert_buffers(net);
  EXPECT_TRUE(check_wave_readiness(balanced.net).ready);
}

TEST(wave_schedule, issue_list_is_bounded) {
  // Hundreds of violations must not produce hundreds of strings.
  const auto net = gen::multiplier_circuit(8);
  const auto r = check_wave_readiness(net);
  EXPECT_GT(r.violating_edges, 8u);
  EXPECT_LE(r.issues.size(), 8u);
}

}  // namespace
}  // namespace wavemig
