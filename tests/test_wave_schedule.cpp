#include "wavemig/wave_schedule.hpp"

#include <gtest/gtest.h>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/gen/arith.hpp"

namespace wavemig {
namespace {

TEST(wave_schedule, single_gate_is_ready) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  net.create_po(net.create_maj(a, b, c));
  const auto r = check_wave_readiness(net);
  EXPECT_TRUE(r.ready);
  EXPECT_EQ(r.violating_edges, 0u);
  EXPECT_TRUE(r.outputs_aligned);
  EXPECT_EQ(r.depth, 1u);
}

TEST(wave_schedule, detects_level_jumping_edge) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal g1 = net.create_maj(a, b, c);
  const signal g2 = net.create_maj(g1, a, !b);  // a and b jump a level
  net.create_po(g2);
  const auto r = check_wave_readiness(net);
  EXPECT_FALSE(r.ready);
  EXPECT_EQ(r.violating_edges, 2u);
  EXPECT_FALSE(r.issues.empty());
}

TEST(wave_schedule, backward_edges_report_without_unsigned_wraparound) {
  // A hand-crafted schedule with a backward edge and a level-equal edge:
  // the diagnostics must call them out as non-advancing instead of printing
  // a wrapped-around span like 4294967295.
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal g1 = net.create_maj(a, b, c);
  const signal g2 = net.create_maj(g1, a, b);
  net.create_po(g2);

  level_map schedule;
  schedule.level.assign(net.num_nodes(), 0);
  schedule.level[g1.index()] = 3;  // g1 scheduled above g2: backward edge
  schedule.level[g2.index()] = 1;
  schedule.depth = 3;

  const auto r = check_wave_readiness(net, schedule, 0);
  EXPECT_FALSE(r.ready);
  EXPECT_GE(r.violating_edges, 1u);
  for (const auto& issue : r.issues) {
    EXPECT_EQ(issue.find("4294967295"), std::string::npos) << issue;
    EXPECT_EQ(issue.find("spans 0"), std::string::npos) << issue;
  }
  bool backward_reported = false;
  for (const auto& issue : r.issues) {
    if (issue.find("does not advance") != std::string::npos) {
      backward_reported = true;
    }
  }
  EXPECT_TRUE(backward_reported);

  // A level-equal edge (span 0) is also "does not advance", not "spans 0".
  schedule.level[g1.index()] = 1;
  const auto equal = check_wave_readiness(net, schedule, 0);
  EXPECT_FALSE(equal.ready);
  bool equal_reported = false;
  for (const auto& issue : equal.issues) {
    EXPECT_EQ(issue.find("spans"), std::string::npos) << issue;
    if (issue.find("does not advance") != std::string::npos) {
      equal_reported = true;
    }
  }
  EXPECT_TRUE(equal_reported);
}

TEST(wave_schedule, detects_misaligned_outputs) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal g1 = net.create_maj(a, b, c);
  const signal g2 = net.create_maj(g1, net.create_buffer(a), net.create_buffer(b));
  net.create_po(g1, "shallow");
  net.create_po(g2, "deep");
  const auto r = check_wave_readiness(net);
  EXPECT_EQ(r.violating_edges, 0u);
  EXPECT_FALSE(r.outputs_aligned);
  EXPECT_FALSE(r.ready);
}

TEST(wave_schedule, constant_edges_are_exempt) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  // AND/OR gates at various levels all consume constants; none violate.
  const signal g1 = net.create_and(a, b);
  const signal g2 = net.create_or(g1, net.create_buffer(a));
  net.create_po(g2);
  net.create_po(constant0, "zero");
  const auto r = check_wave_readiness(net);
  EXPECT_TRUE(r.ready);
}

TEST(wave_schedule, balanced_multiplier_passes) {
  const auto net = gen::multiplier_circuit(5);
  EXPECT_FALSE(check_wave_readiness(net).ready);  // raw multiplier is skewed
  const auto balanced = insert_buffers(net);
  EXPECT_TRUE(check_wave_readiness(balanced.net).ready);
}

TEST(wave_schedule, issue_list_is_bounded) {
  // Hundreds of violations must not produce hundreds of strings.
  const auto net = gen::multiplier_circuit(8);
  const auto r = check_wave_readiness(net);
  EXPECT_GT(r.violating_edges, 8u);
  EXPECT_LE(r.issues.size(), 8u);
}

}  // namespace
}  // namespace wavemig
