#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/gen/suite.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/simulation.hpp"
#include "wavemig/wave_schedule.hpp"

namespace wavemig {
namespace {

/// Property sweep: for a spread of suite benchmarks and all strategies,
/// buffer insertion must (a) balance every edge, (b) align outputs,
/// (c) preserve the function, (d) never change depth, and (e) respect the
/// strategy ordering naive >= chain = tree(inf).
class buffer_property_test
    : public ::testing::TestWithParam<std::tuple<std::string, buffer_strategy>> {};

TEST_P(buffer_property_test, invariants_hold) {
  const auto& [name, strategy] = GetParam();
  const auto net = gen::build_benchmark(name);

  buffer_insertion_options opts;
  opts.strategy = strategy;
  const auto result = insert_buffers(net, opts);

  const auto readiness = check_wave_readiness(result.net);
  EXPECT_TRUE(readiness.ready) << (readiness.issues.empty() ? "" : readiness.issues.front());
  EXPECT_EQ(result.depth_after, result.depth_before);
  EXPECT_TRUE(functionally_equivalent(net, result.net, 4));
  EXPECT_EQ(result.net.num_majorities(), net.num_majorities());
  EXPECT_EQ(result.net.num_pis(), net.num_pis());
  EXPECT_EQ(result.net.num_pos(), net.num_pos());
}

INSTANTIATE_TEST_SUITE_P(
    suite_sweep, buffer_property_test,
    ::testing::Combine(::testing::Values("sasc", "mul8", "adder32", "hamming_codec", "barrel64",
                                         "crc32_8", "voter101", "int2float16", "fsm_small",
                                         "priority64"),
                       ::testing::Values(buffer_strategy::naive, buffer_strategy::chain,
                                         buffer_strategy::tree)),
    [](const auto& info) {
      const buffer_strategy s = std::get<1>(info.param);
      const char* tag = s == buffer_strategy::naive   ? "naive"
                        : s == buffer_strategy::chain ? "chain"
                                                      : "tree";
      return std::get<0>(info.param) + "_" + tag;
    });

class buffer_ordering_test : public ::testing::TestWithParam<std::string> {};

TEST_P(buffer_ordering_test, sharing_never_loses_to_naive) {
  const auto net = gen::build_benchmark(GetParam());

  buffer_insertion_options naive_opts;
  naive_opts.strategy = buffer_strategy::naive;
  buffer_insertion_options chain_opts;
  chain_opts.strategy = buffer_strategy::chain;
  buffer_insertion_options tree_opts;
  tree_opts.strategy = buffer_strategy::tree;

  const auto naive = insert_buffers(net, naive_opts);
  const auto chain = insert_buffers(net, chain_opts);
  const auto tree = insert_buffers(net, tree_opts);

  EXPECT_LE(chain.buffers_added, naive.buffers_added);
  EXPECT_EQ(chain.buffers_added, tree.buffers_added);
}

INSTANTIATE_TEST_SUITE_P(suite_sweep, buffer_ordering_test,
                         ::testing::Values("sasc", "mul8", "mul16", "adder32", "dec8", "max32x4",
                                           "parity64", "cmp128"),
                         [](const auto& info) { return info.param; });

class buffer_limit_test : public ::testing::TestWithParam<unsigned> {};

/// Synthetic stress: one PI feeding `limit` consumers that all sit at level
/// 3. The shared chain then carries `limit` taps on one vertex — exactly at
/// capacity — and the tree construction must not exceed it anywhere.
TEST_P(buffer_limit_test, capacity_never_exceeded_on_chain_taps) {
  const unsigned limit = GetParam();
  mig_network net;
  const signal u = net.create_pi("u");
  for (unsigned i = 0; i < limit; ++i) {
    // Each consumer group uses fully private PIs so that u is the only
    // multi-fan-out driver (degree exactly `limit`).
    const signal t1 = net.create_maj(net.create_pi(), net.create_pi(), net.create_pi());
    const signal t2 = net.create_maj(t1, net.create_pi(), net.create_pi());
    net.create_po(net.create_maj(u, t2, net.create_pi()), "o" + std::to_string(i));
  }
  ASSERT_LE(max_fanout_degree(net), limit);

  buffer_insertion_options opts;
  opts.strategy = buffer_strategy::tree;
  opts.fanout_limit = limit;
  const auto result = insert_buffers(net, opts);
  EXPECT_LE(max_fanout_degree(result.net), limit);
  EXPECT_TRUE(check_wave_readiness(result.net).ready);
  EXPECT_TRUE(functionally_equivalent(net, result.net));
}

INSTANTIATE_TEST_SUITE_P(limits, buffer_limit_test, ::testing::Values(2u, 3u, 4u, 5u),
                         [](const auto& info) { return "limit" + std::to_string(info.param); });

}  // namespace
}  // namespace wavemig
