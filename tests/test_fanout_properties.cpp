#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "wavemig/fanout_restriction.hpp"
#include "wavemig/gen/suite.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/simulation.hpp"

namespace wavemig {
namespace {

/// Sweep: fan-out restriction at every limit over a suite slice must keep
/// (a) the native-single-output discipline, (b) functional equivalence,
/// (c) monotone depth, and (d) the exact minimum-FOG formula per driver.
class fanout_property_test
    : public ::testing::TestWithParam<std::tuple<std::string, unsigned>> {};

TEST_P(fanout_property_test, invariants_hold) {
  const auto& [name, limit] = GetParam();
  const auto net = gen::build_benchmark(name);
  const auto result = restrict_fanout(net, {limit, true});

  // (a) degree discipline
  const auto fo = compute_fanouts(result.net);
  result.net.foreach_node([&](node_index n) {
    if (result.net.is_constant(n)) {
      return;
    }
    if (result.net.is_fanout_gate(n)) {
      EXPECT_LE(fo.degree(n), limit);
    } else {
      EXPECT_LE(fo.degree(n), 1u);
    }
  });

  // (b) function preserved
  EXPECT_TRUE(functionally_equivalent(net, result.net, 4));

  // (c) depth monotone
  EXPECT_GE(result.depth_after, result.depth_before);

  // (d) exact FOG count: sum over drivers of ceil((m-1)/(k-1)).
  const auto original_fo = compute_fanouts(net);
  std::size_t expected = 0;
  net.foreach_node([&](node_index n) {
    if (net.is_constant(n)) {
      return;
    }
    const std::size_t m = original_fo.degree(n);
    if (m >= 2) {
      expected += (m - 1 + limit - 2) / (limit - 1);
    }
  });
  EXPECT_EQ(result.fogs_added, expected);
}

INSTANTIATE_TEST_SUITE_P(
    suite_sweep, fanout_property_test,
    ::testing::Combine(::testing::Values("sasc", "mul8", "adder32", "crc32_8", "barrel64",
                                         "int2float16", "hamming_codec", "dec8"),
                       ::testing::Values(2u, 3u, 4u, 5u)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_k" + std::to_string(std::get<1>(info.param));
    });

class fanout_cp_growth_test : public ::testing::TestWithParam<std::string> {};

TEST_P(fanout_cp_growth_test, tighter_limits_grow_critical_paths_more) {
  const auto net = gen::build_benchmark(GetParam());
  std::uint32_t previous = std::numeric_limits<std::uint32_t>::max();
  for (unsigned k : {2u, 3u, 4u, 5u}) {
    const auto result = restrict_fanout(net, {k, true});
    EXPECT_LE(result.depth_after, previous) << "k=" << k;
    previous = result.depth_after;
  }
}

INSTANTIATE_TEST_SUITE_P(suite_sweep, fanout_cp_growth_test,
                         ::testing::Values("sasc", "mul8", "mul16", "parity64", "max32x4"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace wavemig
