#include "wavemig/wave_simulator.hpp"

#include <gtest/gtest.h>

#include <random>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/gen/arith.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/simulation.hpp"
#include "wavemig/wave_schedule.hpp"

namespace wavemig {
namespace {

std::vector<std::vector<bool>> random_waves(std::size_t count, std::size_t pis,
                                            std::uint64_t seed) {
  std::mt19937_64 rng{seed};
  std::vector<std::vector<bool>> waves(count, std::vector<bool>(pis));
  for (auto& wave : waves) {
    for (std::size_t i = 0; i < pis; ++i) {
      wave[i] = (rng() & 1u) != 0;
    }
  }
  return waves;
}

/// Reference: combinational evaluation wave by wave.
std::vector<std::vector<bool>> reference_outputs(const mig_network& net,
                                                 const std::vector<std::vector<bool>>& waves) {
  std::vector<std::vector<bool>> ref;
  ref.reserve(waves.size());
  for (const auto& wave : waves) {
    ref.push_back(simulate_pattern(net, wave));
  }
  return ref;
}

TEST(wave_simulator, balanced_network_streams_waves_correctly) {
  const auto net = gen::ripple_adder_circuit(6);
  const auto balanced = insert_buffers(net).net;
  ASSERT_TRUE(check_wave_readiness(balanced).ready);

  const auto waves = random_waves(20, balanced.num_pis(), 17);
  const auto run = run_waves(balanced, waves, 3);
  EXPECT_EQ(run.outputs, reference_outputs(balanced, waves));
}

TEST(wave_simulator, pipeline_overlaps_waves) {
  const auto net = gen::multiplier_circuit(4);
  const auto balanced = insert_buffers(net).net;
  const auto depth = compute_levels(balanced).depth;

  const auto waves = random_waves(10, balanced.num_pis(), 23);
  const auto run = run_waves(balanced, waves, 3);
  EXPECT_EQ(run.initiation_interval, 3u);
  EXPECT_EQ(run.waves_in_flight, (depth + 2) / 3);
  EXPECT_GT(run.waves_in_flight, 1u) << "multiplier depth must allow overlap";
  // Total ticks ~ (W-1)*phases + depth, far less than W*depth (sequential).
  EXPECT_LT(run.ticks, static_cast<std::uint64_t>(10) * depth);
  EXPECT_EQ(run.outputs, reference_outputs(balanced, waves));
}

TEST(wave_simulator, unbalanced_network_corrupts_waves) {
  // Path-length difference of 3+ levels between reconvergent paths makes
  // adjacent waves interfere (§II-C): compare against the combinational
  // reference with distinct waves.
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  signal deep = net.create_maj(a, b, c);
  for (int i = 0; i < 4; ++i) {
    deep = net.create_maj(deep, b, !c);
  }
  const signal out = net.create_maj(deep, a, b);  // short path a jumps 5 levels
  net.create_po(out);
  ASSERT_FALSE(check_wave_readiness(net).ready);

  // Alternating all-zero / all-one waves maximize interference.
  std::vector<std::vector<bool>> waves;
  for (int w = 0; w < 8; ++w) {
    waves.emplace_back(3, w % 2 == 1);
  }
  const auto run = run_waves(net, waves, 3);
  EXPECT_NE(run.outputs, reference_outputs(net, waves))
      << "unbalanced netlist must show wave interference";
}

TEST(wave_simulator, buffer_insertion_fixes_the_same_network) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  signal deep = net.create_maj(a, b, c);
  for (int i = 0; i < 4; ++i) {
    deep = net.create_maj(deep, b, !c);
  }
  net.create_po(net.create_maj(deep, a, b));

  const auto balanced = insert_buffers(net).net;
  std::vector<std::vector<bool>> waves;
  for (int w = 0; w < 8; ++w) {
    waves.emplace_back(3, w % 2 == 1);
  }
  const auto run = run_waves(balanced, waves, 3);
  EXPECT_EQ(run.outputs, reference_outputs(balanced, waves));
}

TEST(wave_simulator, latency_matches_depth) {
  const auto net = gen::ripple_adder_circuit(5);
  const auto balanced = insert_buffers(net).net;
  const auto depth = compute_levels(balanced).depth;
  const auto run = run_waves(balanced, random_waves(1, balanced.num_pis(), 5), 3);
  EXPECT_EQ(run.latency_ticks, depth);
  EXPECT_EQ(run.ticks, depth);  // single wave: exactly depth ticks
}

TEST(wave_simulator, more_phases_tolerate_wider_spacing) {
  // With phases >= depth there is never more than one wave in flight.
  const auto net = gen::ripple_adder_circuit(4);
  const auto balanced = insert_buffers(net).net;
  const auto depth = compute_levels(balanced).depth;
  const auto waves = random_waves(6, balanced.num_pis(), 31);
  const auto run = run_waves(balanced, waves, depth);
  EXPECT_EQ(run.waves_in_flight, 1u);
  EXPECT_EQ(run.outputs, reference_outputs(balanced, waves));
}

TEST(wave_simulator, constant_outputs_replicate_per_wave) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  net.create_po(net.create_maj(a, b, c), "logic");
  net.create_po(constant1, "one");
  const auto waves = random_waves(4, 3, 41);
  const auto run = run_waves(net, waves, 3);
  for (const auto& out : run.outputs) {
    EXPECT_TRUE(out[1]);
  }
}

TEST(wave_simulator, validates_inputs) {
  mig_network net;
  net.create_pi();
  net.create_po(constant0);
  EXPECT_THROW(run_waves(net, {{true, false}}, 3), std::invalid_argument);
  EXPECT_THROW(run_waves(net, {{true}}, 0), std::invalid_argument);
}

TEST(wave_simulator, empty_wave_list_is_noop) {
  mig_network net;
  const signal a = net.create_pi();
  net.create_po(a);
  const auto run = run_waves(net, {}, 3);
  EXPECT_TRUE(run.outputs.empty());
  EXPECT_EQ(run.ticks, 0u);
}

}  // namespace
}  // namespace wavemig
