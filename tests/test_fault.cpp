// Chaos suite for the fault-injection layer (wavemig/fault) and the
// resilience features it exists to exercise: client retry/backoff with
// reconnect + re-send, the server watchdog, and priority load shedding.
// Every test pins an exact outcome under an injected fault — a retried
// response bit-identical to in-process submit_packed, an exact wire
// status, shed-before-execute ordering — never "it eventually worked".
//
// Shared-process caveat: socket sites fire in whichever thread (client or
// server) hits them first, so the pinned outcomes below are written to
// hold for either side. The suite runs in the chaos ctest label, under
// ASan/UBSan with a randomized-but-logged WAVEMIG_FAULT_SEED, and in the
// TSan shard.

#include "wavemig/fault/fault_injection.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "wavemig/engine/parallel_executor.hpp"
#include "wavemig/engine/serving.hpp"
#include "wavemig/engine/wave_engine.hpp"
#include "wavemig/gen/arith.hpp"
#include "wavemig/gen/random_mig.hpp"
#include "wavemig/io/mig_format.hpp"
#include "wavemig/net/client.hpp"
#include "wavemig/net/server.hpp"

namespace wavemig {
namespace {

std::vector<std::uint64_t> random_planes(std::size_t num_pis, std::size_t num_waves,
                                         std::uint64_t seed) {
  const std::size_t chunks = (num_waves + 63) / 64;
  std::mt19937_64 rng{seed};
  std::vector<std::uint64_t> words(num_pis * chunks);
  for (auto& word : words) {
    word = rng();
  }
  if (const std::size_t tail = num_waves % 64; tail != 0) {
    const std::uint64_t mask = (std::uint64_t{1} << tail) - 1;
    for (std::size_t p = 0; p < num_pis; ++p) {
      words[(p + 1) * chunks - 1] &= mask;
    }
  }
  return words;
}

struct loopback_stack {
  explicit loopback_stack(unsigned workers = 2, unsigned dispatchers = 1,
                          net::server_options options = {})
      : executor{workers},
        serving{executor, {}, {}, dispatchers},
        server{serving, options} {}

  engine::parallel_executor executor;
  engine::serving_session serving;
  net::wire_server server;
};

net::run_request make_run(std::uint64_t fingerprint, const mig_network& net,
                          std::size_t num_waves, unsigned phases,
                          std::vector<std::uint64_t> payload) {
  net::run_request req;
  req.fingerprint = fingerprint;
  req.num_pis = static_cast<std::uint32_t>(net.num_pis());
  req.num_waves = num_waves;
  req.phases = phases;
  req.payload = std::move(payload);
  return req;
}

/// Every test disarms on the way out so a failing assertion can never leak
/// an armed site into the next test. The seed is logged once so a
/// randomized chaos run that fails reproduces from its log.
class fault_suite : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    std::printf("[chaos] WAVEMIG_FAULT_SEED in effect: %llu\n",
                static_cast<unsigned long long>(fault::seed()));
  }
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

// --------------------------------------------------------- the registry ---

// The registry itself is testable without the compiled-in macro: hit() is a
// plain function. Triggers: every_nth gates eligibility, probability draws,
// one_shot disarms after the first firing, counters survive disarming.
TEST_F(fault_suite, registry_triggers_count_and_disarm_exactly) {
  fault::fault_config nth;
  nth.every_nth = 3;
  fault::arm("reg.test.nth", nth);
  int fired = 0;
  for (int i = 0; i < 9; ++i) {
    fired += fault::hit("reg.test.nth").fired ? 1 : 0;
  }
  EXPECT_EQ(fired, 3);  // hits 3, 6, 9
  EXPECT_EQ(fault::hit_count("reg.test.nth"), 9u);
  EXPECT_EQ(fault::fire_count("reg.test.nth"), 3u);

  fault::fault_config once;
  once.one_shot = true;
  once.action = fault::fault_action::partial_io;
  once.max_bytes = 7;
  fault::arm("reg.test.once", once);
  const auto first = fault::hit("reg.test.once");
  EXPECT_TRUE(first.fired);
  EXPECT_EQ(first.action, fault::fault_action::partial_io);
  EXPECT_EQ(first.max_bytes, 7u);
  EXPECT_FALSE(fault::hit("reg.test.once").fired);  // disarmed itself
  EXPECT_EQ(fault::fire_count("reg.test.once"), 1u);

  fault::fault_config never;
  never.probability = 0.0;
  fault::arm("reg.test.never", never);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(fault::hit("reg.test.never").fired);
  }
  EXPECT_EQ(fault::fire_count("reg.test.never"), 0u);

  EXPECT_EQ(fault::armed_sites().size(), 2u);  // nth + never; once disarmed
  fault::disarm_all();
  EXPECT_TRUE(fault::armed_sites().empty());
  // A disarmed site neither counts hits nor fires.
  EXPECT_FALSE(fault::hit("reg.test.nth").fired);
  EXPECT_EQ(fault::hit_count("reg.test.nth"), 9u);
}

#if !defined(WAVEMIG_FAULT_INJECTION)

TEST_F(fault_suite, chaos_suite_requires_compiled_in_sites) {
  GTEST_SKIP() << "built with -DWAVEMIG_ENABLE_FAULT_INJECTION=OFF; "
                  "the site-driven chaos tests need the sites compiled in";
}

#else  // the rest of the suite drives the compiled-in sites

// ------------------------------------------------- client retry/backoff ---

// A one-shot reader-thread death mid-connection: the first request answers
// normally (the reader was already parked in read_exact when the site
// armed), the second finds the connection torn down, and the retry policy
// reconnects + re-sends it — the retried response is bit-identical to
// in-process submit_packed.
TEST_F(fault_suite, client_retry_survives_server_reader_death) {
  loopback_stack stack{2, 1};
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  const std::size_t waves = 130;
  const auto words = random_planes(net->num_pis(), waves, 11);
  const auto want = stack.serving.submit_packed(net, words, waves, 3).get();

  auto client = net::wire_client::connect(stack.server.port());
  const std::uint64_t fp = client.register_program(*net);
  net::retry_policy policy;
  policy.max_attempts = 4;
  policy.base_backoff = std::chrono::milliseconds{1};
  policy.max_backoff = std::chrono::milliseconds{20};
  client.set_retry_policy(policy);

  fault::fault_config die;
  die.one_shot = true;
  fault::arm("server.reader.die", die);

  const auto first = client.run(make_run(fp, *net, waves, 3, words));
  ASSERT_EQ(first.status, net::wire_status::ok);
  EXPECT_EQ(first.result.words, want.words);

  // Whichever request the reader died under (it usually answers the first —
  // the site check sits before the blocking read it was already parked in —
  // but either side of that race is fine), exactly one reconnect repaired
  // the connection and both responses stayed bit-identical.
  const auto second = client.run(make_run(fp, *net, waves, 3, words));
  ASSERT_EQ(second.status, net::wire_status::ok);
  EXPECT_EQ(second.result.words, want.words);
  EXPECT_EQ(second.result.ticks, want.ticks);
  EXPECT_EQ(client.stats().reconnects, 1u);
  EXPECT_GE(client.stats().resends, 1u);
  EXPECT_EQ(fault::fire_count("server.reader.die"), 1u);
}

// Exhausted retries surface the last socket error: with connects failing
// persistently, run() makes exactly max_attempts tries, then throws.
TEST_F(fault_suite, retry_exhaustion_throws_after_exact_attempts) {
  loopback_stack stack{2, 1};
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(3));
  auto client = net::wire_client::connect(stack.server.port());
  const std::uint64_t fp = client.register_program(*net);

  net::retry_policy policy;
  policy.max_attempts = 3;
  policy.base_backoff = std::chrono::milliseconds{1};
  client.set_retry_policy(policy);

  fault::arm("socket.connect.fail", {});  // every reconnect fails
  client.close();                         // attempt 1 dies on the dead socket

  const auto words = random_planes(net->num_pis(), 64, 3);
  EXPECT_THROW((void)client.run(make_run(fp, *net, 64, 3, words)), net::socket_error);
  // Attempt 1 used the dead socket; attempts 2 and 3 each dialed once.
  EXPECT_EQ(fault::fire_count("socket.connect.fail"), 2u);
  EXPECT_EQ(client.stats().reconnects, 0u);  // no dial ever succeeded
}

// ----------------------------------------------------------- watchdog ---

// A lost completion callback (the exact failure the watchdog exists for):
// the request's response never reaches the connection outbox, the watchdog
// answers watchdog_expired inside its bound, and — the leak check — the
// connection slot is released, so the next request serves normally.
TEST_F(fault_suite, watchdog_answers_lost_completions_without_leaking_the_slot) {
  net::server_options options;
  options.watchdog_bound = std::chrono::milliseconds{150};
  loopback_stack stack{2, 1, options};
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  const std::size_t waves = 64;
  const auto words = random_planes(net->num_pis(), waves, 21);
  const auto want = stack.serving.submit_packed(net, words, waves, 3).get();

  auto client = net::wire_client::connect(stack.server.port());
  const std::uint64_t fp = client.register_program(*net);

  fault::fault_config drop;
  drop.one_shot = true;
  fault::arm("serving.callback.drop", drop);

  const auto expired = client.run(make_run(fp, *net, waves, 3, words));
  EXPECT_EQ(expired.status, net::wire_status::watchdog_expired);
  EXPECT_EQ(fault::fire_count("serving.callback.drop"), 1u);

  const auto after = client.run(make_run(fp, *net, waves, 3, words));
  ASSERT_EQ(after.status, net::wire_status::ok);
  EXPECT_EQ(after.result.words, want.words);
  EXPECT_EQ(stack.server.stats().requests_watchdog_expired, 1u);
}

// A healthy server under a generous bound: the watchdog never fires.
TEST_F(fault_suite, watchdog_stays_quiet_on_a_healthy_server) {
  net::server_options options;
  options.watchdog_bound = std::chrono::seconds{30};
  loopback_stack stack{2, 1, options};
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  auto client = net::wire_client::connect(stack.server.port());
  const std::uint64_t fp = client.register_program(*net);
  for (int i = 0; i < 8; ++i) {
    const auto words = random_planes(net->num_pis(), 96, 100 + i);
    EXPECT_EQ(client.run(make_run(fp, *net, 96, 3, words)).status, net::wire_status::ok);
  }
  EXPECT_EQ(stack.server.stats().requests_watchdog_expired, 0u);
  EXPECT_EQ(stack.server.stats().requests_ok, 9u);  // the register + 8 runs
}

// ------------------------------------------------------- load shedding ---

// Shed-before-execute ordering, pinned at the serving layer: with the one
// dispatcher stalled and the queue at the policy's depth, a low-priority
// submission throws admission_rejected from submit itself — it never
// consumes a queue slot (requests_accepted unchanged) and nothing about it
// ever executes. High-priority traffic is untouched, and once the overload
// clears the same low priority is accepted again.
TEST_F(fault_suite, shedding_rejects_low_priority_before_it_consumes_anything) {
  engine::parallel_executor executor{2};
  engine::serving_session serving{executor, {}, {}, 1};
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));

  engine::shed_policy policy;
  policy.queue_depth = 1;
  policy.min_priority = 192;
  serving.set_shed_policy(policy);

  // Park the dispatcher: a generous stall before each gulp keeps whatever
  // we enqueue next sitting in the queue for the probe window. Waiting for
  // the wake request first guarantees the dispatcher has gulped it and is
  // asleep in the stall (not waiting to gulp the held request too).
  fault::fault_config stall;
  stall.action = fault::fault_action::stall;
  stall.delay = std::chrono::milliseconds{400};
  fault::arm("serving.dispatcher.stall", stall);
  auto wake = serving.submit_packed(net, random_planes(net->num_pis(), 64, 1), 64, 3);
  EXPECT_EQ(wake.get().num_waves, 64u);

  // The dispatcher is asleep in its stall; this request holds the queue at
  // the shed depth.
  auto held = serving.submit_packed(net, random_planes(net->num_pis(), 64, 2), 64, 3);

  const auto accepted_before = serving.metrics().requests_accepted;
  engine::submit_options low;
  low.priority = 200;
  EXPECT_THROW((void)serving.submit_packed(net, random_planes(net->num_pis(), 64, 3), 64,
                                           3, low),
               engine::admission_rejected_error);
  const auto metrics = serving.metrics();
  EXPECT_EQ(metrics.requests_shed, 1u);
  EXPECT_EQ(metrics.requests_rejected, 1u);
  EXPECT_EQ(metrics.requests_accepted, accepted_before);  // never consumed a slot

  // Default priority (128) rides through the same overload untouched.
  auto high = serving.submit_packed(net, random_planes(net->num_pis(), 64, 4), 64, 3);

  fault::disarm_all();
  EXPECT_EQ(held.get().num_waves, 64u);
  EXPECT_EQ(high.get().num_waves, 64u);

  // Overload cleared: the shed priority class is accepted again.
  engine::submit_options low_again;
  low_again.priority = 200;
  auto ok_now = serving.submit_packed(net, random_planes(net->num_pis(), 64, 5), 64, 3,
                                      low_again);
  EXPECT_EQ(ok_now.get().num_waves, 64u);
  serving.close();
}

// ------------------------------------------------- individual fault pins ---

// Simulated EINTR on reads is invisible: the retry loop absorbs it, every
// request answers ok, and the site provably fired.
TEST_F(fault_suite, read_eintr_is_absorbed_by_the_retry_loop) {
  loopback_stack stack{2, 1};
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  auto client = net::wire_client::connect(stack.server.port());
  const std::uint64_t fp = client.register_program(*net);

  fault::fault_config eintr;
  eintr.every_nth = 3;
  fault::arm("socket.read.eintr", eintr);
  for (int i = 0; i < 6; ++i) {
    const auto words = random_planes(net->num_pis(), 70, 40 + i);
    EXPECT_EQ(client.run(make_run(fp, *net, 70, 3, words)).status, net::wire_status::ok);
  }
  EXPECT_GE(fault::fire_count("socket.read.eintr"), 1u);
}

// An aborted accept drops exactly one connection attempt: the kernel had
// already completed that client's TCP handshake, so the client surfaces a
// socket error during the preamble — and the accept loop keeps serving,
// so the next connect succeeds.
TEST_F(fault_suite, aborted_accept_drops_one_connection_and_keeps_serving) {
  loopback_stack stack{2, 1};
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(3));

  fault::fault_config abort_once;
  abort_once.one_shot = true;
  fault::arm("socket.accept.abort", abort_once);

  EXPECT_THROW((void)net::wire_client::connect(stack.server.port()), net::socket_error);
  EXPECT_EQ(fault::fire_count("socket.accept.abort"), 1u);

  auto client = net::wire_client::connect(stack.server.port());
  const std::uint64_t fp = client.register_program(*net);
  const auto words = random_planes(net->num_pis(), 64, 51);
  EXPECT_EQ(client.run(make_run(fp, *net, 64, 3, words)).status, net::wire_status::ok);
}

// A persistently slow writer (slow-consumer backlog) delays but never
// corrupts: pipelined requests all answer ok, in whatever order.
TEST_F(fault_suite, writer_stall_delays_but_completes_pipelined_requests) {
  loopback_stack stack{2, 1};
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  auto client = net::wire_client::connect(stack.server.port());
  const std::uint64_t fp = client.register_program(*net);

  fault::fault_config slow;
  slow.action = fault::fault_action::delay;
  slow.delay = std::chrono::milliseconds{10};
  fault::arm("server.writer.stall", slow);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(client.send(make_run(fp, *net, 64, 3,
                                       random_planes(net->num_pis(), 64, 60 + i))));
  }
  std::size_t ok = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ok += client.receive().status == net::wire_status::ok ? 1 : 0;
  }
  EXPECT_EQ(ok, ids.size());
  EXPECT_GE(fault::fire_count("server.writer.stall"), ids.size());
}

// A silently dead writer: the response is dropped on the floor, the
// client's per-try timeout detects the stuck read, and the retried request
// on a fresh connection answers bit-identically.
TEST_F(fault_suite, writer_death_is_recovered_by_the_per_try_timeout) {
  loopback_stack stack{2, 1};
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  const std::size_t waves = 96;
  const auto words = random_planes(net->num_pis(), waves, 71);
  const auto want = stack.serving.submit_packed(net, words, waves, 3).get();

  auto client = net::wire_client::connect(stack.server.port());
  const std::uint64_t fp = client.register_program(*net);
  net::retry_policy policy;
  policy.max_attempts = 3;
  policy.base_backoff = std::chrono::milliseconds{1};
  policy.try_timeout = std::chrono::milliseconds{250};
  client.set_retry_policy(policy);

  fault::fault_config die;
  die.one_shot = true;
  fault::arm("server.writer.die", die);

  const auto resp = client.run(make_run(fp, *net, waves, 3, words));
  ASSERT_EQ(resp.status, net::wire_status::ok);
  EXPECT_EQ(resp.result.words, want.words);
  EXPECT_GE(client.stats().reconnects, 1u);
}

// A dispatcher-side exception fails exactly the one request it hit — as a
// typed internal_error carrying the thrown message — and the next request
// is untouched.
TEST_F(fault_suite, dispatcher_throw_fails_one_request_with_internal_error) {
  loopback_stack stack{2, 1};
  const auto net = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  auto client = net::wire_client::connect(stack.server.port());
  const std::uint64_t fp = client.register_program(*net);

  fault::fault_config once;
  once.one_shot = true;
  fault::arm("serving.dispatcher.throw", once);

  const auto words = random_planes(net->num_pis(), 64, 81);
  const auto failed = client.run(make_run(fp, *net, 64, 3, words));
  EXPECT_EQ(failed.status, net::wire_status::internal_error);
  EXPECT_NE(failed.message.find("injected"), std::string::npos);

  const auto after = client.run(make_run(fp, *net, 64, 3, words));
  EXPECT_EQ(after.status, net::wire_status::ok);
}

// Executor-level chaos (a stalled worker, delayed steals) may reorder who
// evaluates which plane-block, but chunk purity keeps the packed result
// words bit-identical to the quiet run.
TEST_F(fault_suite, executor_stalls_never_change_result_words) {
  engine::parallel_executor executor{4};
  engine::serving_session serving{executor, {}, {}, 2};
  const auto net = std::make_shared<const mig_network>(
      gen::random_mig({10, 90, 0.5, 5, 404}));
  const std::size_t waves = 520;
  const auto words = random_planes(net->num_pis(), waves, 91);
  const auto want = serving.submit_packed(net, words, waves, 3).get();

  fault::fault_config worker_stall;
  worker_stall.action = fault::fault_action::delay;
  worker_stall.delay = std::chrono::milliseconds{2};
  worker_stall.every_nth = 3;
  fault::arm("executor.worker.stall", worker_stall);
  fault::fault_config steal_delay;
  steal_delay.action = fault::fault_action::delay;
  steal_delay.delay = std::chrono::milliseconds{1};
  steal_delay.probability = 0.5;
  fault::arm("executor.steal.delay", steal_delay);

  for (int i = 0; i < 4; ++i) {
    const auto got = serving.submit_packed(net, words, waves, 3).get();
    EXPECT_EQ(got.words, want.words);
    EXPECT_EQ(got.ticks, want.ticks);
  }
  fault::disarm_all();
  serving.close();
}

// ------------------------------------------------ differential under chaos ---

// The acceptance pin: under a cocktail of probabilistic faults (partial
// reads killing connections on either side, slow writers, stalled
// workers), a retrying client never hangs, never crashes, and every
// response is either a typed wire/socket error or bit-identical to the
// in-process submit_packed result for the same payload.
TEST_F(fault_suite, chaotic_wire_responses_stay_bit_identical_to_in_process) {
  loopback_stack stack{4, 2};
  const auto adder = std::make_shared<const mig_network>(gen::ripple_adder_circuit(4));
  const auto random_net = std::make_shared<const mig_network>(
      gen::random_mig({9, 60, 0.5, 4, 7}));
  const std::vector<std::shared_ptr<const mig_network>> nets = {adder, random_net};
  const std::vector<std::size_t> wave_counts = {64, 130, 520};

  // Expected results first, on a quiet stack — the serving/executor sites
  // below would fire for in-process runs too.
  struct case_data {
    std::shared_ptr<const mig_network> net;
    std::size_t waves;
    std::vector<std::uint64_t> words;
    engine::packed_wave_result want;
  };
  std::vector<case_data> cases;
  for (const auto& net : nets) {
    for (const std::size_t waves : wave_counts) {
      case_data c{net, waves, random_planes(net->num_pis(), waves, waves * 31 + 1), {}};
      c.want = stack.serving.submit_packed(net, c.words, waves, 3).get();
      cases.push_back(std::move(c));
    }
  }

  auto client = net::wire_client::connect(stack.server.port());
  std::vector<std::uint64_t> fps;
  for (const auto& net : nets) {
    fps.push_back(client.register_program(*net));
  }
  net::retry_policy policy;
  policy.max_attempts = 10;
  policy.base_backoff = std::chrono::milliseconds{1};
  policy.max_backoff = std::chrono::milliseconds{20};
  policy.try_timeout = std::chrono::milliseconds{2000};
  client.set_retry_policy(policy);

  // Rare partial reads (either side of the wire) tear connections down
  // mid-frame; slow writers and stalled workers stretch every window.
  fault::fault_config short_read;
  short_read.action = fault::fault_action::partial_io;
  short_read.probability = 0.02;
  short_read.max_bytes = 3;
  fault::arm("socket.read.short", short_read);
  fault::fault_config slow_writer;
  slow_writer.action = fault::fault_action::delay;
  slow_writer.delay = std::chrono::milliseconds{1};
  slow_writer.probability = 0.1;
  fault::arm("server.writer.stall", slow_writer);
  fault::fault_config slow_worker;
  slow_worker.action = fault::fault_action::delay;
  slow_worker.delay = std::chrono::milliseconds{1};
  slow_worker.probability = 0.1;
  fault::arm("executor.worker.stall", slow_worker);

  for (int round = 0; round < 3; ++round) {
    for (std::size_t c = 0; c < cases.size(); ++c) {
      const auto& cd = cases[c];
      const std::uint64_t fp = fps[cd.net == adder ? 0 : 1];
      const auto resp = client.run(make_run(fp, *cd.net, cd.waves, 3, cd.words));
      ASSERT_EQ(resp.status, net::wire_status::ok)
          << "round " << round << " case " << c << ": " << resp.message;
      EXPECT_EQ(resp.result.words, cd.want.words) << "round " << round << " case " << c;
      EXPECT_EQ(resp.result.ticks, cd.want.ticks);
      EXPECT_EQ(resp.result.num_waves, cd.want.num_waves);
    }
  }
  fault::disarm_all();
  EXPECT_GE(fault::fire_count("socket.read.short") +
                fault::fire_count("server.writer.stall") +
                fault::fire_count("executor.worker.stall"),
            1u)
      << "the chaos run never injected anything — the pin proved nothing";
}

#endif  // WAVEMIG_FAULT_INJECTION

}  // namespace
}  // namespace wavemig
