#include "wavemig/engine/wave_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <utility>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/engine/compiled_netlist.hpp"
#include "wavemig/gen/arith.hpp"
#include "wavemig/gen/random_mig.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/simulation.hpp"
#include "wavemig/wave_simulator.hpp"

namespace wavemig {
namespace {

std::vector<std::vector<bool>> random_waves(std::size_t count, std::size_t pis,
                                            std::uint64_t seed) {
  std::mt19937_64 rng{seed};
  std::vector<std::vector<bool>> waves(count, std::vector<bool>(pis));
  for (auto& wave : waves) {
    for (std::size_t i = 0; i < pis; ++i) {
      wave[i] = (rng() & 1u) != 0;
    }
  }
  return waves;
}

TEST(compiled_netlist, folds_identity_components_out_of_the_comb_program) {
  const auto net = gen::ripple_adder_circuit(8);
  const auto balanced = insert_buffers(net).net;
  ASSERT_GT(balanced.num_buffers(), 0u);

  const engine::compiled_netlist compiled{balanced};
  EXPECT_EQ(compiled.num_comb_ops(), balanced.num_majorities());
  EXPECT_EQ(compiled.num_tick_ops(), balanced.num_components());
  EXPECT_EQ(compiled.num_pis(), balanced.num_pis());
  EXPECT_EQ(compiled.num_pos(), balanced.num_pos());
  EXPECT_EQ(compiled.depth(), compute_levels(balanced).depth);
}

TEST(compiled_netlist, eval_words_matches_interpreter) {
  std::mt19937_64 rng{99};
  for (const auto& net :
       {gen::ripple_adder_circuit(12), gen::multiplier_circuit(5), gen::parity_circuit(16)}) {
    const engine::compiled_netlist compiled{net};
    for (int round = 0; round < 8; ++round) {
      std::vector<std::uint64_t> words(net.num_pis());
      for (auto& w : words) {
        w = rng();
      }
      EXPECT_EQ(compiled.eval_words(words), simulate_words(net, words));
    }
  }
}

TEST(compiled_netlist, coherence_metadata) {
  const auto net = gen::ripple_adder_circuit(6);
  const engine::compiled_netlist raw{net};
  EXPECT_GT(raw.max_edge_span(), 1u) << "unbalanced adder must have long edges";
  EXPECT_FALSE(raw.wave_coherent(3));

  const engine::compiled_netlist balanced{insert_buffers(net).net};
  EXPECT_EQ(balanced.min_edge_span(), 1u);
  EXPECT_EQ(balanced.max_edge_span(), 1u);
  EXPECT_TRUE(balanced.wave_coherent(1));
  EXPECT_TRUE(balanced.wave_coherent(5));
}

TEST(compiled_netlist, input_width_validation) {
  const engine::compiled_netlist compiled{gen::ripple_adder_circuit(4)};
  EXPECT_THROW((void)compiled.eval_words({1ull, 2ull}), std::invalid_argument);
}

/// The tentpole property: packed execution is wave-for-wave identical to the
/// cycle-accurate reference on randomly generated MIGs, across chain/tree
/// buffer strategies and 2-5 clock phases.
TEST(packed_waves, equals_scalar_reference_on_random_migs) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    gen::random_mig_profile profile;
    profile.inputs = 6;
    profile.gates = 40 + static_cast<unsigned>(seed) * 17;
    profile.outputs = 6;
    profile.locality = 0.3 + 0.15 * static_cast<double>(seed);
    profile.seed = seed;
    const auto net = gen::random_mig(profile);

    for (const auto strategy : {buffer_strategy::chain, buffer_strategy::tree}) {
      buffer_insertion_options options;
      options.strategy = strategy;
      const auto balanced = insert_buffers(net, options);

      const auto waves = random_waves(20, balanced.net.num_pis(), seed * 31 + 7);
      for (unsigned phases = 2; phases <= 5; ++phases) {
        const auto scalar = run_waves(balanced.net, waves, phases, balanced.schedule);
        const auto packed = run_waves_packed(balanced.net, waves, phases, balanced.schedule);
        EXPECT_EQ(packed.outputs, scalar.outputs)
            << "seed " << seed << " strategy " << static_cast<int>(strategy) << " phases "
            << phases;
        EXPECT_EQ(packed.ticks, scalar.ticks);
        EXPECT_EQ(packed.latency_ticks, scalar.latency_ticks);
        EXPECT_EQ(packed.initiation_interval, scalar.initiation_interval);
        EXPECT_EQ(packed.waves_in_flight, scalar.waves_in_flight);
      }
    }
  }
}

TEST(packed_waves, equals_scalar_reference_under_tolerance_schedules) {
  // Tolerance-balanced netlists are coherent only under the schedule
  // returned by buffer insertion; both engines must honor it.
  const auto net = gen::random_mig({8, 60, 0.5, 8, 11});
  for (const unsigned tolerance : {1u, 2u}) {
    buffer_insertion_options options;
    options.tolerance = tolerance;
    const auto balanced = insert_buffers(net, options);
    const auto waves = random_waves(16, balanced.net.num_pis(), 13);
    for (unsigned phases = tolerance + 2; phases <= 5; ++phases) {
      const auto scalar = run_waves(balanced.net, waves, phases, balanced.schedule);
      const auto packed = run_waves_packed(balanced.net, waves, phases, balanced.schedule);
      EXPECT_EQ(packed.outputs, scalar.outputs) << "tolerance " << tolerance << " phases "
                                                << phases;
    }
  }
}

TEST(packed_waves, matches_combinational_reference_on_suite_circuit) {
  const auto balanced = insert_buffers(gen::multiplier_circuit(4)).net;
  const auto waves = random_waves(130, balanced.num_pis(), 5);  // > 2 chunks
  const auto packed = run_waves_packed(balanced, waves, 3);
  ASSERT_EQ(packed.outputs.size(), waves.size());
  for (std::size_t w = 0; w < waves.size(); ++w) {
    EXPECT_EQ(packed.outputs[w], simulate_pattern(balanced, waves[w])) << "wave " << w;
  }
}

TEST(packed_waves, rejects_incoherent_netlists) {
  // An unbalanced netlist exhibits wave interference that the packed engine
  // cannot model; it must refuse instead of returning wrong answers.
  const auto net = gen::ripple_adder_circuit(6);
  const auto waves = random_waves(4, net.num_pis(), 3);
  EXPECT_THROW(run_waves_packed(net, waves, 3), std::invalid_argument);

  // With enough phases the same netlist becomes coherent (every edge span
  // fits inside one initiation interval).
  const engine::compiled_netlist compiled{net};
  const auto run = run_waves_packed(net, waves, compiled.max_edge_span());
  EXPECT_EQ(run.outputs, run_waves(net, waves, compiled.max_edge_span()).outputs);
}

TEST(packed_waves, validates_inputs) {
  mig_network net;
  net.create_pi();
  net.create_po(constant0);
  EXPECT_THROW(run_waves_packed(net, {{true, false}}, 3), std::invalid_argument);
  EXPECT_THROW(run_waves_packed(net, {{true}}, 0), std::invalid_argument);

  engine::wave_batch batch{2};
  EXPECT_THROW(batch.append({true}), std::invalid_argument);
}

TEST(packed_waves, empty_batch_is_noop) {
  const auto balanced = insert_buffers(gen::ripple_adder_circuit(4)).net;
  const auto run = run_waves_packed(balanced, {}, 3);
  EXPECT_TRUE(run.outputs.empty());
  EXPECT_EQ(run.ticks, 0u);
}

TEST(wave_batch, packs_and_unpacks_waves) {
  const auto waves = random_waves(70, 5, 77);
  const auto batch = engine::wave_batch::from_waves(waves, 5);
  EXPECT_EQ(batch.num_waves(), 70u);
  EXPECT_EQ(batch.num_chunks(), 2u);
  for (std::size_t w = 0; w < waves.size(); ++w) {
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(batch.input(w, i), waves[w][i]);
    }
  }
}

TEST(wave_stream, streams_blocks_incrementally) {
  const auto balanced = insert_buffers(gen::ripple_adder_circuit(8)).net;
  const engine::compiled_netlist compiled{balanced};
  // > 2 multi-chunk blocks plus a partial tail.
  constexpr std::size_t block = engine::wave_stream::block_waves;
  const auto waves = random_waves(2 * block + 200, balanced.num_pis(), 21);

  engine::wave_stream stream{compiled, 3};
  for (std::size_t w = 0; w < waves.size(); ++w) {
    stream.push(waves[w]);
    // Full multi-chunk blocks are evaluated as soon as they close.
    EXPECT_EQ(stream.waves_completed(), (w + 1) / block * block);
  }
  const auto result = stream.finish();
  EXPECT_EQ(result.num_waves, waves.size());

  const auto reference = run_waves(balanced, waves, 3);
  EXPECT_EQ(result.unpack(), reference.outputs);
  EXPECT_EQ(result.ticks, reference.ticks);

  // The stream resets after finish and can be reused.
  stream.push(waves[0]);
  const auto second = stream.finish();
  EXPECT_EQ(second.num_waves, 1u);
  EXPECT_EQ(second.unpack()[0], reference.outputs[0]);
}

TEST(wave_stream, finish_resets_for_full_reuse) {
  // The documented reset semantics of finish(): counters return to zero and
  // a second, differently sized run through the same stream is exact.
  const auto balanced = insert_buffers(gen::multiplier_circuit(3)).net;
  const engine::compiled_netlist compiled{balanced};
  engine::wave_stream stream{compiled, 3};

  const auto first_waves = random_waves(100, balanced.num_pis(), 41);
  for (const auto& wave : first_waves) {
    stream.push(wave);
  }
  const auto first = stream.finish();
  EXPECT_EQ(first.num_waves, first_waves.size());
  EXPECT_EQ(stream.waves_pushed(), 0u);
  EXPECT_EQ(stream.waves_completed(), 0u);

  // An immediate finish() on the reset stream is an empty result.
  const auto empty = stream.finish();
  EXPECT_EQ(empty.num_waves, 0u);
  EXPECT_EQ(empty.ticks, 0u);
  EXPECT_TRUE(empty.words.empty());

  const auto second_waves = random_waves(70, balanced.num_pis(), 43);
  for (const auto& wave : second_waves) {
    stream.push(wave);
  }
  const auto second = stream.finish();
  EXPECT_EQ(second.num_waves, second_waves.size());
  const auto reference =
      engine::run_waves_packed(compiled, engine::wave_batch::from_waves(
                                             second_waves, balanced.num_pis()), 3);
  EXPECT_EQ(second.words, reference.words);
  EXPECT_EQ(second.ticks, reference.ticks);
}

TEST(wave_batch, append_words_matches_per_wave_append) {
  const std::size_t num_pis = 7;
  const auto waves = random_waves(300, num_pis, 911);
  const auto packed = engine::wave_batch::from_waves(waves, num_pis);

  // Aligned bulk append: empty batch, multiple chunks, partial tail.
  const auto chunk_major = packed.chunk_major_words();
  engine::wave_batch aligned{num_pis};
  aligned.append_words(chunk_major.data(), waves.size());
  ASSERT_EQ(aligned.num_waves(), waves.size());
  for (std::size_t w = 0; w < waves.size(); ++w) {
    for (std::size_t i = 0; i < num_pis; ++i) {
      ASSERT_EQ(aligned.input(w, i), waves[w][i]) << "wave " << w << " pi " << i;
    }
  }

  // Unaligned bulk append: a few per-bool waves first, then the bulk words
  // spliced at every offset class (1, 63, 64-crossing).
  for (const std::size_t prefix : {1ull, 37ull, 63ull, 64ull, 65ull}) {
    engine::wave_batch spliced{num_pis};
    for (std::size_t w = 0; w < prefix; ++w) {
      spliced.append(waves[w]);
    }
    spliced.append_words(chunk_major.data(), waves.size());
    ASSERT_EQ(spliced.num_waves(), prefix + waves.size());
    for (std::size_t w = 0; w < prefix + waves.size(); ++w) {
      const auto& expect = w < prefix ? waves[w] : waves[w - prefix];
      for (std::size_t i = 0; i < num_pis; ++i) {
        ASSERT_EQ(spliced.input(w, i), expect[i]) << "prefix " << prefix << " wave " << w;
      }
    }
    // Appending after an unaligned bulk append still lines up.
    spliced.append(waves[0]);
    for (std::size_t i = 0; i < num_pis; ++i) {
      ASSERT_EQ(spliced.input(prefix + waves.size(), i), waves[0][i]);
    }
  }
}

TEST(wave_batch, append_words_ignores_stray_bits_above_num_waves) {
  // The caller's last chunk may carry garbage above num_waves; those bits
  // must not leak into waves appended later.
  const std::size_t num_pis = 3;
  std::vector<std::uint64_t> words(num_pis, ~std::uint64_t{0});  // all-ones chunk
  engine::wave_batch batch{num_pis};
  batch.append_words(words.data(), 5);  // only waves 0..4 are real
  batch.append({false, false, false});
  EXPECT_EQ(batch.num_waves(), 6u);
  for (std::size_t i = 0; i < num_pis; ++i) {
    EXPECT_TRUE(batch.input(4, i));
    EXPECT_FALSE(batch.input(5, i)) << "stray bit leaked into pi " << i;
  }
}

TEST(wave_batch, clear_keeps_storage_reusable) {
  engine::wave_batch batch{4};
  const auto waves = random_waves(100, 4, 5);
  for (const auto& wave : waves) {
    batch.append(wave);
  }
  batch.clear();
  EXPECT_EQ(batch.num_waves(), 0u);
  EXPECT_TRUE(batch.empty());
  batch.append(waves[3]);
  EXPECT_EQ(batch.num_waves(), 1u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(batch.input(0, i), waves[3][i]);  // no stale bits from before clear
  }
}

TEST(packed_kernel, block_evaluation_is_bit_identical_to_per_chunk) {
  // Every block width the kernel dispatches (1..8 chunks, plus a >8 run
  // that splits internally) must reproduce the single-word kernel exactly.
  const auto balanced = insert_buffers(gen::random_mig({12, 150, 0.5, 10, 2024})).net;
  const engine::compiled_netlist compiled{balanced};

  for (const std::size_t num_waves :
       {1ull, 64ull, 129ull, 256ull, 320ull, 448ull, 512ull, 513ull, 1200ull}) {
    const auto waves = random_waves(num_waves, balanced.num_pis(), num_waves * 13 + 1);
    const auto batch = engine::wave_batch::from_waves(waves, balanced.num_pis());

    const auto chunk_major = batch.chunk_major_words();
    std::vector<std::uint64_t> reference(batch.num_chunks() * compiled.num_pos());
    std::vector<std::uint64_t> scratch;
    for (std::size_t c = 0; c < batch.num_chunks(); ++c) {
      engine::eval_packed_chunk(compiled, chunk_major.data() + c * compiled.num_pis(),
                                reference.data() + c * compiled.num_pos(), scratch);
    }

    std::vector<std::uint64_t> blocked(batch.num_chunks() * compiled.num_pos());
    engine::eval_packed_block(compiled, chunk_major.data(), blocked.data(),
                              batch.num_chunks(), scratch);
    EXPECT_EQ(blocked, reference) << num_waves << " waves";

    // The native plane-major entry must agree with both chunk-major paths
    // modulo layout.
    std::vector<std::uint64_t> planes(batch.num_chunks() * compiled.num_pos());
    engine::eval_packed_planes(
        compiled, batch.view(),
        {planes.data(), batch.num_chunks(), compiled.num_pos(), batch.num_chunks()},
        scratch);
    for (std::size_t c = 0; c < batch.num_chunks(); ++c) {
      for (std::size_t p = 0; p < compiled.num_pos(); ++p) {
        ASSERT_EQ(planes[p * batch.num_chunks() + c], reference[c * compiled.num_pos() + p])
            << num_waves << " waves, chunk " << c << " po " << p;
      }
    }
  }
}

TEST(packed_waves, unpack_matches_per_bit_output_probe) {
  const auto balanced = insert_buffers(gen::multiplier_circuit(4)).net;
  const engine::compiled_netlist compiled{balanced};
  const auto waves = random_waves(193, balanced.num_pis(), 55);  // partial last chunk
  const auto run = engine::run_waves_packed(
      compiled, engine::wave_batch::from_waves(waves, balanced.num_pis()), 3);
  const auto unpacked = run.unpack();
  ASSERT_EQ(unpacked.size(), waves.size());
  for (std::size_t w = 0; w < run.num_waves; ++w) {
    ASSERT_EQ(unpacked[w].size(), run.num_pos);
    for (std::size_t p = 0; p < run.num_pos; ++p) {
      ASSERT_EQ(unpacked[w][p], run.output(w, p)) << "wave " << w << " po " << p;
    }
  }
}

TEST(wave_stream, wave_count_hint_changes_nothing_observable) {
  const auto balanced = insert_buffers(gen::ripple_adder_circuit(6)).net;
  const engine::compiled_netlist compiled{balanced};
  const auto waves = random_waves(300, balanced.num_pis(), 31);

  engine::wave_stream hinted{compiled, 3, waves.size()};
  engine::wave_stream plain{compiled, 3};
  for (const auto& wave : waves) {
    hinted.push(wave);
    plain.push(wave);
  }
  const auto a = hinted.finish();
  const auto b = plain.finish();
  EXPECT_EQ(a.words, b.words);
  EXPECT_EQ(a.num_waves, b.num_waves);

  // The hint survives the reset: a second run through the hinted stream.
  hinted.push(waves[0]);
  EXPECT_EQ(hinted.finish().unpack()[0], b.unpack()[0]);
}

TEST(wave_stream, hint_exact_overshoot_and_undershoot_match_packed) {
  const auto balanced = insert_buffers(gen::multiplier_circuit(4)).net;
  const engine::compiled_netlist compiled{balanced};
  constexpr std::size_t block = engine::wave_stream::block_waves;
  // Multi-block runs so the direct-write path crosses block boundaries, plus
  // a partial tail chunk.
  const auto waves = random_waves(2 * block + 77, balanced.num_pis(), 57);
  const auto batch = engine::wave_batch::from_waves(waves, balanced.num_pis());
  const auto reference = engine::run_waves_packed(compiled, batch, 3);

  // Exact hint: finish() hands the direct buffer out without copying.
  // Overshoot: the over-strided planes are compacted in place at finish().
  // Undershoot: the stream re-strides mid-run when the hint proves too small.
  for (const std::size_t hint : {waves.size(), waves.size() * 3, std::size_t{64}}) {
    engine::wave_stream stream{compiled, 3, hint};
    for (const auto& wave : waves) {
      stream.push(wave);
    }
    const auto result = stream.finish();
    EXPECT_EQ(result.words, reference.words) << "hint=" << hint;
    EXPECT_EQ(result.num_waves, reference.num_waves) << "hint=" << hint;
    EXPECT_EQ(result.ticks, reference.ticks) << "hint=" << hint;

    // The reset stream stays hinted and exact on reuse with a different size.
    const auto rerun = random_waves(130, balanced.num_pis(), 58);
    for (const auto& wave : rerun) {
      stream.push(wave);
    }
    const auto rerun_result = stream.finish();
    const auto rerun_reference = engine::run_waves_packed(
        compiled, engine::wave_batch::from_waves(rerun, balanced.num_pis()), 3);
    EXPECT_EQ(rerun_result.words, rerun_reference.words) << "hint=" << hint;
    EXPECT_EQ(rerun_result.num_waves, rerun_reference.num_waves) << "hint=" << hint;
  }
}

TEST(wave_batch, append_validates_width_and_leaves_batch_usable) {
  engine::wave_batch batch{3};
  batch.append({true, false, true});
  EXPECT_THROW(batch.append({true}), std::invalid_argument);
  EXPECT_THROW(batch.append({true, false, true, false}), std::invalid_argument);
  EXPECT_THROW(batch.append({}), std::invalid_argument);
  // A rejected append must not corrupt the batch.
  EXPECT_EQ(batch.num_waves(), 1u);
  batch.append({false, true, false});
  EXPECT_EQ(batch.num_waves(), 2u);
  EXPECT_TRUE(batch.input(0, 0));
  EXPECT_FALSE(batch.input(1, 0));
  EXPECT_TRUE(batch.input(1, 1));
}

TEST(wave_stream, rejects_incoherent_netlists_and_bad_widths) {
  const auto net = gen::ripple_adder_circuit(5);
  const engine::compiled_netlist raw{net};
  EXPECT_THROW((engine::wave_stream{raw, 3}), std::invalid_argument);

  const auto balanced = insert_buffers(net).net;
  const engine::compiled_netlist compiled{balanced};
  EXPECT_THROW((engine::wave_stream{compiled, 0}), std::invalid_argument);
  engine::wave_stream stream{compiled, 3};
  EXPECT_THROW(stream.push({true}), std::invalid_argument);
}

// ---------------------------------------------- plane-major data plane ---

TEST(wave_batch, plane_view_exposes_the_transposed_words) {
  const std::size_t num_pis = 5;
  const auto waves = random_waves(200, num_pis, 3001);
  const auto batch = engine::wave_batch::from_waves(waves, num_pis);

  const auto view = batch.view();
  EXPECT_EQ(view.num_signals, num_pis);
  EXPECT_EQ(view.num_chunks, batch.num_chunks());
  for (std::size_t i = 0; i < num_pis; ++i) {
    ASSERT_EQ(view.plane(i), batch.plane(i));
    for (std::size_t w = 0; w < waves.size(); ++w) {
      ASSERT_EQ(((batch.plane(i)[w / 64] >> (w % 64)) & 1u) != 0, waves[w][i])
          << "pi " << i << " wave " << w;
    }
  }

  // A chunk slice is the same planes at an offset base (zero-copy sharding).
  const auto slice = view.slice(1, 2);
  EXPECT_EQ(slice.num_chunks, 2u);
  for (std::size_t i = 0; i < num_pis; ++i) {
    EXPECT_EQ(slice.plane(i), view.plane(i) + 1);
  }
}

/// Satellite audit of the tail-chunk masking contract: at every
/// non-multiple-of-64 wave count, per-bool append, chunk-major bulk append,
/// plane-major bulk append and result unpack must mask identically — no
/// stray bits above num_waves anywhere in the new layout.
TEST(wave_batch, tail_chunks_mask_identically_across_ingestion_paths) {
  const std::size_t num_pis = 6;
  for (const std::size_t num_waves : {1ull, 63ull, 64ull, 65ull, 511ull}) {
    const auto waves = random_waves(num_waves, num_pis, num_waves * 101 + 9);
    const auto reference = engine::wave_batch::from_waves(waves, num_pis);
    ASSERT_EQ(reference.num_chunks(), (num_waves + 63) / 64);

    // Poison the unused tail bits of both bulk inputs: they must be ignored.
    auto chunk_major = reference.chunk_major_words();
    auto plane_major =
        std::vector<std::uint64_t>(reference.num_chunks() * num_pis, 0);
    for (std::size_t i = 0; i < num_pis; ++i) {
      std::copy_n(reference.plane(i), reference.num_chunks(),
                  plane_major.begin() + static_cast<std::ptrdiff_t>(i * reference.num_chunks()));
    }
    if (num_waves % 64 != 0) {
      const std::uint64_t poison = ~((std::uint64_t{1} << (num_waves % 64)) - 1);
      for (std::size_t i = 0; i < num_pis; ++i) {
        chunk_major[(reference.num_chunks() - 1) * num_pis + i] |= poison;
        plane_major[i * reference.num_chunks() + reference.num_chunks() - 1] |= poison;
      }
    }

    engine::wave_batch from_chunks{num_pis};
    from_chunks.append_words(chunk_major.data(), num_waves);
    engine::wave_batch from_planes{num_pis};
    from_planes.append_planes(plane_major.data(), reference.num_chunks(), num_waves);
    const auto adopted =
        engine::wave_batch::from_plane_words(plane_major, num_pis, num_waves);

    for (const engine::wave_batch* batch :
         {&std::as_const(from_chunks), &std::as_const(from_planes), &adopted}) {
      ASSERT_EQ(batch->num_waves(), num_waves);
      for (std::size_t i = 0; i < num_pis; ++i) {
        for (std::size_t c = 0; c < batch->num_chunks(); ++c) {
          ASSERT_EQ(batch->plane(i)[c], reference.plane(i)[c])
              << num_waves << " waves, pi " << i << " chunk " << c;
        }
      }
      // Appending right after the bulk ingest lands on clean bits.
      auto copy = *batch;
      copy.append(waves[0]);
      for (std::size_t i = 0; i < num_pis; ++i) {
        ASSERT_EQ(copy.input(num_waves, i), waves[0][i]) << num_waves << " waves";
      }
    }

    // unpack() at the same wave counts: exactly num_waves rows, bit-exact.
    const auto balanced = insert_buffers(gen::parity_circuit(num_pis)).net;
    const engine::compiled_netlist compiled{balanced};
    const auto run = engine::run_waves_packed(compiled, reference, 3);
    const auto unpacked = run.unpack();
    ASSERT_EQ(unpacked.size(), num_waves);
    for (std::size_t w = 0; w < num_waves; ++w) {
      for (std::size_t p = 0; p < run.num_pos; ++p) {
        ASSERT_EQ(unpacked[w][p], run.output(w, p)) << num_waves << " waves, wave " << w;
      }
    }
  }
}

TEST(wave_batch, append_planes_matches_append_words) {
  const std::size_t num_pis = 9;
  const auto waves = random_waves(150, num_pis, 71);
  const auto packed = engine::wave_batch::from_waves(waves, num_pis);
  const auto chunk_major = packed.chunk_major_words();

  for (const std::size_t prefix : {0ull, 1ull, 63ull, 64ull, 100ull}) {
    engine::wave_batch via_chunks{num_pis};
    engine::wave_batch via_planes{num_pis};
    for (std::size_t w = 0; w < prefix; ++w) {
      via_chunks.append(waves[w]);
      via_planes.append(waves[w]);
    }
    via_chunks.append_words(chunk_major.data(), waves.size());
    via_planes.append_planes(packed.view().planes, packed.view().plane_stride, waves.size());
    ASSERT_EQ(via_planes.num_waves(), via_chunks.num_waves()) << "prefix " << prefix;
    for (std::size_t i = 0; i < num_pis; ++i) {
      for (std::size_t c = 0; c < via_chunks.num_chunks(); ++c) {
        ASSERT_EQ(via_planes.plane(i)[c], via_chunks.plane(i)[c])
            << "prefix " << prefix << " pi " << i << " chunk " << c;
      }
    }
  }
}

TEST(wave_batch, from_plane_words_adopts_and_validates) {
  const std::size_t num_pis = 4;
  const auto waves = random_waves(70, num_pis, 555);
  const auto reference = engine::wave_batch::from_waves(waves, num_pis);

  std::vector<std::uint64_t> planes(reference.num_chunks() * num_pis);
  for (std::size_t i = 0; i < num_pis; ++i) {
    std::copy_n(reference.plane(i), reference.num_chunks(),
                planes.begin() + static_cast<std::ptrdiff_t>(i * reference.num_chunks()));
  }
  const auto adopted = engine::wave_batch::from_plane_words(planes, num_pis, waves.size());
  ASSERT_EQ(adopted.num_waves(), waves.size());
  for (std::size_t w = 0; w < waves.size(); ++w) {
    for (std::size_t i = 0; i < num_pis; ++i) {
      ASSERT_EQ(adopted.input(w, i), waves[w][i]);
    }
  }

  // Size must be exactly chunks * num_pis.
  EXPECT_THROW((void)engine::wave_batch::from_plane_words(
                   std::vector<std::uint64_t>(num_pis * 2 + 1, 0), num_pis, 70),
               std::invalid_argument);
  EXPECT_THROW((void)engine::wave_batch::from_plane_words({}, num_pis, 70),
               std::invalid_argument);
}

TEST(packed_waves, result_tail_bits_above_num_waves_are_zero) {
  // A complemented output drives the kernel's tail lanes to 1 (the batch's
  // zeroed tail inputs, inverted); the front-ends must mask them so result
  // views uphold the containers' tail-zero invariant.
  mig_network net;
  const signal a = net.create_pi();
  net.create_po(!a);
  const engine::compiled_netlist compiled{net};

  for (const std::size_t num_waves : {1ull, 63ull, 65ull, 511ull}) {
    const auto waves = random_waves(num_waves, 1, num_waves);
    const auto batch = engine::wave_batch::from_waves(waves, 1);
    const auto run = engine::run_waves_packed(compiled, batch, 3);
    const std::size_t tail = num_waves % 64;
    ASSERT_NE(tail, 0u);
    const std::uint64_t above = ~((std::uint64_t{1} << tail) - 1);
    for (std::size_t p = 0; p < run.num_pos; ++p) {
      EXPECT_EQ(run.plane(p)[run.num_chunks() - 1] & above, 0u)
          << num_waves << " waves, po " << p;
    }

    engine::wave_stream stream{compiled, 3};
    for (const auto& wave : waves) {
      stream.push(wave);
    }
    const auto streamed = stream.finish();
    for (std::size_t p = 0; p < streamed.num_pos; ++p) {
      EXPECT_EQ(streamed.plane(p)[streamed.num_chunks() - 1] & above, 0u)
          << num_waves << " waves (stream), po " << p;
    }
  }
}

TEST(packed_waves, chunk_major_adapter_round_trips_the_result) {
  const auto balanced = insert_buffers(gen::multiplier_circuit(4)).net;
  const engine::compiled_netlist compiled{balanced};
  const auto waves = random_waves(130, balanced.num_pis(), 808);
  const auto run = engine::run_waves_packed(
      compiled, engine::wave_batch::from_waves(waves, balanced.num_pis()), 3);

  const auto chunk_major = run.chunk_major_words();
  ASSERT_EQ(chunk_major.size(), run.words.size());
  for (std::size_t c = 0; c < run.num_chunks(); ++c) {
    for (std::size_t p = 0; p < run.num_pos; ++p) {
      ASSERT_EQ(chunk_major[c * run.num_pos + p], run.plane(p)[c]);
    }
  }
}

TEST(engine_scalar, matches_interpreter_semantics_on_unbalanced_nets) {
  // The engine's tick program must preserve wave interference, not paper
  // over it: compare against the combinational reference and expect a
  // mismatch, exactly like the interpreter-era test.
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  signal deep = net.create_maj(a, b, c);
  for (int i = 0; i < 4; ++i) {
    deep = net.create_maj(deep, b, !c);
  }
  net.create_po(net.create_maj(deep, a, b));

  std::vector<std::vector<bool>> waves;
  for (int w = 0; w < 8; ++w) {
    waves.emplace_back(3, w % 2 == 1);
  }
  const auto run = run_waves(net, waves, 3);
  std::vector<std::vector<bool>> reference;
  for (const auto& wave : waves) {
    reference.push_back(simulate_pattern(net, wave));
  }
  EXPECT_NE(run.outputs, reference);
}

TEST(engine_scalar, run_waves_validates_inputs) {
  mig_network net;
  net.create_pi();
  net.create_po(constant0);
  EXPECT_THROW(run_waves(net, {{true, false}}, 3), std::invalid_argument);
  EXPECT_THROW(run_waves(net, {{true}}, 0), std::invalid_argument);
  level_map bad_schedule;
  bad_schedule.level.assign(1, 0);  // wrong size
  EXPECT_THROW(run_waves(net, {{true}}, 3, bad_schedule), std::invalid_argument);
}

TEST(engine_scalar, simulate_pattern_validates_width) {
  mig_network net;
  net.create_pi();
  net.create_pi();
  net.create_po(constant1);
  EXPECT_THROW(simulate_pattern(net, {true}), std::invalid_argument);
  EXPECT_THROW(simulate_pattern(net, {true, false, true}), std::invalid_argument);
}

}  // namespace
}  // namespace wavemig
