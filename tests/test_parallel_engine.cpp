#include "wavemig/engine/parallel_executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/engine/compiled_netlist.hpp"
#include "wavemig/engine/wave_engine.hpp"
#include "wavemig/gen/arith.hpp"
#include "wavemig/gen/random_mig.hpp"

namespace wavemig {
namespace {

std::vector<std::vector<bool>> random_waves(std::size_t count, std::size_t pis,
                                            std::uint64_t seed) {
  std::mt19937_64 rng{seed};
  std::vector<std::vector<bool>> waves(count, std::vector<bool>(pis));
  for (auto& wave : waves) {
    for (std::size_t i = 0; i < pis; ++i) {
      wave[i] = (rng() & 1u) != 0;
    }
  }
  return waves;
}

/// Thread counts the suite sweeps: 1, 2, 4 plus the hardware concurrency,
/// capped at 8 so sanitizer (TSan/ASan) CI runs stay fast.
std::vector<unsigned> sweep_thread_counts() {
  std::vector<unsigned> counts{1, 2, 4};
  const unsigned hw = std::min(8u, std::max(1u, std::thread::hardware_concurrency()));
  if (hw != 1 && hw != 2 && hw != 4) {
    counts.push_back(hw);
  }
  return counts;
}

void expect_bit_identical(const engine::packed_wave_result& got,
                          const engine::packed_wave_result& want, const std::string& what) {
  EXPECT_EQ(got.words, want.words) << what;
  EXPECT_EQ(got.num_waves, want.num_waves) << what;
  EXPECT_EQ(got.num_pos, want.num_pos) << what;
  EXPECT_EQ(got.ticks, want.ticks) << what;
  EXPECT_EQ(got.latency_ticks, want.latency_ticks) << what;
  EXPECT_EQ(got.initiation_interval, want.initiation_interval) << what;
  EXPECT_EQ(got.waves_in_flight, want.waves_in_flight) << what;
}

/// The tentpole property: sharded execution is bit-identical to the
/// single-threaded packed path for every thread count and for chunk counts
/// that do and do not divide into full 64-wave chunks.
TEST(parallel_waves, bit_identical_to_packed_across_threads_and_chunks) {
  const auto net = gen::random_mig({7, 90, 0.4, 7, 5});
  const auto balanced = insert_buffers(net);
  const engine::compiled_netlist compiled{balanced.net, balanced.schedule};
  const unsigned phases = 3;

  for (const unsigned threads : sweep_thread_counts()) {
    engine::parallel_executor executor{threads};
    ASSERT_EQ(executor.num_threads(), threads);
    for (const std::size_t num_waves : {1ull, 63ull, 64ull, 65ull, 130ull, 1000ull}) {
      const auto batch = engine::wave_batch::from_waves(
          random_waves(num_waves, balanced.net.num_pis(), num_waves * 31 + threads),
          balanced.net.num_pis());
      const auto reference = engine::run_waves_packed(compiled, batch, phases);
      const auto parallel = engine::run_waves_parallel(compiled, batch, phases, executor);
      expect_bit_identical(parallel, reference,
                           "threads=" + std::to_string(threads) +
                               " waves=" + std::to_string(num_waves));
    }
  }
}

TEST(parallel_waves, empty_batch_and_validation) {
  const auto balanced = insert_buffers(gen::ripple_adder_circuit(4)).net;
  const engine::compiled_netlist compiled{balanced};
  engine::parallel_executor executor{2};

  const auto run =
      engine::run_waves_parallel(compiled, engine::wave_batch{balanced.num_pis()}, 3, executor);
  EXPECT_EQ(run.num_waves, 0u);
  EXPECT_EQ(run.ticks, 0u);

  EXPECT_THROW(
      engine::run_waves_parallel(compiled, engine::wave_batch{balanced.num_pis()}, 0, executor),
      std::invalid_argument);
  EXPECT_THROW(engine::run_waves_parallel(compiled, engine::wave_batch{balanced.num_pis() + 1},
                                          3, executor),
               std::invalid_argument);

  const engine::compiled_netlist incoherent{gen::ripple_adder_circuit(4)};
  EXPECT_THROW(engine::run_waves_parallel(
                   incoherent, engine::wave_batch{incoherent.num_pis()}, 2, executor),
               std::invalid_argument);
}

TEST(parallel_executor, for_each_covers_every_task_exactly_once) {
  engine::parallel_executor executor{4};
  constexpr std::size_t num_tasks = 500;
  std::vector<std::atomic<int>> hits(num_tasks);
  executor.for_each(num_tasks, [&](std::size_t task, unsigned worker) {
    ASSERT_LT(worker, executor.num_threads());
    hits[task].fetch_add(1);
  });
  for (std::size_t t = 0; t < num_tasks; ++t) {
    EXPECT_EQ(hits[t].load(), 1) << "task " << t;
  }
}

TEST(parallel_executor, for_each_propagates_exceptions) {
  engine::parallel_executor executor{3};
  EXPECT_THROW(executor.for_each(64,
                                 [&](std::size_t task, unsigned) {
                                   if (task == 17) {
                                     throw std::runtime_error{"boom"};
                                   }
                                 }),
               std::runtime_error);
  // The pool survives a throwing batch and keeps serving.
  std::atomic<std::size_t> count{0};
  executor.for_each(10, [&](std::size_t, unsigned) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10u);
}

TEST(parallel_executor, submit_group_completes_without_blocking_the_caller) {
  engine::parallel_executor executor{4};
  constexpr std::size_t num_tasks = 300;
  std::vector<std::atomic<int>> hits(num_tasks);
  const auto group = executor.submit_group(num_tasks, [&](std::size_t task, unsigned worker) {
    ASSERT_LT(worker, executor.num_threads());
    hits[task].fetch_add(1);
  });
  ASSERT_TRUE(group.valid());
  group.wait();
  EXPECT_TRUE(group.done());
  EXPECT_EQ(group.error(), nullptr);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    EXPECT_EQ(hits[t].load(), 1) << "task " << t;
  }
}

TEST(parallel_executor, submit_group_fires_on_complete_exactly_once) {
  engine::parallel_executor executor{3};
  std::atomic<int> fired{0};
  std::promise<std::exception_ptr> completion;
  auto completed = completion.get_future();
  (void)executor.submit_group(
      64, [](std::size_t, unsigned) {},
      [&](std::exception_ptr error) {
        fired.fetch_add(1);
        completion.set_value(error);
      });
  EXPECT_EQ(completed.get(), nullptr);
  EXPECT_EQ(fired.load(), 1);
}

TEST(parallel_executor, empty_group_completes_inline) {
  engine::parallel_executor executor{2};
  std::atomic<int> fired{0};
  const auto group = executor.submit_group(
      0, [](std::size_t, unsigned) { FAIL() << "no task should run"; },
      [&](std::exception_ptr error) {
        EXPECT_EQ(error, nullptr);
        fired.fetch_add(1);
      });
  // A zero-task group is done — and its completion has fired — before
  // submit_group returns, on the calling thread.
  EXPECT_TRUE(group.done());
  EXPECT_EQ(fired.load(), 1);
  group.wait();
  EXPECT_EQ(group.error(), nullptr);
}

TEST(parallel_executor, submit_group_captures_the_error_and_cancels) {
  engine::parallel_executor executor{2};
  std::atomic<std::size_t> ran{0};
  std::atomic<bool> thrown{false};
  std::promise<std::exception_ptr> completion;
  auto completed = completion.get_future();
  (void)executor.submit_group(
      256,
      [&](std::size_t, unsigned) {
        // The first task to actually execute throws — index-independent, so
        // no steal order can run the whole group before the error. The rest
        // are slowed down enough that cancellation must catch the tail.
        if (!thrown.exchange(true)) {
          throw std::runtime_error{"boom"};
        }
        std::this_thread::sleep_for(std::chrono::microseconds{200});
        ran.fetch_add(1);
      },
      [&](std::exception_ptr error) { completion.set_value(error); });
  const std::exception_ptr error = completed.get();
  ASSERT_NE(error, nullptr);
  EXPECT_THROW(std::rethrow_exception(error), std::runtime_error);
  // Cancellation skips tasks not yet started: the tail of the group must
  // never have run.
  EXPECT_LT(ran.load(), 255u);
  // The pool survives and keeps serving.
  std::atomic<std::size_t> count{0};
  executor.for_each(10, [&](std::size_t, unsigned) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10u);
}

TEST(parallel_executor, concurrent_groups_from_many_threads_all_complete) {
  engine::parallel_executor executor{4};
  constexpr std::size_t submitters = 6;
  constexpr std::size_t groups_each = 20;
  constexpr std::size_t tasks_per_group = 37;
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> threads;
  threads.reserve(submitters);
  for (std::size_t s = 0; s < submitters; ++s) {
    threads.emplace_back([&] {
      for (std::size_t g = 0; g < groups_each; ++g) {
        const auto group = executor.submit_group(
            tasks_per_group, [&](std::size_t, unsigned) { total.fetch_add(1); });
        group.wait();
        EXPECT_EQ(group.error(), nullptr);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(total.load(), submitters * groups_each * tasks_per_group);
}

TEST(parallel_stream, matches_packed_and_is_reusable) {
  const auto balanced = insert_buffers(gen::multiplier_circuit(4)).net;
  const engine::compiled_netlist compiled{balanced};
  engine::parallel_executor executor{4};
  const auto waves = random_waves(333, balanced.num_pis(), 99);  // 5 chunks + remainder
  const auto batch = engine::wave_batch::from_waves(waves, balanced.num_pis());
  const auto reference = engine::run_waves_packed(compiled, batch, 3);

  engine::parallel_wave_stream stream{compiled, 3, executor};
  for (const auto& wave : waves) {
    stream.push(wave);
    EXPECT_LE(stream.waves_completed(), stream.waves_pushed());
  }
  EXPECT_EQ(stream.waves_pushed(), waves.size());
  expect_bit_identical(stream.finish(), reference, "first use");

  // The stream resets on finish: counters back to zero, second run exact.
  EXPECT_EQ(stream.waves_pushed(), 0u);
  EXPECT_EQ(stream.waves_completed(), 0u);
  for (const auto& wave : waves) {
    stream.push(wave);
  }
  expect_bit_identical(stream.finish(), reference, "reuse after finish");
}

TEST(parallel_stream, validates_like_the_packed_path) {
  const engine::compiled_netlist incoherent{gen::ripple_adder_circuit(5)};
  engine::parallel_executor executor{2};
  EXPECT_THROW((engine::parallel_wave_stream{incoherent, 3, executor}),
               std::invalid_argument);

  const auto balanced = insert_buffers(gen::ripple_adder_circuit(5)).net;
  const engine::compiled_netlist compiled{balanced};
  EXPECT_THROW((engine::parallel_wave_stream{compiled, 0, executor}), std::invalid_argument);
  engine::parallel_wave_stream stream{compiled, 3, executor};
  EXPECT_THROW(stream.push({true}), std::invalid_argument);
  const auto empty = stream.finish();
  EXPECT_EQ(empty.num_waves, 0u);
  EXPECT_EQ(empty.ticks, 0u);
}

TEST(parallel_stream, wave_count_hint_is_bit_identical_exact_over_and_under) {
  const auto balanced = insert_buffers(gen::multiplier_circuit(4)).net;
  const engine::compiled_netlist compiled{balanced};
  engine::parallel_executor executor{4};
  const auto waves = random_waves(333, balanced.num_pis(), 123);
  const auto batch = engine::wave_batch::from_waves(waves, balanced.num_pis());
  const auto reference = engine::run_waves_packed(compiled, batch, 3);

  // Exact hint (direct write, zero-copy finish), overshoot (finish
  // compacts the over-strided planes) and undershoot (mid-run re-stride)
  // must all be observationally identical to the unhinted splice path.
  for (const std::size_t hint : {waves.size(), waves.size() * 4, std::size_t{1}}) {
    engine::parallel_wave_stream stream{compiled, 3, executor, hint};
    for (const auto& wave : waves) {
      stream.push(wave);
    }
    expect_bit_identical(stream.finish(), reference, "hint=" + std::to_string(hint));
  }
}

TEST(parallel_stream, hinted_stream_resets_and_is_reusable) {
  const auto balanced = insert_buffers(gen::ripple_adder_circuit(6)).net;
  const engine::compiled_netlist compiled{balanced};
  engine::parallel_executor executor{2};

  engine::parallel_wave_stream stream{compiled, 3, executor, 640};
  for (const std::size_t num_waves : {640ull, 65ull, 1000ull}) {
    const auto waves = random_waves(num_waves, balanced.num_pis(), 777 + num_waves);
    const auto batch = engine::wave_batch::from_waves(waves, balanced.num_pis());
    const auto reference = engine::run_waves_packed(compiled, batch, 3);
    for (const auto& wave : waves) {
      stream.push(wave);
    }
    expect_bit_identical(stream.finish(), reference,
                         "hinted reuse waves=" + std::to_string(num_waves));
    EXPECT_EQ(stream.waves_pushed(), 0u);
  }
}

TEST(batch_session, caches_compiled_netlists_per_network_and_phases) {
  engine::parallel_executor executor{2};
  engine::batch_session session{executor};

  const auto adder = gen::ripple_adder_circuit(6);
  const auto mult = gen::multiplier_circuit(3);
  const auto adder_waves = random_waves(100, adder.num_pis(), 1);
  const auto mult_waves = random_waves(100, mult.num_pis(), 2);
  const auto adder_batch = engine::wave_batch::from_waves(adder_waves, adder.num_pis());
  const auto mult_batch = engine::wave_batch::from_waves(mult_waves, mult.num_pis());

  const auto first = session.run(adder, adder_batch, 3);
  EXPECT_EQ(session.cache_misses(), 1u);
  EXPECT_EQ(session.cache_hits(), 0u);

  // Interleave a different circuit, then come back: no re-lowering.
  const auto other = session.run(mult, mult_batch, 3);
  const auto again = session.run(adder, adder_batch, 3);
  EXPECT_EQ(session.cache_misses(), 2u);
  EXPECT_EQ(session.cache_hits(), 1u);
  EXPECT_EQ(session.cached_netlists(), 2u);
  expect_bit_identical(again, first, "cached re-run");

  // A different phase count is a separate program key.
  (void)session.run(adder, adder_batch, 4);
  EXPECT_EQ(session.cache_misses(), 3u);

  // Results equal the packed path on the session-balanced network.
  const auto balanced = insert_buffers(adder);
  const engine::compiled_netlist compiled{balanced.net, balanced.schedule};
  expect_bit_identical(first, engine::run_waves_packed(compiled, adder_batch, 3),
                       "session vs packed");
  const auto balanced_mult = insert_buffers(mult);
  const engine::compiled_netlist compiled_mult{balanced_mult.net, balanced_mult.schedule};
  expect_bit_identical(other, engine::run_waves_packed(compiled_mult, mult_batch, 3),
                       "session vs packed (mult)");
}

TEST(batch_session, concurrent_sessions_share_one_executor) {
  engine::parallel_executor executor{4};
  engine::batch_session session{executor};

  const auto adder = gen::ripple_adder_circuit(5);
  const auto parity = gen::parity_circuit(12);
  const auto adder_batch =
      engine::wave_batch::from_waves(random_waves(200, adder.num_pis(), 7), adder.num_pis());
  const auto parity_batch = engine::wave_batch::from_waves(
      random_waves(200, parity.num_pis(), 8), parity.num_pis());

  const auto balanced_adder = insert_buffers(adder);
  const auto balanced_parity = insert_buffers(parity);
  const engine::compiled_netlist ref_adder{balanced_adder.net, balanced_adder.schedule};
  const engine::compiled_netlist ref_parity{balanced_parity.net, balanced_parity.schedule};
  const auto want_adder = engine::run_waves_packed(ref_adder, adder_batch, 3);
  const auto want_parity = engine::run_waves_packed(ref_parity, parity_batch, 3);

  constexpr int rounds = 8;
  std::atomic<int> mismatches{0};
  auto hammer = [&](const mig_network& net, const engine::wave_batch& batch,
                    const engine::packed_wave_result& want) {
    for (int r = 0; r < rounds; ++r) {
      const auto got = session.run(net, batch, 3);
      if (got.words != want.words || got.num_waves != want.num_waves) {
        mismatches.fetch_add(1);
      }
    }
  };
  std::thread a{[&] { hammer(adder, adder_batch, want_adder); }};
  std::thread b{[&] { hammer(parity, parity_batch, want_parity); }};
  a.join();
  b.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(session.cached_netlists(), 2u);
  EXPECT_EQ(session.cache_hits() + session.cache_misses(),
            static_cast<std::uint64_t>(2 * rounds));
}

TEST(network_fingerprint, distinguishes_structure_not_names) {
  mig_network a;
  a.create_po(a.create_maj(a.create_pi("x"), a.create_pi("y"), a.create_pi("z")), "f");
  mig_network b;
  b.create_po(b.create_maj(b.create_pi("p"), b.create_pi("q"), b.create_pi("r")), "g");
  EXPECT_EQ(engine::network_fingerprint(a), engine::network_fingerprint(b))
      << "names must not affect the program key";

  mig_network c;
  const signal x = c.create_pi();
  const signal y = c.create_pi();
  const signal z = c.create_pi();
  c.create_po(!c.create_maj(x, y, z));  // complemented output
  EXPECT_NE(engine::network_fingerprint(a), engine::network_fingerprint(c));
}

}  // namespace
}  // namespace wavemig
