// Randomized differential harness: seeded random MIGs are pushed through
// every execution path the engine offers — the cycle-accurate scalar
// simulator, the packed 64-wave engine, the sharded parallel executor, and
// the async serving session — and the results must be bit-identical,
// sweeping clock phases, buffer strategies, balancing tolerance and wave
// counts. Silent divergence between paths is exactly the failure mode
// serving-grade concurrency breeds, so this suite is the acceptance gate of
// the serving PR and runs under the ASan and TSan CI jobs.
//
// The same generator also drives BLIF round-trip fuzzing: write_blif →
// read_blif must preserve the function, and corrupted inputs (truncation,
// stray '\' continuations) must surface as parse_error, never as a silently
// different circuit.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <future>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/engine/compiled_netlist.hpp"
#include "wavemig/engine/parallel_executor.hpp"
#include "wavemig/engine/serving.hpp"
#include "wavemig/engine/wave_engine.hpp"
#include "wavemig/gen/random_mig.hpp"
#include "wavemig/io/blif.hpp"
#include "wavemig/io/mig_format.hpp"
#include "wavemig/pipeline.hpp"
#include "wavemig/simulation.hpp"
#include "wavemig/tech_scenario.hpp"
#include "wavemig/wave_simulator.hpp"

namespace wavemig {
namespace {

std::vector<std::vector<bool>> random_waves(std::size_t count, std::size_t pis,
                                            std::uint64_t seed) {
  std::mt19937_64 rng{seed};
  std::vector<std::vector<bool>> waves(count, std::vector<bool>(pis));
  for (auto& wave : waves) {
    for (std::size_t i = 0; i < pis; ++i) {
      wave[i] = (rng() & 1u) != 0;
    }
  }
  return waves;
}

struct diff_case {
  gen::random_mig_profile profile;
  buffer_insertion_options options;
  unsigned phases;
  std::size_t num_waves;
};

/// Runs one configuration through all four paths — at every optimizer
/// level and kernel width — and cross-checks them. The serving path
/// receives the *raw* network (it balances with the same options itself),
/// so the check also covers the session's balance+compile; it runs at the
/// highest opt level, the configuration production sessions would use.
void expect_paths_agree(const diff_case& c, engine::parallel_executor& executor,
                        const std::string& what) {
  const auto net = gen::random_mig(c.profile);
  const auto balanced = insert_buffers(net, c.options);
  const auto waves = random_waves(c.num_waves, net.num_pis(), c.profile.seed ^ 0xD1FF);
  const auto batch = engine::wave_batch::from_waves(waves, net.num_pis());
  const engine::compiled_netlist compiled{balanced.net, balanced.schedule};

  // Path 1 — cycle-accurate scalar simulation under the balanced schedule.
  const auto scalar = run_waves(balanced.net, waves, c.phases, balanced.schedule);
  // Path 2 — packed engine (multi-word blocked kernel).
  const auto packed = engine::run_waves_packed(compiled, batch, c.phases);
  // Path 3 — sharded parallel executor.
  const auto parallel = engine::run_waves_parallel(compiled, batch, c.phases, executor);
  // Path 4 — async serving session (future API, bounded cache, optimizer on).
  engine::serving_session serving{executor, c.options, {.max_entries = 2}, 0,
                                  {.opt_level = 2}};
  const auto async = serving.submit(net, batch, c.phases).get();

  ASSERT_EQ(packed.unpack(), scalar.outputs) << what << ": packed vs scalar";
  EXPECT_EQ(packed.ticks, scalar.ticks) << what;
  EXPECT_EQ(packed.latency_ticks, scalar.latency_ticks) << what;
  EXPECT_EQ(packed.waves_in_flight, scalar.waves_in_flight) << what;

  EXPECT_EQ(parallel.words, packed.words) << what << ": parallel vs packed";
  EXPECT_EQ(parallel.ticks, packed.ticks) << what;

  EXPECT_EQ(async.words, packed.words) << what << ": async vs packed";
  EXPECT_EQ(async.num_waves, packed.num_waves) << what;
  EXPECT_EQ(async.ticks, packed.ticks) << what;
  EXPECT_EQ(async.initiation_interval, packed.initiation_interval) << what;

  // Optimizer levels: every level's program must produce the same packed
  // words through both the blocked multi-word kernel and the single-word
  // (W = 1) kernel driven chunk by chunk.
  for (const unsigned level : {1u, 2u}) {
    const engine::compiled_netlist opt{balanced.net, balanced.schedule,
                                       {.opt_level = level}};
    const auto opt_packed = engine::run_waves_packed(opt, batch, c.phases);
    EXPECT_EQ(opt_packed.words, packed.words) << what << ": opt level " << level;

    // The W=1 chunk-major kernel is the layout-independent reference:
    // transpose its chunk-major outputs to plane-major and compare.
    const auto chunk_major = batch.chunk_major_words();
    std::vector<std::uint64_t> single(batch.num_chunks() * opt.num_pos());
    std::vector<std::uint64_t> scratch;
    for (std::size_t chunk = 0; chunk < batch.num_chunks(); ++chunk) {
      engine::eval_packed_chunk(opt, chunk_major.data() + chunk * opt.num_pis(),
                                single.data() + chunk * opt.num_pos(), scratch);
    }
    // Front-end results mask the bits above num_waves in the last chunk;
    // the raw W=1 kernel does not — mask here to compare.
    const std::size_t tail = batch.num_waves() % 64;
    const std::uint64_t tail_mask =
        tail == 0 ? ~std::uint64_t{0} : (std::uint64_t{1} << tail) - 1;
    std::vector<std::uint64_t> single_planes(single.size());
    for (std::size_t chunk = 0; chunk < batch.num_chunks(); ++chunk) {
      const std::uint64_t mask =
          chunk + 1 == batch.num_chunks() ? tail_mask : ~std::uint64_t{0};
      for (std::size_t p = 0; p < opt.num_pos(); ++p) {
        single_planes[p * batch.num_chunks() + chunk] =
            single[chunk * opt.num_pos() + p] & mask;
      }
    }
    EXPECT_EQ(single_planes, packed.words) << what << ": W=1 kernel, opt level " << level;
  }
}

TEST(differential, four_paths_agree_across_phases_strategies_and_wave_counts) {
  engine::parallel_executor executor{4};

  const buffer_strategy strategies[] = {buffer_strategy::chain, buffer_strategy::tree,
                                        buffer_strategy::naive};
  const unsigned phase_sweep[] = {2, 3, 5};
  const std::size_t wave_sweep[] = {1, 63, 64, 65, 257};
  const double locality_sweep[] = {0.1, 0.5, 0.9};

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    diff_case c;
    c.profile.inputs = 10 + 3 * static_cast<unsigned>(seed);
    c.profile.gates = 120 + 40 * static_cast<unsigned>(seed);
    c.profile.outputs = 8 + static_cast<unsigned>(seed);
    c.profile.locality = locality_sweep[seed % 3];
    c.profile.seed = seed * 7919;
    c.options.strategy = strategies[seed % 3];
    c.phases = phase_sweep[seed % 3];
    c.num_waves = wave_sweep[seed % 5];
    expect_paths_agree(c, executor, "seed " + std::to_string(seed));
  }

  // Dense cross of the remaining corners on one fixed circuit profile.
  for (const auto strategy : strategies) {
    for (const unsigned phases : phase_sweep) {
      for (const std::size_t num_waves : {1ull, 65ull}) {
        diff_case c;
        c.profile = {16, 200, 0.5, 12, 424242};
        c.options.strategy = strategy;
        c.phases = phases;
        c.num_waves = num_waves;
        expect_paths_agree(c, executor,
                           "strategy " + std::to_string(static_cast<int>(strategy)) +
                               " phases " + std::to_string(phases) + " waves " +
                               std::to_string(num_waves));
      }
    }
  }
}

TEST(differential, tolerance_balanced_schedules_agree) {
  engine::parallel_executor executor{4};
  // tolerance > 0 is the regime where coherence holds only under the
  // schedule returned by buffer insertion — the easiest place for a path to
  // silently fall back to ASAP levels and diverge.
  for (const unsigned tolerance : {1u, 2u}) {
    for (const unsigned phases : {tolerance + 2, tolerance + 3}) {
      diff_case c;
      c.profile = {14, 180, 0.6, 10, 1000 + tolerance};
      c.options.tolerance = tolerance;
      c.phases = phases;
      c.num_waves = 129;
      expect_paths_agree(c, executor,
                         "tolerance " + std::to_string(tolerance) + " phases " +
                             std::to_string(phases));
    }
  }
}

TEST(differential, buffer_strategies_never_change_the_function) {
  // Same circuit under every strategy: all balanced variants must compute
  // the combinational function of the raw network.
  const auto net = gen::random_mig({12, 150, 0.4, 10, 33});
  for (const auto strategy :
       {buffer_strategy::chain, buffer_strategy::tree, buffer_strategy::naive}) {
    buffer_insertion_options options;
    options.strategy = strategy;
    const auto balanced = insert_buffers(net, options);
    EXPECT_TRUE(functionally_equivalent(net, balanced.net))
        << "strategy " << static_cast<int>(strategy);
  }
}

// ---------------------------------------------------- layout fuzzing ---

/// Chunk-major <-> plane-major transpose is an involution: random packed
/// words pushed through `append_words` (chunk-major in) must read back
/// identically through `chunk_major_words()` (chunk-major out), and the
/// plane-major image must re-ingest through every plane path
/// (`append_planes`, `from_plane_words`) to the same batch. Stray bits
/// above num_waves are injected and must never survive.
TEST(differential, layout_round_trip_is_an_involution) {
  std::mt19937_64 rng{0xBEEF};
  for (int round = 0; round < 48; ++round) {
    // The last rounds use very wide interfaces (hundreds to thousands of
    // planes, few waves) — the tiled-transpose regime of wide-PI circuits,
    // where the signal tile loop dominates the chunk loop.
    const std::size_t num_pis =
        round < 40 ? 1 + rng() % 12 : 64 + rng() % 1990;
    const std::size_t num_waves = round < 40 ? 1 + rng() % 600 : 1 + rng() % 200;
    const std::size_t chunks = (num_waves + 63) / 64;

    std::vector<std::uint64_t> chunk_major(chunks * num_pis);
    for (auto& w : chunk_major) {
      w = rng();  // includes stray bits above num_waves in the last chunk
    }

    engine::wave_batch batch{num_pis};
    batch.append_words(chunk_major.data(), num_waves);
    ASSERT_EQ(batch.num_waves(), num_waves);

    // Round trip back to chunk-major: every valid bit preserved, every
    // stray bit masked.
    const auto round_tripped = batch.chunk_major_words();
    const std::size_t tail = num_waves % 64;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::uint64_t mask = (c + 1 == chunks && tail != 0)
                                     ? (std::uint64_t{1} << tail) - 1
                                     : ~std::uint64_t{0};
      for (std::size_t i = 0; i < num_pis; ++i) {
        ASSERT_EQ(round_tripped[c * num_pis + i], chunk_major[c * num_pis + i] & mask)
            << "round " << round << " chunk " << c << " pi " << i;
      }
    }

    // Plane-major image -> plane ingestion paths -> same planes.
    std::vector<std::uint64_t> planes(chunks * num_pis);
    for (std::size_t i = 0; i < num_pis; ++i) {
      std::copy_n(batch.plane(i), chunks,
                  planes.begin() + static_cast<std::ptrdiff_t>(i * chunks));
    }
    const auto adopted = engine::wave_batch::from_plane_words(planes, num_pis, num_waves);
    engine::wave_batch appended{num_pis};
    appended.append_planes(planes.data(), chunks, num_waves);
    for (std::size_t i = 0; i < num_pis; ++i) {
      for (std::size_t c = 0; c < chunks; ++c) {
        ASSERT_EQ(adopted.plane(i)[c], batch.plane(i)[c]) << "adopt, round " << round;
        ASSERT_EQ(appended.plane(i)[c], batch.plane(i)[c]) << "append, round " << round;
      }
    }
    EXPECT_EQ(adopted.chunk_major_words(), round_tripped) << "round " << round;
  }
}

/// The zero-copy serving path (pre-transposed plane words adopted without
/// repacking) against the scalar reference: bit-identical outputs at every
/// wave count including the tail-chunk corners.
/// PR-6 referee: the coalesced serving path and both direct-write streams
/// (hinted wave_stream and hinted parallel_wave_stream) pinned bit-identical
/// to run_waves_packed across the chunk-boundary wave counts.
TEST(differential, coalesced_serving_and_direct_streams_match_packed) {
  engine::parallel_executor executor{4};
  engine::serving_session serving{executor, {}, {}, 1};

  for (const std::size_t num_waves : {1ull, 63ull, 64ull, 65ull, 511ull}) {
    const auto net = gen::random_mig({11, 130, 0.5, 8, 6000 + num_waves});
    const auto shared = std::make_shared<const mig_network>(net);
    const auto balanced = insert_buffers(net);
    const engine::compiled_netlist compiled{balanced.net, balanced.schedule};
    const auto waves = random_waves(num_waves, net.num_pis(), num_waves * 13 + 1);
    const auto batch = engine::wave_batch::from_waves(waves, net.num_pis());
    const auto reference = engine::run_waves_packed(compiled, batch, 3);
    const std::string what = std::to_string(num_waves) + " waves";

    // Burst of identical small same-program requests: whatever the
    // dispatcher fuses, every sliced-back result must equal the packed run.
    std::vector<std::future<engine::packed_wave_result>> futures;
    for (int i = 0; i < 6; ++i) {
      futures.push_back(serving.submit(shared, batch, 3));
    }
    for (auto& future : futures) {
      const auto got = future.get();
      EXPECT_EQ(got.words, reference.words) << what;
      EXPECT_EQ(got.num_waves, reference.num_waves) << what;
      EXPECT_EQ(got.ticks, reference.ticks) << what;
    }

    // Hinted (direct-write) single-threaded stream.
    engine::wave_stream hinted{compiled, 3, num_waves};
    for (const auto& wave : waves) {
      hinted.push(wave);
    }
    const auto streamed = hinted.finish();
    EXPECT_EQ(streamed.words, reference.words) << what;
    EXPECT_EQ(streamed.ticks, reference.ticks) << what;

    // Hinted (direct-write) parallel stream.
    engine::parallel_wave_stream parallel_hinted{compiled, 3, executor, num_waves};
    for (const auto& wave : waves) {
      parallel_hinted.push(wave);
    }
    const auto parallel_streamed = parallel_hinted.finish();
    EXPECT_EQ(parallel_streamed.words, reference.words) << what;
    EXPECT_EQ(parallel_streamed.ticks, reference.ticks) << what;
  }
}

TEST(differential, submit_packed_agrees_with_scalar_run_waves) {
  engine::parallel_executor executor{4};
  engine::serving_session serving{executor, {}, {}, 0, {.opt_level = 2}};

  for (const std::size_t num_waves : {1ull, 63ull, 64ull, 65ull, 257ull, 511ull}) {
    const auto net = gen::random_mig({12, 140, 0.5, 9, 5000 + num_waves});
    const auto balanced = insert_buffers(net);
    const auto waves = random_waves(num_waves, net.num_pis(), num_waves * 17 + 3);
    const auto batch = engine::wave_batch::from_waves(waves, net.num_pis());

    // Pre-transposed plane words, exactly what a zero-copy producer holds.
    std::vector<std::uint64_t> planes(batch.num_chunks() * net.num_pis());
    for (std::size_t i = 0; i < net.num_pis(); ++i) {
      std::copy_n(batch.plane(i), batch.num_chunks(),
                  planes.begin() + static_cast<std::ptrdiff_t>(i * batch.num_chunks()));
    }

    const auto async = serving.submit_packed(net, std::move(planes), num_waves, 3).get();
    const auto scalar = run_waves(balanced.net, waves, 3, balanced.schedule);
    ASSERT_EQ(async.unpack(), scalar.outputs) << num_waves << " waves";
    EXPECT_EQ(async.ticks, scalar.ticks) << num_waves << " waves";

    // And bit-identical to the packed path on the same balanced program.
    const engine::compiled_netlist compiled{balanced.net, balanced.schedule};
    const auto packed = engine::run_waves_packed(compiled, batch, 3);
    EXPECT_EQ(async.words, packed.words) << num_waves << " waves";
  }

  // Malformed plane words surface through the future, like every other
  // validation error of the serving API.
  const auto net = gen::random_mig({8, 60, 0.5, 6, 99});
  auto bad = serving.submit_packed(net, std::vector<std::uint64_t>(3, 0), 100, 3);
  EXPECT_THROW((void)bad.get(), std::invalid_argument);
}

// ------------------------------------------------ scenario differential ---

/// PR-7 referee: every built-in technology scenario's program — prepared by
/// the scenario pipeline (fan-out restriction at the scenario's capability,
/// loss-budget repeaters, balancing) — pinned bit-identical across the
/// cycle-accurate scalar simulator, the packed engine, the scenario-tagged
/// session cache (parallel path), and the scenario serving API. Clock
/// metadata is compared through the packed/parallel/serving paths only: the
/// FDM scenario compresses it, and all tagged paths must agree on the
/// compressed values.
TEST(differential, every_builtin_scenario_agrees_across_all_engine_paths) {
  engine::parallel_executor executor{4};
  engine::serving_session serving{executor, {}, {}, 0, {.opt_level = 2}};
  engine::batch_session session{executor};

  for (const auto& name : tech_scenario::names()) {
    const auto scenario = tech_scenario::by_name(name);
    for (const std::size_t num_waves : {1ull, 65ull, 257ull}) {
      const auto net = gen::random_mig({11, 140, 0.5, 8, 2200 + num_waves});
      const auto shared = std::make_shared<const mig_network>(net);
      const auto waves = random_waves(num_waves, net.num_pis(), num_waves * 31 + 5);
      const auto batch = engine::wave_batch::from_waves(waves, net.num_pis());
      const std::string what = name + ", " + std::to_string(num_waves) + " waves";

      pipeline_options opts;
      opts.scenario = scenario;
      const auto prepared = wave_pipeline(net, opts);
      ASSERT_TRUE(prepared.wave_ready) << what;
      const engine::compiled_netlist reference{prepared.net};

      // Path 1 — cycle-accurate scalar simulation of the prepared program.
      const auto scalar = engine::run_waves(reference, waves, 3);
      // Path 2 — packed multi-word kernel on the same program.
      const auto packed = engine::run_waves_packed(reference, batch, 3);
      // Path 3 — sharded parallel run through the scenario-tagged cache.
      const auto parallel = session.run(net, batch, 3, scenario);
      // Path 4 — async serving with the scenario submit overload.
      const auto async = serving.submit(shared, batch, 3, scenario).get();

      ASSERT_EQ(packed.unpack(), scalar.outputs) << what << ": packed vs scalar";
      EXPECT_EQ(parallel.words, packed.words) << what << ": parallel vs packed";
      EXPECT_EQ(async.words, packed.words) << what << ": serving vs packed";
      EXPECT_EQ(async.num_waves, packed.num_waves) << what;
      EXPECT_EQ(parallel.waves_in_flight, async.waves_in_flight) << what;
      EXPECT_EQ(parallel.ticks, async.ticks) << what;
    }
  }
}

// ---------------------------------------------- scheduler differential ---

/// PR-10 referee: op-scheduled programs (schedule level 1 and 2, with and
/// without the slot optimizer) pinned bit-identical to the unscheduled
/// reference through the packed kernel, the sharded parallel executor, and
/// the serving session with a per-request compile override, across the
/// chunk-boundary wave counts — then through every built-in technology
/// scenario, where the scenario pipeline's prepared program is scheduled
/// too.
TEST(differential, scheduled_programs_agree_across_all_engine_paths) {
  engine::parallel_executor executor{4};
  engine::serving_session serving{executor};

  for (const std::size_t num_waves : {1ull, 63ull, 64ull, 65ull, 511ull}) {
    const auto net = gen::random_mig({12, 160, 0.5, 9, 8800 + num_waves});
    const auto shared = std::make_shared<const mig_network>(net);
    const auto balanced = insert_buffers(net);
    const auto waves = random_waves(num_waves, net.num_pis(), num_waves * 19 + 7);
    const auto batch = engine::wave_batch::from_waves(waves, net.num_pis());
    const engine::compiled_netlist reference{balanced.net, balanced.schedule,
                                             {.opt_level = 2}};
    const auto packed_ref = engine::run_waves_packed(reference, batch, 3);

    for (const unsigned opt : {0u, 2u}) {
      for (const unsigned sched : {1u, 2u}) {
        const std::string what = std::to_string(num_waves) + " waves, opt " +
                                 std::to_string(opt) + ", sched " + std::to_string(sched);
        const engine::compiled_netlist scheduled{
            balanced.net, balanced.schedule, {.opt_level = opt, .schedule_level = sched}};
        const auto packed = engine::run_waves_packed(scheduled, batch, 3);
        EXPECT_EQ(packed.words, packed_ref.words) << what << ": packed";
        EXPECT_EQ(packed.ticks, packed_ref.ticks) << what;

        const auto parallel = engine::run_waves_parallel(scheduled, batch, 3, executor);
        EXPECT_EQ(parallel.words, packed_ref.words) << what << ": parallel";

        engine::submit_options sopts;
        sopts.compile = engine::compile_options{.opt_level = opt, .schedule_level = sched};
        const auto async = serving.submit(shared, batch, 3, sopts).get();
        EXPECT_EQ(async.words, packed_ref.words) << what << ": serving";
        EXPECT_EQ(async.ticks, packed_ref.ticks) << what;
      }
    }
  }

  // Every built-in scenario with scheduling on, against the unscheduled
  // scenario-tagged cache path.
  engine::batch_session plain_session{executor, {}, {}, {.opt_level = 2}};
  engine::batch_session sched_session{executor, {}, {},
                                      {.opt_level = 2, .schedule_level = 1}};
  engine::serving_session sched_serving{executor, {}, {}, 0,
                                        {.opt_level = 2, .schedule_level = 2}};
  for (const auto& name : tech_scenario::names()) {
    const auto scenario = tech_scenario::by_name(name);
    const auto net = gen::random_mig({11, 140, 0.5, 8, 3300});
    const auto shared = std::make_shared<const mig_network>(net);
    const auto waves = random_waves(65, net.num_pis(), 4400);
    const auto batch = engine::wave_batch::from_waves(waves, net.num_pis());

    const auto plain = plain_session.run(net, batch, 3, scenario);
    const auto sched = sched_session.run(net, batch, 3, scenario);
    const auto async = sched_serving.submit(shared, batch, 3, scenario).get();
    EXPECT_EQ(sched.words, plain.words) << name << ": scheduled scenario run";
    EXPECT_EQ(sched.ticks, plain.ticks) << name;
    EXPECT_EQ(sched.waves_in_flight, plain.waves_in_flight) << name;
    EXPECT_EQ(async.words, plain.words) << name << ": scheduled scenario serving";
    EXPECT_EQ(async.ticks, plain.ticks) << name;
  }
}

// ------------------------------------------------------- BLIF fuzzing ---

TEST(blif_fuzz, random_networks_round_trip_functionally) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    gen::random_mig_profile profile;
    profile.inputs = 5 + static_cast<unsigned>(seed % 5);  // <= 12 PIs: exact check
    profile.gates = 30 + 10 * static_cast<unsigned>(seed);
    profile.outputs = 4 + static_cast<unsigned>(seed % 4);
    profile.seed = seed * 104729;
    const auto net = gen::random_mig(profile);

    std::stringstream ss;
    io::write_blif(net, ss);
    const auto round = io::read_blif(ss);
    ASSERT_EQ(round.num_pis(), net.num_pis()) << "seed " << seed;
    ASSERT_EQ(round.num_pos(), net.num_pos()) << "seed " << seed;
    EXPECT_TRUE(functionally_equivalent(net, round)) << "seed " << seed;
  }
}

TEST(blif_fuzz, balanced_networks_round_trip_functionally) {
  // Balanced netlists exercise the identity-cover (buffer/fan-out) writer
  // paths that plain random MIGs never emit.
  const auto net = gen::random_mig({8, 60, 0.5, 6, 77});
  const auto balanced = insert_buffers(net).net;
  std::stringstream ss;
  io::write_blif(balanced, ss);
  const auto round = io::read_blif(ss);
  EXPECT_TRUE(functionally_equivalent(balanced, round));
  EXPECT_TRUE(functionally_equivalent(net, round));
}

TEST(blif_fuzz, truncation_is_detected_never_misparsed) {
  // Truncating a BLIF file after its header must either raise parse_error
  // or — when the cut happens to fall on a block boundary near the end —
  // still parse to the identical function. A successful parse of a
  // truncated body with a different function would be a silent misparse.
  const auto net = gen::random_mig({6, 40, 0.5, 5, 555});
  std::stringstream ss;
  io::write_blif(net, ss);
  const std::string full = ss.str();

  // Offsets strictly after the ".outputs" line: every PI/PO is declared, so
  // a parse that succeeds must expose the full interface.
  const auto outputs_line_end = full.find('\n', full.find(".outputs"));
  ASSERT_NE(outputs_line_end, std::string::npos);
  const auto header_end = outputs_line_end + 1;

  std::size_t parsed_ok = 0;
  std::size_t rejected = 0;
  for (std::size_t cut = header_end; cut < full.size(); cut += 7) {
    std::stringstream truncated{full.substr(0, cut)};
    try {
      const auto got = io::read_blif(truncated);
      ASSERT_EQ(got.num_pis(), net.num_pis()) << "cut at " << cut;
      ASSERT_EQ(got.num_pos(), net.num_pos()) << "cut at " << cut;
      EXPECT_TRUE(functionally_equivalent(net, got)) << "cut at " << cut;
      ++parsed_ok;
    } catch (const io::parse_error&) {
      ++rejected;  // detected — the acceptable outcome
    }
    // Any other exception type escapes and fails the test.
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(parsed_ok, 0u);  // cutting right before ".end" still parses
}

TEST(blif_fuzz, stray_continuations_are_parse_errors) {
  // A file ending inside a '\' continuation: the pending text never reached
  // the parser, so dropping it silently would alter the circuit.
  std::stringstream eof_continuation{".model t\n.inputs a b\n.outputs f\n.names a b f\\"};
  EXPECT_THROW((void)io::read_blif(eof_continuation), io::parse_error);

  // Same with a comment after the backslash — the '#' runs to end of line,
  // the continuation is still pending at EOF.
  std::stringstream comment_continuation{".model t\n.inputs a\n.outputs f\n.names a f \\"};
  EXPECT_THROW((void)io::read_blif(comment_continuation), io::parse_error);

  // A continuation mid-file must splice, not truncate: this is the valid
  // counterpart that must parse.
  std::stringstream spliced{".model t\n.inputs a b\n.outputs f\n.names a \\\nb f\n11 1\n.end\n"};
  const auto net = io::read_blif(spliced);
  EXPECT_EQ(net.num_pis(), 2u);
  EXPECT_EQ(net.num_pos(), 1u);
}

TEST(blif_fuzz, malformed_bodies_are_parse_errors) {
  const auto expect_rejects = [](const std::string& text) {
    std::stringstream ss{text};
    EXPECT_THROW((void)io::read_blif(ss), io::parse_error) << text;
  };
  // Cube line outside any .names block (e.g. the block line got lost).
  expect_rejects(".model t\n.inputs a\n.outputs f\n11 1\n.end\n");
  // Cube width disagrees with the .names input count.
  expect_rejects(".model t\n.inputs a b\n.outputs f\n.names a b f\n111 1\n.end\n");
  // On-set and off-set cubes mixed in one cover.
  expect_rejects(".model t\n.inputs a b\n.outputs f\n.names a b f\n11 1\n00 0\n.end\n");
  // Output never defined by any block.
  expect_rejects(".model t\n.inputs a\n.outputs f\n.end\n");
  // Unsupported sequential construct.
  expect_rejects(".model t\n.inputs a\n.outputs f\n.latch a f re clk 0\n.end\n");
}

}  // namespace
}  // namespace wavemig
