#include "wavemig/truth_table.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

namespace wavemig {
namespace {

TEST(truth_table, constants) {
  const auto zero = truth_table::constant(3, false);
  const auto one = truth_table::constant(3, true);
  EXPECT_EQ(zero.count_ones(), 0u);
  EXPECT_EQ(one.count_ones(), 8u);
  EXPECT_EQ(~zero, one);
  EXPECT_EQ(~one, zero);
}

TEST(truth_table, nth_var_patterns_small) {
  // var 0 over 2 vars: bits 1 and 3 -> 0b1010.
  const auto x0 = truth_table::nth_var(2, 0);
  EXPECT_FALSE(x0.get_bit(0));
  EXPECT_TRUE(x0.get_bit(1));
  EXPECT_FALSE(x0.get_bit(2));
  EXPECT_TRUE(x0.get_bit(3));

  const auto x1 = truth_table::nth_var(2, 1);
  EXPECT_FALSE(x1.get_bit(0));
  EXPECT_FALSE(x1.get_bit(1));
  EXPECT_TRUE(x1.get_bit(2));
  EXPECT_TRUE(x1.get_bit(3));
}

TEST(truth_table, nth_var_beyond_word_boundary) {
  // var 7 over 8 vars: second half of every 256-bit block.
  const auto x7 = truth_table::nth_var(8, 7);
  EXPECT_FALSE(x7.get_bit(0));
  EXPECT_FALSE(x7.get_bit(127));
  EXPECT_TRUE(x7.get_bit(128));
  EXPECT_TRUE(x7.get_bit(255));
  EXPECT_EQ(x7.count_ones(), 128u);
}

TEST(truth_table, bit_accessors) {
  truth_table tt{4};
  tt.set_bit(5, true);
  tt.set_bit(11, true);
  EXPECT_TRUE(tt.get_bit(5));
  EXPECT_TRUE(tt.get_bit(11));
  EXPECT_FALSE(tt.get_bit(6));
  tt.set_bit(5, false);
  EXPECT_FALSE(tt.get_bit(5));
  EXPECT_EQ(tt.count_ones(), 1u);
}

TEST(truth_table, boolean_operators_match_bitwise_semantics) {
  const auto a = truth_table::nth_var(3, 0);
  const auto b = truth_table::nth_var(3, 1);
  for (std::uint64_t i = 0; i < 8; ++i) {
    const bool va = (i >> 0) & 1u;
    const bool vb = (i >> 1) & 1u;
    EXPECT_EQ((a & b).get_bit(i), va && vb);
    EXPECT_EQ((a | b).get_bit(i), va || vb);
    EXPECT_EQ((a ^ b).get_bit(i), va != vb);
    EXPECT_EQ((~a).get_bit(i), !va);
  }
}

TEST(truth_table, majority_semantics) {
  const auto a = truth_table::nth_var(3, 0);
  const auto b = truth_table::nth_var(3, 1);
  const auto c = truth_table::nth_var(3, 2);
  const auto m = truth_table::maj(a, b, c);
  for (std::uint64_t i = 0; i < 8; ++i) {
    const int ones = static_cast<int>(i & 1u) + static_cast<int>((i >> 1) & 1u) +
                     static_cast<int>((i >> 2) & 1u);
    EXPECT_EQ(m.get_bit(i), ones >= 2) << "minterm " << i;
  }
}

TEST(truth_table, majority_contains_and_or) {
  const auto a = truth_table::nth_var(2, 0);
  const auto b = truth_table::nth_var(2, 1);
  EXPECT_EQ(truth_table::maj(a, b, truth_table::constant(2, false)), a & b);
  EXPECT_EQ(truth_table::maj(a, b, truth_table::constant(2, true)), a | b);
}

TEST(truth_table, ite_multiplexes) {
  const auto s = truth_table::nth_var(3, 2);
  const auto t = truth_table::nth_var(3, 0);
  const auto e = truth_table::nth_var(3, 1);
  const auto m = truth_table::ite(s, t, e);
  for (std::uint64_t i = 0; i < 8; ++i) {
    const bool expected = ((i >> 2) & 1u) ? ((i >> 0) & 1u) : ((i >> 1) & 1u);
    EXPECT_EQ(m.get_bit(i), expected);
  }
}

TEST(truth_table, complement_respects_top_word_mask) {
  // 2-var table uses only 4 bits of the single word; complement must not
  // leak ones into the unused region (equality would break otherwise).
  const auto zero = truth_table::constant(2, false);
  const auto inv = ~zero;
  EXPECT_EQ(inv.count_ones(), 4u);
  EXPECT_EQ(~inv, zero);
}

TEST(truth_table, hex_output) {
  const auto x0 = truth_table::nth_var(2, 0);
  EXPECT_EQ(x0.to_hex(), "a");
  const auto x1 = truth_table::nth_var(3, 1);
  EXPECT_EQ(x1.to_hex(), "cc");
  EXPECT_EQ(truth_table::constant(4, true).to_hex(), "ffff");
}

TEST(truth_table, self_duality_of_majority) {
  std::mt19937_64 rng{7};
  for (int round = 0; round < 20; ++round) {
    truth_table a{6};
    truth_table b{6};
    truth_table c{6};
    for (std::uint64_t i = 0; i < 64; ++i) {
      a.set_bit(i, (rng() & 1u) != 0);
      b.set_bit(i, (rng() & 1u) != 0);
      c.set_bit(i, (rng() & 1u) != 0);
    }
    EXPECT_EQ(~truth_table::maj(a, b, c), truth_table::maj(~a, ~b, ~c));
  }
}

TEST(truth_table, rejects_too_many_variables) {
  EXPECT_THROW(truth_table{21}, std::invalid_argument);
  EXPECT_THROW(truth_table::nth_var(4, 4), std::invalid_argument);
}

}  // namespace
}  // namespace wavemig
