// Randomized robustness tests: random netlists through random flow
// configurations must uphold every invariant, and the readers must survive
// arbitrary corruption of well-formed files (parse or throw — never crash).

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "wavemig/gen/random_mig.hpp"
#include "wavemig/io/blif.hpp"
#include "wavemig/io/mig_format.hpp"
#include "wavemig/io/verilog.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/pipeline.hpp"
#include "wavemig/simulation.hpp"
#include "wavemig/wave_schedule.hpp"

namespace wavemig {
namespace {

class flow_fuzz_test : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(flow_fuzz_test, random_flow_upholds_invariants) {
  const std::uint64_t seed = GetParam();
  std::mt19937_64 rng{seed};

  gen::random_mig_profile profile;
  profile.inputs = 8 + static_cast<unsigned>(rng() % 24);
  profile.gates = 100 + static_cast<unsigned>(rng() % 900);
  profile.locality = 0.1 + 0.7 * static_cast<double>(rng() % 100) / 100.0;
  profile.outputs = 4 + static_cast<unsigned>(rng() % 28);
  profile.seed = seed * 7919;
  const auto net = gen::random_mig(profile);

  pipeline_options opts;
  switch (rng() % 3) {
    case 0:
      opts.fanout_limit.reset();
      break;
    case 1:
      opts.fanout_limit = 2 + static_cast<unsigned>(rng() % 4);
      break;
    default:
      opts.fanout_limit = 3;
      break;
  }
  opts.fill_residual = (rng() % 2) == 0;
  opts.respect_limit_in_buffers = (rng() % 2) == 0;
  opts.schedule = static_cast<schedule_policy>(rng() % 3);

  const auto result = wave_pipeline(net, opts);

  // Function is always preserved.
  EXPECT_TRUE(functionally_equivalent(net, result.net, 4)) << "seed " << seed;
  // Balanced and aligned.
  EXPECT_TRUE(result.wave_ready) << "seed " << seed;
  // Fan-out discipline when a limit is active and enforced in balancing.
  if (opts.fanout_limit && opts.respect_limit_in_buffers) {
    EXPECT_LE(max_fanout_degree(result.net), *opts.fanout_limit) << "seed " << seed;
  }
  // Component accounting adds up.
  EXPECT_EQ(result.final_stats.components,
            result.original_stats.components + result.fogs_added +
                result.restriction_buffers_added + result.balance_buffers_added)
      << "seed " << seed;
  // Gate count never changes: the flow only adds identity components.
  EXPECT_EQ(result.final_stats.majorities, result.original_stats.majorities) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(seeds, flow_fuzz_test, ::testing::Range<std::uint64_t>(1, 21),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

/// Mutates one position of a valid file and feeds it back to the reader:
/// the reader must either produce a network or throw a library exception.
template <typename Reader>
void corruption_sweep(const std::string& original, Reader read, std::uint64_t seed) {
  std::mt19937_64 rng{seed};
  static const char garbage[] = "\0\n;()!|&~#.=xyz019 \t";
  for (int trial = 0; trial < 150; ++trial) {
    std::string mutated = original;
    const auto position = rng() % mutated.size();
    switch (rng() % 3) {
      case 0:  // replace
        mutated[position] = garbage[rng() % (sizeof(garbage) - 1)];
        break;
      case 1:  // truncate
        mutated.resize(position);
        break;
      default:  // duplicate a chunk
        mutated.insert(position, mutated.substr(position / 2, 17));
        break;
    }
    try {
      std::stringstream ss{mutated};
      const auto net = read(ss);
      (void)net;  // parsed fine: mutation kept the file well-formed
    } catch (const io::parse_error&) {
    } catch (const std::exception&) {
      // Any std::exception is acceptable; crashes / UB are not.
    }
  }
}

TEST(io_fuzz, mig_reader_survives_corruption) {
  const auto net = gen::random_mig({8, 60, 0.4, 8, 5});
  std::stringstream ss;
  io::write_mig(net, ss);
  corruption_sweep(ss.str(), [](std::istream& is) { return io::read_mig(is); }, 101);
}

TEST(io_fuzz, blif_reader_survives_corruption) {
  const auto net = gen::random_mig({8, 60, 0.4, 8, 6});
  std::stringstream ss;
  io::write_blif(net, ss);
  corruption_sweep(ss.str(), [](std::istream& is) { return io::read_blif(is); }, 102);
}

TEST(io_fuzz, verilog_reader_survives_corruption) {
  const auto net = gen::random_mig({8, 60, 0.4, 8, 7});
  std::stringstream ss;
  io::write_verilog(net, ss);
  corruption_sweep(ss.str(), [](std::istream& is) { return io::read_verilog(is); }, 103);
}

TEST(io_fuzz, readers_accept_empty_input) {
  std::stringstream a{""};
  const auto net = io::read_mig(a);
  EXPECT_EQ(net.num_pis(), 0u);
  std::stringstream b{""};
  EXPECT_NO_THROW(io::read_blif(b));
  std::stringstream c{""};
  EXPECT_NO_THROW(io::read_verilog(c));
}

}  // namespace
}  // namespace wavemig
