#include "wavemig/depth_rewriting.hpp"

#include <gtest/gtest.h>

#include "wavemig/gen/arith.hpp"
#include "wavemig/gen/random_mig.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/simulation.hpp"

namespace wavemig {
namespace {

TEST(depth_rewriting, preserves_function_on_arithmetic) {
  const auto net = gen::ripple_adder_circuit(10);
  const auto rewritten = depth_rewrite(net);
  EXPECT_TRUE(functionally_equivalent(net, rewritten));
}

TEST(depth_rewriting, never_increases_depth) {
  for (std::uint64_t seed : {5ull, 6ull, 7ull, 8ull}) {
    const auto net = gen::random_mig({12, 300, 0.6, 12, seed});
    const auto rewritten = depth_rewrite(net);
    EXPECT_LE(compute_levels(rewritten).depth, compute_levels(net).depth) << "seed " << seed;
    EXPECT_TRUE(functionally_equivalent(net, rewritten)) << "seed " << seed;
  }
}

TEST(depth_rewriting, flattens_unbalanced_and_chain) {
  // AND chain a0 & a1 & ... & a7 built left-deep: depth 7. Majority
  // distributivity/associativity must restructure it toward log depth.
  mig_network net;
  signal acc = net.create_pi();
  for (int i = 1; i < 8; ++i) {
    acc = net.create_and(acc, net.create_pi());
  }
  net.create_po(acc);
  ASSERT_EQ(compute_levels(net).depth, 7u);

  const auto rewritten = depth_rewrite(net);
  EXPECT_LE(compute_levels(rewritten).depth, 4u);
  EXPECT_TRUE(functionally_equivalent(net, rewritten));
}

TEST(depth_rewriting, fig1_style_example_reduces_depth) {
  // The paper's Fig. 1: f = x0*x1*x3 + x2*x3 (optimal AOIG depth 3 as MIG),
  // built here deliberately unbalanced with depth 4.
  mig_network net;
  const signal x0 = net.create_pi("x0");
  const signal x1 = net.create_pi("x1");
  const signal x2 = net.create_pi("x2");
  const signal x3 = net.create_pi("x3");
  const signal a = net.create_and(x0, x1);
  const signal b = net.create_and(a, x3);   // depth 2 chain
  const signal c = net.create_and(x2, x3);
  const signal f = net.create_or(b, c);
  net.create_po(f, "f");
  const auto before = compute_levels(net).depth;

  const auto rewritten = depth_rewrite(net);
  EXPECT_LE(compute_levels(rewritten).depth, before);
  EXPECT_TRUE(functionally_equivalent(net, rewritten));
}

TEST(depth_rewriting, area_neutral_mode_does_not_duplicate) {
  const auto net = gen::random_mig({10, 150, 0.7, 10, 17});
  depth_rewriting_options opts;
  opts.allow_area_increase = false;
  const auto rewritten = depth_rewrite(net, opts);
  EXPECT_LE(rewritten.num_majorities(), net.num_majorities() + 2u);
  EXPECT_TRUE(functionally_equivalent(net, rewritten));
}

TEST(depth_rewriting, idempotent_at_fixpoint) {
  const auto net = gen::random_mig({12, 400, 0.5, 12, 23});
  const auto once = depth_rewrite(net);
  const auto twice = depth_rewrite(once);
  EXPECT_EQ(compute_levels(once).depth, compute_levels(twice).depth);
  EXPECT_TRUE(functionally_equivalent(once, twice));
}

TEST(depth_rewriting, preserves_interface) {
  const auto net = gen::multiplier_circuit(4);
  const auto rewritten = depth_rewrite(net);
  ASSERT_EQ(rewritten.num_pis(), net.num_pis());
  ASSERT_EQ(rewritten.num_pos(), net.num_pos());
  for (std::size_t i = 0; i < net.num_pis(); ++i) {
    EXPECT_EQ(rewritten.pi_name(i), net.pi_name(i));
  }
  for (std::size_t i = 0; i < net.num_pos(); ++i) {
    EXPECT_EQ(rewritten.po_name(i), net.po_name(i));
  }
}

}  // namespace
}  // namespace wavemig
