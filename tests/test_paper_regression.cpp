// End-to-end regression against the qualitative findings of the paper
// (Zografos et al., DATE 2017). Absolute numbers depend on the regenerated
// benchmark suite, so every assertion uses the loose bands recorded in
// EXPERIMENTS.md: who wins, in which direction, and by roughly what factor.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "wavemig/gen/suite.hpp"
#include "wavemig/metrics.hpp"
#include "wavemig/pipeline.hpp"
#include "wavemig/stats.hpp"

namespace wavemig {
namespace {

const std::vector<std::string>& sample_names() {
  // A representative slice: shallow control, deep arithmetic, crypto, misc.
  static const std::vector<std::string> names{
      "sasc", "i2c", "mul8", "mul16", "adder32", "adder64", "hamming",
      "crc32_8", "revx", "barrel64", "voter101", "max32x4", "int2float16"};
  return names;
}

TEST(paper_fig5, buffer_counts_follow_a_power_law) {
  // Full 37-benchmark sweep, like the paper's scatter plot.
  std::vector<double> sizes;
  std::vector<double> buffers;
  std::vector<double> ratios;
  for (const auto& bench : gen::build_suite()) {
    pipeline_options opts;
    opts.fanout_limit.reset();  // BUF alone, as in Fig. 5
    const auto result = wave_pipeline(bench.net, opts);
    const auto size = static_cast<double>(result.original_stats.components);
    const auto added = static_cast<double>(result.balance_buffers_added);
    sizes.push_back(size);
    buffers.push_back(added);
    if (added > 0) {
      ratios.push_back(added / size);
    }
    // Per-circuit sanity: even the most skewed netlist stays within 30x.
    EXPECT_LT(added / size, 30.0) << bench.name;
  }
  const auto fit = fit_power_law(sizes, buffers);
  // Paper: B(s) = 7.95 s^0.9 over its suite. Our regenerated suite keeps the
  // qualitative shape: a power law with near-linear exponent and positive
  // correlation; exact constants differ (see EXPERIMENTS.md).
  EXPECT_GT(fit.exponent, 0.5);
  EXPECT_LT(fit.exponent, 1.7);
  EXPECT_GT(fit.r_squared, 0.25);
  // "On average, the number of buffers inserted ranged from 2x to 4x the
  // original netlist size" — our suite average must land in a loose band
  // around that range.
  const double avg_ratio = mean(ratios);
  EXPECT_GT(avg_ratio, 0.5);
  EXPECT_LT(avg_ratio, 8.0);
}

TEST(paper_fig7, critical_path_increase_shrinks_with_looser_limits) {
  // Paper averages: +140% (FO2), +57% (FO3), +36% (FO4), +26% (FO5).
  std::vector<double> increase_by_limit;
  for (unsigned k : {2u, 3u, 4u, 5u}) {
    std::vector<double> increases;
    for (const auto& name : sample_names()) {
      const auto net = gen::build_benchmark(name);
      pipeline_options opts;
      opts.fanout_limit = k;
      opts.insert_buffers = false;
      const auto result = wave_pipeline(net, opts);
      increases.push_back(static_cast<double>(result.depth_after) /
                              static_cast<double>(result.depth_before) -
                          1.0);
    }
    increase_by_limit.push_back(mean(increases));
  }
  // Strictly decreasing in the limit, and FO2 dominant.
  EXPECT_GT(increase_by_limit[0], increase_by_limit[1]);
  EXPECT_GT(increase_by_limit[1], increase_by_limit[2]);
  EXPECT_GE(increase_by_limit[2], increase_by_limit[3]);
  EXPECT_GT(increase_by_limit[0], 0.25);  // FO2 hurts substantially
  EXPECT_LT(increase_by_limit[3], 1.00);  // FO5 is mild
}

TEST(paper_fig8, component_blowup_ordering) {
  // Normalized sizes: 1 < FO5 < FO4 < FO3 < FO2 (restriction alone), all
  // below their FOx+BUF counterparts, and BUF alone below FO2+BUF.
  double previous_alone = 1.0;
  double previous_combined = 0.0;
  std::vector<double> combined_by_tightness;
  std::vector<double> buf_alone;
  for (const auto& name : sample_names()) {
    const auto net = gen::build_benchmark(name);
    pipeline_options opts;
    opts.fanout_limit.reset();
    const auto r = wave_pipeline(net, opts);
    buf_alone.push_back(static_cast<double>(r.final_stats.components) /
                        static_cast<double>(r.original_stats.components));
  }
  const double buf_norm = mean(buf_alone);
  EXPECT_GT(buf_norm, 1.5);  // paper: 3.81

  for (unsigned k : {5u, 4u, 3u, 2u}) {
    std::vector<double> alone;
    std::vector<double> combined;
    for (const auto& name : sample_names()) {
      const auto net = gen::build_benchmark(name);
      pipeline_options fo_only;
      fo_only.fanout_limit = k;
      fo_only.insert_buffers = false;
      const auto a = wave_pipeline(net, fo_only);
      alone.push_back(static_cast<double>(a.final_stats.components) /
                      static_cast<double>(a.original_stats.components));
      pipeline_options both;
      both.fanout_limit = k;
      const auto b = wave_pipeline(net, both);
      combined.push_back(static_cast<double>(b.final_stats.components) /
                         static_cast<double>(b.original_stats.components));
    }
    const double alone_norm = mean(alone);
    const double combined_norm = mean(combined);
    EXPECT_GT(alone_norm, previous_alone) << "FO" << k;  // tighter = bigger
    EXPECT_GT(combined_norm, alone_norm) << "FO" << k;   // +BUF grows further
    // Tighter limits cost more in the combined flow too, up to near-ties:
    // deep FOG trees double as balancing buffers, so adjacent limits can
    // land within a few percent of each other.
    EXPECT_GT(combined_norm, 0.85 * previous_combined) << "FO" << k;
    EXPECT_GT(combined_norm, buf_norm) << "FO" << k;  // observation (a)
    previous_alone = alone_norm;
    previous_combined = std::max(previous_combined, combined_norm);
    combined_by_tightness.push_back(combined_norm);
  }
  // End to end, FO2+BUF must clearly exceed FO5+BUF (paper: 9.74 vs 4.91).
  EXPECT_GT(combined_by_tightness.back(), combined_by_tightness.front());
}

TEST(paper_fig9, all_technologies_gain_from_wave_pipelining) {
  // Paper: T/A gains 5x/8x/3x and T/P gains 23x/13x/5x for SWD/QCA/NML.
  // Band: every technology must gain in both metrics, averaged over the
  // sample, with the SWD T/P gain the largest of the T/P column.
  std::vector<double> ta_swd, tp_swd, ta_qca, tp_qca, ta_nml, tp_nml;
  for (const auto& name : sample_names()) {
    const auto net = gen::build_benchmark(name);
    const auto piped = wave_pipeline(net);  // FO3 + BUF as in §V
    const auto swd = compare_metrics(net, piped.net, technology::swd());
    const auto qca = compare_metrics(net, piped.net, technology::qca());
    const auto nml = compare_metrics(net, piped.net, technology::nml());
    ta_swd.push_back(swd.ta_gain);
    tp_swd.push_back(swd.tp_gain);
    ta_qca.push_back(qca.ta_gain);
    tp_qca.push_back(qca.tp_gain);
    ta_nml.push_back(nml.ta_gain);
    tp_nml.push_back(nml.tp_gain);
  }
  EXPECT_GT(mean(ta_swd), 1.5);
  EXPECT_GT(mean(ta_qca), 1.5);
  EXPECT_GT(mean(ta_nml), 1.0);
  EXPECT_GT(mean(tp_swd), 3.0);
  EXPECT_GT(mean(tp_qca), 2.0);
  EXPECT_GT(mean(tp_nml), 1.0);
  // Column orderings from Fig. 9: SWD tops T/P; NML is the weakest gainer.
  EXPECT_GT(mean(tp_swd), mean(tp_nml));
  EXPECT_GT(mean(tp_qca), mean(tp_nml));
  EXPECT_GT(mean(ta_qca), mean(ta_nml));
}

TEST(paper_table2, wp_throughput_is_constant_per_technology) {
  // Table II: every WP row shows 793.65 (SWD), 83333.33 (QCA), 16.67 (NML)
  // MOPS regardless of the circuit.
  for (const auto& name : {"sasc", "mul8", "revx"}) {
    const auto net = gen::build_benchmark(name);
    const auto piped = wave_pipeline(net);
    const auto swd = compute_metrics(piped.net, technology::swd(), true);
    const auto qca = compute_metrics(piped.net, technology::qca(), true);
    const auto nml = compute_metrics(piped.net, technology::nml(), true);
    EXPECT_NEAR(swd.throughput_mops, 793.65, 0.01) << name;
    EXPECT_NEAR(qca.throughput_mops, 83333.33, 0.5) << name;
    EXPECT_NEAR(nml.throughput_mops, 16.67, 0.01) << name;
  }
}

TEST(paper_table2, swd_power_decreases_under_wave_pipelining) {
  // §V: "the calculated power metric for SWD ... tends to decrease for the
  // wave pipelined benchmarks which is counter-intuitive" — an artifact of
  // the energy/latency model with sense-amp-dominated energy.
  for (const auto& name : {"sasc", "mul8", "hamming"}) {
    const auto net = gen::build_benchmark(name);
    const auto piped = wave_pipeline(net);
    const auto cmp = compare_metrics(net, piped.net, technology::swd());
    EXPECT_LT(cmp.pipelined.power_uw, cmp.original.power_uw) << name;
  }
}

TEST(paper_table2, nml_power_increases_under_wave_pipelining) {
  // NML has no sense amplifiers: energy scales with the inflated netlist,
  // so power rises (Table II NML columns).
  for (const auto& name : {"sasc", "mul8", "hamming"}) {
    const auto net = gen::build_benchmark(name);
    const auto piped = wave_pipeline(net);
    const auto cmp = compare_metrics(net, piped.net, technology::nml());
    EXPECT_GT(cmp.pipelined.power_uw, cmp.original.power_uw) << name;
  }
}

}  // namespace
}  // namespace wavemig
