#include "wavemig/levels.hpp"

#include <gtest/gtest.h>

#include "wavemig/gen/arith.hpp"

namespace wavemig {
namespace {

TEST(levels, pis_are_level_zero_and_gates_stack) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal m1 = net.create_maj(a, b, c);
  const signal m2 = net.create_maj(m1, a, b);
  net.create_po(m2);

  const auto levels = compute_levels(net);
  EXPECT_EQ(levels[a.index()], 0u);
  EXPECT_EQ(levels[m1.index()], 1u);
  EXPECT_EQ(levels[m2.index()], 2u);
  EXPECT_EQ(levels.depth, 2u);
}

TEST(levels, constant_fanins_do_not_count) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  // AND gate: constant fan-in must not anchor the gate at level 1 via the
  // constant; it is level 1 because of a and b.
  const signal g = net.create_and(a, b);
  const signal h = net.create_and(g, a);
  net.create_po(h);
  const auto levels = compute_levels(net);
  EXPECT_EQ(levels[g.index()], 1u);
  EXPECT_EQ(levels[h.index()], 2u);
}

TEST(levels, buffers_and_fogs_occupy_levels) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal m = net.create_maj(a, b, c);
  const signal buf = net.create_buffer(m);
  const signal fog = net.create_fanout(buf);
  net.create_po(fog);
  const auto levels = compute_levels(net);
  EXPECT_EQ(levels[buf.index()], 2u);
  EXPECT_EQ(levels[fog.index()], 3u);
  EXPECT_EQ(levels.depth, 3u);
}

TEST(levels, depth_is_max_over_outputs) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal shallow = net.create_maj(a, b, c);
  const signal deep = net.create_maj(net.create_maj(shallow, a, b), c, a);
  net.create_po(shallow, "shallow");
  net.create_po(deep, "deep");
  EXPECT_EQ(compute_levels(net).depth, 3u);
}

TEST(levels, constant_only_output_keeps_depth_zero) {
  mig_network net;
  net.create_pi();
  net.create_po(constant1);
  EXPECT_EQ(compute_levels(net).depth, 0u);
}

TEST(levels, max_exclusive_base_distance_is_one_below) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal m1 = net.create_maj(a, b, c);
  const signal m2 = net.create_maj(m1, a, b);
  net.create_po(m2);
  const auto levels = compute_levels(net);
  EXPECT_EQ(max_exclusive_base_distance(net, levels, m2.index()), 1u);
  EXPECT_EQ(max_exclusive_base_distance(net, levels, m1.index()), 0u);
  EXPECT_EQ(max_exclusive_base_distance(net, levels, a.index()), 0u);
}

TEST(fanouts, edges_and_po_refs) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal m1 = net.create_maj(a, b, c);
  const signal m2 = net.create_maj(m1, a, !b);
  net.create_po(m1, "f");
  net.create_po(m2, "g");

  const auto fo = compute_fanouts(net);
  // m1 feeds m2 (one slot) and one PO.
  EXPECT_EQ(fo.degree(m1.index()), 2u);
  bool found_po = false;
  bool found_gate = false;
  for (const auto& e : fo.edges[m1.index()]) {
    if (e.consumer == fanout_map::po_consumer) {
      EXPECT_EQ(e.slot, 0u);
      found_po = true;
    } else {
      EXPECT_EQ(e.consumer, m2.index());
      found_gate = true;
    }
  }
  EXPECT_TRUE(found_po);
  EXPECT_TRUE(found_gate);
  // a feeds both gates.
  EXPECT_EQ(fo.degree(a.index()), 2u);
}

TEST(fanouts, constants_have_no_edges) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  net.create_po(net.create_and(a, b));
  net.create_po(constant0, "zero");
  const auto fo = compute_fanouts(net);
  EXPECT_TRUE(fo.edges[0].empty());
}

TEST(fanouts, max_fanout_degree) {
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal m = net.create_maj(a, b, c);
  for (int i = 0; i < 5; ++i) {
    net.create_po(m, "o" + std::to_string(i));
  }
  EXPECT_EQ(max_fanout_degree(net), 5u);
}

TEST(stats_struct, aggregates_counts_and_depth) {
  const auto net = gen::ripple_adder_circuit(8);
  const auto s = compute_stats(net);
  EXPECT_EQ(s.pis, 16u);
  EXPECT_EQ(s.pos, 9u);
  EXPECT_EQ(s.majorities, net.num_majorities());
  EXPECT_EQ(s.components, net.num_components());
  EXPECT_GE(s.depth, 8u);  // ripple chain
  EXPECT_GT(s.max_fanout, 1u);
}

}  // namespace
}  // namespace wavemig
