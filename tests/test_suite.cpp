#include "wavemig/gen/suite.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "wavemig/gen/arith.hpp"
#include "wavemig/gen/crypto.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/simulation.hpp"

namespace wavemig {
namespace {

TEST(suite, has_exactly_37_benchmarks) {
  // §V: "We used 37 benchmarks to study the impact of wave pipelining".
  EXPECT_EQ(gen::benchmark_names().size(), 37u);
  EXPECT_EQ(gen::build_suite().size(), 37u);
}

TEST(suite, names_are_unique) {
  const auto& names = gen::benchmark_names();
  const std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

TEST(suite, contains_all_table2_circuits) {
  const auto& names = gen::benchmark_names();
  for (const auto& required : gen::table2_names()) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end()) << required;
  }
  EXPECT_EQ(gen::table2_names().size(), 7u);
  EXPECT_EQ(gen::table2_names().front(), "sasc");
  EXPECT_EQ(gen::table2_names().back(), "diffeq1");
}

TEST(suite, build_by_name_matches_suite_entry) {
  const auto net = gen::build_benchmark("mul8");
  const auto suite = gen::build_suite();
  const auto it = std::find_if(suite.begin(), suite.end(),
                               [](const auto& b) { return b.name == "mul8"; });
  ASSERT_NE(it, suite.end());
  EXPECT_EQ(net.num_majorities(), it->net.num_majorities());
  EXPECT_TRUE(functionally_equivalent(net, it->net));
}

TEST(suite, unknown_name_throws) {
  EXPECT_THROW(gen::build_benchmark("nonexistent"), std::invalid_argument);
}

TEST(suite, sizes_span_two_orders_of_magnitude) {
  // Fig. 5's x-axis runs from ~1e2 to ~1e5 components.
  std::size_t smallest = SIZE_MAX;
  std::size_t largest = 0;
  for (const auto& b : gen::build_suite()) {
    smallest = std::min(smallest, b.net.num_majorities());
    largest = std::max(largest, b.net.num_majorities());
  }
  EXPECT_LT(smallest, 1000u);
  EXPECT_GT(largest, 15000u);
  EXPECT_GT(largest / smallest, 100u);
}

TEST(suite, depth_profile_mirrors_paper_range) {
  // Table II spans depths 6..219; the suite must offer both shallow control
  // circuits and deep arithmetic ones.
  std::uint32_t shallowest = UINT32_MAX;
  std::uint32_t deepest = 0;
  for (const auto& b : gen::build_suite()) {
    const auto d = compute_levels(b.net).depth;
    shallowest = std::min(shallowest, d);
    deepest = std::max(deepest, d);
  }
  EXPECT_LE(shallowest, 15u);
  EXPECT_GE(deepest, 120u);
}

TEST(suite, every_benchmark_is_pure_mig) {
  // Suite circuits are logic netlists: majority gates only, no physical
  // buffers or FOGs before the wave-pipelining passes run.
  for (const auto& b : gen::build_suite()) {
    EXPECT_EQ(b.net.num_buffers(), 0u) << b.name;
    EXPECT_EQ(b.net.num_fanout_gates(), 0u) << b.name;
    EXPECT_GT(b.net.num_majorities(), 0u) << b.name;
    EXPECT_GT(b.net.num_pos(), 0u) << b.name;
  }
}

TEST(suite, depth_optimization_preserves_generator_function) {
  // Suite circuits are generator outputs run through depth rewriting
  // (the paper's "already optimized" precondition); the optimization must
  // not change the function.
  const auto raw = gen::des_circuit(4);
  const auto optimized = gen::build_benchmark("des_area");
  EXPECT_TRUE(functionally_equivalent(raw, optimized));
  const auto raw_add = gen::ripple_adder_circuit(32);
  const auto opt_add = gen::build_benchmark("adder32");
  EXPECT_TRUE(functionally_equivalent(raw_add, opt_add));
  EXPECT_LT(compute_levels(opt_add).depth, compute_levels(raw_add).depth);
}

TEST(suite, deterministic_across_builds) {
  const auto a = gen::build_suite();
  const auto b = gen::build_suite();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].net.num_majorities(), b[i].net.num_majorities()) << a[i].name;
    EXPECT_EQ(a[i].net.num_nodes(), b[i].net.num_nodes()) << a[i].name;
  }
}

}  // namespace
}  // namespace wavemig
