#include "wavemig/synthesis.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "wavemig/simulation.hpp"

namespace wavemig {
namespace {

/// Synthesizes `tt` into a fresh network and returns the simulated result.
truth_table round_trip(const truth_table& tt) {
  mig_network net;
  std::vector<signal> inputs;
  for (unsigned i = 0; i < tt.num_vars(); ++i) {
    inputs.push_back(net.create_pi());
  }
  net.create_po(synthesize_truth_table(net, tt, inputs));
  return simulate_truth_tables(net)[0];
}

TEST(synthesis, constants_and_literals_are_free) {
  mig_network net;
  std::vector<signal> inputs{net.create_pi(), net.create_pi()};
  EXPECT_EQ(synthesize_truth_table(net, truth_table::constant(2, false), inputs), constant0);
  EXPECT_EQ(synthesize_truth_table(net, truth_table::constant(2, true), inputs), constant1);
  EXPECT_EQ(synthesize_truth_table(net, truth_table::nth_var(2, 0), inputs), inputs[0]);
  EXPECT_EQ(synthesize_truth_table(net, ~truth_table::nth_var(2, 1), inputs), !inputs[1]);
  EXPECT_EQ(net.num_majorities(), 0u);
}

TEST(synthesis, two_variable_functions_exact) {
  for (unsigned code = 0; code < 16; ++code) {
    truth_table tt{2};
    for (unsigned b = 0; b < 4; ++b) {
      tt.set_bit(b, (code >> b) & 1u);
    }
    EXPECT_EQ(round_trip(tt), tt) << "function code " << code;
  }
}

TEST(synthesis, random_functions_exact) {
  std::mt19937_64 rng{99};
  for (unsigned vars = 3; vars <= 8; ++vars) {
    for (int round = 0; round < 5; ++round) {
      truth_table tt{vars};
      for (std::uint64_t b = 0; b < tt.num_bits(); ++b) {
        tt.set_bit(b, (rng() & 1u) != 0);
      }
      EXPECT_EQ(round_trip(tt), tt) << vars << " vars, round " << round;
    }
  }
}

TEST(synthesis, shares_equal_cofactors) {
  // f = mux(x2; g, g) degenerates: both cofactors equal -> no mux needed.
  // Build f where top cofactors are identical by construction.
  truth_table tt{3};
  for (std::uint64_t b = 0; b < 4; ++b) {
    const bool v = b == 1 || b == 2;  // xor of x0,x1
    tt.set_bit(b, v);
    tt.set_bit(b + 4, v);
  }
  mig_network net;
  std::vector<signal> inputs{net.create_pi(), net.create_pi(), net.create_pi()};
  net.create_po(synthesize_truth_table(net, tt, inputs));
  // An xor costs 3 gates; a top mux would add 3 more. Cofactor sharing via
  // the cache must avoid the mux (both branches identical -> create_mux
  // reduces to the branch).
  EXPECT_EQ(net.num_majorities(), 3u);
}

TEST(synthesis, input_count_mismatch_throws) {
  mig_network net;
  std::vector<signal> inputs{net.create_pi()};
  EXPECT_THROW(synthesize_truth_table(net, truth_table{2}, inputs), std::invalid_argument);
}

}  // namespace
}  // namespace wavemig
