#include "wavemig/functional_reduction.hpp"

#include <gtest/gtest.h>

#include "wavemig/gen/arith.hpp"
#include "wavemig/gen/random_mig.hpp"
#include "wavemig/gen/suite.hpp"
#include "wavemig/simulation.hpp"

namespace wavemig {
namespace {

TEST(functional_reduction, merges_disguised_majority) {
  // g = (a&b) | ((a|b)&c) equals M(a,b,c) but is built from four distinct
  // gates; structural hashing cannot merge them, cut functions can.
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal direct = net.create_maj(a, b, c);
  const signal disguised = net.create_or(net.create_and(a, b), net.create_and(net.create_or(a, b), c));
  net.create_po(direct, "f");
  net.create_po(disguised, "g");
  ASSERT_EQ(net.num_majorities(), 5u);

  const auto result = reduce_functionally(net);
  EXPECT_TRUE(functionally_equivalent(net, result.net));
  EXPECT_LT(result.net.num_majorities(), net.num_majorities());
  // Both outputs must now share one driver.
  EXPECT_EQ(result.net.po_signal(0).index(), result.net.po_signal(1).index());
}

TEST(functional_reduction, merges_complemented_equivalents) {
  // h = !(!a & !b) equals a | b: merged up to complement.
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal plain = net.create_or(a, b);
  // Build the complement through a different structure involving c.
  const signal round_about = !net.create_and(net.create_and(!a, !b), net.create_or(c, !c));
  net.create_po(net.create_and(plain, c), "f");
  net.create_po(net.create_and(round_about, c), "g");

  const auto result = reduce_functionally(net);
  EXPECT_TRUE(functionally_equivalent(net, result.net));
  EXPECT_LE(result.net.num_majorities(), net.num_majorities());
}

TEST(functional_reduction, detects_constant_cones) {
  // (a & b) & (!a | !b) is constant 0 over the cut {a, b}.
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal zero = net.create_and(net.create_and(a, b), net.create_or(!a, !b));
  net.create_po(zero, "z");
  const auto result = reduce_functionally(net);
  EXPECT_TRUE(functionally_equivalent(net, result.net));
  EXPECT_EQ(result.net.num_majorities(), 0u);
  EXPECT_EQ(result.net.po_signal(0), constant0);
}

TEST(functional_reduction, preserves_function_on_random_networks) {
  for (std::uint64_t seed : {61ull, 62ull, 63ull, 64ull}) {
    const auto net = gen::random_mig({12, 400, 0.4, 12, seed});
    const auto result = reduce_functionally(net);
    EXPECT_TRUE(functionally_equivalent(net, result.net)) << "seed " << seed;
    EXPECT_LE(result.net.num_majorities(), net.num_majorities()) << "seed " << seed;
  }
}

TEST(functional_reduction, preserves_function_on_suite_circuits) {
  for (const auto& name : {"mul8", "sasc", "crc32_8", "hamming_codec", "int2float16"}) {
    const auto net = gen::build_benchmark(name);
    const auto result = reduce_functionally(net);
    EXPECT_TRUE(functionally_equivalent(net, result.net, 4)) << name;
    EXPECT_LE(result.net.num_majorities(), net.num_majorities()) << name;
  }
}

TEST(functional_reduction, physical_components_are_barriers) {
  // Buffers must not be merged through: a buffered copy is a distinct
  // physical path even when functionally identical.
  mig_network net;
  const signal a = net.create_pi();
  const signal b = net.create_pi();
  const signal c = net.create_pi();
  const signal m = net.create_maj(a, b, c);
  const signal buffered = net.create_buffer(m);
  net.create_po(m, "direct");
  net.create_po(buffered, "delayed");
  const auto result = reduce_functionally(net);
  EXPECT_EQ(result.net.num_buffers(), 1u);
  EXPECT_NE(result.net.po_signal(0), result.net.po_signal(1));
}

TEST(functional_reduction, idempotent) {
  const auto net = gen::random_mig({10, 200, 0.5, 10, 71});
  const auto once = reduce_functionally(net);
  const auto twice = reduce_functionally(once.net);
  EXPECT_EQ(twice.net.num_majorities(), once.net.num_majorities());
  EXPECT_TRUE(functionally_equivalent(once.net, twice.net));
}

TEST(functional_reduction, interface_preserved) {
  const auto net = gen::multiplier_circuit(4);
  const auto result = reduce_functionally(net);
  ASSERT_EQ(result.net.num_pis(), net.num_pis());
  ASSERT_EQ(result.net.num_pos(), net.num_pos());
  EXPECT_EQ(result.net.pi_name(0), net.pi_name(0));
  EXPECT_EQ(result.net.po_name(0), net.po_name(0));
}

}  // namespace
}  // namespace wavemig
