#include "wavemig/balance_rewriting.hpp"

#include <gtest/gtest.h>

#include <string>

#include "wavemig/buffer_insertion.hpp"
#include "wavemig/depth_rewriting.hpp"
#include "wavemig/gen/arith.hpp"
#include "wavemig/gen/random_mig.hpp"
#include "wavemig/gen/suite.hpp"
#include "wavemig/levels.hpp"
#include "wavemig/scheduling.hpp"
#include "wavemig/simulation.hpp"

namespace wavemig {
namespace {

TEST(balance_rewriting, preserves_function) {
  for (std::uint64_t seed : {41ull, 42ull, 43ull}) {
    const auto net = gen::random_mig({14, 400, 0.6, 14, seed});
    const auto rewritten = balance_rewrite(net);
    EXPECT_TRUE(functionally_equivalent(net, rewritten)) << "seed " << seed;
  }
}

TEST(balance_rewriting, never_increases_depth) {
  for (const auto& name : {"mul8", "sasc", "crc32_8", "int2float16"}) {
    const auto net = gen::build_benchmark(name);
    const auto rewritten = balance_rewrite(net);
    EXPECT_LE(compute_levels(rewritten).depth, compute_levels(net).depth) << name;
    EXPECT_TRUE(functionally_equivalent(net, rewritten, 4)) << name;
  }
}

TEST(balance_rewriting, reduces_imbalance_on_skewed_input) {
  // A left-deep AND chain consumed together with its own leaves is heavily
  // skewed; balance rewriting must cut the total slack.
  mig_network net;
  std::vector<signal> leaves;
  for (int i = 0; i < 16; ++i) {
    leaves.push_back(net.create_pi());
  }
  signal acc = leaves[0];
  for (int i = 1; i < 16; ++i) {
    acc = net.create_and(acc, leaves[i]);
  }
  net.create_po(acc);

  const auto before = slack_sum(net, compute_levels(net));
  const auto rewritten = balance_rewrite(net);
  const auto after = slack_sum(rewritten, compute_levels(rewritten));
  EXPECT_LT(after, before);
  EXPECT_LT(compute_levels(rewritten).depth, compute_levels(net).depth);
  EXPECT_TRUE(functionally_equivalent(net, rewritten));
}

TEST(balance_rewriting, matches_depth_rewriting_depth) {
  // Wave-aware scoring is depth-first lexicographic: it must reach the same
  // depth as plain depth rewriting (spread only breaks ties).
  for (std::uint64_t seed : {7ull, 8ull}) {
    const auto net = gen::random_mig({12, 300, 0.7, 12, seed});
    const auto by_depth = depth_rewrite(net);
    const auto by_balance = balance_rewrite(net);
    EXPECT_LE(compute_levels(by_balance).depth, compute_levels(by_depth).depth + 1)
        << "seed " << seed;
  }
}

TEST(balance_rewriting, never_regresses_buffer_count_materially) {
  // Honest finding (see ablation_wave_aware): on already depth-optimized
  // netlists the local spread tie-breaking moves the buffer bill by ~0.1%
  // on average — the paper's conjecture needs global restructuring (ALAP
  // scheduling delivers it; see test_scheduling). The invariant here is
  // safety: the pass must never inflate the bill materially.
  for (const auto& name : {"mul8", "mul16", "hamming", "revx", "mac16"}) {
    const auto net = gen::build_benchmark(name);
    const auto rewritten = balance_rewrite(net);
    const auto base = insert_buffers(net).buffers_added;
    const auto tuned = insert_buffers(rewritten).buffers_added;
    EXPECT_LT(static_cast<double>(tuned), static_cast<double>(base) * 1.2) << name;
  }
}

TEST(balance_rewriting, area_neutral_mode) {
  const auto net = gen::random_mig({12, 300, 0.5, 12, 91});
  balance_rewriting_options opts;
  opts.allow_area_increase = false;
  const auto rewritten = balance_rewrite(net, opts);
  EXPECT_LE(rewritten.num_majorities(), net.num_majorities() + 2);
  EXPECT_TRUE(functionally_equivalent(net, rewritten));
}

TEST(balance_rewriting, preserves_interface) {
  const auto net = gen::multiplier_circuit(4);
  const auto rewritten = balance_rewrite(net);
  ASSERT_EQ(rewritten.num_pis(), net.num_pis());
  ASSERT_EQ(rewritten.num_pos(), net.num_pos());
  EXPECT_EQ(rewritten.po_name(0), net.po_name(0));
}

}  // namespace
}  // namespace wavemig
