#include "wavemig/pipeline.hpp"

#include <gtest/gtest.h>

#include "wavemig/gen/arith.hpp"
#include "wavemig/gen/suite.hpp"
#include "wavemig/simulation.hpp"
#include "wavemig/wave_schedule.hpp"
#include "wavemig/wave_simulator.hpp"

namespace wavemig {
namespace {

TEST(pipeline, default_flow_is_fo3_plus_buf) {
  const auto net = gen::multiplier_circuit(4);
  const auto result = wave_pipeline(net);
  EXPECT_TRUE(result.wave_ready);
  EXPECT_GT(result.fogs_added, 0u);
  EXPECT_GT(result.balance_buffers_added, 0u);
  EXPECT_TRUE(functionally_equivalent(net, result.net));
  EXPECT_GE(result.depth_after, result.depth_before);
}

TEST(pipeline, buffer_only_flow) {
  const auto net = gen::multiplier_circuit(4);
  pipeline_options opts;
  opts.fanout_limit.reset();
  const auto result = wave_pipeline(net, opts);
  EXPECT_TRUE(result.wave_ready);
  EXPECT_EQ(result.fogs_added, 0u);
  EXPECT_EQ(result.depth_after, result.depth_before);
  EXPECT_TRUE(functionally_equivalent(net, result.net));
}

TEST(pipeline, restriction_only_flow) {
  const auto net = gen::multiplier_circuit(4);
  pipeline_options opts;
  opts.insert_buffers = false;
  const auto result = wave_pipeline(net, opts);
  EXPECT_FALSE(result.wave_ready);  // not balanced without buffers
  EXPECT_GT(result.fogs_added, 0u);
  EXPECT_EQ(result.balance_buffers_added, 0u);
  EXPECT_TRUE(functionally_equivalent(net, result.net));
}

TEST(pipeline, respecting_limit_bounds_every_degree) {
  const auto net = gen::multiplier_circuit(5);
  for (unsigned k : {2u, 3u, 4u}) {
    pipeline_options opts;
    opts.fanout_limit = k;
    const auto result = wave_pipeline(net, opts);
    EXPECT_TRUE(result.wave_ready);
    EXPECT_LE(max_fanout_degree(result.net), k) << "k=" << k;
    EXPECT_TRUE(functionally_equivalent(net, result.net));
  }
}

TEST(pipeline, paper_literal_chains_may_exceed_limit_but_stay_balanced) {
  const auto net = gen::multiplier_circuit(5);
  pipeline_options opts;
  opts.fanout_limit = 2;
  opts.respect_limit_in_buffers = false;
  const auto result = wave_pipeline(net, opts);
  EXPECT_TRUE(result.wave_ready);
  EXPECT_TRUE(functionally_equivalent(net, result.net));
}

TEST(pipeline, component_accounting_adds_up) {
  const auto net = gen::build_benchmark("sasc");
  const auto result = wave_pipeline(net);
  EXPECT_EQ(result.final_stats.majorities, result.original_stats.majorities);
  EXPECT_EQ(result.final_stats.fanout_gates, result.fogs_added);
  EXPECT_EQ(result.final_stats.buffers,
            result.restriction_buffers_added + result.balance_buffers_added);
  EXPECT_EQ(result.final_stats.components,
            result.original_stats.components + result.fogs_added +
                result.restriction_buffers_added + result.balance_buffers_added);
}

TEST(pipeline, pipelined_network_streams_waves) {
  const auto net = gen::ripple_adder_circuit(5);
  const auto result = wave_pipeline(net);
  ASSERT_TRUE(result.wave_ready);

  std::vector<std::vector<bool>> waves;
  for (int w = 0; w < 6; ++w) {
    std::vector<bool> wave(result.net.num_pis());
    for (std::size_t i = 0; i < wave.size(); ++i) {
      wave[i] = ((w * 7 + static_cast<int>(i) * 3) % 5) < 2;
    }
    waves.push_back(std::move(wave));
  }
  const auto run = run_waves(result.net, waves, 3);
  for (std::size_t w = 0; w < waves.size(); ++w) {
    EXPECT_EQ(run.outputs[w], simulate_pattern(result.net, waves[w])) << "wave " << w;
  }
}

TEST(pipeline, fog_count_matches_restriction_alone) {
  // Paper Fig. 8 observation (b): FOGs are independent of buffer insertion.
  const auto net = gen::build_benchmark("mul8");
  pipeline_options with_buf;
  with_buf.fanout_limit = 3;
  pipeline_options without_buf = with_buf;
  without_buf.insert_buffers = false;
  EXPECT_EQ(wave_pipeline(net, with_buf).fogs_added,
            wave_pipeline(net, without_buf).fogs_added);
}

TEST(pipeline, full_suite_default_flow_invariants) {
  // The complete 37-circuit suite through the paper's FO3+BUF flow: every
  // result must be wave-ready, respect the limit, account exactly, and
  // compute the same function.
  for (const auto& bench : gen::build_suite()) {
    const auto result = wave_pipeline(bench.net);
    EXPECT_TRUE(result.wave_ready) << bench.name;
    EXPECT_LE(max_fanout_degree(result.net), 3u) << bench.name;
    EXPECT_EQ(result.final_stats.components,
              result.original_stats.components + result.fogs_added +
                  result.restriction_buffers_added + result.balance_buffers_added)
        << bench.name;
    EXPECT_EQ(result.final_stats.majorities, result.original_stats.majorities) << bench.name;
    EXPECT_TRUE(functionally_equivalent(bench.net, result.net, 2)) << bench.name;
  }
}

TEST(pipeline, combined_inserts_more_buffers_than_buf_alone) {
  // Paper Fig. 8 observation (a): FOx+BUF adds more components than BUF
  // alone because restriction deepens the netlist.
  const auto net = gen::build_benchmark("mul8");
  pipeline_options buf_only;
  buf_only.fanout_limit.reset();
  pipeline_options combined;
  combined.fanout_limit = 3;
  const auto a = wave_pipeline(net, buf_only);
  const auto b = wave_pipeline(net, combined);
  EXPECT_GT(b.final_stats.components, a.final_stats.components);
}

}  // namespace
}  // namespace wavemig
